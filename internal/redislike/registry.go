package redislike

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Flags classify a command for dispatch-time policy and introspection.
type Flags uint32

const (
	// FlagWrite marks a command that mutates the dataset. Write commands
	// are rejected with -LOADING while a recovery swap is in progress.
	FlagWrite Flags = 1 << iota
	// FlagRead marks a command that reads the dataset.
	FlagRead
	// FlagAdmin marks a control-plane command (durability, snapshots,
	// introspection of server state).
	FlagAdmin
)

// Names renders the set bits for introspection replies.
func (f Flags) Names() []string {
	var out []string
	if f&FlagWrite != 0 {
		out = append(out, "write")
	}
	if f&FlagRead != 0 {
		out = append(out, "readonly")
	}
	if f&FlagAdmin != 0 {
		out = append(out, "admin")
	}
	return out
}

// Arity bounds a command's argument count, the command name excluded.
// Max < 0 means variadic (no upper bound).
type Arity struct {
	Min, Max int
}

// Exactly accepts exactly n arguments.
func Exactly(n int) Arity { return Arity{Min: n, Max: n} }

// AtLeast accepts n or more arguments.
func AtLeast(n int) Arity { return Arity{Min: n, Max: -1} }

// Between accepts between min and max arguments inclusive.
func Between(min, max int) Arity { return Arity{Min: min, Max: max} }

// Check reports whether n arguments satisfy the spec.
func (a Arity) Check(n int) bool {
	return n >= a.Min && (a.Max < 0 || n <= a.Max)
}

// Redis renders the spec in Redis COMMAND convention: the total token
// count including the command name, negated when more are accepted.
func (a Arity) Redis() int64 {
	if a.Max == a.Min {
		return int64(a.Min + 1)
	}
	return -int64(a.Min + 1)
}

// HandlerFunc serves one command, streaming its reply through the Ctx
// (see the Reply methods). Returning a non-nil error discards anything
// the handler already wrote and sends one typed error reply instead —
// so a failure is always a single well-formed reply in pipeline order.
type HandlerFunc func(*Ctx) error

// Command is the unit of registration: everything the server needs to
// admit, dispatch, meter and introspect one command. The registry entry
// is the single source of truth — arity is enforced before the handler
// runs, flags drive dispatch policy (write-vs-loading) and the
// COMMAND/G.INFO introspection output is generated from it.
type Command struct {
	Name    string
	Arity   Arity
	Flags   Flags
	Summary string // one-line description for introspection
	Handler HandlerFunc

	// metrics is the command's meter, resolved once at registration by
	// the owning server so dispatch never takes the metrics map lookup
	// on the hot path. Nil for registries without a server (tests);
	// dispatch then falls back to a by-name resolve.
	metrics *cmdMetrics
}

// Registry maps command names to registrations. Lookups are
// case-insensitive; names are stored lowercased.
type Registry struct {
	mu   sync.RWMutex
	cmds map[string]*Command

	// onRegister, when set by the owning server, finalises each stored
	// registration (resolving its metrics handle) under the write lock.
	onRegister func(*Command)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cmds: make(map[string]*Command)}
}

// Register adds one command, rejecting duplicates and nil handlers.
func (r *Registry) Register(c *Command) error {
	if c == nil || c.Handler == nil {
		return fmt.Errorf("redislike: command %q has no handler", c.Name)
	}
	name := strings.ToLower(c.Name)
	if name == "" {
		return fmt.Errorf("redislike: command with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.cmds[name]; dup {
		return fmt.Errorf("redislike: duplicate command %q", c.Name)
	}
	cc := *c
	cc.Name = name
	if r.onRegister != nil {
		r.onRegister(&cc)
	}
	r.cmds[name] = &cc
	return nil
}

// Lookup resolves a (lowercased) name.
func (r *Registry) Lookup(name string) (*Command, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.cmds[name]
	return c, ok
}

// LookupBytes resolves a lowercased name held as bytes without copying
// it to a string — the hot-path lookup. The string conversion in the
// map index compiles to a no-alloc lookup.
func (r *Registry) LookupBytes(name []byte) (*Command, bool) {
	r.mu.RLock()
	c, ok := r.cmds[string(name)]
	r.mu.RUnlock()
	return c, ok
}

// Len reports how many commands are registered.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cmds)
}

// Commands returns every registration sorted by name — the stable order
// introspection replies use.
func (r *Registry) Commands() []*Command {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Command, 0, len(r.cmds))
	for _, c := range r.cmds {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
