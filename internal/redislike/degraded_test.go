package redislike

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/vfs"
	"cuckoograph/internal/wal"
)

// Degraded-mode serving: a WAL storage failure under a live workload
// must fail the triggering write, flip the server into read-only
// -MISCONF mode with reads unaffected, surface through G.INFO, metrics
// and /readyz, and hand service back after wal_resume — with nothing
// acked ever lost to the recovery directory.

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

// TestDegradedModeENOSPCPipelined is the acceptance pin: FaultFS forces
// ENOSPC under a pipelined workload; the in-flight write errors with
// -WALERR, later writes answer -MISCONF, reads keep serving, state is
// visible everywhere it should be, and wal_resume restores write
// service with a recovery directory that describes the whole graph.
func TestDegradedModeENOSPCPipelined(t *testing.T) {
	srv, gm, addr := startGraphServer(t, Config{})
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	if err := gm.EnableWAL(dir, wal.Options{Sync: wal.SyncAlways, FS: ffs}); err != nil {
		t.Fatal(err)
	}
	maddr, err := srv.ListenMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	p := dialPipe(t, addr)
	p.push("g.insert", "1", "2")
	p.flush()
	if v := p.read(); v.Type != ':' || v.Int != 1 {
		t.Fatalf("healthy insert: got %+v", v)
	}

	// The disk fills. The whole burst is pipelined before any reply is
	// read: the first write observes the append failure (-WALERR, its
	// mutation is in memory but not durable), every later write in the
	// burst is rejected up front (-MISCONF), and the reads in between
	// keep answering.
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpWrite.Mask() | vfs.OpSync.Mask(), Err: syscall.ENOSPC})
	p.push("g.insert", "3", "4")
	p.push("g.query", "1", "2")
	p.push("g.insert", "5", "6")
	p.push("g.minsert", "7", "8", "9", "10")
	p.push("g.query", "3", "4")
	p.flush()
	if v := p.read(); v.Type != '-' || !strings.HasPrefix(v.Str, ClassWALErr+" ") {
		t.Fatalf("write on full disk: want -WALERR, got %+v", v)
	}
	if v := p.read(); v.Type != ':' || v.Int != 1 {
		t.Fatalf("read while degraded: got %+v", v)
	}
	for i := 0; i < 2; i++ {
		if v := p.read(); v.Type != '-' || !strings.HasPrefix(v.Str, ClassMisconf+" ") {
			t.Fatalf("write %d while degraded: want -MISCONF, got %+v", i, v)
		}
	}
	// The -WALERR'd mutation was applied in memory; reads serve it even
	// though it is not yet durable.
	if v := p.read(); v.Type != ':' || v.Int != 1 {
		t.Fatalf("read of non-durable edge: got %+v", v)
	}
	if !srv.Degraded() {
		t.Fatal("server not degraded after WAL failure")
	}

	// Surfacing: G.INFO, /metrics, /healthz (alive), /readyz (not ready).
	p.push("g.info", "server")
	p.flush()
	if v := p.read(); !strings.Contains(v.Str, "degraded:1") || !strings.Contains(v.Str, "degraded_reason:wal:") {
		t.Fatalf("g.info server while degraded:\n%s", v.Str)
	}
	if code, body := httpGet(t, "http://"+maddr+"/metrics"); code != 200 || !strings.Contains(body, "cg_degraded 1") {
		t.Fatalf("metrics while degraded: code=%d, cg_degraded sample missing", code)
	}
	if code, body := httpGet(t, "http://"+maddr+"/healthz"); code != 200 || !strings.Contains(body, "degraded") {
		t.Fatalf("healthz while degraded: code=%d body=%q (liveness must hold, body must say degraded)", code, body)
	}
	if code, body := httpGet(t, "http://"+maddr+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("readyz while degraded: code=%d body=%q", code, body)
	}

	// wal_resume while the disk is still full fails and stays degraded.
	p.push("wal_resume")
	p.flush()
	if v := p.read(); v.Type != '-' || !strings.HasPrefix(v.Str, ClassWALErr+" ") {
		t.Fatalf("wal_resume on still-full disk: want -WALERR, got %+v", v)
	}
	if !srv.Degraded() {
		t.Fatal("failed wal_resume must leave the server degraded")
	}

	// The operator frees space; wal_resume reopens the log, checkpoints
	// the live graph (capturing the -WALERR'd in-memory mutation), and
	// write service returns.
	ffs.ClearFault()
	p.push("wal_resume")
	p.push("g.insert", "11", "12")
	p.push("g.query", "3", "4")
	p.flush()
	if v := p.read(); v.Type != '+' || v.Str != "OK" {
		t.Fatalf("wal_resume after freeing space: got %+v", v)
	}
	if v := p.read(); v.Type != ':' || v.Int != 1 {
		t.Fatalf("insert after resume: got %+v", v)
	}
	if v := p.read(); v.Type != ':' || v.Int != 1 {
		t.Fatalf("query after resume: got %+v", v)
	}
	if srv.Degraded() {
		t.Fatal("server still degraded after successful wal_resume")
	}
	if code, _ := httpGet(t, "http://"+maddr+"/readyz"); code != 200 {
		t.Fatalf("readyz after resume: code=%d", code)
	}

	// Recovery completeness: the directory must describe the full live
	// graph — including the edge whose original append failed.
	live := gm.Graph()
	if err := srv.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	g, _, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, e := range [][2]uint64{{1, 2}, {3, 4}, {11, 12}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost from recovery directory", e)
		}
	}
	if g.NumEdges() != live.NumEdges() {
		t.Fatalf("recovered %d edges, live graph had %d", g.NumEdges(), live.NumEdges())
	}
}

// TestWALOnErrorPanicPolicy: with -wal-on-error=panic a WAL failure
// crashes the write path instead of degrading.
func TestWALOnErrorPanicPolicy(t *testing.T) {
	srv, gm, _ := startGraphServer(t, Config{})
	gm.SetWALErrorPolicy(WALOnErrorPanic)
	ffs := vfs.NewFaultFS(nil)
	if err := gm.EnableWAL(t.TempDir(), wal.Options{Sync: wal.SyncAlways, FS: ffs}); err != nil {
		t.Fatal(err)
	}
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpWrite.Mask() | vfs.OpSync.Mask(), Err: syscall.EIO})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("write on failed WAL did not panic under the panic policy")
		}
		if !strings.Contains(fmt.Sprint(r), "-wal-on-error=panic") {
			t.Fatalf("panic message %q does not name the policy", r)
		}
		// Disarm the fault so module teardown can close the WAL.
		ffs.ClearFault()
		gm.Graph().SetWAL(nil)
		srv.Close()
	}()
	srv.Dispatch(resp.Command("g.insert", "1", "2"))
}

// TestReadyzReplicaBootstrapGate: a replica that has not reached
// streaming state is alive but not ready; the gate latches open once
// it has bootstrapped.
func TestReadyzReplicaBootstrapGate(t *testing.T) {
	srv, gm, _ := startGraphServer(t, Config{})
	r := &Replica{gm: gm, done: make(chan struct{})}
	gm.replica.Store(r)
	if err := srv.Ready(); err == nil || !strings.Contains(err.Error(), "bootstrapping") {
		t.Fatalf("Ready() with unbootstrapped replica: want bootstrapping error, got %v", err)
	}
	r.markStreaming()
	if err := srv.Ready(); err != nil {
		t.Fatalf("Ready() after bootstrap: %v", err)
	}
	gm.replica.Store(nil)
}

// TestReplicationTerminalErrFrame (satellite): a leader whose log
// fails under stream setup emits the terminal ["err", msg] frame
// instead of silently dropping the connection.
func TestReplicationTerminalErrFrame(t *testing.T) {
	srv, gm, addr := startGraphServer(t, Config{})
	ffs := vfs.NewFaultFS(nil)
	if err := gm.EnableWAL(t.TempDir(), wal.Options{FS: ffs}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if v := srv.Dispatch(resp.Command("g.insert", "1", "2")); v.Type == '-' {
		t.Fatalf("insert: %s", v.Str)
	}

	// A bootstrap request (0 0) forces a snapshot cut against a segment
	// rotation; failing the new segment's creation fails the cut, which
	// must be answered with a terminal err frame.
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpCreate.Mask(), PathContains: ".seg", Err: syscall.ENOSPC})
	p := dialPipe(t, addr)
	p.push("g.replicate", "0", "0")
	p.flush()
	v := p.read()
	if v.Type != '*' || len(v.Array) != 2 || v.Array[0].Str != replKindErr {
		t.Fatalf("want terminal [err, msg] frame, got %+v", v)
	}
	if !strings.Contains(v.Array[1].Str, "snapshot failed") {
		t.Fatalf("err frame message %q does not say why", v.Array[1].Str)
	}
	ffs.ClearFault()
}

// TestReplicaHandlesErrFrame (satellite): the follower surfaces a
// leader's terminal err frame as a typed stream error — distinguishable
// from a network drop.
func TestReplicaHandlesErrFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Consume the g.replicate request, then end the stream on purpose.
		buf := make([]byte, 256)
		c.Read(buf)
		bw := bufio.NewWriter(c)
		resp.Write(bw, resp.Command(replKindErr, "log read failed"))
		bw.Flush()
	}()

	_, gm, _ := startGraphServer(t, Config{})
	r := &Replica{
		gm:     gm,
		leader: ln.Addr().String(),
		log:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		done:   make(chan struct{}),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, serr := r.stream(ctx)
	if serr == nil || !strings.Contains(serr.Error(), "leader ended stream: log read failed") {
		t.Fatalf("want typed leader-ended error, got %v", serr)
	}
}

// TestJitterBackoffRange (satellite): reconnect delays are spread
// across [d/2, 3d/2) instead of firing in lockstep.
func TestJitterBackoffRange(t *testing.T) {
	base := time.Second
	lo, hi := base, base
	for i := 0; i < 200; i++ {
		d := jitterBackoff(base)
		if d < base/2 || d >= base+base/2 {
			t.Fatalf("jitterBackoff(%v) = %v outside [%v, %v)", base, d, base/2, base+base/2)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < base/4 {
		t.Fatalf("jitter spread %v over 200 samples is suspiciously tight", hi-lo)
	}
}
