package redislike

import (
	"bufio"
	"net"
	"strconv"
	"testing"

	"cuckoograph/internal/resp"
)

func TestBuiltinsOverTCP(t *testing.T) {
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	send := func(args ...string) resp.Value {
		t.Helper()
		if err := resp.Write(w, resp.Command(args...)); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		v, err := resp.Read(r)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	if got := send("PING"); got.Str != "PONG" {
		t.Fatalf("PING = %+v", got)
	}
	if got := send("SET", "k", "v"); got.Str != "OK" {
		t.Fatalf("SET = %+v", got)
	}
	if got := send("GET", "k"); got.Str != "v" {
		t.Fatalf("GET = %+v", got)
	}
	if got := send("DEL", "k", "missing"); got.Int != 1 {
		t.Fatalf("DEL = %+v", got)
	}
	if got := send("GET", "k"); !got.Null {
		t.Fatalf("GET after DEL = %+v", got)
	}
	if got := send("NOSUCH"); got.Type != '-' {
		t.Fatalf("unknown command = %+v", got)
	}
}

func TestGraphModuleCommands(t *testing.T) {
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	dispatch := func(args ...string) resp.Value { return s.Dispatch(resp.Command(args...)) }

	if got := dispatch("G.INSERT", "1", "2"); got.Int != 1 {
		t.Fatalf("first insert = %+v", got)
	}
	if got := dispatch("g.insert", "1", "2"); got.Int != 0 {
		t.Fatalf("dup insert = %+v", got)
	}
	if got := dispatch("g.query", "1", "2"); got.Int != 1 {
		t.Fatalf("query = %+v", got)
	}
	dispatch("g.insert", "1", "3")
	if got := dispatch("g.getneighbors", "1"); len(got.Array) != 2 {
		t.Fatalf("getneighbors = %+v", got)
	}
	if got := dispatch("g.del", "1", "2"); got.Int != 1 {
		t.Fatalf("del = %+v", got)
	}
	if got := dispatch("g.query", "1", "2"); got.Int != 0 {
		t.Fatalf("query after del = %+v", got)
	}
	if got := dispatch("g.insert", "x", "2"); got.Type != '-' {
		t.Fatalf("bad arg = %+v", got)
	}
	if gm.Graph().NumEdges() != 1 {
		t.Fatalf("graph edges = %d, want 1", gm.Graph().NumEdges())
	}
}

func TestGraphModulePersistence(t *testing.T) {
	s := NewServer()
	gm, mod := NewGraphModule()
	s.LoadModule(mod)
	for i := uint64(1); i <= 500; i++ {
		gm.Graph().InsertEdge(i%50, i)
	}
	want := gm.Graph().NumEdges()

	snap := s.SaveRDB()
	if len(snap["cuckoograph"]) == 0 {
		t.Fatal("empty rdb snapshot")
	}

	// Fresh server; load the snapshot.
	s2 := NewServer()
	gm2, mod2 := NewGraphModule()
	s2.LoadModule(mod2)
	if err := s2.LoadRDB(snap); err != nil {
		t.Fatal(err)
	}
	if gm2.Graph().NumEdges() != want {
		t.Fatalf("restored %d edges, want %d", gm2.Graph().NumEdges(), want)
	}
	for i := uint64(1); i <= 500; i++ {
		if !gm2.Graph().HasEdge(i%50, i) {
			t.Fatalf("edge ⟨%d,%d⟩ lost across save/load", i%50, i)
		}
	}

	// Corrupt snapshots must be rejected.
	if err := gm2.loadRDB([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated rdb accepted")
	}

	// AOF rewrite must list one command per edge.
	cmds := gm.AOFRewrite()
	if uint64(len(cmds)) != want {
		t.Fatalf("aof has %d commands, want %d", len(cmds), want)
	}
}

func TestDuplicateModuleCommand(t *testing.T) {
	s := NewServer()
	_, m1 := NewGraphModule()
	if err := s.LoadModule(m1); err != nil {
		t.Fatal(err)
	}
	_, m2 := NewGraphModule()
	if err := s.LoadModule(m2); err == nil {
		t.Fatal("duplicate command registration accepted")
	}
	_ = strconv.Quote("")
}
