package redislike

import (
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"cuckoograph/internal/resp"
	"cuckoograph/internal/wal"
)

// dispatch sends one command through the server's decoded-command path.
func dispatch(s *Server, args ...string) resp.Value {
	return s.Dispatch(resp.Command(args...))
}

// TestWALCommandsRoundTrip drives the durability control plane over the
// command surface: enable logging, write, checkpoint, write more, then
// boot a second server and wal_replay the directory into it.
func TestWALCommandsRoundTrip(t *testing.T) {
	dir := t.TempDir()

	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if got := dispatch(s, "wal_enable", dir, "nosync"); got.Str != "OK" {
		t.Fatalf("wal_enable = %+v", got)
	}
	for i := 0; i < 500; i++ {
		u, v := strconv.Itoa(i%50), strconv.Itoa(i)
		if got := dispatch(s, "g.insert", u, v); got.Type != ':' {
			t.Fatalf("g.insert = %+v", got)
		}
	}
	if got := dispatch(s, "checkpoint"); got.Type != '$' || !strings.Contains(got.Str, "checkpoint-") {
		t.Fatalf("checkpoint = %+v", got)
	}
	for i := 500; i < 800; i++ {
		dispatch(s, "g.insert", strconv.Itoa(i%50), strconv.Itoa(i))
	}
	dispatch(s, "g.del", "0", "0")
	wantEdges := gm.Graph().NumEdges()
	if err := gm.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2 := NewServer()
	gm2, mod2 := NewGraphModule()
	if err := s2.LoadModule(mod2); err != nil {
		t.Fatal(err)
	}
	got := dispatch(s2, "wal_replay", dir)
	if got.Type != '$' {
		t.Fatalf("wal_replay = %+v", got)
	}
	if gm2.Graph().NumEdges() != wantEdges {
		t.Fatalf("replayed %d edges, want %d (reply %q)", gm2.Graph().NumEdges(), wantEdges, got.Str)
	}
	if v := dispatch(s2, "g.query", "1", "1"); v.Int != 1 {
		t.Fatalf("g.query 1 1 after replay = %+v", v)
	}
	if v := dispatch(s2, "g.query", "0", "0"); v.Int != 0 {
		t.Fatalf("g.query 0 0 after replay = %+v (delete not replayed)", v)
	}

	// Replay must refuse to run once a WAL is attached.
	if got := dispatch(s2, "wal_enable", dir, "nosync"); got.Str != "OK" {
		t.Fatalf("wal_enable on replayed server = %+v", got)
	}
	if got := dispatch(s2, "wal_replay", dir); got.Type != '-' {
		t.Fatalf("wal_replay with WAL enabled = %+v, want error", got)
	}
	if err := gm2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestWALEnableCapturesExistingEdges checks wal_enable on a non-empty
// graph checkpoints first, so recovery is complete without the caller
// remembering to snapshot.
func TestWALEnableCapturesExistingEdges(t *testing.T) {
	dir := t.TempDir()
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	dispatch(s, "g.insert", "7", "8")
	if got := dispatch(s, "wal_enable", dir); got.Str != "OK" {
		t.Fatalf("wal_enable = %+v", got)
	}
	dispatch(s, "g.insert", "9", "10")
	if err := gm.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	gm2, mod2 := NewGraphModule()
	s2 := NewServer()
	if err := s2.LoadModule(mod2); err != nil {
		t.Fatal(err)
	}
	if got := dispatch(s2, "wal_replay", dir); got.Type == '-' {
		t.Fatalf("wal_replay = %+v", got)
	}
	for _, e := range [][2]string{{"7", "8"}, {"9", "10"}} {
		if v := dispatch(s2, "g.query", e[0], e[1]); v.Int != 1 {
			t.Fatalf("edge %v lost across enable-time checkpoint", e)
		}
	}
	_ = gm2
}

// TestWALCommandErrors covers the argument validation surface.
func TestWALCommandErrors(t *testing.T) {
	s := NewServer()
	_, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"wal_enable"},
		{"wal_enable", t.TempDir(), "sometimes"},
		{"wal_replay"},
		{"checkpoint", "extra"},
		{"checkpoint"}, // WAL not enabled
	} {
		if got := dispatch(s, args...); got.Type != '-' {
			t.Fatalf("%v = %+v, want error", args, got)
		}
	}
}

// TestEnableAfterRecoverSkipsCheckpoint: the RecoverWAL → EnableWAL
// boot sequence must not rewrite a full snapshot the directory already
// has.
func TestEnableAfterRecoverSkipsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if got := dispatch(s, "wal_enable", dir, "nosync"); got.Str != "OK" {
		t.Fatalf("wal_enable = %+v", got)
	}
	for i := 0; i < 100; i++ {
		dispatch(s, "g.insert", strconv.Itoa(i), strconv.Itoa(i+1))
	}
	if got := dispatch(s, "checkpoint"); got.Type != '$' {
		t.Fatalf("checkpoint = %+v", got)
	}
	if err := gm.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	checkpoints := func() []string {
		names, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.snap"))
		if err != nil {
			t.Fatal(err)
		}
		return names
	}
	before := checkpoints()

	gm2, mod2 := NewGraphModule()
	s2 := NewServer()
	if err := s2.LoadModule(mod2); err != nil {
		t.Fatal(err)
	}
	if _, err := gm2.RecoverWAL(dir); err != nil {
		t.Fatal(err)
	}
	if err := gm2.EnableWAL(dir, wal.Options{Sync: wal.SyncNone}); err != nil {
		t.Fatal(err)
	}
	if after := checkpoints(); !reflect.DeepEqual(before, after) {
		t.Fatalf("boot rewrote checkpoints: %v -> %v", before, after)
	}
	// But enabling on a graph the directory does NOT describe must
	// still checkpoint: mutate first, then re-enable elsewhere.
	if err := gm2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	gm2.Graph().InsertEdge(9999, 9999)
	dir2 := t.TempDir()
	if err := gm2.EnableWAL(dir2, wal.Options{Sync: wal.SyncNone}); err != nil {
		t.Fatal(err)
	}
	if n, err := filepath.Glob(filepath.Join(dir2, "checkpoint-*.snap")); err != nil || len(n) != 1 {
		t.Fatalf("fresh dir checkpoints = %v (err %v), want exactly one", n, err)
	}
	if err := gm2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestCountNeutralMutationsBetweenRecoverAndEnable pins the durability
// hand-off: mutations applied between wal_replay and wal_enable that
// happen to leave NumEdges/NumNodes unchanged (an insert/delete pair)
// must still force the initial checkpoint — otherwise they are neither
// in the log nor in a snapshot and a crash silently undoes them.
func TestCountNeutralMutationsBetweenRecoverAndEnable(t *testing.T) {
	dir := t.TempDir()
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if got := dispatch(s, "wal_enable", dir, "nosync"); got.Str != "OK" {
		t.Fatalf("wal_enable = %+v", got)
	}
	dispatch(s, "g.insert", "1", "2")
	dispatch(s, "g.insert", "1", "3")
	dispatch(s, "g.insert", "2", "5")
	if err := gm.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	gm2, mod2 := NewGraphModule()
	s2 := NewServer()
	if err := s2.LoadModule(mod2); err != nil {
		t.Fatal(err)
	}
	if _, err := gm2.RecoverWAL(dir); err != nil {
		t.Fatal(err)
	}
	// Count-neutral window: one insert (existing source node), one
	// delete (node keeps another edge). Edges 3→3, nodes 2→2.
	g := gm2.Graph()
	g.InsertEdge(1, 4)
	g.DeleteEdge(1, 2)
	if err := gm2.EnableWAL(dir, wal.Options{Sync: wal.SyncNone}); err != nil {
		t.Fatal(err)
	}
	if err := gm2.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	gm3, mod3 := NewGraphModule()
	s3 := NewServer()
	if err := s3.LoadModule(mod3); err != nil {
		t.Fatal(err)
	}
	if _, err := gm3.RecoverWAL(dir); err != nil {
		t.Fatal(err)
	}
	rec := gm3.Graph()
	if !rec.HasEdge(1, 4) {
		t.Fatal("edge (1,4) inserted between recover and enable was lost")
	}
	if rec.HasEdge(1, 2) {
		t.Fatal("edge (1,2) deleted between recover and enable resurrected")
	}
}
