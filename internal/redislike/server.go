// Package redislike is a small in-process Redis-like server: a TCP
// RESP2 front end with core string commands (PING, SET, GET, DEL) and a
// module API through which additional data types register commands and
// persistence hooks — the substrate for the paper's Redis integration
// (§V-F), where CuckooGraph is loaded as a module providing G.INSERT,
// G.DEL, the batched G.MINSERT/G.MDEL, G.QUERY, G.GETNEIGHBORS,
// G.DEGREE and G.NODES plus RDB-style save/load. The per-connection
// read loop pipelines: replies are flushed when the input buffer
// drains, so a burst of commands pays one write(2) for all its
// replies.
package redislike

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"cuckoograph/internal/resp"
)

// HandlerFunc serves one module command; args excludes the command name.
type HandlerFunc func(args []string) resp.Value

// Module is the unit of registration, mirroring the Redis Module API
// surface the paper implements (commands + save_rdb/load_rdb hooks).
type Module struct {
	Name     string
	Commands map[string]HandlerFunc
	SaveRDB  func() []byte
	LoadRDB  func(data []byte) error
}

// Server is a single-node redislike instance. There is no global
// command lock: mu guards only the built-in string keyspace and the
// command/module registries, and module handlers run outside it — each
// module is responsible for its own synchronisation (the CuckooGraph
// module locks per shard), so commands touching different shards
// execute in parallel across connections.
type Server struct {
	mu      sync.RWMutex
	strings map[string]string
	modules []*Module
	cmds    map[string]HandlerFunc

	ln     net.Listener
	closed chan struct{}

	// connMu/conns/connWG let Close drain: it closes every live
	// connection and waits for its serve goroutine to finish the command
	// in flight, so post-Close teardown (e.g. closing a WAL) cannot race
	// an acknowledgement.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup
}

// NewServer returns a server with the built-in commands registered.
func NewServer() *Server {
	return &Server{
		strings: make(map[string]string),
		cmds:    make(map[string]HandlerFunc),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
}

// LoadModule registers a module's commands (--loadmodule equivalent).
func (s *Server) LoadModule(m *Module) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, h := range m.Commands {
		lower := strings.ToLower(name)
		if _, dup := s.cmds[lower]; dup {
			return fmt.Errorf("redislike: duplicate command %q", name)
		}
		s.cmds[lower] = h
	}
	s.modules = append(s.modules, m)
	return nil
}

// SaveRDB snapshots every module (the persistence experiment hook).
// Module save hooks run outside the server lock — the CuckooGraph hook
// takes a consistent cut under its own shard read locks.
func (s *Server) SaveRDB() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string][]byte{}
	for _, m := range s.modules {
		if m.SaveRDB != nil {
			out[m.Name] = m.SaveRDB()
		}
	}
	return out
}

// LoadRDB restores module snapshots.
func (s *Server) LoadRDB(snap map[string][]byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, m := range s.modules {
		if data, ok := snap[m.Name]; ok && m.LoadRDB != nil {
			if err := m.LoadRDB(data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener, closes every live connection and waits for
// their handlers to finish the command in flight.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	return err
}

// track registers a live connection, refusing it if the server is
// already closing. It pairs with untrack.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	s.connWG.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.connWG.Done()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		req, err := resp.Read(r)
		if err != nil {
			return
		}
		reply := s.Dispatch(req)
		if err := resp.Write(w, reply); err != nil {
			return
		}
		// Pipelining: while the client has already sent more commands,
		// keep replies buffered and dispatch straight into the backlog —
		// one syscall then answers the whole burst. Flush only when the
		// input drains and the next Read would block.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// Dispatch executes one already-decoded command; exported so benchmarks
// can measure command cost without socket overhead.
func (s *Server) Dispatch(req resp.Value) resp.Value {
	if req.Type != '*' || len(req.Array) == 0 {
		return resp.Error("ERR protocol: expected command array")
	}
	args := make([]string, len(req.Array))
	for i, v := range req.Array {
		args[i] = v.Str
	}
	name := strings.ToLower(args[0])
	args = args[1:]

	switch name {
	case "ping":
		return resp.Simple("PONG")
	case "set":
		if len(args) != 2 {
			return resp.Error("ERR wrong number of arguments for 'set'")
		}
		s.mu.Lock()
		s.strings[args[0]] = args[1]
		s.mu.Unlock()
		return resp.Simple("OK")
	case "get":
		if len(args) != 1 {
			return resp.Error("ERR wrong number of arguments for 'get'")
		}
		s.mu.RLock()
		v, ok := s.strings[args[0]]
		s.mu.RUnlock()
		if ok {
			return resp.Bulk(v)
		}
		return resp.NullBulk()
	case "del":
		n := int64(0)
		s.mu.Lock()
		for _, k := range args {
			if _, ok := s.strings[k]; ok {
				delete(s.strings, k)
				n++
			}
		}
		s.mu.Unlock()
		return resp.Integer(n)
	}
	s.mu.RLock()
	h, ok := s.cmds[name]
	s.mu.RUnlock()
	if ok {
		// Module handlers run without the server lock; the module's data
		// structure provides its own (per-shard) synchronisation.
		return h(args)
	}
	return resp.Error("ERR unknown command '" + name + "'")
}
