// Package redislike is a small in-process Redis-like server: a TCP
// RESP2 front end with a command registry through which both the
// built-in string commands (PING, SET, GET, DEL) and modules register —
// the substrate for the paper's Redis integration (§V-F), where
// CuckooGraph is loaded as a module providing G.INSERT, G.DEL, the
// batched G.MINSERT/G.MDEL, G.QUERY, G.GETNEIGHBORS, G.DEGREE, G.NODES,
// snapshots, analytics and WAL control plus RDB-style save/load.
//
// Every command is a Command registration — name, arity spec, flags,
// handler — and dispatch is entirely registry-driven: arity is enforced
// before the handler runs, write-flagged commands are rejected while a
// recovery swap is loading, and the COMMAND/G.INFO introspection output
// is generated from the same registrations. Handlers return typed
// errors (see errors.go) that dispatch maps onto RESP error classes, so
// a failure is always a well-formed reply in pipeline order.
//
// The serving plane is allocation-free for warm hot commands: requests
// are parsed into byte-slice views of the connection's read buffer,
// each connection reuses one Ctx (with name/batch/ids scratch) and one
// streaming resp.Writer that handlers append replies into, and
// per-command metrics are resolved once at registration instead of per
// call. The read loop pipelines: replies accumulate in the writer and
// are flushed when the input buffer drains or the buffered replies
// pass the flush high-water mark, so a burst of commands pays one
// write(2) — or one writev when large bulk payloads are referenced
// zero-copy — for all its replies. Connections are admission-
// controlled (MaxConns rejects with -MAXCLIENTS rather than hanging
// the dial), commands run under per-command read/write deadlines, and
// Shutdown drains: in-flight commands finish and flush, then modules
// tear down in order.
//
// When the WAL fails under a write the server degrades rather than
// lies: the triggering write errors with -WALERR, later writes answer
// -MISCONF while reads keep serving, and wal_resume restores write
// service once the storage is fixed. See README.md § Failure modes &
// degraded operation for the policy knobs and runbook.
package redislike

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cuckoograph/internal/resp"
)

// Config tunes a server. The zero value is a permissive development
// server: unlimited connections, no deadlines, discarded logs.
type Config struct {
	// MaxConns bounds concurrently served connections; a connection over
	// the limit receives -MAXCLIENTS and is closed. 0 means unlimited.
	MaxConns int
	// ReadTimeout bounds how long the remainder of a command may take to
	// arrive once its first byte has (idle waits are unbounded). 0
	// disables it.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply write/flush; a client that stops
	// reading is disconnected instead of wedging its serve goroutine. 0
	// disables it.
	WriteTimeout time.Duration
	// Logger receives structured server logs; nil discards them.
	Logger *slog.Logger
}

// ConnState is the per-connection state handed to handlers through Ctx.
type ConnState struct {
	// RemoteAddr is the peer address.
	RemoteAddr string
	// ConnectedAt is when the connection was admitted.
	ConnectedAt time.Time
	// Commands counts commands served on this connection. It is written
	// only by the connection's serve goroutine.
	Commands uint64
}

// Module is the unit of registration, mirroring the Redis Module API
// surface the paper implements: commands plus persistence, metrics and
// lifecycle hooks.
type Module struct {
	Name     string
	Commands []*Command
	SaveRDB  func() []byte
	LoadRDB  func(data []byte) error
	// OnLoad, if set, receives the host server at registration — the
	// hook through which a module reaches server state (loading flag,
	// logger).
	OnLoad func(*Server)
	// Metrics, if set, contributes module samples to every /metrics
	// scrape.
	Metrics func(*MetricsWriter)
	// Close, if set, is called by Shutdown after connections have
	// drained — the module's ordered teardown (release retained views,
	// close the WAL).
	Close func() error
}

// Server is a single-node redislike instance. There is no global
// command lock: mu guards only the built-in string keyspace and the
// module list, and handlers run outside it — each module is responsible
// for its own synchronisation (the CuckooGraph module locks per shard),
// so commands touching different shards execute in parallel across
// connections.
type Server struct {
	cfg     Config
	log     *slog.Logger
	reg     *Registry
	metrics *Metrics

	mu      sync.RWMutex
	strings map[string]string
	modules []*Module

	// loading is set while a recovery (wal_replay) rebuilds and swaps
	// the graph; dispatch rejects write-flagged commands with -LOADING
	// for its duration.
	loading atomic.Bool

	// readOnly marks a replica: dispatch rejects write-flagged commands
	// with -READONLY. The replication apply path bypasses dispatch
	// (ApplyBatch straight into the engine), so the flag only gates
	// clients.
	readOnly atomic.Bool

	// degraded marks the WAL-failed serving mode: dispatch rejects
	// write-flagged commands with -MISCONF while reads keep serving.
	// degradedReason (guarded by degradedMu, read rarely) says why, for
	// error replies, G.INFO and /readyz.
	degraded       atomic.Bool
	degradedMu     sync.Mutex
	degradedReason string

	// readyChecks are module-contributed readiness gates consulted by
	// Ready (and /readyz) beyond the built-in draining/loading/degraded
	// conditions.
	readyMu     sync.Mutex
	readyChecks []func() error

	ln     net.Listener
	closed chan struct{} // closed when Shutdown begins

	shutdownOnce sync.Once
	shutdownDone chan struct{}
	shutdownErr  error

	// connMu/conns/connWG let Shutdown drain: it interrupts idle
	// readers, waits for each serve goroutine to finish (and flush) the
	// command in flight, and only then runs module teardown — so
	// post-drain teardown (closing the WAL) cannot race an
	// acknowledgement.
	connMu      sync.Mutex
	conns       map[*resp.Conn]struct{}
	connWG      sync.WaitGroup
	metricsSrv  httpCloser
	metricsAddr string

	// pprofOn mounts /debug/pprof/ on the metrics listener (EnablePprof).
	pprofOn atomic.Bool
}

// httpCloser is the slice of *http.Server Shutdown needs.
type httpCloser interface{ Close() error }

// NewServer returns a server with the built-in commands registered and
// a permissive default Config.
func NewServer() *Server { return NewServerWith(Config{}) }

// NewServerWith returns a server tuned by cfg.
func NewServerWith(cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:          cfg,
		log:          log,
		reg:          NewRegistry(),
		metrics:      newMetrics(),
		strings:      make(map[string]string),
		closed:       make(chan struct{}),
		shutdownDone: make(chan struct{}),
		conns:        make(map[*resp.Conn]struct{}),
	}
	// Resolve each registration's metrics handle up front, so dispatch
	// meters with two atomic adds and never a map lookup.
	s.reg.onRegister = func(c *Command) { c.metrics = s.metrics.handle(c.Name) }
	s.registerBuiltins()
	return s
}

// Registry exposes the command registry (introspection, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server's meters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Logger returns the server's structured logger.
func (s *Server) Logger() *slog.Logger { return s.log }

// SetLoading flips the recovery-in-progress flag; while set, dispatch
// rejects write-flagged commands with -LOADING.
func (s *Server) SetLoading(on bool) { s.loading.Store(on) }

// Loading reports whether a recovery swap is in progress.
func (s *Server) Loading() bool { return s.loading.Load() }

// SetReadOnly flips replica mode: while set, write-flagged commands
// are rejected with -READONLY.
func (s *Server) SetReadOnly(on bool) { s.readOnly.Store(on) }

// ReadOnly reports whether the server rejects writes (replica mode).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// SetDegraded transitions the server into degraded read-only mode:
// write-flagged commands are rejected with -MISCONF until
// ClearDegraded, while reads keep serving. It reports whether this call
// made the transition (false if already degraded), so callers on the
// hot error path can log and count the edge exactly once.
func (s *Server) SetDegraded(reason string) bool {
	s.degradedMu.Lock()
	s.degradedReason = reason
	s.degradedMu.Unlock()
	return s.degraded.CompareAndSwap(false, true)
}

// ClearDegraded leaves degraded mode — the wal_resume path, after the
// log is writable again.
func (s *Server) ClearDegraded() {
	s.degraded.Store(false)
	s.degradedMu.Lock()
	s.degradedReason = ""
	s.degradedMu.Unlock()
}

// Degraded reports whether the server is rejecting writes after a WAL
// failure.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// DegradedReason returns why the server is degraded ("" when it isn't).
func (s *Server) DegradedReason() string {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return s.degradedReason
}

// AddReadyCheck registers an extra readiness gate: /readyz reports 503
// while any registered check returns non-nil. Modules hook conditions
// like "replica still bootstrapping" in through here.
func (s *Server) AddReadyCheck(f func() error) {
	s.readyMu.Lock()
	s.readyChecks = append(s.readyChecks, f)
	s.readyMu.Unlock()
}

// Ready reports whether the server should receive traffic: nil when
// ready, otherwise the first failing condition. Distinct from liveness
// (/healthz): a degraded or loading server is alive but not ready.
func (s *Server) Ready() error {
	if s.draining() {
		return &ShutdownError{}
	}
	if s.loading.Load() {
		return &LoadingError{}
	}
	if s.degraded.Load() {
		return &DegradedError{Reason: s.DegradedReason()}
	}
	s.readyMu.Lock()
	checks := append([]func() error(nil), s.readyChecks...)
	s.readyMu.Unlock()
	for _, f := range checks {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

// LoadModule registers a module's commands (--loadmodule equivalent).
func (s *Server) LoadModule(m *Module) error {
	for _, c := range m.Commands {
		if err := s.reg.Register(c); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.modules = append(s.modules, m)
	s.mu.Unlock()
	if m.OnLoad != nil {
		m.OnLoad(s)
	}
	s.log.Info("module loaded", "module", m.Name, "commands", len(m.Commands))
	return nil
}

// SaveRDB snapshots every module (the persistence experiment hook).
// Module save hooks run outside the server lock — the CuckooGraph hook
// takes a consistent cut under its own shard read locks.
func (s *Server) SaveRDB() map[string][]byte {
	s.mu.RLock()
	mods := append([]*Module(nil), s.modules...)
	s.mu.RUnlock()
	out := map[string][]byte{}
	for _, m := range mods {
		if m.SaveRDB != nil {
			out[m.Name] = m.SaveRDB()
		}
	}
	return out
}

// LoadRDB restores module snapshots.
func (s *Server) LoadRDB(snap map[string][]byte) error {
	s.mu.RLock()
	mods := append([]*Module(nil), s.modules...)
	s.mu.RUnlock()
	for _, m := range mods {
		if data, ok := snap[m.Name]; ok && m.LoadRDB != nil {
			if err := m.LoadRDB(data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	s.log.Info("listening", "addr", ln.Addr().String(), "commands", s.reg.Len(),
		"max_conns", s.cfg.MaxConns)
	return ln.Addr().String(), nil
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// Shutdown gracefully stops the server: the listener closes, idle
// connections are interrupted, in-flight commands finish and their
// replies flush, and once every connection has drained (or ctx
// expires, at which point survivors are force-closed) the modules tear
// down in registration order — for the graph module that releases the
// snapshot ring and closes the WAL, in that order. Shutdown is
// idempotent; every caller observes the first call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.log.Info("shutdown: draining connections", "active", s.metrics.connsActive.Load())
		close(s.closed)
		if s.ln != nil {
			s.ln.Close()
		}
		// Interrupt readers parked in their idle wait so their serve
		// loops observe the drain; a goroutine mid-command is untouched
		// and finishes its reply first.
		s.connMu.Lock()
		for c := range s.conns {
			c.Abort()
		}
		s.connMu.Unlock()
		done := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.connMu.Lock()
			n := len(s.conns)
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
			s.log.Warn("shutdown: drain deadline exceeded; force-closing", "conns", n)
			<-done
		}
		if s.metricsSrv != nil {
			s.metricsSrv.Close()
		}
		// Ordered module teardown, registration order; first error wins
		// but every module still gets its Close.
		s.mu.RLock()
		mods := append([]*Module(nil), s.modules...)
		s.mu.RUnlock()
		var err error
		for _, m := range mods {
			if m.Close == nil {
				continue
			}
			if cerr := m.Close(); cerr != nil {
				s.log.Error("shutdown: module close failed", "module", m.Name, "err", cerr)
				if err == nil {
					err = cerr
				}
			}
		}
		s.shutdownErr = err
		s.log.Info("shutdown complete", "err", err)
		close(s.shutdownDone)
	})
	<-s.shutdownDone
	return s.shutdownErr
}

// Close stops the server immediately: like Shutdown but without a
// drain grace period — live connections are force-closed and their
// in-flight handlers run to completion before module teardown.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Shutdown(ctx)
}

// admit decides whether a new connection may be served, tracking it if
// so. The returned error (taxonomy-typed) is written to rejected
// connections before closing — admission control answers, never hangs.
func (s *Server) admit(c *resp.Conn) error {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining() {
		return &ShutdownError{}
	}
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		return &MaxClientsError{Limit: s.cfg.MaxConns}
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	s.metrics.connsAccepted.Add(1)
	s.metrics.connsActive.Add(1)
	return nil
}

func (s *Server) untrack(c *resp.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.metrics.connsActive.Add(-1)
	s.connWG.Done()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		go s.serve(conn)
	}
}

// flushHighWater bounds how many reply bytes may accumulate before a
// pipelined burst forces an intermediate flush: without it a deep
// pipeline of large replies would buffer the whole burst in memory.
const flushHighWater = 64 << 10

func (s *Server) serve(nc net.Conn) {
	c := resp.NewConn(nc)
	c.ReadTimeout = s.cfg.ReadTimeout
	c.WriteTimeout = s.cfg.WriteTimeout
	if err := s.admit(c); err != nil {
		// Reject with a typed error reply, then close: the client learns
		// why instead of watching a hang or a bare RST.
		s.metrics.connsRejected.Add(1)
		s.log.Debug("connection rejected", "remote", c.RemoteAddr(), "reason", err.Error())
		c.W.AppendError(errorClass(err) + " " + err.Error())
		c.Flush()
		c.Close()
		return
	}
	defer c.Close()
	defer s.untrack(c)
	cs := &ConnState{RemoteAddr: c.RemoteAddr(), ConnectedAt: time.Now()}
	// One Ctx per connection, reused across every command it serves:
	// its scratch buffers are what keep the command cycle allocation-
	// free once warm.
	ctx := &Ctx{srv: s, w: &c.W, Conn: cs, rc: c}
	s.log.Debug("connection accepted", "remote", cs.RemoteAddr)
	defer func() {
		s.log.Debug("connection closed", "remote", cs.RemoteAddr, "commands", cs.Commands)
	}()
	for {
		req, err := c.ReadRequest()
		if err != nil {
			if errors.Is(err, resp.ErrProtocol) {
				// The stream is desynced beyond this point; answer with a
				// typed error so the client knows why, then drop it.
				perr := &BadArgError{Cmd: "protocol", Detail: err.Error()}
				c.W.AppendError(errorClass(perr) + " " + perr.Error())
				c.Flush()
				s.log.Debug("protocol error", "remote", cs.RemoteAddr, "err", err)
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, resp.ErrAborted) {
				s.log.Debug("read failed", "remote", cs.RemoteAddr, "err", err)
			}
			return
		}
		cs.Commands++
		s.serveRequest(ctx, req.Args)
		if ctx.hijacked {
			// The handler took the connection over (replication stream)
			// and owned it until its stream ended; nothing more can be
			// served on it.
			return
		}
		// Pipelining: while the client has already sent more commands,
		// keep replies buffered and dispatch straight into the backlog —
		// one syscall then answers the whole burst. Flush when the input
		// drains (the next read would block) or the reply buffer passes
		// the high-water mark.
		if c.Buffered() == 0 || c.W.Len() >= flushHighWater {
			if err := c.Flush(); err != nil {
				s.log.Debug("flush failed", "remote", cs.RemoteAddr, "err", err)
				return
			}
		}
		if s.draining() {
			// The in-flight command was served and flushed; no new work
			// starts on a draining server.
			c.Flush()
			return
		}
	}
}

// serveRequest is the registry-driven command path: resolve, enforce
// arity, apply flag policy, run the handler, map typed errors to RESP
// classes, meter everything. Exactly one well-formed reply lands in the
// ctx's writer — a handler error rewinds any partial output first, so
// pipelined replies never desync.
func (s *Server) serveRequest(ctx *Ctx, args [][]byte) {
	w := ctx.w
	if len(args) == 0 {
		e := &BadArgError{Cmd: "protocol", Detail: "expected command array"}
		w.AppendError(errorClass(e) + " " + e.Error())
		return
	}
	ctx.nameBuf = appendLower(ctx.nameBuf[:0], args[0])
	start := time.Now()
	cmd, ok := s.reg.LookupBytes(ctx.nameBuf)
	if !ok {
		e := &UnknownCommandError{Cmd: string(ctx.nameBuf)}
		w.AppendError(errorClass(e) + " " + e.Error())
		s.metrics.unknown.observe(time.Since(start), true)
		return
	}
	m := cmd.metrics
	if m == nil {
		// Registered on a bare registry (no owning server): resolve by
		// name, off the precomputed path.
		m = s.metrics.handle(cmd.Name)
	}
	var err error
	switch {
	case !cmd.Arity.Check(len(args) - 1):
		err = &ArityError{Cmd: cmd.Name}
	case cmd.Flags&FlagWrite != 0 && s.loading.Load():
		err = &LoadingError{}
	case cmd.Flags&FlagWrite != 0 && s.readOnly.Load():
		err = &ReadOnlyError{Cmd: cmd.Name}
	case cmd.Flags&FlagWrite != 0 && s.degraded.Load():
		err = &DegradedError{Cmd: cmd.Name, Reason: s.DegradedReason()}
	default:
		ctx.Name = cmd.Name
		ctx.Args = args[1:]
		ctx.Graph = nil
		ctx.hijacked = false
		mark := w.Mark()
		before := w.Len()
		if err = cmd.Handler(ctx); err != nil {
			w.Rewind(mark)
		} else if !ctx.hijacked && w.Len() == before {
			err = fmt.Errorf("command %q produced no reply", cmd.Name)
		}
	}
	if err != nil {
		w.AppendError(errorClass(err) + " " + err.Error())
	}
	m.observe(time.Since(start), err != nil)
}

// dispatcher is the pooled state behind Dispatch: one in-process
// command cycle — encode args, serve, decode the reply — with no
// socket.
type dispatcher struct {
	w    resp.Writer
	ctx  Ctx
	args [][]byte
}

var dispatcherPool = sync.Pool{New: func() any { return new(dispatcher) }}

// Dispatch executes one already-decoded command; exported so tests,
// benchmarks and replay can measure command cost without socket
// overhead. It runs the same serveRequest path as the TCP loop and
// decodes the streamed reply back into a boxed Value.
func (s *Server) Dispatch(req resp.Value) resp.Value {
	if req.Type != '*' || len(req.Array) == 0 {
		return errorReply(&BadArgError{Cmd: "protocol", Detail: "expected command array"})
	}
	d := dispatcherPool.Get().(*dispatcher)
	d.args = d.args[:0]
	for _, v := range req.Array {
		d.args = append(d.args, []byte(v.Str))
	}
	d.ctx.srv, d.ctx.w = s, &d.w
	d.ctx.Conn, d.ctx.Graph = nil, nil
	d.ctx.rc, d.ctx.hijacked = nil, false
	s.serveRequest(&d.ctx, d.args)
	reply, err := resp.Read(bufio.NewReader(bytes.NewReader(d.w.Bytes())))
	d.w.Reset()
	dispatcherPool.Put(d)
	if err != nil {
		return errorReply(&BadArgError{Cmd: "protocol", Detail: "reply decode: " + err.Error()})
	}
	return reply
}
