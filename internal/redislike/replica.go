package redislike

// Follower-side replication: the client of the leader's g.replicate
// stream. A Replica dials the leader, requests the log from its last
// applied position (0 0 on a fresh process — there is no local
// persistence; the leader answers with a bootstrap snapshot), applies
// pushed frames through the sharded engine, acknowledges each applied
// position, and reconnects with exponential backoff on any drop,
// resuming from where it left off. The owning server runs in
// -READONLY mode: the stream is the only writer.

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cuckoograph/internal/core"
	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// Replica states, exported through G.INFO replication and metrics.
const (
	replicaConnecting int32 = iota
	replicaSyncing
	replicaStreaming
	replicaDisconnected
)

func replicaStateName(s int32) string {
	switch s {
	case replicaConnecting:
		return "connecting"
	case replicaSyncing:
		return "syncing"
	case replicaStreaming:
		return "streaming"
	}
	return "disconnected"
}

const (
	replicaDialTimeout    = 5 * time.Second
	replicaBackoffInitial = 100 * time.Millisecond
	replicaBackoffMax     = 3 * time.Second
)

// Replica is this server's replication link to a leader.
type Replica struct {
	gm     *GraphModule
	leader string
	log    *slog.Logger

	cancel context.CancelFunc
	done   chan struct{}

	state      atomic.Int32
	posSeg     atomic.Uint64 // next position to request/apply
	posOff     atomic.Uint64
	leaderSeg  atomic.Uint64 // leader tail from the last ping
	leaderOff  atomic.Uint64
	bytes      atomic.Uint64 // frame+snapshot payload bytes applied
	frames     atomic.Uint64 // frame chunks applied
	ops        atomic.Uint64 // ops applied
	snapshots  atomic.Uint64 // bootstrap snapshots installed
	reconnects atomic.Uint64 // link losses

	// bootstrapped latches true once the replica has reached streaming
	// state at least once — the readiness gate: before it, the graph may
	// still be empty or mid-install, and /readyz holds traffic off.
	bootstrapped atomic.Bool
}

// StartReplica puts the server into replica mode and starts pulling
// from leader ("host:port"). The returned Replica runs until Stop (or
// module Close); the server rejects client writes with -READONLY for
// its lifetime.
func StartReplica(gm *GraphModule, srv *Server, leader string) *Replica {
	r := &Replica{
		gm:     gm,
		leader: leader,
		log:    srv.Logger().With("component", "replica", "leader", leader),
		done:   make(chan struct{}),
	}
	r.state.Store(replicaConnecting)
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	srv.SetReadOnly(true)
	gm.replica.Store(r)
	go r.run(ctx)
	return r
}

// Stop ends the replication loop and waits for it to exit. Idempotent.
func (r *Replica) Stop() {
	r.cancel()
	<-r.done
}

// Leader returns the configured leader address.
func (r *Replica) Leader() string { return r.leader }

// Bootstrapped reports whether the replica has reached streaming state
// at least once (sticky): the signal /readyz waits on before routing
// reads to this node.
func (r *Replica) Bootstrapped() bool { return r.bootstrapped.Load() }

// markStreaming records a live, caught-up-or-catching-up link.
func (r *Replica) markStreaming() {
	r.state.Store(replicaStreaming)
	r.bootstrapped.Store(true)
}

// jitterBackoff spreads a reconnect delay across [d/2, 3d/2) so the
// followers of a restarted leader do not redial in lockstep — the
// fixed exponential ladder alone synchronises every replica that lost
// the link at the same instant.
func jitterBackoff(d time.Duration) time.Duration {
	return d/2 + rand.N(d)
}

// run is the reconnect loop: stream until the link breaks, back off,
// try again from the last applied position.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	defer r.state.Store(replicaDisconnected)
	backoff := replicaBackoffInitial
	for {
		if ctx.Err() != nil {
			return
		}
		progressed, err := r.stream(ctx)
		if ctx.Err() != nil {
			return
		}
		r.state.Store(replicaDisconnected)
		r.reconnects.Add(1)
		if progressed {
			backoff = replicaBackoffInitial
		}
		r.log.Warn("replication link lost; reconnecting",
			"err", err, "backoff", backoff,
			"segment", r.posSeg.Load(), "offset", r.posOff.Load())
		select {
		case <-ctx.Done():
			return
		case <-time.After(jitterBackoff(backoff)):
		}
		if backoff *= 2; backoff > replicaBackoffMax {
			backoff = replicaBackoffMax
		}
	}
}

// stream runs one connection's lifetime: dial, request, apply pushes
// until an error. progressed reports whether any push was applied, so
// the reconnect loop resets its backoff only on working links.
func (r *Replica) stream(ctx context.Context) (progressed bool, err error) {
	r.state.Store(replicaConnecting)
	d := net.Dialer{Timeout: replicaDialTimeout}
	nc, err := d.DialContext(ctx, "tcp", r.leader)
	if err != nil {
		return false, err
	}
	defer nc.Close()
	// Kill the connection when the replica stops, so a read parked on
	// an idle link returns instead of outliving Stop.
	unhook := context.AfterFunc(ctx, func() { nc.Close() })
	defer unhook()

	bw := bufio.NewWriter(nc)
	req := resp.Command("g.replicate",
		strconv.FormatUint(r.posSeg.Load(), 10),
		strconv.FormatUint(r.posOff.Load(), 10))
	if err := resp.Write(bw, req); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	r.state.Store(replicaSyncing)

	br := bufio.NewReaderSize(nc, 256<<10)
	var batch core.Batch
	for {
		v, err := resp.Read(br)
		if err != nil {
			return progressed, err
		}
		if v.Type == '-' {
			return progressed, fmt.Errorf("leader rejected stream: %s", v.Str)
		}
		if v.Type != '*' || len(v.Array) == 0 {
			return progressed, fmt.Errorf("unexpected push frame type %q", v.Type)
		}
		switch kind := v.Array[0].Str; kind {
		case replKindSnap:
			if len(v.Array) != 3 {
				return progressed, fmt.Errorf("malformed snap frame (%d elements)", len(v.Array))
			}
			cut, perr := strconv.ParseUint(v.Array[1].Str, 10, 64)
			if perr != nil {
				return progressed, fmt.Errorf("malformed snap cut: %w", perr)
			}
			data := v.Array[2].Str
			g, lerr := sharded.Load(strings.NewReader(data), sharded.Config{})
			if lerr != nil {
				return progressed, fmt.Errorf("bootstrap snapshot: %w", lerr)
			}
			r.gm.installGraph(g)
			r.posSeg.Store(cut)
			r.posOff.Store(uint64(wal.SegmentDataStart))
			r.bytes.Add(uint64(len(data)))
			r.snapshots.Add(1)
			r.markStreaming()
			progressed = true
			r.log.Info("bootstrap snapshot installed",
				"bytes", len(data), "edges", g.NumEdges(), "cut_segment", cut)
		case replKindFrames:
			if len(v.Array) != 4 {
				return progressed, fmt.Errorf("malformed frames frame (%d elements)", len(v.Array))
			}
			fseg, e1 := strconv.ParseUint(v.Array[1].Str, 10, 64)
			foff, e2 := strconv.ParseUint(v.Array[2].Str, 10, 64)
			if e1 != nil || e2 != nil {
				return progressed, fmt.Errorf("malformed frames position")
			}
			// The leader streams contiguously from the requested
			// position; the only legitimate jump is to the data start
			// of a later segment (the reader crossed one or more
			// sealed — possibly record-free — segment boundaries).
			// Anything else would silently skip or replay log bytes.
			expSeg, expOff := r.posSeg.Load(), r.posOff.Load()
			contiguous := fseg == expSeg && foff == expOff
			rolled := fseg > expSeg && foff == uint64(wal.SegmentDataStart)
			if !contiguous && !rolled {
				return progressed, fmt.Errorf("position break: got %d/%d, expected %d/%d",
					fseg, foff, expSeg, expOff)
			}
			data := v.Array[3].Str
			var derr error
			batch, derr = wal.AppendChunkOps([]byte(data), batch[:0])
			if derr != nil {
				return progressed, fmt.Errorf("chunk rejected: %w", derr)
			}
			r.gm.withGraph(func(g *sharded.Graph) { g.ApplyBatch(batch) })
			r.posSeg.Store(fseg)
			r.posOff.Store(foff + uint64(len(data)))
			r.bytes.Add(uint64(len(data)))
			r.frames.Add(1)
			r.ops.Add(uint64(len(batch)))
			r.markStreaming()
			progressed = true
		case replKindPing:
			if len(v.Array) != 3 {
				return progressed, fmt.Errorf("malformed ping frame (%d elements)", len(v.Array))
			}
			tseg, e1 := strconv.ParseUint(v.Array[1].Str, 10, 64)
			toff, e2 := strconv.ParseUint(v.Array[2].Str, 10, 64)
			if e1 != nil || e2 != nil {
				return progressed, fmt.Errorf("malformed ping position")
			}
			r.leaderSeg.Store(tseg)
			r.leaderOff.Store(toff)
			r.markStreaming()
		case replKindErr:
			// The leader ended the stream deliberately and said why —
			// leader-side log failure or shutdown, not a network drop.
			msg := "unspecified"
			if len(v.Array) >= 2 {
				msg = v.Array[1].Str
			}
			return progressed, fmt.Errorf("leader ended stream: %s", msg)
		default:
			return progressed, fmt.Errorf("unknown push kind %q", kind)
		}
		// Acknowledge the applied position. On a ping this re-sends the
		// current position, keeping the leader's lag view (and its
		// retention pin) fresh even on an idle link.
		ack := resp.Command("g.replack",
			strconv.FormatUint(r.posSeg.Load(), 10),
			strconv.FormatUint(r.posOff.Load(), 10))
		if err := resp.Write(bw, ack); err != nil {
			return progressed, err
		}
		if err := bw.Flush(); err != nil {
			return progressed, err
		}
	}
}
