package redislike

import (
	"bytes"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// End-to-end replication: a leader with a WAL and a follower pulling it
// over loopback TCP. The suite covers bootstrap (snapshot install),
// steady-state tail streaming, resume after a killed link, bootstrap
// from a compacted leader, write rejection on the follower, the
// introspection surface, and the retention contract (compaction never
// outruns a connected follower's acked position).

// startLeader boots a WAL-backed graph server on loopback.
func startLeader(t *testing.T) (*Server, *GraphModule, string, string) {
	t.Helper()
	s, gm, addr := startGraphServer(t, Config{})
	dir := t.TempDir()
	if err := gm.EnableWAL(dir, wal.Options{Sync: wal.SyncNone}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gm.CloseWAL() })
	return s, gm, addr, dir
}

// startFollower boots a read-only replica server pulling from leaderAddr.
func startFollower(t *testing.T, leaderAddr string) (*Server, *GraphModule, *Replica, string) {
	t.Helper()
	s, gm, addr := startGraphServer(t, Config{})
	r := StartReplica(gm, s, leaderAddr)
	t.Cleanup(r.Stop)
	return s, gm, r, addr
}

type replEdge struct{ u, v uint64 }

// graphEdges scans the full adjacency into a comparable set.
func graphEdges(g *sharded.Graph) map[replEdge]bool {
	m := make(map[replEdge]bool)
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v uint64) bool {
			m[replEdge{u, v}] = true
			return true
		})
		return true
	})
	return m
}

// waitConverged polls until the follower graph is bit-identical to the
// leader graph: equal counters and an equal differential edge scan.
// Leader writes must have stopped before calling.
func waitConverged(t *testing.T, lead, foll *GraphModule, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		lg, fg := lead.Graph(), foll.Graph()
		if lg.NumEdges() == fg.NumEdges() && lg.NumNodes() == fg.NumNodes() {
			if want, got := graphEdges(lg), graphEdges(fg); reflect.DeepEqual(want, got) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: leader %d edges / %d nodes, follower %d / %d",
				lg.NumEdges(), lg.NumNodes(), fg.NumEdges(), fg.NumNodes())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationCatchUp: every write acked by the leader is visible on
// the follower after catch-up — across bootstrap, live tail streaming,
// deletes, and batch inserts.
func TestReplicationCatchUp(t *testing.T) {
	sL, gmL, addrL, _ := startLeader(t)

	g := gmL.Graph()
	for i := uint64(0); i < 2000; i++ {
		g.InsertEdge(i%97, i)
	}

	_, gmF, r, _ := startFollower(t, addrL)
	waitConverged(t, gmL, gmF, 10*time.Second)
	if got := r.snapshots.Load(); got != 1 {
		t.Fatalf("bootstrap snapshots = %d, want 1", got)
	}

	// Live tail: more writes after catch-up, including deletes and a
	// batched insert through the command surface.
	for i := uint64(2000); i < 2600; i++ {
		g.InsertEdge(i%97, i)
	}
	for i := uint64(0); i < 300; i++ {
		g.DeleteEdge(i%97, i)
	}
	if got := dispatch(sL, "g.minsert", "100001", "100002", "100001", "100003"); got.Type == '-' {
		t.Fatalf("g.minsert = %+v", got)
	}
	waitConverged(t, gmL, gmF, 10*time.Second)
	if got := r.snapshots.Load(); got != 1 {
		t.Fatalf("tail streaming reinstalled a snapshot: %d, want 1", got)
	}
	if r.ops.Load() == 0 || r.frames.Load() == 0 {
		t.Fatalf("tail streaming counters empty: ops=%d frames=%d", r.ops.Load(), r.frames.Load())
	}
}

// TestReplicationBootstrapFromCompacted: a follower connecting after the
// leader has checkpointed (and deleted early segments) bootstraps from a
// snapshot and still converges, including post-checkpoint writes.
func TestReplicationBootstrapFromCompacted(t *testing.T) {
	_, gmL, addrL, _ := startLeader(t)
	g := gmL.Graph()
	for i := uint64(0); i < 800; i++ {
		g.InsertEdge(i%53, i)
	}
	if _, err := gmL.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(800); i < 1100; i++ {
		g.InsertEdge(i%53, i)
	}

	_, gmF, r, _ := startFollower(t, addrL)
	waitConverged(t, gmL, gmF, 10*time.Second)
	if got := r.snapshots.Load(); got != 1 {
		t.Fatalf("snapshots installed = %d, want 1", got)
	}
	if !gmF.Graph().HasEdge(1050%53, 1050) {
		t.Fatal("post-checkpoint edge missing on follower")
	}
}

// testProxy is a kill-switch TCP relay between follower and leader, so
// tests can sever the replication link without stopping either side.
type testProxy struct {
	t      *testing.T
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  []net.Conn
}

func newProxy(t *testing.T, target string) *testProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &testProxy{t: t, ln: ln, target: target}
	t.Cleanup(func() { ln.Close(); p.killConns() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go p.handle(c)
		}
	}()
	return p
}

func (p *testProxy) addr() string { return p.ln.Addr().String() }

func (p *testProxy) handle(c net.Conn) {
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		c.Close()
		return
	}
	p.mu.Lock()
	p.conns = append(p.conns, c, up)
	p.mu.Unlock()
	go func() { io.Copy(up, c); up.Close(); c.Close() }()
	go func() { io.Copy(c, up); c.Close(); up.Close() }()
}

// killConns severs every active relayed connection; the listener stays
// up so the follower can reconnect through the same address.
func (p *testProxy) killConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// TestReplicationResume: killing the link mid-stream forces a
// reconnect, and the follower resumes from its acked position — no
// second bootstrap snapshot — and converges on writes it missed.
func TestReplicationResume(t *testing.T) {
	_, gmL, addrL, _ := startLeader(t)
	g := gmL.Graph()
	for i := uint64(0); i < 600; i++ {
		g.InsertEdge(i%41, i)
	}

	proxy := newProxy(t, addrL)
	_, gmF, r, _ := startFollower(t, proxy.addr())
	waitConverged(t, gmL, gmF, 10*time.Second)
	if got := r.snapshots.Load(); got != 1 {
		t.Fatalf("bootstrap snapshots = %d, want 1", got)
	}

	proxy.killConns()
	for i := uint64(600); i < 1200; i++ {
		g.InsertEdge(i%41, i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.reconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never noticed the severed link")
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitConverged(t, gmL, gmF, 10*time.Second)
	if got := r.snapshots.Load(); got != 1 {
		t.Fatalf("resume installed a snapshot: %d, want 1 (log should have been servable)", got)
	}
}

// TestFollowerRejectsWrites: the follower answers writes with a typed
// -READONLY error while reads keep working, and the pipeline stays in
// sync across the rejection.
func TestFollowerRejectsWrites(t *testing.T) {
	_, gmL, addrL, _ := startLeader(t)
	gmL.Graph().InsertEdge(7, 8)
	sF, gmF, _, addrF := startFollower(t, addrL)
	waitConverged(t, gmL, gmF, 10*time.Second)

	p := dialPipe(t, addrF)
	p.push("g.insert", "1", "2")  // write: rejected
	p.push("g.query", "7", "8")   // read: served
	p.push("g.del", "7", "8")     // write: rejected
	p.push("g.replack", "0", "0") // stream-only command on a plain conn
	p.push("g.getneighbors", "7") // read: still in sync
	p.flush()

	if got := p.read(); got.Type != '-' || !strings.HasPrefix(got.Str, "READONLY ") {
		t.Fatalf("write on replica = %+v, want -READONLY", got)
	}
	if got := p.read(); got.Int != 1 {
		t.Fatalf("read on replica = %+v", got)
	}
	if got := p.read(); got.Type != '-' || !strings.HasPrefix(got.Str, "READONLY ") {
		t.Fatalf("delete on replica = %+v, want -READONLY", got)
	}
	if got := p.read(); got.Type != '-' {
		t.Fatalf("g.replack on plain connection = %+v, want error", got)
	}
	if got := p.read(); len(got.Array) != 1 {
		t.Fatalf("neighbors after rejections = %+v", got)
	}

	// The write never happened.
	if gmF.Graph().HasEdge(1, 2) {
		t.Fatal("rejected write mutated the replica")
	}

	// g.replicate needs a WAL; the follower has none.
	if got := dispatch(sF, "g.replicate", "0", "0"); got.Type != '-' {
		t.Fatalf("g.replicate without wal = %+v, want error", got)
	}
}

// TestReplicationInfoAndMetrics: both roles expose their replication
// state through G.INFO and /metrics.
func TestReplicationInfoAndMetrics(t *testing.T) {
	sL, gmL, addrL, _ := startLeader(t)
	gmL.Graph().InsertEdge(1, 2)
	sF, gmF, _, _ := startFollower(t, addrL)
	waitConverged(t, gmL, gmF, 10*time.Second)

	// The link registers on the leader as part of stream setup; poll
	// briefly in case convergence won the race with addLink.
	deadline := time.Now().Add(5 * time.Second)
	for len(gmL.replLinks()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never registered the follower link")
		}
		time.Sleep(5 * time.Millisecond)
	}

	linfo := dispatch(sL, "g.info", "replication").Str
	for _, want := range []string{"role:leader", "connected_replicas:1", "retention_floor_segment:"} {
		if !strings.Contains(linfo, want) {
			t.Fatalf("leader G.INFO replication missing %q:\n%s", want, linfo)
		}
	}
	finfo := dispatch(sF, "g.info", "replication").Str
	for _, want := range []string{"role:replica", "leader:" + addrL, "read_only:1", "applied_segment:"} {
		if !strings.Contains(finfo, want) {
			t.Fatalf("follower G.INFO replication missing %q:\n%s", want, finfo)
		}
	}

	var lm, fm bytes.Buffer
	if err := sL.WriteMetrics(&lm); err != nil {
		t.Fatal(err)
	}
	if err := sF.WriteMetrics(&fm); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cg_repl_role 0", "cg_repl_connected_replicas 1", "cg_repl_sent_bytes"} {
		if !strings.Contains(lm.String(), want) {
			t.Fatalf("leader metrics missing %q", want)
		}
	}
	for _, want := range []string{"cg_repl_role 1", "cg_repl_replica_snapshots_total 1", "cg_repl_replica_streaming"} {
		if !strings.Contains(fm.String(), want) {
			t.Fatalf("follower metrics missing %q", want)
		}
	}
}

// TestCompactionHonorsReplicaAck is the retention contract end to end:
// checkpoints hammering the log while a follower streams never delete a
// segment the follower still needs — the stream survives every
// compaction without a re-bootstrap, and old segments are reclaimed
// once acked.
func TestCompactionHonorsReplicaAck(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	_, gmL, addrL, dir := startLeader(t)
	g := gmL.Graph()
	for i := uint64(0); i < 300; i++ {
		g.InsertEdge(i%31, i)
	}
	_, gmF, r, _ := startFollower(t, addrL)
	waitConverged(t, gmL, gmF, 10*time.Second)

	next := uint64(300)
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 200; i++ {
			g.InsertEdge(next%31, next)
			next++
		}
		if _, err := gmL.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitConverged(t, gmL, gmF, 15*time.Second)

	if got := r.snapshots.Load(); got != 1 {
		t.Fatalf("compaction forced a re-bootstrap: snapshots = %d, want 1", got)
	}
	if got := r.reconnects.Load(); got != 0 {
		t.Fatalf("stream broke %d times during compaction, want 0", got)
	}
	if _, held := gmL.wal.RetentionFloor(); !held {
		t.Fatal("no retention pin held with a connected follower")
	}

	// Once the follower has acked the tail, a final checkpoint reclaims
	// everything below it — retention is a floor, not a leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := gmL.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) <= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("segments never reclaimed: %d files remain (%v)", len(segs), segs)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestWALInfoScrapeDuringSwap is the observability pin for the WAL
// enable/disable window: concurrent G.INFO wal scrapes, /metrics
// scrapes and a pipelined TCP client must stay well-formed and in sync
// while the WAL is repeatedly enabled, checkpointed and closed under
// them. Run with -race this doubles as the lock-free walPtr audit.
func TestWALInfoScrapeDuringSwap(t *testing.T) {
	s, gm, addr := startGraphServer(t, Config{})
	gm.Graph().InsertEdge(1, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// In-process scrapers: G.INFO wal via Dispatch and raw /metrics.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := dispatch(s, "g.info", "wal"); got.Type != '$' || !strings.Contains(got.Str, "enabled:") {
					panic("malformed G.INFO wal reply: " + got.Str)
				}
				if err := s.WriteMetrics(io.Discard); err != nil {
					panic(err)
				}
			}
		}()
	}

	// A pipelined TCP client interleaving scrapes with reads: replies
	// must come back one per command, in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := dialPipe(t, addr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.push("g.info", "wal")
			p.push("g.query", "1", "2")
			p.push("g.info", "replication")
			p.flush()
			if got := p.read(); got.Type != '$' {
				panic("pipelined G.INFO wal desynced")
			}
			if got := p.read(); got.Int != 1 {
				panic("pipelined read desynced")
			}
			if got := p.read(); got.Type != '$' || !strings.Contains(got.Str, "role:") {
				panic("pipelined G.INFO replication desynced")
			}
		}
	}()

	// The swap loop: enable → write → checkpoint → close, twice over
	// two directories so enable-time checkpoints fire too.
	dirs := []string{t.TempDir(), t.TempDir()}
	for i := 0; i < 30; i++ {
		dir := dirs[i%2]
		if err := gm.EnableWAL(dir, wal.Options{Sync: wal.SyncNone}); err != nil {
			t.Fatal(err)
		}
		gm.Graph().InsertEdge(uint64(i)+10, uint64(i)+11)
		if _, err := gm.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := gm.CloseWAL(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
