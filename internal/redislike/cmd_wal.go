package redislike

import (
	"fmt"

	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// Durability control plane: the WAL API methods and their command
// handlers. Everything here serialises on walMu; the data plane never
// touches it.

// EnableWAL opens (creating if needed) the write-ahead log in dir and
// attaches it to the graph, making every subsequent acknowledged
// mutation durable. If the graph already holds edges, an initial
// checkpoint captures them so recovery of dir is complete on its own —
// unless the graph is exactly the one RecoverWAL just rebuilt from this
// same directory, in which case the directory already describes it and
// the (full-snapshot-sized) checkpoint is skipped.
func (gm *GraphModule) EnableWAL(dir string, opts wal.Options) error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return fmt.Errorf("wal already enabled in %s", gm.wal.Dir())
	}
	w, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	g := gm.Graph()
	g.SetWAL(w)
	r := gm.recovered
	coveredByDir := r.g == g && r.dir == dir && g.Mutations() == r.muts
	if g.NumEdges() > 0 && !coveredByDir {
		if _, err := wal.Checkpoint(g, w); err != nil {
			g.SetWAL(nil)
			w.Close()
			return err
		}
	}
	gm.wal = w
	gm.walPtr.Store(w)
	gm.log.Info("wal enabled", "dir", dir, "sync", opts.Sync.String())
	return nil
}

// RecoverWAL rebuilds the graph from dir — newest checkpoint snapshot
// plus log tail — and installs it. It must run before EnableWAL; the
// usual boot sequence is RecoverWAL then EnableWAL on the same dir.
// While the rebuild and swap are in flight the host server's loading
// flag is up, so dispatch rejects write commands with -LOADING instead
// of letting them race the swap (or land on the graph being replaced).
func (gm *GraphModule) RecoverWAL(dir string) (wal.RecoverStats, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return wal.RecoverStats{}, fmt.Errorf("wal enabled in %s; replay must happen before wal_enable", gm.wal.Dir())
	}
	gm.setLoading(true)
	defer gm.setLoading(false)
	g, stats, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		gm.log.Error("wal recovery failed", "dir", dir, "err", err)
		return stats, err
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	gm.releaseStaleViews()
	gm.recovered.dir, gm.recovered.g = dir, g
	gm.recovered.muts = g.Mutations()
	gm.log.Info("wal recovered", "dir", dir,
		"edges", g.NumEdges(), "records", stats.Replay.Records,
		"segments", stats.Replay.Segments, "torn_bytes", stats.Replay.TornBytes,
		"snapshot", stats.Snapshot)
	return stats, nil
}

// Checkpoint snapshots the graph into the WAL directory and truncates
// the log segments the snapshot supersedes.
func (gm *GraphModule) Checkpoint() (string, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return "", fmt.Errorf("wal not enabled")
	}
	path, err := wal.Checkpoint(gm.Graph(), gm.wal)
	if err != nil {
		gm.log.Error("checkpoint failed", "err", err)
		return "", err
	}
	gm.log.Info("checkpoint written", "path", path)
	return path, nil
}

// CloseWAL detaches and closes the WAL, flushing everything pending.
func (gm *GraphModule) CloseWAL() error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return nil
	}
	gm.Graph().SetWAL(nil)
	// Clear the lock-free mirror BEFORE closing: a /metrics or G.INFO
	// scrape that loads the pointer must never observe a WAL that Close
	// is tearing down. (Stats on a closed WAL is also well-defined —
	// counters are final and Closed is set — so a scrape that loaded
	// the pointer just before this store stays safe too.)
	gm.walPtr.Store(nil)
	err := gm.wal.Close()
	gm.wal = nil
	if err != nil {
		gm.log.Error("wal close failed", "err", err)
	} else {
		gm.log.Info("wal closed")
	}
	return err
}

func (gm *GraphModule) walEnable(ctx *Ctx) error {
	mode := ""
	if len(ctx.Args) == 2 {
		mode = ctx.ArgString(1)
	}
	sync, err := wal.ParseSyncPolicy(mode)
	if err != nil {
		return &BadArgError{Cmd: ctx.Name, Detail: err.Error()}
	}
	if err := gm.EnableWAL(ctx.ArgString(0), wal.Options{Sync: sync}); err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplySimple("OK")
	return nil
}

func (gm *GraphModule) walReplay(ctx *Ctx) error {
	stats, err := gm.RecoverWAL(ctx.ArgString(0))
	if err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplyBulkString(fmt.Sprintf("edges=%d records=%d segments=%d torn_bytes=%d snapshot=%s",
		gm.Graph().NumEdges(), stats.Replay.Records, stats.Replay.Segments,
		stats.Replay.TornBytes, stats.Snapshot))
	return nil
}

func (gm *GraphModule) checkpoint(ctx *Ctx) error {
	path, err := gm.Checkpoint()
	if err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplyBulkString(path)
	return nil
}
