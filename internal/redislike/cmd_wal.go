package redislike

import (
	"fmt"
	"strings"

	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// Durability control plane: the WAL API methods and their command
// handlers. Everything here serialises on walMu; the data plane never
// touches it.

// WALErrorPolicy selects what a WAL storage failure does to the server
// (cgserver -wal-on-error). The default, read-only, keeps the process
// up: the failing write is errored, the server degrades to -MISCONF on
// writes while reads keep serving, and wal_resume restores service once
// the operator fixes the storage. Panic crashes instead — for
// deployments where a supervisor restart against a healthy disk beats
// running without durability.
type WALErrorPolicy int32

const (
	WALOnErrorReadOnly WALErrorPolicy = iota
	WALOnErrorPanic
)

func (p WALErrorPolicy) String() string {
	if p == WALOnErrorPanic {
		return "panic"
	}
	return "readonly"
}

// ParseWALErrorPolicy parses a -wal-on-error flag value. The empty
// string means the default read-only policy.
func ParseWALErrorPolicy(s string) (WALErrorPolicy, error) {
	switch strings.ToLower(s) {
	case "", "readonly":
		return WALOnErrorReadOnly, nil
	case "panic":
		return WALOnErrorPanic, nil
	}
	return 0, fmt.Errorf("unknown wal error policy %q (want readonly|panic)", s)
}

// SetWALErrorPolicy selects the storage-failure policy.
func (gm *GraphModule) SetWALErrorPolicy(p WALErrorPolicy) { gm.walPolicy.Store(int32(p)) }

// WALErrorPolicyValue returns the configured storage-failure policy.
func (gm *GraphModule) WALErrorPolicyValue() WALErrorPolicy {
	return WALErrorPolicy(gm.walPolicy.Load())
}

// walFailed reacts to an observed WAL failure per the configured
// policy: panic, or degrade the host server to read-only serving. It is
// called from the data plane on every write that observes the sticky
// log error, so the degrade edge (log line included) fires exactly
// once.
func (gm *GraphModule) walFailed(err error) {
	if WALErrorPolicy(gm.walPolicy.Load()) == WALOnErrorPanic {
		gm.log.Error("wal failure with -wal-on-error=panic", "err", err)
		panic(fmt.Sprintf("wal failure (-wal-on-error=panic): %v", err))
	}
	if s := gm.host.Load(); s != nil {
		if s.SetDegraded("wal: " + err.Error()) {
			gm.log.Error("wal failure; degrading to read-only serving (run wal_resume after fixing storage)",
				"err", err)
		}
	}
}

// EnableWAL opens (creating if needed) the write-ahead log in dir and
// attaches it to the graph, making every subsequent acknowledged
// mutation durable. If the graph already holds edges, an initial
// checkpoint captures them so recovery of dir is complete on its own —
// unless the graph is exactly the one RecoverWAL just rebuilt from this
// same directory, in which case the directory already describes it and
// the (full-snapshot-sized) checkpoint is skipped.
func (gm *GraphModule) EnableWAL(dir string, opts wal.Options) error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return fmt.Errorf("wal already enabled in %s", gm.wal.Dir())
	}
	w, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	g := gm.Graph()
	g.SetWAL(w)
	r := gm.recovered
	coveredByDir := r.g == g && r.dir == dir && g.Mutations() == r.muts
	if g.NumEdges() > 0 && !coveredByDir {
		if _, err := wal.Checkpoint(g, w); err != nil {
			g.SetWAL(nil)
			w.Close()
			return err
		}
	}
	gm.wal = w
	gm.walPtr.Store(w)
	// Remembered so ResumeWAL can reopen the same log with the same
	// policy after a storage failure.
	gm.walOpts, gm.walDir = opts, dir
	gm.log.Info("wal enabled", "dir", dir, "sync", opts.Sync.String())
	return nil
}

// ResumeWAL recovers from a WAL storage failure: it detaches and closes
// the poisoned log, reopens the directory (truncating any torn tail),
// and cuts a fresh checkpoint before reattaching. The checkpoint is the
// correctness keystone — mutations that were applied in memory but
// whose append failed exist nowhere on disk, so the reopened directory
// must be made to describe the live graph before any new write is acked
// against it. On success the host server leaves degraded mode.
func (gm *GraphModule) ResumeWAL() error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.walDir == "" {
		return fmt.Errorf("wal not enabled")
	}
	dir := gm.walDir
	g := gm.Graph()
	// gm.wal is nil when a previous resume attempt already tore the
	// poisoned log down but could not reopen it (disk still full) — the
	// retry just goes straight to the reopen.
	if gm.wal != nil {
		g.SetWAL(nil)
		gm.walPtr.Store(nil)
		// The close of a poisoned WAL reports the sticky error; that
		// failure is exactly why we are here, so it is logged and dropped.
		if err := gm.wal.Close(); err != nil {
			gm.log.Warn("wal resume: closing failed log", "err", err)
		}
		gm.wal = nil
	}
	w, err := wal.Open(dir, gm.walOpts)
	if err != nil {
		return fmt.Errorf("reopen wal in %s: %w", dir, err)
	}
	g.SetWAL(w)
	if _, err := wal.Checkpoint(g, w); err != nil {
		g.SetWAL(nil)
		w.Close()
		return fmt.Errorf("checkpoint after reopen (storage still failing?): %w", err)
	}
	gm.wal = w
	gm.walPtr.Store(w)
	if s := gm.host.Load(); s != nil {
		s.ClearDegraded()
	}
	gm.log.Info("wal resumed", "dir", dir)
	return nil
}

// RecoverWAL rebuilds the graph from dir — newest checkpoint snapshot
// plus log tail — and installs it. It must run before EnableWAL; the
// usual boot sequence is RecoverWAL then EnableWAL on the same dir.
// While the rebuild and swap are in flight the host server's loading
// flag is up, so dispatch rejects write commands with -LOADING instead
// of letting them race the swap (or land on the graph being replaced).
func (gm *GraphModule) RecoverWAL(dir string) (wal.RecoverStats, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return wal.RecoverStats{}, fmt.Errorf("wal enabled in %s; replay must happen before wal_enable", gm.wal.Dir())
	}
	gm.setLoading(true)
	defer gm.setLoading(false)
	g, stats, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		gm.log.Error("wal recovery failed", "dir", dir, "err", err)
		return stats, err
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	gm.releaseStaleViews()
	gm.recovered.dir, gm.recovered.g = dir, g
	gm.recovered.muts = g.Mutations()
	gm.log.Info("wal recovered", "dir", dir,
		"edges", g.NumEdges(), "records", stats.Replay.Records,
		"segments", stats.Replay.Segments, "torn_bytes", stats.Replay.TornBytes,
		"snapshot", stats.Snapshot)
	return stats, nil
}

// Checkpoint snapshots the graph into the WAL directory and truncates
// the log segments the snapshot supersedes.
func (gm *GraphModule) Checkpoint() (string, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return "", fmt.Errorf("wal not enabled")
	}
	path, err := wal.Checkpoint(gm.Graph(), gm.wal)
	if err != nil {
		gm.log.Error("checkpoint failed", "err", err)
		return "", err
	}
	gm.log.Info("checkpoint written", "path", path)
	return path, nil
}

// CloseWAL detaches and closes the WAL, flushing everything pending.
func (gm *GraphModule) CloseWAL() error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	// A deliberate close forgets the directory: wal_resume must not
	// resurrect a log the operator shut down on purpose.
	gm.walDir = ""
	if gm.wal == nil {
		return nil
	}
	gm.Graph().SetWAL(nil)
	// Clear the lock-free mirror BEFORE closing: a /metrics or G.INFO
	// scrape that loads the pointer must never observe a WAL that Close
	// is tearing down. (Stats on a closed WAL is also well-defined —
	// counters are final and Closed is set — so a scrape that loaded
	// the pointer just before this store stays safe too.)
	gm.walPtr.Store(nil)
	err := gm.wal.Close()
	gm.wal = nil
	if err != nil {
		gm.log.Error("wal close failed", "err", err)
	} else {
		gm.log.Info("wal closed")
	}
	return err
}

func (gm *GraphModule) walEnable(ctx *Ctx) error {
	mode := ""
	if len(ctx.Args) == 2 {
		mode = ctx.ArgString(1)
	}
	sync, err := wal.ParseSyncPolicy(mode)
	if err != nil {
		return &BadArgError{Cmd: ctx.Name, Detail: err.Error()}
	}
	if err := gm.EnableWAL(ctx.ArgString(0), wal.Options{Sync: sync}); err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplySimple("OK")
	return nil
}

func (gm *GraphModule) walReplay(ctx *Ctx) error {
	stats, err := gm.RecoverWAL(ctx.ArgString(0))
	if err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplyBulkString(fmt.Sprintf("edges=%d records=%d segments=%d torn_bytes=%d snapshot=%s",
		gm.Graph().NumEdges(), stats.Replay.Records, stats.Replay.Segments,
		stats.Replay.TornBytes, stats.Snapshot))
	return nil
}

func (gm *GraphModule) checkpoint(ctx *Ctx) error {
	path, err := gm.Checkpoint()
	if err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplyBulkString(path)
	return nil
}

func (gm *GraphModule) walResume(ctx *Ctx) error {
	if err := gm.ResumeWAL(); err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	ctx.ReplySimple("OK")
	return nil
}
