package redislike

import (
	"strconv"
	"sync"
	"testing"

	"cuckoograph/internal/resp"
)

// TestConcurrentDispatch drives module and built-in commands from many
// goroutines at once — the workload the per-shard locking design
// exists for. Run under -race this is the server layer's safety check.
func TestConcurrentDispatch(t *testing.T) {
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := strconv.Itoa(base*perWorker + i)
				v := strconv.Itoa(i)
				if got := s.Dispatch(resp.Command("g.insert", u, v)); got.Int != 1 {
					t.Errorf("insert (%s,%s) = %+v", u, v, got)
					return
				}
				s.Dispatch(resp.Command("g.query", u, v))
				s.Dispatch(resp.Command("g.getneighbors", u))
				if i%4 == 0 {
					s.Dispatch(resp.Command("set", u, v))
					s.Dispatch(resp.Command("get", u))
				}
			}
		}(w)
	}
	// A snapshotter races with the writers; every snapshot must parse.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			snap := s.SaveRDB()
			s2 := NewServer()
			gm2, mod2 := NewGraphModule()
			s2.LoadModule(mod2)
			if err := s2.LoadRDB(snap); err != nil {
				t.Errorf("snapshot %d failed to load: %v", i, err)
				return
			}
			_ = gm2.Graph().NumEdges()
		}
	}()
	wg.Wait()

	if got := gm.Graph().NumEdges(); got != workers*perWorker {
		t.Fatalf("edges = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w += 3 {
		u := strconv.Itoa(w*perWorker + 1)
		if got := s.Dispatch(resp.Command("g.query", u, "1")); got.Int != 1 {
			t.Fatalf("edge (%s,1) missing after concurrent run", u)
		}
	}
}

// TestLoadRDBDoesNotDropInFlightWrites restores snapshots into the SAME
// module while writers keep inserting: once a writer's insert has been
// acknowledged after the final restore, it must be queryable — an
// insert may never land on a discarded pre-restore graph.
func TestLoadRDBDoesNotDropInFlightWrites(t *testing.T) {
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	// Seed a base graph and snapshot it.
	for i := 0; i < 100; i++ {
		s.Dispatch(resp.Command("g.insert", strconv.Itoa(i), strconv.Itoa(i+1)))
	}
	snap := s.SaveRDB()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := s.LoadRDB(snap); err != nil {
				t.Errorf("restore %d: %v", i, err)
				return
			}
		}
	}()
	// Writers race with the restores; their edges may legitimately be
	// wiped by a later restore, but must never be lost to a swap.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := strconv.Itoa(1000 + base*1000 + i)
				s.Dispatch(resp.Command("g.insert", u, "7"))
			}
		}(w)
	}
	wg.Wait()
	<-done

	// All restores are over; an acknowledged insert must stick now.
	if got := s.Dispatch(resp.Command("g.insert", "999999", "7")); got.Int != 1 {
		t.Fatalf("post-restore insert = %+v", got)
	}
	if got := s.Dispatch(resp.Command("g.query", "999999", "7")); got.Int != 1 {
		t.Fatal("acknowledged insert lost after restores")
	}
	if gm.Graph().NumEdges() < 100 {
		t.Fatalf("base edges missing: %d", gm.Graph().NumEdges())
	}
}
