package redislike

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"cuckoograph/internal/resp"
)

// pipeClient is a raw RESP client for taxonomy tests: it writes whole
// pipelined bursts and reads replies one at a time, so a desynced
// stream shows up as a wrong or missing reply.
type pipeClient struct {
	t *testing.T
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func dialPipe(t *testing.T, addr string) *pipeClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &pipeClient{t: t, c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

func (p *pipeClient) push(args ...string) {
	p.t.Helper()
	if err := resp.Write(p.w, resp.Command(args...)); err != nil {
		p.t.Fatal(err)
	}
}

func (p *pipeClient) flush() {
	p.t.Helper()
	if err := p.w.Flush(); err != nil {
		p.t.Fatal(err)
	}
}

func (p *pipeClient) read() resp.Value {
	p.t.Helper()
	p.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	v, err := resp.Read(p.r)
	if err != nil {
		p.t.Fatal(err)
	}
	return v
}

func startGraphServer(t *testing.T, cfg Config) (*Server, *GraphModule, string) {
	t.Helper()
	s := NewServerWith(cfg)
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, gm, addr
}

// TestErrorTaxonomyPipelined is the satellite pin: a pipelined burst
// mixing valid commands with every client-side failure mode gets one
// well-formed reply per command, in order, and the connection stays
// usable — an error never desyncs the pipeline.
func TestErrorTaxonomyPipelined(t *testing.T) {
	_, _, addr := startGraphServer(t, Config{})
	p := dialPipe(t, addr)

	p.push("g.insert", "1", "2")       // valid write
	p.push("g.insert", "1")            // arity violation
	p.push("nosuch", "x")              // unknown command
	p.push("g.minsert", "1", "2", "3") // malformed batch (odd args)
	p.push("g.insert", "x", "2")       // malformed node id
	p.push("g.query", "1", "2")        // valid read, must still be answered
	p.flush()

	if got := p.read(); got.Int != 1 {
		t.Fatalf("reply 1 (insert) = %+v", got)
	}
	if got := p.read(); got.Type != '-' || got.Str != "ERR wrong number of arguments for 'g.insert' command" {
		t.Fatalf("reply 2 (arity) = %+v", got)
	}
	if got := p.read(); got.Type != '-' || got.Str != "ERR unknown command 'nosuch'" {
		t.Fatalf("reply 3 (unknown) = %+v", got)
	}
	if got := p.read(); got.Type != '-' || !strings.HasPrefix(got.Str, "ERR g.minsert: expected <u> <v>") {
		t.Fatalf("reply 4 (odd batch) = %+v", got)
	}
	if got := p.read(); got.Type != '-' || !strings.HasPrefix(got.Str, `ERR g.insert: bad node id "x"`) {
		t.Fatalf("reply 5 (bad id) = %+v", got)
	}
	if got := p.read(); got.Int != 1 {
		t.Fatalf("reply 6 (query) = %+v", got)
	}

	// The connection survived every error in the burst.
	p.push("PING")
	p.flush()
	if got := p.read(); got.Str != "PONG" {
		t.Fatalf("post-burst PING = %+v", got)
	}
}

// TestLoadingRejectsWrites pins the -LOADING policy: while a recovery
// swap is in flight, write-flagged commands are rejected with the
// LOADING class and reads keep flowing, all in pipeline order.
func TestLoadingRejectsWrites(t *testing.T) {
	s, _, addr := startGraphServer(t, Config{})
	p := dialPipe(t, addr)

	p.push("g.insert", "1", "2")
	p.flush()
	if got := p.read(); got.Int != 1 {
		t.Fatalf("pre-loading insert = %+v", got)
	}

	s.SetLoading(true)
	p.push("g.insert", "3", "4") // write: rejected
	p.push("g.query", "1", "2")  // read: served
	p.push("g.info", "server")   // admin: served, reports loading:1
	p.flush()
	if got := p.read(); got.Type != '-' || !strings.HasPrefix(got.Str, "LOADING ") {
		t.Fatalf("write during loading = %+v", got)
	}
	if got := p.read(); got.Int != 1 {
		t.Fatalf("read during loading = %+v", got)
	}
	if got := p.read(); !strings.Contains(got.Str, "loading:1") {
		t.Fatalf("g.info during loading = %+v", got)
	}

	s.SetLoading(false)
	p.push("g.insert", "3", "4")
	p.flush()
	if got := p.read(); got.Int != 1 {
		t.Fatalf("write after loading = %+v", got)
	}
}

// TestMaxClientsRejected pins admission control: the connection over
// the limit is answered with -MAXCLIENTS and closed — not hung.
func TestMaxClientsRejected(t *testing.T) {
	_, _, addr := startGraphServer(t, Config{MaxConns: 1})

	p1 := dialPipe(t, addr)
	p1.push("PING")
	p1.flush()
	if got := p1.read(); got.Str != "PONG" {
		t.Fatalf("first conn PING = %+v", got)
	}

	p2 := dialPipe(t, addr)
	p2.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	v, err := resp.Read(p2.r)
	if err != nil {
		t.Fatalf("over-limit conn: want MAXCLIENTS reply, got read error %v", err)
	}
	if v.Type != '-' || v.Str != "MAXCLIENTS connection limit of 1 reached" {
		t.Fatalf("over-limit reply = %+v", v)
	}
	if _, err := resp.Read(p2.r); err == nil {
		t.Fatal("over-limit conn not closed after reject")
	}

	// Dropping the first connection frees the slot.
	p1.c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p3 := dialPipe(t, addr)
		p3.push("PING")
		p3.flush()
		p3.c.SetReadDeadline(time.Now().Add(time.Second))
		v, err := resp.Read(p3.r)
		if err == nil && v.Str == "PONG" {
			break
		}
		p3.c.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after first conn closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProtocolErrorReplies pins the malformed-frame path: garbage bytes
// get a typed error reply before the (unrecoverable) connection closes.
func TestProtocolErrorReplies(t *testing.T) {
	_, _, addr := startGraphServer(t, Config{})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("!garbage\r\n")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	v, err := resp.Read(bufio.NewReader(c))
	if err != nil {
		t.Fatalf("want protocol error reply, got %v", err)
	}
	if v.Type != '-' || !strings.HasPrefix(v.Str, "ERR protocol: ") {
		t.Fatalf("protocol error reply = %+v", v)
	}
}

// TestUnknownCommandsPoolInMetrics: unknown names must not create
// unbounded per-name meters (an attacker could otherwise grow the
// metrics map without bound); they pool under "unknown".
func TestUnknownCommandsPoolInMetrics(t *testing.T) {
	s, _, addr := startGraphServer(t, Config{})
	p := dialPipe(t, addr)
	p.push("nosuch1")
	p.push("nosuch2")
	p.push("PING")
	p.flush()
	p.read()
	p.read()
	if got := p.read(); got.Str != "PONG" {
		t.Fatalf("PING = %+v", got)
	}
	if got := s.Metrics().CommandCalls("unknown"); got != 2 {
		t.Fatalf("unknown pool = %d, want 2", got)
	}
	if got := s.Metrics().CommandCalls("nosuch1"); got != 0 {
		t.Fatalf("per-name meter for unknown command created (%d)", got)
	}
}
