package redislike

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"cuckoograph/internal/core"
	"cuckoograph/internal/resp"
)

// GraphModule wraps a CuckooGraph as a redislike module, providing the
// extended commands of §V-F — insert, del, query, getneighbors — and
// the save_rdb/load_rdb persistence interfaces.
type GraphModule struct {
	g *core.Graph
}

// NewGraphModule returns the CuckooGraph module ready for LoadModule.
func NewGraphModule() (*GraphModule, *Module) {
	gm := &GraphModule{g: core.NewGraph(core.Config{})}
	m := &Module{
		Name: "cuckoograph",
		Commands: map[string]HandlerFunc{
			"g.insert":       gm.insert,
			"g.del":          gm.del,
			"g.query":        gm.query,
			"g.getneighbors": gm.getNeighbors,
		},
		SaveRDB: gm.saveRDB,
		LoadRDB: gm.loadRDB,
	}
	return gm, m
}

// Graph exposes the underlying graph for in-process inspection.
func (gm *GraphModule) Graph() *core.Graph { return gm.g }

func parseEdge(args []string) (u, v uint64, err error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("expected <u> <v>")
	}
	u, err = strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[0])
	}
	v, err = strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[1])
	}
	return u, v, nil
}

func (gm *GraphModule) insert(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.insert: " + err.Error())
	}
	if gm.g.InsertEdge(u, v) {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) del(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.del: " + err.Error())
	}
	if gm.g.DeleteEdge(u, v) {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) query(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.query: " + err.Error())
	}
	if gm.g.HasEdge(u, v) {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) getNeighbors(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.getneighbors: expected <u>")
	}
	u, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.getneighbors: bad node id " + strconv.Quote(args[0]))
	}
	var out []resp.Value
	gm.g.ForEachSuccessor(u, func(v uint64) bool {
		out = append(out, resp.Bulk(strconv.FormatUint(v, 10)))
		return true
	})
	return resp.Array(out...)
}

// saveRDB serialises every edge as two big-endian uint64s, prefixed by
// the edge count.
func (gm *GraphModule) saveRDB() []byte {
	buf := make([]byte, 8, 8+gm.g.NumEdges()*16)
	binary.BigEndian.PutUint64(buf, gm.g.NumEdges())
	gm.g.ForEachNode(func(u uint64) bool {
		gm.g.ForEachSuccessor(u, func(v uint64) bool {
			var rec [16]byte
			binary.BigEndian.PutUint64(rec[:8], u)
			binary.BigEndian.PutUint64(rec[8:], v)
			buf = append(buf, rec[:]...)
			return true
		})
		return true
	})
	return buf
}

func (gm *GraphModule) loadRDB(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("cuckoograph rdb: truncated header")
	}
	n := binary.BigEndian.Uint64(data[:8])
	data = data[8:]
	if uint64(len(data)) != n*16 {
		return fmt.Errorf("cuckoograph rdb: want %d records, have %d bytes", n, len(data))
	}
	g := core.NewGraph(core.Config{})
	for i := uint64(0); i < n; i++ {
		u := binary.BigEndian.Uint64(data[i*16:])
		v := binary.BigEndian.Uint64(data[i*16+8:])
		g.InsertEdge(u, v)
	}
	gm.g = g
	return nil
}

// AOFRewrite emits the command stream that rebuilds the graph — the
// aof_rewrite interface of the Redis Module API.
func (gm *GraphModule) AOFRewrite() []string {
	var cmds []string
	gm.g.ForEachNode(func(u uint64) bool {
		gm.g.ForEachSuccessor(u, func(v uint64) bool {
			cmds = append(cmds, strings.Join([]string{
				"g.insert",
				strconv.FormatUint(u, 10),
				strconv.FormatUint(v, 10),
			}, " "))
			return true
		})
		return true
	})
	return cmds
}
