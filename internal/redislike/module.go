package redislike

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/core"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// GraphModule wraps a CuckooGraph as a redislike module, providing the
// extended commands of §V-F — insert, del, query, getneighbors — and
// the save_rdb/load_rdb persistence interfaces. The graph is the
// sharded concurrent engine, so handlers need no per-command mutual
// exclusion: commands on different source nodes run in parallel, each
// taking only the owning shard's lock. swapMu (read-locked by every
// handler, write-locked only by load_rdb) exists solely so a restore
// cannot swap the graph out from under an in-flight command — without
// it an acknowledged write could land on the discarded graph.
type GraphModule struct {
	swapMu sync.RWMutex
	g      *sharded.Graph

	// walMu serialises the durability control plane — enable, replay,
	// checkpoint, close — against itself and against load_rdb's graph
	// swap. The data plane (insert/del/query) never takes it.
	walMu sync.Mutex
	wal   *wal.WAL
	// recovered remembers the last RecoverWAL so EnableWAL on the same
	// directory can skip its initial checkpoint: the directory already
	// describes that exact graph. muts is the graph's monotonic applied-
	// mutation counter at recovery time — comparing it (rather than
	// edge/node counts, which an insert/delete pair can leave unchanged)
	// is what proves nothing was written in between.
	recovered struct {
		dir  string
		g    *sharded.Graph
		muts uint64
	}

	// viewMu guards the time-travel ring: a bounded, oldest-first list
	// of retained snapshot views. g.snapshot appends (releasing the
	// oldest past viewCap), g.release drops one, and the epoch-tagged
	// analytics commands resolve epochs against it. Bounding the ring
	// bounds the copy-on-write state retained views can pin. Each entry
	// records the graph it froze so a restore purges exactly the
	// replaced graph's views (see releaseStaleViews).
	viewMu  sync.Mutex
	views   []ringEntry
	viewCap int
}

// ringEntry pairs a retained view with the graph it froze.
type ringEntry struct {
	g *sharded.Graph
	v *sharded.View
}

// DefaultSnapshotRing is how many snapshot epochs the module retains
// for time-travel reads unless SetSnapshotRing says otherwise.
const DefaultSnapshotRing = 8

// NewGraphModule returns the CuckooGraph module ready for LoadModule.
func NewGraphModule() (*GraphModule, *Module) {
	gm := &GraphModule{g: sharded.New(sharded.Config{}), viewCap: DefaultSnapshotRing}
	m := &Module{
		Name: "cuckoograph",
		Commands: map[string]HandlerFunc{
			"g.insert":       gm.insert,
			"g.del":          gm.del,
			"g.minsert":      gm.minsert,
			"g.mdel":         gm.mdel,
			"g.query":        gm.query,
			"g.getneighbors": gm.getNeighbors,
			"g.degree":       gm.degree,
			"g.nodes":        gm.nodes,
			"g.snapshot":     gm.snapshot,
			"g.snapshots":    gm.snapshots,
			"g.release":      gm.release,
			"graph.bfs":      gm.graphBFS,
			"graph.pagerank": gm.graphPageRank,
			"wal_enable":     gm.walEnable,
			"wal_replay":     gm.walReplay,
			"checkpoint":     gm.checkpoint,
		},
		SaveRDB: gm.saveRDB,
		LoadRDB: gm.loadRDB,
	}
	return gm, m
}

// Graph exposes the underlying sharded graph for in-process inspection.
func (gm *GraphModule) Graph() *sharded.Graph {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	return gm.g
}

// withGraph runs f on the current graph while holding the swap lock in
// read mode, so load_rdb cannot replace the graph mid-command.
func (gm *GraphModule) withGraph(f func(g *sharded.Graph)) {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	f(gm.g)
}

func parseEdge(args []string) (u, v uint64, err error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("expected <u> <v>")
	}
	u, err = strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[0])
	}
	v, err = strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[1])
	}
	return u, v, nil
}

func (gm *GraphModule) insert(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.insert: " + err.Error())
	}
	added := false
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		added = g.InsertEdge(u, v)
		logErr = g.LogErr()
	})
	if logErr != nil {
		// The edge is in memory but not durably logged; a client that
		// sees this error must not assume the write survives a crash.
		return resp.Error("ERR g.insert: wal: " + logErr.Error())
	}
	if added {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) del(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.del: " + err.Error())
	}
	deleted := false
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		deleted = g.DeleteEdge(u, v)
		logErr = g.LogErr()
	})
	if logErr != nil {
		return resp.Error("ERR g.del: wal: " + logErr.Error())
	}
	if deleted {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

// parseBatch decodes ⟨u,v⟩ pairs from a variadic command's arguments
// into a mutation batch of the given kind.
func parseBatch(kind core.OpKind, args []string) (core.Batch, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, fmt.Errorf("expected <u> <v> [<u> <v> ...]")
	}
	b := make(core.Batch, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		u, err := strconv.ParseUint(args[i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", args[i])
		}
		v, err := strconv.ParseUint(args[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", args[i+1])
		}
		b = append(b, core.Op{Kind: kind, U: u, V: v})
	}
	return b, nil
}

// minsert is the batched insert: G.MINSERT u1 v1 [u2 v2 ...] applies
// every pair through the shard-parallel batch path and replies with the
// number of newly inserted edges.
func (gm *GraphModule) minsert(args []string) resp.Value {
	b, err := parseBatch(core.OpInsert, args)
	if err != nil {
		return resp.Error("ERR g.minsert: " + err.Error())
	}
	var res core.BatchResult
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		res = g.ApplyBatch(b)
		logErr = g.LogErr()
	})
	if logErr != nil {
		return resp.Error("ERR g.minsert: wal: " + logErr.Error())
	}
	return resp.Integer(int64(res.Inserted))
}

// mdel is the batched delete: G.MDEL u1 v1 [u2 v2 ...] replies with the
// number of edges actually removed.
func (gm *GraphModule) mdel(args []string) resp.Value {
	b, err := parseBatch(core.OpDelete, args)
	if err != nil {
		return resp.Error("ERR g.mdel: " + err.Error())
	}
	var res core.BatchResult
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		res = g.ApplyBatch(b)
		logErr = g.LogErr()
	})
	if logErr != nil {
		return resp.Error("ERR g.mdel: wal: " + logErr.Error())
	}
	return resp.Integer(int64(res.Deleted))
}

func (gm *GraphModule) query(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.query: " + err.Error())
	}
	has := false
	gm.withGraph(func(g *sharded.Graph) { has = g.HasEdge(u, v) })
	if has {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) getNeighbors(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.getneighbors: expected <u>")
	}
	u, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.getneighbors: bad node id " + strconv.Quote(args[0]))
	}
	var out []resp.Value
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachSuccessor(u, func(v uint64) bool {
			out = append(out, resp.Bulk(strconv.FormatUint(v, 10)))
			return true
		})
	})
	return resp.Array(out...)
}

// degree replies with u's out-degree — the engine has always known it,
// the wire protocol just never asked.
func (gm *GraphModule) degree(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.degree: expected <u>")
	}
	u, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.degree: bad node id " + strconv.Quote(args[0]))
	}
	n := 0
	gm.withGraph(func(g *sharded.Graph) { n = g.Degree(u) })
	return resp.Integer(int64(n))
}

// nodes replies with every source node (nodes with ≥1 out-edge).
func (gm *GraphModule) nodes(args []string) resp.Value {
	if len(args) != 0 {
		return resp.Error("ERR g.nodes: expected no arguments")
	}
	var out []resp.Value
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachNode(func(u uint64) bool {
			out = append(out, resp.Bulk(strconv.FormatUint(u, 10)))
			return true
		})
	})
	return resp.Array(out...)
}

// SetSnapshotRing bounds how many snapshot epochs are retained for
// time-travel reads; taking a snapshot past the bound releases the
// oldest. Shrinking the ring releases the surplus immediately. n < 1
// keeps the bound at 1: g.snapshot always retains what it just took.
func (gm *GraphModule) SetSnapshotRing(n int) {
	if n < 1 {
		n = 1
	}
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	gm.viewCap = n
	for len(gm.views) > n {
		gm.views[0].v.Release()
		gm.views = gm.views[1:]
	}
}

// releaseStaleViews drops every retained view whose graph is no longer
// the module's current one — the cleanup step after a restore or
// recovery swap. Purging by owner rather than wholesale matters: a
// g.snapshot of the NEW graph can land in the ring between the swap
// and this purge, and its epoch has already been handed to a client,
// so it must survive.
func (gm *GraphModule) releaseStaleViews() {
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	kept := gm.views[:0]
	for _, e := range gm.views {
		if e.g == cur {
			kept = append(kept, e)
		} else {
			e.v.Release()
		}
	}
	gm.views = kept
}

// viewAt resolves a retained view of the CURRENT graph by epoch,
// adding a reference for the caller. Retaining under viewMu is what
// makes it safe: a ring entry always carries the ring's own reference
// while listed, so the view cannot reach zero — and start panicking
// readers — between the lookup and the Retain, however the
// release/evict commands race. Matching on the owner graph matters
// during a restore: until releaseStaleViews finishes, the ring can
// transiently hold views of the replaced graph whose epochs collide
// with the fresh graph's restarted numbering, and those must never be
// served. The caller must Release the reference when done.
func (gm *GraphModule) viewAt(epoch uint64) *sharded.View {
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	for _, e := range gm.views {
		if e.g == cur && e.v.Epoch() == epoch {
			e.v.Retain()
			return e.v
		}
	}
	return nil
}

// snapshot takes a frozen view of the graph, retains it in the
// time-travel ring (evicting the oldest past the bound) and replies
// with its epoch tag. The ring only ever holds views of the current
// graph: if a restore swaps the graph between taking the view and
// ringing it, the stale view is dropped and the snapshot retried —
// otherwise the ring would pin a dead graph's CoW state and, since a
// fresh graph's epochs restart at 1, could serve pre-restore data
// under a colliding epoch tag.
func (gm *GraphModule) snapshot(args []string) resp.Value {
	if len(args) != 0 {
		return resp.Error("ERR g.snapshot: expected no arguments")
	}
	for {
		var g *sharded.Graph
		var v *sharded.View
		gm.withGraph(func(cur *sharded.Graph) {
			g = cur
			v = cur.Snapshot()
		})
		gm.viewMu.Lock()
		if gm.Graph() != g {
			gm.viewMu.Unlock()
			v.Release()
			continue
		}
		gm.views = append(gm.views, ringEntry{g: g, v: v})
		for len(gm.views) > gm.viewCap {
			gm.views[0].v.Release()
			gm.views = gm.views[1:]
		}
		gm.viewMu.Unlock()
		return resp.Integer(int64(v.Epoch()))
	}
}

// snapshots lists the retained epochs of the current graph, oldest
// first (stale entries awaiting releaseStaleViews are invisible).
func (gm *GraphModule) snapshots(args []string) resp.Value {
	if len(args) != 0 {
		return resp.Error("ERR g.snapshots: expected no arguments")
	}
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	out := make([]resp.Value, 0, len(gm.views))
	for _, e := range gm.views {
		if e.g == cur {
			out = append(out, resp.Integer(int64(e.v.Epoch())))
		}
	}
	return resp.Array(out...)
}

// release drops the retained view with the given epoch, replying 1 if
// it existed.
func (gm *GraphModule) release(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.release: expected <epoch>")
	}
	epoch, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.release: bad epoch " + strconv.Quote(args[0]))
	}
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	for i, e := range gm.views {
		// Only current-graph entries are addressable; a stale entry with
		// a colliding epoch belongs to releaseStaleViews, not the client.
		if e.g == cur && e.v.Epoch() == epoch {
			e.v.Release()
			gm.views = append(gm.views[:i], gm.views[i+1:]...)
			return resp.Integer(1)
		}
	}
	return resp.Integer(0)
}

// analyticsStore resolves the store an epoch-tagged analytics command
// runs on: a retained view for an explicit epoch (with its own
// reference, so a concurrent g.release or ring eviction cannot panic
// the pass mid-flight), or a fresh ephemeral snapshot of now when the
// epoch is omitted — either way the pass runs on a frozen view, never
// blocks writers, and cleanup drops exactly the reference it holds.
// Views satisfy graphstore.Indexed, so every kernel the command calls
// runs on the view's CSR index: compiled lazily on the first analytics
// command against an epoch, memoized on the view for every later
// command at that epoch, and freed when the ring drops the snapshot.
func (gm *GraphModule) analyticsStore(epochArg string) (graphstore.Store, func(), error) {
	if epochArg != "" {
		epoch, err := strconv.ParseUint(epochArg, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad epoch %q", epochArg)
		}
		v := gm.viewAt(epoch)
		if v == nil {
			return nil, nil, fmt.Errorf("no retained snapshot with epoch %d (see g.snapshots)", epoch)
		}
		return v, v.Release, nil
	}
	var v *sharded.View
	gm.withGraph(func(g *sharded.Graph) { v = g.Snapshot() })
	return v, v.Release, nil
}

// graphBFS is GRAPH.BFS <root> [epoch]: breadth-first traversal over a
// frozen view, replying with the visited nodes in traversal order.
func (gm *GraphModule) graphBFS(args []string) resp.Value {
	if len(args) < 1 || len(args) > 2 {
		return resp.Error("ERR graph.bfs: expected <root> [epoch]")
	}
	root, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR graph.bfs: bad node id " + strconv.Quote(args[0]))
	}
	epochArg := ""
	if len(args) == 2 {
		epochArg = args[1]
	}
	s, cleanup, err := gm.analyticsStore(epochArg)
	if err != nil {
		return resp.Error("ERR graph.bfs: " + err.Error())
	}
	defer cleanup()
	order := analytics.BFS(s, root)
	out := make([]resp.Value, len(order))
	for i, u := range order {
		out[i] = resp.Integer(int64(u))
	}
	return resp.Array(out...)
}

// graphPageRank is GRAPH.PAGERANK <iters> [epoch]: the power method
// over a frozen view, replying with a flat array of node, rank pairs
// sorted by node id.
func (gm *GraphModule) graphPageRank(args []string) resp.Value {
	if len(args) < 1 || len(args) > 2 {
		return resp.Error("ERR graph.pagerank: expected <iters> [epoch]")
	}
	iters, err := strconv.Atoi(args[0])
	if err != nil || iters < 1 {
		return resp.Error("ERR graph.pagerank: bad iteration count " + strconv.Quote(args[0]))
	}
	epochArg := ""
	if len(args) == 2 {
		epochArg = args[1]
	}
	s, cleanup, err := gm.analyticsStore(epochArg)
	if err != nil {
		return resp.Error("ERR graph.pagerank: " + err.Error())
	}
	defer cleanup()
	rank := analytics.PageRank(s, iters)
	nodes := make([]uint64, 0, len(rank))
	for u := range rank {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := make([]resp.Value, 0, 2*len(nodes))
	for _, u := range nodes {
		out = append(out,
			resp.Integer(int64(u)),
			resp.Bulk(strconv.FormatFloat(rank[u], 'g', 10, 64)))
	}
	return resp.Array(out...)
}

// saveRDB serialises the graph in the core snapshot format. The sharded
// Save freezes the graph only briefly and streams from a frozen view,
// so the snapshot is a consistent cut and commands keep flowing while
// it is written out.
func (gm *GraphModule) saveRDB() []byte {
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	gm.withGraph(func(g *sharded.Graph) { _ = g.Save(&buf) })
	return buf.Bytes()
}

func (gm *GraphModule) loadRDB(data []byte) error {
	g, err := sharded.Load(bytes.NewReader(data), sharded.Config{})
	if err != nil {
		return fmt.Errorf("cuckoograph rdb: %w", err)
	}
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		// The restore wholesale-replaces state the log knows nothing
		// about; keep logging on the new graph and checkpoint so the
		// on-disk recovery state matches it.
		g.SetWAL(gm.wal)
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	// Retained views froze the replaced graph; time travel does not
	// survive a wholesale restore.
	gm.releaseStaleViews()
	if gm.wal != nil {
		if _, err := wal.Checkpoint(g, gm.wal); err != nil {
			return fmt.Errorf("cuckoograph rdb: checkpoint after restore: %w", err)
		}
	}
	return nil
}

// EnableWAL opens (creating if needed) the write-ahead log in dir and
// attaches it to the graph, making every subsequent acknowledged
// mutation durable. If the graph already holds edges, an initial
// checkpoint captures them so recovery of dir is complete on its own —
// unless the graph is exactly the one RecoverWAL just rebuilt from this
// same directory, in which case the directory already describes it and
// the (full-snapshot-sized) checkpoint is skipped.
func (gm *GraphModule) EnableWAL(dir string, opts wal.Options) error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return fmt.Errorf("wal already enabled in %s", gm.wal.Dir())
	}
	w, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	g := gm.Graph()
	g.SetWAL(w)
	r := gm.recovered
	coveredByDir := r.g == g && r.dir == dir && g.Mutations() == r.muts
	if g.NumEdges() > 0 && !coveredByDir {
		if _, err := wal.Checkpoint(g, w); err != nil {
			g.SetWAL(nil)
			w.Close()
			return err
		}
	}
	gm.wal = w
	return nil
}

// RecoverWAL rebuilds the graph from dir — newest checkpoint snapshot
// plus log tail — and installs it. It must run before EnableWAL; the
// usual boot sequence is RecoverWAL then EnableWAL on the same dir.
func (gm *GraphModule) RecoverWAL(dir string) (wal.RecoverStats, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return wal.RecoverStats{}, fmt.Errorf("wal enabled in %s; replay must happen before wal_enable", gm.wal.Dir())
	}
	g, stats, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		return stats, err
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	gm.releaseStaleViews()
	gm.recovered.dir, gm.recovered.g = dir, g
	gm.recovered.muts = g.Mutations()
	return stats, nil
}

// Checkpoint snapshots the graph into the WAL directory and truncates
// the log segments the snapshot supersedes.
func (gm *GraphModule) Checkpoint() (string, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return "", fmt.Errorf("wal not enabled")
	}
	return wal.Checkpoint(gm.Graph(), gm.wal)
}

// CloseWAL detaches and closes the WAL, flushing everything pending.
func (gm *GraphModule) CloseWAL() error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return nil
	}
	gm.Graph().SetWAL(nil)
	err := gm.wal.Close()
	gm.wal = nil
	return err
}

func (gm *GraphModule) walEnable(args []string) resp.Value {
	if len(args) < 1 || len(args) > 2 {
		return resp.Error("ERR wal_enable: expected <dir> [always|nosync|async]")
	}
	mode := ""
	if len(args) == 2 {
		mode = args[1]
	}
	sync, err := wal.ParseSyncPolicy(mode)
	if err != nil {
		return resp.Error("ERR wal_enable: " + err.Error())
	}
	if err := gm.EnableWAL(args[0], wal.Options{Sync: sync}); err != nil {
		return resp.Error("ERR wal_enable: " + err.Error())
	}
	return resp.Simple("OK")
}

func (gm *GraphModule) walReplay(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR wal_replay: expected <dir>")
	}
	stats, err := gm.RecoverWAL(args[0])
	if err != nil {
		return resp.Error("ERR wal_replay: " + err.Error())
	}
	return resp.Bulk(fmt.Sprintf("edges=%d records=%d segments=%d torn_bytes=%d snapshot=%s",
		gm.Graph().NumEdges(), stats.Replay.Records, stats.Replay.Segments,
		stats.Replay.TornBytes, stats.Snapshot))
}

func (gm *GraphModule) checkpoint(args []string) resp.Value {
	if len(args) != 0 {
		return resp.Error("ERR checkpoint: expected no arguments")
	}
	path, err := gm.Checkpoint()
	if err != nil {
		return resp.Error("ERR checkpoint: " + err.Error())
	}
	return resp.Bulk(path)
}

// AOFRewrite emits the command stream that rebuilds the graph — the
// aof_rewrite interface of the Redis Module API.
func (gm *GraphModule) AOFRewrite() []string {
	var cmds []string
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachNode(func(u uint64) bool {
			g.ForEachSuccessor(u, func(v uint64) bool {
				cmds = append(cmds, strings.Join([]string{
					"g.insert",
					strconv.FormatUint(u, 10),
					strconv.FormatUint(v, 10),
				}, " "))
				return true
			})
			return true
		})
	})
	return cmds
}
