package redislike

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
)

// GraphModule wraps a CuckooGraph as a redislike module, providing the
// extended commands of §V-F — insert, del, query, getneighbors — and
// the save_rdb/load_rdb persistence interfaces. The graph is the
// sharded concurrent engine, so handlers need no per-command mutual
// exclusion: commands on different source nodes run in parallel, each
// taking only the owning shard's lock. swapMu (read-locked by every
// handler, write-locked only by load_rdb) exists solely so a restore
// cannot swap the graph out from under an in-flight command — without
// it an acknowledged write could land on the discarded graph.
type GraphModule struct {
	swapMu sync.RWMutex
	g      *sharded.Graph
}

// NewGraphModule returns the CuckooGraph module ready for LoadModule.
func NewGraphModule() (*GraphModule, *Module) {
	gm := &GraphModule{g: sharded.New(sharded.Config{})}
	m := &Module{
		Name: "cuckoograph",
		Commands: map[string]HandlerFunc{
			"g.insert":       gm.insert,
			"g.del":          gm.del,
			"g.query":        gm.query,
			"g.getneighbors": gm.getNeighbors,
		},
		SaveRDB: gm.saveRDB,
		LoadRDB: gm.loadRDB,
	}
	return gm, m
}

// Graph exposes the underlying sharded graph for in-process inspection.
func (gm *GraphModule) Graph() *sharded.Graph {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	return gm.g
}

// withGraph runs f on the current graph while holding the swap lock in
// read mode, so load_rdb cannot replace the graph mid-command.
func (gm *GraphModule) withGraph(f func(g *sharded.Graph)) {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	f(gm.g)
}

func parseEdge(args []string) (u, v uint64, err error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("expected <u> <v>")
	}
	u, err = strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[0])
	}
	v, err = strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[1])
	}
	return u, v, nil
}

func (gm *GraphModule) insert(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.insert: " + err.Error())
	}
	added := false
	gm.withGraph(func(g *sharded.Graph) { added = g.InsertEdge(u, v) })
	if added {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) del(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.del: " + err.Error())
	}
	deleted := false
	gm.withGraph(func(g *sharded.Graph) { deleted = g.DeleteEdge(u, v) })
	if deleted {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) query(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.query: " + err.Error())
	}
	has := false
	gm.withGraph(func(g *sharded.Graph) { has = g.HasEdge(u, v) })
	if has {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) getNeighbors(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.getneighbors: expected <u>")
	}
	u, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.getneighbors: bad node id " + strconv.Quote(args[0]))
	}
	var out []resp.Value
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachSuccessor(u, func(v uint64) bool {
			out = append(out, resp.Bulk(strconv.FormatUint(v, 10)))
			return true
		})
	})
	return resp.Array(out...)
}

// saveRDB serialises the graph in the core snapshot format. The sharded
// Save holds every shard's read lock for the duration, so the snapshot
// is a consistent cut even while commands keep flowing.
func (gm *GraphModule) saveRDB() []byte {
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	gm.withGraph(func(g *sharded.Graph) { _ = g.Save(&buf) })
	return buf.Bytes()
}

func (gm *GraphModule) loadRDB(data []byte) error {
	g, err := sharded.Load(bytes.NewReader(data), sharded.Config{})
	if err != nil {
		return fmt.Errorf("cuckoograph rdb: %w", err)
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	return nil
}

// AOFRewrite emits the command stream that rebuilds the graph — the
// aof_rewrite interface of the Redis Module API.
func (gm *GraphModule) AOFRewrite() []string {
	var cmds []string
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachNode(func(u uint64) bool {
			g.ForEachSuccessor(u, func(v uint64) bool {
				cmds = append(cmds, strings.Join([]string{
					"g.insert",
					strconv.FormatUint(u, 10),
					strconv.FormatUint(v, 10),
				}, " "))
				return true
			})
			return true
		})
	})
	return cmds
}
