package redislike

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"cuckoograph/internal/core"
	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// GraphModule wraps a CuckooGraph as a redislike module, providing the
// extended commands of §V-F — insert, del, query, getneighbors — and
// the save_rdb/load_rdb persistence interfaces. The graph is the
// sharded concurrent engine, so handlers need no per-command mutual
// exclusion: commands on different source nodes run in parallel, each
// taking only the owning shard's lock. swapMu (read-locked by every
// handler, write-locked only by load_rdb) exists solely so a restore
// cannot swap the graph out from under an in-flight command — without
// it an acknowledged write could land on the discarded graph.
type GraphModule struct {
	swapMu sync.RWMutex
	g      *sharded.Graph

	// walMu serialises the durability control plane — enable, replay,
	// checkpoint, close — against itself and against load_rdb's graph
	// swap. The data plane (insert/del/query) never takes it.
	walMu sync.Mutex
	wal   *wal.WAL
	// recovered remembers the last RecoverWAL so EnableWAL on the same
	// directory can skip its initial checkpoint: the directory already
	// describes that exact graph. muts is the graph's monotonic applied-
	// mutation counter at recovery time — comparing it (rather than
	// edge/node counts, which an insert/delete pair can leave unchanged)
	// is what proves nothing was written in between.
	recovered struct {
		dir  string
		g    *sharded.Graph
		muts uint64
	}
}

// NewGraphModule returns the CuckooGraph module ready for LoadModule.
func NewGraphModule() (*GraphModule, *Module) {
	gm := &GraphModule{g: sharded.New(sharded.Config{})}
	m := &Module{
		Name: "cuckoograph",
		Commands: map[string]HandlerFunc{
			"g.insert":       gm.insert,
			"g.del":          gm.del,
			"g.minsert":      gm.minsert,
			"g.mdel":         gm.mdel,
			"g.query":        gm.query,
			"g.getneighbors": gm.getNeighbors,
			"g.degree":       gm.degree,
			"g.nodes":        gm.nodes,
			"wal_enable":     gm.walEnable,
			"wal_replay":     gm.walReplay,
			"checkpoint":     gm.checkpoint,
		},
		SaveRDB: gm.saveRDB,
		LoadRDB: gm.loadRDB,
	}
	return gm, m
}

// Graph exposes the underlying sharded graph for in-process inspection.
func (gm *GraphModule) Graph() *sharded.Graph {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	return gm.g
}

// withGraph runs f on the current graph while holding the swap lock in
// read mode, so load_rdb cannot replace the graph mid-command.
func (gm *GraphModule) withGraph(f func(g *sharded.Graph)) {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	f(gm.g)
}

func parseEdge(args []string) (u, v uint64, err error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("expected <u> <v>")
	}
	u, err = strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[0])
	}
	v, err = strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad node id %q", args[1])
	}
	return u, v, nil
}

func (gm *GraphModule) insert(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.insert: " + err.Error())
	}
	added := false
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		added = g.InsertEdge(u, v)
		logErr = g.LogErr()
	})
	if logErr != nil {
		// The edge is in memory but not durably logged; a client that
		// sees this error must not assume the write survives a crash.
		return resp.Error("ERR g.insert: wal: " + logErr.Error())
	}
	if added {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) del(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.del: " + err.Error())
	}
	deleted := false
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		deleted = g.DeleteEdge(u, v)
		logErr = g.LogErr()
	})
	if logErr != nil {
		return resp.Error("ERR g.del: wal: " + logErr.Error())
	}
	if deleted {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

// parseBatch decodes ⟨u,v⟩ pairs from a variadic command's arguments
// into a mutation batch of the given kind.
func parseBatch(kind core.OpKind, args []string) (core.Batch, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, fmt.Errorf("expected <u> <v> [<u> <v> ...]")
	}
	b := make(core.Batch, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		u, err := strconv.ParseUint(args[i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", args[i])
		}
		v, err := strconv.ParseUint(args[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", args[i+1])
		}
		b = append(b, core.Op{Kind: kind, U: u, V: v})
	}
	return b, nil
}

// minsert is the batched insert: G.MINSERT u1 v1 [u2 v2 ...] applies
// every pair through the shard-parallel batch path and replies with the
// number of newly inserted edges.
func (gm *GraphModule) minsert(args []string) resp.Value {
	b, err := parseBatch(core.OpInsert, args)
	if err != nil {
		return resp.Error("ERR g.minsert: " + err.Error())
	}
	var res core.BatchResult
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		res = g.ApplyBatch(b)
		logErr = g.LogErr()
	})
	if logErr != nil {
		return resp.Error("ERR g.minsert: wal: " + logErr.Error())
	}
	return resp.Integer(int64(res.Inserted))
}

// mdel is the batched delete: G.MDEL u1 v1 [u2 v2 ...] replies with the
// number of edges actually removed.
func (gm *GraphModule) mdel(args []string) resp.Value {
	b, err := parseBatch(core.OpDelete, args)
	if err != nil {
		return resp.Error("ERR g.mdel: " + err.Error())
	}
	var res core.BatchResult
	var logErr error
	gm.withGraph(func(g *sharded.Graph) {
		res = g.ApplyBatch(b)
		logErr = g.LogErr()
	})
	if logErr != nil {
		return resp.Error("ERR g.mdel: wal: " + logErr.Error())
	}
	return resp.Integer(int64(res.Deleted))
}

func (gm *GraphModule) query(args []string) resp.Value {
	u, v, err := parseEdge(args)
	if err != nil {
		return resp.Error("ERR g.query: " + err.Error())
	}
	has := false
	gm.withGraph(func(g *sharded.Graph) { has = g.HasEdge(u, v) })
	if has {
		return resp.Integer(1)
	}
	return resp.Integer(0)
}

func (gm *GraphModule) getNeighbors(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.getneighbors: expected <u>")
	}
	u, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.getneighbors: bad node id " + strconv.Quote(args[0]))
	}
	var out []resp.Value
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachSuccessor(u, func(v uint64) bool {
			out = append(out, resp.Bulk(strconv.FormatUint(v, 10)))
			return true
		})
	})
	return resp.Array(out...)
}

// degree replies with u's out-degree — the engine has always known it,
// the wire protocol just never asked.
func (gm *GraphModule) degree(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR g.degree: expected <u>")
	}
	u, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return resp.Error("ERR g.degree: bad node id " + strconv.Quote(args[0]))
	}
	n := 0
	gm.withGraph(func(g *sharded.Graph) { n = g.Degree(u) })
	return resp.Integer(int64(n))
}

// nodes replies with every source node (nodes with ≥1 out-edge).
func (gm *GraphModule) nodes(args []string) resp.Value {
	if len(args) != 0 {
		return resp.Error("ERR g.nodes: expected no arguments")
	}
	var out []resp.Value
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachNode(func(u uint64) bool {
			out = append(out, resp.Bulk(strconv.FormatUint(u, 10)))
			return true
		})
	})
	return resp.Array(out...)
}

// saveRDB serialises the graph in the core snapshot format. The sharded
// Save holds every shard's read lock for the duration, so the snapshot
// is a consistent cut even while commands keep flowing.
func (gm *GraphModule) saveRDB() []byte {
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	gm.withGraph(func(g *sharded.Graph) { _ = g.Save(&buf) })
	return buf.Bytes()
}

func (gm *GraphModule) loadRDB(data []byte) error {
	g, err := sharded.Load(bytes.NewReader(data), sharded.Config{})
	if err != nil {
		return fmt.Errorf("cuckoograph rdb: %w", err)
	}
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		// The restore wholesale-replaces state the log knows nothing
		// about; keep logging on the new graph and checkpoint so the
		// on-disk recovery state matches it.
		g.SetWAL(gm.wal)
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	if gm.wal != nil {
		if _, err := wal.Checkpoint(g, gm.wal); err != nil {
			return fmt.Errorf("cuckoograph rdb: checkpoint after restore: %w", err)
		}
	}
	return nil
}

// EnableWAL opens (creating if needed) the write-ahead log in dir and
// attaches it to the graph, making every subsequent acknowledged
// mutation durable. If the graph already holds edges, an initial
// checkpoint captures them so recovery of dir is complete on its own —
// unless the graph is exactly the one RecoverWAL just rebuilt from this
// same directory, in which case the directory already describes it and
// the (full-snapshot-sized) checkpoint is skipped.
func (gm *GraphModule) EnableWAL(dir string, opts wal.Options) error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return fmt.Errorf("wal already enabled in %s", gm.wal.Dir())
	}
	w, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	g := gm.Graph()
	g.SetWAL(w)
	r := gm.recovered
	coveredByDir := r.g == g && r.dir == dir && g.Mutations() == r.muts
	if g.NumEdges() > 0 && !coveredByDir {
		if _, err := wal.Checkpoint(g, w); err != nil {
			g.SetWAL(nil)
			w.Close()
			return err
		}
	}
	gm.wal = w
	return nil
}

// RecoverWAL rebuilds the graph from dir — newest checkpoint snapshot
// plus log tail — and installs it. It must run before EnableWAL; the
// usual boot sequence is RecoverWAL then EnableWAL on the same dir.
func (gm *GraphModule) RecoverWAL(dir string) (wal.RecoverStats, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		return wal.RecoverStats{}, fmt.Errorf("wal enabled in %s; replay must happen before wal_enable", gm.wal.Dir())
	}
	g, stats, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		return stats, err
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	gm.recovered.dir, gm.recovered.g = dir, g
	gm.recovered.muts = g.Mutations()
	return stats, nil
}

// Checkpoint snapshots the graph into the WAL directory and truncates
// the log segments the snapshot supersedes.
func (gm *GraphModule) Checkpoint() (string, error) {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return "", fmt.Errorf("wal not enabled")
	}
	return wal.Checkpoint(gm.Graph(), gm.wal)
}

// CloseWAL detaches and closes the WAL, flushing everything pending.
func (gm *GraphModule) CloseWAL() error {
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal == nil {
		return nil
	}
	gm.Graph().SetWAL(nil)
	err := gm.wal.Close()
	gm.wal = nil
	return err
}

func (gm *GraphModule) walEnable(args []string) resp.Value {
	if len(args) < 1 || len(args) > 2 {
		return resp.Error("ERR wal_enable: expected <dir> [always|nosync|async]")
	}
	mode := ""
	if len(args) == 2 {
		mode = args[1]
	}
	sync, err := wal.ParseSyncPolicy(mode)
	if err != nil {
		return resp.Error("ERR wal_enable: " + err.Error())
	}
	if err := gm.EnableWAL(args[0], wal.Options{Sync: sync}); err != nil {
		return resp.Error("ERR wal_enable: " + err.Error())
	}
	return resp.Simple("OK")
}

func (gm *GraphModule) walReplay(args []string) resp.Value {
	if len(args) != 1 {
		return resp.Error("ERR wal_replay: expected <dir>")
	}
	stats, err := gm.RecoverWAL(args[0])
	if err != nil {
		return resp.Error("ERR wal_replay: " + err.Error())
	}
	return resp.Bulk(fmt.Sprintf("edges=%d records=%d segments=%d torn_bytes=%d snapshot=%s",
		gm.Graph().NumEdges(), stats.Replay.Records, stats.Replay.Segments,
		stats.Replay.TornBytes, stats.Snapshot))
}

func (gm *GraphModule) checkpoint(args []string) resp.Value {
	if len(args) != 0 {
		return resp.Error("ERR checkpoint: expected no arguments")
	}
	path, err := gm.Checkpoint()
	if err != nil {
		return resp.Error("ERR checkpoint: " + err.Error())
	}
	return resp.Bulk(path)
}

// AOFRewrite emits the command stream that rebuilds the graph — the
// aof_rewrite interface of the Redis Module API.
func (gm *GraphModule) AOFRewrite() []string {
	var cmds []string
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachNode(func(u uint64) bool {
			g.ForEachSuccessor(u, func(v uint64) bool {
				cmds = append(cmds, strings.Join([]string{
					"g.insert",
					strconv.FormatUint(u, 10),
					strconv.FormatUint(v, 10),
				}, " "))
				return true
			})
			return true
		})
	})
	return cmds
}
