package redislike

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// GraphModule wraps a CuckooGraph as a redislike module, providing the
// extended commands of §V-F — insert, del, query, getneighbors — plus
// batching, snapshots, analytics, durability control and the
// save_rdb/load_rdb persistence interfaces. The graph is the sharded
// concurrent engine, so handlers need no per-command mutual exclusion:
// commands on different source nodes run in parallel, each taking only
// the owning shard's lock. swapMu (read-locked by every data-plane
// handler via dataCmd, write-locked only by load_rdb/recovery) exists
// solely so a restore cannot swap the graph out from under an in-flight
// command — without it an acknowledged write could land on the
// discarded graph.
//
// Commands are registered through the Command registry (see
// moduleCommands); the registrations carry the arity and flag metadata
// the server enforces and introspects.
type GraphModule struct {
	swapMu sync.RWMutex
	g      *sharded.Graph

	// host is the server this module is loaded into (nil until OnLoad):
	// the path to the server's loading flag and logger.
	host atomic.Pointer[Server]
	log  *slog.Logger

	// walMu serialises the durability control plane — enable, replay,
	// checkpoint, close — against itself and against load_rdb's graph
	// swap. The data plane (insert/del/query) never takes it.
	walMu sync.Mutex
	wal   *wal.WAL
	// walPtr mirrors wal for lock-free readers (/metrics, g.info): a
	// scrape must not queue behind a checkpoint holding walMu.
	walPtr atomic.Pointer[wal.WAL]
	// walOpts/walDir remember what EnableWAL opened, so ResumeWAL can
	// reopen the same log under the same policy after a storage failure
	// — including on a retry whose previous attempt already closed the
	// poisoned WAL. Guarded by walMu.
	walOpts wal.Options
	walDir  string
	// walPolicy is the WALErrorPolicy (readonly|panic) applied when the
	// data plane observes a log failure; atomic because the hot write
	// path reads it.
	walPolicy atomic.Int32
	// recovered remembers the last RecoverWAL so EnableWAL on the same
	// directory can skip its initial checkpoint: the directory already
	// describes that exact graph. muts is the graph's monotonic applied-
	// mutation counter at recovery time — comparing it (rather than
	// edge/node counts, which an insert/delete pair can leave unchanged)
	// is what proves nothing was written in between.
	recovered struct {
		dir  string
		g    *sharded.Graph
		muts uint64
	}

	// Replication state. links is the leader side: one entry per
	// connected follower's replication stream, each holding a WAL
	// retention pin at its acked segment. replica is the follower side:
	// non-nil when this process was started with -replica-of and is
	// pulling the leader's log.
	replMu  sync.Mutex
	links   map[*replLink]struct{}
	replica atomic.Pointer[Replica]

	// viewMu guards the time-travel ring: a bounded, oldest-first list
	// of retained snapshot views. g.snapshot appends (releasing the
	// oldest past viewCap), g.release drops one, and the epoch-tagged
	// analytics commands resolve epochs against it. Bounding the ring
	// bounds the copy-on-write state retained views can pin. Each entry
	// records the graph it froze so a restore purges exactly the
	// replaced graph's views (see releaseStaleViews).
	viewMu  sync.Mutex
	views   []ringEntry
	viewCap int
}

// ringEntry pairs a retained view with the graph it froze.
type ringEntry struct {
	g *sharded.Graph
	v *sharded.View
}

// DefaultSnapshotRing is how many snapshot epochs the module retains
// for time-travel reads unless SetSnapshotRing says otherwise.
const DefaultSnapshotRing = 8

// NewGraphModule returns the CuckooGraph module ready for LoadModule.
func NewGraphModule() (*GraphModule, *Module) {
	gm := &GraphModule{
		g:       sharded.New(sharded.Config{}),
		viewCap: DefaultSnapshotRing,
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	m := &Module{
		Name:     "cuckoograph",
		Commands: gm.moduleCommands(),
		SaveRDB:  gm.saveRDB,
		LoadRDB:  gm.loadRDB,
		OnLoad:   gm.onLoad,
		Metrics:  gm.collectMetrics,
		Close:    gm.Close,
	}
	return gm, m
}

// moduleCommands is the module's registry contribution: one Command per
// served name, with the arity and flags dispatch enforces and COMMAND /
// G.INFO report. Data-plane commands go through dataCmd, which resolves
// the graph handle into the Ctx under the swap lock; control-plane
// commands coordinate their own locking.
func (gm *GraphModule) moduleCommands() []*Command {
	return []*Command{
		{Name: "g.insert", Arity: Exactly(2), Flags: FlagWrite,
			Summary: "insert edge <u> <v>; replies 1 if newly added",
			Handler: gm.dataCmd(gm.insert)},
		{Name: "g.del", Arity: Exactly(2), Flags: FlagWrite,
			Summary: "delete edge <u> <v>; replies 1 if removed",
			Handler: gm.dataCmd(gm.del)},
		{Name: "g.minsert", Arity: AtLeast(2), Flags: FlagWrite,
			Summary: "batched insert of <u> <v> pairs; replies with edges added",
			Handler: gm.dataCmd(gm.minsert)},
		{Name: "g.mdel", Arity: AtLeast(2), Flags: FlagWrite,
			Summary: "batched delete of <u> <v> pairs; replies with edges removed",
			Handler: gm.dataCmd(gm.mdel)},
		{Name: "g.query", Arity: Exactly(2), Flags: FlagRead,
			Summary: "edge membership of <u> <v>",
			Handler: gm.dataCmd(gm.query)},
		{Name: "g.getneighbors", Arity: Exactly(1), Flags: FlagRead,
			Summary: "successors of <u>",
			Handler: gm.dataCmd(gm.getNeighbors)},
		{Name: "g.degree", Arity: Exactly(1), Flags: FlagRead,
			Summary: "out-degree of <u>",
			Handler: gm.dataCmd(gm.degree)},
		{Name: "g.nodes", Arity: Exactly(0), Flags: FlagRead,
			Summary: "every node with at least one out-edge",
			Handler: gm.dataCmd(gm.nodes)},
		{Name: "g.snapshot", Arity: Exactly(0), Flags: FlagAdmin,
			Summary: "freeze a consistent view; replies with its epoch",
			Handler: gm.snapshot},
		{Name: "g.snapshots", Arity: Exactly(0), Flags: FlagAdmin,
			Summary: "retained snapshot epochs, oldest first",
			Handler: gm.snapshots},
		{Name: "g.release", Arity: Exactly(1), Flags: FlagAdmin,
			Summary: "drop the retained snapshot with <epoch>",
			Handler: gm.release},
		{Name: "g.info", Arity: Between(0, 1), Flags: FlagRead | FlagAdmin,
			Summary: "server, registry, graph, snapshot and wal state [section]",
			Handler: gm.info},
		{Name: "graph.bfs", Arity: Between(1, 2), Flags: FlagRead,
			Summary: "BFS from <root> on a frozen view [epoch]",
			Handler: gm.graphBFS},
		{Name: "graph.pagerank", Arity: Between(1, 2), Flags: FlagRead,
			Summary: "PageRank with <iters> iterations on a frozen view [epoch]",
			Handler: gm.graphPageRank},
		{Name: "wal_enable", Arity: Between(1, 2), Flags: FlagAdmin,
			Summary: "enable the write-ahead log in <dir> [always|nosync|async]",
			Handler: gm.walEnable},
		{Name: "wal_replay", Arity: Exactly(1), Flags: FlagAdmin,
			Summary: "rebuild the graph from <dir> (checkpoint + log tail)",
			Handler: gm.walReplay},
		{Name: "checkpoint", Arity: Exactly(0), Flags: FlagAdmin,
			Summary: "snapshot the graph into the wal dir and truncate the log",
			Handler: gm.checkpoint},
		{Name: "wal_resume", Arity: Exactly(0), Flags: FlagAdmin,
			Summary: "reopen the wal after a storage failure and leave degraded mode",
			Handler: gm.walResume},
		{Name: "g.replicate", Arity: Exactly(2), Flags: FlagAdmin,
			Summary: "stream wal frames from <segment> <offset>; takes the connection over",
			Handler: gm.replicate},
		{Name: "g.replack", Arity: Exactly(2), Flags: FlagAdmin,
			Summary: "acknowledge replication progress <segment> <offset> (stream-only)",
			Handler: gm.replack},
	}
}

// onLoad wires the module to its host server: logger, loading flag,
// and the module's readiness gate — a replica that has not finished
// bootstrapping from its leader is alive but should not receive
// traffic yet.
func (gm *GraphModule) onLoad(s *Server) {
	gm.host.Store(s)
	gm.log = s.Logger().With("module", "cuckoograph")
	s.AddReadyCheck(func() error {
		if r := gm.replica.Load(); r != nil && !r.Bootstrapped() {
			return fmt.Errorf("replica still bootstrapping from %s", r.Leader())
		}
		return nil
	})
}

// setLoading flips the host server's loading flag (a no-op when the
// module is used without a server, e.g. direct API tests).
func (gm *GraphModule) setLoading(on bool) {
	if s := gm.host.Load(); s != nil {
		s.SetLoading(on)
	}
}

// Graph exposes the underlying sharded graph for in-process inspection.
func (gm *GraphModule) Graph() *sharded.Graph {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	return gm.g
}

// withGraph runs f on the current graph while holding the swap lock in
// read mode, so load_rdb cannot replace the graph mid-command.
func (gm *GraphModule) withGraph(f func(g *sharded.Graph)) {
	gm.swapMu.RLock()
	defer gm.swapMu.RUnlock()
	f(gm.g)
}

// dataCmd wraps a data-plane handler: the current graph is resolved
// into ctx.Graph under the swap lock for the duration of the handler,
// so a restore cannot swap the graph mid-command. Control-plane
// handlers (snapshots, wal, info) must NOT use it — they take swapMu or
// walMu themselves, and holding the read lock across them could
// deadlock against a writer.
func (gm *GraphModule) dataCmd(h HandlerFunc) HandlerFunc {
	return func(ctx *Ctx) error {
		gm.swapMu.RLock()
		defer gm.swapMu.RUnlock()
		ctx.Graph = gm.g
		return h(ctx)
	}
}

// Close is the module's ordered teardown, run by Shutdown after the
// connection drain: release every retained snapshot view (so the ring
// cannot pin CoW state past process exit) and then close the WAL,
// flushing everything pending. Both steps are idempotent.
func (gm *GraphModule) Close() error {
	// A follower stops pulling first so no apply can race the teardown
	// below; Stop is idempotent against an explicit caller Stop.
	if r := gm.replica.Load(); r != nil {
		r.Stop()
	}
	gm.viewMu.Lock()
	released := len(gm.views)
	for _, e := range gm.views {
		e.v.Release()
	}
	gm.views = nil
	gm.viewMu.Unlock()
	if released > 0 {
		gm.log.Info("released snapshot ring", "views", released)
	}
	return gm.CloseWAL()
}

// SetSnapshotRing bounds how many snapshot epochs are retained for
// time-travel reads; taking a snapshot past the bound releases the
// oldest. Shrinking the ring releases the surplus immediately. n < 1
// keeps the bound at 1: g.snapshot always retains what it just took.
func (gm *GraphModule) SetSnapshotRing(n int) {
	if n < 1 {
		n = 1
	}
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	gm.viewCap = n
	for len(gm.views) > n {
		gm.views[0].v.Release()
		gm.views = gm.views[1:]
	}
}

// releaseStaleViews drops every retained view whose graph is no longer
// the module's current one — the cleanup step after a restore or
// recovery swap. Purging by owner rather than wholesale matters: a
// g.snapshot of the NEW graph can land in the ring between the swap
// and this purge, and its epoch has already been handed to a client,
// so it must survive.
func (gm *GraphModule) releaseStaleViews() {
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	kept := gm.views[:0]
	for _, e := range gm.views {
		if e.g == cur {
			kept = append(kept, e)
		} else {
			e.v.Release()
		}
	}
	gm.views = kept
}

// viewAt resolves a retained view of the CURRENT graph by epoch,
// adding a reference for the caller. Retaining under viewMu is what
// makes it safe: a ring entry always carries the ring's own reference
// while listed, so the view cannot reach zero — and start panicking
// readers — between the lookup and the Retain, however the
// release/evict commands race. Matching on the owner graph matters
// during a restore: until releaseStaleViews finishes, the ring can
// transiently hold views of the replaced graph whose epochs collide
// with the fresh graph's restarted numbering, and those must never be
// served. The caller must Release the reference when done.
func (gm *GraphModule) viewAt(epoch uint64) *sharded.View {
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	for _, e := range gm.views {
		if e.g == cur && e.v.Epoch() == epoch {
			e.v.Retain()
			return e.v
		}
	}
	return nil
}

// saveRDB serialises the graph in the core snapshot format. The sharded
// Save freezes the graph only briefly and streams from a frozen view,
// so the snapshot is a consistent cut and commands keep flowing while
// it is written out.
func (gm *GraphModule) saveRDB() []byte {
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	gm.withGraph(func(g *sharded.Graph) { _ = g.Save(&buf) })
	return buf.Bytes()
}

func (gm *GraphModule) loadRDB(data []byte) error {
	g, err := sharded.Load(bytes.NewReader(data), sharded.Config{})
	if err != nil {
		return fmt.Errorf("cuckoograph rdb: %w", err)
	}
	gm.walMu.Lock()
	defer gm.walMu.Unlock()
	if gm.wal != nil {
		// The restore wholesale-replaces state the log knows nothing
		// about; keep logging on the new graph and checkpoint so the
		// on-disk recovery state matches it.
		g.SetWAL(gm.wal)
	}
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	// Retained views froze the replaced graph; time travel does not
	// survive a wholesale restore.
	gm.releaseStaleViews()
	if gm.wal != nil {
		if _, err := wal.Checkpoint(g, gm.wal); err != nil {
			return fmt.Errorf("cuckoograph rdb: checkpoint after restore: %w", err)
		}
	}
	gm.log.Info("rdb restored", "edges", g.NumEdges(), "nodes", g.NumNodes())
	return nil
}

// installGraph wholesale-replaces the module's graph — the follower's
// bootstrap step after decoding a leader snapshot. Like loadRDB it
// swaps under the write lock and purges views frozen on the replaced
// graph, but it never touches the WAL: a replica has none (its log is
// the leader's).
func (gm *GraphModule) installGraph(g *sharded.Graph) {
	gm.swapMu.Lock()
	gm.g = g
	gm.swapMu.Unlock()
	gm.releaseStaleViews()
}

// AOFRewrite emits the command stream that rebuilds the graph — the
// aof_rewrite interface of the Redis Module API.
func (gm *GraphModule) AOFRewrite() []string {
	var cmds []string
	gm.withGraph(func(g *sharded.Graph) {
		g.ForEachNode(func(u uint64) bool {
			g.ForEachSuccessor(u, func(v uint64) bool {
				cmds = append(cmds, strings.Join([]string{
					"g.insert",
					strconv.FormatUint(u, 10),
					strconv.FormatUint(v, 10),
				}, " "))
				return true
			})
			return true
		})
	})
	return cmds
}
