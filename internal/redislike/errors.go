package redislike

import (
	"errors"
	"fmt"

	"cuckoograph/internal/resp"
)

// The error taxonomy. Handlers return typed errors instead of
// hand-formatting "-ERR ..." strings; the dispatch layer maps each type
// onto a RESP error class (the leading word of the error reply, which
// Redis clients switch on) exactly once. The taxonomy is what keeps a
// pipelined connection in sync: every failure mode — bad arity, unknown
// command, malformed argument, durability failure, recovery in
// progress, admission control — produces a well-formed error reply in
// command order, never a closed socket mid-pipeline.

// RESP error classes. Clients see them as the first word of an error
// reply ("-LOADING ...", "-MAXCLIENTS ...").
const (
	ClassErr        = "ERR"        // generic command failure (bad arguments, state)
	ClassWALErr     = "WALERR"     // acknowledged-write durability failure
	ClassLoading    = "LOADING"    // write rejected while recovery rebuilds the graph
	ClassMaxClients = "MAXCLIENTS" // connection admission rejected
	ClassShutdown   = "SHUTDOWN"   // server is draining
	ClassReadOnly   = "READONLY"   // write rejected on a replica
	ClassMisconf    = "MISCONF"    // write rejected in degraded (WAL-failed) mode
)

// ArityError reports a call violating the command's registered arity.
type ArityError struct {
	Cmd string
}

func (e *ArityError) Error() string {
	return fmt.Sprintf("wrong number of arguments for '%s' command", e.Cmd)
}

// UnknownCommandError reports a name with no registry entry.
type UnknownCommandError struct {
	Cmd string
}

func (e *UnknownCommandError) Error() string {
	return fmt.Sprintf("unknown command '%s'", e.Cmd)
}

// BadArgError reports an argument that parsed at the protocol level but
// is malformed for the command — a non-numeric node id, an odd-length
// batch, an unparseable epoch.
type BadArgError struct {
	Cmd    string
	Detail string
}

func (e *BadArgError) Error() string { return e.Cmd + ": " + e.Detail }

// WALError reports that a mutation was applied in memory but its log
// append failed: the write is NOT durable and the client must not
// assume it survives a crash. It maps to its own RESP class so clients
// can distinguish "rejected" from "applied but at risk".
type WALError struct {
	Cmd string
	Err error
}

func (e *WALError) Error() string { return e.Cmd + ": wal: " + e.Err.Error() }
func (e *WALError) Unwrap() error { return e.Err }

// LoadingError rejects a write-flagged command while a recovery
// (wal_replay) is rebuilding and swapping the graph.
type LoadingError struct{}

func (e *LoadingError) Error() string {
	return "recovery in progress; write commands are rejected until it completes"
}

// MaxClientsError rejects a connection over the configured limit. It is
// written to the excess connection before it is closed — admission
// control answers, it does not hang.
type MaxClientsError struct {
	Limit int
}

func (e *MaxClientsError) Error() string {
	return fmt.Sprintf("connection limit of %d reached", e.Limit)
}

// ShutdownError rejects new connections and new commands once the
// server has begun draining.
type ShutdownError struct{}

func (e *ShutdownError) Error() string { return "server is shutting down" }

// ReadOnlyError rejects a write-flagged command on a replica. Replicas
// apply leader mutations through the replication stream, never through
// client dispatch, so every client write is rejected — matching the
// Redis "-READONLY You can't write against a read only replica" shape
// clients already know how to handle.
type ReadOnlyError struct {
	Cmd string
}

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("cannot execute '%s' against a read-only replica; send writes to the leader", e.Cmd)
}

// DegradedError rejects a write-flagged command while the server is in
// degraded read-only mode: the WAL failed under an earlier write (disk
// full, I/O error), so new mutations can no longer be made durable.
// Unlike -READONLY this is an operational condition, not a role — reads
// keep serving, and the operator exits it with wal_resume once the
// storage problem is fixed. The MISCONF class matches the Redis
// convention for "persistence is broken, writes refused".
type DegradedError struct {
	Cmd    string
	Reason string
}

func (e *DegradedError) Error() string {
	msg := "write commands are rejected: degraded mode after a wal failure"
	if e.Cmd != "" {
		msg = fmt.Sprintf("cannot execute '%s': %s", e.Cmd, msg)
	}
	if e.Reason != "" {
		msg += " (" + e.Reason + ")"
	}
	return msg + "; fix the storage and run wal_resume"
}

// errorClass maps a handler error onto its RESP class.
func errorClass(err error) string {
	var (
		walErr   *WALError
		loading  *LoadingError
		maxc     *MaxClientsError
		down     *ShutdownError
		readonly *ReadOnlyError
		degraded *DegradedError
	)
	switch {
	case errors.As(err, &walErr):
		return ClassWALErr
	case errors.As(err, &loading):
		return ClassLoading
	case errors.As(err, &maxc):
		return ClassMaxClients
	case errors.As(err, &down):
		return ClassShutdown
	case errors.As(err, &readonly):
		return ClassReadOnly
	case errors.As(err, &degraded):
		return ClassMisconf
	}
	return ClassErr
}

// errorReply renders a typed error as the RESP error value sent to the
// client: class prefix, then the error's own message.
func errorReply(err error) resp.Value {
	return resp.Error(errorClass(err) + " " + err.Error())
}
