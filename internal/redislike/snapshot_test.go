package redislike

import (
	"fmt"
	"testing"

	"cuckoograph/internal/resp"
)

func newGraphServer(t *testing.T) (*Server, *GraphModule) {
	t.Helper()
	srv := NewServer()
	gm, mod := NewGraphModule()
	if err := srv.LoadModule(mod); err != nil {
		t.Fatalf("load module: %v", err)
	}
	return srv, gm
}

func mustInt(t *testing.T, v resp.Value) int64 {
	t.Helper()
	if v.Type != ':' {
		t.Fatalf("expected integer reply, got %c %q", v.Type, v.Str)
	}
	return v.Int
}

func bfsNodes(t *testing.T, v resp.Value) []int64 {
	t.Helper()
	if v.Type != '*' {
		t.Fatalf("expected array reply, got %c %q", v.Type, v.Str)
	}
	out := make([]int64, len(v.Array))
	for i, e := range v.Array {
		out[i] = e.Int
	}
	return out
}

func TestSnapshotCommandsTimeTravel(t *testing.T) {
	srv, _ := newGraphServer(t)
	// Path 1→2→3 at epoch A.
	dispatch(srv, "g.minsert", "1", "2", "2", "3")
	e1 := mustInt(t, dispatch(srv, "g.snapshot"))
	if e1 < 1 {
		t.Fatalf("g.snapshot epoch = %d", e1)
	}
	// Extend to 1→2→3→4 at epoch B, then break the old path.
	dispatch(srv, "g.insert", "3", "4")
	e2 := mustInt(t, dispatch(srv, "g.snapshot"))
	if e2 <= e1 {
		t.Fatalf("epochs not monotonic: %d then %d", e1, e2)
	}
	dispatch(srv, "g.del", "1", "2")

	list := dispatch(srv, "g.snapshots")
	if len(list.Array) != 2 || list.Array[0].Int != e1 || list.Array[1].Int != e2 {
		t.Fatalf("g.snapshots = %v, want [%d %d]", list.Array, e1, e2)
	}

	// Time travel: BFS from 1 at each epoch and live.
	if got := bfsNodes(t, dispatch(srv, "graph.bfs", "1", fmt.Sprint(e1))); len(got) != 3 {
		t.Fatalf("graph.bfs at epoch %d reached %v, want 3 nodes", e1, got)
	}
	if got := bfsNodes(t, dispatch(srv, "graph.bfs", "1", fmt.Sprint(e2))); len(got) != 4 {
		t.Fatalf("graph.bfs at epoch %d reached %v, want 4 nodes", e2, got)
	}
	if got := bfsNodes(t, dispatch(srv, "graph.bfs", "1")); len(got) != 1 {
		t.Fatalf("live graph.bfs reached %v, want just the root (1→2 deleted)", got)
	}

	// Unknown epoch errors; release then re-query errors too.
	if v := dispatch(srv, "graph.bfs", "1", "99999"); v.Type != '-' {
		t.Fatalf("graph.bfs on unknown epoch replied %c %q", v.Type, v.Str)
	}
	if n := mustInt(t, dispatch(srv, "g.release", fmt.Sprint(e1))); n != 1 {
		t.Fatalf("g.release existing epoch = %d, want 1", n)
	}
	if n := mustInt(t, dispatch(srv, "g.release", fmt.Sprint(e1))); n != 0 {
		t.Fatalf("g.release released epoch = %d, want 0", n)
	}
	if v := dispatch(srv, "graph.bfs", "1", fmt.Sprint(e1)); v.Type != '-' {
		t.Fatalf("graph.bfs on released epoch replied %c", v.Type)
	}
}

func TestSnapshotRingEvictsOldest(t *testing.T) {
	srv, gm := newGraphServer(t)
	gm.SetSnapshotRing(2)
	dispatch(srv, "g.insert", "1", "2")
	e1 := mustInt(t, dispatch(srv, "g.snapshot"))
	e2 := mustInt(t, dispatch(srv, "g.snapshot"))
	e3 := mustInt(t, dispatch(srv, "g.snapshot"))
	list := dispatch(srv, "g.snapshots")
	if len(list.Array) != 2 || list.Array[0].Int != e2 || list.Array[1].Int != e3 {
		t.Fatalf("ring = %v, want [%d %d] after evicting %d", list.Array, e2, e3, e1)
	}
	if g := gm.Graph(); g.LiveViews() != 2 {
		t.Fatalf("LiveViews = %d, want 2 (evicted view released)", g.LiveViews())
	}
	// Shrinking the ring releases the surplus immediately.
	gm.SetSnapshotRing(1)
	if g := gm.Graph(); g.LiveViews() != 1 {
		t.Fatalf("LiveViews = %d after shrink, want 1", g.LiveViews())
	}
}

func TestGraphPageRankEpochTagged(t *testing.T) {
	srv, _ := newGraphServer(t)
	// Two-node cycle: symmetric ranks of 0.5 each.
	dispatch(srv, "g.minsert", "1", "2", "2", "1")
	e := mustInt(t, dispatch(srv, "g.snapshot"))
	// Skew the live graph afterwards.
	dispatch(srv, "g.minsert", "3", "1", "4", "1", "5", "1", "3", "3", "4", "4", "5", "5")

	v := dispatch(srv, "graph.pagerank", "20", fmt.Sprint(e))
	if v.Type != '*' || len(v.Array) != 4 {
		t.Fatalf("graph.pagerank at epoch %d = %v, want 2 node/rank pairs", e, v.Array)
	}
	if v.Array[0].Int != 1 || v.Array[2].Int != 2 {
		t.Fatalf("pagerank nodes = %v, want 1 and 2", v.Array)
	}
	if v.Array[1].Str != v.Array[3].Str {
		t.Fatalf("symmetric cycle ranks differ: %q vs %q", v.Array[1].Str, v.Array[3].Str)
	}
	live := dispatch(srv, "graph.pagerank", "20")
	if len(live.Array) != 2*5 {
		t.Fatalf("live pagerank covers %d pairs, want 5", len(live.Array)/2)
	}
	if v := dispatch(srv, "graph.pagerank", "0"); v.Type != '-' {
		t.Fatalf("graph.pagerank with 0 iters replied %c", v.Type)
	}
}

func TestReleaseWhileAnalyticsHoldsViewDoesNotPanic(t *testing.T) {
	srv, gm := newGraphServer(t)
	dispatch(srv, "g.minsert", "1", "2", "2", "3")
	e := mustInt(t, dispatch(srv, "g.snapshot"))

	// An in-flight epoch-tagged pass pins the view the way graph.bfs
	// does; releasing the epoch (or evicting it from the ring) must not
	// panic the pass — it drops only the ring's reference.
	s, cleanup, err := gm.analyticsStore(fmt.Sprint(e))
	if err != nil {
		t.Fatalf("analyticsStore: %v", err)
	}
	if n := mustInt(t, dispatch(srv, "g.release", fmt.Sprint(e))); n != 1 {
		t.Fatalf("g.release = %d, want 1", n)
	}
	if !s.HasEdge(1, 2) || !s.HasEdge(2, 3) {
		t.Fatalf("pinned view lost its epoch after g.release")
	}
	cleanup()
	// Now fully released: the epoch is gone for new commands.
	if v := dispatch(srv, "graph.bfs", "1", fmt.Sprint(e)); v.Type != '-' {
		t.Fatalf("released epoch still resolvable: %c", v.Type)
	}
	if gm.Graph().LiveViews() != 0 {
		t.Fatalf("LiveViews = %d after cleanup, want 0", gm.Graph().LiveViews())
	}
}

func TestLoadRDBReleasesRetainedViews(t *testing.T) {
	srv, gm := newGraphServer(t)
	dispatch(srv, "g.insert", "1", "2")
	mustInt(t, dispatch(srv, "g.snapshot"))
	old := gm.Graph()
	snap := srv.SaveRDB()
	if err := srv.LoadRDB(snap); err != nil {
		t.Fatalf("load rdb: %v", err)
	}
	if n := len(dispatch(srv, "g.snapshots").Array); n != 0 {
		t.Fatalf("%d retained views survived a restore", n)
	}
	if old.LiveViews() != 0 {
		t.Fatalf("old graph still has %d live views after restore", old.LiveViews())
	}
}
