package redislike

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// TestShutdownReleasesViewsAndWAL is the leak-fix pin: a server stopped
// mid-flight — retained snapshot views in the ring, WAL open — must
// tear down in order: drain, release every ring view (LiveViews drops
// to zero, pinned CoW state freed), then close the WAL (flock released,
// pending records flushed).
func TestShutdownReleasesViewsAndWAL(t *testing.T) {
	dir := t.TempDir()
	s, gm, _ := startGraphServer(t, Config{})
	if err := gm.EnableWAL(dir, wal.Options{Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if got := s.Dispatch(resp.Command("g.insert", "1", string(rune('0'+i)))); got.Type == '-' {
			t.Fatalf("insert = %+v", got)
		}
	}
	for i := 0; i < 3; i++ {
		if got := s.Dispatch(resp.Command("g.snapshot")); got.Type != ':' {
			t.Fatalf("snapshot = %+v", got)
		}
		s.Dispatch(resp.Command("g.insert", "2", string(rune('0'+i))))
	}
	if live := gm.Graph().LiveViews(); live != 3 {
		t.Fatalf("pre-shutdown live views = %d, want 3", live)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if live := gm.Graph().LiveViews(); live != 0 {
		t.Fatalf("shutdown leaked %d snapshot views", live)
	}
	// The WAL closed cleanly: its directory lock is released (a fresh
	// Open succeeds where a leaked flock would fail) and recovery sees
	// every acknowledged write.
	g, _, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		t.Fatalf("recover after shutdown: %v", err)
	}
	if want := gm.Graph().NumEdges(); g.NumEdges() != want {
		t.Fatalf("recovered %d edges, want %d", g.NumEdges(), want)
	}
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal dir still locked after shutdown: %v", err)
	}
	w.Close()

	// Shutdown is idempotent: every later call reports the first result.
	if err := s.Close(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestShutdownDrains: an idle connection is interrupted, Shutdown
// returns promptly, and both new dials and the draining listener are
// refused afterwards.
func TestShutdownDrains(t *testing.T) {
	s, _, addr := startGraphServer(t, Config{})
	p := dialPipe(t, addr)
	p.push("PING")
	p.flush()
	if got := p.read(); got.Str != "PONG" {
		t.Fatalf("PING = %+v", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("shutdown hung on an idle connection")
	}

	// The drained connection is closed.
	p.c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := resp.Read(p.r); err == nil {
		t.Fatal("idle connection survived shutdown")
	}
	// New dials are refused.
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownFinishesInFlightCommand: a command already executing when
// Shutdown begins still gets its reply flushed before the connection
// closes — the drain waits for it instead of cutting it off.
func TestShutdownFinishesInFlightCommand(t *testing.T) {
	s, _, addr := startGraphServer(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	err := s.Registry().Register(&Command{
		Name: "t.slow", Arity: Exactly(0), Summary: "test: block until released",
		Handler: func(ctx *Ctx) error {
			close(started)
			<-release
			ctx.ReplySimple("SLOW-OK")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	p := dialPipe(t, addr)
	p.push("t.slow")
	p.flush()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	// Shutdown must be blocked on the in-flight command, not racing past
	// it: give the drain a moment, then let the handler finish.
	select {
	case err := <-done:
		t.Fatalf("shutdown returned before the in-flight command finished (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := p.read(); got.Str != "SLOW-OK" {
		t.Fatalf("in-flight reply = %+v", got)
	}
	p.c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := resp.Read(p.r); err == nil {
		t.Fatal("connection survived shutdown")
	}
}

// TestMetricsEndpoint scrapes /metrics over HTTP and checks the three
// layers of the exposition: server gauges, per-command meters, and the
// graph module's engine/snapshot/WAL series.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, gm, addr := startGraphServer(t, Config{})
	if err := gm.EnableWAL(dir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	maddr, err := s.ListenMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	p := dialPipe(t, addr)
	p.push("g.insert", "1", "2")
	p.push("g.insert", "2", "3")
	p.push("g.query", "1", "2")
	p.push("g.snapshot")
	p.push("g.insert", "bad", "2")
	p.flush()
	for i := 0; i < 5; i++ {
		p.read()
	}

	res, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE cg_commands_total counter",
		`cg_commands_total{cmd="g.insert"} 3`,
		`cg_command_errors_total{cmd="g.insert"} 1`,
		`cg_command_seconds_bucket{cmd="g.query",le="+Inf"} 1`,
		`cg_command_seconds_count{cmd="g.query"} 1`,
		"cg_connections_active 1",
		"cg_connections_accepted_total 1",
		"cg_uptime_seconds",
		"cg_graph_edges 2",
		"cg_graph_nodes 2",
		"cg_snapshot_live_views 1",
		"cg_wal_enabled 1",
		"cg_wal_ops_total 2",
		"cg_loading 0",
		"cg_shutting_down 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	res, err = http.Get("http://" + maddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", res.StatusCode)
	}

	// Shutdown closes the metrics listener too.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + maddr + "/metrics"); err == nil {
		t.Fatal("metrics listener survived shutdown")
	}
}

// TestConnStateCounts: handlers see per-connection state through Ctx.
func TestConnStateCounts(t *testing.T) {
	s := NewServer()
	seen := make(chan uint64, 1)
	err := s.Registry().Register(&Command{
		Name: "t.conn", Arity: Exactly(0),
		Handler: func(ctx *Ctx) error {
			if ctx.Conn == nil {
				seen <- 0
			} else {
				seen <- ctx.Conn.Commands
			}
			ctx.ReplySimple("OK")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := dialPipe(t, addr)
	p.push("PING")
	p.push("t.conn")
	p.flush()
	p.read()
	p.read()
	if got := <-seen; got != 2 {
		t.Fatalf("ConnState.Commands = %d, want 2", got)
	}
}
