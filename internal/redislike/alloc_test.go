package redislike

import (
	"testing"
	"time"

	"cuckoograph/internal/resp"
)

// TestMetricsHandlesPreResolved is the satellite pin for the metrics
// hot path: registration resolves each command's meter into the
// Command, so dispatch records through the handle — never a per-call
// sync.Map lookup — and the handle feeds the same meter the
// introspection surfaces read.
func TestMetricsHandlesPreResolved(t *testing.T) {
	s := NewServer()
	err := s.Registry().Register(&Command{
		Name: "T.Pre", Arity: Exactly(0), Summary: "test: pre-resolved meter",
		Handler: func(ctx *Ctx) error { ctx.ReplySimple("OK"); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	cmd, ok := s.Registry().Lookup("t.pre")
	if !ok {
		t.Fatal("t.pre not registered")
	}
	if cmd.metrics == nil {
		t.Fatal("metrics handle not resolved at registration")
	}
	if cmd.metrics != s.Metrics().handle("t.pre") {
		t.Fatal("registration handle and by-name meter differ")
	}
	// Builtins get the same treatment.
	if c, _ := s.Registry().Lookup("ping"); c.metrics == nil {
		t.Fatal("builtin registered without a metrics handle")
	}
	// The unknown-command meter is resolved once at construction.
	if s.Metrics().unknown == nil || s.Metrics().unknown != s.Metrics().handle("unknown") {
		t.Fatal("unknown meter not pre-resolved")
	}
	// The handle observes into the meter CommandCalls reads.
	before := s.Metrics().CommandCalls("t.pre")
	if got := s.Dispatch(resp.Command("t.pre")); got.Str != "OK" {
		t.Fatalf("dispatch = %+v", got)
	}
	if got := s.Metrics().CommandCalls("t.pre"); got != before+1 {
		t.Fatalf("CommandCalls = %d, want %d", got, before+1)
	}
}

// byteArgs renders a command line the way the wire parser hands it to
// serveRequest: one byte-slice view per token.
func byteArgs(tokens ...string) [][]byte {
	out := make([][]byte, len(tokens))
	for i, s := range tokens {
		out[i] = []byte(s)
	}
	return out
}

// TestCommandCycleAllocs pins the tentpole property: a warm
// dispatch-execute-encode cycle for the hot commands allocates nothing.
// This drives the exact serveRequest path the TCP loop runs (the read
// side's zero-alloc property is pinned in internal/resp), with a
// per-connection Ctx and Writer reused across commands.
func TestCommandCycleAllocs(t *testing.T) {
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_ = gm

	var w resp.Writer
	ctx := &Ctx{srv: s, w: &w}
	cases := []struct {
		name string
		args [][]byte
	}{
		{"g.insert", byteArgs("g.insert", "7", "9")},
		{"g.minsert", byteArgs("g.minsert", "7", "9", "8", "9")},
		{"g.query", byteArgs("g.query", "7", "9")},
		{"g.degree", byteArgs("g.degree", "7")},
		{"g.getneighbors", byteArgs("g.getneighbors", "7")},
		{"g.mdel", byteArgs("g.mdel", "100", "101")},
		{"ping", byteArgs("PING")},
		{"get", byteArgs("get", "k")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Prime scratch growth (name buffer, batch, ids) and any
			// first-touch structure growth in the engine.
			s.serveRequest(ctx, tc.args)
			w.Reset()
			allocs := testing.AllocsPerRun(200, func() {
				s.serveRequest(ctx, tc.args)
				w.Reset()
			})
			if allocs != 0 {
				t.Fatalf("%s cycle allocates %.1f/run, want 0", tc.name, allocs)
			}
		})
	}
}

// TestCommandCycleErrorReplies: the streaming path still renders the
// pinned taxonomy errors — rewinding any partial output first.
func TestCommandCycleErrorReplies(t *testing.T) {
	s := NewServer()
	_, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if got := s.Dispatch(resp.Command("g.insert", "1")); got.Str != "ERR wrong number of arguments for 'g.insert' command" {
		t.Fatalf("arity reply = %q", got.Str)
	}
	if got := s.Dispatch(resp.Command("nosuch")); got.Str != "ERR unknown command 'nosuch'" {
		t.Fatalf("unknown reply = %q", got.Str)
	}
	if got := s.Dispatch(resp.Command("g.insert", "x", "2")); got.Str != `ERR g.insert: bad node id "x"` {
		t.Fatalf("bad-arg reply = %q", got.Str)
	}
	// A handler error mid-reply rewinds: the wire sees one error value,
	// not a truncated array.
	err := s.Registry().Register(&Command{
		Name: "t.partial", Arity: Exactly(0), Summary: "test: error after partial output",
		Handler: func(ctx *Ctx) error {
			ctx.ReplyArrayHeader(3)
			ctx.ReplyInt(1)
			return &BadArgError{Cmd: ctx.Name, Detail: "gave up mid-array"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Dispatch(resp.Command("t.partial"))
	if got.Type != '-' || got.Str != "ERR t.partial: gave up mid-array" {
		t.Fatalf("partial-output reply = %+v", got)
	}
	// A handler returning nil without writing is a server bug surfaced
	// as an error reply, keeping the pipeline in sync.
	err = s.Registry().Register(&Command{
		Name: "t.mute", Arity: Exactly(0), Summary: "test: no reply",
		Handler: func(ctx *Ctx) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Dispatch(resp.Command("t.mute")); got.Type != '-' {
		t.Fatalf("mute handler reply = %+v, want error", got)
	}
}

// TestDispatchMetersDuration: the pre-resolved handles still feed the
// latency histogram dispatch used to populate via the map path.
func TestDispatchMetersDuration(t *testing.T) {
	s := NewServer()
	s.Dispatch(resp.Command("ping"))
	m := s.Metrics().handle("ping")
	if m.calls.Load() != 1 {
		t.Fatalf("ping calls = %d, want 1", m.calls.Load())
	}
	var bucketed uint64
	for i := range m.buckets {
		bucketed += m.buckets[i].Load()
	}
	if bucketed != 1 {
		t.Fatalf("histogram observations = %d, want 1", bucketed)
	}
	if m.sumNS.Load() == 0 && time.Since(s.Metrics().start) > 0 {
		t.Fatal("latency sum not recorded")
	}
}
