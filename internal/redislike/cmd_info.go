package redislike

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Introspection: the G.INFO command and the module's /metrics hook.
// Both are generated from live state — registry, engine Stats, snapshot
// ring, WAL counters — so there is no second bookkeeping surface to
// drift out of sync.

// infoSections is the section order of the full G.INFO reply.
var infoSections = []string{"server", "commands", "graph", "snapshots", "wal", "replication"}

// info is G.INFO [section]: Redis INFO-shaped key:value text, whole or
// one section at a time.
func (gm *GraphModule) info(ctx *Ctx) error {
	want := ""
	if len(ctx.Args) == 1 {
		want = strings.ToLower(ctx.ArgString(0))
		ok := false
		for _, s := range infoSections {
			if s == want {
				ok = true
				break
			}
		}
		if !ok {
			return &BadArgError{Cmd: ctx.Name,
				Detail: "unknown section " + strconv.Quote(want) + " (want " + strings.Join(infoSections, "|") + ")"}
		}
	}
	var b strings.Builder
	for _, s := range infoSections {
		if want != "" && s != want {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "# %s\n", s)
		switch s {
		case "server":
			gm.infoServer(ctx, &b)
		case "commands":
			gm.infoCommands(ctx, &b)
		case "graph":
			gm.infoGraph(&b)
		case "snapshots":
			gm.infoSnapshots(&b)
		case "wal":
			gm.infoWAL(&b)
		case "replication":
			gm.infoReplication(ctx, &b)
		}
	}
	ctx.ReplyBulkString(b.String())
	return nil
}

func (gm *GraphModule) infoServer(ctx *Ctx, b *strings.Builder) {
	s := ctx.Server()
	if s == nil {
		fmt.Fprintf(b, "standalone:1\n")
		return
	}
	m := s.Metrics()
	fmt.Fprintf(b, "uptime_seconds:%d\n", int64(time.Since(m.start).Seconds()))
	fmt.Fprintf(b, "connections_active:%d\n", m.connsActive.Load())
	fmt.Fprintf(b, "connections_accepted:%d\n", m.connsAccepted.Load())
	fmt.Fprintf(b, "connections_rejected:%d\n", m.connsRejected.Load())
	fmt.Fprintf(b, "loading:%d\n", b2i(s.Loading()))
	fmt.Fprintf(b, "degraded:%d\n", b2i(s.Degraded()))
	if reason := s.DegradedReason(); reason != "" {
		fmt.Fprintf(b, "degraded_reason:%s\n", reason)
	}
	fmt.Fprintf(b, "shutting_down:%d\n", b2i(s.draining()))
}

func (gm *GraphModule) infoCommands(ctx *Ctx, b *strings.Builder) {
	s := ctx.Server()
	if s == nil {
		return
	}
	fmt.Fprintf(b, "commands_registered:%d\n", s.Registry().Len())
	m := s.Metrics()
	for _, c := range s.Registry().Commands() {
		v, ok := m.cmds.Load(c.Name)
		if !ok {
			continue
		}
		cm := v.(*cmdMetrics)
		fmt.Fprintf(b, "cmdstat_%s:calls=%d,errors=%d,usec=%d\n",
			c.Name, cm.calls.Load(), cm.errs.Load(), cm.sumNS.Load()/1e3)
	}
}

func (gm *GraphModule) infoGraph(b *strings.Builder) {
	g := gm.Graph()
	st := g.Stats()
	fmt.Fprintf(b, "nodes:%d\n", st.Nodes)
	fmt.Fprintf(b, "edges:%d\n", st.Edges)
	fmt.Fprintf(b, "shards:%d\n", g.Shards())
	fmt.Fprintf(b, "mutations:%d\n", g.Mutations())
	fmt.Fprintf(b, "memory_bytes:%d\n", g.MemoryUsage())
	fmt.Fprintf(b, "lcht_tables:%d\n", st.LCHTTables)
	fmt.Fprintf(b, "lcht_cells:%d\n", st.LCHTCells)
	fmt.Fprintf(b, "lcht_load_rate:%.4f\n", st.LCHTLoadRate)
	fmt.Fprintf(b, "lcht_kicks:%d\n", st.LCHTKicks)
	fmt.Fprintf(b, "lcht_placements:%d\n", st.LCHTPlacements)
	fmt.Fprintf(b, "chains:%d\n", st.Chains)
	fmt.Fprintf(b, "chain_entries:%d\n", st.ChainEntries)
	fmt.Fprintf(b, "scht_kicks:%d\n", st.SCHTKicks)
	fmt.Fprintf(b, "scht_placements:%d\n", st.SCHTPlacements)
	fmt.Fprintf(b, "transformations:%d\n", st.Transformations)
}

func (gm *GraphModule) infoSnapshots(b *strings.Builder) {
	vs := gm.Graph().ViewStats()
	gm.viewMu.Lock()
	retained, cap := len(gm.views), gm.viewCap
	gm.viewMu.Unlock()
	fmt.Fprintf(b, "epoch:%d\n", vs.Epoch)
	fmt.Fprintf(b, "live_views:%d\n", vs.LiveViews)
	fmt.Fprintf(b, "cow_bytes:%d\n", vs.CoWBytes)
	fmt.Fprintf(b, "ring_retained:%d\n", retained)
	fmt.Fprintf(b, "ring_capacity:%d\n", cap)
}

func (gm *GraphModule) infoWAL(b *strings.Builder) {
	w := gm.walPtr.Load()
	if w == nil {
		fmt.Fprintf(b, "enabled:0\n")
		return
	}
	st := w.Stats()
	fmt.Fprintf(b, "enabled:1\n")
	fmt.Fprintf(b, "dir:%s\n", w.Dir())
	fmt.Fprintf(b, "on_error_policy:%s\n", gm.WALErrorPolicyValue().String())
	fmt.Fprintf(b, "segment:%d\n", st.Segment)
	fmt.Fprintf(b, "appends:%d\n", st.Appends)
	fmt.Fprintf(b, "records:%d\n", st.Records)
	fmt.Fprintf(b, "ops:%d\n", st.Ops)
	fmt.Fprintf(b, "bytes:%d\n", st.Bytes)
	fmt.Fprintf(b, "group_commits:%d\n", st.GroupCommits)
	fmt.Fprintf(b, "syncs:%d\n", st.Syncs)
	fmt.Fprintf(b, "rotations:%d\n", st.Rotations)
	fmt.Fprintf(b, "pending_bytes:%d\n", st.PendingBytes)
	fmt.Fprintf(b, "failed:%d\n", b2i(st.Failed))
}

func (gm *GraphModule) infoReplication(ctx *Ctx, b *strings.Builder) {
	if r := gm.replica.Load(); r != nil {
		fmt.Fprintf(b, "role:replica\n")
		fmt.Fprintf(b, "leader:%s\n", r.Leader())
		fmt.Fprintf(b, "state:%s\n", replicaStateName(r.state.Load()))
		fmt.Fprintf(b, "applied_segment:%d\n", r.posSeg.Load())
		fmt.Fprintf(b, "applied_offset:%d\n", r.posOff.Load())
		fmt.Fprintf(b, "leader_segment:%d\n", r.leaderSeg.Load())
		fmt.Fprintf(b, "leader_offset:%d\n", r.leaderOff.Load())
		fmt.Fprintf(b, "bytes_received:%d\n", r.bytes.Load())
		fmt.Fprintf(b, "frames_applied:%d\n", r.frames.Load())
		fmt.Fprintf(b, "ops_applied:%d\n", r.ops.Load())
		fmt.Fprintf(b, "snapshots_installed:%d\n", r.snapshots.Load())
		fmt.Fprintf(b, "reconnects:%d\n", r.reconnects.Load())
		if s := ctx.Server(); s != nil {
			fmt.Fprintf(b, "read_only:%d\n", b2i(s.ReadOnly()))
		}
		return
	}
	fmt.Fprintf(b, "role:leader\n")
	links := gm.replLinks()
	fmt.Fprintf(b, "connected_replicas:%d\n", len(links))
	if w := gm.walPtr.Load(); w != nil {
		if floor, held := w.RetentionFloor(); held {
			fmt.Fprintf(b, "retention_floor_segment:%d\n", floor)
		}
	}
	for i, l := range links {
		fmt.Fprintf(b, "replica%d:addr=%s,ack_segment=%d,ack_offset=%d,sent_segment=%d,sent_offset=%d,sent_bytes=%d,snapshots=%d,age_seconds=%d\n",
			i, l.addr, l.ackSeg.Load(), l.ackOff.Load(), l.sentSeg.Load(), l.sentOff.Load(),
			l.sentBytes.Load(), l.snapshots.Load(), int64(time.Since(l.since).Seconds()))
	}
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// collectMetrics is the module's Metrics hook: engine, snapshot-ring
// and WAL state under the server's /metrics scrape. The WAL pointer is
// read through the lock-free mirror so a scrape never queues behind a
// checkpoint holding walMu.
func (gm *GraphModule) collectMetrics(mw *MetricsWriter) {
	g := gm.Graph()
	st := g.Stats()
	mw.Gauge("cg_graph_nodes", "Nodes with at least one out-edge.", float64(st.Nodes))
	mw.Gauge("cg_graph_edges", "Edges in the graph.", float64(st.Edges))
	mw.Gauge("cg_graph_memory_bytes", "Estimated engine memory footprint.", float64(g.MemoryUsage()))
	mw.Counter("cg_graph_mutations_total", "Applied mutations since the graph was created.", float64(g.Mutations()))
	mw.Gauge("cg_graph_shards", "Shards in the concurrent engine.", float64(g.Shards()))
	mw.Gauge("cg_graph_lcht_load_rate", "Overall LCHT load rate.", st.LCHTLoadRate)
	mw.Counter("cg_graph_lcht_kicks_total", "Cuckoo kicks in the large-degree tables.", float64(st.LCHTKicks))
	mw.Counter("cg_graph_transformations_total", "LDL/SDL/LCHT structure transformations.", float64(st.Transformations))

	vs := g.ViewStats()
	gm.viewMu.Lock()
	retained := len(gm.views)
	gm.viewMu.Unlock()
	mw.Gauge("cg_snapshot_epoch", "Current snapshot epoch.", float64(vs.Epoch))
	mw.Gauge("cg_snapshot_live_views", "Frozen views currently retained (ring + in-flight).", float64(vs.LiveViews))
	mw.Counter("cg_snapshot_cow_bytes_total", "Pre-image bytes copied for snapshot isolation since start.", float64(vs.CoWBytes))
	mw.Gauge("cg_snapshot_ring_retained", "Views retained in the time-travel ring.", float64(retained))

	w := gm.walPtr.Load()
	if w == nil {
		mw.Gauge("cg_wal_enabled", "1 while a write-ahead log is attached.", 0)
	} else {
		// The mirror is cleared before CloseWAL closes the WAL, but a
		// scrape can still hold a pointer loaded just before the store;
		// Stats on a closed WAL is well-defined (final counters), so
		// either interleaving reports consistently.
		ws := w.Stats()
		mw.Gauge("cg_wal_enabled", "1 while a write-ahead log is attached.", 1)
		mw.Counter("cg_wal_appends_total", "Acknowledged append calls.", float64(ws.Appends))
		mw.Counter("cg_wal_records_total", "Framed records written or queued.", float64(ws.Records))
		mw.Counter("cg_wal_ops_total", "Edge mutations logged.", float64(ws.Ops))
		mw.Counter("cg_wal_bytes_total", "Frame bytes handed to write(2).", float64(ws.Bytes))
		mw.Counter("cg_wal_group_commits_total", "Group commits (write(2) batches).", float64(ws.GroupCommits))
		mw.Counter("cg_wal_syncs_total", "fsyncs of segment data.", float64(ws.Syncs))
		mw.Counter("cg_wal_rotations_total", "Segment rotations.", float64(ws.Rotations))
		mw.Gauge("cg_wal_segment", "Segment currently appended to.", float64(ws.Segment))
		mw.Gauge("cg_wal_pending_bytes", "Queued frame bytes not yet written.", float64(ws.PendingBytes))
		mw.Gauge("cg_wal_failed", "1 once the WAL's sticky error is set.", boolGauge(ws.Failed))
	}

	if r := gm.replica.Load(); r != nil {
		mw.Gauge("cg_repl_role", "0 on a leader, 1 on a replica.", 1)
		mw.Gauge("cg_repl_replica_streaming", "1 while the replication link is live.", boolGauge(r.state.Load() == replicaStreaming))
		mw.Gauge("cg_repl_replica_segment", "Last applied log segment.", float64(r.posSeg.Load()))
		mw.Gauge("cg_repl_replica_offset", "Last applied offset within the segment.", float64(r.posOff.Load()))
		mw.Counter("cg_repl_replica_bytes_total", "Replication payload bytes applied.", float64(r.bytes.Load()))
		mw.Counter("cg_repl_replica_frames_total", "Replication frame chunks applied.", float64(r.frames.Load()))
		mw.Counter("cg_repl_replica_ops_total", "Edge mutations applied from the stream.", float64(r.ops.Load()))
		mw.Counter("cg_repl_replica_snapshots_total", "Bootstrap snapshots installed.", float64(r.snapshots.Load()))
		mw.Counter("cg_repl_replica_reconnects_total", "Replication link losses.", float64(r.reconnects.Load()))
		return
	}
	mw.Gauge("cg_repl_role", "0 on a leader, 1 on a replica.", 0)
	links := gm.replLinks()
	mw.Gauge("cg_repl_connected_replicas", "Followers currently streaming.", float64(len(links)))
	var sent, snaps uint64
	for _, l := range links {
		sent += l.sentBytes.Load()
		snaps += l.snapshots.Load()
	}
	mw.Gauge("cg_repl_sent_bytes", "Payload bytes sent to currently connected followers.", float64(sent))
	mw.Gauge("cg_repl_sent_snapshots", "Bootstrap snapshots pushed to currently connected followers.", float64(snaps))
	if w != nil {
		if floor, held := w.RetentionFloor(); held {
			mw.Gauge("cg_repl_retention_floor_segment", "Lowest segment pinned by a connected follower.", float64(floor))
		}
	}
}
