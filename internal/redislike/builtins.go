package redislike

import (
	"strings"

	"cuckoograph/internal/resp"
)

// registerBuiltins registers the core string commands and the COMMAND
// introspection command. Builtins go through the same registry as
// module commands — there is no hardwired dispatch path.
func (s *Server) registerBuiltins() {
	for _, c := range []*Command{
		{
			Name: "ping", Arity: Between(0, 1), Summary: "liveness probe; echoes its argument",
			Handler: func(ctx *Ctx) error {
				if len(ctx.Args) == 1 {
					ctx.ReplyBulk(ctx.Args[0])
				} else {
					ctx.ReplySimple("PONG")
				}
				return nil
			},
		},
		{
			Name: "set", Arity: Exactly(2), Flags: FlagWrite, Summary: "set a string key",
			Handler: func(ctx *Ctx) error {
				s.mu.Lock()
				s.strings[string(ctx.Args[0])] = string(ctx.Args[1])
				s.mu.Unlock()
				ctx.ReplySimple("OK")
				return nil
			},
		},
		{
			Name: "get", Arity: Exactly(1), Flags: FlagRead, Summary: "get a string key",
			Handler: func(ctx *Ctx) error {
				s.mu.RLock()
				v, ok := s.strings[string(ctx.Args[0])]
				s.mu.RUnlock()
				if ok {
					ctx.ReplyBulkString(v)
				} else {
					ctx.ReplyNullBulk()
				}
				return nil
			},
		},
		{
			Name: "del", Arity: AtLeast(1), Flags: FlagWrite, Summary: "delete string keys; replies with the count removed",
			Handler: func(ctx *Ctx) error {
				n := int64(0)
				s.mu.Lock()
				for _, k := range ctx.Args {
					if _, ok := s.strings[string(k)]; ok {
						delete(s.strings, string(k))
						n++
					}
				}
				s.mu.Unlock()
				ctx.ReplyInt(n)
				return nil
			},
		},
		{
			Name: "command", Arity: AtLeast(0), Summary: "introspect the command registry",
			Handler: s.commandCmd,
		},
	} {
		// Registration of the built-ins cannot fail: names are unique
		// literals and every handler is set.
		if err := s.reg.Register(c); err != nil {
			panic(err)
		}
	}
}

// commandEntry renders one registration in COMMAND reply shape:
// [name, arity (Redis convention), [flags...], summary]. Everything
// comes from the registry — the registration is the single source of
// truth for dispatch and introspection alike.
func commandEntry(c *Command) resp.Value {
	flags := make([]resp.Value, 0, 3)
	for _, f := range c.Flags.Names() {
		flags = append(flags, resp.Simple(f))
	}
	return resp.Array(
		resp.Bulk(c.Name),
		resp.Integer(c.Arity.Redis()),
		resp.Array(flags...),
		resp.Bulk(c.Summary),
	)
}

// commandCmd is COMMAND [COUNT | LIST | INFO name [name ...]]: the
// registry-generated introspection surface. A cold path: replies are
// assembled as boxed Values and bridged through the streaming writer.
func (s *Server) commandCmd(ctx *Ctx) error {
	if len(ctx.Args) == 0 {
		cmds := s.reg.Commands()
		out := make([]resp.Value, len(cmds))
		for i, c := range cmds {
			out[i] = commandEntry(c)
		}
		ctx.ReplyValue(resp.Array(out...))
		return nil
	}
	switch sub := strings.ToLower(ctx.ArgString(0)); sub {
	case "count":
		if len(ctx.Args) != 1 {
			return &BadArgError{Cmd: ctx.Name, Detail: "COUNT takes no arguments"}
		}
		ctx.ReplyInt(int64(s.reg.Len()))
		return nil
	case "list":
		if len(ctx.Args) != 1 {
			return &BadArgError{Cmd: ctx.Name, Detail: "LIST takes no arguments"}
		}
		cmds := s.reg.Commands()
		ctx.ReplyArrayHeader(len(cmds))
		for _, c := range cmds {
			ctx.ReplyBulkString(c.Name)
		}
		return nil
	case "info":
		out := make([]resp.Value, 0, len(ctx.Args)-1)
		for _, name := range ctx.Args[1:] {
			if c, ok := s.reg.Lookup(strings.ToLower(string(name))); ok {
				out = append(out, commandEntry(c))
			} else {
				out = append(out, resp.NullBulk())
			}
		}
		ctx.ReplyValue(resp.Array(out...))
		return nil
	default:
		return &BadArgError{Cmd: ctx.Name, Detail: "unknown subcommand " + sub + " (want COUNT, LIST or INFO)"}
	}
}
