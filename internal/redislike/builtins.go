package redislike

import (
	"strings"

	"cuckoograph/internal/resp"
)

// registerBuiltins registers the core string commands and the COMMAND
// introspection command. Builtins go through the same registry as
// module commands — there is no hardwired dispatch path.
func (s *Server) registerBuiltins() {
	for _, c := range []*Command{
		{
			Name: "ping", Arity: Between(0, 1), Summary: "liveness probe; echoes its argument",
			Handler: func(ctx *Ctx) (resp.Value, error) {
				if len(ctx.Args) == 1 {
					return resp.Bulk(ctx.Args[0]), nil
				}
				return resp.Simple("PONG"), nil
			},
		},
		{
			Name: "set", Arity: Exactly(2), Flags: FlagWrite, Summary: "set a string key",
			Handler: func(ctx *Ctx) (resp.Value, error) {
				s.mu.Lock()
				s.strings[ctx.Args[0]] = ctx.Args[1]
				s.mu.Unlock()
				return resp.Simple("OK"), nil
			},
		},
		{
			Name: "get", Arity: Exactly(1), Flags: FlagRead, Summary: "get a string key",
			Handler: func(ctx *Ctx) (resp.Value, error) {
				s.mu.RLock()
				v, ok := s.strings[ctx.Args[0]]
				s.mu.RUnlock()
				if ok {
					return resp.Bulk(v), nil
				}
				return resp.NullBulk(), nil
			},
		},
		{
			Name: "del", Arity: AtLeast(1), Flags: FlagWrite, Summary: "delete string keys; replies with the count removed",
			Handler: func(ctx *Ctx) (resp.Value, error) {
				n := int64(0)
				s.mu.Lock()
				for _, k := range ctx.Args {
					if _, ok := s.strings[k]; ok {
						delete(s.strings, k)
						n++
					}
				}
				s.mu.Unlock()
				return resp.Integer(n), nil
			},
		},
		{
			Name: "command", Arity: AtLeast(0), Summary: "introspect the command registry",
			Handler: s.commandCmd,
		},
	} {
		// Registration of the built-ins cannot fail: names are unique
		// literals and every handler is set.
		if err := s.reg.Register(c); err != nil {
			panic(err)
		}
	}
}

// commandEntry renders one registration in COMMAND reply shape:
// [name, arity (Redis convention), [flags...], summary]. Everything
// comes from the registry — the registration is the single source of
// truth for dispatch and introspection alike.
func commandEntry(c *Command) resp.Value {
	flags := make([]resp.Value, 0, 3)
	for _, f := range c.Flags.Names() {
		flags = append(flags, resp.Simple(f))
	}
	return resp.Array(
		resp.Bulk(c.Name),
		resp.Integer(c.Arity.Redis()),
		resp.Array(flags...),
		resp.Bulk(c.Summary),
	)
}

// commandCmd is COMMAND [COUNT | LIST | INFO name [name ...]]: the
// registry-generated introspection surface.
func (s *Server) commandCmd(ctx *Ctx) (resp.Value, error) {
	if len(ctx.Args) == 0 {
		cmds := s.reg.Commands()
		out := make([]resp.Value, len(cmds))
		for i, c := range cmds {
			out[i] = commandEntry(c)
		}
		return resp.Array(out...), nil
	}
	switch strings.ToLower(ctx.Args[0]) {
	case "count":
		if len(ctx.Args) != 1 {
			return resp.Value{}, &BadArgError{Cmd: ctx.Name, Detail: "COUNT takes no arguments"}
		}
		return resp.Integer(int64(s.reg.Len())), nil
	case "list":
		if len(ctx.Args) != 1 {
			return resp.Value{}, &BadArgError{Cmd: ctx.Name, Detail: "LIST takes no arguments"}
		}
		cmds := s.reg.Commands()
		out := make([]resp.Value, len(cmds))
		for i, c := range cmds {
			out[i] = resp.Bulk(c.Name)
		}
		return resp.Array(out...), nil
	case "info":
		out := make([]resp.Value, 0, len(ctx.Args)-1)
		for _, name := range ctx.Args[1:] {
			if c, ok := s.reg.Lookup(strings.ToLower(name)); ok {
				out = append(out, commandEntry(c))
			} else {
				out = append(out, resp.NullBulk())
			}
		}
		return resp.Array(out...), nil
	}
	return resp.Value{}, &BadArgError{Cmd: ctx.Name, Detail: "unknown subcommand " + strings.ToLower(ctx.Args[0]) + " (want COUNT, LIST or INFO)"}
}
