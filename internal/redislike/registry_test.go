package redislike

import (
	"strings"
	"testing"

	"cuckoograph/internal/resp"
)

func TestRegistryRegister(t *testing.T) {
	r := NewRegistry()
	ok := &Command{Name: "G.Test", Arity: Exactly(1),
		Handler: func(ctx *Ctx) error { ctx.ReplySimple("OK"); return nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	// Names are stored lowercased and looked up lowercased.
	if _, found := r.Lookup("g.test"); !found {
		t.Fatal("lowercased lookup failed")
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(&Command{Name: "nohandler", Arity: Exactly(0)}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := r.Register(&Command{Name: "", Arity: Exactly(0),
		Handler: func(*Ctx) error { return nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestRegistryCommandsSorted(t *testing.T) {
	r := NewRegistry()
	h := func(*Ctx) error { return nil }
	for _, name := range []string{"zz", "aa", "mm"} {
		if err := r.Register(&Command{Name: name, Handler: h}); err != nil {
			t.Fatal(err)
		}
	}
	cmds := r.Commands()
	for i := 1; i < len(cmds); i++ {
		if cmds[i-1].Name >= cmds[i].Name {
			t.Fatalf("Commands not sorted: %q before %q", cmds[i-1].Name, cmds[i].Name)
		}
	}
}

func TestArity(t *testing.T) {
	cases := []struct {
		a     Arity
		n     int
		ok    bool
		redis int64
	}{
		{Exactly(2), 2, true, 3},
		{Exactly(2), 1, false, 3},
		{Exactly(2), 3, false, 3},
		{AtLeast(1), 1, true, -2},
		{AtLeast(1), 9, true, -2},
		{AtLeast(1), 0, false, -2},
		{Between(1, 2), 1, true, -2},
		{Between(1, 2), 2, true, -2},
		{Between(1, 2), 3, false, -2},
	}
	for _, c := range cases {
		if got := c.a.Check(c.n); got != c.ok {
			t.Errorf("%+v.Check(%d) = %v, want %v", c.a, c.n, got, c.ok)
		}
		if got := c.a.Redis(); got != c.redis {
			t.Errorf("%+v.Redis() = %d, want %d", c.a, got, c.redis)
		}
	}
}

func TestFlagNames(t *testing.T) {
	got := (FlagWrite | FlagAdmin).Names()
	if len(got) != 2 || got[0] != "write" || got[1] != "admin" {
		t.Fatalf("Names = %v", got)
	}
}

// TestCommandIntrospection pins the satellite requirement: COMMAND is
// generated from the registry, so every registered command — built-in
// and module alike — appears with its live arity and flags.
func TestCommandIntrospection(t *testing.T) {
	s := NewServer()
	_, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	dispatch := func(args ...string) resp.Value { return s.Dispatch(resp.Command(args...)) }

	if got := dispatch("COMMAND", "COUNT"); got.Int != int64(s.Registry().Len()) {
		t.Fatalf("COMMAND COUNT = %+v, want %d", got, s.Registry().Len())
	}
	list := dispatch("COMMAND", "LIST")
	names := map[string]bool{}
	for _, v := range list.Array {
		names[v.Str] = true
	}
	for _, want := range []string{"ping", "g.insert", "g.info", "wal_replay", "command", "g.replicate", "g.replack"} {
		if !names[want] {
			t.Fatalf("COMMAND LIST missing %q (got %v)", want, names)
		}
	}

	info := dispatch("COMMAND", "INFO", "g.insert", "nosuch")
	if len(info.Array) != 2 {
		t.Fatalf("COMMAND INFO = %+v", info)
	}
	ent := info.Array[0]
	if ent.Array[0].Str != "g.insert" || ent.Array[1].Int != 3 {
		t.Fatalf("g.insert entry = %+v", ent)
	}
	flagSet := map[string]bool{}
	for _, f := range ent.Array[2].Array {
		flagSet[f.Str] = true
	}
	if !flagSet["write"] {
		t.Fatalf("g.insert flags = %+v, want write", ent.Array[2])
	}
	if !info.Array[1].Null {
		t.Fatalf("unknown command entry = %+v, want null", info.Array[1])
	}

	// The full listing matches the registry size.
	if full := dispatch("COMMAND"); len(full.Array) != s.Registry().Len() {
		t.Fatalf("COMMAND listed %d entries, want %d", len(full.Array), s.Registry().Len())
	}
	if got := dispatch("COMMAND", "BOGUS"); got.Type != '-' || !strings.HasPrefix(got.Str, "ERR ") {
		t.Fatalf("COMMAND BOGUS = %+v", got)
	}
}

// TestInfoCommand exercises G.INFO: full output, one section, and the
// error on an unknown section.
func TestInfoCommand(t *testing.T) {
	s := NewServer()
	_, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	dispatch := func(args ...string) resp.Value { return s.Dispatch(resp.Command(args...)) }
	dispatch("g.insert", "1", "2")
	dispatch("g.insert", "1", "3")

	full := dispatch("G.INFO")
	for _, want := range []string{"# server", "# commands", "# graph", "# snapshots", "# wal",
		"# replication", "role:leader", "connected_replicas:0",
		"edges:2", "commands_registered:", "enabled:0", "cmdstat_g.insert:calls=2"} {
		if !strings.Contains(full.Str, want) {
			t.Fatalf("G.INFO missing %q in:\n%s", want, full.Str)
		}
	}

	one := dispatch("G.INFO", "graph")
	if !strings.Contains(one.Str, "edges:2") || strings.Contains(one.Str, "# wal") {
		t.Fatalf("G.INFO graph = %q", one.Str)
	}
	if got := dispatch("G.INFO", "bogus"); got.Type != '-' || !strings.HasPrefix(got.Str, "ERR ") {
		t.Fatalf("G.INFO bogus = %+v", got)
	}
}
