package redislike

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the command-latency histogram bucket upper bounds
// in seconds: powers of four from 1µs to ~4s, so one set of buckets
// resolves both a 2µs g.query and a multi-second graph.pagerank.
var latencyBounds = [...]float64{
	1e-06, 4e-06, 1.6e-05, 6.4e-05, 2.56e-04, 1.024e-03,
	4.096e-03, 1.6384e-02, 6.5536e-02, 2.62144e-01, 1.048576, 4.194304,
}

// cmdMetrics meters one command: call/error counters and a cumulative
// latency histogram. All fields are atomics — dispatch records with two
// atomic adds and never takes a lock.
type cmdMetrics struct {
	calls   atomic.Uint64
	errs    atomic.Uint64
	sumNS   atomic.Uint64
	buckets [len(latencyBounds) + 1]atomic.Uint64 // +1: the +Inf bucket
}

func (m *cmdMetrics) observe(d time.Duration, failed bool) {
	m.calls.Add(1)
	if failed {
		m.errs.Add(1)
	}
	m.sumNS.Add(uint64(d.Nanoseconds()))
	secs := d.Seconds()
	i := 0
	for i < len(latencyBounds) && secs > latencyBounds[i] {
		i++
	}
	m.buckets[i].Add(1)
}

// Metrics is the server's observability state: per-command meters plus
// connection-lifecycle counters, exported in Prometheus text format.
// Dispatch never looks a meter up by name: each Command carries its
// *cmdMetrics handle, resolved once at registration (unknown commands
// pool under the pre-resolved "unknown" meter), so the per-command cost
// is a few atomic adds.
type Metrics struct {
	start time.Time
	cmds  sync.Map // command name -> *cmdMetrics

	// unknown meters dispatches of unregistered names, resolved once at
	// construction.
	unknown *cmdMetrics

	connsAccepted atomic.Uint64
	connsRejected atomic.Uint64
	connsActive   atomic.Int64
}

func newMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	m.unknown = m.handle("unknown")
	return m
}

// handle resolves (creating on first use) the meter for name — called
// at registration time, never per command.
func (m *Metrics) handle(name string) *cmdMetrics {
	if v, ok := m.cmds.Load(name); ok {
		return v.(*cmdMetrics)
	}
	v, _ := m.cmds.LoadOrStore(name, &cmdMetrics{})
	return v.(*cmdMetrics)
}

// CommandCalls reports how many times name has been dispatched.
func (m *Metrics) CommandCalls(name string) uint64 {
	if v, ok := m.cmds.Load(name); ok {
		return v.(*cmdMetrics).calls.Load()
	}
	return 0
}

// ConnsActive reports the currently tracked connections.
func (m *Metrics) ConnsActive() int64 { return m.connsActive.Load() }

// MetricsWriter emits Prometheus text-format samples, writing each
// metric's HELP/TYPE header exactly once however many labeled samples
// it gets. Modules receive one in their Metrics hook to export engine
// state under the same scrape.
type MetricsWriter struct {
	w    *bufio.Writer
	seen map[string]bool
	err  error
}

func newMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{w: bufio.NewWriter(w), seen: make(map[string]bool)}
}

func (mw *MetricsWriter) header(name, typ, help string) {
	if mw.seen[name] || mw.err != nil {
		return
	}
	mw.seen[name] = true
	_, err := fmt.Fprintf(mw.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	if mw.err == nil {
		mw.err = err
	}
}

func (mw *MetricsWriter) sample(name, labels string, v float64) {
	if mw.err != nil {
		return
	}
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(mw.w, "%s %s\n", name, formatValue(v))
	} else {
		_, err = fmt.Fprintf(mw.w, "%s{%s} %s\n", name, labels, formatValue(v))
	}
	mw.err = err
}

func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample. labels alternate key, value.
func (mw *MetricsWriter) Counter(name, help string, v float64, labels ...string) {
	mw.header(name, "counter", help)
	mw.sample(name, formatLabels(labels), v)
}

// Gauge emits one gauge sample. labels alternate key, value.
func (mw *MetricsWriter) Gauge(name, help string, v float64, labels ...string) {
	mw.header(name, "gauge", help)
	mw.sample(name, formatLabels(labels), v)
}

func formatLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	out := ""
	for i := 0; i+1 < len(kv); i += 2 {
		if out != "" {
			out += ","
		}
		out += kv[i] + `="` + kv[i+1] + `"`
	}
	return out
}

// Flush drains the buffered output, reporting the first write error.
func (mw *MetricsWriter) Flush() error {
	if err := mw.w.Flush(); mw.err == nil {
		mw.err = err
	}
	return mw.err
}

// writeCommandMetrics emits the per-command counters and histograms.
func (m *Metrics) writeCommandMetrics(mw *MetricsWriter, reg *Registry) {
	mw.header("cg_commands_total", "counter", "Commands dispatched, by command name.")
	mw.header("cg_command_errors_total", "counter", "Commands that returned an error reply, by command name.")
	mw.header("cg_command_seconds", "histogram", "Command service time in seconds, by command name.")
	// Walk the registry (plus the pooled "unknown" meter) in sorted
	// order so scrapes are deterministic.
	names := make([]string, 0, reg.Len()+1)
	for _, c := range reg.Commands() {
		names = append(names, c.Name)
	}
	if _, ok := m.cmds.Load("unknown"); ok {
		names = append(names, "unknown")
	}
	for _, name := range names {
		v, ok := m.cmds.Load(name)
		if !ok {
			continue
		}
		cm := v.(*cmdMetrics)
		label := `cmd="` + name + `"`
		mw.sample("cg_commands_total", label, float64(cm.calls.Load()))
		mw.sample("cg_command_errors_total", label, float64(cm.errs.Load()))
		cum := uint64(0)
		for i, b := range latencyBounds {
			cum += cm.buckets[i].Load()
			mw.sample("cg_command_seconds_bucket",
				label+`,le="`+strconv.FormatFloat(b, 'g', -1, 64)+`"`, float64(cum))
		}
		cum += cm.buckets[len(latencyBounds)].Load()
		mw.sample("cg_command_seconds_bucket", label+`,le="+Inf"`, float64(cum))
		mw.sample("cg_command_seconds_sum", label, float64(cm.sumNS.Load())/1e9)
		mw.sample("cg_command_seconds_count", label, float64(cum))
	}
}

// WriteMetrics renders the full scrape: server gauges, per-command
// meters, then every module's Metrics hook.
func (s *Server) WriteMetrics(w io.Writer) error {
	mw := newMetricsWriter(w)
	m := s.metrics
	mw.Gauge("cg_uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds())
	mw.Gauge("cg_connections_active", "Connections currently tracked by the server.", float64(m.connsActive.Load()))
	mw.Counter("cg_connections_accepted_total", "Connections admitted by the server.", float64(m.connsAccepted.Load()))
	mw.Counter("cg_connections_rejected_total", "Connections refused by admission control (limit or shutdown).", float64(m.connsRejected.Load()))
	mw.Gauge("cg_loading", "1 while a recovery swap is rejecting write commands.", boolGauge(s.loading.Load()))
	mw.Gauge("cg_degraded", "1 while a WAL failure has writes rejected with -MISCONF (reads keep serving).", boolGauge(s.degraded.Load()))
	mw.Gauge("cg_shutting_down", "1 once the server has begun draining.", boolGauge(s.draining()))
	mw.Gauge("cg_commands_registered", "Commands in the registry.", float64(s.reg.Len()))
	m.writeCommandMetrics(mw, s.reg)
	s.mu.RLock()
	mods := append([]*Module(nil), s.modules...)
	s.mu.RUnlock()
	for _, mod := range mods {
		if mod.Metrics != nil {
			mod.Metrics(mw)
		}
	}
	return mw.Flush()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// MetricsHandler serves the Prometheus text exposition of WriteMetrics.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			s.log.Warn("metrics scrape failed", "err", err)
		}
	})
}

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/ on the metrics listener. Call it before ListenMetrics;
// the handlers expose heap, CPU and goroutine profiles of the serving
// plane, so keep the listener on a private interface.
func (s *Server) EnablePprof() { s.pprofOn.Store(true) }

// ListenMetrics starts the observability HTTP listener on addr, serving
// GET /metrics (Prometheus text format), GET /healthz (liveness: 200
// while the process serves, 503 once draining — a degraded server is
// alive and says so in the body), GET /readyz (readiness: 503 while
// loading, degraded, or a module readiness check fails — the signal a
// load balancer should route on) and — after EnablePprof — the
// /debug/pprof/ profile endpoints. It returns the bound address; the
// listener is closed during Shutdown.
func (s *Server) ListenMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		if s.Degraded() {
			fmt.Fprintln(w, "ok (degraded: "+s.DegradedReason()+")")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Ready(); err != nil {
			http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if s.pprofOn.Load() {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	s.connMu.Lock()
	s.metricsSrv, s.metricsAddr = srv, ln.Addr().String()
	s.connMu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Warn("metrics listener failed", "err", err)
		}
	}()
	return ln.Addr().String(), nil
}
