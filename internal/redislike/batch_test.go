package redislike

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"testing"

	"cuckoograph/internal/resp"
)

// graphServer boots a server with the CuckooGraph module and returns a
// connected client plus a one-shot request helper.
func graphServer(t *testing.T) (*GraphModule, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	s := NewServer()
	gm, mod := NewGraphModule()
	if err := s.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return gm, bufio.NewReader(conn), bufio.NewWriter(conn)
}

func roundTrip(t *testing.T, r *bufio.Reader, w *bufio.Writer, args ...string) resp.Value {
	t.Helper()
	if err := resp.Write(w, resp.Command(args...)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	v, err := resp.Read(r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMInsertMDel drives the variadic batch commands over TCP.
func TestMInsertMDel(t *testing.T) {
	gm, r, w := graphServer(t)

	if got := roundTrip(t, r, w, "g.minsert", "1", "2", "1", "3", "1", "2", "4", "5"); got.Int != 3 {
		t.Fatalf("g.minsert = %+v, want 3 new edges (one duplicate)", got)
	}
	if gm.Graph().NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", gm.Graph().NumEdges())
	}
	if got := roundTrip(t, r, w, "g.mdel", "1", "2", "9", "9"); got.Int != 1 {
		t.Fatalf("g.mdel = %+v, want 1 removed", got)
	}
	if got := roundTrip(t, r, w, "g.query", "1", "3"); got.Int != 1 {
		t.Fatalf("g.query(1,3) = %+v", got)
	}
	if got := roundTrip(t, r, w, "g.query", "1", "2"); got.Int != 0 {
		t.Fatalf("g.query(1,2) after mdel = %+v", got)
	}

	// Argument validation.
	if got := roundTrip(t, r, w, "g.minsert"); got.Type != '-' {
		t.Fatalf("empty g.minsert = %+v, want error", got)
	}
	if got := roundTrip(t, r, w, "g.minsert", "1"); got.Type != '-' {
		t.Fatalf("odd-arity g.minsert = %+v, want error", got)
	}
	if got := roundTrip(t, r, w, "g.mdel", "x", "2"); got.Type != '-' {
		t.Fatalf("bad id g.mdel = %+v, want error", got)
	}
}

// TestDegreeAndNodes covers the read commands the wire protocol never
// exposed before.
func TestDegreeAndNodes(t *testing.T) {
	_, r, w := graphServer(t)
	roundTrip(t, r, w, "g.minsert", "1", "2", "1", "3", "1", "4", "7", "8")

	if got := roundTrip(t, r, w, "g.degree", "1"); got.Int != 3 {
		t.Fatalf("g.degree 1 = %+v, want 3", got)
	}
	if got := roundTrip(t, r, w, "g.degree", "99"); got.Int != 0 {
		t.Fatalf("g.degree 99 = %+v, want 0", got)
	}
	got := roundTrip(t, r, w, "g.nodes")
	if got.Type != '*' {
		t.Fatalf("g.nodes = %+v, want array", got)
	}
	var ids []string
	for _, v := range got.Array {
		ids = append(ids, v.Str)
	}
	sort.Strings(ids)
	if len(ids) != 2 || ids[0] != "1" || ids[1] != "7" {
		t.Fatalf("g.nodes = %v, want [1 7]", ids)
	}
	if got := roundTrip(t, r, w, "g.degree"); got.Type != '-' {
		t.Fatalf("g.degree with no args = %+v, want error", got)
	}
	if got := roundTrip(t, r, w, "g.nodes", "extra"); got.Type != '-' {
		t.Fatalf("g.nodes with args = %+v, want error", got)
	}
}

// TestPipelining sends a burst of commands before reading any reply:
// the server must answer all of them, in order, without waiting for
// per-command flushes.
func TestPipelining(t *testing.T) {
	gm, r, w := graphServer(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := resp.Write(w, resp.Command("g.insert", strconv.Itoa(i), strconv.Itoa(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := resp.Read(r)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if v.Type != ':' || v.Int != 1 {
			t.Fatalf("reply %d = %+v, want :1", i, v)
		}
	}
	if gm.Graph().NumEdges() != n {
		t.Fatalf("NumEdges = %d, want %d", gm.Graph().NumEdges(), n)
	}

	// A pipelined mixed burst keeps per-command reply order.
	cmds := [][]string{
		{"g.minsert", "1000", "1001", "1000", "1002"},
		{"g.query", "1000", "1001"},
		{"g.mdel", "1000", "1001", "1000", "1001"},
		{"g.degree", "1000"},
	}
	for _, c := range cmds {
		if err := resp.Write(w, resp.Command(c...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 1, 1, 1}
	for i, wantV := range want {
		v, err := resp.Read(r)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int != wantV {
			t.Fatalf("pipelined reply %d (%v) = %+v, want %d", i, cmds[i], v, wantV)
		}
	}
}

// TestMInsertAOFRecoverable: batch-inserted edges must round-trip the
// module's RDB hooks like single-op ones.
func TestMInsertRDBRoundTrip(t *testing.T) {
	gm, r, w := graphServer(t)
	var args []string
	args = append(args, "g.minsert")
	for i := 0; i < 100; i++ {
		args = append(args, fmt.Sprint(i), fmt.Sprint(i+1))
	}
	roundTrip(t, r, w, args...)
	data := gm.saveRDB()
	gm2, _ := NewGraphModule()
	if err := gm2.loadRDB(data); err != nil {
		t.Fatal(err)
	}
	if gm2.Graph().NumEdges() != gm.Graph().NumEdges() {
		t.Fatalf("restored %d edges, want %d", gm2.Graph().NumEdges(), gm.Graph().NumEdges())
	}
}
