package redislike

import (
	"fmt"
	"testing"

	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
)

// TestAnalyticsCommandsUseCSRIndex pins the end-to-end wiring: the
// store behind graph.bfs / graph.pagerank is a frozen view satisfying
// graphstore.Indexed, and repeated commands against the same retained
// epoch reuse one memoized CSR index instead of recompiling.
func TestAnalyticsCommandsUseCSRIndex(t *testing.T) {
	srv, gm := newGraphServer(t)
	dispatch(srv, "g.minsert", "1", "2", "2", "3", "3", "1", "3", "4")
	epoch := mustInt(t, dispatch(srv, "g.snapshot"))

	s, cleanup, err := gm.analyticsStore(fmt.Sprint(epoch))
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := s.(graphstore.Indexed)
	if !ok {
		t.Fatalf("analytics store is %T, not graphstore.Indexed", s)
	}
	first := ix.CSR()
	if first.NumEdges() != 4 {
		t.Fatalf("CSR has %d edges, want 4", first.NumEdges())
	}
	cleanup()

	// A second command at the same epoch resolves the same retained
	// view, so the index must come back memoized, not recompiled.
	s2, cleanup2, err := gm.analyticsStore(fmt.Sprint(epoch))
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup2()
	if s2.(graphstore.Indexed).CSR() != first {
		t.Fatal("epoch-tagged analytics command recompiled the CSR index")
	}

	// The ephemeral no-epoch path snapshots fresh but is indexed too.
	s3, cleanup3, err := gm.analyticsStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup3()
	if _, ok := s3.(*sharded.View); !ok {
		t.Fatalf("ephemeral analytics store is %T, want *sharded.View", s3)
	}
	if _, ok := s3.(graphstore.Indexed); !ok {
		t.Fatal("ephemeral analytics store lost the Indexed capability")
	}

	// And the public command output over the indexed path is correct:
	// BFS from 1 over the 1→2→3→{1,4} cycle reaches all four nodes.
	if got := bfsNodes(t, dispatch(srv, "graph.bfs", "1", fmt.Sprint(epoch))); len(got) != 4 {
		t.Fatalf("graph.bfs over CSR reached %v, want 4 nodes", got)
	}
}
