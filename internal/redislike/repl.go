package redislike

// Leader-side replication: WAL shipping over the RESP connection.
//
// A follower sends `g.replicate <segment> <offset>` — its resume
// position, or `0 0` to bootstrap — and the handler hijacks the
// connection into a push stream. When the position is servable from
// the retained log the leader streams raw CRC-framed WAL chunks; when
// it is not (zero, compacted away, or diverged) the leader first
// pushes a full checkpoint snapshot cut against a segment rotation,
// then streams the log from the cut. Push frames, each a RESP array of
// bulk strings:
//
//	["snap",   <cutSegment>, <snapshotBytes>]  resume at (cut, data start)
//	["frames", <segment>, <offset>, <chunk>]   raw WAL frames at that position
//	["ping",   <tailSegment>, <tailOffset>]    leader tail; keepalive when idle
//
// The follower acknowledges applied positions by writing
// `g.replack <segment> <offset>` command arrays back on the same
// connection; a dedicated goroutine reads them (on its own buffered
// reader — the serving-plane Conn must not be shared across
// goroutines) and advances the link's retention Pin, which is what
// stops checkpoints from deleting any segment at or above a connected
// follower's acked offset.

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cuckoograph/internal/resp"
	"cuckoograph/internal/wal"
)

// Push frame kinds.
const (
	replKindSnap   = "snap"
	replKindFrames = "frames"
	replKindPing   = "ping"
	// replKindErr is the terminal frame: the leader is ending the stream
	// deliberately (log failure, snapshot failure, shutdown) and says
	// why, so a follower can distinguish a leader-side failure from a
	// network drop.
	replKindErr = "err"
)

const (
	// replPollInterval is how long a caught-up stream sleeps before
	// re-checking the tail.
	replPollInterval = 20 * time.Millisecond
	// replPingEvery is the idle keepalive cadence; each ping also
	// refreshes the follower's view of the leader tail (lag math).
	replPingEvery = time.Second
)

// replLink is one connected follower on the leader. The stream
// goroutine writes sent*, the ack goroutine writes ack*, and G.INFO /
// metrics read everything — hence atomics.
type replLink struct {
	addr  string
	since time.Time
	pin   *wal.Pin

	ackSeg    atomic.Uint64
	ackOff    atomic.Uint64
	sentSeg   atomic.Uint64
	sentOff   atomic.Uint64
	sentBytes atomic.Uint64
	snapshots atomic.Uint64
}

// replack is only meaningful as traffic ON an established replication
// stream, where the stream's ack goroutine consumes it; reaching
// dispatch means it was sent on a plain connection.
func (gm *GraphModule) replack(ctx *Ctx) error {
	return &BadArgError{Cmd: ctx.Name, Detail: "only valid on a replication stream (see g.replicate)"}
}

// replicate validates the requested position and hands the connection
// to the streaming goroutine. Errors before the hijack are ordinary
// command errors; after it the connection belongs to the stream and
// terminates with it.
func (gm *GraphModule) replicate(ctx *Ctx) error {
	seg, ok := parseUint64(ctx.Arg(0))
	if !ok {
		return &BadArgError{Cmd: ctx.Name, Detail: "bad segment " + strconv.Quote(string(ctx.Arg(0)))}
	}
	off, ok := parseUint64(ctx.Arg(1))
	if !ok {
		return &BadArgError{Cmd: ctx.Name, Detail: "bad offset " + strconv.Quote(string(ctx.Arg(1)))}
	}
	w := gm.walPtr.Load()
	if w == nil {
		return &WALError{Cmd: ctx.Name, Err: errors.New("replication requires an enabled wal (start the leader with -wal-dir)")}
	}
	rc := ctx.Hijack()
	if rc == nil {
		return &BadArgError{Cmd: ctx.Name, Detail: "replication requires a network connection"}
	}
	if rc.Buffered() > 0 {
		// A replication stream owns the whole connection; pipelined
		// bytes behind the command would be silently eaten. Hijacked is
		// already set, so the serve loop drops the connection — exactly
		// right for a protocol violation mid-stream setup.
		gm.log.Warn("replication rejected: pipelined bytes after g.replicate", "remote", rc.RemoteAddr())
		return nil
	}
	if err := rc.Flush(); err != nil {
		return nil
	}
	gm.streamTo(ctx.Server(), rc, w, wal.Position{Seg: seg, Off: int64(off)})
	return nil
}

// streamTo runs the push stream until the follower drops, the server
// drains, or the log fails under it. It blocks the connection's serve
// goroutine — that goroutine IS the stream.
func (gm *GraphModule) streamTo(srv *Server, rc *resp.Conn, w *wal.WAL, pos wal.Position) {
	nc := rc.NetConn()
	link := &replLink{addr: rc.RemoteAddr(), since: time.Now(), pin: w.Pin(pos.Seg)}
	link.ackSeg.Store(pos.Seg)
	link.ackOff.Store(uint64(pos.Off))
	gm.addLink(link)
	defer gm.removeLink(link)
	gm.log.Info("replica connected", "remote", link.addr, "segment", pos.Seg, "offset", pos.Off)
	defer gm.log.Info("replica disconnected", "remote", link.addr)

	// Ack reader: g.replack frames arrive on the same connection, read
	// here on a private bufio.Reader (never rc — its serving-plane
	// state is not goroutine-safe). Any read error or protocol
	// violation ends the stream.
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc.SetReadDeadline(time.Time{}) // clear any armed command deadline
		br := bufio.NewReader(nc)
		for {
			v, err := resp.Read(br)
			if err != nil {
				return
			}
			aseg, aoff, ok := parseReplack(v)
			if !ok {
				gm.log.Warn("replication stream: unexpected frame from follower", "remote", link.addr)
				return
			}
			link.ackSeg.Store(aseg)
			link.ackOff.Store(aoff)
			link.pin.Move(aseg)
		}
	}()

	var rw resp.Writer
	var vecs net.Buffers
	flush := func() error {
		if srv.cfg.WriteTimeout > 0 {
			nc.SetWriteDeadline(time.Now().Add(srv.cfg.WriteTimeout))
		}
		var err error
		if rw.HasRefs() {
			vecs = rw.Vectors(vecs[:0])
			v := vecs
			_, err = v.WriteTo(nc)
			for i := range vecs {
				vecs[i] = nil
			}
		} else {
			_, err = nc.Write(rw.Bytes())
		}
		rw.Reset()
		return err
	}
	// sendErr pushes the terminal ["err", msg] frame. Best-effort: the
	// stream is over either way, the frame only tells the follower the
	// leader ended it on purpose and why.
	sendErr := func(msg string) {
		rw.Reset()
		rw.AppendArrayHeader(2)
		rw.AppendBulkString(replKindErr)
		rw.AppendBulkString(msg)
		_ = flush()
	}

	rd, err := w.OpenReader(pos)
	if errors.Is(err, wal.ErrCompacted) {
		// Not servable incrementally: push a full snapshot cut against
		// a rotation, then stream from the cut. The link's pin (which
		// floors retention at the follower's old position, or 0 on
		// bootstrap) is moved up only after the cut exists.
		var buf bytes.Buffer
		var cut uint64
		g := gm.Graph()
		if cerr := g.Checkpoint(&buf, func() error {
			var rerr error
			cut, rerr = w.Rotate()
			return rerr
		}); cerr != nil {
			gm.log.Error("replication snapshot failed", "remote", link.addr, "err", cerr)
			sendErr("bootstrap snapshot failed: " + cerr.Error())
			return
		}
		pos = wal.Position{Seg: cut, Off: wal.SegmentDataStart}
		link.pin.Move(cut)
		link.ackSeg.Store(cut)
		link.ackOff.Store(uint64(pos.Off))
		link.snapshots.Add(1)
		rw.AppendArrayHeader(3)
		rw.AppendBulkString(replKindSnap)
		rw.AppendBulkUint(cut)
		rw.AppendBulk(buf.Bytes())
		if err := flush(); err != nil {
			return
		}
		link.sentBytes.Add(uint64(buf.Len()))
		gm.log.Info("replication snapshot pushed", "remote", link.addr, "bytes", buf.Len(), "cut_segment", cut)
		rd, err = w.OpenReader(pos)
	}
	if err != nil {
		gm.log.Error("replication stream failed to open log", "remote", link.addr, "err", err)
		sendErr("log open failed: " + err.Error())
		return
	}
	defer rd.Close()

	lastPing := time.Time{}
	for {
		if srv.draining() {
			sendErr("leader shutting down")
			return
		}
		select {
		case <-done:
			return
		default:
		}
		chunk, start, err := rd.Next()
		switch {
		case err == nil:
			rw.AppendArrayHeader(4)
			rw.AppendBulkString(replKindFrames)
			rw.AppendBulkUint(start.Seg)
			rw.AppendBulkUint(uint64(start.Off))
			rw.AppendBulk(chunk)
			if err := flush(); err != nil {
				return
			}
			end := rd.Pos()
			link.sentSeg.Store(end.Seg)
			link.sentOff.Store(uint64(end.Off))
			link.sentBytes.Add(uint64(len(chunk)))
		case errors.Is(err, wal.ErrNoData):
			if time.Since(lastPing) >= replPingEvery {
				tail := w.TailPosition()
				rw.AppendArrayHeader(3)
				rw.AppendBulkString(replKindPing)
				rw.AppendBulkUint(tail.Seg)
				rw.AppendBulkUint(uint64(tail.Off))
				if err := flush(); err != nil {
					return
				}
				lastPing = time.Now()
			}
			select {
			case <-done:
				return
			case <-time.After(replPollInterval):
			}
		default:
			// A WAL read failure under the stream: tell the follower the
			// log (not the network) broke, then end cleanly.
			gm.log.Warn("replication stream failed", "remote", link.addr, "err", err)
			sendErr("log read failed: " + err.Error())
			return
		}
	}
}

// parseReplack decodes a follower's ack command array.
func parseReplack(v resp.Value) (seg, off uint64, ok bool) {
	if v.Type != '*' || len(v.Array) != 3 || !strings.EqualFold(v.Array[0].Str, "g.replack") {
		return 0, 0, false
	}
	seg, err := strconv.ParseUint(v.Array[1].Str, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	off, err = strconv.ParseUint(v.Array[2].Str, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return seg, off, true
}

func (gm *GraphModule) addLink(l *replLink) {
	gm.replMu.Lock()
	if gm.links == nil {
		gm.links = make(map[*replLink]struct{})
	}
	gm.links[l] = struct{}{}
	gm.replMu.Unlock()
}

func (gm *GraphModule) removeLink(l *replLink) {
	gm.replMu.Lock()
	delete(gm.links, l)
	gm.replMu.Unlock()
	l.pin.Release()
}

// replLinks snapshots the connected follower links, connection order
// unspecified.
func (gm *GraphModule) replLinks() []*replLink {
	gm.replMu.Lock()
	defer gm.replMu.Unlock()
	out := make([]*replLink, 0, len(gm.links))
	for l := range gm.links {
		out = append(out, l)
	}
	return out
}
