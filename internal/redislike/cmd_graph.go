package redislike

import (
	"strconv"

	"cuckoograph/internal/core"
	"cuckoograph/internal/resp"
)

// Data-plane command handlers. Every handler here is registered through
// dataCmd, so ctx.Graph is the current graph, pinned against a restore
// swap for the duration of the call; arity is already validated against
// the registration, so handlers only check argument *content*.

// parseNode decodes one node-id argument, wrapping failures in the
// command's typed bad-argument error.
func parseNode(ctx *Ctx, arg string) (uint64, error) {
	n, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		return 0, &BadArgError{Cmd: ctx.Name, Detail: "bad node id " + strconv.Quote(arg)}
	}
	return n, nil
}

// parseEdgeArgs decodes the ⟨u,v⟩ pair of a two-argument edge command.
func parseEdgeArgs(ctx *Ctx) (u, v uint64, err error) {
	if u, err = parseNode(ctx, ctx.Args[0]); err != nil {
		return 0, 0, err
	}
	if v, err = parseNode(ctx, ctx.Args[1]); err != nil {
		return 0, 0, err
	}
	return u, v, nil
}

// walCheck surfaces a durability failure after a write: the mutation is
// in memory but not durably logged, and a client that sees this error
// must not assume the write survives a crash.
func walCheck(ctx *Ctx) error {
	if err := ctx.Graph.LogErr(); err != nil {
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	return nil
}

func (gm *GraphModule) insert(ctx *Ctx) (resp.Value, error) {
	u, v, err := parseEdgeArgs(ctx)
	if err != nil {
		return resp.Value{}, err
	}
	added := ctx.Graph.InsertEdge(u, v)
	if err := walCheck(ctx); err != nil {
		return resp.Value{}, err
	}
	if added {
		return resp.Integer(1), nil
	}
	return resp.Integer(0), nil
}

func (gm *GraphModule) del(ctx *Ctx) (resp.Value, error) {
	u, v, err := parseEdgeArgs(ctx)
	if err != nil {
		return resp.Value{}, err
	}
	deleted := ctx.Graph.DeleteEdge(u, v)
	if err := walCheck(ctx); err != nil {
		return resp.Value{}, err
	}
	if deleted {
		return resp.Integer(1), nil
	}
	return resp.Integer(0), nil
}

// parseBatchArgs decodes ⟨u,v⟩ pairs from a variadic command's
// arguments into a mutation batch of the given kind.
func parseBatchArgs(ctx *Ctx, kind core.OpKind) (core.Batch, error) {
	if len(ctx.Args) == 0 || len(ctx.Args)%2 != 0 {
		return nil, &BadArgError{Cmd: ctx.Name, Detail: "expected <u> <v> [<u> <v> ...]"}
	}
	b := make(core.Batch, 0, len(ctx.Args)/2)
	for i := 0; i < len(ctx.Args); i += 2 {
		u, err := parseNode(ctx, ctx.Args[i])
		if err != nil {
			return nil, err
		}
		v, err := parseNode(ctx, ctx.Args[i+1])
		if err != nil {
			return nil, err
		}
		b = append(b, core.Op{Kind: kind, U: u, V: v})
	}
	return b, nil
}

// minsert is the batched insert: G.MINSERT u1 v1 [u2 v2 ...] applies
// every pair through the shard-parallel batch path and replies with the
// number of newly inserted edges.
func (gm *GraphModule) minsert(ctx *Ctx) (resp.Value, error) {
	b, err := parseBatchArgs(ctx, core.OpInsert)
	if err != nil {
		return resp.Value{}, err
	}
	res := ctx.Graph.ApplyBatch(b)
	if err := walCheck(ctx); err != nil {
		return resp.Value{}, err
	}
	return resp.Integer(int64(res.Inserted)), nil
}

// mdel is the batched delete: G.MDEL u1 v1 [u2 v2 ...] replies with the
// number of edges actually removed.
func (gm *GraphModule) mdel(ctx *Ctx) (resp.Value, error) {
	b, err := parseBatchArgs(ctx, core.OpDelete)
	if err != nil {
		return resp.Value{}, err
	}
	res := ctx.Graph.ApplyBatch(b)
	if err := walCheck(ctx); err != nil {
		return resp.Value{}, err
	}
	return resp.Integer(int64(res.Deleted)), nil
}

func (gm *GraphModule) query(ctx *Ctx) (resp.Value, error) {
	u, v, err := parseEdgeArgs(ctx)
	if err != nil {
		return resp.Value{}, err
	}
	if ctx.Graph.HasEdge(u, v) {
		return resp.Integer(1), nil
	}
	return resp.Integer(0), nil
}

func (gm *GraphModule) getNeighbors(ctx *Ctx) (resp.Value, error) {
	u, err := parseNode(ctx, ctx.Args[0])
	if err != nil {
		return resp.Value{}, err
	}
	var out []resp.Value
	ctx.Graph.ForEachSuccessor(u, func(v uint64) bool {
		out = append(out, resp.Bulk(strconv.FormatUint(v, 10)))
		return true
	})
	return resp.Array(out...), nil
}

// degree replies with u's out-degree — the engine has always known it,
// the wire protocol just never asked.
func (gm *GraphModule) degree(ctx *Ctx) (resp.Value, error) {
	u, err := parseNode(ctx, ctx.Args[0])
	if err != nil {
		return resp.Value{}, err
	}
	return resp.Integer(int64(ctx.Graph.Degree(u))), nil
}

// nodes replies with every source node (nodes with ≥1 out-edge).
func (gm *GraphModule) nodes(ctx *Ctx) (resp.Value, error) {
	var out []resp.Value
	ctx.Graph.ForEachNode(func(u uint64) bool {
		out = append(out, resp.Bulk(strconv.FormatUint(u, 10)))
		return true
	})
	return resp.Array(out...), nil
}
