package redislike

import (
	"strconv"

	"cuckoograph/internal/core"
)

// Data-plane command handlers. Every handler here is registered through
// dataCmd, so ctx.Graph is the current graph, pinned against a restore
// swap for the duration of the call; arity is already validated against
// the registration, so handlers only check argument *content*. These
// are the serving plane's hot commands: arguments are parsed straight
// from the connection's read-buffer views and replies are streamed, so
// a warm command cycle allocates nothing.

// parseNode decodes one node-id argument, wrapping failures in the
// command's typed bad-argument error.
func parseNode(ctx *Ctx, arg []byte) (uint64, error) {
	n, ok := parseUint64(arg)
	if !ok {
		return 0, &BadArgError{Cmd: ctx.Name, Detail: "bad node id " + strconv.Quote(string(arg))}
	}
	return n, nil
}

// parseEdgeArgs decodes the ⟨u,v⟩ pair of a two-argument edge command.
func parseEdgeArgs(ctx *Ctx) (u, v uint64, err error) {
	if u, err = parseNode(ctx, ctx.Args[0]); err != nil {
		return 0, 0, err
	}
	if v, err = parseNode(ctx, ctx.Args[1]); err != nil {
		return 0, 0, err
	}
	return u, v, nil
}

// walCheck surfaces a durability failure after a write: the mutation is
// in memory but not durably logged, and a client that sees this error
// must not assume the write survives a crash. Observing the failure
// also triggers the configured storage-failure policy (degrade to
// read-only serving, or panic) — so the -WALERR the triggering client
// sees is the last write ack the server hands out until wal_resume.
func (gm *GraphModule) walCheck(ctx *Ctx) error {
	if err := ctx.Graph.LogErr(); err != nil {
		gm.walFailed(err)
		return &WALError{Cmd: ctx.Name, Err: err}
	}
	return nil
}

func (gm *GraphModule) insert(ctx *Ctx) error {
	u, v, err := parseEdgeArgs(ctx)
	if err != nil {
		return err
	}
	added := ctx.Graph.InsertEdge(u, v)
	if err := gm.walCheck(ctx); err != nil {
		return err
	}
	ctx.ReplyBool(added)
	return nil
}

func (gm *GraphModule) del(ctx *Ctx) error {
	u, v, err := parseEdgeArgs(ctx)
	if err != nil {
		return err
	}
	deleted := ctx.Graph.DeleteEdge(u, v)
	if err := gm.walCheck(ctx); err != nil {
		return err
	}
	ctx.ReplyBool(deleted)
	return nil
}

// parseBatchArgs decodes ⟨u,v⟩ pairs from a variadic command's
// arguments into a mutation batch of the given kind, reusing the
// connection's batch scratch.
func parseBatchArgs(ctx *Ctx, kind core.OpKind) (core.Batch, error) {
	if len(ctx.Args) == 0 || len(ctx.Args)%2 != 0 {
		return nil, &BadArgError{Cmd: ctx.Name, Detail: "expected <u> <v> [<u> <v> ...]"}
	}
	b := ctx.batch[:0]
	for i := 0; i < len(ctx.Args); i += 2 {
		u, err := parseNode(ctx, ctx.Args[i])
		if err != nil {
			return nil, err
		}
		v, err := parseNode(ctx, ctx.Args[i+1])
		if err != nil {
			return nil, err
		}
		b = append(b, core.Op{Kind: kind, U: u, V: v})
	}
	ctx.batch = b
	return b, nil
}

// minsert is the batched insert: G.MINSERT u1 v1 [u2 v2 ...] applies
// every pair through the shard-parallel batch path and replies with the
// number of newly inserted edges.
func (gm *GraphModule) minsert(ctx *Ctx) error {
	b, err := parseBatchArgs(ctx, core.OpInsert)
	if err != nil {
		return err
	}
	res := ctx.Graph.ApplyBatch(b)
	if err := gm.walCheck(ctx); err != nil {
		return err
	}
	ctx.ReplyInt(int64(res.Inserted))
	return nil
}

// mdel is the batched delete: G.MDEL u1 v1 [u2 v2 ...] replies with the
// number of edges actually removed.
func (gm *GraphModule) mdel(ctx *Ctx) error {
	b, err := parseBatchArgs(ctx, core.OpDelete)
	if err != nil {
		return err
	}
	res := ctx.Graph.ApplyBatch(b)
	if err := gm.walCheck(ctx); err != nil {
		return err
	}
	ctx.ReplyInt(int64(res.Deleted))
	return nil
}

func (gm *GraphModule) query(ctx *Ctx) error {
	u, v, err := parseEdgeArgs(ctx)
	if err != nil {
		return err
	}
	ctx.ReplyBool(ctx.Graph.HasEdge(u, v))
	return nil
}

func (gm *GraphModule) getNeighbors(ctx *Ctx) error {
	u, err := parseNode(ctx, ctx.Args[0])
	if err != nil {
		return err
	}
	// Collect before writing the array header: Degree and the scan can
	// disagree under concurrent writers, and a header is a promise.
	ctx.ids = ctx.Graph.AppendSuccessors(u, ctx.ids[:0])
	ctx.ReplyArrayHeader(len(ctx.ids))
	for _, v := range ctx.ids {
		ctx.ReplyBulkUint(v)
	}
	return nil
}

// degree replies with u's out-degree — the engine has always known it,
// the wire protocol just never asked.
func (gm *GraphModule) degree(ctx *Ctx) error {
	u, err := parseNode(ctx, ctx.Args[0])
	if err != nil {
		return err
	}
	ctx.ReplyInt(int64(ctx.Graph.Degree(u)))
	return nil
}

// nodes replies with every source node (nodes with ≥1 out-edge).
func (gm *GraphModule) nodes(ctx *Ctx) error {
	ctx.ids = ctx.Graph.AppendNodes(ctx.ids[:0])
	ctx.ReplyArrayHeader(len(ctx.ids))
	for _, u := range ctx.ids {
		ctx.ReplyBulkUint(u)
	}
	return nil
}
