package redislike

import (
	"math"

	"cuckoograph/internal/core"
	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
)

// Ctx carries one command invocation to its handler: the resolved name,
// the arguments (name excluded, arity already validated against the
// registration), the graph handle for data-plane commands, the
// originating connection's state, and the reply writer. One Ctx lives
// per connection and is reused across every command it serves — the
// scratch fields below are what make the hot data-plane commands
// allocation-free.
type Ctx struct {
	// Name is the resolved (lowercased) command name.
	Name string
	// Args are the command's arguments as byte-slice views into the
	// connection's read buffer — valid only for the handler's duration.
	// Handlers that retain an argument must copy it.
	Args [][]byte

	// Graph is the current graph, resolved under the module's swap lock
	// for the duration of the handler. It is set only for commands
	// registered through the graph module's data-plane wrapper; control-
	// plane handlers coordinate their own graph access and swap locking.
	Graph *sharded.Graph

	// Conn is the per-connection state, nil when the command was
	// dispatched in-process (tests, benchmarks, AOF replay).
	Conn *ConnState

	srv *Server
	w   *resp.Writer

	// rc is the originating resp connection, nil for in-process
	// dispatch; hijacked marks that the handler took the connection
	// over (see Hijack) and the serve loop must not touch it again.
	rc       *resp.Conn
	hijacked bool

	// Per-connection scratch, reused across commands:
	nameBuf []byte     // lowercased command name
	batch   core.Batch // decoded G.MINSERT/G.MDEL pairs
	ids     []uint64   // collected node ids (G.GETNEIGHBORS, G.NODES)
}

// Server returns the server dispatching the command.
func (c *Ctx) Server() *Server { return c.srv }

// Hijack hands the raw connection to the handler for the rest of its
// life — the replication stream's entry point. It returns nil for
// in-process dispatch. After Hijack the serve loop neither reads nor
// writes the connection again: the handler owns both directions and
// the connection closes when the handler returns.
func (c *Ctx) Hijack() *resp.Conn {
	if c.rc == nil {
		return nil
	}
	c.hijacked = true
	return c.rc
}

// Arg returns argument i as a byte view (see Args for its lifetime).
func (c *Ctx) Arg(i int) []byte { return c.Args[i] }

// ArgString returns argument i as a string copy — for cold paths that
// need one; the hot path works on the byte views directly.
func (c *Ctx) ArgString(i int) string { return string(c.Args[i]) }

// The Reply methods stream the handler's reply into the connection's
// writer. A handler must either write exactly one reply (an array
// header plus its elements counts as one) or return an error; dispatch
// rewinds partial output on error so the wire sees a single reply
// either way.

// ReplySimple writes a "+" simple-string reply.
func (c *Ctx) ReplySimple(s string) { c.w.AppendSimple(s) }

// ReplyInt writes a ":" integer reply.
func (c *Ctx) ReplyInt(n int64) { c.w.AppendInt(n) }

// ReplyBool writes the conventional :1 / :0 integer reply.
func (c *Ctx) ReplyBool(b bool) {
	if b {
		c.w.AppendInt(1)
	} else {
		c.w.AppendInt(0)
	}
}

// ReplyBulk writes a "$" bulk reply from bytes.
func (c *Ctx) ReplyBulk(b []byte) { c.w.AppendBulk(b) }

// ReplyBulkString writes a "$" bulk reply from a string.
func (c *Ctx) ReplyBulkString(s string) { c.w.AppendBulkString(s) }

// ReplyBulkUint writes an unsigned integer as a decimal bulk reply —
// the shape node-id lists use on the wire.
func (c *Ctx) ReplyBulkUint(n uint64) { c.w.AppendBulkUint(n) }

// ReplyNullBulk writes the RESP2 null bulk reply ("$-1").
func (c *Ctx) ReplyNullBulk() { c.w.AppendNullBulk() }

// ReplyArrayHeader opens an n-element array reply; the handler must
// follow it with exactly n replies.
func (c *Ctx) ReplyArrayHeader(n int) { c.w.AppendArrayHeader(n) }

// ReplyValue writes a boxed Value tree — the bridge for cold
// introspection replies (COMMAND, G.INFO) that are assembled rather
// than streamed.
func (c *Ctx) ReplyValue(v resp.Value) { c.w.AppendValue(v) }

// parseUint64 decodes a decimal uint64 from bytes without the string
// copy strconv.ParseUint would force on the hot path. It accepts
// exactly what ParseUint(s, 10, 64) does: one or more digits, no sign.
func parseUint64(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (math.MaxUint64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// appendLower lowercases ASCII src into dst — command-name folding
// without a strings.ToLower allocation.
func appendLower(dst, src []byte) []byte {
	for _, c := range src {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}
