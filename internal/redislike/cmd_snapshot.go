package redislike

import (
	"fmt"
	"sort"
	"strconv"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
)

// Snapshot-ring and analytics command handlers. These are control-plane
// commands: they are NOT registered through dataCmd and coordinate
// their own graph access and locking (viewMu, short swapMu reads).

// snapshot takes a frozen view of the graph, retains it in the
// time-travel ring (evicting the oldest past the bound) and replies
// with its epoch tag. The ring only ever holds views of the current
// graph: if a restore swaps the graph between taking the view and
// ringing it, the stale view is dropped and the snapshot retried —
// otherwise the ring would pin a dead graph's CoW state and, since a
// fresh graph's epochs restart at 1, could serve pre-restore data
// under a colliding epoch tag.
func (gm *GraphModule) snapshot(ctx *Ctx) error {
	for {
		var g *sharded.Graph
		var v *sharded.View
		gm.withGraph(func(cur *sharded.Graph) {
			g = cur
			v = cur.Snapshot()
		})
		gm.viewMu.Lock()
		if gm.Graph() != g {
			gm.viewMu.Unlock()
			v.Release()
			continue
		}
		gm.views = append(gm.views, ringEntry{g: g, v: v})
		for len(gm.views) > gm.viewCap {
			gm.views[0].v.Release()
			gm.views = gm.views[1:]
		}
		gm.viewMu.Unlock()
		ctx.ReplyInt(int64(v.Epoch()))
		return nil
	}
}

// snapshots lists the retained epochs of the current graph, oldest
// first (stale entries awaiting releaseStaleViews are invisible).
func (gm *GraphModule) snapshots(ctx *Ctx) error {
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	epochs := ctx.ids[:0]
	for _, e := range gm.views {
		if e.g == cur {
			epochs = append(epochs, e.v.Epoch())
		}
	}
	ctx.ids = epochs
	ctx.ReplyArrayHeader(len(epochs))
	for _, e := range epochs {
		ctx.ReplyInt(int64(e))
	}
	return nil
}

// release drops the retained view with the given epoch, replying 1 if
// it existed.
func (gm *GraphModule) release(ctx *Ctx) error {
	epoch, ok := parseUint64(ctx.Args[0])
	if !ok {
		return &BadArgError{Cmd: ctx.Name, Detail: "bad epoch " + strconv.Quote(ctx.ArgString(0))}
	}
	cur := gm.Graph()
	gm.viewMu.Lock()
	defer gm.viewMu.Unlock()
	for i, e := range gm.views {
		// Only current-graph entries are addressable; a stale entry with
		// a colliding epoch belongs to releaseStaleViews, not the client.
		if e.g == cur && e.v.Epoch() == epoch {
			e.v.Release()
			gm.views = append(gm.views[:i], gm.views[i+1:]...)
			ctx.ReplyInt(1)
			return nil
		}
	}
	ctx.ReplyInt(0)
	return nil
}

// analyticsStore resolves the store an epoch-tagged analytics command
// runs on: a retained view for an explicit epoch (with its own
// reference, so a concurrent g.release or ring eviction cannot panic
// the pass mid-flight), or a fresh ephemeral snapshot of now when the
// epoch is omitted — either way the pass runs on a frozen view, never
// blocks writers, and cleanup drops exactly the reference it holds.
// Views satisfy graphstore.Indexed, so every kernel the command calls
// runs on the view's CSR index: compiled lazily on the first analytics
// command against an epoch, memoized on the view for every later
// command at that epoch, and freed when the ring drops the snapshot.
func (gm *GraphModule) analyticsStore(epochArg string) (graphstore.Store, func(), error) {
	if epochArg != "" {
		epoch, err := strconv.ParseUint(epochArg, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad epoch %q", epochArg)
		}
		v := gm.viewAt(epoch)
		if v == nil {
			return nil, nil, fmt.Errorf("no retained snapshot with epoch %d (see g.snapshots)", epoch)
		}
		return v, v.Release, nil
	}
	var v *sharded.View
	gm.withGraph(func(g *sharded.Graph) { v = g.Snapshot() })
	return v, v.Release, nil
}

// graphBFS is GRAPH.BFS <root> [epoch]: breadth-first traversal over a
// frozen view, replying with the visited nodes in traversal order.
func (gm *GraphModule) graphBFS(ctx *Ctx) error {
	root, ok := parseUint64(ctx.Args[0])
	if !ok {
		return &BadArgError{Cmd: ctx.Name, Detail: "bad node id " + strconv.Quote(ctx.ArgString(0))}
	}
	epochArg := ""
	if len(ctx.Args) == 2 {
		epochArg = ctx.ArgString(1)
	}
	s, cleanup, err := gm.analyticsStore(epochArg)
	if err != nil {
		return &BadArgError{Cmd: ctx.Name, Detail: err.Error()}
	}
	defer cleanup()
	order := analytics.BFS(s, root)
	ctx.ReplyArrayHeader(len(order))
	for _, u := range order {
		ctx.ReplyInt(int64(u))
	}
	return nil
}

// graphPageRank is GRAPH.PAGERANK <iters> [epoch]: the power method
// over a frozen view, replying with a flat array of node, rank pairs
// sorted by node id.
func (gm *GraphModule) graphPageRank(ctx *Ctx) error {
	iters, err := strconv.Atoi(ctx.ArgString(0))
	if err != nil || iters < 1 {
		return &BadArgError{Cmd: ctx.Name, Detail: "bad iteration count " + strconv.Quote(ctx.ArgString(0))}
	}
	epochArg := ""
	if len(ctx.Args) == 2 {
		epochArg = ctx.ArgString(1)
	}
	s, cleanup, err := gm.analyticsStore(epochArg)
	if err != nil {
		return &BadArgError{Cmd: ctx.Name, Detail: err.Error()}
	}
	defer cleanup()
	rank := analytics.PageRank(s, iters)
	nodes := make([]uint64, 0, len(rank))
	for u := range rank {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	ctx.ReplyArrayHeader(2 * len(nodes))
	for _, u := range nodes {
		ctx.ReplyInt(int64(u))
		ctx.ReplyBulkString(strconv.FormatFloat(rank[u], 'g', 10, 64))
	}
	return nil
}
