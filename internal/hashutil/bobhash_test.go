package hashutil

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestHash64MatchesByteHash(t *testing.T) {
	keys := []uint64{0, 1, 42, 1 << 32, ^uint64(0), 0xdeadbeefcafef00d}
	seeds := []uint32{1, 7, 0x9e3779b9, ^uint32(0)}
	var buf [8]byte
	for _, k := range keys {
		for _, s := range seeds {
			binary.LittleEndian.PutUint64(buf[:], k)
			if got, want := Hash64(k, s), Hash(buf[:], s); got != want {
				t.Fatalf("Hash64(%#x,%#x) = %#x, want %#x", k, s, got, want)
			}
		}
	}
}

func TestHash64MatchesByteHashQuick(t *testing.T) {
	f := func(k uint64, s uint32) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], k)
		return Hash64(k, s) == Hash(buf[:], s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKey64Bijective(t *testing.T) {
	// Key64 is the splitmix64 finaliser, a bijection on uint64: distinct
	// keys can never collide in the full 64 bits. Spot-check injectivity
	// and that the known inverse-free zero case still maps sensibly.
	seen := map[uint64]uint64{}
	for k := uint64(0); k < 1<<14; k++ {
		h := Key64(k)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Key64 collision: %d and %d both hash to %#x", prev, k, h)
		}
		seen[h] = k
	}
}

func TestKey64Deterministic(t *testing.T) {
	f := func(k uint64) bool { return Key64(k) == Key64(k) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKey64Distribution(t *testing.T) {
	// Sequential keys binned by the top byte (the fingerprint-tag byte of
	// the probe path) and by low bits (the shard/bucket side) must both
	// spread roughly uniformly.
	const keys, bins = 1 << 14, 64
	hi := make([]int, bins)
	lo := make([]int, bins)
	for k := uint64(0); k < keys; k++ {
		h := Key64(k)
		hi[h>>58]++
		lo[h%bins]++
	}
	want := keys / bins
	for b := 0; b < bins; b++ {
		if hi[b] < want/2 || hi[b] > want*2 {
			t.Fatalf("top-bits bin %d has %d keys, want ≈%d", b, hi[b], want)
		}
		if lo[b] < want/2 || lo[b] > want*2 {
			t.Fatalf("low-bits bin %d has %d keys, want ≈%d", b, lo[b], want)
		}
	}
}

func TestHashSeedsIndependent(t *testing.T) {
	// Different seeds must give different hash functions (the two arrays
	// of a cuckoo table rely on independence).
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if Hash64(k, 1) == Hash64(k, 2) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/1000 collisions across seeds; hashes not independent", same)
	}
}

func TestHashAllLengths(t *testing.T) {
	// Exercise every tail-switch branch (0..12+ byte keys).
	data := make([]byte, 40)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	seen := map[uint32]int{}
	for n := 0; n <= len(data); n++ {
		seen[Hash(data[:n], 99)]++
	}
	// All 41 prefixes should hash distinctly with overwhelming probability.
	if len(seen) < 40 {
		t.Fatalf("only %d distinct hashes across 41 prefixes", len(seen))
	}
}

func TestHashDistribution(t *testing.T) {
	// Bucketing sequential keys into 64 bins should be roughly uniform.
	const keys, bins = 1 << 14, 64
	counts := make([]int, bins)
	for k := uint64(0); k < keys; k++ {
		counts[Hash64(k, 12345)%bins]++
	}
	want := keys / bins
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bin %d has %d keys, want ≈%d", b, c, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	if NewRNG(7).Next() == c.Next() {
		t.Fatal("different seeds produced identical first output")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n(3) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f", f)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPairDistinguishesOrder(t *testing.T) {
	if Pair(1, 2) == Pair(2, 1) {
		t.Fatal("Pair(1,2) == Pair(2,1)")
	}
	if Pair(1, 2) == Pair(1, 3) {
		t.Fatal("Pair collides on second component")
	}
}
