// Package hashutil implements the 32-bit Bob Jenkins hash ("Bob Hash",
// lookup2/evahash) used by the CuckooGraph paper, plus 64-bit mixing
// helpers and a small deterministic PRNG used across the repository.
//
// The paper hashes 8-byte node identifiers with 32-bit Bob Hash seeded
// with random initial values (§V-A). Hash64 specialises the byte-slice
// hash for a uint64 key without allocating.
package hashutil

// mix is the core 96-bit mixing step of Bob Jenkins' lookup2 hash.
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return a, b, c
}

// golden is the golden-ratio constant from the reference implementation.
const golden = 0x9e3779b9

// Hash hashes an arbitrary byte slice with the given seed, following
// Bob Jenkins' lookup2 ("evahash") reference implementation.
func Hash(key []byte, seed uint32) uint32 {
	a := uint32(golden)
	b := uint32(golden)
	c := seed
	length := uint32(len(key))
	i := 0
	for len(key)-i >= 12 {
		a += uint32(key[i]) | uint32(key[i+1])<<8 | uint32(key[i+2])<<16 | uint32(key[i+3])<<24
		b += uint32(key[i+4]) | uint32(key[i+5])<<8 | uint32(key[i+6])<<16 | uint32(key[i+7])<<24
		c += uint32(key[i+8]) | uint32(key[i+9])<<8 | uint32(key[i+10])<<16 | uint32(key[i+11])<<24
		a, b, c = mix(a, b, c)
		i += 12
	}
	c += length
	rest := key[i:]
	// The reference implementation switches on the remaining byte count;
	// byte 8..10 shift into c above the length byte.
	if len(rest) > 10 {
		c += uint32(rest[10]) << 24
	}
	if len(rest) > 9 {
		c += uint32(rest[9]) << 16
	}
	if len(rest) > 8 {
		c += uint32(rest[8]) << 8
	}
	if len(rest) > 7 {
		b += uint32(rest[7]) << 24
	}
	if len(rest) > 6 {
		b += uint32(rest[6]) << 16
	}
	if len(rest) > 5 {
		b += uint32(rest[5]) << 8
	}
	if len(rest) > 4 {
		b += uint32(rest[4])
	}
	if len(rest) > 3 {
		a += uint32(rest[3]) << 24
	}
	if len(rest) > 2 {
		a += uint32(rest[2]) << 16
	}
	if len(rest) > 1 {
		a += uint32(rest[1]) << 8
	}
	if len(rest) > 0 {
		a += uint32(rest[0])
	}
	_, _, c = mix(a, b, c)
	return c
}

// Hash64 hashes a uint64 key with the given seed. It is equivalent to
// Hash on the key's 8 little-endian bytes but avoids the allocation and
// loop, which matters on the hot path of every table probe.
func Hash64(key uint64, seed uint32) uint32 {
	a := uint32(golden)
	b := uint32(golden)
	c := seed + 8 // c += length for an 8-byte key
	b += uint32(key >> 32)
	a += uint32(key)
	_, _, c = mix(a, b, c)
	return c
}

// Key64 mixes a uint64 key into a full 64-bit hash with the splitmix64
// finaliser (a bijection, so distinct keys never collide in the full
// 64 bits). It is THE hash of the probe path: each operation computes
// it once per key, and every cuckoo table derives both of its bucket
// indexes and the cell fingerprint tag from this one value by mixing
// with its per-table seed — replacing the two seeded Bob hashes per
// table per probe of the original layout.
func Key64(key uint64) uint64 {
	z := key
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Pair mixes an edge ⟨u,v⟩ into a single 64-bit fingerprint. Used by
// stores that key edge sets by the whole pair.
func Pair(u, v uint64) uint64 {
	h := uint64(Hash64(u, 0x5bd1e995))
	h = h<<32 | uint64(Hash64(v, 0x1b873593))
	return h
}

// RNG is a splitmix64 pseudo-random generator. It is deterministic for
// a given seed so every experiment in the repository is reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit pseudo-random value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit pseudo-random value.
func (r *RNG) Uint32() uint32 { return uint32(r.Next() >> 32) }

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hashutil: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hashutil: Uint64n with zero n")
	}
	return r.Next() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
