package core
