package core

import (
	"testing"
	"testing/quick"

	"cuckoograph/internal/hashutil"
)

func TestGraphBasicOps(t *testing.T) {
	g := NewGraph(Config{})
	if !g.InsertEdge(1, 2) {
		t.Fatal("first insert reported duplicate")
	}
	if g.InsertEdge(1, 2) {
		t.Fatal("duplicate insert reported new")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong on direction")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 1 {
		t.Fatalf("counts: edges %d nodes %d", g.NumEdges(), g.NumNodes())
	}
	if !g.DeleteEdge(1, 2) {
		t.Fatal("delete failed")
	}
	if g.DeleteEdge(1, 2) {
		t.Fatal("second delete reported success")
	}
	if g.NumEdges() != 0 || g.NumNodes() != 0 {
		t.Fatalf("counts after delete: edges %d nodes %d", g.NumEdges(), g.NumNodes())
	}
}

func TestGraphInlineToChainTransformation(t *testing.T) {
	cfg := Config{R: 3}.Defaults()
	g := NewGraph(cfg)
	u := uint64(77)
	// Fill exactly the 2R inline small slots.
	for v := uint64(1); v <= uint64(2*cfg.R); v++ {
		g.InsertEdge(u, v)
	}
	if st := g.Stats(); st.Chains != 0 {
		t.Fatalf("chain created too early: %+v", st)
	}
	// The (2R+1)-th neighbour triggers the transformation (§III-A1 ②).
	g.InsertEdge(u, uint64(2*cfg.R+1))
	if st := g.Stats(); st.Chains != 1 {
		t.Fatalf("chain not created on overflow: %+v", st)
	}
	for v := uint64(1); v <= uint64(2*cfg.R+1); v++ {
		if !g.HasEdge(u, v) {
			t.Fatalf("edge ⟨%d,%d⟩ lost across transformation", u, v)
		}
	}
}

func TestGraphChainCollapseOnDelete(t *testing.T) {
	cfg := Config{R: 3}.Defaults()
	g := NewGraph(cfg)
	u := uint64(5)
	const deg = 40
	for v := uint64(1); v <= deg; v++ {
		g.InsertEdge(u, v)
	}
	if g.Stats().Chains != 1 {
		t.Fatal("expected a chain at degree 40")
	}
	for v := uint64(1); v <= deg-2; v++ {
		if !g.DeleteEdge(u, v) {
			t.Fatalf("delete ⟨%d,%d⟩ failed", u, v)
		}
	}
	if st := g.Stats(); st.Chains != 0 {
		t.Fatalf("chain did not collapse back to inline slots: %+v", st)
	}
	for v := uint64(deg - 1); v <= deg; v++ {
		if !g.HasEdge(u, v) {
			t.Fatalf("survivor ⟨%d,%d⟩ lost in collapse", u, v)
		}
	}
}

func TestGraphHighDegreeNode(t *testing.T) {
	// Push one node through multiple chain merges (Table II walks).
	g := NewGraph(Config{SCHTBase: 4})
	u := uint64(1)
	const deg = 5000
	for v := uint64(1); v <= deg; v++ {
		if !g.InsertEdge(u, v) {
			t.Fatalf("insert %d reported duplicate", v)
		}
	}
	if g.NumEdges() != deg {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), deg)
	}
	for v := uint64(1); v <= deg; v++ {
		if !g.HasEdge(u, v) {
			t.Fatalf("edge %d missing", v)
		}
	}
	n := 0
	g.ForEachSuccessor(u, func(uint64) bool { n++; return true })
	if n != deg {
		t.Fatalf("ForEachSuccessor visited %d, want %d", n, deg)
	}
}

func TestGraphManyNodesLCHTGrowth(t *testing.T) {
	// Many distinct u force the L-CHT itself through transformations.
	g := NewGraph(Config{LCHTBase: 4})
	const nodes = 3000
	for u := uint64(1); u <= nodes; u++ {
		g.InsertEdge(u, u+1)
	}
	if g.NumNodes() != nodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), nodes)
	}
	st := g.Stats()
	if st.LCHTCells < nodes {
		t.Fatalf("L-CHT cells %d < nodes %d", st.LCHTCells, nodes)
	}
	for u := uint64(1); u <= nodes; u++ {
		if !g.HasEdge(u, u+1) {
			t.Fatalf("edge ⟨%d,%d⟩ lost across L-CHT growth", u, u+1)
		}
	}
}

func TestGraphSuccessorsMatchModel(t *testing.T) {
	g := NewGraph(Config{})
	rng := hashutil.NewRNG(42)
	model := map[uint64]map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		u := rng.Uint64n(50)
		v := rng.Uint64n(2000)
		if model[u] == nil {
			model[u] = map[uint64]bool{}
		}
		if rng.Intn(4) == 0 {
			g.DeleteEdge(u, v)
			delete(model[u], v)
		} else {
			g.InsertEdge(u, v)
			model[u][v] = true
		}
	}
	for u, vs := range model {
		got := map[uint64]bool{}
		g.ForEachSuccessor(u, func(v uint64) bool {
			if got[v] {
				t.Fatalf("duplicate successor %d of %d", v, u)
			}
			got[v] = true
			return true
		})
		if len(got) != len(vs) {
			t.Fatalf("node %d: %d successors, want %d", u, len(got), len(vs))
		}
		for v := range vs {
			if !got[v] {
				t.Fatalf("node %d missing successor %d", u, v)
			}
		}
	}
}

func TestGraphQuickSetSemantics(t *testing.T) {
	f := func(seed uint64, ops []uint32) bool {
		g := NewGraph(Config{Seed: seed | 1, LCHTBase: 4, SCHTBase: 4})
		model := map[[2]uint64]bool{}
		for _, op := range ops {
			u := uint64(op % 13)
			v := uint64((op >> 8) % 61)
			key := [2]uint64{u, v}
			switch op % 3 {
			case 0:
				if g.InsertEdge(u, v) == model[key] {
					return false // new iff model lacked it
				}
				model[key] = true
			case 1:
				if g.DeleteEdge(u, v) != model[key] {
					return false
				}
				delete(model, key)
			default:
				if g.HasEdge(u, v) != model[key] {
					return false
				}
			}
		}
		return int(g.NumEdges()) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDenylistUnderPressure(t *testing.T) {
	// Tiny tables and a minuscule kick budget provoke insertion failures
	// so the denylists engage; correctness must be unaffected.
	g := NewGraph(Config{MaxKicks: 2, LCHTBase: 2, SCHTBase: 2, D: 1, LDLCap: 8, SDLCap: 8})
	const n = 2000
	rng := hashutil.NewRNG(7)
	type pair struct{ u, v uint64 }
	var pairs []pair
	for i := 0; i < n; i++ {
		p := pair{rng.Uint64n(200), rng.Uint64n(200)}
		pairs = append(pairs, p)
		g.InsertEdge(p.u, p.v)
	}
	for _, p := range pairs {
		if !g.HasEdge(p.u, p.v) {
			t.Fatalf("edge ⟨%d,%d⟩ lost under denylist pressure", p.u, p.v)
		}
	}
}

func TestGraphDenylistDisabledAblation(t *testing.T) {
	// §V-C ablation: with DL disabled every failure forces expansion;
	// the structure must remain error-free.
	g := NewGraph(Config{DisableDenylist: true, MaxKicks: 2, LCHTBase: 2, SCHTBase: 2, D: 1})
	rng := hashutil.NewRNG(9)
	type pair struct{ u, v uint64 }
	var pairs []pair
	for i := 0; i < 1500; i++ {
		p := pair{rng.Uint64n(150), rng.Uint64n(150)}
		pairs = append(pairs, p)
		g.InsertEdge(p.u, p.v)
	}
	st := g.Stats()
	if st.LDLLen != 0 && st.SDLLen != 0 {
		// Leftover spill during forced growth may transiently park items;
		// both denylists should drain on subsequent growth.
		t.Logf("denylists non-empty in ablation mode: L=%d S=%d", st.LDLLen, st.SDLLen)
	}
	for _, p := range pairs {
		if !g.HasEdge(p.u, p.v) {
			t.Fatalf("edge ⟨%d,%d⟩ lost in ablation mode", p.u, p.v)
		}
	}
}

// TestGraphMemoryBoundTheorem5 checks Theorem 5: at stable state the
// L-CHT holds at most |V|/Λ cells and all S-CHTs at most |E|/Λ cells.
// The theorem assumes every table group is at stable state (overall LR ≥
// Λ), which minimum-length chains cannot violate downward, so the
// workload gives every node the same super-inline degree.
func TestGraphMemoryBoundTheorem5(t *testing.T) {
	cfg := Config{SCHTBase: 2}.Defaults()
	g := NewGraph(cfg)
	const nodes, deg = 3000, 20
	for u := uint64(1); u <= nodes; u++ {
		for k := uint64(1); k <= deg; k++ {
			g.InsertEdge(u, u*1000+k)
		}
	}
	st := g.Stats()
	if st.LCHTLoadRate >= cfg.Lambda {
		maxLCHT := float64(st.Nodes) / cfg.Lambda
		if float64(st.LCHTCells) > maxLCHT {
			t.Fatalf("L-CHT cells %d > |V|/Λ = %.0f", st.LCHTCells, maxLCHT)
		}
	}
	maxSCHT := float64(st.Edges) / cfg.Lambda
	if float64(st.ChainCells) > maxSCHT {
		t.Fatalf("S-CHT cells %d > |E|/Λ = %.0f (chains %d, entries %d)",
			st.ChainCells, maxSCHT, st.Chains, st.ChainEntries)
	}
}

// TestGraphAmortizedInsertTheorem2 checks the measured analogue of
// Theorem 2: total placements (including transformation moves) stay
// under 3N for N insertions, and the per-item kick overhead is small
// (§IV-A reports ≈1.017 average insertions per item in the L-CHT).
func TestGraphAmortizedInsertTheorem2(t *testing.T) {
	g := NewGraph(Config{LCHTBase: 4, SCHTBase: 4})
	const nodes = 20000
	for u := uint64(1); u <= nodes; u++ {
		g.InsertEdge(u, u+1) // one edge per node: exercises L-CHT growth
	}
	st := g.Stats()
	cost := st.LCHTPlacements + st.LCHTKicks
	if cost > 3*nodes {
		t.Fatalf("amortized cost %d > 3N = %d", cost, 3*nodes)
	}
	avg := float64(st.LCHTKicks)/float64(nodes) + 1
	if avg > 1.5 {
		t.Fatalf("average insertions per item %.3f, want ≈1.0", avg)
	}
}

func TestGraphMemoryUsageGrowsAndShrinks(t *testing.T) {
	g := NewGraph(Config{})
	empty := g.MemoryUsage()
	for v := uint64(1); v <= 1000; v++ {
		g.InsertEdge(1, v)
	}
	full := g.MemoryUsage()
	if full <= empty {
		t.Fatalf("memory did not grow: %d → %d", empty, full)
	}
	for v := uint64(1); v <= 1000; v++ {
		g.DeleteEdge(1, v)
	}
	final := g.MemoryUsage()
	if final >= full {
		t.Fatalf("memory did not shrink after deletes: %d → %d", full, final)
	}
}

func TestGraphForEachNode(t *testing.T) {
	g := NewGraph(Config{})
	for u := uint64(1); u <= 20; u++ {
		g.InsertEdge(u, 100+u)
	}
	seen := map[uint64]bool{}
	g.ForEachNode(func(u uint64) bool {
		seen[u] = true
		return true
	})
	if len(seen) != 20 {
		t.Fatalf("ForEachNode visited %d nodes, want 20", len(seen))
	}
	n := 0
	g.ForEachNode(func(uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestGraphSelfLoopAndZeroID(t *testing.T) {
	g := NewGraph(Config{})
	if !g.InsertEdge(0, 0) {
		t.Fatal("self-loop on node 0 rejected")
	}
	if !g.HasEdge(0, 0) {
		t.Fatal("self-loop on node 0 not found")
	}
	if !g.DeleteEdge(0, 0) {
		t.Fatal("self-loop delete failed")
	}
}
