package core

import (
	"testing"

	"cuckoograph/internal/hashutil"
)

// TestSDLDrainOnExpansion reproduces Example 2 of §III-A2/3: items
// parked in the S-DL whose u matches an expanding chain are moved into
// the newly enabled S-CHT.
func TestSDLDrainOnExpansion(t *testing.T) {
	g := NewGraph(Config{SCHTBase: 2, SDLCap: 64})
	u := uint64(9)
	// Build a chain, then park entries in the S-DL by hand through the
	// engine (simulating kick-war losers).
	for v := uint64(1); v <= 10; v++ {
		g.InsertEdge(u, v)
	}
	if g.Stats().Chains != 1 {
		t.Fatal("no chain at degree 10")
	}
	g.e.sdl = append(g.e.sdl,
		sdlEntry[struct{}]{u: u, s: slot[struct{}]{v: 1000}},
		sdlEntry[struct{}]{u: u, s: slot[struct{}]{v: 1001}},
		sdlEntry[struct{}]{u: 77, s: slot[struct{}]{v: 1002}}, // other u stays
	)
	g.e.edges += 3
	// Edges in the S-DL are already visible to queries.
	if !g.HasEdge(u, 1000) || !g.HasEdge(77, 1002) {
		t.Fatal("S-DL entries not queryable")
	}
	// Force chain expansions by raising the degree; the drain should
	// move the matching entries into the chain.
	for v := uint64(11); v <= 200; v++ {
		g.InsertEdge(u, v)
	}
	for _, entry := range g.e.sdl {
		if entry.u == u {
			t.Fatalf("S-DL still holds ⟨%d,%d⟩ after expansion", entry.u, entry.s.v)
		}
	}
	if !g.HasEdge(u, 1000) || !g.HasEdge(u, 1001) {
		t.Fatal("drained edges lost")
	}
	if !g.HasEdge(77, 1002) {
		t.Fatal("non-matching S-DL entry disturbed")
	}
}

// TestLDLKeepsChainWithoutCopy checks the L-DL design point of §III-A2:
// a cell evicted into the L-DL keeps its S-CHT chain pointer, so the
// chain is neither copied nor lost, and stays fully operational.
func TestLDLKeepsChainWithoutCopy(t *testing.T) {
	g := NewGraph(Config{SCHTBase: 2})
	u := uint64(42)
	for v := uint64(1); v <= 50; v++ {
		g.InsertEdge(u, v)
	}
	p := g.e.findPart2(u)
	if p == nil || p.chain == nil {
		t.Fatal("expected a chain")
	}
	chain := p.chain
	// Evict the cell into the L-DL by hand.
	val, _ := g.e.lcht.Lookup(u)
	g.e.lcht.Delete(u)
	g.e.ldl = append(g.e.ldl, ldlEntry[struct{}]{u: u, p: val})

	// The same chain object must be reachable (pointer equality = no
	// copying) and all edges still answer.
	p2 := g.e.findPart2(u)
	if p2 == nil || p2.chain != chain {
		t.Fatal("chain pointer changed across L-DL eviction")
	}
	for v := uint64(1); v <= 50; v++ {
		if !g.HasEdge(u, v) {
			t.Fatalf("edge %d lost while cell in L-DL", v)
		}
	}
	// Mutations through the L-DL-resident cell must work too.
	g.InsertEdge(u, 999)
	if !g.HasEdge(u, 999) {
		t.Fatal("insert into L-DL-resident cell failed")
	}
	if !g.DeleteEdge(u, 1) || g.HasEdge(u, 1) {
		t.Fatal("delete through L-DL-resident cell failed")
	}
}

// TestForcedGrowthWhenDenylistsFull verifies the overflow fallback: a
// full denylist triggers a transformation instead of dropping items.
func TestForcedGrowthWhenDenylistsFull(t *testing.T) {
	g := NewGraph(Config{MaxKicks: 1, D: 1, LCHTBase: 2, SCHTBase: 2, LDLCap: 2, SDLCap: 2})
	rng := hashutil.NewRNG(17)
	type pair struct{ u, v uint64 }
	var pairs []pair
	for i := 0; i < 3000; i++ {
		p := pair{rng.Uint64n(500), rng.Uint64n(500)}
		pairs = append(pairs, p)
		g.InsertEdge(p.u, p.v)
	}
	st := g.Stats()
	if st.LDLLen > 2 || st.SDLLen > 2 {
		t.Fatalf("denylists exceeded caps: L=%d S=%d", st.LDLLen, st.SDLLen)
	}
	for _, p := range pairs {
		if !g.HasEdge(p.u, p.v) {
			t.Fatalf("edge %v lost under full-denylist pressure", p)
		}
	}
}

// TestStatsConsistency cross-checks the Stats counters against direct
// structure walks.
func TestStatsConsistency(t *testing.T) {
	g := NewGraph(Config{})
	rng := hashutil.NewRNG(23)
	for i := 0; i < 10000; i++ {
		g.InsertEdge(rng.Uint64n(200), rng.Uint64n(2000))
	}
	st := g.Stats()
	var nodes, edges int
	g.ForEachNode(func(u uint64) bool {
		nodes++
		g.ForEachSuccessor(u, func(uint64) bool { edges++; return true })
		return true
	})
	if uint64(nodes) != st.Nodes {
		t.Fatalf("walked %d nodes, stats say %d", nodes, st.Nodes)
	}
	if uint64(edges) != st.Edges {
		t.Fatalf("walked %d edges, stats say %d", edges, st.Edges)
	}
	if st.LCHTLoadRate <= 0 || st.LCHTLoadRate > 1 {
		t.Fatalf("load rate %f out of range", st.LCHTLoadRate)
	}
	if st.ChainEntries > int(st.Edges) {
		t.Fatalf("chain entries %d exceed edges %d", st.ChainEntries, st.Edges)
	}
}

// TestDeleteNonExistent covers all miss paths of deleteEdge.
func TestDeleteNonExistent(t *testing.T) {
	g := NewGraph(Config{})
	if g.DeleteEdge(1, 2) {
		t.Fatal("delete on empty graph succeeded")
	}
	g.InsertEdge(1, 2)
	if g.DeleteEdge(1, 3) {
		t.Fatal("delete of absent v succeeded")
	}
	if g.DeleteEdge(2, 2) {
		t.Fatal("delete of absent u succeeded")
	}
	// Chain-mode miss.
	for v := uint64(10); v < 40; v++ {
		g.InsertEdge(1, v)
	}
	if g.DeleteEdge(1, 5000) {
		t.Fatal("chain-mode delete of absent v succeeded")
	}
}
