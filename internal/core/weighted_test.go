package core

import (
	"testing"
	"testing/quick"

	"cuckoograph/internal/hashutil"
)

func TestWeightedSemantics(t *testing.T) {
	w := NewWeighted(Config{})
	if !w.InsertEdge(1, 2) {
		t.Fatal("first insert not new")
	}
	if w.InsertEdge(1, 2) {
		t.Fatal("second insert reported new")
	}
	if got, ok := w.Weight(1, 2); !ok || got != 2 {
		t.Fatalf("weight = %d,%v; want 2,true", got, ok)
	}
	if !w.DeleteEdge(1, 2) {
		t.Fatal("delete failed")
	}
	if got, _ := w.Weight(1, 2); got != 1 {
		t.Fatalf("weight after one delete = %d, want 1", got)
	}
	if !w.DeleteEdge(1, 2) {
		t.Fatal("final delete failed")
	}
	if w.HasEdge(1, 2) {
		t.Fatal("edge survives weight 0")
	}
	if w.DeleteEdge(1, 2) {
		t.Fatal("delete of absent edge reported success")
	}
}

func TestWeightedAddDelta(t *testing.T) {
	w := NewWeighted(Config{})
	w.Add(3, 4, 10)
	w.Add(3, 4, 5)
	if got, _ := w.Weight(3, 4); got != 15 {
		t.Fatalf("weight = %d, want 15", got)
	}
	if !w.DeleteAll(3, 4) {
		t.Fatal("DeleteAll failed")
	}
	if w.HasEdge(3, 4) {
		t.Fatal("edge survives DeleteAll")
	}
}

func TestWeightedInlineCapacityIsR(t *testing.T) {
	// §III-B: ⟨v,w⟩ pairs use two small slots each, so only R inline
	// records fit before the chain transformation.
	cfg := Config{R: 3}.Defaults()
	w := NewWeighted(cfg)
	u := uint64(9)
	for v := uint64(1); v <= uint64(cfg.R); v++ {
		w.InsertEdge(u, v)
	}
	if st := w.Stats(); st.Chains != 0 {
		t.Fatalf("chain too early at degree R: %+v", st)
	}
	w.InsertEdge(u, uint64(cfg.R)+1)
	if st := w.Stats(); st.Chains != 1 {
		t.Fatalf("chain not created at degree R+1: %+v", st)
	}
}

func TestWeightedWeightsSurviveTransformation(t *testing.T) {
	w := NewWeighted(Config{SCHTBase: 4})
	u := uint64(1)
	const deg = 500
	for v := uint64(1); v <= deg; v++ {
		w.Add(u, v, v) // weight = v
	}
	for v := uint64(1); v <= deg; v++ {
		if got, ok := w.Weight(u, v); !ok || got != v {
			t.Fatalf("weight(%d) = %d,%v; want %d,true", v, got, ok, v)
		}
	}
	total := uint64(0)
	w.ForEachSuccessor(u, func(_, weight uint64) bool {
		total += weight
		return true
	})
	if want := uint64(deg * (deg + 1) / 2); total != want {
		t.Fatalf("sum of weights %d, want %d", total, want)
	}
}

func TestWeightedQuickMultisetSemantics(t *testing.T) {
	f := func(seed uint64, ops []uint32) bool {
		w := NewWeighted(Config{Seed: seed | 1, LCHTBase: 4, SCHTBase: 4})
		model := map[[2]uint64]uint64{}
		for _, op := range ops {
			u := uint64(op % 7)
			v := uint64((op >> 8) % 31)
			key := [2]uint64{u, v}
			switch op % 3 {
			case 0:
				w.InsertEdge(u, v)
				model[key]++
			case 1:
				if w.DeleteEdge(u, v) != (model[key] > 0) {
					return false
				}
				if model[key] > 0 {
					model[key]--
					if model[key] == 0 {
						delete(model, key)
					}
				}
			default:
				got, ok := w.Weight(u, v)
				want, wok := model[key]
				if ok != wok || got != want {
					return false
				}
			}
		}
		return int(w.NumEdges()) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedStreamDedup(t *testing.T) {
	// A CAIDA-like stream: many repeats of few pairs. Distinct-edge count
	// must equal the dedup count; weights must sum to the stream length.
	w := NewWeighted(Config{})
	rng := hashutil.NewRNG(13)
	const stream = 30000
	model := map[[2]uint64]uint64{}
	for i := 0; i < stream; i++ {
		u, v := rng.Uint64n(40), rng.Uint64n(40)
		w.InsertEdge(u, v)
		model[[2]uint64{u, v}]++
	}
	if int(w.NumEdges()) != len(model) {
		t.Fatalf("distinct edges %d, want %d", w.NumEdges(), len(model))
	}
	var sum uint64
	for k, want := range model {
		got, ok := w.Weight(k[0], k[1])
		if !ok || got != want {
			t.Fatalf("weight%v = %d,%v; want %d", k, got, ok, want)
		}
		sum += got
	}
	if sum != stream {
		t.Fatalf("weights sum %d, want %d", sum, stream)
	}
}

func TestMultiEdgeSemantics(t *testing.T) {
	m := NewMulti(Config{})
	m.InsertEdge(1, 2, 100)
	m.InsertEdge(1, 2, 101)
	m.InsertEdge(1, 3, 102)
	if m.NumEdges() != 3 || m.NumPairs() != 2 {
		t.Fatalf("edges %d pairs %d; want 3, 2", m.NumEdges(), m.NumPairs())
	}
	it := m.Edges(1, 2)
	if it.Len() != 2 {
		t.Fatalf("iterator len %d, want 2", it.Len())
	}
	seen := map[uint64]bool{}
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		seen[id] = true
	}
	if !seen[100] || !seen[101] {
		t.Fatalf("iterator missed ids: %v", seen)
	}
	if !m.DeleteEdge(1, 2, 100) {
		t.Fatal("delete id 100 failed")
	}
	if m.DeleteEdge(1, 2, 100) {
		t.Fatal("double delete succeeded")
	}
	if !m.DeleteEdge(1, 2, 101) {
		t.Fatal("delete id 101 failed")
	}
	if m.HasEdge(1, 2) {
		t.Fatal("pair survives empty edge list")
	}
	if m.NumEdges() != 1 || m.NumPairs() != 1 {
		t.Fatalf("edges %d pairs %d after deletes; want 1, 1", m.NumEdges(), m.NumPairs())
	}
}

func TestMultiEdgeHighFanIn(t *testing.T) {
	m := NewMulti(Config{})
	for id := uint64(0); id < 1000; id++ {
		m.InsertEdge(7, 8, id)
	}
	it := m.Edges(7, 8)
	if it.Len() != 1000 {
		t.Fatalf("iterator len %d, want 1000", it.Len())
	}
	if m.Edges(7, 9).Len() != 0 {
		t.Fatal("absent pair yields non-empty iterator")
	}
}
