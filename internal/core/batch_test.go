package core

import (
	"fmt"
	"testing"

	"cuckoograph/internal/hashutil"
)

// randomOps builds an op stream over a small node universe so inserts
// collide into chains, deletes trigger collapses and node removals, and
// duplicate edges (both duplicate inserts and re-inserts after delete)
// occur naturally. delPermille tunes the delete share.
func randomOps(rng *hashutil.RNG, n int, universe uint64, delPermille uint64) Batch {
	b := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Uint64n(universe)
		v := rng.Uint64n(universe)
		if rng.Uint64n(1000) < delPermille {
			b = b.Delete(u, v)
		} else {
			b = b.Insert(u, v)
		}
	}
	return b
}

// chopRandomly splits ops into batches of random size 1..maxChunk.
func chopRandomly(rng *hashutil.RNG, ops Batch, maxChunk uint64) []Batch {
	var out []Batch
	for len(ops) > 0 {
		n := int(rng.Uint64n(maxChunk) + 1)
		if n > len(ops) {
			n = len(ops)
		}
		out = append(out, ops[:n])
		ops = ops[n:]
	}
	return out
}

// smallCfg forces growth, transformation and denylist traffic at test
// sizes.
func smallCfg() Config {
	return Config{LCHTBase: 4, SCHTBase: 4}
}

// TestBatchEquivalenceBasic is the batch/single equivalence property:
// applying an op stream through ApplyBatch in arbitrary chunks must
// leave a graph identical — full structural Stats, not just the edge
// set — to applying the same ops one by one, including interleaved
// deletes and duplicate edges.
func TestBatchEquivalenceBasic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := hashutil.NewRNG(seed)
			ops := randomOps(rng, 6000, 96, 350)

			single := NewGraph(smallCfg())
			var wantRes BatchResult
			for _, op := range ops {
				switch op.Kind {
				case OpInsert:
					if single.InsertEdge(op.U, op.V) {
						wantRes.Inserted++
					}
				case OpDelete:
					if single.DeleteEdge(op.U, op.V) {
						wantRes.Deleted++
					}
				}
			}

			batched := NewGraph(smallCfg())
			var gotRes BatchResult
			for _, chunk := range chopRandomly(rng, ops, 257) {
				r := batched.ApplyBatch(chunk)
				gotRes.Inserted += r.Inserted
				gotRes.Deleted += r.Deleted
				gotRes.Updated += r.Updated
			}

			if gotRes != wantRes {
				t.Fatalf("BatchResult = %+v, single-op path applied %+v", gotRes, wantRes)
			}
			if got, want := batched.Stats(), single.Stats(); got != want {
				t.Fatalf("Stats diverge:\nbatched: %+v\nsingle:  %+v", got, want)
			}
			sameEdges(t, single, batched)
		})
	}
}

// sameEdges checks both graphs store exactly the same edge set.
func sameEdges(t *testing.T, a, b *Graph) {
	t.Helper()
	count := uint64(0)
	a.ForEachNode(func(u uint64) bool {
		a.ForEachSuccessor(u, func(v uint64) bool {
			count++
			if !b.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) present in single-op graph, absent in batched", u, v)
			}
			return true
		})
		return true
	})
	if count != b.NumEdges() {
		t.Fatalf("single-op graph has %d edges, batched has %d", count, b.NumEdges())
	}
}

// TestBatchEquivalenceWeighted is the same property for the weighted
// variant, where duplicate inserts increment weights and deletes
// decrement them — every weight must match, not just edge presence.
func TestBatchEquivalenceWeighted(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := hashutil.NewRNG(seed * 977)
			// A tiny universe piles duplicates onto the same pairs.
			ops := randomOps(rng, 6000, 48, 400)

			single := NewWeighted(smallCfg())
			for _, op := range ops {
				switch op.Kind {
				case OpInsert:
					single.InsertEdge(op.U, op.V)
				case OpDelete:
					single.DeleteEdge(op.U, op.V)
				}
			}

			batched := NewWeighted(smallCfg())
			for _, chunk := range chopRandomly(rng, ops, 129) {
				batched.ApplyBatch(chunk)
			}

			if got, want := batched.Stats(), single.Stats(); got != want {
				t.Fatalf("Stats diverge:\nbatched: %+v\nsingle:  %+v", got, want)
			}
			single.ForEachNode(func(u uint64) bool {
				single.ForEachSuccessor(u, func(v, weight uint64) bool {
					got, ok := batched.Weight(u, v)
					if !ok || got != weight {
						t.Fatalf("weight(%d,%d) = %d,%v in batched graph, want %d", u, v, got, ok, weight)
					}
					return true
				})
				return true
			})
		})
	}
}

// TestBatchResultCounts pins the BatchResult accounting for both
// variants on a hand-built scenario.
func TestBatchResultCounts(t *testing.T) {
	g := NewGraph(Config{})
	res := g.ApplyBatch(Batch{}.
		Insert(1, 2). // new
		Insert(1, 2). // duplicate: no-op
		Insert(1, 3). // new
		Delete(1, 2). // removes
		Delete(9, 9)) // absent: no-op
	want := BatchResult{Inserted: 2, Deleted: 1}
	if res != want {
		t.Fatalf("basic BatchResult = %+v, want %+v", res, want)
	}
	if res.Applied() != 3 {
		t.Fatalf("Applied() = %d, want 3", res.Applied())
	}

	w := NewWeighted(Config{})
	wres := w.ApplyBatch(Batch{}.
		Insert(1, 2). // new, weight 1
		Insert(1, 2). // weight 2: updated
		Delete(1, 2). // weight 1: updated
		Delete(1, 2). // weight 0: deleted
		Delete(1, 2)) // absent: no-op
	wantW := BatchResult{Inserted: 1, Deleted: 1, Updated: 2}
	if wres != wantW {
		t.Fatalf("weighted BatchResult = %+v, want %+v", wres, wantW)
	}
}

// TestBatchOnAppliedOrder verifies ApplyBatchFunc reports exactly the
// state-changing ops in application order — the contract the WAL's
// batch records depend on.
func TestBatchOnAppliedOrder(t *testing.T) {
	g := NewGraph(Config{})
	var got Batch
	g.ApplyBatchFunc(Batch{}.
		Insert(1, 2).
		Insert(1, 2). // dup, not reported
		Insert(2, 3).
		Delete(7, 7). // absent, not reported
		Delete(1, 2),
		func(op Op) { got = append(got, op) })
	want := Batch{}.Insert(1, 2).Insert(2, 3).Delete(1, 2)
	if len(got) != len(want) {
		t.Fatalf("onApplied saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("onApplied saw %v, want %v", got, want)
		}
	}
}

// TestBatchUnknownKindIgnored: decoders reject unknown kinds before the
// engine, but the engine itself must not corrupt state on one.
func TestBatchUnknownKindIgnored(t *testing.T) {
	g := NewGraph(Config{})
	res := g.ApplyBatch(Batch{InsertOp(1, 2), {Kind: 99, U: 3, V: 4}, InsertOp(5, 6)})
	if res.Inserted != 2 || g.NumEdges() != 2 || g.HasEdge(3, 4) {
		t.Fatalf("unknown kind leaked: res=%+v edges=%d", res, g.NumEdges())
	}
}
