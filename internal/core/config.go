// Package core implements CuckooGraph (§III of the paper): an L-CHT
// chain keyed by source node u whose cells hold either up to 2R inline
// neighbour slots or pointers to a per-node S-CHT chain, plus the
// DENYLIST optimisation for insertion failures. Three variants share the
// engine: the basic version (distinct edges), the extended weighted
// version for streams with duplicate edges (§III-B), and a multi-edge
// version whose slots carry edge-id lists (the Neo4j use case, §V-G).
package core

import "cuckoograph/internal/cuckoo"

// Config tunes CuckooGraph. The zero value maps to the paper's defaults
// (d=8, R=3, G=0.9, Λ=0.5, T=250; §V-B sets d, G, T by experiment).
type Config struct {
	// D is the number of cells per bucket in every L/S-CHT.
	D int
	// R is the number of large slots per cell; Part 2 holds 2R small
	// slots inline before transforming into an S-CHT chain of ≤R tables.
	R int
	// MaxKicks is T, the maximum kick loops before an insertion fails.
	MaxKicks int
	// G is the loading-rate threshold that triggers expansion.
	G float64
	// Lambda is the overall loading rate that triggers contraction.
	Lambda float64
	// LCHTBase is the initial length of the L-CHT (buckets in its larger
	// array). The structure grows from here without prior knowledge.
	LCHTBase int
	// SCHTBase is n, the length of the 1st S-CHT of a chain.
	SCHTBase int
	// LDLCap and SDLCap bound the two denylists. When a denylist is full
	// a transformation is forced instead (the paper's fallback).
	LDLCap int
	SDLCap int
	// DisableDenylist switches to the ablation baseline of §V-C: every
	// insertion failure immediately forces an expansion.
	DisableDenylist bool
	// Seed makes the whole structure deterministic for testing.
	Seed uint64
}

// Defaults returns cfg with zero fields replaced by the paper defaults.
func (cfg Config) Defaults() Config {
	if cfg.D == 0 {
		cfg.D = 8
	}
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.MaxKicks == 0 {
		cfg.MaxKicks = 250
	}
	if cfg.G == 0 {
		cfg.G = 0.9
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.5
	}
	if cfg.LCHTBase == 0 {
		cfg.LCHTBase = 8
	}
	if cfg.SCHTBase == 0 {
		cfg.SCHTBase = 2
	}
	if cfg.LDLCap == 0 {
		cfg.LDLCap = 64
	}
	if cfg.SDLCap == 0 {
		cfg.SDLCap = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xC0FFEE
	}
	return cfg
}

func (cfg Config) chainConfig() cuckoo.Config {
	return cuckoo.Config{
		D:        cfg.D,
		MaxKicks: cfg.MaxKicks,
		G:        cfg.G,
		Lambda:   cfg.Lambda,
		R:        cfg.R,
		Seed:     cfg.Seed,
	}
}
