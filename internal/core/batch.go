package core

// Batched mutations. Real edge streams arrive in bursts, and the
// per-edge cost of the mutation path is dominated by work that repeats
// per source node: the Part-1 L-CHT probe that locates u's cell. A
// Batch applies its ops in exactly the order given — so a batch is
// semantically identical to replaying the same ops one by one, down to
// the physical structure and every Stats counter — while the engine
// amortizes cell lookups across the batch with a direct-mapped cell
// cache that is flushed only when an op restructures the L-CHT.
//
// Order preservation is a deliberate contract, not an accident: it is
// what lets the WAL log a whole batch as one record and replay it back
// op by op, and what makes the batch/single equivalence property
// testable at the level of full structural Stats.

import "cuckoograph/internal/hashutil"

// OpKind says what a mutation op does. The values are stable: the WAL's
// on-disk batch records and the wire protocol reuse them.
type OpKind uint8

const (
	// OpInsert adds the edge ⟨u,v⟩ (for the weighted variant: one
	// occurrence of it).
	OpInsert OpKind = 1
	// OpDelete removes the edge ⟨u,v⟩ (for the weighted variant: one
	// occurrence of it).
	OpDelete OpKind = 2
)

// Op is one edge mutation.
type Op struct {
	Kind OpKind
	U, V uint64
}

// InsertOp returns an insert mutation for ⟨u,v⟩.
func InsertOp(u, v uint64) Op { return Op{Kind: OpInsert, U: u, V: v} }

// DeleteOp returns a delete mutation for ⟨u,v⟩.
func DeleteOp(u, v uint64) Op { return Op{Kind: OpDelete, U: u, V: v} }

// Batch is an ordered sequence of mutations, applied front to back.
type Batch []Op

// Insert appends an insert op and returns the extended batch.
func (b Batch) Insert(u, v uint64) Batch { return append(b, InsertOp(u, v)) }

// Delete appends a delete op and returns the extended batch.
func (b Batch) Delete(u, v uint64) Batch { return append(b, DeleteOp(u, v)) }

// BatchResult summarises what a batch changed.
type BatchResult struct {
	// Inserted counts ops that created a new edge.
	Inserted uint64
	// Deleted counts ops that removed an edge from the structure.
	Deleted uint64
	// Updated counts ops that modified an existing edge's payload in
	// place: weighted duplicate inserts (weight +1) and weighted deletes
	// that decremented without reaching zero. Always zero for the basic
	// variant, whose duplicate inserts are no-ops.
	Updated uint64
}

// Applied is the number of ops that changed the graph at all.
func (r BatchResult) Applied() uint64 { return r.Inserted + r.Deleted + r.Updated }

// Chunker accumulates ops and hands them to apply in fixed-size
// batches — the shared loop of every bulk-ingestion path (snapshot
// load, WAL replay, benchmark loaders). Call Flush when the stream
// ends; the backing array is reused across flushes, so apply must not
// retain the batch.
type Chunker struct {
	batch Batch
	apply func(Batch)
}

// NewChunker returns a Chunker flushing every size ops.
func NewChunker(size int, apply func(Batch)) *Chunker {
	if size < 1 {
		size = 1
	}
	return &Chunker{batch: make(Batch, 0, size), apply: apply}
}

// Add queues one op, flushing if the chunk is full.
func (c *Chunker) Add(op Op) {
	c.batch = append(c.batch, op)
	if len(c.batch) == cap(c.batch) {
		c.Flush()
	}
}

// Insert queues an insert op.
func (c *Chunker) Insert(u, v uint64) { c.Add(InsertOp(u, v)) }

// Delete queues a delete op.
func (c *Chunker) Delete(u, v uint64) { c.Add(DeleteOp(u, v)) }

// Flush applies whatever is queued; a no-op when empty.
func (c *Chunker) Flush() {
	if len(c.batch) > 0 {
		c.apply(c.batch)
		c.batch = c.batch[:0]
	}
}

// batchCacheBits sizes applyBatch's direct-mapped Part-1 cache. 256
// entries (6 KiB of stack) covers the hot-node working set of a skewed
// stream while staying cheap to flush on invalidation.
const (
	batchCacheBits = 8
	batchCacheSize = 1 << batchCacheBits
)

// applyBatch is the engine's one mutation path: the exported single-op
// methods wrap it with a stack-allocated size-1 batch. Ops apply in
// order; `one` is the payload stored for a newly created edge. The two
// hooks supply variant semantics for ops that hit an existing edge:
// onDup (insert on a present edge) and onDel (delete on a present edge,
// returning whether the edge must be physically removed — false means
// it mutated the payload in place instead). A nil onDup makes duplicate
// inserts no-ops; a nil onDel always removes. onApplied, when non-nil,
// observes every op that physically inserted or deleted an edge, in
// application order — the hook the sharded layer uses to build the WAL
// record of a batch.
func (e *engine[W]) applyBatch(b Batch, one W, onDup, onDel func(*W) bool, onApplied func(Op)) BatchResult {
	var res BatchResult
	switch len(b) {
	case 0:
	case 1:
		// A size-1 batch — every single-op wrapper — skips the cell
		// cache: it could never get a second hit, and keeping the cache
		// arrays out of this function's frame keeps the hot single-op
		// path free of their ~4.5 KiB of stack zeroing (declared
		// unconditionally here, the compiler zeroes them per call even
		// on the size-1 path).
		e.applyOp(b[0], e.findPart2(b[0].U), one, onDup, onDel, onApplied, &res)
	default:
		res = e.applyBatchCached(b, one, onDup, onDel, onApplied)
	}
	return res
}

// applyBatchCached is the multi-op body of applyBatch, with the Part-1
// cache: a small direct-mapped table of u → cell pointer that amortizes
// the L-CHT probe across a batch — the hot nodes of a skewed stream
// recur every few ops, so most ops hit. Entries are pointers into the
// L-CHT (or L-DL) and stay valid only while no op restructures those
// tables: a cell insertion (kicks can relocate any cell, growth
// rebuilds tables) or a node removal (ditto, plus L-DL appends that may
// reallocate) flushes the cache. Everything else on the mutation path —
// the S-CHT chains, the S-DL, inline slots — lives outside the L-CHT.
// Direct mapping beats a per-node map: the probe being amortized is
// itself only a couple of bucket reads, so a Go map lookup would cost
// as much as it saves.
func (e *engine[W]) applyBatchCached(b Batch, one W, onDup, onDel func(*W) bool, onApplied func(Op)) BatchResult {
	var res BatchResult
	var (
		cacheU [batchCacheSize]uint64
		cacheP [batchCacheSize]*part2[W]
		cached [batchCacheSize]bool
	)
	for _, op := range b {
		var p *part2[W]
		// One Key64 per op serves both the cache index (top bits) and,
		// on a miss, the L-CHT probe itself — the hash is never
		// recomputed downstream.
		hu := hashutil.Key64(op.U)
		idx := hu >> (64 - batchCacheBits)
		if cached[idx] && cacheU[idx] == op.U {
			p = cacheP[idx]
		} else {
			p = e.findPart2Hashed(hu, op.U)
			cacheU[idx], cacheP[idx], cached[idx] = op.U, p, true
		}
		if e.applyOp(op, p, one, onDup, onDel, onApplied, &res) {
			cached = [batchCacheSize]bool{}
		}
	}
	return res
}

// applyOp applies one op given u's already-resolved cell (nil for an
// unknown u), reporting whether the L-CHT or L-DL was restructured —
// which invalidates any cached cell pointers, including p itself.
func (e *engine[W]) applyOp(op Op, p *part2[W], one W, onDup, onDel func(*W) bool, onApplied func(Op), res *BatchResult) bool {
	w := e.lookupIn(p, op.U, op.V)
	switch op.Kind {
	case OpInsert:
		if w != nil {
			if onDup != nil && onDup(w) {
				res.Updated++
			}
			return false
		}
		e.insertAt(p, op.U, op.V, one)
		res.Inserted++
		if onApplied != nil {
			onApplied(op)
		}
		// A brand-new cell went through insertCell, which may have
		// kicked, spilled or grown the L-CHT.
		return p == nil
	case OpDelete:
		if w == nil {
			return false
		}
		if onDel != nil && !onDel(w) {
			res.Updated++
			return false
		}
		_, _, restructured := e.deleteAt(op.U, op.V, p)
		res.Deleted++
		if onApplied != nil {
			onApplied(op)
		}
		return restructured
	}
	// Unknown kinds are ignored: the decoders that produce batches
	// (WAL replay, the wire protocol) reject them before this point.
	return false
}
