package core

// Multi is the multi-edge variant of CuckooGraph built for the Neo4j
// integration (§V-G): several distinct edges may share the same node
// pair ⟨u,v⟩, so the weight field of each S-CHT slot becomes a list of
// edge identifiers, and queries return an iterator over that list.
type Multi struct {
	e         *engine[[]uint64]
	edgeCount uint64 // total edges, counting parallel edges
}

// NewMulti returns an empty multi-edge CuckooGraph.
func NewMulti(cfg Config) *Multi {
	cfg = cfg.Defaults()
	return &Multi{e: newEngine[[]uint64](cfg, cfg.R)}
}

// InsertEdge records edge id between u and v. Parallel edges accumulate
// on the same ⟨u,v⟩ slot.
func (m *Multi) InsertEdge(u, v, id uint64) {
	m.edgeCount++
	cell, existing := m.e.locate(u, v)
	if existing != nil {
		*existing = append(*existing, id)
		return
	}
	m.e.insertAt(cell, u, v, []uint64{id})
}

// HasEdge reports whether any edge connects u to v.
func (m *Multi) HasEdge(u, v uint64) bool { return m.e.hasEdge(u, v) }

// Edges returns an iterator over the edge ids stored under ⟨u,v⟩.
// Obtaining the iterator is O(1) — the property the Neo4j experiment
// measures (§V-G: "the time cost of CuckooGraph's query to obtain the
// iterator of the linked list is O(1)").
func (m *Multi) Edges(u, v uint64) *EdgeIterator {
	p := m.e.refSlot(u, v)
	if p == nil {
		return &EdgeIterator{}
	}
	return &EdgeIterator{ids: *p}
}

// DeleteEdge removes the specific edge id between u and v, reporting
// whether it was found. The node pair disappears once its list empties.
func (m *Multi) DeleteEdge(u, v, id uint64) bool {
	p := m.e.refSlot(u, v)
	if p == nil {
		return false
	}
	ids := *p
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			*p = ids[:len(ids)-1]
			m.edgeCount--
			if len(*p) == 0 {
				m.e.deleteEdge(u, v)
			}
			return true
		}
	}
	return false
}

// ForEachSuccessor calls fn for every distinct successor v of u with the
// number of parallel edges to it.
func (m *Multi) ForEachSuccessor(u uint64, fn func(v uint64, parallel int) bool) {
	m.e.forEachSuccessor(u, func(v uint64, p *[]uint64) bool { return fn(v, len(*p)) })
}

// NumEdges returns the total number of edges including parallel ones.
func (m *Multi) NumEdges() uint64 { return m.edgeCount }

// NumPairs returns the number of distinct connected ⟨u,v⟩ pairs.
func (m *Multi) NumPairs() uint64 { return m.e.edges }

// MemoryUsage returns structural bytes: the core structure with an
// 8-byte list-head word per slot, plus 8 bytes per stored edge id.
func (m *Multi) MemoryUsage() uint64 {
	return m.e.memoryUsage(8) + m.edgeCount*8
}

// EdgeIterator walks the edge-id list of one ⟨u,v⟩ pair.
type EdgeIterator struct {
	ids []uint64
	i   int
}

// Next returns the next edge id; ok is false when exhausted.
func (it *EdgeIterator) Next() (id uint64, ok bool) {
	if it.i >= len(it.ids) {
		return 0, false
	}
	id = it.ids[it.i]
	it.i++
	return id, true
}

// Len returns the number of edge ids remaining.
func (it *EdgeIterator) Len() int { return len(it.ids) - it.i }
