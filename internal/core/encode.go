package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot format: a small header (magic, version, variant, edge count)
// followed by fixed-width little-endian edge records. The format is the
// basis of the Redis module's save_rdb hook and of the public
// Save/Load API.
const (
	snapMagic   = 0x43474752 // "CGGR"
	snapVersion = 1

	variantBasic    = 1
	variantWeighted = 2
)

// WriteBasicSnapshot writes a basic-variant snapshot holding edges
// edge records; iter must call emit exactly once per edge. The sharded
// engine shares this writer so its snapshots are byte-compatible with
// single-shard ones regardless of shard count.
func WriteBasicSnapshot(w io.Writer, edges uint64, iter func(emit func(u, v uint64) error) error) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, variantBasic, edges); err != nil {
		return err
	}
	if err := iter(func(u, v uint64) error { return writeU64s(bw, u, v) }); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBasicSnapshot streams the edges of a basic-variant snapshot to fn.
// Damaged input surfaces as a *CorruptError (matching ErrCorrupt) whose
// Offset is the byte position of the first bad byte.
func ReadBasicSnapshot(r io.Reader, fn func(u, v uint64) error) error {
	br := bufio.NewReader(r)
	n, err := readHeader(br, variantBasic)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		u, v, err := readEdge(br)
		if err != nil {
			return &CorruptError{
				Source: "snapshot",
				Offset: headerSize + int64(i)*16,
				Detail: fmt.Sprintf("edge %d/%d truncated", i, n),
				Err:    err,
			}
		}
		if err := fn(u, v); err != nil {
			return err
		}
	}
	return nil
}

// EmitEdges feeds every stored edge to emit, stopping at the first
// error. It is the shared iteration step of the snapshot writers.
func (g *Graph) EmitEdges(emit func(u, v uint64) error) error {
	var err error
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v uint64) bool {
			err = emit(u, v)
			return err == nil
		})
		return err == nil
	})
	return err
}

// Save writes every edge of the basic graph to w.
func (g *Graph) Save(w io.Writer) error {
	return WriteBasicSnapshot(w, g.NumEdges(), func(emit func(u, v uint64) error) error {
		return g.EmitEdges(emit)
	})
}

// LoadGraph reads a snapshot written by Save into a fresh graph with
// the given configuration.
func LoadGraph(r io.Reader, cfg Config) (*Graph, error) {
	g := NewGraph(cfg)
	if err := ReadBasicSnapshot(r, func(u, v uint64) error {
		g.InsertEdge(u, v)
		return nil
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// Save writes every edge of the weighted graph, with weights, to w.
func (w *Weighted) Save(dst io.Writer) error {
	bw := bufio.NewWriter(dst)
	if err := writeHeader(bw, variantWeighted, w.NumEdges()); err != nil {
		return err
	}
	var err error
	w.ForEachNode(func(u uint64) bool {
		w.ForEachSuccessor(u, func(v, weight uint64) bool {
			err = writeU64s(bw, u, v, weight)
			return err == nil
		})
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// LoadWeighted reads a snapshot written by Weighted.Save.
func LoadWeighted(r io.Reader, cfg Config) (*Weighted, error) {
	br := bufio.NewReader(r)
	n, err := readHeader(br, variantWeighted)
	if err != nil {
		return nil, err
	}
	w := NewWeighted(cfg)
	for i := uint64(0); i < n; i++ {
		u, v, err := readEdge(br)
		if err != nil {
			return nil, &CorruptError{
				Source: "snapshot",
				Offset: headerSize + int64(i)*24,
				Detail: fmt.Sprintf("edge %d/%d truncated", i, n),
				Err:    err,
			}
		}
		var weight uint64
		if err := binary.Read(br, binary.LittleEndian, &weight); err != nil {
			return nil, &CorruptError{
				Source: "snapshot",
				Offset: headerSize + int64(i)*24 + 16,
				Detail: fmt.Sprintf("weight %d/%d truncated", i, n),
				Err:    err,
			}
		}
		w.Add(u, v, weight)
	}
	return w, nil
}

// headerSize is the byte length of the snapshot header: magic (4),
// version (1), variant (1), edge count (8).
const headerSize = 14

func writeHeader(w io.Writer, variant byte, edges uint64) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	hdr[4] = snapVersion
	hdr[5] = variant
	binary.LittleEndian.PutUint64(hdr[6:], edges)
	_, err := w.Write(hdr[:])
	return err
}

func readHeader(r io.Reader, wantVariant byte) (uint64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, &CorruptError{Source: "snapshot", Offset: 0, Detail: "header truncated", Err: err}
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic {
		return 0, &CorruptError{Source: "snapshot", Offset: 0, Detail: "not a CuckooGraph snapshot"}
	}
	if hdr[4] != snapVersion {
		return 0, &CorruptError{Source: "snapshot", Offset: 4, Detail: fmt.Sprintf("unsupported snapshot version %d", hdr[4])}
	}
	if hdr[5] != wantVariant {
		return 0, &CorruptError{Source: "snapshot", Offset: 5, Detail: fmt.Sprintf("snapshot variant %d, want %d", hdr[5], wantVariant)}
	}
	return binary.LittleEndian.Uint64(hdr[6:]), nil
}

func writeU64s(w io.Writer, vals ...uint64) error {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readEdge(r io.Reader) (u, v uint64, err error) {
	var buf [16]byte
	if _, err = io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(buf[0:]), binary.LittleEndian.Uint64(buf[8:]), nil
}

// MaxVarintLen64 is the worst-case encoded size of one uvarint.
const MaxVarintLen64 = binary.MaxVarintLen64

// AppendUvarint appends v to buf in LEB128 form and returns the
// extended slice. It is the shared integer encoding of the variable-
// width persistence formats (WAL records; compact snapshot variants).
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// Uvarint decodes a uvarint from the front of buf, returning the value
// and the number of bytes consumed. n <= 0 reports the same failures as
// encoding/binary.Uvarint: 0 means buf is too short, < 0 means the
// value overflows 64 bits (and -n bytes were read).
func Uvarint(buf []byte) (uint64, int) {
	return binary.Uvarint(buf)
}

// ReadUvarint decodes a uvarint from r, byte by byte.
func ReadUvarint(r io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(r)
}
