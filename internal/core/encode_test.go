package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cuckoograph/internal/hashutil"
)

func TestGraphSaveLoadRoundTrip(t *testing.T) {
	g := NewGraph(Config{})
	rng := hashutil.NewRNG(5)
	type pair struct{ u, v uint64 }
	want := map[pair]bool{}
	for i := 0; i < 5000; i++ {
		p := pair{rng.Uint64n(400), rng.Uint64n(400)}
		g.InsertEdge(p.u, p.v)
		want[p] = true
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != uint64(len(want)) {
		t.Fatalf("loaded %d edges, want %d", g2.NumEdges(), len(want))
	}
	for p := range want {
		if !g2.HasEdge(p.u, p.v) {
			t.Fatalf("edge %v lost across save/load", p)
		}
	}
}

func TestWeightedSaveLoadRoundTrip(t *testing.T) {
	w := NewWeighted(Config{})
	for i := uint64(1); i <= 300; i++ {
		w.Add(i%20, i, i) // weight i
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWeighted(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumEdges() != w.NumEdges() {
		t.Fatalf("edges %d, want %d", w2.NumEdges(), w.NumEdges())
	}
	for i := uint64(1); i <= 300; i++ {
		got, ok := w2.Weight(i%20, i)
		if !ok || got != i {
			t.Fatalf("weight(%d,%d) = %d,%v; want %d", i%20, i, got, ok, i)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	g := NewGraph(Config{})
	g.InsertEdge(1, 2)
	var buf bytes.Buffer
	g.Save(&buf)
	data := buf.Bytes()

	// Truncated body.
	if _, err := LoadGraph(bytes.NewReader(data[:len(data)-4]), Config{}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := LoadGraph(bytes.NewReader(bad), Config{}); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Wrong variant (weighted loader on basic snapshot).
	if _, err := LoadWeighted(bytes.NewReader(data), Config{}); err == nil {
		t.Fatal("variant mismatch accepted")
	}
	// Bad version.
	bad = append([]byte(nil), data...)
	bad[4] = 99
	if _, err := LoadGraph(bytes.NewReader(bad), Config{}); err == nil {
		t.Fatal("bad version accepted")
	}
	// Empty input.
	if _, err := LoadGraph(bytes.NewReader(nil), Config{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSaveEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewGraph(Config{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

// TestSaveLoadSurvivesDenylistOccupancy saves a graph whose denylists
// are non-empty; the snapshot walks ForEachNode/ForEachSuccessor so
// parked items must be included.
func TestSaveLoadSurvivesDenylistOccupancy(t *testing.T) {
	g := NewGraph(Config{MaxKicks: 2, LCHTBase: 2, SCHTBase: 2, D: 1, LDLCap: 16, SDLCap: 16})
	rng := hashutil.NewRNG(3)
	type pair struct{ u, v uint64 }
	want := map[pair]bool{}
	for i := 0; i < 1000; i++ {
		p := pair{rng.Uint64n(100), rng.Uint64n(100)}
		g.InsertEdge(p.u, p.v)
		want[p] = true
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range want {
		if !g2.HasEdge(p.u, p.v) {
			t.Fatalf("edge %v (possibly denylisted) lost", p)
		}
	}
}

// TestCorruptionIsTyped pins the error contract the WAL and sharded
// restore paths assert on: snapshot damage matches ErrCorrupt and
// carries the offset of the first bad byte.
func TestCorruptionIsTyped(t *testing.T) {
	g := NewGraph(Config{})
	for i := uint64(0); i < 10; i++ {
		g.InsertEdge(i, i+1)
	}
	var buf bytes.Buffer
	g.Save(&buf)
	data := buf.Bytes()

	_, err := LoadGraph(bytes.NewReader(data[:len(data)-4]), Config{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot: err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated snapshot: err = %v, want *CorruptError", err)
	}
	// The torn edge is the last one: header + 9 intact 16-byte records.
	if want := int64(14 + 9*16); ce.Offset != want {
		t.Fatalf("offset = %d, want %d", ce.Offset, want)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("underlying cause lost: %v", err)
	}
}

func TestUvarintHelpers(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, ^uint64(0)}
	var buf []byte
	for _, v := range vals {
		buf = AppendUvarint(buf, v)
	}
	rest := buf
	for i, want := range vals {
		got, n := Uvarint(rest)
		if n <= 0 || got != want {
			t.Fatalf("Uvarint #%d = (%d, %d), want %d", i, got, n, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	br := bytes.NewReader(buf)
	for i, want := range vals {
		got, err := ReadUvarint(br)
		if err != nil || got != want {
			t.Fatalf("ReadUvarint #%d = (%d, %v), want %d", i, got, err, want)
		}
	}
}
