package core

// Graph is the basic version of CuckooGraph (§III-A): a directed graph
// of distinct edges ⟨u,v⟩. Inserting an existing edge is a no-op.
type Graph struct {
	e *engine[struct{}]
}

// NewGraph returns an empty basic CuckooGraph.
func NewGraph(cfg Config) *Graph {
	cfg = cfg.Defaults()
	// Basic version: Part 2 is 2R small slots, each holding one v.
	return &Graph{e: newEngine[struct{}](cfg, 2*cfg.R)}
}

// InsertEdge adds ⟨u,v⟩, reporting whether it was newly inserted
// (insertion Step 1 of §III-A3 first queries for the edge). It is a
// size-1 batch: ApplyBatch is the only mutation path.
func (g *Graph) InsertEdge(u, v uint64) bool {
	b := [1]Op{InsertOp(u, v)}
	return g.ApplyBatch(b[:]).Inserted == 1
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (g *Graph) HasEdge(u, v uint64) bool { return g.e.hasEdge(u, v) }

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed. Deletions may
// trigger reverse transformations (§III-A1).
func (g *Graph) DeleteEdge(u, v uint64) bool {
	b := [1]Op{DeleteOp(u, v)}
	return g.ApplyBatch(b[:]).Deleted == 1
}

// ApplyBatch applies the ops in order with basic-variant semantics:
// duplicate inserts and deletes of absent edges are no-ops. The result
// is identical — down to the physical structure and every Stats
// counter — to applying the same ops one by one; the batch form
// amortizes the Part-1 cell lookup across ops sharing a source node.
func (g *Graph) ApplyBatch(b Batch) BatchResult { return g.ApplyBatchFunc(b, nil) }

// ApplyBatchFunc is ApplyBatch with an observer: onApplied (if non-nil)
// is called for every op that changed the graph, in application order.
// Durability layers use it to log exactly the applied sub-batch.
func (g *Graph) ApplyBatchFunc(b Batch, onApplied func(Op)) BatchResult {
	return g.e.applyBatch(b, struct{}{}, nil, nil, onApplied)
}

// ForEachSuccessor calls fn for every successor of u until fn returns
// false.
func (g *Graph) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	g.e.forEachSuccessor(u, func(v uint64, _ *struct{}) bool { return fn(v) })
}

// AppendSuccessors appends every successor of u to dst and returns the
// extended slice (nil input stays nil for a node with no edges). It is
// the copy-on-write hook of the snapshot subsystem: when a frozen view
// is live, a mutation's flight path — exactly the cells the mutation is
// about to restructure — is preserved by copying the affected node's
// adjacency through this method, and nothing else is ever copied.
func (g *Graph) AppendSuccessors(u uint64, dst []uint64) []uint64 {
	g.e.forEachSuccessor(u, func(v uint64, _ *struct{}) bool {
		dst = append(dst, v)
		return true
	})
	return dst
}

// Degree returns u's out-degree without iterating the adjacency:
// inline slots and S-CHT chains track their population directly.
func (g *Graph) Degree(u uint64) int { return g.e.degree(u) }

// ForEachNode calls fn for every node with at least one out-edge.
func (g *Graph) ForEachNode(fn func(u uint64) bool) { g.e.forEachNode(fn) }

// NumEdges returns the number of distinct edges stored.
func (g *Graph) NumEdges() uint64 { return g.e.edges }

// NumNodes returns the number of distinct source nodes stored.
func (g *Graph) NumNodes() uint64 { return g.e.nodes }

// MemoryUsage returns the structural bytes of the whole structure.
func (g *Graph) MemoryUsage() uint64 { return g.e.memoryUsage(0) }

// Stats returns structural counters for experiments.
func (g *Graph) Stats() Stats { return g.e.stats() }

// Weighted is the extended version of CuckooGraph for streaming
// scenarios with duplicate edges (§III-B). Each distinct ⟨u,v⟩ carries a
// weight w; inserting an existing edge increments w, deleting decrements
// it and removes the edge at zero. Part 2 holds R inline ⟨v,w⟩ slots
// (two small slots per record).
type Weighted struct {
	e *engine[uint64]
}

// NewWeighted returns an empty weighted CuckooGraph.
func NewWeighted(cfg Config) *Weighted {
	cfg = cfg.Defaults()
	return &Weighted{e: newEngine[uint64](cfg, cfg.R)}
}

// InsertEdge adds one occurrence of ⟨u,v⟩ and reports whether the edge
// is new (weight transitioned 0→1). Like every weighted mutation it is
// a size-1 batch over the shared batch path.
func (w *Weighted) InsertEdge(u, v uint64) bool { return w.Add(u, v, 1) }

// Add adds delta occurrences of ⟨u,v⟩, reporting whether the edge is new.
func (w *Weighted) Add(u, v, delta uint64) bool {
	b := [1]Op{InsertOp(u, v)}
	res := w.e.applyBatch(b[:], delta,
		func(p *uint64) bool { *p += delta; return true }, nil, nil)
	return res.Inserted == 1
}

// ApplyBatch applies the ops in order with weighted semantics: an
// insert on an existing edge increments its weight, a delete decrements
// and removes the edge at zero. Inserted counts 0→1 transitions,
// Deleted counts edges whose weight reached zero, Updated counts
// in-place weight changes.
func (w *Weighted) ApplyBatch(b Batch) BatchResult {
	return w.e.applyBatch(b, 1,
		func(p *uint64) bool { *p++; return true },
		weightedDelete, nil)
}

// weightedDelete is the weighted delete hook: decrement in place until
// the last occurrence, then ask for physical removal.
func weightedDelete(p *uint64) bool {
	if *p > 1 {
		*p--
		return false
	}
	return true
}

// HasEdge reports whether ⟨u,v⟩ has weight ≥ 1.
func (w *Weighted) HasEdge(u, v uint64) bool { return w.e.hasEdge(u, v) }

// Weight returns the weight of ⟨u,v⟩ and whether it exists.
func (w *Weighted) Weight(u, v uint64) (uint64, bool) {
	if p := w.e.refSlot(u, v); p != nil {
		return *p, true
	}
	return 0, false
}

// DeleteEdge removes one occurrence of ⟨u,v⟩; the edge disappears when
// its weight reaches zero. It reports whether the edge existed.
func (w *Weighted) DeleteEdge(u, v uint64) bool {
	b := [1]Op{DeleteOp(u, v)}
	return w.e.applyBatch(b[:], 0, nil, weightedDelete, nil).Applied() == 1
}

// DeleteAll removes the edge regardless of weight.
func (w *Weighted) DeleteAll(u, v uint64) bool {
	_, ok := w.e.deleteEdge(u, v)
	return ok
}

// ForEachSuccessor calls fn with every successor of u and its weight.
func (w *Weighted) ForEachSuccessor(u uint64, fn func(v, weight uint64) bool) {
	w.e.forEachSuccessor(u, func(v uint64, p *uint64) bool { return fn(v, *p) })
}

// Degree returns u's out-degree (distinct successors) without
// iterating the adjacency.
func (w *Weighted) Degree(u uint64) int { return w.e.degree(u) }

// ForEachNode calls fn for every node with at least one out-edge.
func (w *Weighted) ForEachNode(fn func(u uint64) bool) { w.e.forEachNode(fn) }

// NumEdges returns the number of distinct edges.
func (w *Weighted) NumEdges() uint64 { return w.e.edges }

// NumNodes returns the number of distinct source nodes.
func (w *Weighted) NumNodes() uint64 { return w.e.nodes }

// MemoryUsage returns the structural bytes of the whole structure.
func (w *Weighted) MemoryUsage() uint64 { return w.e.memoryUsage(8) }

// Stats returns structural counters for experiments.
func (w *Weighted) Stats() Stats { return w.e.stats() }
