package core

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the sentinel matched by errors.Is for any snapshot or
// write-ahead-log corruption. Callers that need the location of the
// damage unwrap the concrete *CorruptError with errors.As.
var ErrCorrupt = errors.New("corrupt data")

// CorruptError describes damaged persistent data: which artifact was
// being read, the byte offset of the first bad byte, and what was wrong
// with it. It matches ErrCorrupt under errors.Is and unwraps to the
// underlying I/O error, if any.
type CorruptError struct {
	// Source names the artifact, e.g. "snapshot" or a WAL segment file.
	Source string
	// Offset is the byte offset within Source of the first bad byte.
	Offset int64
	// Detail says what was wrong at Offset.
	Detail string
	// Err is the underlying cause (io.ErrUnexpectedEOF, ...), if any.
	Err error
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("core: corrupt %s at offset %d: %s", e.Source, e.Offset, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is reports ErrCorrupt so errors.Is(err, ErrCorrupt) matches any
// corruption regardless of source or offset.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Unwrap exposes the underlying I/O error to errors.Is/errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }
