package core

import "testing"

// The engine read path — Contains/HasEdge, Degree, ForEachSuccessor —
// must be allocation-free end to end, on inline cells and on S-CHT
// chains alike. These regression tests pin it with AllocsPerRun.

// buildReadGraph returns a graph with one inline node (degree 1), one
// full-inline node (degree 2R) and one chained node (degree 64).
func buildReadGraph(t *testing.T) (g *Graph, inline1, inline2R, chained uint64) {
	t.Helper()
	g = NewGraph(Config{})
	inline1, inline2R, chained = 101, 202, 303
	g.InsertEdge(inline1, 1)
	for v := uint64(1); v <= uint64(2*g.e.cfg.R); v++ {
		g.InsertEdge(inline2R, v)
	}
	for v := uint64(1); v <= 64; v++ {
		g.InsertEdge(chained, v)
	}
	if st := g.Stats(); st.Chains != 1 {
		t.Fatalf("expected exactly one chained node, got %d", st.Chains)
	}
	return g, inline1, inline2R, chained
}

func TestHasEdgeZeroAlloc(t *testing.T) {
	g, inline1, inline2R, chained := buildReadGraph(t)
	if n := testing.AllocsPerRun(200, func() {
		if !g.HasEdge(inline1, 1) || !g.HasEdge(inline2R, 2) || !g.HasEdge(chained, 33) {
			t.Fatal("present edge missing")
		}
		if g.HasEdge(chained, 1<<40) || g.HasEdge(9999, 1) {
			t.Fatal("phantom edge")
		}
	}); n != 0 {
		t.Fatalf("HasEdge allocates %.1f/op, want 0", n)
	}
}

func TestDegreeZeroAlloc(t *testing.T) {
	g, inline1, inline2R, chained := buildReadGraph(t)
	if n := testing.AllocsPerRun(200, func() {
		if g.Degree(inline1) != 1 || g.Degree(inline2R) != 2*g.e.cfg.R || g.Degree(chained) != 64 {
			t.Fatal("wrong degree")
		}
		if g.Degree(9999) != 0 {
			t.Fatal("phantom degree")
		}
	}); n != 0 {
		t.Fatalf("Degree allocates %.1f/op, want 0", n)
	}
}

func TestForEachSuccessorZeroAlloc(t *testing.T) {
	g, inline1, inline2R, chained := buildReadGraph(t)
	var count int
	if n := testing.AllocsPerRun(100, func() {
		for _, u := range [...]uint64{inline1, inline2R, chained} {
			count = 0
			g.ForEachSuccessor(u, func(uint64) bool {
				count++
				return true
			})
		}
	}); n != 0 {
		t.Fatalf("ForEachSuccessor allocates %.1f/run, want 0", n)
	}
	if count != 64 {
		t.Fatalf("chained scan visited %d, want 64", count)
	}
}

func TestWeightedForEachSuccessorZeroAlloc(t *testing.T) {
	w := NewWeighted(Config{})
	u := uint64(7)
	for v := uint64(1); v <= 64; v++ {
		w.InsertEdge(u, v)
		w.InsertEdge(u, v) // weight 2
	}
	var sum uint64
	if n := testing.AllocsPerRun(100, func() {
		sum = 0
		w.ForEachSuccessor(u, func(_, weight uint64) bool {
			sum += weight
			return true
		})
	}); n != 0 {
		t.Fatalf("Weighted.ForEachSuccessor allocates %.1f/run, want 0", n)
	}
	if sum != 128 {
		t.Fatalf("weight sum = %d, want 128", sum)
	}
	if w.Degree(u) != 64 {
		t.Fatalf("Degree = %d, want 64", w.Degree(u))
	}
}

// TestMemoryUsageCountsTagBytes pins the §IV space accounting of the
// fingerprint-tag layout: every cell costs 8 B of Part 1 plus its
// payload plus exactly 1 B of tag (the tag replaced the retired
// occupancy byte, so the space model is unchanged), and the total is
// reconstructable from Stats.
func TestMemoryUsageCountsTagBytes(t *testing.T) {
	g := NewGraph(Config{})
	st := g.Stats()
	if st.Chains != 0 || st.LDLLen != 0 || st.SDLLen != 0 {
		t.Fatal("fresh graph not empty")
	}
	part2Bytes := 2 * g.e.cfg.R * 8
	perCell := uint64(8 + part2Bytes + 1) // key + Part 2 + tag byte
	// Chain.MemoryBytes adds a 64 B header and an 8 B slot per table.
	want := uint64(st.LCHTCells)*perCell + uint64(st.LCHTTables)*(64+8)
	if got := g.MemoryUsage(); got != want {
		t.Fatalf("MemoryUsage = %d, want %d (cells %d × %d + headers)", got, want, st.LCHTCells, perCell)
	}
}
