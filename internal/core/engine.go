package core

import (
	"cuckoograph/internal/cuckoo"
	"cuckoograph/internal/hashutil"
)

// slot is one neighbour record: the end node v plus the variant's
// per-edge payload (nothing for the basic version, a weight for the
// extended version, an edge-id list for the multi-edge version).
type slot[W any] struct {
	v uint64
	w W
}

// part2 is Part 2 of an L-CHT cell (§III-A1). It starts as inline small
// slots and transforms into a pointer to an S-CHT chain once the node's
// degree exceeds the inline capacity.
type part2[W any] struct {
	inline []slot[W]        // nil once chain is active
	chain  *cuckoo.Chain[W] // nil while inline
}

// sdlEntry is one unit of the S-DL: a complete ⟨u,v⟩ pair (§III-A2)
// plus the variant payload.
type sdlEntry[W any] struct {
	u uint64
	s slot[W]
}

// ldlEntry is one unit of the L-DL. It mirrors a whole L-CHT cell —
// u together with its Part 2 — so that a kicked-out u keeps its S-CHT
// chain without any copying (§III-A2).
type ldlEntry[W any] struct {
	u uint64
	p part2[W]
}

// engine is the variant-independent CuckooGraph machinery. The exported
// Graph, WeightedGraph and MultiGraph wrap it with their edge semantics.
type engine[W any] struct {
	cfg       Config
	inlineCap int // 2R for the basic version, R for weighted/multi

	lcht *cuckoo.Chain[part2[W]]
	ldl  []ldlEntry[W]
	sdl  []sdlEntry[W]

	nodes uint64
	edges uint64

	// drainBuf is the reusable scratch of chain collapses: dismantling
	// an S-CHT back to inline slots drains into it instead of
	// allocating a fresh []Entry per reverse transformation.
	drainBuf []cuckoo.Entry[W]

	// Retired statistics from collapsed chains (reverse transformation
	// back to inline slots discards the chain object).
	schtKicksRetired      uint64
	schtPlacementsRetired uint64

	seedTick uint64
}

func newEngine[W any](cfg Config, inlineCap int) *engine[W] {
	cfg = cfg.Defaults()
	e := &engine[W]{cfg: cfg, inlineCap: inlineCap}
	e.lcht = cuckoo.NewChain[part2[W]](cfg.LCHTBase, cfg.chainConfig())
	return e
}

// newChainSeed derives a distinct deterministic seed per S-CHT chain.
func (e *engine[W]) newChainSeed() uint64 {
	e.seedTick++
	return e.cfg.Seed*0x9E3779B97F4A7C15 + e.seedTick*0xBF58476D1CE4E5B9
}

// findPart2 locates u's cell in the L-CHT chain or the L-DL (query
// Step 1 of §III-A3), hashing u once.
func (e *engine[W]) findPart2(u uint64) *part2[W] {
	return e.findPart2Hashed(hashutil.Key64(u), u)
}

// findPart2Hashed is findPart2 with u's hash already computed — the
// batch path derives its cell-cache index from the same hash, so one
// Key64 serves both the cache probe and the L-CHT probe.
func (e *engine[W]) findPart2Hashed(hu, u uint64) *part2[W] {
	if p := e.lcht.RefHashed(hu, u); p != nil {
		return p
	}
	for i := range e.ldl {
		if e.ldl[i].u == u {
			return &e.ldl[i].p
		}
	}
	return nil
}

// locate resolves ⟨u,v⟩ in one pass: it returns u's cell (nil for an
// unknown u) and a mutable pointer to v's payload wherever the edge
// lives — inline, in the S-CHT chain, or in the S-DL — or nil if the
// edge is absent. This fuses query Steps 1 and 2 of §III-A3 so Insert
// needs a single probe for its duplicate check.
func (e *engine[W]) locate(u, v uint64) (*part2[W], *W) {
	p := e.findPart2(u)
	return p, e.lookupIn(p, u, v)
}

// lookupIn is the Step-2 half of locate: given u's cell (possibly nil),
// it resolves v's payload in the cell or the S-DL. Splitting it out
// lets applyBatch reuse a cached cell pointer across a batch.
func (e *engine[W]) lookupIn(p *part2[W], u, v uint64) *W {
	if p != nil {
		if p.chain != nil {
			if w := p.chain.Ref(v); w != nil {
				return w
			}
		} else {
			for i := range p.inline {
				if p.inline[i].v == v {
					return &p.inline[i].w
				}
			}
		}
	}
	for i := range e.sdl {
		if e.sdl[i].u == u && e.sdl[i].s.v == v {
			return &e.sdl[i].s.w
		}
	}
	return nil
}

// refSlot returns a mutable pointer to ⟨u,v⟩'s payload, or nil.
func (e *engine[W]) refSlot(u, v uint64) *W {
	_, w := e.locate(u, v)
	return w
}

func (e *engine[W]) hasEdge(u, v uint64) bool { return e.refSlot(u, v) != nil }

// insertAt stores a verified-absent edge, reusing the cell pointer from
// a preceding locate. It always succeeds: failures cascade into the
// denylists, and full denylists force transformations.
func (e *engine[W]) insertAt(p *part2[W], u, v uint64, w W) {
	e.edges++
	if p != nil {
		e.insertIntoPart2(u, p, slot[W]{v: v, w: w})
		return
	}
	// First neighbour of a brand-new u (insertion Step 2, case ①/②).
	e.nodes++
	inline := make([]slot[W], 1, e.inlineCap)
	inline[0] = slot[W]{v: v, w: w}
	e.insertCell(u, part2[W]{inline: inline})
}

// insertCell places a whole cell (u + Part 2) into the L-CHT, spilling
// to the L-DL on failure and forcing growth when the L-DL is full.
func (e *engine[W]) insertCell(u uint64, p part2[W]) {
	work := []cuckoo.Entry[part2[W]]{{Key: u, Val: p}}
	for len(work) > 0 {
		cell := work[len(work)-1]
		work = work[:len(work)-1]
		leftovers, grew := e.lcht.Insert(cell.Key, cell.Val)
		if grew {
			e.drainLDL()
		}
		if len(leftovers) == 0 {
			continue
		}
		if !e.cfg.DisableDenylist && len(e.ldl)+len(leftovers) <= e.cfg.LDLCap {
			for _, lo := range leftovers {
				e.ldl = append(e.ldl, ldlEntry[W]{u: lo.Key, p: lo.Val})
			}
			continue
		}
		// Denylist disabled or full: force an expansion and retry, the
		// paper's fallback behaviour.
		for _, s := range e.lcht.Grow() {
			work = append(work, s)
		}
		e.drainLDL()
		work = append(work, leftovers...)
	}
}

// drainLDL re-tries every L-DL resident after an L-CHT expansion.
func (e *engine[W]) drainLDL() {
	if len(e.ldl) == 0 {
		return
	}
	// Copy: re-insertion failures append to e.ldl, which must not alias
	// the entries still being drained.
	pending := append([]ldlEntry[W](nil), e.ldl...)
	e.ldl = e.ldl[:0]
	for _, c := range pending {
		leftovers, grew := e.lcht.Insert(c.u, c.p)
		if grew {
			// A nested growth re-queues what is already drained.
			e.drainLDL()
		}
		for _, lo := range leftovers {
			e.ldl = append(e.ldl, ldlEntry[W]{u: lo.Key, p: lo.Val})
		}
	}
}

// insertIntoPart2 adds a neighbour slot to an existing cell, applying
// TRANSFORMATION when the inline slots overflow (§III-A1 step ②).
func (e *engine[W]) insertIntoPart2(u uint64, p *part2[W], s slot[W]) {
	if p.chain == nil {
		if len(p.inline) < e.inlineCap {
			p.inline = append(p.inline, s)
			return
		}
		// 2R small slots full: merge them into R large slots, enable the
		// 1st S-CHT and transfer every v into it.
		cfg := e.cfg.chainConfig()
		cfg.Seed = e.newChainSeed()
		p.chain = cuckoo.NewChain[W](e.cfg.SCHTBase, cfg)
		for _, old := range p.inline {
			e.chainInsert(u, p.chain, old)
		}
		p.inline = nil
	}
	e.chainInsert(u, p.chain, s)
}

// chainInsert inserts one slot into u's S-CHT chain, handling denylist
// spill and drain-on-expansion.
func (e *engine[W]) chainInsert(u uint64, c *cuckoo.Chain[W], s slot[W]) {
	work := []slot[W]{s}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		leftovers, grew := c.Insert(cur.v, cur.w)
		if grew {
			e.drainSDLInto(u, c)
		}
		if len(leftovers) == 0 {
			continue
		}
		if !e.cfg.DisableDenylist && len(e.sdl)+len(leftovers) <= e.cfg.SDLCap {
			for _, lo := range leftovers {
				e.sdl = append(e.sdl, sdlEntry[W]{u: u, s: slot[W]{v: lo.Key, w: lo.Val}})
			}
			continue
		}
		for _, spill := range c.Grow() {
			work = append(work, slot[W]{v: spill.Key, w: spill.Val})
		}
		e.drainSDLInto(u, c)
		for _, lo := range leftovers {
			work = append(work, slot[W]{v: lo.Key, w: lo.Val})
		}
	}
}

// drainSDLInto moves S-DL entries whose u matches the expanding chain
// into it (§III-A2 step 3: "we insert those v′′ in S-DL whose u′′
// exactly match ... into the new S-CHT").
func (e *engine[W]) drainSDLInto(u uint64, c *cuckoo.Chain[W]) {
	kept := e.sdl[:0]
	var moved []slot[W]
	for _, entry := range e.sdl {
		if entry.u == u {
			moved = append(moved, entry.s)
		} else {
			kept = append(kept, entry)
		}
	}
	e.sdl = kept
	for _, s := range moved {
		leftovers, _ := c.Insert(s.v, s.w)
		for _, lo := range leftovers {
			e.sdl = append(e.sdl, sdlEntry[W]{u: u, s: slot[W]{v: lo.Key, w: lo.Val}})
		}
	}
}

// deleteEdge removes ⟨u,v⟩ wherever it lives, returning its payload.
func (e *engine[W]) deleteEdge(u, v uint64) (W, bool) {
	w, ok, _ := e.deleteAt(u, v, e.findPart2(u))
	return w, ok
}

// deleteAt removes ⟨u,v⟩ given u's already-located cell (nil when u has
// none). Reverse transformations may contract the chain or collapse it
// back to inline slots; an empty cell removes u entirely. The third
// result reports whether the L-CHT (or L-DL) was restructured — which
// invalidates any cached cell pointers, including p itself.
func (e *engine[W]) deleteAt(u, v uint64, p *part2[W]) (W, bool, bool) {
	var zero W
	// The pair may be parked in the S-DL.
	for i := range e.sdl {
		if e.sdl[i].u == u && e.sdl[i].s.v == v {
			w := e.sdl[i].s.w
			e.sdl = append(e.sdl[:i], e.sdl[i+1:]...)
			e.edges--
			return w, true, false
		}
	}
	if p == nil {
		return zero, false, false
	}
	if p.chain != nil {
		hv := hashutil.Key64(v)
		w, ok := p.chain.LookupHashed(hv, v)
		if !ok {
			return zero, false, false
		}
		leftovers, _ := p.chain.DeleteHashed(hv, v)
		for _, lo := range leftovers {
			e.sdl = append(e.sdl, sdlEntry[W]{u: u, s: slot[W]{v: lo.Key, w: lo.Val}})
		}
		e.edges--
		return w, true, e.maybeCollapse(u, p)
	}
	for i := range p.inline {
		if p.inline[i].v == v {
			w := p.inline[i].w
			p.inline[i] = p.inline[len(p.inline)-1]
			p.inline = p.inline[:len(p.inline)-1]
			e.edges--
			e.fillInlineFromSDL(u, p)
			if len(p.inline) == 0 {
				e.removeNode(u)
				return w, true, true
			}
			return w, true, false
		}
	}
	return zero, false, false
}

// maybeCollapse applies the final step of reverse transformation: when a
// chain's population fits back into the 2R inline small slots, the chain
// is dismantled and the cell returns to inline form. It reports whether
// the (now empty) cell was removed from the L-CHT.
func (e *engine[W]) maybeCollapse(u uint64, p *part2[W]) bool {
	if p.chain == nil || p.chain.Size() > e.inlineCap {
		return false
	}
	e.schtKicksRetired += p.chain.Kicks()
	e.schtPlacementsRetired += p.chain.Placements()
	// Drain through the engine's reusable buffer: collapsing a chain
	// back to inline slots allocates only the inline slice itself.
	e.drainBuf = p.chain.DrainInto(e.drainBuf[:0])
	p.chain = nil
	p.inline = make([]slot[W], 0, e.inlineCap)
	for _, en := range e.drainBuf {
		p.inline = append(p.inline, slot[W]{v: en.Key, w: en.Val})
	}
	// Drop the drained payload copies so the buffer pins nothing
	// between collapses (the tail beyond len is already zero: every
	// release leaves the buffer zeroed and refills append from empty).
	clear(e.drainBuf)
	e.drainBuf = e.drainBuf[:0]
	e.fillInlineFromSDL(u, p)
	if len(p.inline) == 0 {
		e.removeNode(u)
		return true
	}
	return false
}

// fillInlineFromSDL pulls parked ⟨u,·⟩ pairs back into freed inline
// slots so no edge is stranded in the S-DL when its cell has room.
func (e *engine[W]) fillInlineFromSDL(u uint64, p *part2[W]) {
	if p.chain != nil {
		return
	}
	kept := e.sdl[:0]
	for _, entry := range e.sdl {
		if entry.u == u && len(p.inline) < e.inlineCap {
			p.inline = append(p.inline, entry.s)
		} else {
			kept = append(kept, entry)
		}
	}
	e.sdl = kept
}

// removeNode deletes u's (empty) cell from the L-CHT or L-DL.
func (e *engine[W]) removeNode(u uint64) {
	for i := range e.ldl {
		if e.ldl[i].u == u {
			e.ldl = append(e.ldl[:i], e.ldl[i+1:]...)
			e.nodes--
			return
		}
	}
	leftovers, deleted := e.lcht.Delete(u)
	for _, lo := range leftovers {
		e.ldl = append(e.ldl, ldlEntry[W]{u: lo.Key, p: lo.Val})
	}
	if deleted {
		e.nodes--
	}
}

// forEachSuccessor visits every stored neighbour of u. The chain case
// hands fn straight to ForEachRef — no per-entry payload copy, no
// adapter closure — keeping the whole iteration allocation-free.
func (e *engine[W]) forEachSuccessor(u uint64, fn func(v uint64, w *W) bool) {
	if p := e.findPart2(u); p != nil {
		if p.chain != nil {
			if !p.chain.ForEachRef(fn) {
				return
			}
		} else {
			for i := range p.inline {
				if !fn(p.inline[i].v, &p.inline[i].w) {
					return
				}
			}
		}
	}
	for i := range e.sdl {
		if e.sdl[i].u == u {
			if !fn(e.sdl[i].s.v, &e.sdl[i].s.w) {
				return
			}
		}
	}
}

// degree counts u's neighbours without iterating them: inline slots and
// S-CHT chains both track their population, so only parked S-DL pairs
// need a scan. O(R + |S-DL|) instead of O(degree).
func (e *engine[W]) degree(u uint64) int {
	n := 0
	if p := e.findPart2(u); p != nil {
		if p.chain != nil {
			n = p.chain.Size()
		} else {
			n = len(p.inline)
		}
	}
	for i := range e.sdl {
		if e.sdl[i].u == u {
			n++
		}
	}
	return n
}

// forEachNode visits every stored source node u.
func (e *engine[W]) forEachNode(fn func(u uint64) bool) {
	stop := false
	e.lcht.ForEach(func(u uint64, _ part2[W]) bool {
		if !fn(u) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	for i := range e.ldl {
		if !fn(e.ldl[i].u) {
			return
		}
	}
}

// memoryUsage sums structural bytes following the paper's cell layout:
// every L-CHT cell is 8 B (Part 1) + 2R·8 B (Part 2, small slots or
// large pointer slots) + 1 B occupancy; S-CHT cells are 8 B per v plus
// the variant payload; denylists count their entry sizes.
func (e *engine[W]) memoryUsage(slotPayloadBytes int) uint64 {
	part2Bytes := 2 * e.cfg.R * 8
	total := e.lcht.MemoryBytes(part2Bytes)
	e.lcht.ForEach(func(_ uint64, p part2[W]) bool {
		if p.chain != nil {
			total += p.chain.MemoryBytes(slotPayloadBytes)
		}
		return true
	})
	for i := range e.ldl {
		total += uint64(8 + part2Bytes)
		if e.ldl[i].p.chain != nil {
			total += e.ldl[i].p.chain.MemoryBytes(slotPayloadBytes)
		}
	}
	total += uint64(len(e.sdl)) * uint64(16+slotPayloadBytes)
	return total
}

// Stats reports structural counters for the experiments of §IV and §V-B.
type Stats struct {
	Nodes, Edges    uint64
	LCHTTables      int
	LCHTCells       int
	LCHTLoadRate    float64
	LCHTKicks       uint64
	LCHTPlacements  uint64
	Chains          int
	ChainCells      int
	ChainEntries    int
	SCHTKicks       uint64
	SCHTPlacements  uint64
	LDLLen, SDLLen  int
	Transformations uint64
}

func (e *engine[W]) stats() Stats {
	st := Stats{
		Nodes:           e.nodes,
		Edges:           e.edges,
		LCHTTables:      e.lcht.Tables(),
		LCHTCells:       e.lcht.Cells(),
		LCHTLoadRate:    e.lcht.OverallLoadRate(),
		LCHTKicks:       e.lcht.Kicks(),
		LCHTPlacements:  e.lcht.Placements(),
		SCHTKicks:       e.schtKicksRetired,
		SCHTPlacements:  e.schtPlacementsRetired,
		LDLLen:          len(e.ldl),
		SDLLen:          len(e.sdl),
		Transformations: e.lcht.Transformations(),
	}
	visit := func(p *part2[W]) {
		if p.chain == nil {
			return
		}
		st.Chains++
		st.ChainCells += p.chain.Cells()
		st.ChainEntries += p.chain.Size()
		st.SCHTKicks += p.chain.Kicks()
		st.SCHTPlacements += p.chain.Placements()
		st.Transformations += p.chain.Transformations()
	}
	e.lcht.ForEach(func(_ uint64, p part2[W]) bool {
		visit(&p)
		return true
	})
	for i := range e.ldl {
		visit(&e.ldl[i].p)
	}
	return st
}
