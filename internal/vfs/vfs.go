// Package vfs is the filesystem seam under the durability plane: the
// small slice of os-level behaviour the WAL and checkpoint paths need
// (open/create, write, sync, rename, remove, directory sync, advisory
// locking), expressed as an interface so tests can substitute a
// deterministic fault injector.
//
// OsFS is the production implementation — a zero-cost passthrough to
// the os package. FaultFS (fault.go) wraps any FS and can fail the Nth
// matching operation with a chosen errno (ENOSPC, EIO), cut a write
// short, and record a full trace of mutating operations that
// MaterializeTrace can replay — truncated or zero-torn at an arbitrary
// cut point — to simulate a power cut for crash-consistency testing.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// File is the slice of *os.File behaviour the durability plane uses.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	Stat() (fs.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the mutating filesystem operations of one directory
// tree. Implementations must be safe for concurrent use: the WAL's
// group-commit leader writes while checkpoints create, rename and
// remove files in the same directory.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (flag is the usual
	// os.O_* bitmask).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so renames and removals inside it are
	// durable.
	SyncDir(dir string) error
	// Flock takes a non-blocking exclusive advisory lock on an open
	// file; the lock is released when the file is closed (or the owning
	// process dies).
	Flock(f File) error
}

// OS is the passthrough FS used by production code paths.
var OS FS = OsFS{}

// OsFS implements FS directly on the os package.
type OsFS struct{}

// OpenFile opens the file through os.OpenFile.
func (OsFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return an explicit nil interface: boxing the nil *os.File
		// would make the caller's f != nil check lie.
		return nil, err
	}
	return f, nil
}

// Rename renames through os.Rename.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes through os.Remove.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll creates the directory tree through os.MkdirAll.
func (OsFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir lists through os.ReadDir.
func (OsFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Stat stats through os.Stat.
func (OsFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir opens the directory and fsyncs it.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Flock takes LOCK_EX|LOCK_NB on the file's descriptor.
func (OsFS) Flock(f File) error {
	fd, ok := f.(interface{ Fd() uintptr })
	if !ok {
		return fmt.Errorf("vfs: file %s exposes no descriptor to lock", f.Name())
	}
	return syscall.Flock(int(fd.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

// tempSeq distinguishes CreateTemp names within one process.
var tempSeq atomic.Uint64

// CreateTemp mirrors os.CreateTemp on an arbitrary FS: it creates a
// new file in dir whose name is pattern with the last "*" (or a
// suffix, when pattern has no "*") replaced by a unique string, opened
// O_RDWR|O_CREATE|O_EXCL.
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	prefix, suffix, ok := strings.Cut(pattern, "*")
	if !ok {
		prefix, suffix = pattern, ""
	}
	pid := uint64(os.Getpid())
	for try := 0; try < 10000; try++ {
		tag := strconv.FormatUint(pid, 10) + "-" + strconv.FormatUint(tempSeq.Add(1), 10)
		f, err := fsys.OpenFile(filepath.Join(dir, prefix+tag+suffix),
			os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err != nil && errors.Is(err, fs.ErrExist) {
			continue
		}
		return f, err
	}
	return nil, fmt.Errorf("vfs: CreateTemp %s: exhausted names", pattern)
}
