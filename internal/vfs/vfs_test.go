package vfs

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOsFSRoundtrip drives every FS method through OsFS against a real
// directory.
func TestOsFSRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	path := filepath.Join(sub, "f")
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	var buf [8]byte
	if n, err := f.ReadAt(buf[:4], 0); err != nil || string(buf[:n]) != "hell" {
		t.Fatalf("ReadAt: %q, %v", buf[:n], err)
	}
	if fi, err := f.Stat(); err != nil || fi.Size() != 4 {
		t.Fatalf("Stat: %v, %v", fi, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	moved := filepath.Join(sub, "g")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := OS.SyncDir(sub); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	entries, err := OS.ReadDir(sub)
	if err != nil || len(entries) != 1 || entries[0].Name() != "g" {
		t.Fatalf("ReadDir: %v, %v", entries, err)
	}
	if _, err := OS.Stat(moved); err != nil {
		t.Fatalf("Stat(dir): %v", err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

// TestOsFSFlockConflict proves Flock is a real exclusive lock: a second
// descriptor on the same file cannot take it.
func TestOsFSFlockConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "LOCK")
	f1, err := OS.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	if err := OS.Flock(f1); err != nil {
		t.Fatalf("first Flock: %v", err)
	}
	f2, err := OS.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := OS.Flock(f2); err == nil {
		t.Fatal("second Flock on a held lock succeeded")
	}
	// Closing the holder releases the lock.
	f1.Close()
	if err := OS.Flock(f2); err != nil {
		t.Fatalf("Flock after release: %v", err)
	}
}

func TestCreateTemp(t *testing.T) {
	dir := t.TempDir()
	f1, err := CreateTemp(OS, dir, "checkpoint-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := CreateTemp(OS, dir, "checkpoint-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f1.Name() == f2.Name() {
		t.Fatalf("CreateTemp produced colliding names %s", f1.Name())
	}
	base := filepath.Base(f1.Name())
	if base == "checkpoint-.tmp" || filepath.Ext(base) != ".tmp" {
		t.Fatalf("unexpected temp name %s", base)
	}
}

// TestFaultFSNthSticky arms a sticky write fault at the second write:
// the first passes, the second and every later one fail with the
// injected errno.
func TestFaultFSNthSticky(t *testing.T) {
	ffs := NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.SetFault(Fault{Kinds: OpWrite.Mask(), Nth: 2, Err: syscall.ENOSPC})
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if _, err := f.Write([]byte("xx")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: want ENOSPC, got %v", i, err)
		}
	}
	ffs.ClearFault()
	if _, err := f.Write([]byte("two")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "onetwo" {
		t.Fatalf("file content %q, want %q", data, "onetwo")
	}
}

// TestFaultFSOnce: with Once set only the Nth operation fails.
func TestFaultFSOnce(t *testing.T) {
	ffs := NewFaultFS(nil)
	f, err := ffs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.SetFault(Fault{Kinds: OpSync.Mask(), Nth: 1, Once: true, Err: syscall.EIO})
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 1: want EIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 after once-fault: %v", err)
	}
}

// TestFaultFSShortWrite: the Nth write lands only Short bytes and
// still reports the error, like a disk filling mid-write.
func TestFaultFSShortWrite(t *testing.T) {
	ffs := NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.SetFault(Fault{Kinds: OpWrite.Mask(), Err: syscall.ENOSPC, Short: 3})
	n, err := f.Write([]byte("abcdefgh"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("file content %q, want %q", data, "abc")
	}
}

// TestFaultFSPathFilter: the fault arms only on matching paths.
func TestFaultFSPathFilter(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	ffs.SetFault(Fault{Kinds: OpCreate.Mask(), PathContains: ".tmp", Err: syscall.ENOSPC})
	if f, err := ffs.OpenFile(filepath.Join(dir, "plain"), os.O_CREATE|os.O_RDWR, 0o644); err != nil {
		t.Fatalf("unfiltered create: %v", err)
	} else {
		f.Close()
	}
	if _, err := ffs.OpenFile(filepath.Join(dir, "x.tmp"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("filtered create: want ENOSPC, got %v", err)
	}
	var pe *fs.PathError
	if err := ffs.Remove(filepath.Join(dir, "plain")); err != nil {
		t.Fatalf("remove: %v", err)
	} else if errors.As(err, &pe) {
		t.Fatal("unreachable")
	}
}

// TestTraceMaterializeRoundtrip records a full mutation history and
// replays it into a second directory, which must end up byte-identical.
func TestTraceMaterializeRoundtrip(t *testing.T) {
	src, dst := t.TempDir(), filepath.Join(t.TempDir(), "dst")
	ffs := NewFaultFS(nil)
	ffs.StartTrace()

	f, err := ffs.OpenFile(filepath.Join(src, "seg"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"alpha", "beta", "gamma"} {
		if _, err := f.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(12); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tmp, err := ffs.OpenFile(filepath.Join(src, "snap.tmp"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	if err := ffs.Rename(filepath.Join(src, "snap.tmp"), filepath.Join(src, "snap")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.SyncDir(src); err != nil {
		t.Fatal(err)
	}
	doomed, err := ffs.OpenFile(filepath.Join(src, "old"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	doomed.Close()
	if err := ffs.Remove(filepath.Join(src, "old")); err != nil {
		t.Fatal(err)
	}

	if err := MaterializeTrace(ffs.Trace(), src, dst); err != nil {
		t.Fatalf("MaterializeTrace: %v", err)
	}
	srcEntries, _ := os.ReadDir(src)
	dstEntries, _ := os.ReadDir(dst)
	if len(srcEntries) != len(dstEntries) {
		t.Fatalf("entry count: src %d dst %d", len(srcEntries), len(dstEntries))
	}
	for _, e := range srcEntries {
		a, _ := os.ReadFile(filepath.Join(src, e.Name()))
		b, err := os.ReadFile(filepath.Join(dst, e.Name()))
		if err != nil || !bytes.Equal(a, b) {
			t.Fatalf("file %s differs: src %d bytes, dst %d bytes (%v)", e.Name(), len(a), len(b), err)
		}
	}
}

// TestMaterializeTornWrite reconstructs the two power-cut shapes of an
// interrupted write: plain truncation (partial bytes, short file) and
// a zero-torn extension (file grown to full length, data missing).
func TestMaterializeTornWrite(t *testing.T) {
	src := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.StartTrace()
	f, err := ffs.OpenFile(filepath.Join(src, "seg"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	events := ffs.Trace()
	last := events[len(events)-1]
	if last.Op != OpWrite || len(last.Data) != 10 {
		t.Fatalf("unexpected final event %+v", last)
	}

	partial := Event{Op: OpWrite, Path: last.Path, Off: last.Off, Data: last.Data[:4]}
	truncDst := filepath.Join(t.TempDir(), "trunc")
	cut := append(append([]Event{}, events[:len(events)-1]...), partial)
	if err := MaterializeTrace(cut, src, truncDst); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(filepath.Join(truncDst, "seg")); string(data) != "0123" {
		t.Fatalf("truncated tear: %q", data)
	}

	tornDst := filepath.Join(t.TempDir(), "torn")
	cut = append(cut, Event{Op: OpTruncate, Path: last.Path, Size: last.Off + int64(len(last.Data))})
	if err := MaterializeTrace(cut, src, tornDst); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("0123"), make([]byte, 6)...)
	if data, _ := os.ReadFile(filepath.Join(tornDst, "seg")); !bytes.Equal(data, want) {
		t.Fatalf("zero tear: %q", data)
	}
}
