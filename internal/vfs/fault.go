package vfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// Op classifies one mutating filesystem operation, the unit fault
// injection and trace recording work in.
type Op uint8

// The mutating operation kinds. Reads never destroy data, so they are
// neither faultable nor traced.
const (
	OpCreate Op = iota // OpenFile with os.O_CREATE
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	OpSyncDir
	opCount
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpMask selects a set of Ops for a Fault.
type OpMask uint32

// Mask returns the single-op mask for o.
func (o Op) Mask() OpMask { return 1 << o }

// AllOps matches every mutating operation.
const AllOps OpMask = 1<<opCount - 1

// Fault describes a deterministic failure: the Nth operation matching
// Kinds (and PathContains, when set) fails with Err. Without Once the
// fault is sticky — every later matching operation fails too, the
// shape of a disk that stays full. Short > 0 turns the Nth failing
// write into a short write: Short bytes land before Err is returned.
type Fault struct {
	// Kinds is the operation set the fault arms on.
	Kinds OpMask
	// Nth is the 1-based matching-operation index that first fails;
	// zero means 1.
	Nth uint64
	// Err is the injected error; nil means syscall.EIO.
	Err error
	// Short, on a write, is how many bytes of the Nth write land
	// before Err. Later writes of a sticky fault fail whole.
	Short int
	// Once limits the fault to exactly the Nth operation; matching
	// operations after it succeed again.
	Once bool
	// PathContains restricts matching to paths containing the
	// substring; empty matches every path.
	PathContains string
}

// Event is one recorded mutating operation. For OpWrite, Data holds
// the bytes that actually landed (after any injected short write) at
// offset Off. For OpTruncate, Size is the target length. For OpRename,
// To is the destination path.
type Event struct {
	Op   Op
	Path string
	Off  int64
	Data []byte
	Size int64
	To   string
}

// FaultFS wraps an FS with deterministic fault injection and
// mutation tracing. The zero value is not usable; construct with
// NewFaultFS. All methods are safe for concurrent use; traced events
// are appended in the order the operations actually executed.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	fault   *Fault
	matched uint64 // operations matched against the current fault
	tracing bool
	trace   []Event
}

// NewFaultFS wraps inner (OS when nil).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner}
}

// SetFault arms f. The match counter restarts at zero.
func (f *FaultFS) SetFault(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := fault
	f.fault = &cp
	f.matched = 0
}

// ClearFault disarms any fault.
func (f *FaultFS) ClearFault() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = nil
	f.matched = 0
}

// StartTrace begins (or restarts) recording mutating operations.
func (f *FaultFS) StartTrace() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracing = true
	f.trace = nil
}

// TraceLen returns how many events have been recorded — the cut-point
// coordinate system for crash simulation.
func (f *FaultFS) TraceLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.trace)
}

// Trace returns a snapshot of the recorded events. The Event structs
// are copied; the Data payloads are shared and must not be mutated.
func (f *FaultFS) Trace() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, len(f.trace))
	copy(out, f.trace)
	return out
}

// checkLocked consults the armed fault for one operation. It returns
// (0, nil) to let the operation through, (n, err) with n > 0 to let a
// write land only its first n bytes before failing with err, and
// (0, err) to fail the operation outright.
func (f *FaultFS) checkLocked(op Op, path string) (int, error) {
	ft := f.fault
	if ft == nil || ft.Kinds&op.Mask() == 0 ||
		(ft.PathContains != "" && !strings.Contains(path, ft.PathContains)) {
		return 0, nil
	}
	f.matched++
	nth := ft.Nth
	if nth == 0 {
		nth = 1
	}
	if f.matched < nth || (ft.Once && f.matched > nth) {
		return 0, nil
	}
	err := ft.Err
	if err == nil {
		err = syscall.EIO
	}
	if op == OpWrite && ft.Short > 0 && f.matched == nth {
		return ft.Short, err
	}
	return 0, err
}

func (f *FaultFS) recordLocked(ev Event) {
	if f.tracing {
		f.trace = append(f.trace, ev)
	}
}

func opError(op Op, path string, err error) error {
	return &fs.PathError{Op: op.String(), Path: path, Err: err}
}

// OpenFile opens through the inner FS, wrapping the file for fault
// injection and tracing. An O_CREATE open counts as an OpCreate.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		f.mu.Lock()
		_, ferr := f.checkLocked(OpCreate, name)
		if ferr != nil {
			f.mu.Unlock()
			return nil, opError(OpCreate, name, ferr)
		}
		f.recordLocked(Event{Op: OpCreate, Path: name})
		f.mu.Unlock()
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename renames through the inner FS. The fault path filter matches
// against the source path.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ferr := f.checkLocked(OpRename, oldpath); ferr != nil {
		return opError(OpRename, oldpath, ferr)
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.recordLocked(Event{Op: OpRename, Path: oldpath, To: newpath})
	return nil
}

// Remove removes through the inner FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ferr := f.checkLocked(OpRemove, name); ferr != nil {
		return opError(OpRemove, name, ferr)
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.recordLocked(Event{Op: OpRemove, Path: name})
	return nil
}

// MkdirAll passes through unfaulted: the WAL creates its directory
// once, before any interesting failure window.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// ReadDir passes through (reads are not faulted).
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

// Stat passes through (reads are not faulted).
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) { return f.inner.Stat(name) }

// SyncDir fsyncs the directory through the inner FS.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ferr := f.checkLocked(OpSyncDir, dir); ferr != nil {
		return opError(OpSyncDir, dir, ferr)
	}
	if err := f.inner.SyncDir(dir); err != nil {
		return err
	}
	f.recordLocked(Event{Op: OpSyncDir, Path: dir})
	return nil
}

// Flock delegates to the inner FS on the unwrapped file.
func (f *FaultFS) Flock(file File) error {
	if ff, ok := file.(*faultFile); ok {
		return f.inner.Flock(ff.inner)
	}
	return f.inner.Flock(file)
}

// faultFile threads writes, syncs and truncates of one open file
// through the FaultFS. It tracks the file offset so write events carry
// absolute positions (the WAL writes sequentially; offset-changing
// calls are Seek and sequential Read/Write).
type faultFile struct {
	fs    *FaultFS
	inner File
	pos   int64
}

func (f *faultFile) Read(p []byte) (int, error) {
	n, err := f.inner.Read(p)
	f.fs.mu.Lock()
	f.pos += int64(n)
	f.fs.mu.Unlock()
	return n, err
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.inner.Seek(offset, whence)
	if err == nil {
		f.fs.mu.Lock()
		f.pos = pos
		f.fs.mu.Unlock()
	}
	return pos, err
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	short, ferr := f.fs.checkLocked(OpWrite, f.inner.Name())
	if ferr != nil && short <= 0 {
		return 0, opError(OpWrite, f.inner.Name(), ferr)
	}
	w := p
	if ferr != nil && short < len(p) {
		w = p[:short]
	}
	n, err := f.inner.Write(w)
	if n > 0 {
		f.fs.recordLocked(Event{
			Op:   OpWrite,
			Path: f.inner.Name(),
			Off:  f.pos,
			Data: append([]byte(nil), w[:n]...),
		})
		f.pos += int64(n)
	}
	if err == nil && ferr != nil {
		err = opError(OpWrite, f.inner.Name(), ferr)
	}
	return n, err
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, ferr := f.fs.checkLocked(OpSync, f.inner.Name()); ferr != nil {
		return opError(OpSync, f.inner.Name(), ferr)
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.fs.recordLocked(Event{Op: OpSync, Path: f.inner.Name()})
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, ferr := f.fs.checkLocked(OpTruncate, f.inner.Name()); ferr != nil {
		return opError(OpTruncate, f.inner.Name(), ferr)
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	f.fs.recordLocked(Event{Op: OpTruncate, Path: f.inner.Name(), Size: size})
	return nil
}

func (f *faultFile) Close() error               { return f.inner.Close() }
func (f *faultFile) Name() string               { return f.inner.Name() }
func (f *faultFile) Stat() (fs.FileInfo, error) { return f.inner.Stat() }

// MaterializeTrace replays a recorded event sequence into dstDir,
// rebasing every path from srcDir — the disk-state reconstruction
// behind power-cut simulation. The model is an ordered, non-reordering
// disk: every traced write landed in order, so truncating the event
// list at a cut point (and optionally appending a partial write plus a
// zero-extending truncate, the torn-write shape) yields one plausible
// post-crash disk. Sync events carry no state and are skipped.
func MaterializeTrace(events []Event, srcDir, dstDir string) error {
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return err
	}
	files := make(map[string]*os.File)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	rebase := func(p string) (string, error) {
		rel, err := filepath.Rel(srcDir, p)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return "", fmt.Errorf("vfs: trace path %s outside %s", p, srcDir)
		}
		return filepath.Join(dstDir, rel), nil
	}
	get := func(p string) (*os.File, error) {
		if f, ok := files[p]; ok {
			return f, nil
		}
		f, err := os.OpenFile(p, os.O_CREATE|os.O_RDWR, 0o644)
		if err == nil {
			files[p] = f
		}
		return f, err
	}
	drop := func(p string) {
		if f, ok := files[p]; ok {
			f.Close()
			delete(files, p)
		}
	}
	for i, ev := range events {
		path, err := rebase(ev.Path)
		if err != nil {
			return err
		}
		switch ev.Op {
		case OpCreate:
			_, err = get(path)
		case OpWrite:
			var f *os.File
			if f, err = get(path); err == nil {
				_, err = f.WriteAt(ev.Data, ev.Off)
			}
		case OpTruncate:
			var f *os.File
			if f, err = get(path); err == nil {
				err = f.Truncate(ev.Size)
			}
		case OpRename:
			var to string
			if to, err = rebase(ev.To); err == nil {
				drop(path)
				drop(to)
				err = os.Rename(path, to)
			}
		case OpRemove:
			drop(path)
			err = os.Remove(path)
		case OpSync, OpSyncDir:
			// Durability barriers; no disk state of their own.
		}
		if err != nil {
			return fmt.Errorf("vfs: materialize event %d (%s %s): %w", i, ev.Op, ev.Path, err)
		}
	}
	return nil
}
