package sharded

import (
	"math/rand"
	"sync"
	"testing"

	"cuckoograph/internal/csr"
	"cuckoograph/internal/graphstore"
)

// viewEdgeSet collects a view's full edge set through the Store path.
func viewEdgeSet(v *View) map[[2]uint64]bool {
	out := map[[2]uint64]bool{}
	v.ForEachNode(func(u uint64) bool {
		for _, s := range v.Successors(u) {
			out[[2]uint64{u, s}] = true
		}
		return true
	})
	return out
}

// checkCSRAgainst verifies the index is an exact compilation of the
// edge set: same edge count, same per-node successors (order matching
// ForEachSuccessor on the view), dictionary round-trips.
func checkCSRAgainst(t *testing.T, v *View, want map[[2]uint64]bool) {
	t.Helper()
	x := v.CSR()
	if x.NumEdges() != len(want) {
		t.Fatalf("CSR NumEdges = %d, want %d", x.NumEdges(), len(want))
	}
	got := map[[2]uint64]bool{}
	for d := int32(0); d < int32(x.NumSources()); d++ {
		u := x.IDOf(d)
		if rd, ok := x.DenseOf(u); !ok || rd != d {
			t.Fatalf("dictionary round-trip failed for %d", u)
		}
		succ := x.Succ(d)
		viewSucc := v.Successors(u)
		if len(succ) != len(viewSucc) {
			t.Fatalf("node %d: CSR degree %d, view degree %d", u, len(succ), len(viewSucc))
		}
		for i, dv := range succ {
			if x.IDOf(dv) != viewSucc[i] {
				t.Fatalf("node %d: CSR successor order diverges from view", u)
			}
			got[[2]uint64{u, x.IDOf(dv)}] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("CSR edge set has %d edges, want %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("edge %v missing from CSR", e)
		}
	}
}

func TestViewCSRMatchesFrozenState(t *testing.T) {
	g := New(Config{Shards: 4})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		g.InsertEdge(uint64(rng.Intn(200)), uint64(rng.Intn(200)))
	}
	v := g.Snapshot()
	defer v.Release()
	want := viewEdgeSet(v)

	// Mutations after the snapshot must not leak into the index,
	// including fresh nodes and deletions that push the view's state
	// into copy-on-write overlays.
	for i := 0; i < 500; i++ {
		g.DeleteEdge(uint64(rng.Intn(200)), uint64(rng.Intn(200)))
		g.InsertEdge(uint64(1000+rng.Intn(50)), uint64(1000+rng.Intn(50)))
	}
	checkCSRAgainst(t, v, want)
}

func TestViewCSRMemoizedPerView(t *testing.T) {
	g := New(Config{Shards: 4})
	for u := uint64(0); u < 100; u++ {
		g.InsertEdge(u, u+1)
	}
	v := g.Snapshot()
	defer v.Release()

	// Concurrent first calls race into the sync.Once; all callers must
	// observe the one index.
	const callers = 8
	results := make([]*csr.Index, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = v.CSR()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("CSR not memoized: distinct indexes returned")
		}
	}
	if v.CSR() != results[0] {
		t.Fatal("repeated CSR call rebuilt the index")
	}

	// A later snapshot compiles its own index.
	g.InsertEdge(500, 501)
	v2 := g.Snapshot()
	defer v2.Release()
	if v2.CSR() == v.CSR() {
		t.Fatal("distinct epochs share one CSR index")
	}
}

func TestViewCSRFreedOnRelease(t *testing.T) {
	g := New(Config{Shards: 2})
	g.InsertEdge(1, 2)
	v := g.Snapshot()
	if v.CSR() == nil {
		t.Fatal("CSR nil on live view")
	}
	v.Release()
	if v.csrIdx.Load() != nil {
		t.Fatal("CSR index survived the last Release")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CSR on released view did not panic")
		}
	}()
	v.CSR()
}

// TestViewCSRBuildUnderConcurrentWriters races the parallel CSR build
// against a full-throttle writer load (run under -race in CI): the
// build must neither trip the detector nor observe any post-snapshot
// state.
func TestViewCSRBuildUnderConcurrentWriters(t *testing.T) {
	g := New(Config{Shards: 8})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		g.InsertEdge(uint64(rng.Intn(400)), uint64(rng.Intn(400)))
	}
	v := g.Snapshot()
	defer v.Release()
	want := viewEdgeSet(v)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r.Intn(3) == 0 {
					g.DeleteEdge(uint64(r.Intn(400)), uint64(r.Intn(400)))
				} else {
					g.InsertEdge(uint64(r.Intn(600)), uint64(r.Intn(600)))
				}
			}
		}(int64(w) + 100)
	}
	checkCSRAgainst(t, v, want)
	close(stop)
	writers.Wait()

	// And fresh snapshots taken during/after the churn compile cleanly.
	for i := 0; i < 3; i++ {
		vi := g.Snapshot()
		checkCSRAgainst(t, vi, viewEdgeSet(vi))
		vi.Release()
	}
}

func TestViewCSRThroughIndexedInterface(t *testing.T) {
	g := New(Config{Shards: 4})
	for u := uint64(0); u < 10; u++ {
		g.InsertEdge(u, (u+1)%10)
	}
	v := g.Snapshot()
	defer v.Release()
	var s graphstore.Store = v
	ix, ok := s.(graphstore.Indexed)
	if !ok {
		t.Fatal("sharded view does not satisfy graphstore.Indexed")
	}
	if ix.CSR().NumEdges() != 10 {
		t.Fatalf("CSR through interface: %d edges, want 10", ix.CSR().NumEdges())
	}
	if ix.CSR() != v.CSR() {
		t.Fatal("interface and concrete CSR differ")
	}
}
