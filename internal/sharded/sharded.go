// Package sharded is the concurrent CuckooGraph engine: it hash-
// partitions edges by source node across P independent shards, each a
// private single-writer core.Graph behind its own read-write lock.
//
// Sharding by source node is the natural CuckooGraph partition — all
// state for node u (its L-CHT cell, its S-CHT chain, its denylist
// entries) lives in exactly one core engine, so shards never share
// mutable state and mutations on different shards proceed in parallel.
// Aggregate edge/node counts are kept as atomics; Stats and MemoryUsage
// merge across shards under their read locks.
//
// Traversal callbacks (ForEachSuccessor, ForEachNode) run on a
// point-in-time copy taken under the shard read lock and invoked after
// the lock is released, so callbacks may freely re-enter the graph —
// including mutating it — without deadlocking on a shard lock.
package sharded

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"cuckoograph/internal/core"
	"cuckoograph/internal/hashutil"
)

// Logger receives every successful mutation for durability. Each call
// carries the applied sub-batch of one shard partition — a single op
// for the single-edge methods — and happens while the owning shard's
// write lock is held, immediately after the in-memory mutations, so for
// any one shard (and hence for any one source node) the log order
// equals the application order — which is what makes replay
// deterministic. The mutations are only acknowledged to the caller once
// the Logger returns, so a group-committing implementation gives
// synchronous durability, and a batch-framing implementation (the WAL)
// persists the whole partition as one record in one commit slot.
//
// A Logger is only invoked for mutations that changed the graph:
// duplicate inserts and deletes of absent edges are not logged.
type Logger interface {
	LogBatch(b core.Batch) error
}

// Config tunes a sharded graph.
type Config struct {
	// Core is the per-shard CuckooGraph tuning. Each shard derives a
	// distinct deterministic hash seed from Core.Seed.
	Core core.Config
	// Shards is P, the number of partitions. It is rounded up to a power
	// of two; zero or negative defaults to runtime.GOMAXPROCS(0).
	Shards int
	// WAL, when non-nil, is invoked under the shard lock for every
	// mutation (see Logger). It can also be attached later with SetWAL.
	WAL Logger
}

// shard is one partition: a private core engine behind its own lock.
// Shards are padded out to their own cache lines so lock traffic on one
// shard does not false-share with its neighbours.
type shard struct {
	mu sync.RWMutex
	g  *core.Graph
	// views are the live snapshot views registered on this shard,
	// oldest first. Mutators consult it (under mu held for writing)
	// to preserve copy-on-write pre-images before restructuring a
	// cell; see Graph.preserve.
	views []*View
	// viewGen counts changes to the views list; cowU/cowGen memoise
	// the last source node preserved into every live view, so the
	// bursts of consecutive same-source ops that real edge streams
	// produce skip the per-view overlay probes after the first op.
	// All three are guarded by mu held for writing.
	//
	// one is the single-op scratch the edge-at-a-time methods apply
	// through (under mu held for writing; see applyOne).
	viewGen uint64
	cowU    uint64
	cowGen  uint64
	one     [1]core.Op
	_       [128 - 24 - 8 - 24 - 24 - 24]byte
}

// Graph is a concurrency-safe CuckooGraph partitioned by source node.
type Graph struct {
	shards []shard
	mask   uint64

	edges atomic.Uint64
	nodes atomic.Uint64
	// muts counts applied mutations (not ops attempted) over the
	// graph's lifetime. Unlike edges/nodes it never goes down, so an
	// insert/delete pair that nets out to the same counts still moves
	// it — the property durability hand-off checks rely on.
	muts atomic.Uint64

	// wal is the attached durability hook; nil disables logging. It is
	// swapped atomically so SetWAL is safe against in-flight mutations.
	wal atomic.Pointer[Logger]

	logErrMu sync.Mutex
	logErr   error

	// snapMu fences snapshots against multi-shard batches. A batch that
	// spans shards applies its partitions under separate shard-lock
	// acquisitions, so per-shard locking alone would let a freeze (or
	// the old all-read-locks Checkpoint) land between two partitions and
	// observe a half-applied batch. Multi-shard ApplyBatch holds snapMu
	// for reading across all its partitions; Snapshot holds it for
	// writing while registering the view, making every batch atomic with
	// respect to every snapshot. Single-shard batches are already atomic
	// under their one shard lock and skip snapMu entirely.
	snapMu sync.RWMutex

	// epoch stamps snapshots; it only ever grows. liveViews counts
	// unreleased views; cowBytes accumulates pre-image bytes copied on
	// behalf of views (the snapshot bench's CoW metric).
	epoch     atomic.Uint64
	liveViews atomic.Int64
	cowBytes  atomic.Uint64
}

// ShardCount normalises a requested shard count: zero or negative means
// runtime.GOMAXPROCS(0), and the result is rounded up to a power of two.
func ShardCount(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns an empty sharded graph.
func New(cfg Config) *Graph {
	p := ShardCount(cfg.Shards)
	g := &Graph{shards: make([]shard, p), mask: uint64(p - 1)}
	base := cfg.Core.Defaults()
	for i := range g.shards {
		sc := base
		// Distinct per-shard seeds keep hash layouts independent while
		// staying deterministic for a given Config.
		sc.Seed = base.Seed + uint64(i)*0x9E3779B97F4A7C15
		g.shards[i].g = core.NewGraph(sc)
	}
	if cfg.WAL != nil {
		g.SetWAL(cfg.WAL)
	}
	return g
}

// SetWAL attaches (or, with nil, detaches) the durability hook. Only
// mutations that start after SetWAL returns are guaranteed to be
// logged, so attach the WAL before the graph takes writes — or take a
// checkpoint right after attaching to capture pre-existing edges.
// Swapping the hook clears LogErr: a sticky failure belongs to the
// logger that produced it, not to its healthy replacement.
func (g *Graph) SetWAL(l Logger) {
	if l == nil {
		g.wal.Store(nil)
	} else {
		g.wal.Store(&l)
	}
	g.logErrMu.Lock()
	g.logErr = nil
	g.logErrMu.Unlock()
}

// logBatch feeds the applied sub-batch of one shard partition to the
// attached Logger, if any. It runs under the owning shard's write lock.
func (g *Graph) logBatch(b core.Batch) {
	p := g.wal.Load()
	if p == nil || len(b) == 0 {
		return
	}
	if err := (*p).LogBatch(b); err != nil {
		g.logErrMu.Lock()
		if g.logErr == nil {
			g.logErr = err
		}
		g.logErrMu.Unlock()
	}
}

// LogErr returns the first error the attached Logger reported, if any.
// Once a WAL errors (disk full, I/O failure) the in-memory graph keeps
// serving but its durability guarantee is void; servers should surface
// this to clients.
func (g *Graph) LogErr() error {
	g.logErrMu.Lock()
	defer g.logErrMu.Unlock()
	return g.logErr
}

// Load reads a basic-variant snapshot (the format of core.Graph.Save)
// into a fresh sharded graph. Snapshots round-trip across shard counts:
// a snapshot written by a 1-shard graph loads into a P-shard graph and
// vice versa.
func Load(r io.Reader, cfg Config) (*Graph, error) {
	g := New(cfg)
	// Feed the snapshot through the batch path: loading is the textbook
	// burst, and chunking amortizes lock traffic and cell lookups.
	c := core.NewChunker(LoadBatchSize, func(b core.Batch) { g.ApplyBatch(b) })
	if err := core.ReadBasicSnapshot(r, func(u, v uint64) error {
		c.Insert(u, v)
		return nil
	}); err != nil {
		return nil, err
	}
	c.Flush()
	return g, nil
}

// LoadBatchSize chunks bulk ingestion paths (snapshot load, WAL
// replay): big enough to amortize per-partition overhead, small enough
// to keep the working set cache-resident.
const LoadBatchSize = 4096

// Shards returns P, the number of partitions.
func (g *Graph) Shards() int { return len(g.shards) }

// shardIndex picks u's partition from the same splitmix64 finaliser
// (hashutil.Key64) the core probe path hashes keys with, so sequential
// node ids spread evenly across shards. The shard assignment is
// bit-identical to the pre-Key64 inline mix.
func (g *Graph) shardIndex(u uint64) int {
	return int(hashutil.Key64(u) & g.mask)
}

func (g *Graph) shardOf(u uint64) *shard { return &g.shards[g.shardIndex(u)] }

// applyToShard is the one mutation path of the sharded engine: it
// applies a batch whose ops all hash to shard si under a single
// write-lock acquisition, logs the applied sub-batch as one Logger
// call, and settles the aggregate counters once for the whole
// partition. When live snapshot views exist, the pre-images of the
// cells the partition touches are preserved first (see preserve) —
// that, and nothing else, is the copy-on-write cost of a view.
func (g *Graph) applyToShard(si int, part core.Batch) core.BatchResult {
	sh := &g.shards[si]
	sh.mu.Lock()
	res := g.applyLocked(si, sh, part)
	sh.mu.Unlock()
	return res
}

// applyOne applies a single op through the shard's scratch slot, so the
// single-edge methods need no per-call batch allocation: a stack-built
// one-op slice would escape through the WAL logging path, but the
// shard-owned slot (written only under the write lock) does not.
func (g *Graph) applyOne(si int, op core.Op) core.BatchResult {
	sh := &g.shards[si]
	sh.mu.Lock()
	sh.one[0] = op
	res := g.applyLocked(si, sh, sh.one[:])
	sh.mu.Unlock()
	return res
}

func (g *Graph) applyLocked(si int, sh *shard, part core.Batch) core.BatchResult {
	if len(sh.views) > 0 {
		g.preserve(si, sh, part)
	}
	n0 := sh.g.NumNodes()
	var res core.BatchResult
	switch {
	case g.wal.Load() == nil:
		res = sh.g.ApplyBatchFunc(part, nil)
	case len(part) == 1:
		// A size-1 partition that applied IS its applied sub-batch; skip
		// the collection allocation on the hot single-edge path.
		res = sh.g.ApplyBatchFunc(part, nil)
		if res.Inserted+res.Deleted == 1 {
			g.logBatch(part)
		}
	default:
		// Collect lazily: partitions full of duplicate inserts apply
		// nothing and should not pay an allocation to learn that.
		var applied core.Batch
		res = sh.g.ApplyBatchFunc(part, func(op core.Op) {
			if applied == nil {
				applied = make(core.Batch, 0, len(part))
			}
			applied = append(applied, op)
		})
		g.logBatch(applied)
	}
	// Both deltas may be negative; unsigned wraparound plus the modular
	// atomic Add nets out correctly.
	g.edges.Add(res.Inserted - res.Deleted)
	g.nodes.Add(sh.g.NumNodes() - n0)
	if applied := res.Applied(); applied > 0 {
		g.muts.Add(applied)
	}
	return res
}

// Mutations returns the number of applied mutations over the graph's
// lifetime. It is monotonic: any write that changed the graph moves it,
// even when NumEdges/NumNodes end up back where they were.
func (g *Graph) Mutations() uint64 { return g.muts.Load() }

// ApplyBatch applies the ops of b in order, partitioned by shard: each
// shard's sub-batch runs under one lock acquisition (in parallel across
// shards when the batch spans several) and is logged to the WAL as one
// record. Ops for the same source node always share a shard, so their
// relative order — the order that determines the outcome of interleaved
// inserts and deletes — is preserved; the result is logically identical
// to applying the ops one by one.
func (g *Graph) ApplyBatch(b core.Batch) core.BatchResult {
	if len(b) == 0 {
		return core.BatchResult{}
	}
	// Single-shard fast path: size-1 batches (the single-edge methods)
	// and node-local bursts skip the partition allocation entirely.
	first := g.shardIndex(b[0].U)
	single := true
	for i := 1; i < len(b); i++ {
		if g.shardIndex(b[i].U) != first {
			single = false
			break
		}
	}
	if single {
		return g.applyToShard(first, b)
	}
	// The batch spans shards, so its partitions apply under separate
	// lock acquisitions; holding snapMu for reading across all of them
	// keeps the whole batch atomic with respect to snapshots and
	// checkpoints (a freeze waits the batch out, and vice versa).
	g.snapMu.RLock()
	defer g.snapMu.RUnlock()
	// Two-pass partition: count, carve one backing array into per-shard
	// windows, fill. The count pass hashes each op's source node once
	// and memoises the shard index, so the fill pass is a plain array
	// read — one Key64 per op for the whole carve instead of one per
	// pass. Four allocations total however many shards the batch
	// touches — per-shard append-with-growth would pay an allocation
	// chain per shard and dominate medium batches.
	counts := make([]int, len(g.shards))
	idxs := make([]uint32, len(b))
	for i, op := range b {
		si := g.shardIndex(op.U)
		idxs[i] = uint32(si)
		counts[si]++
	}
	backing := make(core.Batch, 0, len(b))
	parts := make([]core.Batch, len(g.shards))
	active := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		active++
		parts[i] = backing[len(backing) : len(backing) : len(backing)+c]
		backing = backing[:len(backing)+c]
	}
	for i, op := range b {
		si := idxs[i]
		parts[si] = append(parts[si], op)
	}
	var total core.BatchResult
	// Fan out across shards only when the parallelism can pay for the
	// goroutine churn: each partition must carry real work and there
	// must be more than one processor to run them on. Otherwise apply
	// partitions sequentially — still one lock acquisition and one
	// counter settlement per shard.
	if runtime.GOMAXPROCS(0) == 1 || len(b) < active*minParallelPartition {
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			r := g.applyToShard(i, part)
			total.Inserted += r.Inserted
			total.Deleted += r.Deleted
			total.Updated += r.Updated
		}
		return total
	}
	results := make([]core.BatchResult, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part core.Batch) {
			defer wg.Done()
			results[i] = g.applyToShard(i, part)
		}(i, part)
	}
	wg.Wait()
	for _, r := range results {
		total.Inserted += r.Inserted
		total.Deleted += r.Deleted
		total.Updated += r.Updated
	}
	return total
}

// minParallelPartition is the mean ops per touched shard below which
// ApplyBatch applies partitions inline rather than spawning goroutines.
const minParallelPartition = 128

// InsertEdge adds ⟨u,v⟩, reporting whether it is new. It is a size-1
// batch over the shared mutation path.
func (g *Graph) InsertEdge(u, v uint64) bool {
	return g.applyOne(g.shardIndex(u), core.InsertOp(u, v)).Inserted == 1
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (g *Graph) HasEdge(u, v uint64) bool {
	sh := g.shardOf(u)
	sh.mu.RLock()
	ok := sh.g.HasEdge(u, v)
	sh.mu.RUnlock()
	return ok
}

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed. It is a
// size-1 batch over the shared mutation path.
func (g *Graph) DeleteEdge(u, v uint64) bool {
	return g.applyOne(g.shardIndex(u), core.DeleteOp(u, v)).Deleted == 1
}

// ForEachSuccessor calls fn for each successor of u until fn returns
// false. The successors are copied under the shard read lock and fn is
// invoked after it is released, so fn may re-enter the graph.
func (g *Graph) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	sh := g.shardOf(u)
	sh.mu.RLock()
	var succ []uint64
	sh.g.ForEachSuccessor(u, func(v uint64) bool {
		succ = append(succ, v)
		return true
	})
	sh.mu.RUnlock()
	for _, v := range succ {
		if !fn(v) {
			return
		}
	}
}

// Successors returns u's successors as a fresh slice.
func (g *Graph) Successors(u uint64) []uint64 {
	return g.AppendSuccessors(u, nil)
}

// AppendSuccessors appends u's successors to dst and returns the
// extended slice, copying under the shard read lock. Callers that
// reuse dst across calls get an allocation-free scan once the scratch
// has grown to the working set — the serving plane's neighbor reads
// lean on this.
func (g *Graph) AppendSuccessors(u uint64, dst []uint64) []uint64 {
	sh := g.shardOf(u)
	sh.mu.RLock()
	sh.g.ForEachSuccessor(u, func(v uint64) bool {
		dst = append(dst, v)
		return true
	})
	sh.mu.RUnlock()
	return dst
}

// AppendNodes appends every node with at least one out-edge to dst and
// returns the extended slice, copying each shard's node set under its
// read lock. Like AppendSuccessors, reusing dst amortizes the scan to
// zero allocations.
func (g *Graph) AppendNodes(dst []uint64) []uint64 {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		sh.g.ForEachNode(func(u uint64) bool {
			dst = append(dst, u)
			return true
		})
		sh.mu.RUnlock()
	}
	return dst
}

// Degree returns u's out-degree. It reads the owning engine's
// population counters under the shard read lock — no adjacency
// iteration, no allocation.
func (g *Graph) Degree(u uint64) int {
	sh := g.shardOf(u)
	sh.mu.RLock()
	n := sh.g.Degree(u)
	sh.mu.RUnlock()
	return n
}

// ForEachNode calls fn for every node with at least one out-edge. Each
// shard's node set is copied under its read lock and fn runs unlocked,
// so fn may re-enter the graph.
func (g *Graph) ForEachNode(fn func(u uint64) bool) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		var nodes []uint64
		sh.g.ForEachNode(func(u uint64) bool {
			nodes = append(nodes, u)
			return true
		})
		sh.mu.RUnlock()
		for _, u := range nodes {
			if !fn(u) {
				return
			}
		}
	}
}

// NumEdges returns the number of distinct stored edges.
func (g *Graph) NumEdges() uint64 { return g.edges.Load() }

// NumNodes returns the number of distinct source nodes.
func (g *Graph) NumNodes() uint64 { return g.nodes.Load() }

// MemoryUsage returns the structural bytes summed across shards.
func (g *Graph) MemoryUsage() uint64 {
	var total uint64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		total += sh.g.MemoryUsage()
		sh.mu.RUnlock()
	}
	return total
}

// Stats merges the structural counters of every shard: counts sum, and
// the L-CHT loading rate is the cell-weighted mean.
func (g *Graph) Stats() core.Stats {
	var merged core.Stats
	var weightedLoad float64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		st := sh.g.Stats()
		sh.mu.RUnlock()
		merged.Nodes += st.Nodes
		merged.Edges += st.Edges
		merged.LCHTTables += st.LCHTTables
		merged.LCHTCells += st.LCHTCells
		weightedLoad += st.LCHTLoadRate * float64(st.LCHTCells)
		merged.LCHTKicks += st.LCHTKicks
		merged.LCHTPlacements += st.LCHTPlacements
		merged.Chains += st.Chains
		merged.ChainCells += st.ChainCells
		merged.ChainEntries += st.ChainEntries
		merged.SCHTKicks += st.SCHTKicks
		merged.SCHTPlacements += st.SCHTPlacements
		merged.LDLLen += st.LDLLen
		merged.SDLLen += st.SDLLen
		merged.Transformations += st.Transformations
	}
	if merged.LCHTCells > 0 {
		merged.LCHTLoadRate = weightedLoad / float64(merged.LCHTCells)
	}
	return merged
}

// Save writes a snapshot in the basic-variant format of core.Graph.Save.
// It is a consistent cut even under concurrent mutation: the graph is
// frozen only for the brief view registration, and the serialization
// streams from the frozen view while writers proceed.
func (g *Graph) Save(w io.Writer) error {
	return g.Checkpoint(w, nil)
}

// Checkpoint writes a Save-format snapshot, invoking cut (if non-nil)
// inside the freeze window — every shard's write lock held, multi-shard
// batches excluded — before any edge is emitted. Because mutations log
// to the WAL under a shard's write lock, which cannot be held while the
// freeze is, a cut that rotates the WAL partitions the log exactly:
// every record logged before the freeze lands in segments older than
// the rotation, every record after in newer ones, and the snapshot
// reflects precisely the old segments. That is the contract
// snapshot-plus-log-tail recovery depends on. Unlike the freeze, the
// serialization itself holds no shard locks: it streams from a frozen
// view (released on return), so an arbitrarily large snapshot write no
// longer stalls writers for its duration, and — via snapMu — it can
// never observe a half-applied multi-shard batch.
func (g *Graph) Checkpoint(w io.Writer, cut func() error) error {
	v, err := g.snapshotWithCut(cut)
	if err != nil {
		return err
	}
	defer v.Release()
	return v.Save(w)
}
