package sharded

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cuckoograph/internal/core"
)

// refModel is the plain-map reference the differential test checks the
// engine against: the ground-truth edge set after a prefix of the op
// stream.
type refModel map[uint64]map[uint64]struct{}

func (m refModel) apply(b core.Batch) {
	for _, op := range b {
		switch op.Kind {
		case core.OpInsert:
			s := m[op.U]
			if s == nil {
				s = make(map[uint64]struct{})
				m[op.U] = s
			}
			s[op.V] = struct{}{}
		case core.OpDelete:
			if s := m[op.U]; s != nil {
				delete(s, op.V)
				if len(s) == 0 {
					delete(m, op.U)
				}
			}
		}
	}
}

// freeze deep-copies the model into sorted adjacency slices — the shape
// the verifier compares views against.
func (m refModel) freeze() (map[uint64][]uint64, uint64) {
	out := make(map[uint64][]uint64, len(m))
	var edges uint64
	for u, s := range m {
		succ := make([]uint64, 0, len(s))
		for v := range s {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		out[u] = succ
		edges += uint64(len(succ))
	}
	return out, edges
}

// verifyView asserts v is bit-identical to the frozen model state at
// its epoch: same counters, same node set, same adjacency per node, and
// negative point queries for edges the model lacks. It is safe to call
// from multiple goroutines while the graph keeps mutating.
func verifyView(t *testing.T, v *View, model map[uint64][]uint64, edges uint64, nodeSpace, valSpace uint64, rng *rand.Rand) {
	t.Helper()
	if got := v.NumNodes(); got != uint64(len(model)) {
		t.Errorf("epoch %d: NumNodes = %d, model has %d", v.Epoch(), got, len(model))
		return
	}
	if got := v.NumEdges(); got != edges {
		t.Errorf("epoch %d: NumEdges = %d, model has %d", v.Epoch(), got, edges)
		return
	}
	var nodes []uint64
	v.ForEachNode(func(u uint64) bool {
		nodes = append(nodes, u)
		return true
	})
	if len(nodes) != len(model) {
		t.Errorf("epoch %d: iterated %d nodes, model has %d", v.Epoch(), len(nodes), len(model))
		return
	}
	for _, u := range nodes {
		want, ok := model[u]
		if !ok {
			t.Errorf("epoch %d: view has node %d the model lacks", v.Epoch(), u)
			return
		}
		got := append([]uint64(nil), v.Successors(u)...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Errorf("epoch %d: node %d has %d successors, model %d", v.Epoch(), u, len(got), len(want))
			return
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("epoch %d: node %d adjacency %v, model %v", v.Epoch(), u, got, want)
				return
			}
		}
	}
	// Random negative and positive point probes.
	for i := 0; i < 32; i++ {
		u, x := rng.Uint64()%nodeSpace, rng.Uint64()%valSpace
		want := false
		if succ, ok := model[u]; ok {
			j := sort.Search(len(succ), func(k int) bool { return succ[k] >= x })
			want = j < len(succ) && succ[j] == x
		}
		if got := v.HasEdge(u, x); got != want {
			t.Errorf("epoch %d: HasEdge(%d,%d) = %v, model says %v", v.Epoch(), u, x, got, want)
			return
		}
	}
}

// TestDifferentialSnapshotsUnderMutation is the model-based
// differential test of the snapshot subsystem: a random op stream is
// applied batch by batch to the sharded engine and to a plain-map
// reference model; snapshots are taken at random points, paired with a
// deep copy of the model at that instant, and every live view is
// verified continuously — by concurrent goroutines, while the mutation
// stream keeps running — to stay bit-identical to the model state at
// its epoch. At steady state six views are live at once (≥4, per the
// acceptance criterion). Run it with -race: the verifiers' reads of
// live shards and frozen overlays race against writers by design, and
// the locking discipline has to hold.
func TestDifferentialSnapshotsUnderMutation(t *testing.T) {
	const (
		nodeSpace = 96 // small spaces force constant re-touching of frozen cells
		valSpace  = 64
		rounds    = 240
		batchMax  = 192
		maxLive   = 6
	)
	g := New(Config{Shards: 8})
	model := make(refModel)
	rng := rand.New(rand.NewSource(7))

	type liveView struct {
		view  *View
		model map[uint64][]uint64
		edges uint64
		stop  chan struct{}
		done  chan struct{}
	}
	var live []*liveView

	spawn := func() *liveView {
		frozen, edges := model.freeze()
		lv := &liveView{
			view:  g.Snapshot(),
			model: frozen,
			edges: edges,
			stop:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		seed := rng.Int63()
		go func() {
			defer close(lv.done)
			vrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-lv.stop:
					return
				default:
					verifyView(t, lv.view, lv.model, lv.edges, nodeSpace, valSpace, vrng)
				}
			}
		}()
		return lv
	}
	release := func(lv *liveView) {
		close(lv.stop)
		<-lv.done
		lv.view.Release()
	}

	var readers sync.WaitGroup
	stopReaders := make(chan struct{})
	// Background point-readers on the live graph, so view reads, live
	// reads and writes all overlap.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopReaders:
					return
				default:
					g.HasEdge(rrng.Uint64()%nodeSpace, rrng.Uint64()%valSpace)
				}
			}
		}(int64(100 + i))
	}

	for r := 0; r < rounds; r++ {
		n := 1 + rng.Intn(batchMax)
		b := make(core.Batch, 0, n)
		for i := 0; i < n; i++ {
			u, v := rng.Uint64()%nodeSpace, rng.Uint64()%valSpace
			if rng.Intn(3) == 0 {
				b = b.Delete(u, v)
			} else {
				b = b.Insert(u, v)
			}
		}
		g.ApplyBatch(b)
		model.apply(b)

		if r%20 == 0 || rng.Intn(40) == 0 {
			live = append(live, spawn())
			if len(live) > maxLive {
				release(live[0])
				live = live[1:]
			}
		}
	}
	if len(live) < 4 {
		t.Fatalf("only %d live views at end of stream, want ≥4", len(live))
	}
	// Final ground-truth check of the live graph itself.
	frozen, edges := model.freeze()
	if g.NumEdges() != edges || g.NumNodes() != uint64(len(frozen)) {
		t.Fatalf("live graph %d edges/%d nodes, model %d/%d",
			g.NumEdges(), g.NumNodes(), edges, len(frozen))
	}
	for _, lv := range live {
		release(lv)
	}
	close(stopReaders)
	readers.Wait()
	if g.LiveViews() != 0 {
		t.Fatalf("LiveViews = %d after releasing everything", g.LiveViews())
	}
}
