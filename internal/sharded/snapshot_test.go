package sharded

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"cuckoograph/internal/core"
)

// viewEdgeCount re-counts a view's edges by full iteration; it must
// always equal the epoch-stamped NumEdges.
func viewEdgeCount(v *View) uint64 {
	var n uint64
	v.ForEachNode(func(u uint64) bool {
		n += uint64(len(v.Successors(u)))
		return true
	})
	return n
}

func TestSnapshotFreezesState(t *testing.T) {
	g := New(Config{Shards: 4})
	for u := uint64(0); u < 50; u++ {
		g.InsertEdge(u, u+1)
		g.InsertEdge(u, u+2)
	}
	v := g.Snapshot()
	defer v.Release()
	if v.Epoch() == 0 {
		t.Fatalf("view epoch = 0, want > 0")
	}
	if v.NumEdges() != 100 || v.NumNodes() != 50 {
		t.Fatalf("view counts = %d edges / %d nodes, want 100/50", v.NumEdges(), v.NumNodes())
	}

	// Mutate hard: remove nodes entirely, change adjacency, add new ones.
	for u := uint64(0); u < 25; u++ {
		g.DeleteEdge(u, u+1)
		g.DeleteEdge(u, u+2)
	}
	for u := uint64(25); u < 50; u++ {
		g.InsertEdge(u, 999)
	}
	for u := uint64(100); u < 120; u++ {
		g.InsertEdge(u, 1)
	}

	// The view still shows the epoch state, bit for bit.
	for u := uint64(0); u < 50; u++ {
		if !v.HasEdge(u, u+1) || !v.HasEdge(u, u+2) {
			t.Fatalf("view lost edge of node %d after mutation", u)
		}
		if v.HasEdge(u, 999) {
			t.Fatalf("view sees post-epoch edge ⟨%d,999⟩", u)
		}
		if d := v.Degree(u); d != 2 {
			t.Fatalf("view degree(%d) = %d, want 2", u, d)
		}
	}
	for u := uint64(100); u < 120; u++ {
		if v.HasEdge(u, 1) {
			t.Fatalf("view sees post-epoch node %d", u)
		}
	}
	if n := viewEdgeCount(v); n != 100 {
		t.Fatalf("view iteration counts %d edges, want 100", n)
	}
	if v.NumNodes() != 50 {
		t.Fatalf("view NumNodes changed to %d", v.NumNodes())
	}
	// And the live graph shows the new state.
	if g.NumEdges() != 50+25+20 {
		t.Fatalf("live graph has %d edges, want 95", g.NumEdges())
	}
	if g.CoWBytes() == 0 {
		t.Fatalf("mutating under a live view copied nothing; CoW hook is dead")
	}
}

func TestSnapshotEpochsAndMultipleViews(t *testing.T) {
	g := New(Config{Shards: 2})
	g.InsertEdge(1, 2)
	v1 := g.Snapshot()
	g.InsertEdge(1, 3)
	v2 := g.Snapshot()
	g.DeleteEdge(1, 2)
	v3 := g.Snapshot()
	defer v1.Release()
	defer v2.Release()
	defer v3.Release()

	if !(v1.Epoch() < v2.Epoch() && v2.Epoch() < v3.Epoch()) {
		t.Fatalf("epochs not monotonic: %d %d %d", v1.Epoch(), v2.Epoch(), v3.Epoch())
	}
	if g.LiveViews() != 3 {
		t.Fatalf("LiveViews = %d, want 3", g.LiveViews())
	}
	check := func(v *View, want map[uint64]bool) {
		t.Helper()
		for x, has := range want {
			if got := v.HasEdge(1, x); got != has {
				t.Fatalf("epoch %d: HasEdge(1,%d) = %v, want %v", v.Epoch(), x, got, has)
			}
		}
	}
	g.InsertEdge(1, 9) // keep mutating under all three
	check(v1, map[uint64]bool{2: true, 3: false, 9: false})
	check(v2, map[uint64]bool{2: true, 3: true, 9: false})
	check(v3, map[uint64]bool{2: false, 3: true, 9: false})
	if v1.NumEdges() != 1 || v2.NumEdges() != 2 || v3.NumEdges() != 1 {
		t.Fatalf("edge counts %d/%d/%d, want 1/2/1", v1.NumEdges(), v2.NumEdges(), v3.NumEdges())
	}
}

func TestViewReleaseStopsCoWAndPanicsOnUse(t *testing.T) {
	g := New(Config{Shards: 2})
	for u := uint64(0); u < 32; u++ {
		g.InsertEdge(u, 1)
	}
	v := g.Snapshot()
	v.Release()
	v.Release() // idempotent
	if g.LiveViews() != 0 {
		t.Fatalf("LiveViews = %d after release, want 0", g.LiveViews())
	}
	before := g.CoWBytes()
	for u := uint64(0); u < 32; u++ {
		g.DeleteEdge(u, 1)
	}
	if after := g.CoWBytes(); after != before {
		t.Fatalf("CoW continued after release: %d -> %d", before, after)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("read of released view did not panic")
		}
	}()
	v.HasEdge(0, 1)
}

func TestViewRetainOutlivesRelease(t *testing.T) {
	g := New(Config{Shards: 2})
	g.InsertEdge(1, 2)
	v := g.Snapshot()
	v.Retain() // second holder
	v.Release()
	// One reference remains: the view must still read and still CoW.
	g.DeleteEdge(1, 2)
	if !v.HasEdge(1, 2) {
		t.Fatalf("retained view lost its epoch after the other holder released")
	}
	if g.LiveViews() != 1 {
		t.Fatalf("LiveViews = %d with one reference standing, want 1", g.LiveViews())
	}
	v.Release()
	if g.LiveViews() != 0 {
		t.Fatalf("LiveViews = %d after final release, want 0", g.LiveViews())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Retain of a fully released view did not panic")
		}
	}()
	v.Retain()
}

func TestViewIsReadOnly(t *testing.T) {
	g := New(Config{Shards: 2})
	g.InsertEdge(1, 2)
	v := g.Snapshot()
	defer v.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("InsertEdge on a View did not panic")
		}
	}()
	v.InsertEdge(3, 4)
}

func TestViewSaveRoundTripsUnderMutation(t *testing.T) {
	g := New(Config{Shards: 4})
	for u := uint64(0); u < 200; u++ {
		g.InsertEdge(u%40, u)
	}
	v := g.Snapshot()
	defer v.Release()
	wantEdges := v.NumEdges()

	// Keep mutating while the view serializes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for u := uint64(0); u < 200; u++ {
			g.DeleteEdge(u%40, u)
			g.InsertEdge(u+1000, 7)
		}
	}()
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatalf("view save: %v", err)
	}
	<-done

	re, err := Load(bytes.NewReader(buf.Bytes()), Config{Shards: 2})
	if err != nil {
		t.Fatalf("load view snapshot: %v", err)
	}
	if re.NumEdges() != wantEdges {
		t.Fatalf("reloaded %d edges, want %d", re.NumEdges(), wantEdges)
	}
	v.ForEachNode(func(u uint64) bool {
		for _, x := range v.Successors(u) {
			if !re.HasEdge(u, x) {
				t.Errorf("reloaded snapshot missing ⟨%d,%d⟩", u, x)
				return false
			}
		}
		return true
	})
}

// TestSnapshotNeverSeesHalfAppliedBatch is the regression test for the
// checkpoint/ApplyBatch tear: a batch that spans shards applies its
// partitions under separate lock acquisitions, and before snapMu a
// freeze could land between two partitions and expose a half-applied
// batch. Writers apply large multi-shard batches — each inserting one
// "column" ⟨u,tag⟩ for every u — while snapshots are taken
// concurrently; every snapshot must contain each column entirely or
// not at all.
func TestSnapshotNeverSeesHalfAppliedBatch(t *testing.T) {
	const (
		columns = 24
		nodes   = 4096 // ≥ shards*minParallelPartition: exercises the goroutine fan-out path
	)
	g := New(Config{Shards: 16})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tag := uint64(0); tag < columns; tag++ {
			b := make(core.Batch, 0, nodes)
			for u := uint64(0); u < nodes; u++ {
				b = b.Insert(u, tag)
			}
			g.ApplyBatch(b)
		}
	}()

	for i := 0; i < 40; i++ {
		v := g.Snapshot()
		for tag := uint64(0); tag < columns; tag++ {
			n := 0
			for u := uint64(0); u < nodes; u++ {
				if v.HasEdge(u, tag) {
					n++
				}
			}
			if n != 0 && n != nodes {
				t.Fatalf("snapshot %d observed half-applied batch: column %d has %d/%d edges",
					i, tag, n, nodes)
			}
		}
		done := viewEdgeCount(v)
		if done != v.NumEdges() {
			t.Fatalf("snapshot %d: iterated %d edges, stamped %d", i, done, v.NumEdges())
		}
		v.Release()
		if done == columns*nodes {
			break // writer finished; later snapshots are all identical
		}
	}
	wg.Wait()
}

// TestCheckpointNeverSerializesHalfAppliedBatch drives the same tear
// through Checkpoint itself: checkpoints interleave with large
// multi-shard batches, and every serialized snapshot must hold whole
// columns only.
func TestCheckpointNeverSerializesHalfAppliedBatch(t *testing.T) {
	const (
		columns = 16
		nodes   = 2048
	)
	g := New(Config{Shards: 8})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tag := uint64(0); tag < columns; tag++ {
			b := make(core.Batch, 0, nodes)
			for u := uint64(0); u < nodes; u++ {
				b = b.Insert(u, tag)
			}
			g.ApplyBatch(b)
		}
	}()
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := g.Checkpoint(&buf, nil); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		re, err := Load(bytes.NewReader(buf.Bytes()), Config{Shards: 4})
		if err != nil {
			t.Fatalf("load checkpoint %d: %v", i, err)
		}
		for tag := uint64(0); tag < columns; tag++ {
			n := 0
			for u := uint64(0); u < nodes; u++ {
				if re.HasEdge(u, tag) {
					n++
				}
			}
			if n != 0 && n != nodes {
				t.Fatalf("checkpoint %d holds half a batch: column %d has %d/%d edges", i, tag, n, nodes)
			}
		}
		if re.NumEdges() == columns*nodes {
			break
		}
	}
	wg.Wait()
}

func TestSnapshotSharesPreImagesAcrossViews(t *testing.T) {
	g := New(Config{Shards: 2})
	for u := uint64(0); u < 16; u++ {
		g.InsertEdge(u, 1)
	}
	v1 := g.Snapshot()
	v2 := g.Snapshot()
	defer v1.Release()
	defer v2.Release()
	before := g.CoWBytes()
	g.DeleteEdge(3, 1) // both views need node 3's pre-image; one copy serves both
	delta := g.CoWBytes() - before
	if want := uint64(16 + 8); delta != want {
		t.Fatalf("CoW delta = %d bytes for one touched node under two views, want %d (shared pre-image)", delta, want)
	}
	if !v1.HasEdge(3, 1) || !v2.HasEdge(3, 1) {
		t.Fatalf("views lost the shared pre-image")
	}
}

func TestSnapshotViewImplementsStoreExample(t *testing.T) {
	// Exercise the graphstore.Snapshotter path the analytics harness uses.
	g := New(Config{Shards: 2})
	g.InsertEdge(1, 2)
	sv := g.SnapshotView()
	defer sv.Release()
	if !sv.HasEdge(1, 2) || sv.NumEdges() != 1 {
		t.Fatalf("SnapshotView state wrong")
	}
	if fmt.Sprintf("%T", sv) != "*sharded.View" {
		t.Fatalf("SnapshotView returned %T", sv)
	}
}
