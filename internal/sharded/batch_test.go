package sharded

import (
	"sync"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/hashutil"
)

// TestApplyBatchMatchesSingleOps: a batch partitioned across shards
// must leave the same logical graph and aggregate counters as the same
// ops applied one by one.
func TestApplyBatchMatchesSingleOps(t *testing.T) {
	rng := hashutil.NewRNG(7)
	var ops core.Batch
	for i := 0; i < 8000; i++ {
		u, v := rng.Uint64n(512), rng.Uint64n(512)
		if rng.Uint64n(10) < 3 {
			ops = ops.Delete(u, v)
		} else {
			ops = ops.Insert(u, v)
		}
	}

	single := New(Config{Shards: 8})
	for _, op := range ops {
		if op.Kind == core.OpInsert {
			single.InsertEdge(op.U, op.V)
		} else {
			single.DeleteEdge(op.U, op.V)
		}
	}

	batched := New(Config{Shards: 8})
	for lo := 0; lo < len(ops); lo += 1024 {
		hi := min(lo+1024, len(ops))
		batched.ApplyBatch(ops[lo:hi])
	}

	if single.NumEdges() != batched.NumEdges() || single.NumNodes() != batched.NumNodes() {
		t.Fatalf("batched graph has %d edges / %d nodes, single-op has %d / %d",
			batched.NumEdges(), batched.NumNodes(), single.NumEdges(), single.NumNodes())
	}
	missing := 0
	single.ForEachNode(func(u uint64) bool {
		single.ForEachSuccessor(u, func(v uint64) bool {
			if !batched.HasEdge(u, v) {
				missing++
			}
			return true
		})
		return true
	})
	if missing > 0 {
		t.Fatalf("%d edges of the single-op graph missing from the batched graph", missing)
	}
}

// TestApplyBatchResultAndCounters pins the result accounting and that
// aggregate counters settle once per partition.
func TestApplyBatchResultAndCounters(t *testing.T) {
	g := New(Config{Shards: 4})
	res := g.ApplyBatch(core.Batch{}.
		Insert(1, 2).Insert(2, 3).Insert(1, 2). // one duplicate
		Delete(2, 3).Delete(5, 5))              // one absent
	want := core.BatchResult{Inserted: 2, Deleted: 1}
	if res != want {
		t.Fatalf("BatchResult = %+v, want %+v", res, want)
	}
	if g.NumEdges() != 1 || g.NumNodes() != 1 {
		t.Fatalf("counters = %d edges / %d nodes, want 1 / 1", g.NumEdges(), g.NumNodes())
	}
}

// TestApplyBatchEmpty: the degenerate cases must not lock anything up.
func TestApplyBatchEmpty(t *testing.T) {
	g := New(Config{Shards: 4})
	if res := g.ApplyBatch(nil); res != (core.BatchResult{}) {
		t.Fatalf("ApplyBatch(nil) = %+v", res)
	}
	if res := g.ApplyBatch(core.Batch{}); res != (core.BatchResult{}) {
		t.Fatalf("ApplyBatch(empty) = %+v", res)
	}
}

// TestApplyBatchLogsAppliedSubBatch: the Logger must see exactly the
// state-changing ops of each partition, batched per shard, with
// per-node order preserved.
func TestApplyBatchLogsAppliedSubBatch(t *testing.T) {
	rec := &walRecorder{}
	g := New(Config{Shards: 4, WAL: rec})
	g.ApplyBatch(core.Batch{}.
		Insert(1, 2).
		Insert(1, 2). // duplicate: must not be logged
		Insert(1, 3).
		Delete(1, 2).
		Delete(9, 9)) // absent: must not be logged

	rec.mu.Lock()
	got := append([][3]uint64(nil), rec.ops...)
	rec.mu.Unlock()
	// Node 1's ops share a shard, so their relative order is fixed even
	// though shards log concurrently.
	want := [][3]uint64{{0, 1, 2}, {0, 1, 3}, {1, 1, 2}}
	if len(got) != len(want) {
		t.Fatalf("logged %v, want %v", got, want)
	}
	var seq [][3]uint64
	for _, op := range got {
		if op[1] == 1 {
			seq = append(seq, op)
		}
	}
	for i, op := range seq {
		if op != want[i] {
			t.Fatalf("node-1 log order %v, want %v", seq, want)
		}
	}
}

// TestConcurrentApplyBatch hammers ApplyBatch from several goroutines
// (disjoint key ranges so the final state is deterministic) under the
// race detector, checking the aggregate counters survive concurrent
// per-partition settlement.
func TestConcurrentApplyBatch(t *testing.T) {
	g := New(Config{Shards: 8})
	const (
		workers = 8
		perW    = 4000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			var b core.Batch
			for i := uint64(0); i < perW; i++ {
				b = b.Insert(base+i%512, base+i)
				if len(b) == 256 {
					g.ApplyBatch(b)
					b = b[:0]
				}
			}
			g.ApplyBatch(b)
		}(w)
	}
	wg.Wait()
	if g.NumEdges() != workers*perW {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), workers*perW)
	}
	// Cross-check the atomic aggregates against the per-shard truth.
	st := g.Stats()
	if st.Edges != g.NumEdges() || st.Nodes != g.NumNodes() {
		t.Fatalf("aggregate counters (%d edges, %d nodes) disagree with Stats (%d, %d)",
			g.NumEdges(), g.NumNodes(), st.Edges, st.Nodes)
	}
}

// TestConcurrentBatchAndSingleMixed interleaves batched and single-op
// mutations with readers — the upgrade-path scenario a live server
// sees — and verifies nothing deadlocks and counters stay consistent.
func TestConcurrentBatchAndSingleMixed(t *testing.T) {
	g := New(Config{Shards: 8})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.HasEdge(1, 2)
			g.Degree(1)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < 2000; i++ {
				if i%2 == 0 {
					g.InsertEdge(base+i, base+i+1)
				} else {
					g.ApplyBatch(core.Batch{}.Insert(base+i, base+i+1).Delete(base+i-1, base+i))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	st := g.Stats()
	if st.Edges != g.NumEdges() {
		t.Fatalf("aggregate edges %d disagree with Stats %d", g.NumEdges(), st.Edges)
	}
}
