package sharded

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/hashutil"
)

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16},
	} {
		if got := ShardCount(tc.in); got != tc.want {
			t.Errorf("ShardCount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := ShardCount(0); got < 1 || got&(got-1) != 0 {
		t.Errorf("ShardCount(0) = %d, want a positive power of two", got)
	}
}

// TestModelConformance drives the sharded graph against a map model
// with a randomized operation stream, for several shard counts.
func TestModelConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		g := New(Config{Shards: shards})
		rng := hashutil.NewRNG(99)
		model := map[[2]uint64]bool{}
		for i := 0; i < 30000; i++ {
			u, v := rng.Uint64n(250), rng.Uint64n(250)
			key := [2]uint64{u, v}
			switch rng.Intn(5) {
			case 0, 1, 2:
				if got, want := g.InsertEdge(u, v), !model[key]; got != want {
					t.Fatalf("shards=%d op %d: InsertEdge(%d,%d) = %v, want %v", shards, i, u, v, got, want)
				}
				model[key] = true
			case 3:
				if got, want := g.DeleteEdge(u, v), model[key]; got != want {
					t.Fatalf("shards=%d op %d: DeleteEdge(%d,%d) = %v, want %v", shards, i, u, v, got, want)
				}
				delete(model, key)
			default:
				if got, want := g.HasEdge(u, v), model[key]; got != want {
					t.Fatalf("shards=%d op %d: HasEdge(%d,%d) = %v, want %v", shards, i, u, v, got, want)
				}
			}
		}
		if int(g.NumEdges()) != len(model) {
			t.Fatalf("shards=%d: NumEdges = %d, want %d", shards, g.NumEdges(), len(model))
		}
		srcs := map[uint64]bool{}
		for key := range model {
			srcs[key[0]] = true
		}
		if int(g.NumNodes()) != len(srcs) {
			t.Fatalf("shards=%d: NumNodes = %d, want %d", shards, g.NumNodes(), len(srcs))
		}
		seen := map[uint64]bool{}
		g.ForEachNode(func(u uint64) bool {
			seen[u] = true
			return true
		})
		if len(seen) != len(srcs) {
			t.Fatalf("shards=%d: ForEachNode visited %d nodes, want %d", shards, len(seen), len(srcs))
		}
		st := g.Stats()
		if st.Edges != g.NumEdges() || st.Nodes != g.NumNodes() {
			t.Fatalf("shards=%d: merged stats %d/%d disagree with counters %d/%d",
				shards, st.Edges, st.Nodes, g.NumEdges(), g.NumNodes())
		}
		if g.MemoryUsage() == 0 {
			t.Fatalf("shards=%d: MemoryUsage reported zero", shards)
		}
	}
}

// TestConcurrentStress hammers one graph from writer, deleter, query and
// traversal goroutines simultaneously; run under -race this is the
// engine's main memory-safety check.
func TestConcurrentStress(t *testing.T) {
	g := New(Config{Shards: 4})
	const writers, perWriter = 8, 3000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perWriter; i++ {
				g.InsertEdge(base*perWriter+i, i)
				if i%3 == 0 {
					g.DeleteEdge(base*perWriter+i, i)
					g.InsertEdge(base*perWriter+i, i)
				}
			}
		}(uint64(w))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := hashutil.NewRNG(seed)
			for i := 0; i < 5000; i++ {
				u := rng.Uint64n(writers * perWriter)
				g.HasEdge(u, u%perWriter)
				g.Degree(u)
				g.ForEachSuccessor(u, func(uint64) bool { return true })
				_ = g.NumEdges()
				if i%1024 == 0 {
					_ = g.Stats() // full structural scan; keep it off the hot loop
				}
			}
		}(uint64(r) + 7)
	}
	wg.Wait()

	if g.NumEdges() != writers*perWriter {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), writers*perWriter)
	}
	for w := uint64(0); w < writers; w++ {
		for i := uint64(0); i < perWriter; i += 101 {
			if !g.HasEdge(w*perWriter+i, i) {
				t.Fatalf("edge from writer %d missing", w)
			}
		}
	}
}

// TestSnapshotUnderLoad saves while writers keep mutating: the snapshot
// must be internally consistent (header count == record count) and load
// into a graph whose every edge answers HasEdge against the original.
func TestSnapshotUnderLoad(t *testing.T) {
	g := New(Config{Shards: 4})
	for i := uint64(0); i < 5000; i++ {
		g.InsertEdge(i%97, i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.InsertEdge(100000+base*1000000+i, i)
				g.DeleteEdge(100000+base*1000000+i, i)
			}
		}(uint64(w))
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() < 5000 {
		t.Fatalf("loaded %d edges, want ≥ 5000", loaded.NumEdges())
	}
	for i := uint64(0); i < 5000; i += 37 {
		if !loaded.HasEdge(i%97, i) {
			t.Fatalf("pre-load edge (%d,%d) missing from snapshot", i%97, i)
		}
	}
}

// TestSnapshotAcrossShardCounts checks 1-shard ↔ P-shard round trips.
func TestSnapshotAcrossShardCounts(t *testing.T) {
	edges := func(g *Graph) map[[2]uint64]bool {
		out := map[[2]uint64]bool{}
		g.ForEachNode(func(u uint64) bool {
			g.ForEachSuccessor(u, func(v uint64) bool {
				out[[2]uint64{u, v}] = true
				return true
			})
			return true
		})
		return out
	}
	src := New(Config{Shards: 1})
	rng := hashutil.NewRNG(5)
	for i := 0; i < 20000; i++ {
		src.InsertEdge(rng.Uint64n(500), rng.Uint64n(500))
	}
	want := edges(src)

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wide, err := Load(bytes.NewReader(buf.Bytes()), Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := edges(wide); len(got) != len(want) {
		t.Fatalf("1→8 shards: %d edges, want %d", len(got), len(want))
	}
	if wide.NumEdges() != src.NumEdges() || wide.NumNodes() != src.NumNodes() {
		t.Fatalf("1→8 shards: counters %d/%d, want %d/%d",
			wide.NumEdges(), wide.NumNodes(), src.NumEdges(), src.NumNodes())
	}

	buf.Reset()
	if err := wide.Save(&buf); err != nil {
		t.Fatal(err)
	}
	narrow, err := Load(bytes.NewReader(buf.Bytes()), Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := edges(narrow)
	if len(got) != len(want) {
		t.Fatalf("8→1 shards: %d edges, want %d", len(got), len(want))
	}
	for key := range want {
		if !got[key] {
			t.Fatalf("8→1 shards: edge %v lost", key)
		}
	}
}

// TestReentrantTraversal verifies that traversal callbacks may mutate
// the graph: snapshot-then-callback iteration must not deadlock.
func TestReentrantTraversal(t *testing.T) {
	g := New(Config{Shards: 2})
	for i := uint64(0); i < 100; i++ {
		g.InsertEdge(i%10, i)
	}
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v uint64) bool {
			g.InsertEdge(v, u) // reverse edge, same or different shard
			return true
		})
		return true
	})
	if !g.HasEdge(11, 1) {
		t.Fatal("reverse edge missing after reentrant traversal")
	}
}

// TestLoadSurfacesTypedCorruption verifies snapshot restore reports
// damage as core.ErrCorrupt with the byte offset of the first bad
// byte, so WAL recovery and operators can tell "truncated snapshot"
// from ordinary I/O failure.
func TestLoadSurfacesTypedCorruption(t *testing.T) {
	g := New(Config{Shards: 2})
	for i := uint64(0); i < 50; i++ {
		g.InsertEdge(i, i+1)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{0, 0, 0, 0}, snap[4:]...)},
		{"truncated mid-edge", snap[:len(snap)-5]},
	} {
		_, err := Load(bytes.NewReader(tc.data), Config{Shards: 2})
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("%s: err = %v, want core.ErrCorrupt", tc.name, err)
		}
		var ce *core.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *core.CorruptError", tc.name, err)
		}
		if tc.name == "truncated mid-edge" && ce.Offset == 0 {
			t.Fatalf("%s: offset = 0, want the offset of the torn edge", tc.name)
		}
	}
}

// walRecorder is a Logger that captures the mutation stream.
type walRecorder struct {
	mu   sync.Mutex
	ops  [][3]uint64 // {op, u, v}; op 0 = insert, 1 = delete
	fail error
}

func (r *walRecorder) LogBatch(b core.Batch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, op := range b {
		code := uint64(0)
		if op.Kind == core.OpDelete {
			code = 1
		}
		r.ops = append(r.ops, [3]uint64{code, op.U, op.V})
	}
	return r.fail
}

// TestWALHookLogsOnlyMutations verifies the Logger sees exactly the
// state-changing operations, in order, and that logger failures surface
// through LogErr.
func TestWALHookLogsOnlyMutations(t *testing.T) {
	rec := &walRecorder{}
	g := New(Config{Shards: 2, WAL: rec})
	g.InsertEdge(1, 2)
	g.InsertEdge(1, 2) // duplicate: not logged
	g.DeleteEdge(9, 9) // absent: not logged
	g.DeleteEdge(1, 2)
	want := [][3]uint64{{0, 1, 2}, {1, 1, 2}}
	rec.mu.Lock()
	got := append([][3]uint64(nil), rec.ops...)
	rec.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("logged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logged %v, want %v", got, want)
		}
	}
	if err := g.LogErr(); err != nil {
		t.Fatalf("LogErr = %v, want nil", err)
	}

	rec.fail = errors.New("disk full")
	g.InsertEdge(3, 4)
	if err := g.LogErr(); err == nil || err.Error() != "disk full" {
		t.Fatalf("LogErr = %v, want disk full", err)
	}
}

// TestSetWALClearsLogErr: a sticky log failure belongs to the logger
// that produced it — swapping in a healthy logger (or detaching) must
// not keep poisoning mutations.
func TestSetWALClearsLogErr(t *testing.T) {
	rec := &walRecorder{fail: errors.New("disk full")}
	g := New(Config{Shards: 2, WAL: rec})
	g.InsertEdge(1, 2)
	if g.LogErr() == nil {
		t.Fatal("failure not recorded")
	}
	g.SetWAL(&walRecorder{})
	if err := g.LogErr(); err != nil {
		t.Fatalf("LogErr after swap = %v, want nil", err)
	}
	g.InsertEdge(3, 4)
	if err := g.LogErr(); err != nil {
		t.Fatalf("healthy logger poisoned: %v", err)
	}
}
