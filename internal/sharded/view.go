package sharded

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"cuckoograph/internal/core"
	"cuckoograph/internal/csr"
	"cuckoograph/internal/graphstore"
)

// View is an immutable, cross-shard-consistent snapshot of a Graph,
// stamped with the monotonic epoch at which it was taken.
//
// Taking a view copies nothing: Snapshot briefly freezes every shard in
// shard order (an O(P) registration, no data movement) and the view
// initially aliases the live cuckoo tables. From then on the shards
// copy on write, lazily and at L-CHT cell granularity: the first
// mutation to touch a source node u after the view's epoch first
// preserves u's adjacency — exactly the flight path the mutation is
// about to restructure — into the view's per-shard overlay, and nothing
// an ongoing write stream never touches is ever copied. One preserved
// pre-image is shared by every live view that needs it, so N concurrent
// views cost one copy per touched node, not N.
//
// Reads resolve the overlay first and fall through to the live shard
// (under its read lock) for untouched nodes, so a view is always
// bit-identical to the graph as it stood at the view's epoch while
// writers proceed at full speed. Release drops the view from every
// shard's registry; everything it pinned becomes collectable
// immediately. Using a view after Release panics.
//
// View implements graphstore.Store so the whole analytics suite runs on
// frozen views; its mutating methods panic.
type View struct {
	g     *Graph
	epoch uint64
	nodes uint64
	edges uint64

	// overlays[i] is the copy-on-write state for shard i: the frozen
	// adjacency of every node shard i mutated since the view's epoch. A
	// nil/empty slice records that the node did not exist at the epoch.
	// Entries are written by mutators under the shard's write lock and
	// read by view readers under its read lock.
	overlays []map[uint64][]uint64

	// csrOnce/csrIdx memoize the compiled CSR index of the view's
	// epoch: built lazily by the first analytics pass that asks (see
	// CSR), shared by every subsequent one, and dropped when the last
	// reference releases so a bounded snapshot ring holds a bounded
	// number of compiled epochs.
	csrOnce sync.Once
	csrIdx  atomic.Pointer[csr.Index]

	// refs counts the holders of the view: 1 at birth for the taker,
	// plus one per Retain. The view is dropped from the shard
	// registries when the count reaches zero, so a shared holder (a
	// server's snapshot ring, an in-flight analytics pass) can Release
	// independently without pulling the view out from under the others.
	refs atomic.Int64
}

// Compile-time wiring: a frozen view is a Store (so internal/analytics
// runs on it unchanged) and the sharded engine is a Snapshotter.
var (
	_ graphstore.Store       = (*View)(nil)
	_ graphstore.View        = (*View)(nil)
	_ graphstore.Snapshotter = (*Graph)(nil)
	_ graphstore.Indexed     = (*View)(nil)
	_ csr.ShardedSource      = (*View)(nil)
)

// Snapshot returns a consistent frozen view of the whole graph. The
// freeze is brief — every shard's write lock is taken in shard order,
// the view is registered, and the locks are released before Snapshot
// returns; no edge data is copied. Multi-shard batches are excluded for
// the duration (see snapMu), so a view can never observe a half-applied
// ApplyBatch. The caller must Release the view when done with it.
func (g *Graph) Snapshot() *View {
	v, _ := g.snapshotWithCut(nil)
	return v
}

// SnapshotView implements graphstore.Snapshotter.
func (g *Graph) SnapshotView() graphstore.View { return g.Snapshot() }

// Epoch returns the epoch of the most recently taken snapshot; the next
// snapshot is stamped with a strictly greater value.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// LiveViews returns how many unreleased views currently exist.
func (g *Graph) LiveViews() int { return int(g.liveViews.Load()) }

// CoWBytes returns the cumulative bytes of adjacency pre-images copied
// on behalf of live views over the graph's lifetime — the total
// copy-on-write cost of the snapshot subsystem. Each preserved node
// costs 16 bytes of overlay entry plus 8 per frozen successor,
// regardless of how many views share the pre-image.
func (g *Graph) CoWBytes() uint64 { return g.cowBytes.Load() }

// ViewStats groups the snapshot-subsystem counters into one read — the
// export hook behind the server's /metrics endpoint and g.info. Each
// field is an independent atomic load; no shard lock is taken, so a
// scrape never queues behind writers.
type ViewStats struct {
	Epoch     uint64 // epoch of the most recently taken snapshot
	LiveViews int    // unreleased views currently pinning CoW state
	CoWBytes  uint64 // cumulative copy-on-write bytes preserved for views
}

// ViewStats returns the snapshot/CoW counters.
func (g *Graph) ViewStats() ViewStats {
	return ViewStats{Epoch: g.Epoch(), LiveViews: g.LiveViews(), CoWBytes: g.CoWBytes()}
}

// snapshotWithCut takes a snapshot, invoking cut (if non-nil) inside
// the freeze window: every shard's write lock is held and multi-shard
// batches are excluded, so a cut that rotates the WAL partitions the
// log exactly against the view (mutations log under a shard's write
// lock, which cannot be held while the freeze is).
func (g *Graph) snapshotWithCut(cut func() error) (*View, error) {
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
	defer func() {
		for i := range g.shards {
			g.shards[i].mu.Unlock()
		}
	}()
	if cut != nil {
		if err := cut(); err != nil {
			return nil, err
		}
	}
	v := &View{
		g:        g,
		epoch:    g.epoch.Add(1),
		nodes:    g.nodes.Load(),
		edges:    g.edges.Load(),
		overlays: make([]map[uint64][]uint64, len(g.shards)),
	}
	v.refs.Store(1)
	for i := range g.shards {
		v.overlays[i] = make(map[uint64][]uint64)
		g.shards[i].views = append(g.shards[i].views, v)
		g.shards[i].viewGen++
	}
	g.liveViews.Add(1)
	return v, nil
}

// preserve copies the pre-images every live view of sh still needs
// before part's ops restructure them. It runs under sh's write lock,
// immediately before the partition is applied. Each distinct source
// node in part is copied at most once; the copy is shared across all
// views lacking it — correct for every one of them, because a node
// whose adjacency had changed since a view's epoch would already be in
// that view's overlay.
func (g *Graph) preserve(si int, sh *shard, part core.Batch) {
	var done map[uint64]struct{}
	var pre []uint64
	for _, op := range part {
		u := op.U
		// Memo hit: this exact node was already preserved into every
		// current view (viewGen pins "current"), which real streams'
		// same-source bursts make the common case.
		if sh.cowGen == sh.viewGen && sh.cowU == u {
			if len(part) == 1 {
				return
			}
			continue
		}
		if _, dup := done[u]; dup {
			continue
		}
		copied := false
		for _, v := range sh.views {
			ov := v.overlays[si]
			if _, ok := ov[u]; ok {
				continue
			}
			if !copied {
				pre = sh.g.AppendSuccessors(u, nil)
				g.cowBytes.Add(16 + 8*uint64(len(pre)))
				copied = true
			}
			ov[u] = pre
		}
		sh.cowU, sh.cowGen = u, sh.viewGen
		if len(part) == 1 {
			return // single-op partitions cannot repeat a source node
		}
		if done == nil {
			done = make(map[uint64]struct{}, len(part))
		}
		done[u] = struct{}{}
	}
}

// dropView unregisters v from every shard. Pre-image capture stops as
// soon as each shard's registry entry is gone.
func (g *Graph) dropView(v *View) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for j, w := range sh.views {
			if w == v {
				sh.views = append(sh.views[:j], sh.views[j+1:]...)
				sh.viewGen++
				break
			}
		}
		sh.mu.Unlock()
	}
	g.liveViews.Add(-1)
}

// Epoch returns the snapshot epoch the view was stamped with.
func (v *View) Epoch() uint64 { return v.epoch }

// Retain adds a reference to the view, so a second holder (an
// analytics pass sharing a server's retained snapshot, say) can use it
// while the first is free to Release at any time. Every Retain must be
// paired with a Release. Retaining an already-released view panics.
func (v *View) Retain() {
	for {
		n := v.refs.Load()
		if n <= 0 {
			panic("sharded: Retain of released View")
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return
		}
	}
}

// Release drops one reference. When the last holder releases, the
// shards stop preserving pre-images for the view and the overlay maps
// (plus every pre-image only this view pinned) become collectable the
// moment the holders let go of v. Extra Releases beyond the reference
// count are ignored; any read of a fully released view panics.
func (v *View) Release() {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return
		}
		if !v.refs.CompareAndSwap(n, n-1) {
			continue
		}
		if n == 1 {
			v.g.dropView(v)
			// The compiled index dies with the view's last reference:
			// even a holder that (erroneously) keeps the *View alive no
			// longer pins the flat arrays, so the server's snapshot ring
			// bounds CSR memory exactly as it bounds CoW state.
			v.csrIdx.Store(nil)
		}
		return
	}
}

func (v *View) check() {
	if v.refs.Load() <= 0 {
		panic("sharded: use of released View")
	}
}

// NumEdges returns the number of distinct edges at the view's epoch.
func (v *View) NumEdges() uint64 { v.check(); return v.edges }

// NumNodes returns the number of distinct source nodes at the epoch.
func (v *View) NumNodes() uint64 { v.check(); return v.nodes }

// HasEdge reports whether ⟨u,w⟩ was stored at the view's epoch.
func (v *View) HasEdge(u, w uint64) bool {
	v.check()
	si := v.g.shardIndex(u)
	sh := &v.g.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if succ, ok := v.overlays[si][u]; ok {
		for _, x := range succ {
			if x == w {
				return true
			}
		}
		return false
	}
	return sh.g.HasEdge(u, w)
}

// ForEachSuccessor calls fn for each successor u had at the view's
// epoch until fn returns false. Like the live graph's traversals, the
// successors are resolved under the shard read lock and fn runs after
// it is released, so fn may re-enter the graph or the view.
func (v *View) ForEachSuccessor(u uint64, fn func(w uint64) bool) {
	for _, w := range v.successorsShared(u) {
		if !fn(w) {
			return
		}
	}
}

// Successors returns u's successors at the view's epoch as a fresh
// slice the caller owns, matching the live graph's Successors.
func (v *View) Successors(u uint64) []uint64 {
	succ := v.successorsShared(u)
	if len(succ) == 0 {
		return nil
	}
	return append([]uint64(nil), succ...)
}

// successorsShared resolves u's successors, possibly aliasing the
// frozen pre-image that every live view of u shares. Internal read
// paths iterate it and must never mutate it — handing it to a caller
// who might (the exported Successors) requires a copy.
func (v *View) successorsShared(u uint64) []uint64 {
	succ, _ := v.successorsInto(u, nil)
	return succ
}

// successorsInto is successorsShared with a reusable scratch buffer for
// the fall-through copy. fromOverlay tells the caller whether the
// result aliases a shared frozen pre-image — which must never be
// recycled as scratch, or the next append would clobber the pre-image
// under every other live view.
func (v *View) successorsInto(u uint64, scratch []uint64) (succ []uint64, fromOverlay bool) {
	v.check()
	si := v.g.shardIndex(u)
	sh := &v.g.shards[si]
	sh.mu.RLock()
	succ, fromOverlay = v.overlays[si][u]
	if !fromOverlay {
		succ = sh.g.AppendSuccessors(u, scratch[:0])
	}
	sh.mu.RUnlock()
	return succ, fromOverlay
}

// Degree returns u's out-degree at the view's epoch, without
// materialising the successor list.
func (v *View) Degree(u uint64) int {
	v.check()
	si := v.g.shardIndex(u)
	sh := &v.g.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if succ, ok := v.overlays[si][u]; ok {
		return len(succ)
	}
	// Untouched cell: the live engine's O(R) population counters are
	// the view's truth too.
	return sh.g.Degree(u)
}

// ForEachNode calls fn for every node that had at least one out-edge at
// the view's epoch. Per shard, the frozen node set is resolved under
// the read lock and fn runs unlocked.
func (v *View) ForEachNode(fn func(u uint64) bool) {
	v.check()
	for si := range v.g.shards {
		for _, u := range v.shardNodes(si) {
			if !fn(u) {
				return
			}
		}
	}
}

// shardNodes resolves shard si's node set at the view's epoch: the live
// nodes not overridden by the overlay, plus the overlaid nodes that
// existed at the epoch (non-empty pre-image). Any node whose membership
// changed after the epoch was necessarily mutated, hence overlaid, so
// the merge is exact.
func (v *View) shardNodes(si int) []uint64 {
	sh := &v.g.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ov := v.overlays[si]
	var nodes []uint64
	sh.g.ForEachNode(func(u uint64) bool {
		if _, overlaid := ov[u]; !overlaid {
			nodes = append(nodes, u)
		}
		return true
	})
	for u, succ := range ov {
		if len(succ) > 0 {
			nodes = append(nodes, u)
		}
	}
	return nodes
}

// CSR returns the compiled compressed-sparse-row index of the view's
// epoch, building it on first call (all later callers share the same
// index; the build is guarded by sync.Once so concurrent analytics
// passes trigger exactly one compile). The build reads only frozen
// state through the per-shard scan path — no shard lock is held for
// longer than one node's successor copy — so writers proceed at full
// speed while an epoch compiles. The index is released with the view's
// last Release. CSR implements graphstore.Indexed, which is how the
// analytics kernels discover it.
func (v *View) CSR() *csr.Index {
	v.check()
	v.csrOnce.Do(func() { v.csrIdx.Store(csr.Build(v)) })
	idx := v.csrIdx.Load()
	if idx == nil {
		panic("sharded: use of released View")
	}
	return idx
}

// ShardCount implements csr.ShardedSource: the number of partitions
// the CSR build fans out over.
func (v *View) ShardCount() int { v.check(); return len(v.g.shards) }

// ShardNodes implements csr.ShardedSource: partition si's node set at
// the view's epoch.
func (v *View) ShardNodes(si int) []uint64 { v.check(); return v.shardNodes(si) }

// AppendSuccessors implements csr.ShardedSource: appends u's frozen
// successors to dst. Unlike successorsInto it always copies — the
// caller owns dst outright, even when u's adjacency resolved to a
// shared overlay pre-image.
func (v *View) AppendSuccessors(u uint64, dst []uint64) []uint64 {
	v.check()
	si := v.g.shardIndex(u)
	sh := &v.g.shards[si]
	sh.mu.RLock()
	if succ, ok := v.overlays[si][u]; ok {
		dst = append(dst, succ...)
	} else {
		dst = sh.g.AppendSuccessors(u, dst)
	}
	sh.mu.RUnlock()
	return dst
}

// MemoryUsage reports the bytes the view itself pins: its overlay
// entries and frozen pre-images (the copy-on-write footprint), not the
// live structure it aliases.
func (v *View) MemoryUsage() uint64 {
	v.check()
	var total uint64
	for si := range v.g.shards {
		sh := &v.g.shards[si]
		sh.mu.RLock()
		for _, succ := range v.overlays[si] {
			total += 16 + 8*uint64(len(succ))
		}
		sh.mu.RUnlock()
	}
	return total
}

// InsertEdge panics: views are read-only.
func (v *View) InsertEdge(u, w uint64) bool { panic("sharded: InsertEdge on read-only View") }

// DeleteEdge panics: views are read-only.
func (v *View) DeleteEdge(u, w uint64) bool { panic("sharded: DeleteEdge on read-only View") }

// Save writes the view in the basic-variant snapshot format of
// core.Graph.Save — the same bytes a Save of the live graph at the
// view's epoch would have produced — without holding any shard lock
// across the serialization. Checkpoint is built on this: the freeze
// window covers only the WAL cut, and the (arbitrarily long) disk write
// streams from the frozen view while writers proceed.
func (v *View) Save(w io.Writer) error {
	v.check()
	return core.WriteBasicSnapshot(w, v.edges, func(emit func(u, x uint64) error) error {
		var scratch []uint64
		for si := range v.g.shards {
			nodes := v.shardNodes(si)
			// Deterministic output: a given epoch always serializes the
			// same bytes, whatever the overlay iteration order.
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			for _, u := range nodes {
				succ, fromOverlay := v.successorsInto(u, scratch)
				if !fromOverlay {
					scratch = succ // safe to recycle: it is our own buffer
				}
				for _, x := range succ {
					if err := emit(u, x); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}
