package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestReadPathShapes(t *testing.T) {
	results := ReadPath(64, 7)
	if len(results) != 3 {
		t.Fatalf("got %d shapes, want 3", len(results))
	}
	wantDegrees := map[string]int{"inline-1": 1, "inline-2R": 6, "chained": readPathChainedDegree}
	for _, r := range results {
		if want, ok := wantDegrees[r.Shape]; !ok || r.Degree != want {
			t.Fatalf("shape %q degree %d, want %d", r.Shape, r.Degree, want)
		}
		if r.LookupMops <= 0 || r.MissMops <= 0 || r.DegreeMops <= 0 || r.ScanMeps <= 0 {
			t.Fatalf("shape %q has a non-positive throughput: %+v", r.Shape, r)
		}
		// The zero-allocation guarantee of the read path, measured
		// through the harness's own malloc counter.
		if r.LookupAllocs != 0 || r.MissAllocs != 0 || r.DegreeAllocs != 0 || r.ScanAllocs != 0 {
			t.Fatalf("shape %q allocates on the read path: lookup %.3f miss %.3f degree %.3f scan %.3f",
				r.Shape, r.LookupAllocs, r.MissAllocs, r.DegreeAllocs, r.ScanAllocs)
		}
	}
}

func TestWriteJSONReport(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteJSONReport(dir, JSONReport{
		Workload: "readpath",
		Scale:    64,
		Rows:     []JSONRow{MopsRow("chained/lookup", 8.0, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_readpath.json" {
		t.Fatalf("path = %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "readpath" || rep.Scale != 64 || len(rep.Rows) != 1 {
		t.Fatalf("roundtrip mismatch: %+v", rep)
	}
	if rep.Rows[0].NsPerOp != 125 { // 1e3 / 8 Mops
		t.Fatalf("ns/op = %v, want 125", rep.Rows[0].NsPerOp)
	}
	if rep.GitRev == "" {
		t.Fatal("git rev not stamped")
	}
}
