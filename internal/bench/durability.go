package bench

import (
	"fmt"
	"sync"
	"time"

	"cuckoograph/internal/dataset"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// DurabilityResult holds one durability-workload measurement: the same
// concurrent insert stream with the WAL detached and attached, plus the
// cost of rebuilding the graph from the log it left behind.
type DurabilityResult struct {
	Edges   int
	Writers int
	Sync    wal.SyncPolicy

	WALOffMops float64
	WALOnMops  float64

	RecoveredEdges   uint64
	RecoveredRecords uint64
	RecoverTime      time.Duration
	// RecoverPerM normalises recovery to wall-clock per million replayed
	// records, the ISSUE's recovery metric.
	RecoverPerM time.Duration
}

// SyncName names a policy for table rows.
func SyncName(p wal.SyncPolicy) string {
	switch p {
	case wal.SyncAlways:
		return "always"
	case wal.SyncNone:
		return "nosync"
	case wal.SyncAsync:
		return "async"
	}
	return fmt.Sprintf("sync(%d)", int(p))
}

// insertConcurrently fans the stream over writers goroutines inserting
// disjoint slices and returns the wall-clock time until all finish.
func insertConcurrently(g *sharded.Graph, stream []dataset.Edge, writers int) time.Duration {
	if writers < 1 {
		writers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	chunk := (len(stream) + writers - 1) / writers
	for w := 0; w < writers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(stream))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []dataset.Edge) {
			defer wg.Done()
			for _, e := range part {
				g.InsertEdge(e.U, e.V)
			}
		}(stream[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// Durability runs the durability workload in dir, which must be empty:
// insert the stream with writers concurrent goroutines into a plain
// sharded graph, then into one logging to a WAL with the given policy,
// then recover a fresh graph from the log and verify it matches. The
// WAL-on/WAL-off ratio is the price of durability; RecoverPerM is the
// replay speed.
func Durability(stream []dataset.Edge, writers int, dir string, opts wal.Options) (DurabilityResult, error) {
	res := DurabilityResult{Edges: len(stream), Writers: writers, Sync: opts.Sync}
	cfg := sharded.Config{Shards: 16}

	off := sharded.New(cfg)
	res.WALOffMops = Mops(len(stream), insertConcurrently(off, stream, writers))

	w, err := wal.Open(dir, opts)
	if err != nil {
		return res, err
	}
	walCfg := cfg
	walCfg.WAL = w
	on := sharded.New(walCfg)
	res.WALOnMops = Mops(len(stream), insertConcurrently(on, stream, writers))
	if err := on.LogErr(); err != nil {
		w.Close()
		return res, fmt.Errorf("bench: wal append: %w", err)
	}
	if err := w.Close(); err != nil {
		return res, fmt.Errorf("bench: wal close: %w", err)
	}

	start := time.Now()
	rec, stats, err := wal.Recover(dir, cfg)
	if err != nil {
		return res, fmt.Errorf("bench: recover: %w", err)
	}
	res.RecoverTime = time.Since(start)
	res.RecoveredEdges = rec.NumEdges()
	res.RecoveredRecords = stats.Replay.Records
	if res.RecoveredEdges != on.NumEdges() {
		return res, fmt.Errorf("bench: recovered %d edges, logged graph has %d", res.RecoveredEdges, on.NumEdges())
	}
	if stats.Replay.Records > 0 {
		res.RecoverPerM = time.Duration(float64(res.RecoverTime) * 1e6 / float64(stats.Replay.Records))
	}
	return res, nil
}
