package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// JSONRow is one measured series of a workload in the machine-readable
// results file: a named metric with its throughput, latency and
// allocation cost. Fields that do not apply to a metric are zero.
type JSONRow struct {
	Name        string  `json:"name"`
	Mops        float64 `json:"mops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// JSONReport is the schema of a BENCH_<workload>.json file. One file
// per workload per run, overwritten in place, so committing the file
// tracks the perf trajectory of that workload across PRs — CI uploads
// the regenerated files as artifacts for comparison.
type JSONReport struct {
	Workload string    `json:"workload"`
	GitRev   string    `json:"git_rev"`
	Scale    uint64    `json:"scale"`
	Rows     []JSONRow `json:"rows"`
}

// MopsRow builds a row from a Mops measurement, deriving ns/op.
func MopsRow(name string, mops, allocsPerOp float64) JSONRow {
	r := JSONRow{Name: name, Mops: mops, AllocsPerOp: allocsPerOp}
	if mops > 0 {
		r.NsPerOp = 1e3 / mops
	}
	return r
}

// NsRow builds a row from a ns/op measurement, deriving Mops.
func NsRow(name string, ns float64) JSONRow {
	r := JSONRow{Name: name, NsPerOp: ns}
	if ns > 0 {
		r.Mops = 1e3 / ns
	}
	return r
}

// GitRev returns the short hash of the checked-out revision — with a
// "-dirty" suffix when the work tree has uncommitted changes, so a
// report generated mid-development is never attributed to the clean
// parent commit — or "unknown" outside a git work tree.
func GitRev() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// WriteJSONReport writes the report to dir/BENCH_<workload>.json and
// returns the path.
func WriteJSONReport(dir string, r JSONReport) (string, error) {
	if r.GitRev == "" {
		r.GitRev = GitRev()
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Workload))
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
