package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cuckoograph/internal/core"
	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/wal"
)

// LoadStream feeds a generated stream into s through the batched
// mutation path when the store has one, chunked so each ApplyBatch
// amortizes lock acquisitions and cell lookups; stores without a batch
// path fall back to per-edge inserts. It is the shared load phase of
// the analytics and measurement harnesses.
func LoadStream(s graphstore.Store, stream []dataset.Edge) {
	bs, ok := s.(graphstore.BatchStore)
	if !ok {
		for _, e := range stream {
			s.InsertEdge(e.U, e.V)
		}
		return
	}
	c := core.NewChunker(sharded.LoadBatchSize, func(b core.Batch) { bs.ApplyBatch(b) })
	for _, e := range stream {
		c.Insert(e.U, e.V)
	}
	c.Flush()
}

// BatchOpsResult is one row of the batched-ingest workload: the same
// stream driven through ApplyBatch at one batch size — BatchSize 0
// means the single-op InsertEdge path — with the WAL attached.
type BatchOpsResult struct {
	BatchSize int
	Mops      float64
	// WALBytes is the on-disk size of the log the run produced;
	// BytesPerEdge normalises it by applied (distinct) edges, showing
	// the framing overhead batching saves.
	WALBytes     int64
	BytesPerEdge float64
	// Edges is the number of distinct edges the stream produced.
	Edges uint64
}

// Label names the row's mutation path.
func (r BatchOpsResult) Label() string {
	if r.BatchSize <= 0 {
		return "single-op"
	}
	return fmt.Sprintf("batch-%d", r.BatchSize)
}

// BatchOps prices the batched mutation pipeline: for the single-op path
// and each batch size it ingests the stream into a fresh sharded graph
// logging to a fresh WAL under dir, measuring throughput and the log
// bytes per applied edge. Every run sees the identical stream, so rows
// differ only in how mutations are batched.
func BatchOps(stream []dataset.Edge, sizes []int, dir string, opts wal.Options) ([]BatchOpsResult, error) {
	out := make([]BatchOpsResult, 0, len(sizes)+1)
	for _, size := range append([]int{0}, sizes...) {
		res, err := batchOpsRun(stream, size, filepath.Join(dir, fmt.Sprintf("b%d", size)), opts)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func batchOpsRun(stream []dataset.Edge, size int, dir string, opts wal.Options) (BatchOpsResult, error) {
	res := BatchOpsResult{BatchSize: size}
	w, err := wal.Open(dir, opts)
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	g := sharded.New(sharded.Config{Shards: 16, WAL: w})

	start := time.Now()
	if size <= 0 {
		for _, e := range stream {
			g.InsertEdge(e.U, e.V)
		}
	} else {
		// Size 1 exercises ApplyBatch's framing cost without any
		// amortization — the honesty baseline for the sweep.
		c := core.NewChunker(size, func(b core.Batch) { g.ApplyBatch(b) })
		for _, e := range stream {
			c.Insert(e.U, e.V)
		}
		c.Flush()
	}
	res.Mops = Mops(len(stream), time.Since(start))
	res.Edges = g.NumEdges()

	if err := g.LogErr(); err != nil {
		w.Close()
		return res, fmt.Errorf("bench: wal append: %w", err)
	}
	if err := w.Close(); err != nil {
		return res, fmt.Errorf("bench: wal close: %w", err)
	}
	res.WALBytes, err = walDirBytes(dir)
	if err != nil {
		return res, err
	}
	if res.Edges > 0 {
		res.BytesPerEdge = float64(res.WALBytes) / float64(res.Edges)
	}

	// The log must replay to the same graph regardless of batching.
	rec, _, err := wal.Recover(dir, sharded.Config{})
	if err != nil {
		return res, fmt.Errorf("bench: recover: %w", err)
	}
	if rec.NumEdges() != res.Edges {
		return res, fmt.Errorf("bench: recovered %d edges, ingested graph has %d", rec.NumEdges(), res.Edges)
	}
	return res, nil
}

// walDirBytes sums the segment files of a WAL directory.
func walDirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".seg" {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}
