package bench

import "testing"

// TestServerOpsCell drives one tiny cell of each workload through a
// real loopback server: the exchange stays in sync (a desync or error
// reply panics), throughput is measured, and the query side verifies
// against the preloaded edges.
func TestServerOpsCell(t *testing.T) {
	for _, wl := range []string{"insert", "query", "mixed"} {
		for _, depth := range []int{1, 4} {
			r := serverOpsCell(wl, depth, 512, 1)
			if r.Workload != wl || r.Depth != depth {
				t.Fatalf("cell identity = %q/%d, want %q/%d", r.Workload, r.Depth, wl, depth)
			}
			if r.Mops <= 0 || r.NsPerOp <= 0 {
				t.Fatalf("%s/d%d: no throughput measured: %+v", wl, depth, r)
			}
		}
	}
}

// TestAppendServerCmd pins the wire encoding the benchmark replays.
func TestAppendServerCmd(t *testing.T) {
	got := string(appendServerCmd(nil, "g.insert", 7, 1234))
	want := "*3\r\n$8\r\ng.insert\r\n$1\r\n7\r\n$4\r\n1234\r\n"
	if got != want {
		t.Fatalf("encoded %q, want %q", got, want)
	}
}
