package bench

import (
	"time"

	"cuckoograph/internal/dataset"
	"cuckoograph/internal/sharded"
)

// SnapshotResult holds one snapshot-workload measurement: writer
// throughput with a given number of live frozen views, the latency of
// opening a snapshot on the loaded graph, and the copy-on-write cost
// the views induced.
type SnapshotResult struct {
	Views      int
	Edges      int // mutation ops applied while views were live
	WriterMops float64
	// OpenLatency is the mean wall-clock cost of Graph.Snapshot on the
	// preloaded graph — the brief all-shard freeze plus registration.
	OpenLatency time.Duration
	// CoWBytes is how many pre-image bytes mutations copied on behalf
	// of the live views during the write phase; CoWPerMOps normalises
	// to bytes per million mutation ops issued. (Ops, not applied
	// mutations: a duplicate insert still probes — and preserves — its
	// flight path, so it pays CoW like any other write.)
	CoWBytes   uint64
	CoWPerMOps float64
}

// SnapshotWorkload prices the snapshot subsystem: for each entry of
// viewCounts it preloads half the stream into a fresh sharded graph,
// opens that many frozen views (timing the opens), then ingests the
// second half with writers concurrent goroutines while the views stay
// live — so the write phase keeps touching frozen cells and pays the
// real copy-on-write cost. Entry 0 is the no-view baseline the ISSUE's
// ≤25%-overhead acceptance bound is measured against. Every view is
// checked to still show the preload state afterwards, so the bench
// fails loudly if CoW ever under-copies.
func SnapshotWorkload(stream []dataset.Edge, writers int, viewCounts []int) []SnapshotResult {
	half := len(stream) / 2
	preload, write := stream[:half], stream[half:]
	results := make([]SnapshotResult, 0, len(viewCounts))
	for _, nViews := range viewCounts {
		g := sharded.New(sharded.Config{Shards: 16})
		LoadStream(g, preload)
		frozenEdges := g.NumEdges()

		views := make([]*sharded.View, nViews)
		var openTotal time.Duration
		for i := range views {
			start := time.Now()
			views[i] = g.Snapshot()
			openTotal += time.Since(start)
		}
		cow0 := g.CoWBytes()

		elapsed := insertConcurrently(g, write, writers)

		res := SnapshotResult{
			Views:      nViews,
			Edges:      len(write),
			WriterMops: Mops(len(write), elapsed),
			CoWBytes:   g.CoWBytes() - cow0,
		}
		if nViews > 0 {
			res.OpenLatency = openTotal / time.Duration(nViews)
		}
		if len(write) > 0 {
			res.CoWPerMOps = float64(res.CoWBytes) * 1e6 / float64(len(write))
		}
		for _, v := range views {
			// Re-count by full iteration (the stamped NumEdges is frozen
			// by construction and proves nothing): if CoW ever
			// under-copies, the view's actual edge set drifts and this
			// fails loudly.
			var n uint64
			v.ForEachNode(func(u uint64) bool {
				n += uint64(v.Degree(u))
				return true
			})
			if n != frozenEdges {
				panic("bench: frozen view drifted during write phase")
			}
			v.Release()
		}
		results = append(results, res)
	}
	return results
}
