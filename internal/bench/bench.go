// Package bench is the measurement harness behind every figure and
// table of the paper's evaluation (§V). It measures insertion, query
// and deletion throughput in Mops, samples structural memory during
// insertion, sweeps CuckooGraph parameters, and runs the seven graph
// analytics tasks — printing the same rows and series the paper plots.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/core"
	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/stores"
)

// Mops converts an operation count and duration to million ops/second.
func Mops(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// OpsResult holds one scheme's basic-task measurements (§V-D).
type OpsResult struct {
	Scheme     string
	InsertMops float64
	QueryMops  float64
	DeleteMops float64
	MemoryMB   float64 // after all deduped inserts
}

// MemPoint is one sample of the Figure 9 memory curve.
type MemPoint struct {
	Inserted int
	Bytes    uint64
}

// BasicOps runs the §V-D methodology on one store: insert the whole
// stream, query every edge, then delete edges one by one; finally replay
// the deduped stream to record the memory curve.
func BasicOps(f graphstore.Factory, stream []dataset.Edge, samples int) (OpsResult, []MemPoint) {
	res := OpsResult{Scheme: f.Name}

	s := f.New()
	start := time.Now()
	for _, e := range stream {
		s.InsertEdge(e.U, e.V)
	}
	res.InsertMops = Mops(len(stream), time.Since(start))

	start = time.Now()
	for _, e := range stream {
		s.HasEdge(e.U, e.V)
	}
	res.QueryMops = Mops(len(stream), time.Since(start))

	dedup := dataset.Dedup(stream)
	start = time.Now()
	for _, e := range dedup {
		s.DeleteEdge(e.U, e.V)
	}
	res.DeleteMops = Mops(len(dedup), time.Since(start))

	// Memory curve on a fresh store over the deduped stream (§V-D: "we
	// first de-duplicate the datasets ... after each insertion, the
	// physical memory overhead at that moment is output").
	s = f.New()
	if samples <= 0 {
		samples = 20
	}
	every := len(dedup) / samples
	if every == 0 {
		every = 1
	}
	var curve []MemPoint
	for i, e := range dedup {
		s.InsertEdge(e.U, e.V)
		if (i+1)%every == 0 || i == len(dedup)-1 {
			curve = append(curve, MemPoint{Inserted: i + 1, Bytes: s.MemoryUsage()})
		}
	}
	res.MemoryMB = float64(s.MemoryUsage()) / (1 << 20)
	return res, curve
}

// InsertQueryThroughput measures only insert and query Mops plus final
// memory — the §V-B parameter-sweep metric.
func InsertQueryThroughput(newStore func() graphstore.Store, stream []dataset.Edge) (insertMops, queryMops, memMB float64) {
	s := newStore()
	start := time.Now()
	for _, e := range stream {
		s.InsertEdge(e.U, e.V)
	}
	insert := time.Since(start)
	start = time.Now()
	for _, e := range stream {
		s.HasEdge(e.U, e.V)
	}
	query := time.Since(start)
	return Mops(len(stream), insert), Mops(len(stream), query),
		float64(s.MemoryUsage()) / (1 << 20)
}

// SweepPoint is one (parameter value, measurements) row of Figures 2-4.
type SweepPoint struct {
	Param      string
	InsertMops float64
	QueryMops  float64
	MemoryMB   float64
}

// SweepParam measures CuckooGraph across parameter values; configure
// builds the core config for each value (Figures 2, 3, 4).
func SweepParam(values []string, configure func(v string) core.Config, stream []dataset.Edge) []SweepPoint {
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		cfg := configure(v)
		ins, qry, mem := InsertQueryThroughput(func() graphstore.Store {
			return stores.NewCuckooGraphWith(cfg)
		}, stream)
		out = append(out, SweepPoint{Param: v, InsertMops: ins, QueryMops: qry, MemoryMB: mem})
	}
	return out
}

// AnalyticsTask names one §V-E task.
type AnalyticsTask string

// The seven analytics tasks of §V-E.
const (
	TaskBFS  AnalyticsTask = "BFS"
	TaskSSSP AnalyticsTask = "SSSP"
	TaskTC   AnalyticsTask = "TC"
	TaskCC   AnalyticsTask = "CC"
	TaskPR   AnalyticsTask = "PR"
	TaskBC   AnalyticsTask = "BC"
	TaskLCC  AnalyticsTask = "LCC"
)

// AllTasks lists the tasks in paper order (Figures 10-16).
func AllTasks() []AnalyticsTask {
	return []AnalyticsTask{TaskBFS, TaskSSSP, TaskTC, TaskCC, TaskPR, TaskBC, TaskLCC}
}

// RunAnalytics loads the stream into a store built by f and times the
// given task with the §V-E methodology (top-degree roots, extracted
// subgraphs). subNodes bounds the subgraph size for the heavy tasks.
func RunAnalytics(f graphstore.Factory, stream []dataset.Edge, task AnalyticsTask, subNodes int) time.Duration {
	s := f.New()
	LoadStream(s, stream)
	switch task {
	case TaskBFS:
		roots := analytics.TopDegreeNodes(s, 5)
		start := time.Now()
		for _, r := range roots {
			analytics.BFS(s, r)
		}
		return time.Since(start) / time.Duration(max(1, len(roots)))
	case TaskSSSP:
		// §V-E2: subgraph of top-degree nodes, Dijkstra from the top 10.
		top := analytics.TopDegreeNodes(s, subNodes)
		sub := f.New()
		analytics.ExtractSubgraph(s, top, sub)
		srcs := top
		if len(srcs) > 10 {
			srcs = srcs[:10]
		}
		start := time.Now()
		for _, src := range srcs {
			analytics.Dijkstra(sub, src)
		}
		return time.Since(start) / time.Duration(max(1, len(srcs)))
	case TaskTC:
		roots := analytics.TopDegreeNodes(s, 5)
		start := time.Now()
		for _, r := range roots {
			analytics.TriangleCount(s, r)
		}
		return time.Since(start) / time.Duration(max(1, len(roots)))
	default:
		top := analytics.TopDegreeNodes(s, subNodes)
		sub := f.New()
		analytics.ExtractSubgraph(s, top, sub)
		start := time.Now()
		switch task {
		case TaskCC:
			analytics.ConnectedComponents(sub)
		case TaskPR:
			analytics.PageRank(sub, 100)
		case TaskBC:
			analytics.Betweenness(sub)
		case TaskLCC:
			analytics.LocalClustering(sub)
		}
		return time.Since(start)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PrintTable writes rows under a header with aligned columns.
func PrintTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}

// Ratio formats how many times faster a is than b.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// SortedSchemes returns result rows sorted with CuckooGraph first, then
// by name, so tables read like the paper's.
func SortedSchemes(rows []OpsResult) []OpsResult {
	out := append([]OpsResult(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Scheme == "CuckooGraph") != (out[j].Scheme == "CuckooGraph") {
			return out[i].Scheme == "CuckooGraph"
		}
		return out[i].Scheme < out[j].Scheme
	})
	return out
}
