package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// LoadJSONReport reads a BENCH_<workload>.json file written by
// WriteJSONReport.
func LoadJSONReport(path string) (JSONReport, error) {
	var r JSONReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// MedianRows reduces several runs of the same workload to one row set:
// rows are matched by name and each metric is the per-name median, so
// a single noisy run cannot fake (or mask) a regression. Rows absent
// from some runs take the median of the runs that have them.
func MedianRows(runs [][]JSONRow) []JSONRow {
	if len(runs) == 1 {
		return runs[0]
	}
	type acc struct {
		mops, ns, allocs []float64
	}
	byName := map[string]*acc{}
	var order []string
	for _, rows := range runs {
		for _, r := range rows {
			a, ok := byName[r.Name]
			if !ok {
				a = &acc{}
				byName[r.Name] = a
				order = append(order, r.Name)
			}
			a.mops = append(a.mops, r.Mops)
			a.ns = append(a.ns, r.NsPerOp)
			a.allocs = append(a.allocs, r.AllocsPerOp)
		}
	}
	out := make([]JSONRow, 0, len(order))
	for _, name := range order {
		a := byName[name]
		out = append(out, JSONRow{
			Name:        name,
			Mops:        medianNs(a.mops),
			NsPerOp:     medianNs(a.ns),
			AllocsPerOp: medianNs(a.allocs),
		})
	}
	return out
}

// Delta is one row's fresh-vs-baseline comparison on ns/op.
type Delta struct {
	Name    string
	BaseNs  float64
	FreshNs float64
	// Ratio is FreshNs/BaseNs; > 1+tolerance marks a regression.
	Ratio     float64
	Regressed bool
	// Missing marks rows present on only one side; never a regression,
	// but surfaced so renames don't silently drop coverage.
	Missing string // "", "baseline" or "fresh"
}

// CompareReports diffs a fresh run against a checked-in baseline, row
// by row on ns/op (series are matched by name; order is baseline order,
// new rows appended). tolerance is the allowed fractional slowdown —
// 0.15 lets a row run 15% slower before it counts as a regression,
// absorbing shared-runner noise. It returns every delta plus whether
// any row regressed.
func CompareReports(baseline, fresh JSONReport, tolerance float64) ([]Delta, bool) {
	freshBy := map[string]JSONRow{}
	for _, r := range fresh.Rows {
		freshBy[r.Name] = r
	}
	var deltas []Delta
	regressed := false
	seen := map[string]bool{}
	for _, b := range baseline.Rows {
		seen[b.Name] = true
		f, ok := freshBy[b.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: b.Name, BaseNs: b.NsPerOp, Missing: "fresh"})
			continue
		}
		d := Delta{Name: b.Name, BaseNs: b.NsPerOp, FreshNs: f.NsPerOp}
		if b.NsPerOp > 0 && f.NsPerOp > 0 {
			d.Ratio = f.NsPerOp / b.NsPerOp
			d.Regressed = d.Ratio > 1+tolerance
		}
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	var fresh2 []string
	for name := range freshBy {
		if !seen[name] {
			fresh2 = append(fresh2, name)
		}
	}
	sort.Strings(fresh2)
	for _, name := range fresh2 {
		deltas = append(deltas, Delta{Name: name, FreshNs: freshBy[name].NsPerOp, Missing: "baseline"})
	}
	return deltas, regressed
}

// FormatDeltas renders the comparison as the PrintTable row set used by
// cgbench -compare.
func FormatDeltas(deltas []Delta) (header []string, rows [][]string) {
	header = []string{"series", "baseline ns/op", "fresh ns/op", "ratio", "verdict"}
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.Missing == "fresh":
			verdict = "missing from fresh run"
		case d.Missing == "baseline":
			verdict = "new series"
		case d.Regressed:
			verdict = "REGRESSION"
		}
		ns := func(v float64) string {
			if v <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", v)
		}
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", d.Ratio)
		}
		rows = append(rows, []string{d.Name, ns(d.BaseNs), ns(d.FreshNs), ratio, verdict})
	}
	return header, rows
}
