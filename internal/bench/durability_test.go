package bench

import (
	"testing"

	"cuckoograph/internal/dataset"
	"cuckoograph/internal/wal"
)

func durabilityStream(n int) []dataset.Edge {
	spec, ok := dataset.ByName("CAIDA")
	if !ok {
		panic("no CAIDA dataset")
	}
	st := dataset.Generate(spec, 256, 42)
	if len(st) > n {
		st = st[:n]
	}
	return st
}

func TestDurabilityWorkload(t *testing.T) {
	st := durabilityStream(30_000)
	for _, sync := range []wal.SyncPolicy{wal.SyncNone, wal.SyncAsync} {
		res, err := Durability(st, 4, t.TempDir(), wal.Options{Sync: sync})
		if err != nil {
			t.Fatalf("%s: %v", SyncName(sync), err)
		}
		if res.WALOffMops <= 0 || res.WALOnMops <= 0 {
			t.Fatalf("%s: non-positive throughput: %+v", SyncName(sync), res)
		}
		if res.RecoveredEdges == 0 || res.RecoveredRecords == 0 {
			t.Fatalf("%s: nothing recovered: %+v", SyncName(sync), res)
		}
		t.Logf("%s: wal-off %.2f Mops, wal-on %.2f Mops (%.1fx), recovery %v/1M records",
			SyncName(sync), res.WALOffMops, res.WALOnMops,
			res.WALOffMops/res.WALOnMops, res.RecoverPerM)
	}
}

// TestDurabilityOverheadBound is the acceptance bar: with the async
// group-commit knob the durable write path stays within 5x of the pure
// in-memory one.
func TestDurabilityOverheadBound(t *testing.T) {
	st := durabilityStream(100_000)
	res, err := Durability(st, 4, t.TempDir(), wal.Options{Sync: wal.SyncAsync})
	if err != nil {
		t.Fatal(err)
	}
	if res.WALOnMops*5 < res.WALOffMops {
		t.Fatalf("WAL-on %.2f Mops is more than 5x below WAL-off %.2f Mops",
			res.WALOnMops, res.WALOffMops)
	}
}

func BenchmarkDurabilityWALInsert(b *testing.B) {
	st := durabilityStream(10_000)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := Durability(st, 4, dir, wal.Options{Sync: wal.SyncAsync}); err != nil {
			b.Fatal(err)
		}
	}
}
