package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
)

// ConcurrentResult holds one scheme's concurrent-workload measurements:
// W writer goroutines insert disjoint slices of the stream while R
// reader goroutines issue point queries, and both sides report
// aggregate Mops over the same wall-clock window.
type ConcurrentResult struct {
	Scheme    string
	Writers   int
	Readers   int
	WriteMops float64
	ReadMops  float64
}

// lockedStore serialises any store behind one global read-write lock —
// the pre-sharding SafeGraph deployment shape, kept as the scaling
// baseline for the concurrent benchmark.
type lockedStore struct {
	mu sync.RWMutex
	s  graphstore.Store
}

func (l *lockedStore) InsertEdge(u, v uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.InsertEdge(u, v)
}

func (l *lockedStore) HasEdge(u, v uint64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.HasEdge(u, v)
}

func (l *lockedStore) DeleteEdge(u, v uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.DeleteEdge(u, v)
}

func (l *lockedStore) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.s.ForEachSuccessor(u, fn)
}

func (l *lockedStore) NumEdges() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.NumEdges()
}

func (l *lockedStore) MemoryUsage() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.MemoryUsage()
}

// LockedFactory wraps a factory so every store it builds sits behind a
// single global RWMutex.
func LockedFactory(f graphstore.Factory) graphstore.Factory {
	return graphstore.Factory{
		Name: f.Name + "+GlobalLock",
		New:  func() graphstore.Store { return &lockedStore{s: f.New()} },
	}
}

// ConcurrentOps runs the concurrent workload on a fresh store from f:
// writers goroutines insert disjoint slices of the stream while readers
// goroutines loop point queries over the already-written prefix until
// the writers finish. The store must be safe for concurrent use.
func ConcurrentOps(f graphstore.Factory, stream []dataset.Edge, writers, readers int) ConcurrentResult {
	if writers < 1 {
		writers = 1
	}
	res := ConcurrentResult{Scheme: f.Name, Writers: writers, Readers: readers}
	if len(stream) == 0 {
		return res
	}
	s := f.New()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var reads atomic.Uint64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			n := uint64(0)
			for i := seed; ; i = (i + 7919) % len(stream) {
				select {
				case <-stop:
					reads.Add(n)
					return
				default:
				}
				e := stream[i]
				s.HasEdge(e.U, e.V)
				n++
			}
		}(r * len(stream) / max(readers, 1))
	}

	start := time.Now()
	var writerWG sync.WaitGroup
	chunk := (len(stream) + writers - 1) / writers
	for w := 0; w < writers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(stream))
		if lo >= hi {
			continue
		}
		writerWG.Add(1)
		go func(part []dataset.Edge) {
			defer writerWG.Done()
			for _, e := range part {
				s.InsertEdge(e.U, e.V)
			}
		}(stream[lo:hi])
	}
	writerWG.Wait()
	wall := time.Since(start)
	close(stop)
	wg.Wait()

	res.WriteMops = Mops(len(stream), wall)
	res.ReadMops = Mops(int(reads.Load()), wall)
	return res
}
