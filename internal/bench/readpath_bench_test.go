package bench

import (
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/hashutil"
)

func BenchmarkChainedLookup(b *testing.B) {
	cfg := core.Config{Seed: 42}.Defaults()
	g := core.NewGraph(cfg)
	rng := hashutil.NewRNG(43)
	n := 16384
	us := make([]uint64, n)
	for i := range us {
		us[i] = rng.Next() | 1
		for j := 0; j < 64; j++ {
			g.InsertEdge(us[i], succOf(us[i], j))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := us[i%n]
		if !g.HasEdge(u, succOf(u, i%64)) {
			b.Fatal("missing")
		}
	}
}
