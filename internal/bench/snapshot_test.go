package bench

import (
	"testing"

	"cuckoograph/internal/dataset"
)

func TestSnapshotWorkload(t *testing.T) {
	spec, ok := dataset.ByName("CAIDA")
	if !ok {
		t.Fatal("no CAIDA dataset spec")
	}
	stream := dataset.Generate(spec, 4096, 7)
	if len(stream) < 200 {
		t.Fatalf("stream too small to split: %d edges", len(stream))
	}
	results := SnapshotWorkload(stream, 2, []int{0, 1, 4})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Views != 0 || results[1].Views != 1 || results[2].Views != 4 {
		t.Fatalf("view counts wrong: %+v", results)
	}
	for _, r := range results {
		if r.WriterMops <= 0 {
			t.Fatalf("no writer throughput measured with %d views", r.Views)
		}
	}
	if results[0].CoWBytes != 0 {
		t.Fatalf("baseline run copied %d CoW bytes with no views live", results[0].CoWBytes)
	}
	for _, r := range results[1:] {
		if r.CoWBytes == 0 {
			t.Fatalf("write phase under %d live views copied nothing; CoW not exercised", r.Views)
		}
		if r.OpenLatency <= 0 {
			t.Fatalf("snapshot open latency not measured with %d views", r.Views)
		}
	}
}
