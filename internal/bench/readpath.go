package bench

import (
	"runtime"
	"time"

	"cuckoograph/internal/core"
	"cuckoograph/internal/hashutil"
)

// ReadPathResult is one row of the read-path workload: the throughput
// of the pure query operations on nodes of one adjacency shape. The
// three shapes cover the three places a successor can live (§III-A1):
// a single inline slot, a full set of 2R inline slots, and an S-CHT
// chain deep enough to span multiple tables.
type ReadPathResult struct {
	// Shape names the adjacency layout: "inline-1" (degree 1),
	// "inline-2R" (inline slots full), "chained" (S-CHT chain).
	Shape string
	// Degree is the out-degree every node of the shape carries.
	Degree int
	// LookupMops is HasEdge throughput on present edges.
	LookupMops float64
	// MissMops is HasEdge throughput on absent edges (the
	// duplicate-check path of every insert).
	MissMops float64
	// DegreeMops is Degree() throughput.
	DegreeMops float64
	// ScanMeps is ForEachSuccessor throughput in million edges
	// visited per second.
	ScanMeps float64
	// LookupAllocs, MissAllocs, DegreeAllocs and ScanAllocs are heap
	// allocations per operation on the respective paths; the read path
	// pins all four at zero.
	LookupAllocs float64
	MissAllocs   float64
	DegreeAllocs float64
	ScanAllocs   float64
}

// readPathShapes defines the workload rows. chainedDegree forces every
// node through the inline→chain transformation and several Grow steps
// (degree 64 at SCHTBase 2 walks the Table II states).
const (
	readPathChainedDegree = 64
	readPathOpsTarget     = 1 << 21
)

// ReadPath measures the pure query path of the core engine on three
// adjacency shapes with `nodes` source nodes each. It is the
// regression workload for the probe machinery: Lookup and Contains
// bottom out in the cuckoo table find, Degree in the cell resolution,
// and ForEachSuccessor in slot/table iteration.
func ReadPath(nodes int, seed uint64) []ReadPathResult {
	if nodes < 64 {
		nodes = 64
	}
	cfg := core.Config{Seed: seed}.Defaults()
	shapes := []struct {
		name   string
		degree int
	}{
		{"inline-1", 1},
		{"inline-2R", 2 * cfg.R},
		{"chained", readPathChainedDegree},
	}
	out := make([]ReadPathResult, 0, len(shapes))
	for _, sh := range shapes {
		out = append(out, readPathShape(sh.name, sh.degree, nodes, cfg))
	}
	return out
}

// readPathShape builds one graph where every node has exactly degree
// successors and measures the query operations on it.
func readPathShape(name string, degree, nodes int, cfg core.Config) ReadPathResult {
	res := ReadPathResult{Shape: name, Degree: degree}
	g := core.NewGraph(cfg)
	// Node ids are spread by an RNG so the L-CHT sees a realistic key
	// distribution rather than a dense range; successor ids are derived
	// from the node id so present/absent probes need no lookup tables.
	rng := hashutil.NewRNG(cfg.Seed | 1)
	us := make([]uint64, nodes)
	for i := range us {
		us[i] = rng.Next() | 1 // non-zero
		for j := 0; j < degree; j++ {
			g.InsertEdge(us[i], succOf(us[i], j))
		}
	}

	// Probe pairs: one present and one absent edge per node, probed
	// round-robin so consecutive ops hit different cells (no
	// single-cell cache residency).
	rounds := readPathOpsTarget / nodes
	if rounds < 1 {
		rounds = 1
	}
	ops := rounds * nodes

	res.LookupMops, res.LookupAllocs = readPathTimed(ops, func() {
		for r := 0; r < rounds; r++ {
			j := r % degree
			for _, u := range us {
				if !g.HasEdge(u, succOf(u, j)) {
					panic("bench: present edge not found")
				}
			}
		}
	})
	res.MissMops, res.MissAllocs = readPathTimed(ops, func() {
		for r := 0; r < rounds; r++ {
			for _, u := range us {
				if g.HasEdge(u, missOf(u, r)) {
					panic("bench: absent edge found")
				}
			}
		}
	})
	res.DegreeMops, res.DegreeAllocs = readPathTimed(ops, func() {
		for r := 0; r < rounds; r++ {
			for _, u := range us {
				if g.Degree(u) != degree {
					panic("bench: wrong degree")
				}
			}
		}
	})

	// Scan: every edge visited once per round; throughput in edges.
	scanRounds := rounds/degree + 1
	var visited int
	scanMops, scanAllocs := readPathTimed(scanRounds*nodes*degree, func() {
		for r := 0; r < scanRounds; r++ {
			for _, u := range us {
				g.ForEachSuccessor(u, func(uint64) bool {
					visited++
					return true
				})
			}
		}
	})
	if visited != scanRounds*nodes*degree {
		panic("bench: scan visited wrong edge count")
	}
	res.ScanMeps, res.ScanAllocs = scanMops, scanAllocs
	return res
}

// succOf derives u's j-th successor; missOf derives ids guaranteed
// absent (successors are even offsets from the odd base, misses odd).
func succOf(u uint64, j int) uint64 { return u ^ (uint64(j+1) << 1) }
func missOf(u uint64, r int) uint64 { return u + 2*uint64(r) + 1 + (1 << 40) }

// readPathTimed runs fn once, returning Mops over ops and heap
// allocations per op. Allocation counting uses the runtime's malloc
// counter directly so the harness works outside `go test`; a handful
// of background-runtime mallocs (GC workers, timers) can land inside
// the window, so a small absolute count is reported as the zero it
// represents — but anything beyond that bound is real and surfaces,
// however many ops amortize it.
func readPathTimed(ops int, fn func()) (mops, allocsPerOp float64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	mallocs := m1.Mallocs - m0.Mallocs
	if mallocs < 16 {
		mallocs = 0
	}
	return Mops(ops, elapsed), float64(mallocs) / float64(ops)
}
