package bench

import (
	"testing"

	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/stores"
)

func testStream(n int) []dataset.Edge {
	stream := make([]dataset.Edge, n)
	for i := range stream {
		stream[i] = dataset.Edge{U: uint64(i) % 997, V: uint64(i)}
	}
	return stream
}

func TestConcurrentOpsCounts(t *testing.T) {
	stream := testStream(40000)
	sharded := graphstore.Factory{Name: "CuckooGraph-Sharded", New: stores.NewShardedCuckooGraph}
	for _, wr := range []struct{ w, r int }{{1, 0}, {4, 2}} {
		res := ConcurrentOps(sharded, stream, wr.w, wr.r)
		if res.Writers != wr.w || res.Readers != wr.r {
			t.Fatalf("result workers %d/%d, want %d/%d", res.Writers, res.Readers, wr.w, wr.r)
		}
		if res.WriteMops <= 0 {
			t.Fatalf("writers=%d: WriteMops = %v, want > 0", wr.w, res.WriteMops)
		}
		if wr.r > 0 && res.ReadMops <= 0 {
			t.Fatalf("writers=%d: ReadMops = %v, want > 0", wr.w, res.ReadMops)
		}
	}
	// Every edge must land exactly once regardless of writer count.
	s := stores.NewShardedCuckooGraph()
	f := graphstore.Factory{Name: "check", New: func() graphstore.Store { return s }}
	ConcurrentOps(f, stream, 8, 0)
	if s.NumEdges() != uint64(len(stream)) {
		t.Fatalf("stored %d edges, want %d", s.NumEdges(), len(stream))
	}
}

func TestConcurrentOpsEmptyStream(t *testing.T) {
	sharded := graphstore.Factory{Name: "CuckooGraph-Sharded", New: stores.NewShardedCuckooGraph}
	res := ConcurrentOps(sharded, nil, 2, 2)
	if res.WriteMops != 0 || res.ReadMops != 0 {
		t.Fatalf("empty stream: got %+v, want zero Mops", res)
	}
}

func TestLockedFactoryIsSafeBaseline(t *testing.T) {
	stream := testStream(20000)
	locked := LockedFactory(graphstore.Factory{Name: "CuckooGraph", New: stores.NewCuckooGraph})
	res := ConcurrentOps(locked, stream, 4, 2)
	if res.WriteMops <= 0 {
		t.Fatalf("locked baseline WriteMops = %v", res.WriteMops)
	}
	if res.Scheme != "CuckooGraph+GlobalLock" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}
