package bench

import (
	"path/filepath"
	"testing"

	"cuckoograph/internal/dataset"
)

func TestCompareReportsVerdicts(t *testing.T) {
	base := JSONReport{Workload: "w", Rows: []JSONRow{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 50},
	}}
	fresh := JSONReport{Workload: "w", Rows: []JSONRow{
		{Name: "a", NsPerOp: 110}, // +10%: inside tolerance
		{Name: "b", NsPerOp: 130}, // +30%: regression
		{Name: "new", NsPerOp: 5},
	}}
	deltas, regressed := CompareReports(base, fresh, 0.15)
	if !regressed {
		t.Fatal("30% slowdown not flagged")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["a"].Regressed {
		t.Fatal("10% slowdown inside 15% tolerance flagged")
	}
	if !byName["b"].Regressed {
		t.Fatal("row b should be the regression")
	}
	if byName["gone"].Missing != "fresh" || byName["gone"].Regressed {
		t.Fatalf("dropped series mishandled: %+v", byName["gone"])
	}
	if byName["new"].Missing != "baseline" || byName["new"].Regressed {
		t.Fatalf("new series mishandled: %+v", byName["new"])
	}
	header, rows := FormatDeltas(deltas)
	if len(header) == 0 || len(rows) != len(deltas) {
		t.Fatalf("FormatDeltas: %d rows for %d deltas", len(rows), len(deltas))
	}

	if _, reg := CompareReports(base, base, 0); reg {
		t.Fatal("self-comparison regressed")
	}
}

func TestMedianRowsAcrossRuns(t *testing.T) {
	runs := [][]JSONRow{
		{{Name: "a", NsPerOp: 100, Mops: 10}},
		{{Name: "a", NsPerOp: 900, Mops: 30}, {Name: "late", NsPerOp: 7}},
		{{Name: "a", NsPerOp: 200, Mops: 20}},
	}
	rows := MedianRows(runs)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Name != "a" || rows[0].NsPerOp != 200 || rows[0].Mops != 20 {
		t.Fatalf("median of a wrong: %+v", rows[0])
	}
	if rows[1].Name != "late" || rows[1].NsPerOp != 7 {
		t.Fatalf("sparse series wrong: %+v", rows[1])
	}
	one := MedianRows(runs[:1])
	if len(one) != 1 || one[0].NsPerOp != 100 {
		t.Fatalf("single run not passed through: %+v", one)
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := JSONReport{Workload: "rt", Scale: 64, Rows: []JSONRow{NsRow("k", 123.5)}}
	path, err := WriteJSONReport(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_rt.json" {
		t.Fatalf("wrote %s", path)
	}
	out, err := LoadJSONReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workload != "rt" || out.Scale != 64 || len(out.Rows) != 1 || out.Rows[0].NsPerOp != 123.5 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if out.GitRev == "" {
		t.Fatal("git rev not stamped")
	}
	if _, err := LoadJSONReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("loading a missing baseline should fail")
	}
}

func TestAnalyticsCSRSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench workload")
	}
	stream := dataset.Generate(AnalyticsCSRSpec, 16384, 1)
	rep := AnalyticsCSR(stream, 3, 1)
	if rep.Edges == 0 || len(rep.Results) != 3 {
		t.Fatalf("empty report: %+v", rep)
	}
	for _, r := range rep.Results {
		if r.FlatNs <= 0 || r.FallbackNs <= 0 {
			t.Fatalf("kernel %s not measured: %+v", r.Kernel, r)
		}
	}
	rows := rep.JSONRows()
	if len(rows) != 7 { // build + 3 kernels × 2 paths
		t.Fatalf("got %d JSON rows, want 7", len(rows))
	}
}
