package bench

import (
	"sort"
	"time"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/csr"
	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
)

// AnalyticsCSRSpec is the synthetic power-law workload behind the
// analytics benchmark: at scale 64 (the default) the stream is one
// million edges, matching the ISSUE's acceptance point; at CI smoke
// scale it shrinks proportionally.
var AnalyticsCSRSpec = dataset.Spec{
	Name:     "AnalyticsPL",
	Nodes:    8_000_000,
	Stream:   64_000_000,
	Distinct: 64_000_000,
	SrcSkew:  2.0,
	DstSkew:  2.0,
}

// AnalyticsCSRResult is one kernel measured both ways on the same
// frozen view: through the CSR fast path and through the Store-based
// fallback (the view wrapped in analytics.StoreOnly). Times are
// medians of interleaved rounds.
type AnalyticsCSRResult struct {
	Kernel     string
	FlatNs     float64
	FallbackNs float64
}

// Speedup is fallback time over flat time.
func (r AnalyticsCSRResult) Speedup() float64 {
	if r.FlatNs <= 0 {
		return 0
	}
	return r.FallbackNs / r.FlatNs
}

// AnalyticsCSRReport is the full with/without-index comparison plus the
// index compile cost, so the build-amortization claim (build ≤ 2
// PageRank iterations) is checkable from the numbers alone.
type AnalyticsCSRReport struct {
	Edges   uint64
	Nodes   int
	PRIters int
	BuildNs float64 // median fresh CSR compile
	Results []AnalyticsCSRResult
}

func medianNs(samples []float64) float64 {
	sort.Float64s(samples)
	return samples[len(samples)/2]
}

// AnalyticsCSR loads the stream into the sharded engine, takes one
// frozen view, and times PageRank (prIters iterations), BFS and
// triangle counting from the top-degree roots — each kernel run
// `rounds` times on the flat CSR path and `rounds` times on the Store
// fallback, strictly interleaved (flat, fallback, flat, fallback, …)
// so ambient machine noise hits both sides equally, reporting medians.
// The CSR build itself is timed on fresh un-memoized compiles.
func AnalyticsCSR(stream []dataset.Edge, prIters, rounds int) AnalyticsCSRReport {
	if rounds < 1 {
		rounds = 1
	}
	g := sharded.New(sharded.Config{})
	LoadStream(g, stream)
	v := g.Snapshot()
	defer v.Release()
	slow := analytics.StoreOnly{S: v}

	// Median cost of compiling the index from the frozen view.
	builds := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		csr.Build(v)
		builds = append(builds, float64(time.Since(start).Nanoseconds()))
	}
	idx := v.CSR() // warm the memoized index for the flat runs
	roots := analytics.TopDegreeNodes(v, 8)

	kernels := []struct {
		name string
		run  func(s graphstore.Store)
	}{
		{"pagerank", func(s graphstore.Store) { analytics.PageRank(s, prIters) }},
		{"bfs", func(s graphstore.Store) {
			for _, r := range roots {
				analytics.BFS(s, r)
			}
		}},
		{"triangles", func(s graphstore.Store) {
			for _, r := range roots {
				analytics.TriangleCount(s, r)
			}
		}},
	}
	rep := AnalyticsCSRReport{
		Edges:   v.NumEdges(),
		Nodes:   idx.NumNodes(),
		PRIters: prIters,
		BuildNs: medianNs(builds),
	}
	for _, k := range kernels {
		flat := make([]float64, 0, rounds)
		fall := make([]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			k.run(v)
			flat = append(flat, float64(time.Since(start).Nanoseconds()))
			start = time.Now()
			k.run(slow)
			fall = append(fall, float64(time.Since(start).Nanoseconds()))
		}
		rep.Results = append(rep.Results, AnalyticsCSRResult{
			Kernel:     k.name,
			FlatNs:     medianNs(flat),
			FallbackNs: medianNs(fall),
		})
	}
	return rep
}

// JSONRows flattens the report for BENCH_analytics.json: one row per
// kernel per path carrying the median ns, plus the build cost.
func (rep AnalyticsCSRReport) JSONRows() []JSONRow {
	rows := []JSONRow{NsRow("csr_build", rep.BuildNs)}
	for _, r := range rep.Results {
		rows = append(rows,
			NsRow(r.Kernel+"/flat", r.FlatNs),
			NsRow(r.Kernel+"/fallback", r.FallbackNs),
		)
	}
	return rows
}
