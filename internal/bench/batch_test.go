package bench

import (
	"testing"

	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/stores"
	"cuckoograph/internal/wal"
)

func caidaStream(t testing.TB) []dataset.Edge {
	t.Helper()
	spec, ok := dataset.ByName("CAIDA")
	if !ok {
		t.Fatal("no CAIDA spec")
	}
	return dataset.Generate(spec, 4096, 42)
}

// TestBatchOpsWorkload runs the workload end to end at a tiny scale and
// checks every row ingested and recovered the same edge set.
func TestBatchOpsWorkload(t *testing.T) {
	st := caidaStream(t)
	results, err := BatchOps(st, []int{1, 64, 1024}, t.TempDir(), wal.Options{Sync: wal.SyncAsync})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d rows, want 4 (single + 3 batch sizes)", len(results))
	}
	if results[0].Label() != "single-op" || results[3].Label() != "batch-1024" {
		t.Fatalf("row labels %q..%q", results[0].Label(), results[3].Label())
	}
	for _, r := range results {
		if r.Edges != results[0].Edges {
			t.Fatalf("%s ingested %d edges, single-op ingested %d — paths diverge",
				r.Label(), r.Edges, results[0].Edges)
		}
		if r.Mops <= 0 || r.WALBytes <= 0 {
			t.Fatalf("%s: degenerate measurement %+v", r.Label(), r)
		}
	}
	// Batch framing must not cost more log bytes per edge than
	// single-op framing.
	if last := results[len(results)-1]; last.BytesPerEdge > results[0].BytesPerEdge {
		t.Fatalf("batch-1024 writes %.2f B/edge, single-op %.2f — batching made the log fatter",
			last.BytesPerEdge, results[0].BytesPerEdge)
	}
}

// TestLoadStreamEquivalence: the batched loader must build the same
// graph as the per-edge fallback, for stores with and without a native
// batch path.
func TestLoadStreamEquivalence(t *testing.T) {
	st := caidaStream(t)
	adjlist := func() graphstore.Factory {
		for _, f := range stores.All() {
			if f.Name == "AdjList" {
				return f
			}
		}
		t.Fatal("AdjList store missing")
		return graphstore.Factory{}
	}()
	for _, f := range []graphstore.Factory{
		{Name: "CuckooGraph", New: stores.NewCuckooGraph},                // BatchStore
		{Name: "CuckooGraph-Sharded", New: stores.NewShardedCuckooGraph}, // BatchStore
		adjlist, // no batch path: exercises the fallback
	} {
		batched := f.New()
		LoadStream(batched, st)
		perEdge := f.New()
		for _, e := range st {
			perEdge.InsertEdge(e.U, e.V)
		}
		if batched.NumEdges() != perEdge.NumEdges() {
			t.Fatalf("%s: LoadStream built %d edges, per-edge loop %d",
				f.Name, batched.NumEdges(), perEdge.NumEdges())
		}
		for _, e := range st[:min(len(st), 200)] {
			if !batched.HasEdge(e.U, e.V) {
				t.Fatalf("%s: LoadStream lost edge (%d,%d)", f.Name, e.U, e.V)
			}
		}
	}
}

// BenchmarkBatchOps keeps the batched-ingest workload compiling and
// running in the CI bench-smoke lane.
func BenchmarkBatchOps(b *testing.B) {
	st := caidaStream(b)
	for i := 0; i < b.N; i++ {
		if _, err := BatchOps(st, []int{64, 1024}, b.TempDir(), wal.Options{Sync: wal.SyncAsync}); err != nil {
			b.Fatal(err)
		}
	}
}
