package bench

import (
	"context"
	"net"
	"strconv"
	"time"

	"cuckoograph/internal/hashutil"
	"cuckoograph/internal/redislike"
)

// ServerOpsResult is one cell of the serving-plane workload: the
// end-to-end command throughput of a real TCP server measured through
// one pipelined loopback client at a fixed pipeline depth.
type ServerOpsResult struct {
	// Workload is "insert" (all G.INSERT), "query" (all G.QUERY on
	// present edges) or "mixed" (alternating).
	Workload string
	// Depth is the pipeline depth: commands written per burst before
	// the client reads the burst's replies. Depth 1 is strict
	// request/response.
	Depth int
	// Mops is commands completed per microsecond; NsPerOp its inverse.
	Mops    float64
	NsPerOp float64
	// AllocsPerOp is heap allocations per command across the whole
	// process — client encode, server read/dispatch/execute/encode/
	// flush — from the runtime's malloc counter. The serving plane
	// pins this at zero for warm hot-command cycles.
	AllocsPerOp float64
}

// serverOpsDepths are the pipeline depths each workload runs at: the
// latency-bound floor, a realistic client batch, and a depth past the
// flush high-water mark.
var serverOpsDepths = []int{1, 16, 256}

// serverOpsPreload is the number of edges preloaded for the query side.
const serverOpsPreload = 1 << 15

// ServerOps measures the redislike serving plane end to end: for each
// (workload, depth) cell it starts a fresh server on a loopback
// listener, connects one TCP client, and drives ops commands through
// the real read → dispatch → execute → encode → flush cycle. Requests
// are pre-encoded outside the timed window so the measurement (and the
// allocation count) is the wire exchange itself.
func ServerOps(ops int, seed uint64) []ServerOpsResult {
	if ops < 4096 {
		ops = 4096
	}
	out := make([]ServerOpsResult, 0, 3*len(serverOpsDepths))
	for _, wl := range []string{"insert", "query", "mixed"} {
		for _, d := range serverOpsDepths {
			out = append(out, serverOpsCell(wl, d, ops, seed))
		}
	}
	return out
}

// serverOpsCell runs one (workload, depth) cell against a fresh server.
func serverOpsCell(workload string, depth, ops int, seed uint64) ServerOpsResult {
	srv := redislike.NewServer()
	gm, mod := redislike.NewGraphModule()
	if err := srv.LoadModule(mod); err != nil {
		panic("bench: loading graph module: " + err.Error())
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic("bench: listen: " + err.Error())
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		panic("bench: dial: " + err.Error())
	}
	defer conn.Close()

	// Whole bursts only, so every timed write has exactly depth replies.
	bursts := ops / depth
	if bursts < 1 {
		bursts = 1
	}
	ops = bursts * depth

	// Preload the present edges the query side probes. Loaded through
	// the public engine API, not the wire, so the cell starts warm.
	rng := hashutil.NewRNG(seed | 1)
	us := make([]uint64, serverOpsPreload)
	for i := range us {
		us[i] = rng.Next() | 1
		gm.Graph().InsertEdge(us[i], us[i]^2)
	}

	// Pre-encode every burst: the timed loop only writes bytes and
	// counts reply lines. Insert keys are drawn from a disjoint RNG
	// stream so the graph keeps growing instead of re-inserting.
	insRNG := hashutil.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	enc := make([][]byte, bursts)
	k := 0
	for b := 0; b < bursts; b++ {
		var reqs []byte
		for i := 0; i < depth; i++ {
			insert := workload == "insert" || (workload == "mixed" && k%2 == 0)
			if insert {
				reqs = appendServerCmd(reqs, "g.insert", insRNG.Next()|1, insRNG.Next()|1)
			} else {
				u := us[k%len(us)]
				reqs = appendServerCmd(reqs, "g.query", u, u^2)
			}
			k++
		}
		enc[b] = reqs
	}

	// exchange writes one burst and reads until its replies are in.
	// Hot-command replies are single-line (:N), so lines == replies; a
	// '-' at a reply boundary is a server error and fails the run.
	rbuf := make([]byte, 64<<10)
	exchange := func(req []byte, want int) {
		if _, err := conn.Write(req); err != nil {
			panic("bench: write: " + err.Error())
		}
		got := 0
		lineStart := true
		for got < want {
			n, err := conn.Read(rbuf)
			if err != nil {
				panic("bench: read: " + err.Error())
			}
			for _, c := range rbuf[:n] {
				if lineStart && c == '-' {
					panic("bench: server error reply: " + string(rbuf[:n]))
				}
				lineStart = false
				if c == '\n' {
					got++
					lineStart = true
				}
			}
		}
	}

	// Warmup: grow the connection scratch (read buffer, writer, batch)
	// and fault in the accept path before the malloc window opens.
	exchange(enc[0], depth)
	exchange(enc[bursts-1], depth)

	mops, allocs := readPathTimed(ops, func() {
		for _, req := range enc {
			exchange(req, depth)
		}
	})
	res := ServerOpsResult{Workload: workload, Depth: depth, Mops: mops, AllocsPerOp: allocs}
	if mops > 0 {
		res.NsPerOp = 1e3 / mops
	}
	return res
}

// appendServerCmd encodes one RESP command of uint arguments.
func appendServerCmd(dst []byte, name string, args ...uint64) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(1+len(args)), 10)
	dst = append(dst, '\r', '\n', '$')
	dst = strconv.AppendInt(dst, int64(len(name)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, name...)
	dst = append(dst, '\r', '\n')
	var num [20]byte
	for _, a := range args {
		s := strconv.AppendUint(num[:0], a, 10)
		dst = append(dst, '$')
		dst = strconv.AppendInt(dst, int64(len(s)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, s...)
		dst = append(dst, '\r', '\n')
	}
	return dst
}
