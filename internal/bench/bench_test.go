package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cuckoograph/internal/core"
	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/stores"
)

func smallStream() []dataset.Edge {
	spec, _ := dataset.ByName("CAIDA")
	return dataset.Generate(spec, 2048, 7)
}

func TestMops(t *testing.T) {
	if got := Mops(2_000_000, time.Second); got != 2 {
		t.Fatalf("Mops = %f, want 2", got)
	}
	if Mops(100, 0) != 0 {
		t.Fatal("Mops with zero duration should be 0")
	}
}

func TestBasicOpsProducesSaneResults(t *testing.T) {
	st := smallStream()
	for _, f := range stores.Evaluated() {
		res, curve := BasicOps(f, st, 5)
		if res.Scheme != f.Name {
			t.Fatalf("scheme name %q", res.Scheme)
		}
		if res.InsertMops <= 0 || res.QueryMops <= 0 || res.DeleteMops <= 0 {
			t.Fatalf("%s: non-positive throughput %+v", f.Name, res)
		}
		if len(curve) == 0 {
			t.Fatalf("%s: empty memory curve", f.Name)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].Inserted <= curve[i-1].Inserted {
				t.Fatalf("%s: curve not increasing in inserts", f.Name)
			}
		}
		last := curve[len(curve)-1]
		if last.Inserted != len(dataset.Dedup(st)) {
			t.Fatalf("%s: final curve point at %d inserts, want %d",
				f.Name, last.Inserted, len(dataset.Dedup(st)))
		}
	}
}

func TestSweepParam(t *testing.T) {
	st := smallStream()
	points := SweepParam([]string{"4", "8"}, func(v string) core.Config {
		if v == "4" {
			return core.Config{D: 4}
		}
		return core.Config{D: 8}
	}, st)
	if len(points) != 2 || points[0].Param != "4" || points[1].Param != "8" {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.InsertMops <= 0 || p.MemoryMB <= 0 {
			t.Fatalf("bad sweep point %+v", p)
		}
	}
}

func TestRunAnalyticsAllTasks(t *testing.T) {
	st := smallStream()
	f := graphstore.Factory{Name: "CuckooGraph", New: stores.NewCuckooGraph}
	for _, task := range AllTasks() {
		d := RunAnalytics(f, st, task, 32)
		if d < 0 {
			t.Fatalf("task %s: negative duration", task)
		}
	}
	if len(AllTasks()) != 7 {
		t.Fatalf("%d tasks, want 7 (§V-E)", len(AllTasks()))
	}
}

func TestPrintTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	PrintTable(&buf, []string{"a", "long-header"}, [][]string{
		{"xxxxxx", "1"},
		{"y", "2"},
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("columns not aligned:\n%s", buf.String())
	}
}

func TestRatioAndSort(t *testing.T) {
	if Ratio(4, 2) != "2.00x" || Ratio(1, 0) != "inf" {
		t.Fatal("Ratio wrong")
	}
	rows := []OpsResult{{Scheme: "WBI"}, {Scheme: "CuckooGraph"}, {Scheme: "Spruce"}}
	sorted := SortedSchemes(rows)
	if sorted[0].Scheme != "CuckooGraph" {
		t.Fatalf("sorted = %+v", sorted)
	}
}
