// Package csr implements PCSR [26]: a dynamic CSR whose edge array is a
// Packed Memory Array. Edges are stored as a single PMA of (u,v) pairs
// packed into one uint64 ordering key — u in the high 32 bits, v in the
// low 32 — so each node's neighbours occupy a contiguous PMA range, the
// CSR property, while updates stay O(log²) amortized instead of a full
// rebuild. A static Build constructor provides the classic immutable CSR
// for comparison.
package csr

import "cuckoograph/internal/pma"

// PCSR is a PMA-backed dynamic CSR. Node ids must fit in 32 bits (the
// workloads of the paper's Table IV all do).
type PCSR struct {
	arr   *pma.PMA
	edges uint64
}

// NewPCSR returns an empty PCSR store.
func NewPCSR() *PCSR { return &PCSR{arr: pma.New()} }

func pack(u, v uint64) uint64 { return u<<32 | (v & 0xFFFFFFFF) }

// InsertEdge adds ⟨u,v⟩, reporting whether it is new.
func (s *PCSR) InsertEdge(u, v uint64) bool {
	if s.arr.Insert(pack(u, v)) {
		s.edges++
		return true
	}
	return false
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *PCSR) HasEdge(u, v uint64) bool { return s.arr.Contains(pack(u, v)) }

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (s *PCSR) DeleteEdge(u, v uint64) bool {
	if s.arr.Delete(pack(u, v)) {
		s.edges--
		return true
	}
	return false
}

// ForEachSuccessor scans u's contiguous PMA range.
func (s *PCSR) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	s.arr.Range(pack(u, 0), pack(u+1, 0), func(key uint64) bool {
		return fn(key & 0xFFFFFFFF)
	})
}

// ForEachNode reports each distinct source in ascending order.
func (s *PCSR) ForEachNode(fn func(u uint64) bool) {
	last, have := uint64(0), false
	s.arr.ForEach(func(key uint64) bool {
		u := key >> 32
		if !have || u != last {
			last, have = u, true
			return fn(u)
		}
		return true
	})
}

// NumEdges returns the number of stored edges.
func (s *PCSR) NumEdges() uint64 { return s.edges }

// MemoryUsage returns the PMA's structural bytes.
func (s *PCSR) MemoryUsage() uint64 { return s.arr.MemoryBytes() + 16 }

// Static is the classic immutable CSR: offsets + neighbour array. It
// supports queries and traversal only; updates require a full rebuild,
// which is exactly the limitation the paper describes.
type Static struct {
	index map[uint64]int32 // node → position in offsets
	off   []int32          // len = nodes+1
	adj   []uint64
}

// Build constructs a static CSR from an edge list.
func Build(edges [][2]uint64) *Static {
	byNode := map[uint64][]uint64{}
	var order []uint64
	for _, e := range edges {
		if _, ok := byNode[e[0]]; !ok {
			order = append(order, e[0])
		}
		byNode[e[0]] = append(byNode[e[0]], e[1])
	}
	s := &Static{index: make(map[uint64]int32, len(order))}
	s.off = make([]int32, 1, len(order)+1)
	for _, u := range order {
		s.index[u] = int32(len(s.off) - 1)
		s.adj = append(s.adj, byNode[u]...)
		s.off = append(s.off, int32(len(s.adj)))
	}
	return s
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *Static) HasEdge(u, v uint64) bool {
	i, ok := s.index[u]
	if !ok {
		return false
	}
	for _, got := range s.adj[s.off[i]:s.off[i+1]] {
		if got == v {
			return true
		}
	}
	return false
}

// ForEachSuccessor visits u's neighbour range.
func (s *Static) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	i, ok := s.index[u]
	if !ok {
		return
	}
	for _, v := range s.adj[s.off[i]:s.off[i+1]] {
		if !fn(v) {
			return
		}
	}
}

// NumEdges returns the number of stored edges.
func (s *Static) NumEdges() uint64 { return uint64(len(s.adj)) }

// MemoryUsage counts the offset and adjacency arrays plus the node index.
func (s *Static) MemoryUsage() uint64 {
	return uint64(len(s.off))*4 + uint64(len(s.adj))*8 + uint64(len(s.index))*16 + 48
}
