package stores

import (
	"testing"

	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/hashutil"
)

// TestConformance drives every registered store against a map model with
// the same randomized operation stream: inserts (with duplicates),
// deletes (present and absent), membership queries and successor sets
// must all agree with the model.
func TestConformance(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s := f.New()
			rng := hashutil.NewRNG(1234)
			model := map[[2]uint64]bool{}
			const ops = 30000
			for i := 0; i < ops; i++ {
				u := rng.Uint64n(300)
				v := rng.Uint64n(300)
				key := [2]uint64{u, v}
				switch rng.Intn(5) {
				case 0, 1, 2:
					if got, want := s.InsertEdge(u, v), !model[key]; got != want {
						t.Fatalf("op %d: InsertEdge(%d,%d) = %v, want %v", i, u, v, got, want)
					}
					model[key] = true
				case 3:
					if got, want := s.DeleteEdge(u, v), model[key]; got != want {
						t.Fatalf("op %d: DeleteEdge(%d,%d) = %v, want %v", i, u, v, got, want)
					}
					delete(model, key)
				default:
					if got, want := s.HasEdge(u, v), model[key]; got != want {
						t.Fatalf("op %d: HasEdge(%d,%d) = %v, want %v", i, u, v, got, want)
					}
				}
			}
			if int(s.NumEdges()) != len(model) {
				t.Fatalf("NumEdges = %d, want %d", s.NumEdges(), len(model))
			}
			// Successor sets must match per node.
			perNode := map[uint64]map[uint64]bool{}
			for key := range model {
				if perNode[key[0]] == nil {
					perNode[key[0]] = map[uint64]bool{}
				}
				perNode[key[0]][key[1]] = true
			}
			for u := uint64(0); u < 300; u++ {
				got := map[uint64]bool{}
				s.ForEachSuccessor(u, func(v uint64) bool {
					if got[v] {
						t.Fatalf("store %s: duplicate successor %d of %d", f.Name, v, u)
					}
					got[v] = true
					return true
				})
				want := perNode[u]
				if len(got) != len(want) {
					t.Fatalf("node %d: %d successors, want %d", u, len(got), len(want))
				}
				for v := range want {
					if !got[v] {
						t.Fatalf("node %d: missing successor %d", u, v)
					}
				}
			}
			if s.MemoryUsage() == 0 {
				t.Fatal("MemoryUsage reported zero for a non-empty store")
			}
		})
	}
}

// TestConformanceSkewedDegrees exercises power-law-ish degrees: one hub
// with thousands of neighbours alongside many degree-1 nodes, the shape
// that motivates the paper (§I property ③).
func TestConformanceSkewedDegrees(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s := f.New()
			const hubDeg = 3000
			for v := uint64(1); v <= hubDeg; v++ {
				s.InsertEdge(0, v)
			}
			for u := uint64(1); u <= 500; u++ {
				s.InsertEdge(u, u+1)
			}
			if got := graphstore.Degree(s, 0); got != hubDeg {
				t.Fatalf("hub degree %d, want %d", got, hubDeg)
			}
			for v := uint64(1); v <= hubDeg; v += 97 {
				if !s.HasEdge(0, v) {
					t.Fatalf("hub edge %d missing", v)
				}
			}
			// Delete half the hub's edges and re-verify.
			for v := uint64(1); v <= hubDeg/2; v++ {
				if !s.DeleteEdge(0, v) {
					t.Fatalf("hub delete %d failed", v)
				}
			}
			if got := graphstore.Degree(s, 0); got != hubDeg/2 {
				t.Fatalf("hub degree after deletes %d, want %d", got, hubDeg/2)
			}
		})
	}
}

// TestForEachNodeCoverage checks node iteration for stores that offer it.
func TestForEachNodeCoverage(t *testing.T) {
	type nodeIter interface {
		ForEachNode(fn func(u uint64) bool)
	}
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s := f.New()
			ni, ok := s.(nodeIter)
			if !ok {
				t.Skipf("%s does not iterate nodes", f.Name)
			}
			want := map[uint64]bool{}
			for u := uint64(10); u < 40; u++ {
				s.InsertEdge(u, u*2)
				want[u] = true
			}
			got := map[uint64]bool{}
			ni.ForEachNode(func(u uint64) bool {
				got[u] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("ForEachNode visited %d nodes, want %d", len(got), len(want))
			}
		})
	}
}
