// Package livegraph re-implements the data-structure essence of
// LiveGraph [VLDB'20]: per-vertex Transactional Edge Logs (TEL) reached
// through Vertex Blocks. Edge insertions and deletions append log
// entries in arrival order; reads scan the log backwards so the latest
// entry for a neighbour wins ("purely sequential adjacency list scans").
// A log that outgrows twice its live size is compacted in place.
package livegraph

// op codes of a TEL entry.
const (
	opInsert = iota
	opDelete
)

// telEntry is one edge-log record.
type telEntry struct {
	v  uint64
	op uint8
}

// vertexBlock is the per-vertex header pointing at the TEL.
type vertexBlock struct {
	log  []telEntry
	live int // live (inserted − deleted) edges, to schedule compaction
}

// Store is a LiveGraph-style edge-log graph.
type Store struct {
	blocks map[uint64]*vertexBlock
	edges  uint64
}

// New returns an empty LiveGraph-style store.
func New() *Store { return &Store{blocks: make(map[uint64]*vertexBlock)} }

// lookup scans the TEL backwards for the latest entry about v.
func (b *vertexBlock) lookup(v uint64) (present bool, found bool) {
	for i := len(b.log) - 1; i >= 0; i-- {
		if b.log[i].v == v {
			return b.log[i].op == opInsert, true
		}
	}
	return false, false
}

// InsertEdge appends an insert record unless ⟨u,v⟩ is already live.
func (s *Store) InsertEdge(u, v uint64) bool {
	b := s.blocks[u]
	if b == nil {
		b = &vertexBlock{}
		s.blocks[u] = b
	}
	if present, _ := b.lookup(v); present {
		return false
	}
	b.log = append(b.log, telEntry{v: v, op: opInsert})
	b.live++
	s.edges++
	s.maybeCompact(u, b)
	return true
}

// HasEdge reports whether ⟨u,v⟩ is live.
func (s *Store) HasEdge(u, v uint64) bool {
	b := s.blocks[u]
	if b == nil {
		return false
	}
	present, _ := b.lookup(v)
	return present
}

// DeleteEdge appends a delete record if ⟨u,v⟩ is live.
func (s *Store) DeleteEdge(u, v uint64) bool {
	b := s.blocks[u]
	if b == nil {
		return false
	}
	if present, _ := b.lookup(v); !present {
		return false
	}
	b.log = append(b.log, telEntry{v: v, op: opDelete})
	b.live--
	s.edges--
	if b.live == 0 {
		delete(s.blocks, u)
		return true
	}
	s.maybeCompact(u, b)
	return true
}

// maybeCompact rewrites the log when it holds over twice the live edges
// (LiveGraph periodically migrates logs into fresh blocks).
func (s *Store) maybeCompact(u uint64, b *vertexBlock) {
	if len(b.log) < 16 || len(b.log) < 2*b.live {
		return
	}
	state := make(map[uint64]bool, b.live)
	for _, e := range b.log {
		if e.op == opInsert {
			state[e.v] = true
		} else {
			delete(state, e.v)
		}
	}
	fresh := make([]telEntry, 0, len(state))
	for v := range state {
		fresh = append(fresh, telEntry{v: v, op: opInsert})
	}
	b.log = fresh
	b.live = len(fresh)
}

// ForEachSuccessor scans the whole TEL to materialise the live set — the
// sequential-scan behaviour the paper measures.
func (s *Store) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	b := s.blocks[u]
	if b == nil {
		return
	}
	state := make(map[uint64]bool, b.live)
	for _, e := range b.log {
		if e.op == opInsert {
			state[e.v] = true
		} else {
			delete(state, e.v)
		}
	}
	for v := range state {
		if !fn(v) {
			return
		}
	}
}

// ForEachNode calls fn for every node with a vertex block.
func (s *Store) ForEachNode(fn func(u uint64) bool) {
	for u := range s.blocks {
		if !fn(u) {
			return
		}
	}
}

// NumEdges returns the number of live edges.
func (s *Store) NumEdges() uint64 { return s.edges }

// MemoryUsage counts vertex blocks (pointer + header) and log capacity
// at 16 bytes per TEL entry (v, op and the per-entry metadata LiveGraph
// keeps for transactions).
func (s *Store) MemoryUsage() uint64 {
	var total uint64 = 48
	for _, b := range s.blocks {
		total += 8 + 8 + 24 + 8 // map slot + block ptr + slice header + live counter
		total += uint64(cap(b.log)) * 16
	}
	return total
}
