// Package spruce re-implements the data-structure essence of Spruce
// [SIGMOD'24]: a vEB-tree-like node index plus adjacency-based edge
// storage. The 8-byte node identifier splits 4/2/2 — the high 4 bytes
// key a hash table whose entries own two levels of 65536-bit bit
// vectors (one per 2-byte chunk) with packed pointer arrays indexed by
// popcount; the leaves point at sorted adjacency vectors holding the
// edges. This keeps memory low but, as the paper notes, "still needs to
// record quite a few pointers".
package spruce

import (
	"math/bits"
	"sort"
)

// bitvec is a 65536-bit vector with a packed child array: child i of a
// set bit is found by popcount rank, the vEB-style trick Spruce uses.
type bitvec[T any] struct {
	words [1024]uint64
	kids  []T // one per set bit, in bit order
}

func (b *bitvec[T]) rank(i uint16) int {
	w, off := int(i)/64, uint(i)%64
	r := bits.OnesCount64(b.words[w] & ((1 << off) - 1))
	for j := 0; j < w; j++ {
		r += bits.OnesCount64(b.words[j])
	}
	return r
}

func (b *bitvec[T]) get(i uint16) *T {
	w, off := int(i)/64, uint(i)%64
	if b.words[w]&(1<<off) == 0 {
		return nil
	}
	return &b.kids[b.rank(i)]
}

func (b *bitvec[T]) set(i uint16, zero T) *T {
	w, off := int(i)/64, uint(i)%64
	r := b.rank(i)
	if b.words[w]&(1<<off) == 0 {
		b.words[w] |= 1 << off
		b.kids = append(b.kids, zero)
		copy(b.kids[r+1:], b.kids[r:])
		b.kids[r] = zero
	}
	return &b.kids[r]
}

func (b *bitvec[T]) clear(i uint16) {
	w, off := int(i)/64, uint(i)%64
	if b.words[w]&(1<<off) == 0 {
		return
	}
	r := b.rank(i)
	b.words[w] &^= 1 << off
	b.kids = append(b.kids[:r], b.kids[r+1:]...)
}

// leaf is the adjacency storage for one node: a sorted neighbour vector.
type leaf struct {
	adj []uint64
}

// middle maps the third 2-byte chunk of u to leaves.
type middle struct {
	lv bitvec[*leaf]
}

// Store is a Spruce-style graph store.
type Store struct {
	top   map[uint32]*middleL2 // keyed by the high 4 bytes of u
	edges uint64
}

// middleL2 maps bytes 5-6 of u to middle vectors over bytes 7-8.
type middleL2 struct {
	mv bitvec[*middle]
}

// New returns an empty Spruce-style store.
func New() *Store { return &Store{top: make(map[uint32]*middleL2)} }

func split(u uint64) (hi uint32, mid, lo uint16) {
	return uint32(u >> 32), uint16(u >> 16), uint16(u)
}

// leafFor returns u's adjacency leaf, creating the index path if create
// is set.
func (s *Store) leafFor(u uint64, create bool) *leaf {
	hi, mid, lo := split(u)
	l2 := s.top[hi]
	if l2 == nil {
		if !create {
			return nil
		}
		l2 = &middleL2{}
		s.top[hi] = l2
	}
	mp := l2.mv.get(mid)
	if mp == nil {
		if !create {
			return nil
		}
		mp = l2.mv.set(mid, nil)
	}
	if *mp == nil {
		if !create {
			return nil
		}
		*mp = &middle{}
	}
	lp := (*mp).lv.get(lo)
	if lp == nil {
		if !create {
			return nil
		}
		lp = (*mp).lv.set(lo, nil)
	}
	if *lp == nil {
		if !create {
			return nil
		}
		*lp = &leaf{}
	}
	return *lp
}

// InsertEdge adds ⟨u,v⟩, reporting whether it is new.
func (s *Store) InsertEdge(u, v uint64) bool {
	lf := s.leafFor(u, true)
	i := sort.Search(len(lf.adj), func(i int) bool { return lf.adj[i] >= v })
	if i < len(lf.adj) && lf.adj[i] == v {
		return false
	}
	lf.adj = append(lf.adj, 0)
	copy(lf.adj[i+1:], lf.adj[i:])
	lf.adj[i] = v
	s.edges++
	return true
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *Store) HasEdge(u, v uint64) bool {
	lf := s.leafFor(u, false)
	if lf == nil {
		return false
	}
	i := sort.Search(len(lf.adj), func(i int) bool { return lf.adj[i] >= v })
	return i < len(lf.adj) && lf.adj[i] == v
}

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (s *Store) DeleteEdge(u, v uint64) bool {
	lf := s.leafFor(u, false)
	if lf == nil {
		return false
	}
	i := sort.Search(len(lf.adj), func(i int) bool { return lf.adj[i] >= v })
	if i >= len(lf.adj) || lf.adj[i] != v {
		return false
	}
	lf.adj = append(lf.adj[:i], lf.adj[i+1:]...)
	s.edges--
	if len(lf.adj) == 0 {
		s.unlink(u)
	}
	return true
}

// unlink removes u's empty leaf from the index path.
func (s *Store) unlink(u uint64) {
	hi, mid, lo := split(u)
	l2 := s.top[hi]
	if l2 == nil {
		return
	}
	mp := l2.mv.get(mid)
	if mp == nil || *mp == nil {
		return
	}
	(*mp).lv.clear(lo)
	if len((*mp).lv.kids) == 0 {
		l2.mv.clear(mid)
	}
	if len(l2.mv.kids) == 0 {
		delete(s.top, hi)
	}
}

// ForEachSuccessor visits u's neighbours in ascending order.
func (s *Store) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	lf := s.leafFor(u, false)
	if lf == nil {
		return
	}
	for _, v := range lf.adj {
		if !fn(v) {
			return
		}
	}
}

// forEachSet walks the set bits of a bitvec in index order.
func forEachSet[T any](b *bitvec[T], fn func(i uint16, kid *T) bool) {
	kid := 0
	for w, word := range b.words {
		for word != 0 {
			off := bits.TrailingZeros64(word)
			word &^= 1 << uint(off)
			if !fn(uint16(w*64+off), &b.kids[kid]) {
				return
			}
			kid++
		}
	}
}

// ForEachNode walks the whole index via set-bit iteration.
func (s *Store) ForEachNode(fn func(u uint64) bool) {
	for hi, l2 := range s.top {
		stop := false
		forEachSet(&l2.mv, func(mid uint16, mp **middle) bool {
			if *mp == nil {
				return true
			}
			forEachSet(&(*mp).lv, func(lo uint16, lp **leaf) bool {
				if *lp == nil {
					return true
				}
				u := uint64(hi)<<32 | uint64(mid)<<16 | uint64(lo)
				if !fn(u) {
					stop = true
				}
				return !stop
			})
			return !stop
		})
		if stop {
			return
		}
	}
}

// NumEdges returns the number of stored edges.
func (s *Store) NumEdges() uint64 { return s.edges }

// MemoryUsage counts the index bit vectors, packed pointer arrays and
// adjacency capacity.
func (s *Store) MemoryUsage() uint64 {
	var total uint64 = 48
	for _, l2 := range s.top {
		total += 8 + 8 + 8192 + 24 + uint64(cap(l2.mv.kids))*8
		for _, mp := range l2.mv.kids {
			if mp == nil {
				continue
			}
			total += 8192 + 24 + uint64(cap(mp.lv.kids))*8
			for _, lp := range mp.lv.kids {
				if lp == nil {
					continue
				}
				total += 24 + uint64(cap(lp.adj))*8
			}
		}
	}
	return total
}
