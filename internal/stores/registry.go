// Package stores registers every graph storage scheme of the evaluation
// (§V-A "Competitors") behind the common graphstore.Store interface so
// the benchmark harness and the conformance tests can treat them
// uniformly: CuckooGraph (ours), LiveGraph, Sortledton, Wind-Bell Index,
// Spruce, plus the classic adjacency list and PCSR references.
package stores

import (
	"cuckoograph/internal/core"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/stores/adjlist"
	"cuckoograph/internal/stores/csr"
	"cuckoograph/internal/stores/livegraph"
	"cuckoograph/internal/stores/sortledton"
	"cuckoograph/internal/stores/spruce"
	"cuckoograph/internal/stores/wbi"
)

// cuckooStore adapts core.Graph to graphstore.Store.
type cuckooStore struct{ *core.Graph }

// NewCuckooGraph returns a basic CuckooGraph as a graphstore.Store.
func NewCuckooGraph() graphstore.Store {
	return cuckooStore{core.NewGraph(core.Config{})}
}

// NewCuckooGraphWith returns a CuckooGraph with explicit tuning, for the
// parameter-sweep experiments.
func NewCuckooGraphWith(cfg core.Config) graphstore.Store {
	return cuckooStore{core.NewGraph(cfg)}
}

// NewShardedCuckooGraph returns the concurrent sharded engine as a
// graphstore.Store (shards defaulting to GOMAXPROCS), so the
// conformance suite exercises it alongside the single-writer stores.
func NewShardedCuckooGraph() graphstore.Store {
	return sharded.New(sharded.Config{})
}

// Evaluated returns the five schemes compared throughout §V, in the
// paper's plotting order.
func Evaluated() []graphstore.Factory {
	return []graphstore.Factory{
		{Name: "LiveGraph", New: func() graphstore.Store { return livegraph.New() }},
		{Name: "Spruce", New: func() graphstore.Store { return spruce.New() }},
		{Name: "Sortledton", New: func() graphstore.Store { return sortledton.New() }},
		{Name: "CuckooGraph", New: NewCuckooGraph},
		{Name: "WBI", New: func() graphstore.Store { return wbi.New(0) }},
	}
}

// All returns every store in the repository, the evaluated five plus the
// reference baselines.
func All() []graphstore.Factory {
	return append(Evaluated(),
		graphstore.Factory{Name: "CuckooGraph-Sharded", New: NewShardedCuckooGraph},
		graphstore.Factory{Name: "AdjList", New: func() graphstore.Store { return adjlist.New() }},
		graphstore.Factory{Name: "PCSR", New: func() graphstore.Store { return csr.NewPCSR() }},
	)
}
