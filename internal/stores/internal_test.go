package stores

import (
	"testing"

	"cuckoograph/internal/stores/livegraph"
	"cuckoograph/internal/stores/sortledton"
	"cuckoograph/internal/stores/spruce"
	"cuckoograph/internal/stores/wbi"
)

// TestLiveGraphCompaction drives one vertex through enough churn that
// the TEL compacts, and checks live state survives.
func TestLiveGraphCompaction(t *testing.T) {
	s := livegraph.New()
	for round := 0; round < 10; round++ {
		for v := uint64(1); v <= 20; v++ {
			s.InsertEdge(1, v)
		}
		for v := uint64(1); v <= 19; v++ {
			s.DeleteEdge(1, v)
		}
	}
	if !s.HasEdge(1, 20) {
		t.Fatal("surviving edge lost across compactions")
	}
	if s.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", s.NumEdges())
	}
	// The log must not be unbounded: memory should be modest after
	// compaction despite 400 operations.
	if s.MemoryUsage() > 1<<14 {
		t.Fatalf("log apparently never compacts: %d bytes", s.MemoryUsage())
	}
}

// TestSortledtonBlockSplits pushes one adjacency set past several block
// splits and checks order and completeness.
func TestSortledtonBlockSplits(t *testing.T) {
	s := sortledton.New()
	const deg = 1000 // > 7 blocks of 128
	for v := uint64(deg); v >= 1; v-- {
		if !s.InsertEdge(7, v) {
			t.Fatalf("insert %d duplicate", v)
		}
	}
	var prev uint64
	n := 0
	s.ForEachSuccessor(7, func(v uint64) bool {
		if v <= prev && n > 0 {
			t.Fatalf("successors not ascending: %d after %d", v, prev)
		}
		prev = v
		n++
		return true
	})
	if n != deg {
		t.Fatalf("visited %d successors, want %d", n, deg)
	}
	// Delete every other neighbour; order must hold.
	for v := uint64(2); v <= deg; v += 2 {
		if !s.DeleteEdge(7, v) {
			t.Fatalf("delete %d failed", v)
		}
	}
	if got := int(s.NumEdges()); got != deg/2 {
		t.Fatalf("edges = %d, want %d", got, deg/2)
	}
}

// TestWBICandidateBuckets checks edges are findable regardless of which
// candidate bucket absorbed them, and the K parameter default.
func TestWBICandidateBuckets(t *testing.T) {
	s := wbi.New(8)
	for i := uint64(0); i < 500; i++ {
		s.InsertEdge(i%30, i)
	}
	for i := uint64(0); i < 500; i++ {
		if !s.HasEdge(i%30, i) {
			t.Fatalf("edge %d missing", i)
		}
	}
	if wbi.New(0).MemoryUsage() == 0 {
		t.Fatal("default-K store reports zero memory")
	}
}

// TestSpruceSparseIDs exercises the 4/2/2 split index with node ids
// spread across distant regions of the 64-bit space.
func TestSpruceSparseIDs(t *testing.T) {
	s := spruce.New()
	ids := []uint64{
		0, 1, 0xFFFF, 0x10000, 0xFFFFFFFF,
		0x1_0000_0000, 0xDEAD_BEEF_CAFE_F00D, ^uint64(0),
	}
	for i, u := range ids {
		s.InsertEdge(u, uint64(i))
	}
	for i, u := range ids {
		if !s.HasEdge(u, uint64(i)) {
			t.Fatalf("edge from %#x missing", u)
		}
	}
	seen := 0
	s.ForEachNode(func(u uint64) bool { seen++; return true })
	if seen != len(ids) {
		t.Fatalf("ForEachNode saw %d nodes, want %d", seen, len(ids))
	}
	for i, u := range ids {
		if !s.DeleteEdge(u, uint64(i)) {
			t.Fatalf("delete from %#x failed", u)
		}
	}
	if s.NumEdges() != 0 {
		t.Fatalf("edges = %d after full deletion", s.NumEdges())
	}
}
