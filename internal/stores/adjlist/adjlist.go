// Package adjlist implements the classic adjacency-list graph store the
// paper's introduction discusses: a per-node vector of neighbours. It is
// the simplest baseline — easy to edit, but pointer-intensive and linear
// in degree for edge queries.
package adjlist

// Store is an adjacency-list graph.
type Store struct {
	adj   map[uint64][]uint64
	edges uint64
}

// New returns an empty adjacency-list store.
func New() *Store {
	return &Store{adj: make(map[uint64][]uint64)}
}

// InsertEdge adds ⟨u,v⟩, reporting whether it is new. Duplicate checks
// scan the neighbour vector, the O(deg) cost the paper attributes to
// adjacency lists.
func (s *Store) InsertEdge(u, v uint64) bool {
	list := s.adj[u]
	for _, got := range list {
		if got == v {
			return false
		}
	}
	s.adj[u] = append(list, v)
	s.edges++
	return true
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *Store) HasEdge(u, v uint64) bool {
	for _, got := range s.adj[u] {
		if got == v {
			return true
		}
	}
	return false
}

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (s *Store) DeleteEdge(u, v uint64) bool {
	list := s.adj[u]
	for i, got := range list {
		if got == v {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			if len(list) == 0 {
				delete(s.adj, u)
			} else {
				s.adj[u] = list
			}
			s.edges--
			return true
		}
	}
	return false
}

// ForEachSuccessor calls fn for every successor of u.
func (s *Store) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	for _, v := range s.adj[u] {
		if !fn(v) {
			return
		}
	}
}

// ForEachNode calls fn for every node with out-edges.
func (s *Store) ForEachNode(fn func(u uint64) bool) {
	for u := range s.adj {
		if !fn(u) {
			return
		}
	}
}

// NumEdges returns the number of stored edges.
func (s *Store) NumEdges() uint64 { return s.edges }

// MemoryUsage counts structural bytes: per node a map slot (key, slice
// header, bucket word) and the neighbour array capacity.
func (s *Store) MemoryUsage() uint64 {
	var total uint64 = 48
	for _, list := range s.adj {
		total += 8 + 24 + 8 // key + slice header + map bucket word
		total += uint64(cap(list)) * 8
	}
	return total
}
