// Package sortledton re-implements the data-structure essence of
// Sortledton [VLDB'22]: an adjacency index mapping each node to an
// adjacency set kept as a sequence of sorted blocks (an unrolled skip
// list). Small sets stay in one sorted vector; large sets split into
// fixed-capacity blocks, giving the O(log |E|) edge operations of the
// paper's Table III.
package sortledton

import "sort"

// blockCap is the unrolled-list block capacity (Sortledton uses blocks
// sized to cache lines; 128 ids ≈ 1 KiB).
const blockCap = 128

// adjacencySet is a sequence of sorted blocks; block boundaries keep the
// global order (every id in block i < every id in block i+1).
type adjacencySet struct {
	blocks [][]uint64
	size   int
}

// findBlock returns the index of the block that would contain v.
func (a *adjacencySet) findBlock(v uint64) int {
	lo, hi := 0, len(a.blocks)-1
	for lo < hi {
		mid := (lo + hi) / 2
		last := a.blocks[mid][len(a.blocks[mid])-1]
		if last < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (a *adjacencySet) contains(v uint64) bool {
	if a.size == 0 {
		return false
	}
	b := a.blocks[a.findBlock(v)]
	i := sort.Search(len(b), func(i int) bool { return b[i] >= v })
	return i < len(b) && b[i] == v
}

func (a *adjacencySet) insert(v uint64) bool {
	if a.size == 0 {
		a.blocks = append(a.blocks, []uint64{v})
		a.size = 1
		return true
	}
	bi := a.findBlock(v)
	b := a.blocks[bi]
	i := sort.Search(len(b), func(i int) bool { return b[i] >= v })
	if i < len(b) && b[i] == v {
		return false
	}
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = v
	if len(b) > blockCap {
		// Split the block in half, preserving order.
		mid := len(b) / 2
		left := make([]uint64, mid, blockCap+1)
		copy(left, b[:mid])
		right := make([]uint64, len(b)-mid, blockCap+1)
		copy(right, b[mid:])
		a.blocks = append(a.blocks, nil)
		copy(a.blocks[bi+2:], a.blocks[bi+1:])
		a.blocks[bi], a.blocks[bi+1] = left, right
	} else {
		a.blocks[bi] = b
	}
	a.size++
	return true
}

func (a *adjacencySet) remove(v uint64) bool {
	if a.size == 0 {
		return false
	}
	bi := a.findBlock(v)
	b := a.blocks[bi]
	i := sort.Search(len(b), func(i int) bool { return b[i] >= v })
	if i >= len(b) || b[i] != v {
		return false
	}
	copy(b[i:], b[i+1:])
	a.blocks[bi] = b[:len(b)-1]
	if len(a.blocks[bi]) == 0 {
		a.blocks = append(a.blocks[:bi], a.blocks[bi+1:]...)
	}
	a.size--
	return true
}

// Store is a Sortledton-style graph.
type Store struct {
	index map[uint64]*adjacencySet
	edges uint64
}

// New returns an empty Sortledton-style store.
func New() *Store { return &Store{index: make(map[uint64]*adjacencySet)} }

// InsertEdge adds ⟨u,v⟩, reporting whether it is new.
func (s *Store) InsertEdge(u, v uint64) bool {
	set := s.index[u]
	if set == nil {
		set = &adjacencySet{}
		s.index[u] = set
	}
	if !set.insert(v) {
		return false
	}
	s.edges++
	return true
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *Store) HasEdge(u, v uint64) bool {
	set := s.index[u]
	return set != nil && set.contains(v)
}

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (s *Store) DeleteEdge(u, v uint64) bool {
	set := s.index[u]
	if set == nil || !set.remove(v) {
		return false
	}
	if set.size == 0 {
		delete(s.index, u)
	}
	s.edges--
	return true
}

// ForEachSuccessor visits u's neighbours in ascending order — the sorted
// property Sortledton exploits for set intersections.
func (s *Store) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	set := s.index[u]
	if set == nil {
		return
	}
	for _, b := range set.blocks {
		for _, v := range b {
			if !fn(v) {
				return
			}
		}
	}
}

// ForEachNode calls fn for every node with out-edges.
func (s *Store) ForEachNode(fn func(u uint64) bool) {
	for u := range s.index {
		if !fn(u) {
			return
		}
	}
}

// NumEdges returns the number of stored edges.
func (s *Store) NumEdges() uint64 { return s.edges }

// MemoryUsage counts the adjacency index slots and block capacities.
func (s *Store) MemoryUsage() uint64 {
	var total uint64 = 48
	for _, set := range s.index {
		total += 8 + 8 + 24 + 8 // map slot + set ptr + blocks header + size
		for _, b := range set.blocks {
			total += 24 + uint64(cap(b))*8
		}
	}
	return total
}
