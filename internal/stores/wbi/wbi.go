// Package wbi re-implements the Wind-Bell Index [ICDE'23]: a K×K
// adjacency matrix of buckets, each bucket hanging a list of edges. An
// edge ⟨u,v⟩ has several candidate buckets (one per hash pair) and is
// appended to the shortest hanging list, addressing degree imbalance.
// Edge queries probe only the candidate buckets; successor queries must
// sweep u's entire matrix row and skip redundant edges — the behaviour
// the paper's analytics experiments blame for WBI's slowness.
package wbi

import "cuckoograph/internal/hashutil"

// hashes is the number of candidate (row,col) pairs per edge.
const hashes = 2

type edge struct{ u, v uint64 }

// Store is a Wind-Bell-Index graph with a K×K bucket matrix.
type Store struct {
	k     int
	cells [][]edge // K*K hanging lists, row-major
	seeds [hashes][2]uint32
	edges uint64
}

// New returns an empty WBI store with a K×K matrix (K defaults to 64,
// the matrix side; the paper's Table III lists the K²+|E| space term).
func New(k int) *Store {
	if k <= 0 {
		k = 64
	}
	s := &Store{k: k, cells: make([][]edge, k*k)}
	rng := hashutil.NewRNG(0xB0BCA7)
	for i := 0; i < hashes; i++ {
		s.seeds[i] = [2]uint32{rng.Uint32() | 1, rng.Uint32() | 1}
	}
	return s
}

// candidates returns the cell indexes the edge may live in.
func (s *Store) candidates(u, v uint64) [hashes]int {
	var out [hashes]int
	for i := 0; i < hashes; i++ {
		row := int(hashutil.Hash64(u, s.seeds[i][0])) % s.k
		col := int(hashutil.Hash64(v, s.seeds[i][1])) % s.k
		out[i] = row*s.k + col
	}
	return out
}

// InsertEdge appends ⟨u,v⟩ to the shortest candidate hanging list.
func (s *Store) InsertEdge(u, v uint64) bool {
	cands := s.candidates(u, v)
	best := cands[0]
	for _, c := range cands {
		for _, e := range s.cells[c] {
			if e.u == u && e.v == v {
				return false
			}
		}
		if len(s.cells[c]) < len(s.cells[best]) {
			best = c
		}
	}
	s.cells[best] = append(s.cells[best], edge{u, v})
	s.edges++
	return true
}

// HasEdge probes the candidate buckets only.
func (s *Store) HasEdge(u, v uint64) bool {
	for _, c := range s.candidates(u, v) {
		for _, e := range s.cells[c] {
			if e.u == u && e.v == v {
				return true
			}
		}
	}
	return false
}

// DeleteEdge removes ⟨u,v⟩ from whichever candidate list holds it.
func (s *Store) DeleteEdge(u, v uint64) bool {
	for _, c := range s.candidates(u, v) {
		list := s.cells[c]
		for i, e := range list {
			if e.u == u && e.v == v {
				list[i] = list[len(list)-1]
				s.cells[c] = list[:len(list)-1]
				s.edges--
				return true
			}
		}
	}
	return false
}

// ForEachSuccessor sweeps every row u may hash to, skipping edges of
// other sources — the redundant-edge scan cost of WBI.
func (s *Store) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	seenRow := [hashes]int{}
	for i := 0; i < hashes; i++ {
		seenRow[i] = int(hashutil.Hash64(u, s.seeds[i][0])) % s.k
	}
	for i := 0; i < hashes; i++ {
		row := seenRow[i]
		dup := false
		for j := 0; j < i; j++ {
			if seenRow[j] == row {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for col := 0; col < s.k; col++ {
			for _, e := range s.cells[row*s.k+col] {
				if e.u == u {
					if !fn(e.v) {
						return
					}
				}
			}
		}
	}
}

// ForEachNode sweeps the whole matrix reporting each distinct source.
func (s *Store) ForEachNode(fn func(u uint64) bool) {
	seen := make(map[uint64]bool)
	for _, list := range s.cells {
		for _, e := range list {
			if !seen[e.u] {
				seen[e.u] = true
				if !fn(e.u) {
					return
				}
			}
		}
	}
}

// NumEdges returns the number of stored edges.
func (s *Store) NumEdges() uint64 { return s.edges }

// MemoryUsage counts the K² bucket headers plus hanging-list capacity at
// 16 bytes per edge.
func (s *Store) MemoryUsage() uint64 {
	total := uint64(s.k*s.k) * 24 // slice header per matrix cell
	for _, list := range s.cells {
		total += uint64(cap(list)) * 16
	}
	return total
}
