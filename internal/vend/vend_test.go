package vend

import (
	"testing"
	"testing/quick"

	"cuckoograph/internal/hashutil"
)

// TestNoFalseNegatives is the filter's core contract: every inserted
// edge must answer maybe=true, through inserts and deletes.
func TestNoFalseNegatives(t *testing.T) {
	f := New()
	rng := hashutil.NewRNG(1)
	type pair struct{ u, v uint64 }
	live := map[pair]bool{}
	for i := 0; i < 20000; i++ {
		p := pair{rng.Uint64n(500), rng.Uint64n(100000)}
		if rng.Intn(4) == 0 {
			if live[p] {
				f.RemoveEdge(p.u, p.v)
				delete(live, p)
			}
		} else if !live[p] {
			f.AddEdge(p.u, p.v)
			live[p] = true
		}
		if i%1000 == 0 {
			for q := range live {
				if !f.MaybeHasEdge(q.u, q.v) {
					t.Fatalf("false negative for live edge %v", q)
				}
				break
			}
		}
	}
	for q := range live {
		if !f.MaybeHasEdge(q.u, q.v) {
			t.Fatalf("false negative for live edge %v at end", q)
		}
	}
}

// TestDefiniteNegatives checks the two certain-absent paths: unknown
// source and out-of-range target.
func TestDefiniteNegatives(t *testing.T) {
	f := New()
	f.AddEdge(1, 100)
	f.AddEdge(1, 200)
	if f.MaybeHasEdge(2, 100) {
		t.Fatal("unknown source not filtered")
	}
	if f.MaybeHasEdge(1, 99) || f.MaybeHasEdge(1, 201) {
		t.Fatal("out-of-range target not filtered")
	}
}

// TestFalsePositiveRate measures the hash-encoding precision: for a
// degree-32 node, random in-range probes should be mostly filtered.
func TestFalsePositiveRate(t *testing.T) {
	f := New()
	rng := hashutil.NewRNG(2)
	present := map[uint64]bool{}
	for len(present) < 32 {
		v := rng.Uint64n(1 << 30)
		if !present[v] {
			present[v] = true
			f.AddEdge(7, v)
		}
	}
	fp, trials := 0, 20000
	for i := 0; i < trials; i++ {
		v := rng.Uint64n(1 << 30)
		if present[v] {
			continue
		}
		if f.MaybeHasEdge(7, v) {
			fp++
		}
	}
	// deg/fpBits = 32/256 = 12.5% expected; allow slack.
	if rate := float64(fp) / float64(trials); rate > 0.25 {
		t.Fatalf("false-positive rate %.3f too high", rate)
	}
}

func TestRemoveEdgeDropsEmptyVertex(t *testing.T) {
	f := New()
	f.AddEdge(3, 4)
	f.RemoveEdge(3, 4)
	if f.MaybeHasEdge(3, 4) {
		t.Fatal("empty vertex still answers maybe")
	}
	if f.Nodes() != 0 {
		t.Fatalf("nodes = %d, want 0", f.Nodes())
	}
	f.RemoveEdge(99, 1) // no-op on unknown vertex
}

func TestRebuildTightensFilter(t *testing.T) {
	f := New()
	for v := uint64(0); v < 64; v++ {
		f.AddEdge(1, v*1000)
	}
	// Delete everything but one edge; the stale encodings stay wide.
	for v := uint64(1); v < 64; v++ {
		f.RemoveEdge(1, v*1000)
	}
	wideFPs := 0
	for v := uint64(1); v < 64; v++ {
		if f.MaybeHasEdge(1, v*1000) {
			wideFPs++
		}
	}
	f.Rebuild(func(fn func(u, v uint64)) { fn(1, 0) })
	if !f.MaybeHasEdge(1, 0) {
		t.Fatal("surviving edge lost in rebuild")
	}
	tightFPs := 0
	for v := uint64(1); v < 64; v++ {
		if f.MaybeHasEdge(1, v*1000) {
			tightFPs++
		}
	}
	if tightFPs >= wideFPs && wideFPs > 0 {
		t.Fatalf("rebuild did not tighten: %d → %d false positives", wideFPs, tightFPs)
	}
}

func TestMemoryBytesScalesWithNodes(t *testing.T) {
	f := New()
	empty := f.MemoryBytes()
	for u := uint64(0); u < 100; u++ {
		f.AddEdge(u, u+1)
	}
	if f.MemoryBytes() <= empty {
		t.Fatal("memory did not grow with vertices")
	}
}

func TestQuickNeverFalseNegative(t *testing.T) {
	prop := func(us, vs []uint8) bool {
		f := New()
		type pair struct{ u, v uint64 }
		added := map[pair]bool{}
		for i := range us {
			v := uint64(0)
			if i < len(vs) {
				v = uint64(vs[i])
			}
			p := pair{uint64(us[i]), v}
			f.AddEdge(p.u, p.v)
			added[p] = true
		}
		for p := range added {
			if !f.MaybeHasEdge(p.u, p.v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
