// Package vend implements a VEND-style vertex-encoding filter for edge
// nonexistence determination (Li et al., ICDE 2023 — reference [46] of
// the CuckooGraph paper, whose §II-B leaves "applying VEND to
// CuckooGraph as future work"; this package is that extension).
//
// The idea: most node pairs in a real graph have no edge, so a compact
// per-vertex summary of each node's neighbours can answer most edge
// queries negatively without touching the graph store at all. VEND
// keeps two encodings per vertex and uses whichever is precise:
//
//   - a range encoding — the [min,max] interval of neighbour ids, exact
//     when a node's neighbours cluster (common with locality-assigned
//     ids);
//   - a hash encoding — a 256-bit fingerprint set of the neighbours,
//     giving a per-edge false-positive rate around deg/256 for small
//     degrees.
//
// A query answers "definitely absent" when either encoding rules the
// edge out; otherwise "maybe", and the caller probes the real store.
// Deletions make an encoding stale conservatively: the filter keeps the
// deleted neighbour's traces until Rebuild, so it never produces a
// false negative.
package vend

import "cuckoograph/internal/hashutil"

// fpBits is the hash-encoding size in bits per vertex.
const fpBits = 256

// nodeFilter summarises one vertex's out-neighbours.
type nodeFilter struct {
	lo, hi uint64              // range encoding
	fp     [fpBits / 64]uint64 // hash encoding (fingerprint bitmap)
	n      int                 // live neighbour count
}

func fpIndex(v uint64) (word int, bit uint64) {
	h := hashutil.Hash64(v, 0x7E4D)
	i := h & (fpBits - 1)
	return int(i / 64), 1 << (i % 64)
}

// Filter is the per-graph VEND index.
type Filter struct {
	nodes map[uint64]*nodeFilter
}

// New returns an empty filter.
func New() *Filter { return &Filter{nodes: make(map[uint64]*nodeFilter)} }

// AddEdge records ⟨u,v⟩ in u's encodings.
func (f *Filter) AddEdge(u, v uint64) {
	nf := f.nodes[u]
	if nf == nil {
		nf = &nodeFilter{lo: v, hi: v}
		f.nodes[u] = nf
	}
	if v < nf.lo {
		nf.lo = v
	}
	if v > nf.hi {
		nf.hi = v
	}
	w, b := fpIndex(v)
	nf.fp[w] |= b
	nf.n++
}

// RemoveEdge notes a deletion. The encodings are monotone, so the entry
// stays conservative (possible false positives, never false negatives);
// an empty vertex is dropped exactly.
func (f *Filter) RemoveEdge(u, v uint64) {
	nf := f.nodes[u]
	if nf == nil {
		return
	}
	nf.n--
	if nf.n <= 0 {
		delete(f.nodes, u)
	}
}

// MaybeHasEdge reports whether ⟨u,v⟩ can exist. A false return is
// definitive: the edge is certainly absent.
func (f *Filter) MaybeHasEdge(u, v uint64) bool {
	nf := f.nodes[u]
	if nf == nil {
		return false // u has no out-edges at all
	}
	if v < nf.lo || v > nf.hi {
		return false // outside the range encoding
	}
	w, b := fpIndex(v)
	return nf.fp[w]&b != 0
}

// Rebuild reconstructs the filter exactly from a neighbour iterator,
// clearing the slack left by deletions.
func (f *Filter) Rebuild(forEachEdge func(fn func(u, v uint64))) {
	f.nodes = make(map[uint64]*nodeFilter, len(f.nodes))
	forEachEdge(func(u, v uint64) { f.AddEdge(u, v) })
}

// Nodes returns the number of vertices summarised.
func (f *Filter) Nodes() int { return len(f.nodes) }

// MemoryBytes counts the filter's structural bytes: per vertex a map
// slot, the range pair, the fingerprint words and the counter.
func (f *Filter) MemoryBytes() uint64 {
	per := uint64(8 + 8 + 16 + fpBits/8 + 8)
	return uint64(len(f.nodes))*per + 48
}
