package cuckoo

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestChainTransformationRule verifies Table II of the paper: with R=3
// and base length n, successive Grow transformations walk the length
// sequence [n] → [n,n/2] → [n,n/2,n/2] → [2n,n] → [2n,n,n] → [4n,2n] →
// [4n,2n,2n] → [8n,4n] → …
func TestChainTransformationRule(t *testing.T) {
	const n = 8
	c := NewChain[struct{}](n, Config{R: 3})
	want := [][]int{
		{n},                   // state 0
		{n, n / 2},            // state 1
		{n, n / 2, n / 2},     // state 2
		{2 * n, n},            // state 3
		{2 * n, n, n},         // state 4
		{4 * n, 2 * n},        // state 5
		{4 * n, 2 * n, 2 * n}, // state 6
		{8 * n, 4 * n},        // state 7
		{8 * n, 4 * n, 4 * n}, // state 8
		{16 * n, 8 * n},       // state 9
	}
	for state, lens := range want {
		if got := c.Lengths(); !reflect.DeepEqual(got, lens) {
			t.Fatalf("state %d: lengths %v, want %v", state, got, lens)
		}
		if c.Grows() != state {
			t.Fatalf("state %d: Grows() = %d", state, c.Grows())
		}
		c.Grow()
	}
}

// TestChainGrowConservation checks that merging never loses or
// duplicates items.
func TestChainGrowConservation(t *testing.T) {
	c := NewChain[uint64](8, Config{R: 3})
	inserted := map[uint64]bool{}
	var key uint64
	for c.Grows() < 6 { // push through two merges
		key++
		if lo, _ := c.Insert(key, key); len(lo) != 0 {
			t.Fatalf("insert %d failed (leftovers %v)", key, lo)
		}
		inserted[key] = true
	}
	if c.Size() != len(inserted) {
		t.Fatalf("size %d, want %d", c.Size(), len(inserted))
	}
	seen := map[uint64]int{}
	c.ForEach(func(k, v uint64) bool {
		if k != v {
			t.Fatalf("payload corrupted: key %d val %d", k, v)
		}
		seen[k]++
		return true
	})
	for k := range inserted {
		if seen[k] != 1 {
			t.Fatalf("key %d seen %d times", k, seen[k])
		}
	}
}

// TestChainInsertGrowsAtThreshold confirms a Grow happens exactly when
// the active table reaches G.
func TestChainInsertGrowsAtThreshold(t *testing.T) {
	c := NewChain[struct{}](8, Config{G: 0.5, R: 3})
	grewAt := -1
	for i := 1; i <= 200; i++ {
		lo, grew := c.Insert(uint64(i), struct{}{})
		if len(lo) != 0 {
			t.Fatalf("insert %d failed", i)
		}
		if grew && grewAt < 0 {
			grewAt = i
		}
	}
	if grewAt < 0 {
		t.Fatal("chain never grew over 200 inserts with G=0.5")
	}
	// The first table has (8+4)*8 = 96 cells; G=0.5 ⇒ growth at 48 stored.
	if grewAt != 49 {
		t.Fatalf("first growth at insert %d, want 49", grewAt)
	}
}

// TestChainReverseTransformation exercises contraction: deletions that
// drop the overall LR below Λ must shrink the chain, and after shrinking
// every surviving item must still be found.
func TestChainReverseTransformation(t *testing.T) {
	c := NewChain[uint64](8, Config{R: 3, Lambda: 0.5, G: 0.9})
	const total = 600
	for i := uint64(1); i <= total; i++ {
		if lo, _ := c.Insert(i, i); len(lo) != 0 {
			t.Fatalf("insert %d failed", i)
		}
	}
	tablesBefore := c.Tables()
	cellsBefore := c.Cells()
	lost := map[uint64]bool{} // keys evicted as contraction leftovers
	for i := uint64(1); i <= total-20; i++ {
		lo, deleted := c.Delete(i)
		if !deleted && !lost[i] {
			t.Fatalf("delete %d failed", i)
		}
		for _, e := range lo {
			lost[e.Key] = true
		}
	}
	if c.Cells() >= cellsBefore {
		t.Fatalf("cells did not shrink: %d → %d (tables %d → %d)",
			cellsBefore, c.Cells(), tablesBefore, c.Tables())
	}
	survivors := 0
	for i := uint64(total - 19); i <= total; i++ {
		if c.Contains(i) {
			survivors++
		} else if !lost[i] {
			t.Fatalf("surviving key %d lost after contraction", i)
		}
	}
	if c.Size() != survivors {
		t.Fatalf("size %d ≠ %d surviving keys", c.Size(), survivors)
	}
}

func TestChainDeleteAbsent(t *testing.T) {
	c := NewChain[uint64](8, Config{})
	if _, deleted := c.Delete(42); deleted {
		t.Fatal("delete of absent key reported true")
	}
}

func TestChainDrainResets(t *testing.T) {
	c := NewChain[uint64](8, Config{R: 3})
	for i := uint64(1); i <= 300; i++ {
		c.Insert(i, i)
	}
	out := c.Drain()
	if len(out) != 300 {
		t.Fatalf("drained %d entries, want 300", len(out))
	}
	if c.Size() != 0 || c.Tables() != 1 || c.Lengths()[0] != 8 {
		t.Fatalf("chain not reset: size %d tables %d lengths %v",
			c.Size(), c.Tables(), c.Lengths())
	}
}

// TestChainQuickModel drives the chain against a map model through mixed
// insert/delete/lookup streams, covering growth and contraction.
func TestChainQuickModel(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		c := NewChain[uint64](4, Config{Seed: seed | 1, G: 0.8, Lambda: 0.4})
		model := map[uint64]bool{}
		lost := map[uint64]bool{} // keys the chain reported as leftovers
		for i, op := range ops {
			key := uint64(op%211) + 1
			switch i % 3 {
			case 0:
				if !model[key] && !lost[key] {
					model[key] = true
					lo, _ := c.Insert(key, key)
					for _, e := range lo {
						lost[e.Key] = true
						delete(model, e.Key)
					}
				}
			case 1:
				lo, deleted := c.Delete(key)
				if deleted != model[key] {
					return false
				}
				delete(model, key)
				for _, e := range lo {
					lost[e.Key] = true
					delete(model, e.Key)
				}
			default:
				if c.Contains(key) != model[key] {
					return false
				}
			}
		}
		return c.Size() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
