package cuckoo

import "cuckoograph/internal/hashutil"

// Chain is a sequence of cuckoo tables managed by the paper's
// TRANSFORMATION technique (§III-A1, Table II). The first table ("1st
// S-CHT") is the largest; later tables are enabled as the loading rate of
// the active (newest) table reaches G; when R tables exist and the last
// fills up, all tables merge into a doubled first table plus a fresh
// second. Reverse transformation contracts the chain as deletions bring
// the overall loading rate below Λ.
//
// A Chain backs both every per-node S-CHT chain and the L-CHT itself.
//
// Probing is hash-once: an operation computes hashutil.Key64(key) a
// single time and every table in the chain derives its buckets from
// that one value (mixed with the table's private seed), so a chain-wide
// lookup costs one hash however many tables — at most R, two buckets
// each — it has to touch (the bounded memory-access guarantee of §V-D's
// analysis). The *Hashed variants let callers that already hold the
// hash (the engine's batch path) skip even that one computation.
type Chain[P any] struct {
	cfg    Config
	base   int // n: the length of the 1st S-CHT at state 0
	tables []*Table[P]
	seed   uint64
	grows  int // number of Grow transformations applied (Table II row)

	// scratch is the reusable drain buffer of the transformation loops:
	// merges and contractions drain tables into it instead of
	// allocating a fresh []Entry per restructure. Only valid inside one
	// transformation; releaseScratch zeroes it afterwards so the
	// retained Entry payloads (for the L-CHT: whole part2 values
	// holding adjacency arrays and chain pointers) don't pin memory
	// between restructures.
	scratch []Entry[P]

	kicksRetired  uint64 // kicks recorded in tables since merged or removed
	placements    uint64 // successful cell placements, incl. re-homing moves
	transformBeat uint64 // Grow + reverse transformations, for stats
}

// NewChain returns a chain holding a single table of length base.
func NewChain[P any](base int, cfg Config) *Chain[P] {
	cfg = cfg.Defaults()
	if base < 2 {
		base = 2
	}
	if base%2 != 0 {
		base++
	}
	c := &Chain[P]{cfg: cfg, base: base, seed: cfg.Seed}
	c.tables = []*Table[P]{c.newTable(base)}
	return c
}

func (c *Chain[P]) newTable(length int) *Table[P] {
	// Give every table a distinct deterministic seed so merged tables
	// re-randomise their hash functions, as cuckoo rebuilds require.
	c.seed = c.seed*6364136223846793005 + 1442695040888963407
	cfg := c.cfg
	cfg.Seed = c.seed
	return NewTable[P](length, cfg)
}

// Tables returns the number of tables currently in the chain.
func (c *Chain[P]) Tables() int { return len(c.tables) }

// Lengths returns the lengths of the tables, first to last. The sequence
// follows Table II of the paper, which the test suite verifies.
func (c *Chain[P]) Lengths() []int {
	out := make([]int, len(c.tables))
	for i := range c.tables {
		out[i] = c.tables[i].Len()
	}
	return out
}

// Grows returns how many Grow transformations have been applied; it is
// the row index of Table II when R=3.
func (c *Chain[P]) Grows() int { return c.grows }

// Size returns the total number of stored entries.
func (c *Chain[P]) Size() int {
	n := 0
	for i := range c.tables {
		n += c.tables[i].Size()
	}
	return n
}

// Cells returns the total cells across the chain.
func (c *Chain[P]) Cells() int {
	n := 0
	for i := range c.tables {
		n += c.tables[i].Cells()
	}
	return n
}

// OverallLoadRate is the chain-wide LR used by reverse transformation.
func (c *Chain[P]) OverallLoadRate() float64 {
	return float64(c.Size()) / float64(c.Cells())
}

// Kicks returns cumulative relocation attempts over the chain's whole
// lifetime, including tables that have since been merged away. Together
// with Placements it yields the paper's "average number of insertions
// per item" measurement (§IV-A).
func (c *Chain[P]) Kicks() uint64 {
	n := c.kicksRetired
	for i := range c.tables {
		n += c.tables[i].Kicks()
	}
	return n
}

// Placements returns the number of successful cell placements performed,
// including the internal moves of merges and contractions.
func (c *Chain[P]) Placements() uint64 { return c.placements }

// Transformations returns how many forward or reverse transformations
// the chain has performed.
func (c *Chain[P]) Transformations() uint64 { return c.transformBeat }

// Lookup probes every table in the chain with one shared hash.
func (c *Chain[P]) Lookup(key uint64) (P, bool) {
	return c.LookupHashed(hashutil.Key64(key), key)
}

// LookupHashed is Lookup with the key's hash already computed.
func (c *Chain[P]) LookupHashed(h, key uint64) (P, bool) {
	for i := range c.tables {
		t := c.tables[i]
		if j := t.findHashed(h, key); j >= 0 {
			return t.vals[j], true
		}
	}
	var zero P
	return zero, false
}

// Ref returns a mutable pointer to key's payload, or nil.
func (c *Chain[P]) Ref(key uint64) *P {
	return c.RefHashed(hashutil.Key64(key), key)
}

// RefHashed is Ref with the key's hash already computed.
func (c *Chain[P]) RefHashed(h, key uint64) *P {
	for i := range c.tables {
		t := c.tables[i]
		if j := t.findHashed(h, key); j >= 0 {
			return &t.vals[j]
		}
	}
	return nil
}

// Contains reports whether key is stored anywhere in the chain.
func (c *Chain[P]) Contains(key uint64) bool {
	return c.ContainsHashed(hashutil.Key64(key), key)
}

// ContainsHashed is Contains with the key's hash already computed.
func (c *Chain[P]) ContainsHashed(h, key uint64) bool {
	for i := range c.tables {
		if c.tables[i].findHashed(h, key) >= 0 {
			return true
		}
	}
	return false
}

// NeedsGrow reports whether the active table's LR has reached G, i.e. a
// Grow transformation should run before the next insertion (§III-A1:
// "if the growing l causes the LR of the S-CHT to reach the preset
// threshold G before the current v arrives").
func (c *Chain[P]) NeedsGrow() bool {
	return c.tables[len(c.tables)-1].LoadRate() >= c.cfg.G
}

// Grow applies one step of the transformation rule:
//
//   - fewer than R tables: enable the next table. Its length is half the
//     first table's length when only one table exists, otherwise it
//     matches the most recently enabled table (Table II: n → n,n/2 →
//     n,n/2,n/2 and 2n,n → 2n,n,n).
//   - R tables: merge everything into a new first table of twice the old
//     first length and enable a fresh second table of the old first
//     length (Table II: n,n/2,n/2 → 2n,n).
//
// Entries that cannot be re-homed during a merge are returned as
// leftovers for the caller's denylist.
func (c *Chain[P]) Grow() (leftovers []Entry[P]) {
	c.grows++
	c.transformBeat++
	if len(c.tables) < c.cfg.R {
		var length int
		if len(c.tables) == 1 {
			length = c.tables[0].Len() / 2
		} else {
			length = c.tables[len(c.tables)-1].Len()
		}
		c.tables = append(c.tables, c.newTable(length))
		return nil
	}
	merged := c.newTable(c.tables[0].Len() * 2)
	for i := range c.tables {
		t := c.tables[i]
		c.kicksRetired += t.Kicks()
		// Drain into the chain's reusable scratch buffer — a merge no
		// longer allocates a fresh slice per source table.
		c.scratch = t.DrainInto(c.scratch[:0])
		for _, e := range c.scratch {
			if lo, ok := merged.Insert(e.Key, e.Val); !ok {
				leftovers = append(leftovers, lo)
			} else {
				c.placements++
			}
		}
		// Release per table, not once after the loop: the first table
		// is the largest, so a later, shorter fill would otherwise
		// strand its tail entries past the final release's len.
		c.releaseScratch()
	}
	c.tables = []*Table[P]{merged, c.newTable(merged.Len() / 2)}
	return leftovers
}

// releaseScratch zeroes the drain buffer's live entries and resets its
// length, keeping the allocation but dropping every payload it pinned.
// The tail beyond len is already zero — every release leaves the whole
// buffer zeroed and refills only append from an empty slice — so O(len)
// suffices, not O(high-water capacity).
func (c *Chain[P]) releaseScratch() {
	clear(c.scratch)
	c.scratch = c.scratch[:0]
}

// Insert stores ⟨key,val⟩, hashing the key itself. See InsertHashed.
func (c *Chain[P]) Insert(key uint64, val P) (leftovers []Entry[P], grew bool) {
	return c.InsertHashed(hashutil.Key64(key), key, val)
}

// InsertHashed stores ⟨key,val⟩ (h is the key's Key64 hash), growing
// the chain first if the active table is at threshold. grew reports
// whether a transformation ran (the caller drains its denylist into the
// chain when it did). Every entry left homeless — whether the argument
// pair after kicking, or spill from a merge — is returned in leftovers
// for the caller's denylist; an empty slice means complete success. The
// caller must ensure key is not already present in the chain.
func (c *Chain[P]) InsertHashed(h, key uint64, val P) (leftovers []Entry[P], grew bool) {
	if c.NeedsGrow() {
		leftovers = c.Grow()
		grew = true
	}
	active := c.tables[len(c.tables)-1]
	if lo, ok := active.InsertHashed(h, key, val); !ok {
		leftovers = append(leftovers, lo)
	} else {
		c.placements++
	}
	return leftovers, grew
}

// Delete removes key, hashing the key itself. See DeleteHashed.
func (c *Chain[P]) Delete(key uint64) (leftovers []Entry[P], deleted bool) {
	return c.DeleteHashed(hashutil.Key64(key), key)
}

// DeleteHashed removes key (h is its Key64 hash) and applies reverse
// transformation (§III-A1) when the overall LR drops below Λ: with two
// or more tables the table that held the key is removed and its
// residents transferred to the others; with a single table longer than
// the base length, the table is rebuilt at half length. Leftovers that
// cannot be re-homed are returned for the caller's denylist.
func (c *Chain[P]) DeleteHashed(h, key uint64) (leftovers []Entry[P], deleted bool) {
	idx := -1
	for i := range c.tables {
		if c.tables[i].DeleteHashed(h, key) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	if c.OverallLoadRate() >= c.cfg.Lambda {
		return nil, true
	}
	if len(c.tables) > 1 {
		// The victim table value keeps its backing arrays alive after
		// the element is shifted out of the tables slice.
		victim := c.tables[idx]
		// Contract only if the surviving tables can absorb the victim's
		// residents below the expansion threshold; otherwise deleting the
		// table would immediately re-trigger growth (thrash) and flood
		// the caller's denylist.
		otherCells := c.Cells() - victim.Cells()
		if float64(c.Size()) > float64(otherCells)*c.cfg.G {
			return nil, true
		}
		c.transformBeat++
		c.tables = append(c.tables[:idx], c.tables[idx+1:]...)
		c.kicksRetired += victim.Kicks()
		c.scratch = victim.DrainInto(c.scratch[:0])
		for _, e := range c.scratch {
			if lo, ok := c.rehome(e); !ok {
				leftovers = append(leftovers, lo)
			}
		}
		c.releaseScratch()
		return leftovers, true
	}
	if c.tables[0].Len() > c.base {
		old := c.tables[0]
		// Same guard: the halved table must hold everything below G.
		if float64(old.Size()) > float64(old.Cells())/2*c.cfg.G {
			return nil, true
		}
		c.transformBeat++
		c.tables[0] = c.newTable(old.Len() / 2)
		c.kicksRetired += old.Kicks()
		c.scratch = old.DrainInto(c.scratch[:0])
		for _, e := range c.scratch {
			if lo, ok := c.rehome(e); !ok {
				leftovers = append(leftovers, lo)
			}
		}
		c.releaseScratch()
	}
	return leftovers, true
}

// rehome tries to place e in any table of the chain, emptiest first.
// When an insert fails, the table has still absorbed the item and kicked
// out a different victim, so the victim becomes the entry to place next;
// on total failure that final homeless entry is returned.
func (c *Chain[P]) rehome(e Entry[P]) (Entry[P], bool) {
	best := -1
	for i := range c.tables {
		if best < 0 || c.tables[i].LoadRate() < c.tables[best].LoadRate() {
			best = i
		}
	}
	cur := e
	for off := 0; off < len(c.tables); off++ {
		t := c.tables[(best+off)%len(c.tables)]
		lo, ok := t.Insert(cur.Key, cur.Val)
		if ok {
			c.placements++
			return Entry[P]{}, true
		}
		cur = lo
	}
	return cur, false
}

// ForEach calls fn for every entry in the chain until fn returns false.
func (c *Chain[P]) ForEach(fn func(key uint64, val P) bool) {
	c.ForEachRef(func(key uint64, val *P) bool { return fn(key, *val) })
}

// ForEachRef calls fn for every entry with a pointer to its payload in
// place — the allocation-free iteration of the read path — until fn
// returns false. It reports whether the scan ran to completion. The
// pointers are valid only during the call.
func (c *Chain[P]) ForEachRef(fn func(key uint64, val *P) bool) bool {
	for i := range c.tables {
		if !c.tables[i].ForEachRef(fn) {
			return false
		}
	}
	return true
}

// Drain removes and returns every entry in the chain, resetting it to a
// single base-length table.
func (c *Chain[P]) Drain() []Entry[P] {
	return c.DrainInto(nil)
}

// DrainInto removes every entry in the chain, appending them to buf,
// and resets the chain to a single base-length table. Callers that
// restructure repeatedly (the engine's chain collapse) pass a reusable
// buffer to keep the transformation allocation-free.
func (c *Chain[P]) DrainInto(buf []Entry[P]) []Entry[P] {
	for i := range c.tables {
		c.kicksRetired += c.tables[i].Kicks()
		buf = c.tables[i].DrainInto(buf)
	}
	c.tables = []*Table[P]{c.newTable(c.base)}
	c.grows = 0
	return buf
}

// MemoryBytes sums the structural bytes of all tables in the chain.
func (c *Chain[P]) MemoryBytes(payloadBytes int) uint64 {
	var n uint64
	for i := range c.tables {
		n += c.tables[i].MemoryBytes(payloadBytes)
	}
	// One header word per table for the chain's table array slot.
	return n + uint64(len(c.tables))*8
}
