package cuckoo

import (
	"testing"
	"testing/quick"

	"cuckoograph/internal/hashutil"
)

// refZeroBytes is the obvious per-byte reference for the SWAR helper.
func refZeroBytes(x uint64) uint64 {
	var m uint64
	for lane := 0; lane < 8; lane++ {
		if byte(x>>(lane*8)) == 0 {
			m |= 0x80 << (lane * 8)
		}
	}
	return m
}

func TestZeroBytesExact(t *testing.T) {
	// The borrow-propagation trap cases: a 0x01 (and 0x80) byte directly
	// above a zero byte must NOT be reported as zero.
	cases := []uint64{
		0, ^uint64(0),
		0x0100, 0x01000100, 0x8000, 0x0180008000010001,
		0x0101010101010101, 0x8080808080808080,
		0x00FF00FF00FF00FF, 0xFF00FF00FF00FF00,
	}
	for _, x := range cases {
		if got, want := zeroBytes(x), refZeroBytes(x); got != want {
			t.Fatalf("zeroBytes(%#x) = %#x, want %#x", x, got, want)
		}
	}
	f := func(x uint64) bool { return zeroBytes(x) == refZeroBytes(x) }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTagOfNeverZero(t *testing.T) {
	f := func(h uint64) bool { return tagOf(h) != 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if tagOf(0) == 0 || tagOf(0x00FFFFFFFFFFFFFF) == 0 {
		t.Fatal("tagOf maps a zero top byte to the empty marker")
	}
}

// slowFind is the straightforward full-key scan the tag-indexed probe
// must agree with: walk every cell of every bucket, match on occupancy
// (tag != 0) and the stored key.
func slowFind[P any](t *Table[P], key uint64) int {
	for b := 0; b < t.m1+t.m2; b++ {
		for c := 0; c < t.d; c++ {
			if t.tagAt(b, c) != 0 && *t.keyRef(b, c) == key {
				return b*t.d + c
			}
		}
	}
	return -1
}

// TestTagFindAgreesWithFullScan drives random insert/delete/lookup
// streams through a chain — growing and contracting through the Table
// II states — and checks after every op that the tag-indexed find of
// every table agrees with the full-key scan, and that chain-level
// Contains matches a map model.
func TestTagFindAgreesWithFullScan(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		c := NewChain[uint64](2, Config{Seed: seed | 1, R: 3})
		model := map[uint64]bool{}
		rng := hashutil.NewRNG(seed*2 + 1)
		for _, op := range ops {
			key := uint64(op%251) + 1
			switch rng.Intn(3) {
			case 0:
				if !model[key] {
					leftovers, _ := c.Insert(key, key*3)
					if len(leftovers) == 0 {
						model[key] = true
					} else {
						// Denylist spill: the chain no longer holds every
						// key the stream inserted; drop spilled keys from
						// the model (they may be keys other than `key`).
						for _, lo := range leftovers {
							delete(model, lo.Key)
							if lo.Key != key {
								model[key] = true
							}
						}
					}
				}
			case 1:
				if _, deleted := c.Delete(key); deleted != model[key] {
					return false
				}
				delete(model, key)
			default:
				if c.Contains(key) != model[key] {
					return false
				}
			}
			// Invariant: per table, tag-indexed find ≡ full-key scan for
			// both present and absent probes.
			for _, probe := range []uint64{key, key + 1000} {
				h := hashutil.Key64(probe)
				for _, tb := range c.tables {
					if tb.findHashed(h, probe) != slowFind(tb, probe) {
						return false
					}
				}
			}
		}
		// Exhaustive sweep at the final state (whatever Table II state
		// the stream drove the chain into).
		for key := uint64(1); key <= 252; key++ {
			h := hashutil.Key64(key)
			for _, tb := range c.tables {
				if tb.findHashed(h, key) != slowFind(tb, key) {
					return false
				}
			}
			if c.Contains(key) != model[key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestTagFindAgreesAcrossTableIIStates pins the agreement on every
// forward-transformation state reachable in two merge cycles,
// including immediately after each Grow (the restructure that re-homes
// every entry and must preserve tags).
func TestTagFindAgreesAcrossTableIIStates(t *testing.T) {
	c := NewChain[struct{}](2, Config{R: 3, Seed: 99})
	next := uint64(1)
	for state := 0; state < 9; state++ {
		// Fill until the next transformation would trigger, then Grow.
		for !c.NeedsGrow() {
			c.Insert(next, struct{}{})
			next++
		}
		c.Grow()
		for key := uint64(1); key < next+8; key++ {
			h := hashutil.Key64(key)
			found := false
			for _, tb := range c.tables {
				got := tb.findHashed(h, key)
				if got != slowFind(tb, key) {
					t.Fatalf("state %d: find(%d) = %d, scan = %d", state, key, got, slowFind(tb, key))
				}
				if got >= 0 {
					found = true
				}
			}
			if found != c.Contains(key) {
				t.Fatalf("state %d: Contains(%d) disagrees with per-table find", state, key)
			}
		}
	}
}

// TestKickPreservesTags checks the kick loop's tag bookkeeping: after
// heavy kicking, every occupied cell's tag must equal tagOf of its
// key's hash (the invariant that makes probes correct after
// relocations without recomputing tags).
func TestKickPreservesTags(t *testing.T) {
	tb := NewTable[uint64](4, Config{D: 2, MaxKicks: 50, Seed: 7})
	for k := uint64(1); k <= 200; k++ {
		tb.Insert(k, k) // most fail once full; each failure kicks first
	}
	if tb.Kicks() == 0 {
		t.Fatal("workload produced no kicks; invariant not exercised")
	}
	checked := 0
	for b := 0; b < tb.m1+tb.m2; b++ {
		for c := 0; c < tb.d; c++ {
			if tag := tb.tagAt(b, c); tag != 0 {
				key := *tb.keyRef(b, c)
				if want := tagOf(hashutil.Key64(key)); tag != want {
					t.Fatalf("cell (%d,%d): tag %#x, want %#x for key %d", b, c, tag, want, key)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no occupied cells to check")
	}
}

// TestOddBucketWidths exercises the non-default d values of the §V-B
// parameter sweep — including d below, equal to and above one tag
// word — through the same set-semantics workload.
func TestOddBucketWidths(t *testing.T) {
	for _, d := range []int{1, 3, 4, 8, 16, 32} {
		tb := NewTable[int](32, Config{D: d, Seed: uint64(d) + 1})
		for k := uint64(1); k <= 100; k++ {
			tb.Insert(k, int(k))
		}
		for k := uint64(1); k <= 100; k++ {
			if got := tb.find(k); got != slowFind(tb, k) {
				t.Fatalf("d=%d: find(%d) = %d, scan = %d", d, k, got, slowFind(tb, k))
			}
		}
		for k := uint64(1); k <= 100; k += 3 {
			tb.Delete(k)
		}
		for k := uint64(1); k <= 110; k++ {
			if got := tb.find(k); got != slowFind(tb, k) {
				t.Fatalf("d=%d after deletes: find(%d) = %d, scan = %d", d, k, got, slowFind(tb, k))
			}
		}
	}
}
