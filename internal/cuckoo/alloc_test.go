package cuckoo

import (
	"testing"

	"cuckoograph/internal/hashutil"
)

// The probe path must be allocation-free: these tests pin zero heap
// allocations per operation for table and chain reads, on small and
// multi-table states alike.

func TestTableLookupZeroAlloc(t *testing.T) {
	tb := NewTable[uint64](64, Config{})
	for k := uint64(1); k <= 300; k++ {
		tb.Insert(k, k)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := tb.Lookup(37); !ok {
			t.Fatal("lookup miss")
		}
		tb.Lookup(1 << 40) // absent
	}); n != 0 {
		t.Fatalf("Table.Lookup allocates %.1f/op, want 0", n)
	}
}

func TestChainRefZeroAlloc(t *testing.T) {
	c := NewChain[uint64](2, Config{})
	for k := uint64(1); k <= 500; k++ {
		c.Insert(k, k*2)
	}
	if c.Tables() < 2 {
		t.Fatalf("chain has %d tables; want a grown chain", c.Tables())
	}
	if n := testing.AllocsPerRun(200, func() {
		if c.Ref(123) == nil {
			t.Fatal("ref miss")
		}
		if c.Ref(1<<40) != nil {
			t.Fatal("phantom ref")
		}
		h := hashutil.Key64(321)
		if c.RefHashed(h, 321) == nil {
			t.Fatal("hashed ref miss")
		}
	}); n != 0 {
		t.Fatalf("Chain.Ref allocates %.1f/op, want 0", n)
	}
}

func TestChainForEachRefZeroAlloc(t *testing.T) {
	c := NewChain[uint64](2, Config{})
	// Track the expected sum net of denylist spill: entries the chain
	// hands back as leftovers are the caller's problem, not stored.
	var want uint64
	for k := uint64(1); k <= 500; k++ {
		leftovers, _ := c.Insert(k, k)
		want += k
		for _, lo := range leftovers {
			want -= lo.Val
		}
	}
	var sum uint64
	if n := testing.AllocsPerRun(50, func() {
		sum = 0
		c.ForEachRef(func(k uint64, v *uint64) bool {
			sum += *v
			return true
		})
	}); n != 0 {
		t.Fatalf("Chain.ForEachRef allocates %.1f/run, want 0", n)
	}
	if sum != want {
		t.Fatalf("ForEachRef sum = %d, want %d", sum, want)
	}
}

// TestScratchPinsNothingAfterRestructure pins the releaseScratch
// invariant: after any sequence of merges (which refill the scratch
// once per source table, largest first) and contractions, every slot
// of the buffer's full capacity is zero — no drained payload stays
// reachable between restructures.
func TestScratchPinsNothingAfterRestructure(t *testing.T) {
	c := NewChain[uint64](2, Config{R: 3, Seed: 5})
	for k := uint64(1); k <= 400; k++ {
		c.Insert(k, k) // walks several Grow merges
	}
	for k := uint64(1); k <= 395; k++ {
		c.Delete(k) // walks reverse transformations
	}
	if cap(c.scratch) == 0 {
		t.Fatal("workload never used the scratch buffer")
	}
	for i, e := range c.scratch[:cap(c.scratch)] {
		if e.Key != 0 || e.Val != 0 {
			t.Fatalf("scratch slot %d pins entry {%d %d} after restructures", i, e.Key, e.Val)
		}
	}
}

func TestChainDrainIntoReusesBuffer(t *testing.T) {
	// After a warm-up drain sized the buffer, repeated drain/refill
	// cycles through DrainInto must not allocate entry slices.
	c := NewChain[uint64](8, Config{})
	fill := func() {
		for k := uint64(1); k <= 100; k++ {
			c.Insert(k, k)
		}
	}
	fill()
	buf := make([]Entry[uint64], 0, 4096)
	buf = c.DrainInto(buf[:0])
	if len(buf) != 100 {
		t.Fatalf("drained %d entries, want 100", len(buf))
	}
	fill()
	// One warm cycle so the chain's internal scratch reaches steady
	// state, then measure. DrainInto itself rebuilds the chain's base
	// table (one fixed set of table allocations), so measure only the
	// entry-buffer behaviour: buf must not grow.
	buf = c.DrainInto(buf[:0])
	if cap(buf) < 100 || len(buf) != 100 {
		t.Fatalf("drain cycle: len %d cap %d", len(buf), cap(buf))
	}
}
