// Package cuckoo implements the cuckoo-hash building blocks of
// CuckooGraph: a d-cell-per-bucket cuckoo table with the paper's 2:1
// bucket-array ratio (§V-A), and the TRANSFORMATION chain that grows and
// shrinks a sequence of such tables by the Table II rule (§III-A1).
//
// The table is generic over its payload so the same machinery backs both
// the L-CHT (payload: a cell's Part 2) and the S-CHTs (payload: a weight
// or edge list).
//
// # Probe path
//
// Every operation hashes its key ONCE with hashutil.Key64 into a 64-bit
// value h; a whole chain probes all of its tables with that same h, each
// table deriving its two bucket indexes by remixing h with its private
// seed (see remix). Alongside the keys, each cell carries a one-byte
// fingerprint tag derived from h (tagOf; 0 marks an empty cell), and a
// bucket's d tags are packed into word(s) stored IMMEDIATELY BEFORE the
// bucket's keys in one flat array — so a probe loads the tag word,
// rejects all non-matching cells with a broadcast-XOR SWAR scan, and
// the key it then has to verify sits in the adjacent cache line the
// hardware prefetcher has already pulled in. Tag equality is only a
// pre-filter — the full 8-byte key compare still decides every match,
// so a tag collision costs one extra compare and can never produce a
// wrong result. Tags travel with their cells through kick loops, so
// relocations never recompute them.
package cuckoo

import (
	"math/bits"

	"cuckoograph/internal/hashutil"
)

// Config carries the tuning parameters shared by every table in a chain.
// Zero fields are replaced by the paper's defaults (§V-B).
type Config struct {
	D        int     // cells per bucket (paper default 8)
	MaxKicks int     // T, maximum kick loops before an insertion fails (250)
	G        float64 // loading-rate threshold that triggers expansion (0.9)
	Lambda   float64 // overall loading rate that triggers contraction (0.5)
	R        int     // maximum tables in a chain / large slots per cell (3)
	Seed     uint64  // PRNG seed for hash seeds and random evictions
}

// Defaults returns cfg with zero fields replaced by the paper defaults.
func (cfg Config) Defaults() Config {
	if cfg.D == 0 {
		cfg.D = 8
	}
	if cfg.MaxKicks == 0 {
		cfg.MaxKicks = 250
	}
	if cfg.G == 0 {
		cfg.G = 0.9
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.5
	}
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9E3779B97F4A7C15
	}
	return cfg
}

// Entry is a key/payload pair returned by drain and iteration helpers.
type Entry[P any] struct {
	Key uint64
	Val P
}

// Table is one cuckoo hash table: two bucket arrays with a 2:1 bucket
// count ratio, each bucket holding d cells. The table's "length" in the
// paper's sense is the bucket count of the larger array.
type Table[P any] struct {
	d        int
	maxKicks int

	m1, m2 int // bucket counts of array 1 and array 2 (m1 = 2*m2)

	tw     int // tag words per bucket: ⌈d/8⌉
	stride int // words per bucket: tw + d

	seed uint64 // per-table mix for deriving bucket indexes from Key64

	// cells is the interleaved bucket storage, arrays 1 and 2
	// concatenated: bucket b occupies words [b*stride, (b+1)*stride) —
	// tw fingerprint-tag words (8 one-byte tags per word, 0 = empty
	// cell, unused high lanes of a partial word stay 0) followed by d
	// key words. vals is indexed by flat cell number b*d + c, the cell
	// index every exported method speaks.
	cells []uint64
	vals  []P

	size  int
	rng   *hashutil.RNG
	kicks uint64 // total relocation attempts, for the §IV measurement
}

// NewTable returns a table of the given length (buckets in the larger
// array; minimum 2, rounded up to even so m2 = length/2 ≥ 1).
func NewTable[P any](length int, cfg Config) *Table[P] {
	cfg = cfg.Defaults()
	if length < 2 {
		length = 2
	}
	if length%2 != 0 {
		length++
	}
	rng := hashutil.NewRNG(cfg.Seed)
	t := &Table[P]{
		d:        cfg.D,
		maxKicks: cfg.MaxKicks,
		m1:       length,
		m2:       length / 2,
		tw:       (cfg.D + 7) / 8,
		seed:     rng.Next(),
		rng:      rng,
	}
	t.stride = t.tw + t.d
	buckets := t.m1 + t.m2
	t.cells = make([]uint64, buckets*t.stride)
	t.vals = make([]P, buckets*t.d)
	return t
}

// Len returns the paper's table length (buckets in the larger array).
func (t *Table[P]) Len() int { return t.m1 }

// Cells returns the total number of cells.
func (t *Table[P]) Cells() int { return (t.m1 + t.m2) * t.d }

// Size returns the number of occupied cells.
func (t *Table[P]) Size() int { return t.size }

// LoadRate returns size/cells, the LR of §III-A1.
func (t *Table[P]) LoadRate() float64 {
	return float64(t.size) / float64(t.Cells())
}

// Kicks returns the cumulative relocation attempts since creation.
func (t *Table[P]) Kicks() uint64 { return t.kicks }

// SWAR constants: the broadcast and per-lane high-bit masks of 8 byte
// lanes in a tag word.
const (
	tagLSB uint64 = 0x0101010101010101
	tagMSB uint64 = 0x8080808080808080
)

// tagOf derives a cell's fingerprint tag from the key's 64-bit hash.
// Tag zero marks an empty cell, so hash byte 0 is remapped; the tag is
// taken from the top byte of h, which remix scrambles before deriving
// bucket indexes, so tag and bucket stay effectively independent.
func tagOf(h uint64) byte {
	if t := byte(h >> 56); t != 0 {
		return t
	}
	return 0xFF
}

// zeroBytes returns a mask with the high bit set in exactly the bytes
// of x that are zero. This is the exact (Mycroft) form: the per-byte
// add can never carry across lanes, so — unlike the subtract-borrow
// shortcut — a 0x01 byte above a zero byte is not a false positive.
func zeroBytes(x uint64) uint64 {
	return ^(((x & ^tagMSB) + ^tagMSB) | x) & tagMSB
}

// laneMask keeps the low `lanes` byte-lane markers of a zeroBytes mask.
func laneMask(lanes int) uint64 {
	return tagMSB >> (8 * (8 - lanes))
}

// remix folds the per-table seed into the chain-level hash, yielding
// 64 fresh bits per table from one Key64 of the key. Its halves become
// the per-array bucket indexes after multiply-shift range reduction
// (h·m >> 32 — cheaper than a modulo and equally uniform). No
// per-table key re-hash happens anywhere on the probe path.
func (t *Table[P]) remix(h uint64) uint64 {
	x := h ^ t.seed
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// bucketPair derives the key's two candidate buckets (as global bucket
// indexes: array 2 starts at m1) from the remixed hash halves.
func (t *Table[P]) bucketPair(x uint64) (b1, b2 int) {
	b1 = int(uint64(uint32(x)) * uint64(t.m1) >> 32)
	b2 = t.m1 + int(uint64(uint32(x>>32))*uint64(t.m2)>>32)
	return b1, b2
}

// tagAt returns the fingerprint tag of cell c in bucket b.
func (t *Table[P]) tagAt(b, c int) byte {
	return byte(t.cells[b*t.stride+c>>3] >> ((c & 7) * 8))
}

// setTag writes cell c of bucket b's fingerprint tag.
func (t *Table[P]) setTag(b, c int, tag byte) {
	w := &t.cells[b*t.stride+c>>3]
	shift := (c & 7) * 8
	*w = *w&^(0xFF<<shift) | uint64(tag)<<shift
}

// keyRef returns a pointer to the key word of cell c in bucket b.
func (t *Table[P]) keyRef(b, c int) *uint64 {
	return &t.cells[b*t.stride+t.tw+c]
}

// findHashed returns the flat cell index of key (whose chain-level
// hash is h), or -1. Candidate cells are pre-filtered by fingerprint
// tag; the full key compare decides, so a tag collision costs one
// extra load — from the cache line right after the tag word. The d=8
// default is fully unrolled: one tag word, eight adjacent keys, and
// the second bucket is not derived unless the first rejects.
func (t *Table[P]) findHashed(h, key uint64) int {
	pat := uint64(tagOf(h)) * tagLSB
	x := t.remix(h)
	if t.d == 8 {
		b := int(uint64(uint32(x)) * uint64(t.m1) >> 32)
		base := b * 9
		m := zeroBytes(t.cells[base] ^ pat)
		for m != 0 {
			c := bits.TrailingZeros64(m) >> 3
			if t.cells[base+1+c] == key {
				return b*8 + c
			}
			m &= m - 1
		}
		b = t.m1 + int(uint64(uint32(x>>32))*uint64(t.m2)>>32)
		base = b * 9
		m = zeroBytes(t.cells[base] ^ pat)
		for m != 0 {
			c := bits.TrailingZeros64(m) >> 3
			if t.cells[base+1+c] == key {
				return b*8 + c
			}
			m &= m - 1
		}
		return -1
	}
	b1, b2 := t.bucketPair(x)
	if i := t.probeBucket(b1, pat, key); i >= 0 {
		return i
	}
	return t.probeBucket(b2, pat, key)
}

// probeBucket scans one bucket's tag word(s) for pat, verifying
// candidates against the full key; it returns the flat cell index or
// -1. Unused lanes of a partial tag word hold 0 and pat is never 0, so
// they can't match and need no masking here.
func (t *Table[P]) probeBucket(b int, pat, key uint64) int {
	base := b * t.stride
	for w := 0; w < t.tw; w++ {
		m := zeroBytes(t.cells[base+w] ^ pat)
		for m != 0 {
			c := w*8 + bits.TrailingZeros64(m)>>3
			if t.cells[base+t.tw+c] == key {
				return b*t.d + c
			}
			m &= m - 1
		}
	}
	return -1
}

// emptyIn returns the in-bucket cell index of an empty cell in bucket
// b, or -1. Unused lanes of a partial tag word would read as "empty",
// so they are masked off.
func (t *Table[P]) emptyIn(b int) int {
	base := b * t.stride
	for w := 0; w < t.tw; w++ {
		m := zeroBytes(t.cells[base+w])
		if rem := t.d - w*8; rem < 8 {
			m &= laneMask(rem)
		}
		if m != 0 {
			return w*8 + bits.TrailingZeros64(m)>>3
		}
	}
	return -1
}

// find returns the flat cell index of key, or -1, hashing the key.
func (t *Table[P]) find(key uint64) int {
	return t.findHashed(hashutil.Key64(key), key)
}

// Lookup returns the payload stored under key.
func (t *Table[P]) Lookup(key uint64) (P, bool) {
	return t.LookupHashed(hashutil.Key64(key), key)
}

// LookupHashed is Lookup with the key's hash already computed.
func (t *Table[P]) LookupHashed(h, key uint64) (P, bool) {
	if i := t.findHashed(h, key); i >= 0 {
		return t.vals[i], true
	}
	var zero P
	return zero, false
}

// Ref returns a pointer to key's payload so callers can mutate it in
// place (used by the weighted version to bump w without a second probe).
func (t *Table[P]) Ref(key uint64) *P {
	return t.RefHashed(hashutil.Key64(key), key)
}

// RefHashed is Ref with the key's hash already computed.
func (t *Table[P]) RefHashed(h, key uint64) *P {
	if i := t.findHashed(h, key); i >= 0 {
		return &t.vals[i]
	}
	return nil
}

// Contains reports whether key is stored.
func (t *Table[P]) Contains(key uint64) bool { return t.find(key) >= 0 }

// place writes ⟨key,val,tag⟩ into cell c of bucket b.
func (t *Table[P]) place(b, c int, key uint64, val P, tag byte) {
	*t.keyRef(b, c) = key
	t.vals[b*t.d+c] = val
	t.setTag(b, c, tag)
	t.size++
}

// Insert stores ⟨key,val⟩, hashing the key itself. See InsertHashed.
func (t *Table[P]) Insert(key uint64, val P) (leftover Entry[P], ok bool) {
	return t.InsertHashed(hashutil.Key64(key), key, val)
}

// InsertHashed stores ⟨key,val⟩ (h is the key's chain-level hash),
// kicking residents per the cuckoo discipline for at most MaxKicks
// rounds. On success ok is true. On failure ok is false and the
// returned entry is the item left without a home (which, after kicking,
// is generally NOT the argument pair); the caller is expected to park
// it in a denylist (§III-A2). The caller must ensure key is not already
// present. A kicked victim keeps its tag byte — only its buckets are
// re-derived, from one Key64 of the victim key.
func (t *Table[P]) InsertHashed(h, key uint64, val P) (leftover Entry[P], ok bool) {
	curH, curKey, curVal := h, key, val
	curTag := tagOf(h)
	array := 1
	for kick := 0; kick <= t.maxKicks; kick++ {
		// Try both candidate buckets for an empty cell first.
		b1, b2 := t.bucketPair(t.remix(curH))
		if c := t.emptyIn(b1); c >= 0 {
			t.place(b1, c, curKey, curVal, curTag)
			return Entry[P]{}, true
		}
		if c := t.emptyIn(b2); c >= 0 {
			t.place(b2, c, curKey, curVal, curTag)
			return Entry[P]{}, true
		}
		if kick == t.maxKicks {
			break
		}
		// Both buckets full: evict a random resident from the bucket in
		// the current array and continue with the victim in the other.
		b := b1
		if array == 2 {
			b = b2
		}
		c := t.rng.Intn(t.d)
		kr := t.keyRef(b, c)
		*kr, curKey = curKey, *kr
		vr := &t.vals[b*t.d+c]
		*vr, curVal = curVal, *vr
		oldTag := t.tagAt(b, c)
		t.setTag(b, c, curTag)
		curTag = oldTag
		curH = hashutil.Key64(curKey)
		t.kicks++
		array = 3 - array
	}
	return Entry[P]{Key: curKey, Val: curVal}, false
}

// clearCell empties the flat cell index i.
func (t *Table[P]) clearCell(i int) {
	b := i / t.d
	c := i - b*t.d
	var zero P
	*t.keyRef(b, c) = 0
	t.vals[i] = zero
	t.setTag(b, c, 0)
	t.size--
}

// Delete removes key, reporting whether it was present.
func (t *Table[P]) Delete(key uint64) bool {
	return t.DeleteHashed(hashutil.Key64(key), key)
}

// DeleteHashed is Delete with the key's hash already computed.
func (t *Table[P]) DeleteHashed(h, key uint64) bool {
	if i := t.findHashed(h, key); i >= 0 {
		t.clearCell(i)
		return true
	}
	return false
}

// ForEach calls fn for every stored entry until fn returns false.
func (t *Table[P]) ForEach(fn func(key uint64, val P) bool) {
	t.ForEachRef(func(key uint64, val *P) bool { return fn(key, *val) })
}

// occupiedLanes returns the occupied-lane markers (high bit per byte
// lane) of tag word w of the bucket starting at word base: lanes whose
// tag is non-zero, with the unused lanes of a partial word masked off.
// It is THE shared decoder of the iteration paths, so the subtle
// partial-word masking lives in exactly one place.
func (t *Table[P]) occupiedLanes(base, w int) uint64 {
	occ := tagMSB &^ zeroBytes(t.cells[base+w])
	if rem := t.d - w*8; rem < 8 {
		occ &= laneMask(rem)
	}
	return occ
}

// ForEachRef calls fn for every stored entry with a pointer to its
// payload in place — the allocation-free iteration of the read path —
// until fn returns false. It reports whether the scan ran to
// completion (false = fn stopped it). The pointer is valid only during
// the call.
func (t *Table[P]) ForEachRef(fn func(key uint64, val *P) bool) bool {
	buckets := t.m1 + t.m2
	for b := 0; b < buckets; b++ {
		base := b * t.stride
		for w := 0; w < t.tw; w++ {
			occ := t.occupiedLanes(base, w)
			for occ != 0 {
				c := w*8 + bits.TrailingZeros64(occ)>>3
				if !fn(t.cells[base+t.tw+c], &t.vals[b*t.d+c]) {
					return false
				}
				occ &= occ - 1
			}
		}
	}
	return true
}

// Drain removes and returns every stored entry.
func (t *Table[P]) Drain() []Entry[P] {
	return t.DrainInto(make([]Entry[P], 0, t.size))
}

// DrainInto removes every stored entry, appending them to buf —
// letting transformation loops reuse one scratch buffer instead of
// allocating a fresh slice per restructure.
func (t *Table[P]) DrainInto(buf []Entry[P]) []Entry[P] {
	buckets := t.m1 + t.m2
	for b := 0; b < buckets; b++ {
		base := b * t.stride
		for w := 0; w < t.tw; w++ {
			occ := t.occupiedLanes(base, w)
			for occ != 0 {
				c := w*8 + bits.TrailingZeros64(occ)>>3
				buf = append(buf, Entry[P]{Key: t.cells[base+t.tw+c], Val: t.vals[b*t.d+c]})
				occ &= occ - 1
			}
		}
	}
	clear(t.cells)
	clear(t.vals)
	t.size = 0
	return buf
}

// MemoryBytes returns the structural bytes of the table assuming
// payloadBytes per payload: 8 B key + payload + 1 B fingerprint tag per
// cell, plus the fixed header words. The tag byte replaces the retired
// 1 B/cell occupancy flag — tags mark occupancy (0 = empty) AND
// pre-filter probes, so the layout change is space-neutral. (For d not
// a multiple of 8 the physical tag word carries unused padding lanes;
// the model counts the information content, 1 B per cell, matching the
// paper's cell-layout accounting.)
func (t *Table[P]) MemoryBytes(payloadBytes int) uint64 {
	perCell := uint64(8 + payloadBytes + 1)
	return uint64(t.Cells())*perCell + 64
}
