// Package cuckoo implements the cuckoo-hash building blocks of
// CuckooGraph: a d-cell-per-bucket cuckoo table with the paper's 2:1
// bucket-array ratio (§V-A), and the TRANSFORMATION chain that grows and
// shrinks a sequence of such tables by the Table II rule (§III-A1).
//
// The table is generic over its payload so the same machinery backs both
// the L-CHT (payload: a cell's Part 2) and the S-CHTs (payload: a weight
// or edge list).
package cuckoo

import "cuckoograph/internal/hashutil"

// Config carries the tuning parameters shared by every table in a chain.
// Zero fields are replaced by the paper's defaults (§V-B).
type Config struct {
	D        int     // cells per bucket (paper default 8)
	MaxKicks int     // T, maximum kick loops before an insertion fails (250)
	G        float64 // loading-rate threshold that triggers expansion (0.9)
	Lambda   float64 // overall loading rate that triggers contraction (0.5)
	R        int     // maximum tables in a chain / large slots per cell (3)
	Seed     uint64  // PRNG seed for hash seeds and random evictions
}

// Defaults returns cfg with zero fields replaced by the paper defaults.
func (cfg Config) Defaults() Config {
	if cfg.D == 0 {
		cfg.D = 8
	}
	if cfg.MaxKicks == 0 {
		cfg.MaxKicks = 250
	}
	if cfg.G == 0 {
		cfg.G = 0.9
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.5
	}
	if cfg.R == 0 {
		cfg.R = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9E3779B97F4A7C15
	}
	return cfg
}

// Entry is a key/payload pair returned by drain and iteration helpers.
type Entry[P any] struct {
	Key uint64
	Val P
}

// Table is one cuckoo hash table: two bucket arrays with a 2:1 bucket
// count ratio, each bucket holding d cells. The table's "length" in the
// paper's sense is the bucket count of the larger array.
type Table[P any] struct {
	d        int
	maxKicks int

	m1, m2 int // bucket counts of array 1 and array 2 (m1 = 2*m2)

	seed1, seed2 uint32

	// Flat cell storage: arrays 1 and 2 concatenated. Cell c of bucket b
	// in array 1 lives at b*d+c; array 2 starts at m1*d.
	keys []uint64
	vals []P
	occ  []bool

	size  int
	rng   *hashutil.RNG
	kicks uint64 // total relocation attempts, for the §IV measurement
}

// NewTable returns a table of the given length (buckets in the larger
// array; minimum 2, rounded up to even so m2 = length/2 ≥ 1).
func NewTable[P any](length int, cfg Config) *Table[P] {
	cfg = cfg.Defaults()
	if length < 2 {
		length = 2
	}
	if length%2 != 0 {
		length++
	}
	rng := hashutil.NewRNG(cfg.Seed)
	t := &Table[P]{
		d:        cfg.D,
		maxKicks: cfg.MaxKicks,
		m1:       length,
		m2:       length / 2,
		seed1:    rng.Uint32() | 1,
		seed2:    rng.Uint32() | 1,
		rng:      rng,
	}
	cells := (t.m1 + t.m2) * t.d
	t.keys = make([]uint64, cells)
	t.vals = make([]P, cells)
	t.occ = make([]bool, cells)
	return t
}

// Len returns the paper's table length (buckets in the larger array).
func (t *Table[P]) Len() int { return t.m1 }

// Cells returns the total number of cells.
func (t *Table[P]) Cells() int { return (t.m1 + t.m2) * t.d }

// Size returns the number of occupied cells.
func (t *Table[P]) Size() int { return t.size }

// LoadRate returns size/cells, the LR of §III-A1.
func (t *Table[P]) LoadRate() float64 {
	return float64(t.size) / float64(t.Cells())
}

// Kicks returns the cumulative relocation attempts since creation.
func (t *Table[P]) Kicks() uint64 { return t.kicks }

// bucketRange returns the [start,end) cell indexes of key's candidate
// bucket in the given array (1 or 2). Bucket selection uses the
// multiply-shift range reduction (h·m >> 32), cheaper than a modulo on
// the hot path and equally uniform for a 32-bit hash.
func (t *Table[P]) bucketRange(key uint64, array int) (int, int) {
	if array == 1 {
		b := int(uint64(hashutil.Hash64(key, t.seed1)) * uint64(t.m1) >> 32)
		start := b * t.d
		return start, start + t.d
	}
	b := int(uint64(hashutil.Hash64(key, t.seed2)) * uint64(t.m2) >> 32)
	start := t.m1*t.d + b*t.d
	return start, start + t.d
}

// find returns the cell index of key, or -1.
func (t *Table[P]) find(key uint64) int {
	for array := 1; array <= 2; array++ {
		start, end := t.bucketRange(key, array)
		keys := t.keys[start:end]
		occ := t.occ[start:end]
		for i := range keys {
			if keys[i] == key && occ[i] {
				return start + i
			}
		}
	}
	return -1
}

// Lookup returns the payload stored under key.
func (t *Table[P]) Lookup(key uint64) (P, bool) {
	if i := t.find(key); i >= 0 {
		return t.vals[i], true
	}
	var zero P
	return zero, false
}

// Ref returns a pointer to key's payload so callers can mutate it in
// place (used by the weighted version to bump w without a second probe).
func (t *Table[P]) Ref(key uint64) *P {
	if i := t.find(key); i >= 0 {
		return &t.vals[i]
	}
	return nil
}

// Contains reports whether key is stored.
func (t *Table[P]) Contains(key uint64) bool { return t.find(key) >= 0 }

// Insert stores ⟨key,val⟩, kicking residents per the cuckoo discipline
// for at most MaxKicks rounds. On success ok is true. On failure ok is
// false and the returned entry is the item left without a home (which,
// after kicking, is generally NOT the argument pair); the caller is
// expected to park it in a denylist (§III-A2). The caller must ensure
// key is not already present.
func (t *Table[P]) Insert(key uint64, val P) (leftover Entry[P], ok bool) {
	curKey, curVal := key, val
	array := 1
	for kick := 0; kick <= t.maxKicks; kick++ {
		// Try both candidate buckets for an empty cell first.
		for a := 1; a <= 2; a++ {
			start, end := t.bucketRange(curKey, a)
			for i := start; i < end; i++ {
				if !t.occ[i] {
					t.keys[i], t.vals[i], t.occ[i] = curKey, curVal, true
					t.size++
					return Entry[P]{}, true
				}
			}
		}
		if kick == t.maxKicks {
			break
		}
		// Both buckets full: evict a random resident from the bucket in
		// the current array and continue with the victim in the other.
		start, end := t.bucketRange(curKey, array)
		victim := start + t.rng.Intn(end-start)
		t.keys[victim], curKey = curKey, t.keys[victim]
		t.vals[victim], curVal = curVal, t.vals[victim]
		t.kicks++
		array = 3 - array
	}
	return Entry[P]{Key: curKey, Val: curVal}, false
}

// Delete removes key, reporting whether it was present.
func (t *Table[P]) Delete(key uint64) bool {
	if i := t.find(key); i >= 0 {
		var zero P
		t.keys[i], t.vals[i], t.occ[i] = 0, zero, false
		t.size--
		return true
	}
	return false
}

// ForEach calls fn for every stored entry until fn returns false.
func (t *Table[P]) ForEach(fn func(key uint64, val P) bool) {
	for i, o := range t.occ {
		if o && !fn(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// Drain removes and returns every stored entry.
func (t *Table[P]) Drain() []Entry[P] {
	out := make([]Entry[P], 0, t.size)
	for i, o := range t.occ {
		if o {
			out = append(out, Entry[P]{Key: t.keys[i], Val: t.vals[i]})
			var zero P
			t.keys[i], t.vals[i], t.occ[i] = 0, zero, false
		}
	}
	t.size = 0
	return out
}

// MemoryBytes returns the structural bytes of the table assuming
// payloadBytes per payload: 8 B key + payload + 1 B occupancy per cell,
// plus the fixed header words.
func (t *Table[P]) MemoryBytes(payloadBytes int) uint64 {
	perCell := uint64(8 + payloadBytes + 1)
	return uint64(t.Cells())*perCell + 64
}
