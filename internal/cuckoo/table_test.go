package cuckoo

import (
	"testing"
	"testing/quick"

	"cuckoograph/internal/hashutil"
)

func TestTableInsertLookup(t *testing.T) {
	tb := NewTable[uint64](64, Config{})
	for i := uint64(1); i <= 100; i++ {
		if _, ok := tb.Insert(i, i*10); !ok {
			t.Fatalf("insert %d failed", i)
		}
	}
	if tb.Size() != 100 {
		t.Fatalf("size = %d, want 100", tb.Size())
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := tb.Lookup(i)
		if !ok || v != i*10 {
			t.Fatalf("lookup %d = %d,%v; want %d,true", i, v, ok, i*10)
		}
	}
	if tb.Contains(1000) {
		t.Fatal("Contains(1000) = true for absent key")
	}
}

func TestTableZeroKey(t *testing.T) {
	// Node id 0 must be a legal key; occupancy is tracked separately.
	tb := NewTable[uint64](8, Config{})
	if _, ok := tb.Insert(0, 42); !ok {
		t.Fatal("insert key 0 failed")
	}
	v, ok := tb.Lookup(0)
	if !ok || v != 42 {
		t.Fatalf("lookup 0 = %d,%v; want 42,true", v, ok)
	}
	if !tb.Delete(0) {
		t.Fatal("delete key 0 failed")
	}
	if tb.Contains(0) {
		t.Fatal("key 0 still present after delete")
	}
}

func TestTableDelete(t *testing.T) {
	tb := NewTable[int](32, Config{})
	for i := uint64(1); i <= 50; i++ {
		tb.Insert(i, int(i))
	}
	for i := uint64(1); i <= 50; i += 2 {
		if !tb.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tb.Size() != 25 {
		t.Fatalf("size = %d, want 25", tb.Size())
	}
	for i := uint64(1); i <= 50; i++ {
		want := i%2 == 0
		if got := tb.Contains(i); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
	if tb.Delete(999) {
		t.Fatal("delete of absent key reported true")
	}
}

func TestTableRef(t *testing.T) {
	tb := NewTable[uint64](8, Config{})
	tb.Insert(7, 1)
	p := tb.Ref(7)
	if p == nil {
		t.Fatal("Ref(7) = nil")
	}
	*p = 99
	if v, _ := tb.Lookup(7); v != 99 {
		t.Fatalf("after Ref mutation, lookup = %d, want 99", v)
	}
	if tb.Ref(8) != nil {
		t.Fatal("Ref of absent key not nil")
	}
}

func TestTableKicksAndFailure(t *testing.T) {
	// A tiny table with a tiny kick budget must eventually fail and hand
	// back a leftover entry rather than loop forever or drop data.
	tb := NewTable[uint64](2, Config{D: 1, MaxKicks: 4})
	inserted := map[uint64]uint64{}
	var leftovers []Entry[uint64]
	for i := uint64(1); i <= 50; i++ {
		if lo, ok := tb.Insert(i, i); ok {
			inserted[i] = i
		} else {
			leftovers = append(leftovers, lo)
			delete(inserted, lo.Key) // leftover may be a kicked resident
			if lo.Key != i {
				inserted[i] = i // the new item settled; a resident lost
			}
		}
	}
	if len(leftovers) == 0 {
		t.Fatal("expected at least one insertion failure in a 3-cell table")
	}
	// Conservation: every key is either in the table or was reported.
	total := tb.Size() + len(leftovers)
	if total != 50 {
		t.Fatalf("size %d + leftovers %d = %d, want 50", tb.Size(), len(leftovers), total)
	}
	for k := range inserted {
		if !tb.Contains(k) {
			t.Fatalf("tracked key %d missing from table", k)
		}
	}
}

func TestTableLoadRateReaches(t *testing.T) {
	// With d=8 and the 2:1 ratio, a cuckoo table should comfortably reach
	// a 90% load rate (the paper sets G=0.9).
	tb := NewTable[struct{}](128, Config{})
	target := int(float64(tb.Cells()) * 0.9)
	for i := 0; i < target; i++ {
		if _, ok := tb.Insert(uint64(i+1), struct{}{}); !ok {
			t.Fatalf("insert failed at %d/%d (LR %.3f)", i, target, tb.LoadRate())
		}
	}
	if lr := tb.LoadRate(); lr < 0.89 {
		t.Fatalf("load rate %.3f, want ≥ 0.9", lr)
	}
}

func TestTableForEachDrain(t *testing.T) {
	tb := NewTable[uint64](16, Config{})
	want := map[uint64]uint64{}
	for i := uint64(1); i <= 30; i++ {
		tb.Insert(i, i*i)
		want[i] = i * i
	}
	got := map[uint64]uint64{}
	tb.ForEach(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach got[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	tb.ForEach(func(uint64, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("ForEach early stop visited %d, want 5", n)
	}
	drained := tb.Drain()
	if len(drained) != 30 || tb.Size() != 0 {
		t.Fatalf("Drain returned %d entries, size now %d", len(drained), tb.Size())
	}
}

func TestTableMinimumLength(t *testing.T) {
	tb := NewTable[uint64](0, Config{})
	if tb.Len() < 2 || tb.Len()%2 != 0 {
		t.Fatalf("length %d, want even ≥ 2", tb.Len())
	}
	tb3 := NewTable[uint64](3, Config{})
	if tb3.Len()%2 != 0 {
		t.Fatalf("odd requested length not rounded: %d", tb3.Len())
	}
}

func TestTableMemoryBytes(t *testing.T) {
	tb := NewTable[uint64](16, Config{D: 4})
	// 16 + 8 buckets, 4 cells each, 8 key + 8 payload + 1 occ per cell.
	want := uint64((16+8)*4)*(8+8+1) + 64
	if got := tb.MemoryBytes(8); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

// TestTableQuickSetSemantics drives the table against a map model with
// random operations.
func TestTableQuickSetSemantics(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		tb := NewTable[uint64](256, Config{Seed: seed | 1})
		model := map[uint64]uint64{}
		rng := hashutil.NewRNG(seed | 1)
		for _, op := range ops {
			key := uint64(op%97) + 1
			switch rng.Intn(3) {
			case 0:
				if _, dup := model[key]; !dup {
					if _, ok := tb.Insert(key, key*3); ok {
						model[key] = key * 3
					}
				}
			case 1:
				if tb.Delete(key) != (model[key] != 0) {
					return false
				}
				delete(model, key)
			default:
				v, ok := tb.Lookup(key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
		}
		return tb.Size() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
