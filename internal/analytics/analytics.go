// Package analytics implements the seven graph analytics tasks of the
// paper's §V-E — Breadth-First Search, Single-Source Shortest Paths
// (Dijkstra), Triangle Counting, Connected Components (Tarjan),
// PageRank, Betweenness Centrality (Brandes) and Local Clustering
// Coefficient — against any graphstore.Store, so every storage scheme
// runs the identical algorithm and only the store's successor/edge
// query speed differs, exactly as in the paper's methodology.
package analytics

import (
	"container/heap"
	"sort"

	"cuckoograph/internal/graphstore"
)

// BFS traverses from root, returning the visited nodes in traversal
// order (§V-E1: "returning each node and the number of nodes obtained in
// the order of BFS traversal").
func BFS(s graphstore.Store, root uint64) []uint64 {
	if idx := indexOf(s); idx != nil {
		return bfsFlat(idx, root)
	}
	visited := map[uint64]bool{root: true}
	order := []uint64{root}
	for head := 0; head < len(order); head++ {
		s.ForEachSuccessor(order[head], func(v uint64) bool {
			if !visited[v] {
				visited[v] = true
				order = append(order, v)
			}
			return true
		})
	}
	return order
}

// distItem is a priority-queue element for Dijkstra.
type distItem struct {
	node uint64
	dist uint64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// Dijkstra computes shortest-path distances from src with unit edge
// weights (§V-E2 runs Dijkstra from the 10 highest-degree nodes). The
// returned map holds every reachable node.
func Dijkstra(s graphstore.Store, src uint64) map[uint64]uint64 {
	if idx := indexOf(s); idx != nil {
		return dijkstraFlat(idx, src)
	}
	dist := map[uint64]uint64{src: 0}
	h := &distHeap{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if d, ok := dist[it.node]; ok && it.dist > d {
			continue
		}
		s.ForEachSuccessor(it.node, func(v uint64) bool {
			nd := it.dist + 1
			if d, ok := dist[v]; !ok || nd < d {
				dist[v] = nd
				heap.Push(h, distItem{node: v, dist: nd})
			}
			return true
		})
	}
	return dist
}

// TriangleCount returns the number of triangles containing node, using
// the paper's method (§V-E3): enumerate 2-hop successors, then probe the
// closing edge ⟨2-hop successor, node⟩ with edge queries.
func TriangleCount(s graphstore.Store, node uint64) int {
	if idx := indexOf(s); idx != nil {
		return tcFlat(idx, node)
	}
	count := 0
	s.ForEachSuccessor(node, func(mid uint64) bool {
		s.ForEachSuccessor(mid, func(far uint64) bool {
			if s.HasEdge(far, node) {
				count++
			}
			return true
		})
		return true
	})
	return count
}

// NodeLister yields the node set of a store; every store in this
// repository implements it.
type NodeLister interface {
	ForEachNode(fn func(u uint64) bool)
}

// Nodes collects the distinct source nodes of a store.
func Nodes(s graphstore.Store) []uint64 {
	var out []uint64
	if nl, ok := s.(NodeLister); ok {
		nl.ForEachNode(func(u uint64) bool {
			out = append(out, u)
			return true
		})
	}
	return out
}

// ConnectedComponents runs Tarjan's strongly-connected-components
// algorithm (iterative, to survive deep graphs) over the nodes of s and
// returns the component id of every visited node plus the component
// count (§V-E4 runs "the Tarjan algorithm ... returning the connected
// components and their number").
func ConnectedComponents(s graphstore.Store) (map[uint64]int, int) {
	if idx := indexOf(s); idx != nil {
		return ccFlat(idx)
	}
	index := map[uint64]int{}
	low := map[uint64]int{}
	onStack := map[uint64]bool{}
	comp := map[uint64]int{}
	var stack []uint64
	next, comps := 0, 0

	type frame struct {
		node uint64
		succ []uint64
		i    int
	}
	for _, root := range Nodes(s) {
		if _, seen := index[root]; seen {
			continue
		}
		var call []frame
		push := func(u uint64) {
			index[u] = next
			low[u] = next
			next++
			stack = append(stack, u)
			onStack[u] = true
			call = append(call, frame{node: u, succ: graphstore.Successors(s, u)})
		}
		push(root)
		for len(call) > 0 {
			f := &call[len(call)-1]
			advanced := false
			for f.i < len(f.succ) {
				v := f.succ[f.i]
				f.i++
				if _, seen := index[v]; !seen {
					push(v)
					advanced = true
					break
				}
				if onStack[v] && index[v] < low[f.node] {
					low[f.node] = index[v]
				}
			}
			if advanced {
				continue
			}
			// f is complete: pop an SCC if it is a root.
			if low[f.node] == index[f.node] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = comps
					if w == f.node {
						break
					}
				}
				comps++
			}
			done := *f
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := &call[len(call)-1]
				if low[done.node] < low[parent.node] {
					low[parent.node] = low[done.node]
				}
			}
		}
	}
	return comp, comps
}

// PageRank iterates the power method for iters rounds with damping 0.85
// (§V-E5 iterates 100 times on the subgraph matrix).
func PageRank(s graphstore.Store, iters int) map[uint64]float64 {
	if idx := indexOf(s); idx != nil {
		return pageRankFlat(idx, iters)
	}
	nodes := Nodes(s)
	if len(nodes) == 0 {
		return nil
	}
	const damping = 0.85
	n := float64(len(nodes))
	rank := make(map[uint64]float64, len(nodes))
	deg := make(map[uint64]int, len(nodes))
	for _, u := range nodes {
		rank[u] = 1 / n
		deg[u] = graphstore.Degree(s, u)
	}
	for it := 0; it < iters; it++ {
		next := make(map[uint64]float64, len(rank))
		leak := 0.0
		for _, u := range nodes {
			if deg[u] == 0 {
				leak += rank[u]
				continue
			}
			share := rank[u] / float64(deg[u])
			s.ForEachSuccessor(u, func(v uint64) bool {
				next[v] += share
				return true
			})
		}
		for _, u := range nodes {
			rank[u] = (1-damping)/n + damping*(next[u]+leak/n)
		}
	}
	return rank
}

// Betweenness runs Brandes' algorithm (§V-E6) and returns the
// betweenness centrality of every node.
func Betweenness(s graphstore.Store) map[uint64]float64 {
	if idx := indexOf(s); idx != nil {
		return betweennessFlat(idx)
	}
	nodes := Nodes(s)
	bc := make(map[uint64]float64, len(nodes))
	for _, src := range nodes {
		// Single-source shortest-path DAG by BFS.
		var order []uint64
		pred := map[uint64][]uint64{}
		sigma := map[uint64]float64{src: 1}
		dist := map[uint64]int{src: 0}
		queue := []uint64{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			s.ForEachSuccessor(u, func(v uint64) bool {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					pred[v] = append(pred[v], u)
				}
				return true
			})
		}
		delta := map[uint64]float64{}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range pred[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// LocalClustering pre-computes all neighbours of every node (the
// methodology of §V-E7) and returns the local clustering coefficient of
// each: the fraction of neighbour pairs that are themselves connected.
func LocalClustering(s graphstore.Store) map[uint64]float64 {
	if idx := indexOf(s); idx != nil {
		return localClusteringFlat(idx)
	}
	nodes := Nodes(s)
	adj := make(map[uint64][]uint64, len(nodes))
	for _, u := range nodes {
		adj[u] = graphstore.Successors(s, u)
	}
	lcc := make(map[uint64]float64, len(nodes))
	for _, u := range nodes {
		neigh := adj[u]
		k := len(neigh)
		if k < 2 {
			lcc[u] = 0
			continue
		}
		links := 0
		for _, a := range neigh {
			for _, b := range neigh {
				if a != b && s.HasEdge(a, b) {
					links++
				}
			}
		}
		lcc[u] = float64(links) / float64(k*(k-1))
	}
	return lcc
}

// TopDegreeNodes returns the count highest-total-degree nodes (total =
// out-degree + in-degree), the node-selection rule used throughout §V-E.
// The out-degree side comes from the store's counter-backed Degree when
// it has one (graphstore.Degreer); only the in-degree accumulation still
// scans the adjacency.
func TopDegreeNodes(s graphstore.Store, count int) []uint64 {
	if idx := indexOf(s); idx != nil {
		return topDegreeFlat(idx, count)
	}
	nodes := Nodes(s)
	total := make(map[uint64]int, len(nodes))
	for _, u := range nodes {
		if d := graphstore.Degree(s, u); d > 0 {
			total[u] += d
		}
		s.ForEachSuccessor(u, func(v uint64) bool {
			total[v]++
			return true
		})
	}
	all := make([]uint64, 0, len(total))
	for u := range total {
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool {
		if total[all[i]] != total[all[j]] {
			return total[all[i]] > total[all[j]]
		}
		return all[i] < all[j]
	})
	if count > len(all) {
		count = len(all)
	}
	return all[:count]
}

// ExtractSubgraph copies the edges among the given nodes into dst — the
// subgraph-extraction step of §V-E4..E7.
func ExtractSubgraph(src graphstore.Store, nodes []uint64, dst graphstore.Store) {
	keep := make(map[uint64]bool, len(nodes))
	for _, u := range nodes {
		keep[u] = true
	}
	for _, u := range nodes {
		src.ForEachSuccessor(u, func(v uint64) bool {
			if keep[v] {
				dst.InsertEdge(u, v)
			}
			return true
		})
	}
}
