package analytics

import (
	"math"
	"sort"
	"testing"

	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/stores"
)

// The §V-E algorithms are exercised by the main suite on healthy
// graphs; these tests pin the degenerate shapes — empty store, a single
// node, fully disconnected components, self-loops — where off-by-ones
// in frontier handling, pair enumeration and the Brandes accumulation
// would hide.

func TestAnalyticsOnEmptyStore(t *testing.T) {
	s := stores.NewCuckooGraph()
	if bc := Betweenness(s); len(bc) != 0 {
		t.Fatalf("Betweenness on empty store returned %d entries", len(bc))
	}
	if lcc := LocalClustering(s); len(lcc) != 0 {
		t.Fatalf("LocalClustering on empty store returned %d entries", len(lcc))
	}
	if n := TriangleCount(s, 1); n != 0 {
		t.Fatalf("TriangleCount on empty store = %d", n)
	}
	if comp, n := ConnectedComponents(s); n != 0 || len(comp) != 0 {
		t.Fatalf("ConnectedComponents on empty store = %d comps, %d nodes", n, len(comp))
	}
	if pr := PageRank(s, 5); pr != nil {
		t.Fatalf("PageRank on empty store = %v, want nil", pr)
	}
	if order := BFS(s, 42); len(order) != 1 || order[0] != 42 {
		t.Fatalf("BFS root on empty store = %v, want [42]", order)
	}
	if d := Dijkstra(s, 42); len(d) != 1 || d[42] != 0 {
		t.Fatalf("Dijkstra on empty store = %v", d)
	}
	if top := TopDegreeNodes(s, 3); len(top) != 0 {
		t.Fatalf("TopDegreeNodes on empty store = %v", top)
	}
}

func TestAnalyticsOnSingleNodeSelfLoop(t *testing.T) {
	s := stores.NewCuckooGraph()
	s.InsertEdge(1, 1)

	// The paper's triangle probe (2-hop then closing-edge query) counts
	// the self-loop walk 1→1→1 with closing edge ⟨1,1⟩.
	if n := TriangleCount(s, 1); n != 1 {
		t.Fatalf("TriangleCount(self-loop) = %d, want 1", n)
	}
	// One neighbour (itself): fewer than 2 neighbours ⇒ coefficient 0.
	lcc := LocalClustering(s)
	if lcc[1] != 0 {
		t.Fatalf("LocalClustering(self-loop) = %v, want 0", lcc[1])
	}
	// A self-loop puts no node on any shortest path between others.
	if bc := Betweenness(s); bc[1] != 0 {
		t.Fatalf("Betweenness(self-loop) = %v, want 0", bc[1])
	}
	if comp, n := ConnectedComponents(s); n != 1 || len(comp) != 1 {
		t.Fatalf("ConnectedComponents(self-loop) = %d comps over %d nodes, want 1/1", n, len(comp))
	}
	pr := PageRank(s, 10)
	if len(pr) != 1 || math.Abs(pr[1]-1) > 1e-9 {
		t.Fatalf("PageRank(self-loop) = %v, want {1: 1}", pr)
	}
	if order := BFS(s, 1); len(order) != 1 {
		t.Fatalf("BFS(self-loop) visited %v, want just the root once", order)
	}
}

func TestAnalyticsOnFullyDisconnectedGraph(t *testing.T) {
	// Three components with no edges between them: 1→2, 3→4, and the
	// isolated self-loop 9→9.
	s := stores.NewCuckooGraph()
	s.InsertEdge(1, 2)
	s.InsertEdge(3, 4)
	s.InsertEdge(9, 9)

	if order := BFS(s, 1); len(order) != 2 {
		t.Fatalf("BFS stayed in its component? visited %v", order)
	}
	comp, n := ConnectedComponents(s)
	// Every node is its own SCC: 1,2,3,4,9 with no cycles beyond the
	// self-loop, which still forms a singleton component.
	if n != 5 {
		t.Fatalf("ConnectedComponents = %d comps, want 5 singletons", n)
	}
	if comp[1] == comp[3] || comp[1] == comp[9] || comp[3] == comp[9] {
		t.Fatalf("disconnected sources share a component id: %v", comp)
	}
	// No node lies between any other pair, so betweenness is all zero.
	for u, b := range Betweenness(s) {
		if b != 0 {
			t.Fatalf("Betweenness[%d] = %v on a graph with no 2-hop paths", u, b)
		}
	}
	// Clustering: every node has < 2 neighbours.
	for u, c := range LocalClustering(s) {
		if c != 0 {
			t.Fatalf("LocalClustering[%d] = %v, want 0", u, c)
		}
	}
	// PageRank mass is conserved across disconnected components when
	// every node is a source (the store enumerates source nodes only, so
	// pure sinks fall outside the rank vector by design — use cycles).
	cyc := stores.NewCuckooGraph()
	for _, e := range [][2]uint64{{1, 2}, {2, 1}, {3, 4}, {4, 3}, {9, 9}} {
		cyc.InsertEdge(e[0], e[1])
	}
	mass := 0.0
	for _, r := range PageRank(cyc, 20) {
		mass += r
	}
	if math.Abs(mass-1) > 1e-6 {
		t.Fatalf("PageRank mass over disconnected cycles = %v, want ≈1", mass)
	}
}

func TestSelfLoopsThroughTriangleAndClustering(t *testing.T) {
	// 1⟲, 1↔2: the self-loop participates in 2-hop walks and in the
	// neighbour-pair enumeration.
	s := stores.NewCuckooGraph()
	s.InsertEdge(1, 1)
	s.InsertEdge(1, 2)
	s.InsertEdge(2, 1)

	// Walks from 1: 1→1→1 (close 1,1 ✓), 1→1→2 (close 2,1 ✓),
	// 1→2→1 (close 1,1 ✓) — three closed 2-hop walks.
	if n := TriangleCount(s, 1); n != 3 {
		t.Fatalf("TriangleCount = %d, want 3", n)
	}
	lcc := LocalClustering(s)
	// Node 1's neighbours are {1,2}; ordered pairs (1,2) and (2,1) are
	// both edges ⇒ 2 links / (2·1) = 1.
	if math.Abs(lcc[1]-1) > 1e-9 {
		t.Fatalf("LocalClustering[1] = %v, want 1", lcc[1])
	}
	if lcc[2] != 0 {
		t.Fatalf("LocalClustering[2] = %v, want 0 (single neighbour)", lcc[2])
	}
	bc := Betweenness(s)
	// With only two real nodes there is no third node to sit between.
	if bc[1] != 0 || bc[2] != 0 {
		t.Fatalf("Betweenness = %v, want all zero", bc)
	}
	// The 1↔2 cycle is one SCC; self-loop does not split it.
	if _, n := ConnectedComponents(s); n != 1 {
		t.Fatalf("ConnectedComponents = %d comps, want 1", n)
	}
}

// TestAnalyticsOnFrozenView runs the suite against a sharded snapshot
// while the live graph is mutated out from under it: the frozen view is
// a graphstore.Store, and results must reflect the epoch state.
func TestAnalyticsOnFrozenView(t *testing.T) {
	g := sharded.New(sharded.Config{Shards: 4})
	// Path 1→2→3→4 plus a triangle 10,11,12.
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {3, 4}, {10, 11}, {11, 12}, {12, 10}} {
		g.InsertEdge(e[0], e[1])
	}
	var snap graphstore.Snapshotter = g
	v := snap.SnapshotView()
	defer v.Release()

	// Shred the live graph.
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {3, 4}, {10, 11}} {
		g.DeleteEdge(e[0], e[1])
	}
	for u := uint64(50); u < 80; u++ {
		g.InsertEdge(u, u+1)
	}

	if order := BFS(v, 1); len(order) != 4 {
		t.Fatalf("BFS on frozen view reached %v, want the 4-node path", order)
	}
	comp, n := ConnectedComponents(v)
	if n != 5 { // 1,2,3,4 singletons + the 10-11-12 cycle
		t.Fatalf("ConnectedComponents on view = %d comps, want 5", n)
	}
	if comp[10] != comp[11] || comp[11] != comp[12] {
		t.Fatalf("triangle split across components on frozen view: %v", comp)
	}
	bc := Betweenness(v)
	// On the path 1→2→3→4, node 2 lies on 1→3 and 1→4, node 3 on
	// 1→4 and 2→4: betweenness 2 each.
	if bc[2] != 2 || bc[3] != 2 {
		t.Fatalf("Betweenness on view: bc[2]=%v bc[3]=%v, want 2/2", bc[2], bc[3])
	}
	nodes := Nodes(v)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	want := []uint64{1, 2, 3, 10, 11, 12}
	if len(nodes) != len(want) {
		t.Fatalf("frozen view nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("frozen view nodes = %v, want %v", nodes, want)
		}
	}
}
