package analytics

import (
	"math"
	"testing"

	"cuckoograph/internal/stores"
)

// diamond builds the test graph
//
//	1 → 2 → 4
//	1 → 3 → 4 → 5, plus 2 → 3 and a triangle 6,7,8.
func diamond() *storeWrap {
	s := stores.NewCuckooGraph()
	edges := [][2]uint64{
		{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}, {2, 3},
		{6, 7}, {7, 8}, {8, 6},
	}
	for _, e := range edges {
		s.InsertEdge(e[0], e[1])
	}
	return &storeWrap{s}
}

type storeWrap struct {
	s interface {
		InsertEdge(u, v uint64) bool
		HasEdge(u, v uint64) bool
		DeleteEdge(u, v uint64) bool
		ForEachSuccessor(u uint64, fn func(v uint64) bool)
		NumEdges() uint64
		MemoryUsage() uint64
	}
}

func TestBFSOrderAndReach(t *testing.T) {
	s := stores.NewCuckooGraph()
	for _, e := range [][2]uint64{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}} {
		s.InsertEdge(e[0], e[1])
	}
	order := BFS(s, 1)
	if len(order) != 5 {
		t.Fatalf("BFS reached %d nodes, want 5", len(order))
	}
	if order[0] != 1 {
		t.Fatalf("BFS order starts at %d, want 1", order[0])
	}
	pos := map[uint64]int{}
	for i, u := range order {
		pos[u] = i
	}
	if pos[4] < pos[2] || pos[4] < pos[3] || pos[5] < pos[4] {
		t.Fatalf("BFS level order violated: %v", order)
	}
	if got := BFS(s, 99); len(got) != 1 {
		t.Fatalf("BFS from isolated root visited %d, want 1", len(got))
	}
}

func TestDijkstraDistances(t *testing.T) {
	s := stores.NewCuckooGraph()
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {3, 4}, {1, 4}, {4, 5}} {
		s.InsertEdge(e[0], e[1])
	}
	dist := Dijkstra(s, 1)
	want := map[uint64]uint64{1: 0, 2: 1, 3: 2, 4: 1, 5: 2}
	for u, d := range want {
		if dist[u] != d {
			t.Fatalf("dist[%d] = %d, want %d", u, dist[u], d)
		}
	}
	if len(dist) != len(want) {
		t.Fatalf("reached %d nodes, want %d", len(dist), len(want))
	}
}

func TestTriangleCount(t *testing.T) {
	s := stores.NewCuckooGraph()
	// Directed 3-cycle 1→2→3→1 gives one triangle through node 1.
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {3, 1}} {
		s.InsertEdge(e[0], e[1])
	}
	if got := TriangleCount(s, 1); got != 1 {
		t.Fatalf("triangles(1) = %d, want 1", got)
	}
	if got := TriangleCount(s, 99); got != 0 {
		t.Fatalf("triangles(isolated) = %d, want 0", got)
	}
	s.InsertEdge(1, 3) // second path 1→3→1? (3→1 exists) — no new triangle via 2-hop from 1→3→1? it adds 1→3,3→1 closing pair
	got := TriangleCount(s, 1)
	if got < 1 {
		t.Fatalf("triangles after extra edge = %d, want ≥ 1", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	s := stores.NewCuckooGraph()
	// SCC {1,2,3}, SCC {4}, SCC {5,6}.
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {3, 1}, {3, 4}, {5, 6}, {6, 5}} {
		s.InsertEdge(e[0], e[1])
	}
	comp, n := ConnectedComponents(s)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[1] != comp[2] || comp[2] != comp[3] {
		t.Fatalf("SCC {1,2,3} split: %v", comp)
	}
	if comp[5] != comp[6] {
		t.Fatalf("SCC {5,6} split: %v", comp)
	}
	if comp[4] == comp[1] || comp[4] == comp[5] {
		t.Fatalf("node 4 merged into another SCC: %v", comp)
	}
}

func TestConnectedComponentsDeepChain(t *testing.T) {
	// A 50k-node path must not blow the stack (iterative Tarjan).
	s := stores.NewCuckooGraph()
	for u := uint64(1); u < 50000; u++ {
		s.InsertEdge(u, u+1)
	}
	_, n := ConnectedComponents(s)
	if n != 50000 {
		t.Fatalf("components = %d, want 50000 singletons", n)
	}
}

func TestPageRankProperties(t *testing.T) {
	s := stores.NewCuckooGraph()
	// Star: everyone points at 1; 1 points at 2.
	for u := uint64(2); u <= 10; u++ {
		s.InsertEdge(u, 1)
	}
	s.InsertEdge(1, 2)
	pr := PageRank(s, 50)
	sum := 0.0
	for _, p := range pr {
		if p < 0 {
			t.Fatalf("negative rank: %v", pr)
		}
		sum += p
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("ranks sum to %f, want ≈1", sum)
	}
	for u := uint64(3); u <= 10; u++ {
		if pr[1] <= pr[u] {
			t.Fatalf("hub rank %f not above leaf %d rank %f", pr[1], u, pr[u])
		}
	}
}

func TestBetweennessCenterOfPath(t *testing.T) {
	s := stores.NewCuckooGraph()
	// Path 1→2→3: node 2 lies on the only 1→3 shortest path.
	s.InsertEdge(1, 2)
	s.InsertEdge(2, 3)
	bc := Betweenness(s)
	if bc[2] <= bc[1] || bc[2] <= bc[3] {
		t.Fatalf("betweenness of middle node not maximal: %v", bc)
	}
	if math.Abs(bc[2]-1) > 1e-9 {
		t.Fatalf("bc[2] = %f, want 1", bc[2])
	}
}

func TestLocalClustering(t *testing.T) {
	s := stores.NewCuckooGraph()
	// Complete directed triad on {1,2,3}: every neighbour pair connected.
	for _, e := range [][2]uint64{{1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 2}} {
		s.InsertEdge(e[0], e[1])
	}
	lcc := LocalClustering(s)
	for u := uint64(1); u <= 3; u++ {
		if math.Abs(lcc[u]-1) > 1e-9 {
			t.Fatalf("lcc[%d] = %f, want 1", u, lcc[u])
		}
	}
	// Node 4 with two unconnected neighbours has LCC 0.
	s.InsertEdge(4, 5)
	s.InsertEdge(4, 6)
	lcc = LocalClustering(s)
	if lcc[4] != 0 {
		t.Fatalf("lcc[4] = %f, want 0", lcc[4])
	}
}

func TestTopDegreeNodes(t *testing.T) {
	s := stores.NewCuckooGraph()
	for v := uint64(1); v <= 10; v++ {
		s.InsertEdge(100, v) // hub out-degree 10
	}
	s.InsertEdge(1, 2)
	top := TopDegreeNodes(s, 2)
	if len(top) != 2 || top[0] != 100 {
		t.Fatalf("top = %v, want hub 100 first", top)
	}
}

func TestExtractSubgraph(t *testing.T) {
	src := stores.NewCuckooGraph()
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {1, 9}} {
		src.InsertEdge(e[0], e[1])
	}
	dst := stores.NewCuckooGraph()
	ExtractSubgraph(src, []uint64{1, 2, 3}, dst)
	if !dst.HasEdge(1, 2) || !dst.HasEdge(2, 3) {
		t.Fatal("in-subgraph edges missing")
	}
	if dst.HasEdge(3, 4) || dst.HasEdge(1, 9) {
		t.Fatal("out-of-subgraph edges leaked")
	}
}

// TestAnalyticsAgreeAcrossStores runs every task on every store over the
// same random graph and checks the results are identical — the paper's
// premise that only running time differs between schemes.
func TestAnalyticsAgreeAcrossStores(t *testing.T) {
	edges := [][2]uint64{}
	// Deterministic pseudo-random graph.
	x := uint64(88172645463325252)
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	for i := 0; i < 400; i++ {
		edges = append(edges, [2]uint64{next() % 40, next() % 40})
	}
	type result struct {
		bfs   int
		sssp  int
		tri   int
		comps int
	}
	var base *result
	for _, f := range stores.All() {
		s := f.New()
		for _, e := range edges {
			s.InsertEdge(e[0], e[1])
		}
		r := &result{
			bfs:   len(BFS(s, edges[0][0])),
			sssp:  len(Dijkstra(s, edges[0][0])),
			tri:   TriangleCount(s, edges[0][0]),
			comps: 0,
		}
		_, r.comps = ConnectedComponents(s)
		if base == nil {
			base = r
			continue
		}
		if *r != *base {
			t.Fatalf("store %s disagrees: %+v vs %+v", f.Name, r, base)
		}
	}
}
