package analytics

import (
	"math/rand"
	"testing"

	"cuckoograph/internal/sharded"
)

// TestFlatInnerLoopAllocs pins the flat BFS and PageRank inner loops
// allocation-free: with the traversal state pre-sized, a full pass over
// the index must not touch the heap. A regression here silently erodes
// the CSR speedup, so it fails the build rather than a benchmark.
func TestFlatInnerLoopAllocs(t *testing.T) {
	g := sharded.New(sharded.Config{Shards: 4})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		g.InsertEdge(uint64(rng.Intn(300)), uint64(rng.Intn(300)))
	}
	v := g.Snapshot()
	defer v.Release()
	idx := v.CSR()
	if idx.NumSources() == 0 {
		t.Fatal("test graph compiled empty")
	}

	visited := newBitset(idx.NumNodes())
	queue := make([]int32, 0, idx.NumNodes())
	if a := testing.AllocsPerRun(50, func() {
		for i := range visited {
			visited[i] = 0
		}
		queue = bfsFlatInto(idx, 0, visited, queue[:0])
	}); a != 0 {
		t.Errorf("flat BFS inner loop: %v allocs/run, want 0", a)
	}
	if len(queue) < 2 {
		t.Fatalf("flat BFS visited %d nodes; traversal did not run", len(queue))
	}

	rank := make([]float64, idx.NumNodes())
	next := make([]float64, idx.NumNodes())
	if a := testing.AllocsPerRun(20, func() {
		pageRankFlatInto(idx, 5, rank, next)
	}); a != 0 {
		t.Errorf("flat PageRank inner loop: %v allocs/run, want 0", a)
	}
}
