package analytics

import (
	"math"
	"math/rand"
	"testing"

	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
)

// The differential harness: every kernel run twice on the same frozen
// view — once through the CSR fast path (the view satisfies
// graphstore.Indexed) and once through the map-based fallback (the view
// wrapped in StoreOnly, which hides the capability) — must agree.

const floatTol = 1e-9

func approxEqual(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= floatTol || d <= floatTol*math.Max(math.Abs(a), math.Abs(b))
}

func sameFloatMap(t *testing.T, name string, flat, slow map[uint64]float64) {
	t.Helper()
	if len(flat) != len(slow) {
		t.Fatalf("%s: flat has %d entries, fallback %d", name, len(flat), len(slow))
	}
	for u, fv := range flat {
		sv, ok := slow[u]
		if !ok {
			t.Fatalf("%s: node %d only on flat path", name, u)
		}
		if !approxEqual(fv, sv) {
			t.Fatalf("%s: node %d flat=%v fallback=%v", name, u, fv, sv)
		}
	}
}

// partitionReps canonicalizes a component labelling: each node maps to
// the smallest node id in its component, so two labellings describe the
// same partition iff the representative maps are equal.
func partitionReps(comp map[uint64]int) map[uint64]uint64 {
	min := map[int]uint64{}
	for u, c := range comp {
		if m, ok := min[c]; !ok || u < m {
			min[c] = u
		}
	}
	reps := make(map[uint64]uint64, len(comp))
	for u, c := range comp {
		reps[u] = min[c]
	}
	return reps
}

// checkAllKernels runs the full suite both ways on v and fails on any
// divergence. roots drive the single-source kernels and deliberately
// include ids absent from the graph.
func checkAllKernels(t *testing.T, v graphstore.Store, roots []uint64) {
	t.Helper()
	if _, ok := v.(graphstore.Indexed); !ok {
		t.Fatal("differential store does not expose a CSR index")
	}
	slow := StoreOnly{S: v}
	if _, ok := interface{}(slow).(graphstore.Indexed); ok {
		t.Fatal("StoreOnly leaks the Indexed capability")
	}

	for _, root := range roots {
		fo, so := BFS(v, root), BFS(slow, root)
		if len(fo) != len(so) {
			t.Fatalf("BFS(%d): flat visited %d, fallback %d", root, len(fo), len(so))
		}
		for i := range fo {
			if fo[i] != so[i] {
				t.Fatalf("BFS(%d): order diverges at %d: flat %d, fallback %d", root, i, fo[i], so[i])
			}
		}
		fd, sd := Dijkstra(v, root), Dijkstra(slow, root)
		if len(fd) != len(sd) {
			t.Fatalf("Dijkstra(%d): flat reached %d, fallback %d", root, len(fd), len(sd))
		}
		for u, d := range fd {
			if sd[u] != d {
				t.Fatalf("Dijkstra(%d): dist[%d] flat=%d fallback=%d", root, u, d, sd[u])
			}
		}
		if ft, st := TriangleCount(v, root), TriangleCount(slow, root); ft != st {
			t.Fatalf("TriangleCount(%d): flat=%d fallback=%d", root, ft, st)
		}
	}

	fc, fn := ConnectedComponents(v)
	sc, sn := ConnectedComponents(slow)
	if fn != sn {
		t.Fatalf("ConnectedComponents: flat %d comps, fallback %d", fn, sn)
	}
	fr, sr := partitionReps(fc), partitionReps(sc)
	if len(fr) != len(sr) {
		t.Fatalf("ConnectedComponents: flat labelled %d nodes, fallback %d", len(fr), len(sr))
	}
	for u, rep := range fr {
		if sr[u] != rep {
			t.Fatalf("ConnectedComponents: partitions differ at node %d", u)
		}
	}

	sameFloatMap(t, "PageRank", PageRank(v, 15), PageRank(slow, 15))
	sameFloatMap(t, "Betweenness", Betweenness(v), Betweenness(slow))
	sameFloatMap(t, "LocalClustering", LocalClustering(v), LocalClustering(slow))

	ftop, stop := TopDegreeNodes(v, 8), TopDegreeNodes(slow, 8)
	if len(ftop) != len(stop) {
		t.Fatalf("TopDegreeNodes: flat %v, fallback %v", ftop, stop)
	}
	for i := range ftop {
		if ftop[i] != stop[i] {
			t.Fatalf("TopDegreeNodes: flat %v, fallback %v", ftop, stop)
		}
	}

	// The parallel kernels must agree with their sequential selves on
	// the same (flat) path.
	for _, root := range roots {
		po, bo := ParallelBFS(v, root, 4), BFS(v, root)
		if len(po) != len(bo) {
			t.Fatalf("ParallelBFS(%d): visited %d, sequential %d", root, len(po), len(bo))
		}
		for i := range po {
			if po[i] != bo[i] {
				t.Fatalf("ParallelBFS(%d): order diverges at %d", root, i)
			}
		}
	}
	sameFloatMap(t, "ParallelPageRank", ParallelPageRank(v, 15, 4), PageRank(v, 15))
}

// TestDifferentialFlatVsFallback drives a random operation stream —
// inserts, deletes, self-loops over a small id space so collisions and
// re-insertions are common — through the sharded engine, snapshots at
// random points, keeps mutating (so views are served partly from
// copy-on-write overlays), and differentially checks every kernel on
// every snapshot.
func TestDifferentialFlatVsFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 4; round++ {
		g := sharded.New(sharded.Config{Shards: 1 << uint(round%3+1)})
		id := func() uint64 { return uint64(rng.Intn(120)) }
		for i := 0; i < 1500; i++ {
			switch rng.Intn(10) {
			case 0:
				g.DeleteEdge(id(), id())
			case 1:
				u := id()
				g.InsertEdge(u, u) // self-loop
			default:
				g.InsertEdge(id(), id())
			}
		}
		// A disconnected cluster far from the main id range.
		for u := uint64(5000); u < 5010; u++ {
			g.InsertEdge(u, u+1)
			g.InsertEdge(u+1, u)
		}
		v := g.Snapshot()

		// Post-snapshot churn: force overlay-served nodes. Deleting all
		// of a node's edges means the view finds it only in the CoW
		// overlay; inserting brand-new nodes must stay invisible.
		victim := uint64(7)
		for _, s := range graphstore.Successors(v, victim) {
			g.DeleteEdge(victim, s)
		}
		for i := 0; i < 300; i++ {
			g.InsertEdge(uint64(9000+rng.Intn(40)), uint64(9000+rng.Intn(40)))
			g.DeleteEdge(id(), id())
		}

		roots := append(TopDegreeNodes(StoreOnly{S: v}, 3), victim, 5000, 123456 /* absent */)
		checkAllKernels(t, v, roots)
		v.Release()
	}
}

// TestDifferentialEdgeCases pins the degenerate shapes: the empty
// graph, a lone self-loop and a graph that is only disconnected pairs.
func TestDifferentialEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		g := sharded.New(sharded.Config{Shards: 4})
		v := g.Snapshot()
		defer v.Release()
		checkAllKernels(t, v, []uint64{0, 1})
	})
	t.Run("self-loop", func(t *testing.T) {
		g := sharded.New(sharded.Config{Shards: 4})
		g.InsertEdge(9, 9)
		v := g.Snapshot()
		defer v.Release()
		checkAllKernels(t, v, []uint64{9, 10})
	})
	t.Run("disconnected-pairs", func(t *testing.T) {
		g := sharded.New(sharded.Config{Shards: 4})
		for u := uint64(0); u < 40; u += 2 {
			g.InsertEdge(u, u+1)
		}
		v := g.Snapshot()
		defer v.Release()
		checkAllKernels(t, v, []uint64{0, 17, 38, 100})
	})
}
