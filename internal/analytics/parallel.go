package analytics

import (
	"runtime"
	"sync"

	"cuckoograph/internal/csr"
	"cuckoograph/internal/graphstore"
)

// resolveWorkers maps a worker-count request to a concrete pool size.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// chunks splits items into at most workers near-equal contiguous parts.
func chunks[T any](items []T, workers int) [][]T {
	if len(items) == 0 {
		return nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	size := (len(items) + workers - 1) / workers
	var out [][]T
	for lo := 0; lo < len(items); lo += size {
		hi := lo + size
		if hi > len(items) {
			hi = len(items)
		}
		out = append(out, items[lo:hi])
	}
	return out
}

// ParallelBFS is level-synchronous BFS with the frontier expansion
// fanned out over a worker pool: each worker scans the successors of
// its slice of the current frontier into a private buffer, and the
// buffers are merged into the next frontier serially, so the visited
// set needs no lock. With workers ≤ 1 it falls back to the sequential
// BFS. The store must support concurrent readers (the sharded engine
// and every single-writer store in this repository do); the visit set
// matches BFS exactly and the order is level-equivalent.
func ParallelBFS(s graphstore.Store, root uint64, workers int) []uint64 {
	workers = resolveWorkers(workers)
	if workers <= 1 {
		return BFS(s, root)
	}
	if idx := indexOf(s); idx != nil {
		return parallelBFSFlat(idx, root, workers)
	}
	visited := map[uint64]bool{root: true}
	order := []uint64{root}
	frontier := []uint64{root}
	for len(frontier) > 0 {
		parts := chunks(frontier, workers)
		results := make([][]uint64, len(parts))
		var wg sync.WaitGroup
		for ci, part := range parts {
			wg.Add(1)
			go func(ci int, part []uint64) {
				defer wg.Done()
				var local []uint64
				for _, u := range part {
					s.ForEachSuccessor(u, func(v uint64) bool {
						local = append(local, v)
						return true
					})
				}
				results[ci] = local
			}(ci, part)
		}
		wg.Wait()
		var next []uint64
		for _, local := range results {
			for _, v := range local {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
					order = append(order, v)
				}
			}
		}
		frontier = next
	}
	return order
}

// ParallelPageRank runs the power method with each iteration's
// contribution pass partitioned over a worker pool: every worker
// accumulates rank shares for its slice of the node set into a private
// map, and the maps are merged serially before the damping update.
// With workers ≤ 1 it falls back to the sequential PageRank. Results
// match PageRank up to floating-point summation order.
func ParallelPageRank(s graphstore.Store, iters, workers int) map[uint64]float64 {
	workers = resolveWorkers(workers)
	if workers <= 1 {
		return PageRank(s, iters)
	}
	if idx := indexOf(s); idx != nil {
		return parallelPageRankFlat(idx, iters, workers)
	}
	nodes := Nodes(s)
	if len(nodes) == 0 {
		return nil
	}
	const damping = 0.85
	n := float64(len(nodes))
	rank := make(map[uint64]float64, len(nodes))
	deg := make(map[uint64]int, len(nodes))

	parts := chunks(nodes, workers)
	degParts := make([]map[uint64]int, len(parts))
	var wg sync.WaitGroup
	for ci, part := range parts {
		wg.Add(1)
		go func(ci int, part []uint64) {
			defer wg.Done()
			local := make(map[uint64]int, len(part))
			for _, u := range part {
				local[u] = graphstore.Degree(s, u)
			}
			degParts[ci] = local
		}(ci, part)
	}
	wg.Wait()
	for _, local := range degParts {
		for u, d := range local {
			deg[u] = d
		}
	}
	for _, u := range nodes {
		rank[u] = 1 / n
	}

	type contrib struct {
		next map[uint64]float64
		leak float64
	}
	for it := 0; it < iters; it++ {
		results := make([]contrib, len(parts))
		for ci, part := range parts {
			wg.Add(1)
			go func(ci int, part []uint64) {
				defer wg.Done()
				c := contrib{next: make(map[uint64]float64)}
				for _, u := range part {
					if deg[u] == 0 {
						c.leak += rank[u]
						continue
					}
					share := rank[u] / float64(deg[u])
					s.ForEachSuccessor(u, func(v uint64) bool {
						c.next[v] += share
						return true
					})
				}
				results[ci] = c
			}(ci, part)
		}
		wg.Wait()
		next := make(map[uint64]float64, len(rank))
		leak := 0.0
		for _, c := range results {
			leak += c.leak
			for v, share := range c.next {
				next[v] += share
			}
		}
		for _, u := range nodes {
			rank[u] = (1-damping)/n + damping*(next[u]+leak/n)
		}
	}
	return rank
}

// parallelBFSFlat is the level-synchronous BFS over the index: workers
// expand disjoint slices of the current frontier into private int32
// buffers, merged serially against the visited bitset in part order —
// which preserves the sequential flat BFS visit order exactly.
func parallelBFSFlat(idx *csr.Index, root uint64, workers int) []uint64 {
	r, ok := idx.DenseOf(root)
	if !ok {
		return []uint64{root}
	}
	visited := newBitset(idx.NumNodes())
	visited.set(r)
	order := make([]int32, 0, idx.NumSources()+1)
	order = append(order, r)
	frontier := []int32{r}
	var spare []int32
	for len(frontier) > 0 {
		parts := chunks(frontier, workers)
		results := make([][]int32, len(parts))
		var wg sync.WaitGroup
		for ci, part := range parts {
			wg.Add(1)
			go func(ci int, part []int32) {
				defer wg.Done()
				var local []int32
				for _, u := range part {
					local = append(local, idx.Succ(u)...)
				}
				results[ci] = local
			}(ci, part)
		}
		wg.Wait()
		next := spare[:0]
		for _, local := range results {
			for _, v := range local {
				if !visited.has(v) {
					visited.set(v)
					next = append(next, v)
					order = append(order, v)
				}
			}
		}
		frontier, spare = next, frontier
	}
	out := make([]uint64, len(order))
	for i, d := range order {
		out[i] = idx.IDOf(d)
	}
	return out
}

// parallelPageRankFlat partitions the source-id range over the pool;
// each worker pushes rank shares into a private dense float64 array
// (allocated once, reused every iteration), and the damping update
// sums the per-worker arrays in worker order. Results match the
// sequential flat PageRank up to floating-point summation order.
func parallelPageRankFlat(idx *csr.Index, iters, workers int) map[uint64]float64 {
	srcs := idx.NumSources()
	if srcs == 0 {
		return nil
	}
	if workers > srcs {
		workers = srcs
	}
	const damping = 0.85
	n := float64(srcs)
	rank := make([]float64, srcs)
	for u := range rank {
		rank[u] = 1 / n
	}
	bufs := make([][]float64, workers)
	for w := range bufs {
		bufs[w] = make([]float64, idx.NumNodes())
	}
	leaks := make([]float64, workers)
	size := (srcs + workers - 1) / workers
	var wg sync.WaitGroup
	for it := 0; it < iters; it++ {
		for w := 0; w < workers; w++ {
			lo, hi := w*size, (w+1)*size
			if hi > srcs {
				hi = srcs
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				next := bufs[w]
				for i := range next {
					next[i] = 0
				}
				leak := 0.0
				for u := int32(lo); u < int32(hi); u++ {
					deg := idx.Degree(u)
					if deg == 0 {
						leak += rank[u]
						continue
					}
					share := rank[u] / float64(deg)
					for _, v := range idx.Succ(u) {
						next[v] += share
					}
				}
				leaks[w] = leak
			}(w, lo, hi)
		}
		wg.Wait()
		leak := 0.0
		for w := 0; w < workers; w++ {
			leak += leaks[w]
			leaks[w] = 0
		}
		for u := 0; u < srcs; u++ {
			sum := 0.0
			for w := 0; w < workers; w++ {
				sum += bufs[w][u]
			}
			rank[u] = (1-damping)/n + damping*(sum+leak/n)
		}
	}
	out := make(map[uint64]float64, srcs)
	for u := 0; u < srcs; u++ {
		out[idx.IDOf(int32(u))] = rank[u]
	}
	return out
}
