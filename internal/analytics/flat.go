package analytics

import (
	"sort"

	"cuckoograph/internal/csr"
	"cuckoograph/internal/graphstore"
)

// indexOf resolves the store's compiled CSR index when it advertises
// one (graphstore.Indexed — in practice a frozen sharded view, which
// memoizes the index per epoch). Every kernel consults it on entry and
// runs the flat dense-id variant when it is present; all other stores
// take the identical map-based algorithm through the Store interface.
func indexOf(s graphstore.Store) *csr.Index {
	if ix, ok := s.(graphstore.Indexed); ok {
		return ix.CSR()
	}
	return nil
}

// StoreOnly wraps a store, hiding every capability interface except
// Store, NodeLister and Degreer. Wrapping an Indexed store forces the
// kernels onto the map-based fallback path — the harness uses it as
// the differential oracle for the CSR path and as the "before" side of
// the with/without-index benchmarks.
type StoreOnly struct{ S graphstore.Store }

func (w StoreOnly) InsertEdge(u, v uint64) bool { return w.S.InsertEdge(u, v) }
func (w StoreOnly) HasEdge(u, v uint64) bool    { return w.S.HasEdge(u, v) }
func (w StoreOnly) DeleteEdge(u, v uint64) bool { return w.S.DeleteEdge(u, v) }
func (w StoreOnly) NumEdges() uint64            { return w.S.NumEdges() }
func (w StoreOnly) MemoryUsage() uint64         { return w.S.MemoryUsage() }
func (w StoreOnly) Degree(u uint64) int         { return graphstore.Degree(w.S, u) }

func (w StoreOnly) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	w.S.ForEachSuccessor(u, fn)
}

func (w StoreOnly) ForEachNode(fn func(u uint64) bool) {
	if nl, ok := w.S.(NodeLister); ok {
		nl.ForEachNode(fn)
	}
}

// bitset is a flat visited/marked set over dense ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }
func (b bitset) set(i int32)      { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// bfsFlat is BFS over the index: an int32 frontier queue and a visited
// bitset instead of a map — the queue in append order IS the traversal
// order, translated back to sparse ids at the end.
func bfsFlat(idx *csr.Index, root uint64) []uint64 {
	r, ok := idx.DenseOf(root)
	if !ok {
		// The fallback visits the root unconditionally, present or not.
		return []uint64{root}
	}
	visited := newBitset(idx.NumNodes())
	queue := make([]int32, 0, idx.NumSources()+1)
	queue = bfsFlatInto(idx, r, visited, queue)
	out := make([]uint64, len(queue))
	for i, d := range queue {
		out[i] = idx.IDOf(d)
	}
	return out
}

// bfsFlatInto runs the allocation-free BFS inner loop: visited must be
// zeroed and sized for idx.NumNodes(), queue empty. It returns the
// traversal order in dense ids (the filled queue). Given adequate
// queue capacity the loop performs zero heap allocations — pinned by
// TestFlatInnerLoopAllocs.
func bfsFlatInto(idx *csr.Index, root int32, visited bitset, queue []int32) []int32 {
	visited.set(root)
	queue = append(queue, root)
	for head := 0; head < len(queue); head++ {
		for _, v := range idx.Succ(queue[head]) {
			if !visited.has(v) {
				visited.set(v)
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// dijkstraFlat is Dijkstra over the index with a flat binary heap of
// (distance, node) pairs packed into uint64s — distance in the high
// word so the packed values order by distance — and a dense distance
// array instead of the map.
func dijkstraFlat(idx *csr.Index, src uint64) map[uint64]uint64 {
	s, ok := idx.DenseOf(src)
	if !ok {
		return map[uint64]uint64{src: 0}
	}
	const unreached = ^uint64(0)
	dist := make([]uint64, idx.NumNodes())
	for i := range dist {
		dist[i] = unreached
	}
	dist[s] = 0
	heap := make([]uint64, 0, idx.NumSources()+1)
	heap = heapPush(heap, uint64(s)) // distance 0 << 32 | s
	for len(heap) > 0 {
		var it uint64
		heap, it = heapPop(heap)
		d, u := it>>32, int32(it&0xFFFFFFFF)
		if d > dist[u] {
			continue // stale entry
		}
		nd := d + 1
		for _, v := range idx.Succ(u) {
			if nd < dist[v] {
				dist[v] = nd
				heap = heapPush(heap, nd<<32|uint64(uint32(v)))
			}
		}
	}
	out := make(map[uint64]uint64)
	for i, d := range dist {
		if d != unreached {
			out[idx.IDOf(int32(i))] = d
		}
	}
	return out
}

func heapPush(h []uint64, x uint64) []uint64 {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapPop(h []uint64) ([]uint64, uint64) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return h, top
}

// tcFlat counts triangles through node with the paper's 2-hop probe
// method, the closing-edge query served by binary search over the
// index's sorted adjacency copy.
func tcFlat(idx *csr.Index, node uint64) int {
	d, ok := idx.DenseOf(node)
	if !ok {
		return 0
	}
	count := 0
	for _, mid := range idx.Succ(d) {
		for _, far := range idx.Succ(mid) {
			if idx.HasEdgeDense(far, d) {
				count++
			}
		}
	}
	return count
}

// ccFlat is the iterative Tarjan SCC walk over dense ids with flat
// index/lowlink/component arrays. The component partition and count
// equal the fallback's exactly; the integer labels themselves depend
// on root iteration order, which is not part of the contract.
func ccFlat(idx *csr.Index) (map[uint64]int, int) {
	n := idx.NumNodes()
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	for i := range index {
		index[i], comp[i] = -1, -1
	}
	onStack := newBitset(n)
	var stack []int32
	type frame struct {
		node int32
		i    int32
	}
	var call []frame
	next, comps := int32(0), 0

	for root := int32(0); root < int32(idx.NumSources()); root++ {
		if index[root] >= 0 {
			continue
		}
		push := func(u int32) {
			index[u], low[u] = next, next
			next++
			stack = append(stack, u)
			onStack.set(u)
			call = append(call, frame{node: u})
		}
		push(root)
		for len(call) > 0 {
			f := &call[len(call)-1]
			succ := idx.Succ(f.node)
			advanced := false
			for f.i < int32(len(succ)) {
				v := succ[f.i]
				f.i++
				if index[v] < 0 {
					push(v)
					advanced = true
					break
				}
				if onStack.has(v) && index[v] < low[f.node] {
					low[f.node] = index[v]
				}
			}
			if advanced {
				continue
			}
			if low[f.node] == index[f.node] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[uint32(w)>>6] &^= 1 << (uint32(w) & 63)
					comp[w] = int32(comps)
					if w == f.node {
						break
					}
				}
				comps++
			}
			done := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := &call[len(call)-1]
				if low[done] < low[parent.node] {
					low[parent.node] = low[done]
				}
			}
		}
	}
	out := make(map[uint64]int, n)
	for i := int32(0); i < int32(n); i++ {
		if comp[i] >= 0 {
			out[idx.IDOf(i)] = int(comp[i])
		}
	}
	return out, comps
}

// pageRankFlat is the power method over flat rank arrays. Ranks live
// on the source nodes (dense ids < NumSources, exactly the node set
// the fallback iterates); the next array spans all nodes so shares
// pushed at destination-only nodes land somewhere, as in the map
// version, and are likewise never read back.
func pageRankFlat(idx *csr.Index, iters int) map[uint64]float64 {
	srcs := idx.NumSources()
	if srcs == 0 {
		return nil
	}
	rank := make([]float64, idx.NumNodes())
	next := make([]float64, idx.NumNodes())
	pageRankFlatInto(idx, iters, rank, next)
	out := make(map[uint64]float64, srcs)
	for u := 0; u < srcs; u++ {
		out[idx.IDOf(int32(u))] = rank[u]
	}
	return out
}

// pageRankFlatInto runs the allocation-free PageRank inner loops: rank
// and next must be zeroed and sized for idx.NumNodes(). On return rank
// holds the final ranks of the source nodes. Pinned allocation-free by
// TestFlatInnerLoopAllocs.
func pageRankFlatInto(idx *csr.Index, iters int, rank, next []float64) {
	srcs := int32(idx.NumSources())
	const damping = 0.85
	n := float64(srcs)
	for u := int32(0); u < srcs; u++ {
		rank[u] = 1 / n
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		leak := 0.0
		for u := int32(0); u < srcs; u++ {
			deg := idx.Degree(u)
			if deg == 0 { // cannot happen for a source; kept for parity
				leak += rank[u]
				continue
			}
			share := rank[u] / float64(deg)
			for _, v := range idx.Succ(u) {
				next[v] += share
			}
		}
		for u := int32(0); u < srcs; u++ {
			rank[u] = (1-damping)/n + damping*(next[u]+leak/n)
		}
	}
}

// betweennessFlat is Brandes over flat per-source state: distance,
// path-count and dependency arrays reset via the previous round's
// visit order (touched entries only, so sparse traversals stay cheap)
// and predecessor lists with reused backing.
func betweennessFlat(idx *csr.Index) map[uint64]float64 {
	n := idx.NumNodes()
	bc := make([]float64, n)
	inBC := newBitset(n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	var order []int32

	for src := int32(0); src < int32(idx.NumSources()); src++ {
		for _, w := range order {
			dist[w] = -1
			sigma[w], delta[w] = 0, 0
			preds[w] = preds[w][:0]
		}
		order = order[:0]
		sigma[src], dist[src] = 1, 0
		order = append(order, src)
		for head := 0; head < len(order); head++ {
			u := order[head]
			du := dist[u]
			for _, v := range idx.Succ(u) {
				if dist[v] < 0 {
					dist[v] = du + 1
					order = append(order, v)
				}
				if dist[v] == du+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				bc[w] += delta[w]
				inBC.set(w)
			}
		}
	}
	out := make(map[uint64]float64)
	for i := int32(0); i < int32(n); i++ {
		if inBC.has(i) {
			out[idx.IDOf(i)] = bc[i]
		}
	}
	return out
}

// localClusteringFlat probes every neighbour pair of every source node
// against the sorted adjacency copy.
func localClusteringFlat(idx *csr.Index) map[uint64]float64 {
	srcs := int32(idx.NumSources())
	out := make(map[uint64]float64, srcs)
	for u := int32(0); u < srcs; u++ {
		neigh := idx.Succ(u)
		k := len(neigh)
		if k < 2 {
			out[idx.IDOf(u)] = 0
			continue
		}
		links := 0
		for _, a := range neigh {
			for _, b := range neigh {
				if a != b && idx.HasEdgeDense(a, b) {
					links++
				}
			}
		}
		out[idx.IDOf(u)] = float64(links) / float64(k*(k-1))
	}
	return out
}

// topDegreeFlat ranks nodes by total degree from the index alone: the
// out-degree is an offsets difference, the in-degree one pass over the
// flat edge array.
func topDegreeFlat(idx *csr.Index, count int) []uint64 {
	n := idx.NumNodes()
	total := make([]int, n)
	for u := int32(0); u < int32(idx.NumSources()); u++ {
		total[u] += idx.Degree(u)
		for _, v := range idx.Succ(u) {
			total[v]++
		}
	}
	all := make([]int32, 0, n)
	for i := int32(0); i < int32(n); i++ {
		if total[i] > 0 {
			all = append(all, i)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ti, tj := total[all[i]], total[all[j]]
		if ti != tj {
			return ti > tj
		}
		return idx.IDOf(all[i]) < idx.IDOf(all[j])
	})
	if count > len(all) {
		count = len(all)
	}
	out := make([]uint64, count)
	for i := 0; i < count; i++ {
		out[i] = idx.IDOf(all[i])
	}
	return out
}
