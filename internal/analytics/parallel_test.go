package analytics

import (
	"math"
	"testing"

	"cuckoograph/internal/sharded"
	"cuckoograph/internal/stores/adjlist"
)

func buildTestGraph() *sharded.Graph {
	g := sharded.New(sharded.Config{Shards: 4})
	// A connected component with cycles and fan-out, plus a detached tail.
	for i := uint64(0); i < 400; i++ {
		g.InsertEdge(i, (i*7+1)%400)
		g.InsertEdge(i, (i+1)%400)
		if i%5 == 0 {
			g.InsertEdge(i, (i*13+3)%400)
		}
	}
	for i := uint64(1000); i < 1020; i++ {
		g.InsertEdge(i, i+1)
	}
	return g
}

func TestParallelBFSMatchesSequential(t *testing.T) {
	g := buildTestGraph()
	for _, workers := range []int{2, 4, 8} {
		seq := BFS(g, 0)
		par := ParallelBFS(g, 0, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: visited %d nodes, want %d", workers, len(par), len(seq))
		}
		seqSet := map[uint64]bool{}
		for _, u := range seq {
			seqSet[u] = true
		}
		for _, u := range par {
			if !seqSet[u] {
				t.Fatalf("workers=%d: parallel visited %d, sequential did not", workers, u)
			}
		}
	}
	// Worker counts ≤ 1 fall back to sequential order exactly.
	seq := BFS(g, 0)
	one := ParallelBFS(g, 0, 1)
	for i := range seq {
		if one[i] != seq[i] {
			t.Fatalf("workers=1 order diverges at %d", i)
		}
	}
}

func TestParallelBFSLevelOrder(t *testing.T) {
	g := sharded.New(sharded.Config{Shards: 2})
	// root → {1,2} → {3,4} as strict levels.
	g.InsertEdge(0, 1)
	g.InsertEdge(0, 2)
	g.InsertEdge(1, 3)
	g.InsertEdge(2, 4)
	order := ParallelBFS(g, 0, 4)
	level := map[uint64]int{0: 0, 1: 1, 2: 1, 3: 2, 4: 2}
	for i := 1; i < len(order); i++ {
		if level[order[i]] < level[order[i-1]] {
			t.Fatalf("order %v violates level monotonicity", order)
		}
	}
}

func TestParallelPageRankMatchesSequential(t *testing.T) {
	g := buildTestGraph()
	seq := PageRank(g, 30)
	for _, workers := range []int{2, 4} {
		par := ParallelPageRank(g, 30, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d ranked nodes, want %d", workers, len(par), len(seq))
		}
		for u, want := range seq {
			if got := par[u]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("workers=%d: rank[%d] = %g, want %g", workers, u, got, want)
			}
		}
	}
}

func TestParallelOnSingleWriterStore(t *testing.T) {
	// Concurrent readers over a plain single-writer store must be safe
	// when no writer runs — the §V-E methodology (load, then analyse).
	s := adjlist.New()
	for i := uint64(0); i < 200; i++ {
		s.InsertEdge(i%20, i)
		s.InsertEdge(i, i%20)
	}
	if len(ParallelBFS(s, 0, 4)) != len(BFS(s, 0)) {
		t.Fatal("parallel BFS diverges on adjacency list")
	}
	if len(ParallelPageRank(s, 10, 4)) != len(PageRank(s, 10)) {
		t.Fatal("parallel PageRank diverges on adjacency list")
	}
}
