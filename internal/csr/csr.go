// Package csr compiles a frozen graph into a compressed-sparse-row
// index: a node-id dictionary mapping the graph's sparse uint64 ids to
// dense int32s, an offsets array, and one flat edge array holding every
// adjacency back to back in dense-id space. The analytics kernels of
// internal/analytics detect the index (via graphstore.Indexed) and run
// over flat slices, bitsets and rank arrays instead of hash probes and
// map allocations — the difference between a pointer-chasing traversal
// and a memory-bandwidth one.
//
// The index is immutable: it is built once from a consistent frozen
// view (internal/sharded memoizes it per snapshot epoch) and shared by
// every reader. Build never mutates its source and, for sharded
// sources, fans the expensive adjacency scans out per shard — no shard
// lock is held for more than one node's successor copy at a time, so
// writers keep landing while the index compiles.
package csr

import (
	"sort"
	"sync"
)

// Source is the read surface Build compiles: the node set and each
// node's successors, in the iteration order the source would serve
// them. Every graphstore.Store in this repository satisfies it.
type Source interface {
	NumEdges() uint64
	ForEachNode(fn func(u uint64) bool)
	ForEachSuccessor(u uint64, fn func(v uint64) bool)
}

// ShardedSource is a Source whose node set is hash-partitioned (the
// sharded engine's frozen views). Build uses it to fan the per-node
// adjacency scans — the probe-heavy part of compilation — out across
// the partitions, and to append successors into reusable flat buffers
// instead of allocating per node.
type ShardedSource interface {
	Source

	// ShardCount returns the number of partitions.
	ShardCount() int
	// ShardNodes returns partition si's node set (nodes with at least
	// one out-edge), in the source's canonical iteration order.
	ShardNodes(si int) []uint64
	// AppendSuccessors appends u's successors to dst and returns the
	// extended slice.
	AppendSuccessors(u uint64, dst []uint64) []uint64
}

// Index is the compiled CSR form of a graph. Dense ids are assigned so
// that every node with at least one out-edge ("source node") occupies
// [0, NumSources) in the source's node-iteration order, followed by
// nodes that only ever appear as successors; Succ(i) for i ≥ NumSources
// is empty. The per-node successor order of Edges equals the source's
// ForEachSuccessor order, so a traversal over the index visits edges in
// exactly the order the fallback path would.
type Index struct {
	// ids maps dense id -> sparse node id.
	ids []uint64
	// dense maps sparse node id -> dense id. Read-only after Build.
	dense map[uint64]int32
	// srcs is the number of source nodes: dense ids < srcs have
	// out-edges, ids ≥ srcs are destination-only.
	srcs int32
	// offsets has len NumNodes+1; node i's successors are
	// edges[offsets[i]:offsets[i+1]].
	offsets []uint32
	// edges holds every successor as a dense id, per-node in the
	// source's ForEachSuccessor order.
	edges []int32
	// weights, when attached, parallels edges (see AttachWeights).
	weights []uint64

	// sorted is a lazily built per-node-sorted copy of edges for the
	// membership probes of the triangle/clustering kernels: binary
	// search instead of a hash probe, O(log deg) with no pointer chase.
	sortedOnce sync.Once
	sorted     []int32
}

// NumNodes returns the number of distinct nodes (sources plus
// destination-only).
func (x *Index) NumNodes() int { return len(x.ids) }

// NumSources returns the number of nodes with at least one out-edge;
// they occupy dense ids [0, NumSources).
func (x *Index) NumSources() int { return int(x.srcs) }

// NumEdges returns the number of edges in the index.
func (x *Index) NumEdges() int { return len(x.edges) }

// DenseOf resolves a sparse node id to its dense id.
func (x *Index) DenseOf(u uint64) (int32, bool) {
	d, ok := x.dense[u]
	return d, ok
}

// IDOf resolves a dense id back to the sparse node id.
func (x *Index) IDOf(d int32) uint64 { return x.ids[d] }

// Degree returns dense node d's out-degree.
func (x *Index) Degree(d int32) int {
	return int(x.offsets[d+1] - x.offsets[d])
}

// Succ returns dense node d's successors as a shared slice the caller
// must not mutate.
func (x *Index) Succ(d int32) []int32 {
	return x.edges[x.offsets[d]:x.offsets[d+1]]
}

// Weights returns the weight slice parallel to Succ(d), or nil when no
// weights are attached.
func (x *Index) Weights(d int32) []uint64 {
	if x.weights == nil {
		return nil
	}
	return x.weights[x.offsets[d]:x.offsets[d+1]]
}

// HasEdgeDense reports whether the edge ⟨u,v⟩ (dense ids) is stored,
// by binary search over a per-node-sorted copy of the edge array built
// lazily on first use.
func (x *Index) HasEdgeDense(u, v int32) bool {
	x.sortedOnce.Do(x.buildSorted)
	s := x.sorted[x.offsets[u]:x.offsets[u+1]]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func (x *Index) buildSorted() {
	s := make([]int32, len(x.edges))
	copy(s, x.edges)
	for d := 0; d < int(x.srcs); d++ {
		seg := s[x.offsets[d]:x.offsets[d+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	x.sorted = s
}

// AttachWeights populates the optional weight array by probing w for
// every edge of the index (the weighted engines' per-edge Weight
// query). It returns x for chaining.
func (x *Index) AttachWeights(w func(u, v uint64) uint64) *Index {
	ws := make([]uint64, len(x.edges))
	for d := int32(0); d < x.srcs; d++ {
		u := x.ids[d]
		for i := x.offsets[d]; i < x.offsets[d+1]; i++ {
			ws[i] = w(u, x.ids[x.edges[i]])
		}
	}
	x.weights = ws
	return x
}

// MemoryBytes returns the structural bytes of the index: the dense and
// sparse id arrays, offsets, edges, and the sorted copy or weights when
// built — the price of keeping one epoch compiled.
func (x *Index) MemoryBytes() uint64 {
	b := uint64(len(x.ids))*8 + // ids
		uint64(len(x.dense))*16 + // dictionary entries (key + value + slack)
		uint64(len(x.offsets))*4 +
		uint64(len(x.edges))*4
	b += uint64(len(x.sorted)) * 4
	b += uint64(len(x.weights)) * 8
	return b
}
