package csr

import (
	"testing"
)

// mockSource is a deterministic in-memory Source for builder tests.
type mockSource struct {
	nodes []uint64
	succ  map[uint64][]uint64
}

func (m *mockSource) NumEdges() uint64 {
	var n uint64
	for _, s := range m.succ {
		n += uint64(len(s))
	}
	return n
}

func (m *mockSource) ForEachNode(fn func(u uint64) bool) {
	for _, u := range m.nodes {
		if !fn(u) {
			return
		}
	}
}

func (m *mockSource) ForEachSuccessor(u uint64, fn func(v uint64) bool) {
	for _, v := range m.succ[u] {
		if !fn(v) {
			return
		}
	}
}

// mockSharded partitions the mock by u%shards so the sharded build path
// is exercised without the real engine.
type mockSharded struct {
	mockSource
	shards int
}

func (m *mockSharded) ShardCount() int { return m.shards }

func (m *mockSharded) ShardNodes(si int) []uint64 {
	var out []uint64
	for _, u := range m.nodes {
		if int(u)%m.shards == si {
			out = append(out, u)
		}
	}
	return out
}

func (m *mockSharded) AppendSuccessors(u uint64, dst []uint64) []uint64 {
	return append(dst, m.succ[u]...)
}

func testGraph() *mockSource {
	return &mockSource{
		nodes: []uint64{10, 20, 30, 40},
		succ: map[uint64][]uint64{
			10: {20, 30, 99}, // 99 is destination-only
			20: {10, 20},     // self-loop
			30: {40},
			40: {10, 77, 88}, // more destination-only nodes
		},
	}
}

func checkIndex(t *testing.T, x *Index, src *mockSource) {
	t.Helper()
	if x.NumSources() != len(src.nodes) {
		t.Fatalf("NumSources = %d, want %d", x.NumSources(), len(src.nodes))
	}
	wantNodes := map[uint64]bool{}
	for _, u := range src.nodes {
		wantNodes[u] = true
		for _, v := range src.succ[u] {
			wantNodes[v] = true
		}
	}
	if x.NumNodes() != len(wantNodes) {
		t.Fatalf("NumNodes = %d, want %d", x.NumNodes(), len(wantNodes))
	}
	if x.NumEdges() != int(src.NumEdges()) {
		t.Fatalf("NumEdges = %d, want %d", x.NumEdges(), src.NumEdges())
	}
	// Round-trip dictionary and successor order per node.
	for _, u := range src.nodes {
		d, ok := x.DenseOf(u)
		if !ok {
			t.Fatalf("DenseOf(%d) missing", u)
		}
		if x.IDOf(d) != u {
			t.Fatalf("IDOf(DenseOf(%d)) = %d", u, x.IDOf(d))
		}
		want := src.succ[u]
		got := x.Succ(d)
		if len(got) != len(want) || x.Degree(d) != len(want) {
			t.Fatalf("node %d: %d successors, want %d", u, len(got), len(want))
		}
		for i, dv := range got {
			if x.IDOf(dv) != want[i] {
				t.Fatalf("node %d succ %d = %d, want %d (order must match source)",
					u, i, x.IDOf(dv), want[i])
			}
		}
	}
	// Destination-only nodes sit past the sources with empty ranges.
	for d := int32(x.NumSources()); d < int32(x.NumNodes()); d++ {
		if x.Degree(d) != 0 {
			t.Fatalf("dest-only dense %d has degree %d", d, x.Degree(d))
		}
		if len(src.succ[x.IDOf(d)]) != 0 {
			t.Fatalf("node %d with out-edges landed past the sources", x.IDOf(d))
		}
	}
	// Membership probes against the ground truth, both polarities.
	for _, u := range src.nodes {
		du, _ := x.DenseOf(u)
		present := map[uint64]bool{}
		for _, v := range src.succ[u] {
			present[v] = true
		}
		for w := range wantNodes {
			dw, _ := x.DenseOf(w)
			if x.HasEdgeDense(du, dw) != present[w] {
				t.Fatalf("HasEdgeDense(%d,%d) = %v, want %v", u, w, !present[w], present[w])
			}
		}
	}
}

func TestBuildSerial(t *testing.T) {
	src := testGraph()
	checkIndex(t, buildSerial(src), src)
}

func TestBuildSharded(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		src := &mockSharded{mockSource: *testGraph(), shards: shards}
		checkIndex(t, Build(src), &src.mockSource)
	}
}

func TestBuildEmpty(t *testing.T) {
	x := Build(&mockSource{})
	if x.NumNodes() != 0 || x.NumEdges() != 0 || x.NumSources() != 0 {
		t.Fatalf("empty build: nodes=%d edges=%d srcs=%d", x.NumNodes(), x.NumEdges(), x.NumSources())
	}
}

func TestAttachWeights(t *testing.T) {
	src := testGraph()
	x := buildSerial(src).AttachWeights(func(u, v uint64) uint64 { return u*1000 + v })
	for _, u := range src.nodes {
		d, _ := x.DenseOf(u)
		ws := x.Weights(d)
		for i, dv := range x.Succ(d) {
			if want := u*1000 + x.IDOf(dv); ws[i] != want {
				t.Fatalf("weight(%d,%d) = %d, want %d", u, x.IDOf(dv), ws[i], want)
			}
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	src := testGraph()
	x := buildSerial(src)
	before := x.MemoryBytes()
	if before == 0 {
		t.Fatal("MemoryBytes = 0")
	}
	x.HasEdgeDense(0, 0) // forces the sorted copy
	if x.MemoryBytes() <= before {
		t.Fatal("sorted copy not accounted")
	}
}
