package csr

import (
	"runtime"
	"sync"
)

// Build compiles s into an Index. When s is a ShardedSource the
// adjacency scans — the probe-heavy part — run in parallel, one worker
// per partition, and successors are appended into one flat reusable
// buffer per partition so the build performs a constant number of
// allocations per shard rather than one per node. The dictionary and
// edge translation are a single sequential pass over the materialized
// buffers, so dense-id assignment is deterministic for a given source:
// source nodes first, in partition-then-node order, then
// destination-only nodes in first-appearance order.
//
// Build only reads s. Run it on a frozen view and it never blocks
// writers for more than one node's successor copy.
func Build(s Source) *Index {
	if sh, ok := s.(ShardedSource); ok {
		return buildSharded(sh)
	}
	return buildSerial(s)
}

// buildSerial is the generic path for stores without a partitioned
// node set: the same count → prefix-sum → fill structure, sequential.
func buildSerial(s Source) *Index {
	var nodes []uint64
	s.ForEachNode(func(u uint64) bool {
		nodes = append(nodes, u)
		return true
	})
	x := newIndexFor(nodes, int(s.NumEdges()))

	// Count pass → prefix sum over the source nodes.
	for i, u := range nodes {
		deg := 0
		s.ForEachSuccessor(u, func(uint64) bool { deg++; return true })
		x.offsets[i+1] = x.offsets[i] + uint32(deg)
	}
	// Fill pass: translate successors, assigning dense ids to
	// destination-only nodes as they first appear.
	x.edges = make([]int32, x.offsets[len(nodes)])
	pos := 0
	for _, u := range nodes {
		s.ForEachSuccessor(u, func(v uint64) bool {
			x.edges[pos] = x.internDest(v)
			pos++
			return true
		})
	}
	x.finishOffsets()
	return x
}

// shardScan is one partition's materialized slice of the graph: its
// node set and every node's successors concatenated into one flat
// buffer (counts delimit the per-node runs).
type shardScan struct {
	nodes  []uint64
	counts []int32
	succs  []uint64
}

func buildSharded(s ShardedSource) *Index {
	p := s.ShardCount()
	scans := make([]shardScan, p)
	perShardCap := int(s.NumEdges())/p + 16

	// Phase 1, parallel: scan every partition's adjacency into flat
	// buffers. Each AppendSuccessors takes the owning shard's read lock
	// for one node only, so a concurrent writer is never stalled for
	// longer than a single adjacency copy.
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	if workers <= 1 {
		for si := 0; si < p; si++ {
			scans[si] = scanShard(s, si, perShardCap)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range next {
					scans[si] = scanShard(s, si, perShardCap)
				}
			}()
		}
		for si := 0; si < p; si++ {
			next <- si
		}
		close(next)
		wg.Wait()
	}

	// Phase 2, sequential: dictionary + translation over the buffers.
	// Source nodes take dense ids [0, srcs) in partition-then-node
	// order; destinations intern behind them as they first appear.
	var total int
	var nsrc int
	for si := range scans {
		nsrc += len(scans[si].nodes)
		total += len(scans[si].succs)
	}
	nodes := make([]uint64, 0, nsrc)
	for si := range scans {
		nodes = append(nodes, scans[si].nodes...)
	}
	x := newIndexFor(nodes, total)
	x.edges = make([]int32, total)
	pos := 0
	di := 0
	for si := range scans {
		sc := &scans[si]
		off := 0
		for i := range sc.nodes {
			n := int(sc.counts[i])
			for _, v := range sc.succs[off : off+n] {
				x.edges[pos] = x.internDest(v)
				pos++
			}
			off += n
			x.offsets[di+1] = uint32(pos)
			di++
		}
	}
	x.finishOffsets()
	return x
}

func scanShard(s ShardedSource, si, succCap int) shardScan {
	nodes := s.ShardNodes(si)
	sc := shardScan{
		nodes:  nodes,
		counts: make([]int32, len(nodes)),
		succs:  make([]uint64, 0, succCap),
	}
	for i, u := range nodes {
		n0 := len(sc.succs)
		sc.succs = s.AppendSuccessors(u, sc.succs)
		sc.counts[i] = int32(len(sc.succs) - n0)
	}
	return sc
}

// newIndexFor seeds an index with the source-node dictionary: nodes
// take dense ids [0, len(nodes)) in order. edgeHint sizes the
// dictionary for the destinations still to intern.
func newIndexFor(nodes []uint64, edgeHint int) *Index {
	x := &Index{
		ids:     append([]uint64(nil), nodes...),
		dense:   make(map[uint64]int32, len(nodes)+edgeHint/4),
		srcs:    int32(len(nodes)),
		offsets: make([]uint32, len(nodes)+1),
	}
	for i, u := range nodes {
		x.dense[u] = int32(i)
	}
	return x
}

// internDest resolves v's dense id, assigning the next one past the
// sources when v appears for the first time.
func (x *Index) internDest(v uint64) int32 {
	if d, ok := x.dense[v]; ok {
		return d
	}
	d := int32(len(x.ids))
	x.ids = append(x.ids, v)
	x.dense[v] = d
	return d
}

// finishOffsets pads the offsets array out to the full node count:
// destination-only nodes (dense ids ≥ srcs) all carry empty ranges.
func (x *Index) finishOffsets() {
	if len(x.ids)+1 == len(x.offsets) {
		return
	}
	full := make([]uint32, len(x.ids)+1)
	copy(full, x.offsets)
	e := x.offsets[len(x.offsets)-1]
	for i := len(x.offsets); i < len(full); i++ {
		full[i] = e
	}
	x.offsets = full
}
