package wal

import (
	"testing"

	"cuckoograph/internal/core"
)

// TestStatsCounters pins the observability export: the counters behind
// /metrics must track appends, records, ops, group commits, fsyncs and
// rotations through a realistic write sequence.
func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if st := w.Stats(); st.Appends != 0 || st.Records != 0 || st.Ops != 0 {
		t.Fatalf("fresh wal stats = %+v", st)
	}

	for i := uint64(0); i < 10; i++ {
		if err := w.Append(OpInsert, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	batch := make(core.Batch, 25)
	for i := range batch {
		batch[i] = core.Op{Kind: core.OpInsert, U: 100, V: uint64(200 + i)}
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}

	st := w.Stats()
	if st.Appends != 11 {
		t.Fatalf("Appends = %d, want 11", st.Appends)
	}
	if st.Ops != 35 {
		t.Fatalf("Ops = %d, want 35", st.Ops)
	}
	if st.Records < 11 {
		t.Fatalf("Records = %d, want >= 11", st.Records)
	}
	if st.GroupCommits == 0 {
		t.Fatal("GroupCommits = 0 after acknowledged appends")
	}
	if st.Syncs == 0 {
		t.Fatal("Syncs = 0 under SyncAlways")
	}
	if st.Bytes == 0 {
		t.Fatal("Bytes = 0 after writes")
	}
	if st.PendingBytes != 0 {
		t.Fatalf("PendingBytes = %d after acknowledged appends", st.PendingBytes)
	}
	if st.Failed {
		t.Fatal("Failed on a healthy wal")
	}

	seg := st.Segment
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.Rotations != 1 {
		t.Fatalf("Rotations = %d, want 1", st.Rotations)
	}
	if st.Segment != seg+1 {
		t.Fatalf("Segment = %d, want %d", st.Segment, seg+1)
	}
}

// TestStatsAsyncPending: under SyncAsync the acknowledged-but-unwritten
// suffix is visible as PendingBytes until a Sync drains it.
func TestStatsAsyncPending(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncAsync})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := uint64(0); i < 100; i++ {
		if err := w.Append(OpInsert, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appends != 100 || st.Ops != 100 {
		t.Fatalf("async stats = %+v", st)
	}
	if st.PendingBytes != 0 {
		t.Fatalf("PendingBytes = %d after Sync", st.PendingBytes)
	}
	if st.Syncs == 0 {
		t.Fatal("Syncs = 0 after explicit Sync")
	}
}
