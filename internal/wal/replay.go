package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/vfs"
)

// ReplayStats summarises one replay pass.
type ReplayStats struct {
	// Segments is how many segment files were read.
	Segments int
	// Records is how many intact ops were delivered, counting every op
	// expanded out of a batch record.
	Records uint64
	// BatchRecords is how many OpBatch frames were decoded.
	BatchRecords uint64
	// TornBytes is the size of the dropped torn tail, zero for a log
	// that was cleanly closed.
	TornBytes int64
}

// Replay streams every intact record in segments with index >= fromSeg,
// in log order, to fn. A torn tail on the newest segment — the residue
// of a crash mid-write — is dropped and counted in TornBytes; damage
// anywhere else fails with an error matching core.ErrCorrupt that
// carries the segment file and byte offset. Use fromSeg 0 to replay the
// whole directory, or a checkpoint's cut segment to replay only the
// records the snapshot does not cover.
func Replay(dir string, fromSeg uint64, fn func(op Op, u, v uint64) error) (ReplayStats, error) {
	return ReplayFS(vfs.OS, dir, fromSeg, fn)
}

// ReplayFS is Replay on an arbitrary filesystem — the entry point for
// crash-simulation harnesses that reconstruct a directory elsewhere.
func ReplayFS(fsys vfs.FS, dir string, fromSeg uint64, fn func(op Op, u, v uint64) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(fsys, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return stats, nil
		}
		return stats, err
	}
	for i, s := range segs {
		if s.index < fromSeg {
			continue
		}
		last := i == len(segs)-1
		valid, n, batches, err := scanSegment(fsys, s.path, s.index, last, fn)
		if err != nil {
			return stats, err
		}
		stats.Segments++
		stats.Records += n
		stats.BatchRecords += batches
		if last {
			if fi, err := fsys.Stat(s.path); err == nil && fi.Size() > valid {
				stats.TornBytes = fi.Size() - valid
			}
		}
	}
	return stats, nil
}

// scanSegment reads one segment, delivering ops to fn (which may be
// nil to just validate). It returns the byte length of the intact
// prefix, the delivered op count and the batch-record count. With
// tolerateTail set — correct only for the newest segment — damage that
// looks like a crash mid-write is a torn tail and ends the scan cleanly
// at the last intact record. A tear is recognised when the bad record
// physically reaches end-of-file: the read hit EOF inside the record, a
// complete-but-CRC-failing frame ends exactly at EOF (the final write's
// bytes exist but lie), the whole remaining region fits inside one
// single-op frame, or everything after the failed record is zero bytes
// — the residue of a filesystem that extended the file before the
// data of a large (batch or group-commit) write landed; an all-zero
// region cannot hold acknowledged records, because every record starts
// with a nonzero length byte. Damage followed by further intact
// (nonzero) data cannot be a tear, so even on the newest segment it is
// reported as corruption rather than silently dropping the
// acknowledged records after it. Batch ops are validated whole before
// any of them is delivered: a record never applies partially.
func scanSegment(fsys vfs.FS, path string, index uint64, tolerateTail bool, fn func(op Op, u, v uint64) error) (int64, uint64, uint64, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	fileSize := fi.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	name := filepath.Base(path)

	corrupt := func(off int64, detail string, cause error) error {
		return &core.CorruptError{Source: name, Offset: off, Detail: detail, Err: cause}
	}

	// headerTear classifies a header that failed validation on the
	// newest segment: when the file is a prefix of the expected header
	// followed by nothing but zeros, the crash struck the segment's
	// create — the file carries no records and is recreated whole by
	// the next open. Landed non-header bytes refuse the tear: they mean
	// the header validated once and was damaged later, which is
	// corruption, not a crash artifact.
	headerTear := func() (bool, error) {
		var want [segHeaderSize]byte
		binary.LittleEndian.PutUint32(want[0:], segMagic)
		want[4] = segVersion
		binary.LittleEndian.PutUint64(want[5:], index)
		var got [segHeaderSize]byte
		n, err := f.ReadAt(got[:], 0)
		if err != nil && err != io.EOF {
			return false, err
		}
		match := 0
		for match < n && got[match] == want[match] {
			match++
		}
		return zeroToEOF(f, int64(match), fileSize)
	}
	badHeader := func(off int64, detail string) (int64, uint64, uint64, error) {
		if tolerateTail {
			torn, terr := headerTear()
			if terr != nil {
				return 0, 0, 0, fmt.Errorf("wal: classify header of %s: %w", name, terr)
			}
			if torn {
				return 0, 0, 0, nil
			}
		}
		return 0, 0, 0, corrupt(off, detail, nil)
	}

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if tolerateTail {
			// A crash can even tear the header write of a fresh segment.
			return 0, 0, 0, nil
		}
		return 0, 0, 0, corrupt(0, "segment header truncated", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic {
		return badHeader(0, "not a WAL segment")
	}
	if hdr[4] != segVersion {
		return badHeader(4, fmt.Sprintf("unsupported WAL version %d", hdr[4]))
	}
	if got := binary.LittleEndian.Uint64(hdr[5:]); got != index {
		return badHeader(5, fmt.Sprintf("segment claims index %d, file named %d", got, index))
	}

	// The legacy tear window: garbage entirely within one single-op
	// frame of end-of-file is dropped even when it does not read as a
	// truncation.
	const maxSingleFrame = frameOverhead + maxPayload
	valid := int64(segHeaderSize)
	var records, batches uint64
	var payload []byte // reused; grows to the largest record seen
	var scratch []core.Op
	for {
		length, n, err := readUvarintCounted(br)
		if err == io.EOF && n == 0 {
			return valid, records, batches, nil // clean end on a record boundary
		}
		// bad classifies a failed record. frameEnd is the record's byte
		// end when the whole frame was read, -1 when the failure struck
		// earlier; truncated marks reads that hit EOF inside the record;
		// crcFailed marks the one failure mode that proves the frame's
		// bytes never landed as written.
		bad := func(frameEnd int64, truncated, crcFailed bool, detail string, cause error) (int64, uint64, uint64, error) {
			if tolerateTail {
				if truncated || frameEnd == fileSize || fileSize-valid <= maxSingleFrame {
					return valid, records, batches, nil
				}
				// Large writes (batch records, group commits) tear big:
				// when the filesystem extended the file but the data
				// never landed, the tail past the failed frame is zeros,
				// and zeros cannot encode an acknowledged record. The
				// failed frame itself may be skipped over only when its
				// CRC failed — a CRC-valid frame with a malformed body
				// was durably written exactly as some writer intended,
				// and silently dropping it would bury acknowledged data;
				// without a CRC verdict the zero check must start at the
				// record head, so any landed (nonzero) bytes refuse the
				// tear.
				from := valid
				if crcFailed && frameEnd > 0 {
					from = frameEnd
				}
				allZero, zerr := zeroToEOF(f, from, fileSize)
				if zerr != nil {
					return 0, 0, 0, fmt.Errorf("wal: classify tail of %s: %w", name, zerr)
				}
				if allZero {
					return valid, records, batches, nil
				}
			}
			return 0, 0, 0, corrupt(valid, detail, cause)
		}
		if err != nil {
			return bad(-1, err == io.EOF || err == io.ErrUnexpectedEOF, false, "record length truncated", err)
		}
		if length == 0 || length > maxBatchPayload {
			return bad(-1, false, false, fmt.Sprintf("implausible record length %d", length), nil)
		}
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		p := payload[:length]
		if _, err := io.ReadFull(br, p); err != nil {
			return bad(-1, true, false, "record payload truncated", err)
		}
		var crcb [crcSize]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return bad(-1, true, false, "record checksum truncated", err)
		}
		frameEnd := valid + int64(n) + int64(length) + crcSize
		if binary.LittleEndian.Uint32(crcb[:]) != crc32.Checksum(p, castagnoli) {
			return bad(frameEnd, false, true, "checksum mismatch", nil)
		}
		switch op := Op(p[0]); op {
		case OpInsert, OpDelete:
			u, un := core.Uvarint(p[1:])
			if un <= 0 {
				return bad(frameEnd, false, false, "bad u varint", nil)
			}
			v, vn := core.Uvarint(p[1+un:])
			if vn <= 0 || 1+un+vn != int(length) {
				return bad(frameEnd, false, false, "bad v varint", nil)
			}
			if fn != nil {
				if err := fn(op, u, v); err != nil {
					return 0, 0, 0, err
				}
			}
			records++
		case OpBatch:
			ops, ok := decodeBatchPayload(p[1:], scratch[:0])
			if !ok {
				return bad(frameEnd, false, false, "malformed batch record", nil)
			}
			scratch = ops[:0]
			if fn != nil {
				for _, o := range ops {
					if err := fn(Op(o.Kind), o.U, o.V); err != nil {
						return 0, 0, 0, err
					}
				}
			}
			records += uint64(len(ops))
			batches++
		default:
			return bad(frameEnd, false, false, fmt.Sprintf("unknown op %d", p[0]), nil)
		}
		valid = frameEnd
	}
}

// zeroToEOF reports whether every byte of f in [from, end) is zero.
// It reads through the file descriptor directly (ReadAt), independent
// of the scanner's buffered position. An I/O failure is returned as an
// error — a read that could not happen proves nothing about the bytes,
// and must not be mistaken for a corruption verdict.
func zeroToEOF(f io.ReaderAt, from, end int64) (bool, error) {
	buf := make([]byte, 64<<10)
	for off := from; off < end; {
		n, err := f.ReadAt(buf[:min(int64(len(buf)), end-off)], off)
		for _, b := range buf[:n] {
			if b != 0 {
				return false, nil
			}
		}
		off += int64(n)
		if err == io.EOF && off >= end {
			return true, nil
		}
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// decodeBatchPayload parses the body of an OpBatch record (everything
// after the op tag) into out, validating it completely: the declared op
// count must match the encoded ops exactly and every op must be an
// insert or delete. It reports ok=false on any malformation so the
// caller can reject the record before applying a single op.
func decodeBatchPayload(body []byte, out []core.Op) ([]core.Op, bool) {
	count, cn := core.Uvarint(body)
	if cn <= 0 || count == 0 || count > maxBatchOps {
		return nil, false
	}
	body = body[cn:]
	for i := uint64(0); i < count; i++ {
		if len(body) == 0 {
			return nil, false
		}
		kind := core.OpKind(body[0])
		if kind != core.OpInsert && kind != core.OpDelete {
			return nil, false
		}
		u, un := core.Uvarint(body[1:])
		if un <= 0 {
			return nil, false
		}
		v, vn := core.Uvarint(body[1+un:])
		if vn <= 0 {
			return nil, false
		}
		body = body[1+un+vn:]
		out = append(out, core.Op{Kind: kind, U: u, V: v})
	}
	if len(body) != 0 {
		return nil, false
	}
	return out, true
}

// readUvarintCounted decodes a uvarint and reports how many bytes it
// consumed, so the scanner can keep exact offsets.
func readUvarintCounted(br *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, i, err
		}
		if i == core.MaxVarintLen64 {
			return 0, i + 1, fmt.Errorf("wal: uvarint overflows 64 bits")
		}
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// RecoverStats summarises one recovery.
type RecoverStats struct {
	// Snapshot is the checkpoint file that anchored recovery, empty if
	// recovery replayed the log from its beginning.
	Snapshot string
	// SnapshotSeg is the snapshot's cut segment: replay started there.
	SnapshotSeg uint64
	// Replay covers the log-tail pass.
	Replay ReplayStats
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// Recover rebuilds a sharded graph from dir: load the newest checkpoint
// snapshot, if any, then replay the log tail the snapshot does not
// cover. An empty or missing directory yields an empty graph. The
// returned graph has no WAL attached; callers typically Open the same
// directory next and SetWAL it.
func Recover(dir string, cfg sharded.Config) (*sharded.Graph, RecoverStats, error) {
	return RecoverFS(vfs.OS, dir, cfg)
}

// RecoverFS is Recover on an arbitrary filesystem.
func RecoverFS(fsys vfs.FS, dir string, cfg sharded.Config) (*sharded.Graph, RecoverStats, error) {
	var stats RecoverStats
	start := time.Now()
	cfg.WAL = nil

	snap, seg, err := newestCheckpoint(fsys, dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, stats, err
	}
	var g *sharded.Graph
	if snap != "" {
		f, err := fsys.OpenFile(snap, os.O_RDONLY, 0)
		if err != nil {
			return nil, stats, err
		}
		g, err = sharded.Load(f, cfg)
		f.Close()
		if err != nil {
			return nil, stats, fmt.Errorf("wal: checkpoint %s: %w", filepath.Base(snap), err)
		}
		stats.Snapshot, stats.SnapshotSeg = snap, seg
	} else {
		g = sharded.New(cfg)
	}

	// Replay through the batch path: chunks preserve log order per
	// source node (the order that matters) while amortizing shard locks
	// and cell lookups — recovery is itself a bulk ingest.
	c := core.NewChunker(sharded.LoadBatchSize, func(b core.Batch) { g.ApplyBatch(b) })
	stats.Replay, err = ReplayFS(fsys, dir, seg, func(op Op, u, v uint64) error {
		switch op {
		case OpInsert:
			c.Insert(u, v)
		case OpDelete:
			c.Delete(u, v)
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	c.Flush()
	stats.Elapsed = time.Since(start)
	return g, stats, nil
}

// Checkpoint writes a consistent snapshot of g into the WAL directory
// and compacts the log: the snapshot is cut against a segment rotation
// (see sharded.Graph.Checkpoint for why the cut is exact), fsynced and
// atomically renamed into place, and only then are the superseded
// segments and older checkpoints deleted — so a crash at any point
// leaves either the old recovery state or the new one, never neither.
// It returns the checkpoint file path.
func Checkpoint(g *sharded.Graph, w *WAL) (string, error) {
	dir, fsys := w.Dir(), w.FS()
	tmp, err := vfs.CreateTemp(fsys, dir, "checkpoint-*.tmp")
	if err != nil {
		return "", err
	}
	defer fsys.Remove(tmp.Name()) // no-op after the rename succeeds

	var cut uint64
	err = g.Checkpoint(tmp, func() error {
		var rerr error
		cut, rerr = w.Rotate()
		return rerr
	})
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}

	final := checkpointPath(dir, cut)
	if err := fsys.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	if err := syncDir(fsys, dir); err != nil {
		return "", err
	}
	if err := w.RemoveSegmentsBefore(cut); err != nil {
		return final, err
	}
	if err := removeCheckpointsBefore(fsys, dir, cut); err != nil {
		return final, err
	}
	return final, nil
}

func checkpointPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", checkpointPrefix, seg, checkpointSuffix))
}

// newestCheckpoint returns the path and cut segment of the newest
// checkpoint snapshot in dir, or ("", 0, nil) when there is none.
func newestCheckpoint(fsys vfs.FS, dir string) (string, uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	var best string
	var bestSeg uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
			continue
		}
		seg, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix), 10, 64)
		if err != nil {
			continue
		}
		if best == "" || seg > bestSeg {
			best, bestSeg = filepath.Join(dir, name), seg
		}
	}
	return best, bestSeg, nil
}

func removeCheckpointsBefore(fsys vfs.FS, dir string, seg uint64) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	var removed bool
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
			continue
		}
		s, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix), 10, 64)
		if err != nil || s >= seg {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(fsys, dir)
	}
	return nil
}
