package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cuckoograph/internal/core"
)

// corpusSeeds are the checked-in fuzz seeds for the segment scanner:
// record streams a healthy log produces, plus the damage shapes the
// tear/corruption classifier has to tell apart. Each value is the
// segment body — everything after the 13-byte header, which the fuzz
// target prepends.
func corpusSeeds() map[string][]byte {
	single := func(op Op, u, v uint64) []byte { return encodeFrame(nil, op, u, v) }
	batch := func(ops core.Batch) []byte {
		b, err := encodeBatchFrame(nil, ops)
		if err != nil {
			panic(err)
		}
		return b
	}
	healthy := append(single(OpInsert, 1, 2), single(OpDelete, 1, 2)...)
	healthy = append(healthy, single(OpInsert, 1<<40, 9999)...)
	mixed := append(batch(core.Batch{}.Insert(1, 2).Insert(3, 4).Delete(1, 2)), single(OpInsert, 7, 8)...)
	bad := single(OpInsert, 5, 6)
	bad[len(bad)-1] ^= 0xFF // CRC broken on the final (tearable) record
	midway := append(append([]byte{}, bad...), single(OpInsert, 9, 10)...)
	torn := single(OpInsert, 11, 12)
	torn = append(healthy, torn[:len(torn)-3]...) // record cut mid-write
	return map[string][]byte{
		"healthy-singles": healthy,
		"batch-then-op":   mixed,
		"crc-tail":        bad,
		"crc-midway":      midway, // damage before intact data: corruption, not a tear
		"torn-tail":       torn,
		"zero-length":     {0x00},
		"huge-length":     binary.AppendUvarint(nil, 1<<40),
		"empty":           {},
	}
}

// FuzzReplaySegment throws arbitrary bytes at the WAL record framing —
// the path that parses whatever a crash left on disk. Properties: the
// scanner never panics, every failure surfaces as core.ErrCorrupt (not
// a raw parse error), and on success the delivered op count matches the
// stats — replay never silently drops or double-delivers an op.
func FuzzReplaySegment(f *testing.F) {
	for _, seed := range corpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		var hdr [segHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], segMagic)
		hdr[4] = segVersion
		binary.LittleEndian.PutUint64(hdr[5:], 1)
		if err := os.WriteFile(segmentPath(dir, 1), append(hdr[:], body...), 0o644); err != nil {
			t.Fatal(err)
		}
		var delivered uint64
		stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
			if op != OpInsert && op != OpDelete {
				t.Fatalf("replay delivered unknown op %d", op)
			}
			delivered++
			return nil
		})
		if err != nil {
			if !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("replay failed with a non-corrupt error: %v", err)
			}
			return
		}
		if delivered != stats.Records {
			t.Fatalf("delivered %d ops but stats claim %d", delivered, stats.Records)
		}
		if stats.Segments != 1 {
			t.Fatalf("scanned %d segments, want 1", stats.Segments)
		}
		if stats.TornBytes < 0 || stats.TornBytes > int64(len(body)) {
			t.Fatalf("implausible torn byte count %d for %d-byte body", stats.TornBytes, len(body))
		}
	})
}

// TestGenerateFuzzCorpus (re)writes the checked-in seed corpus under
// testdata/fuzz in the native go-fuzz corpus encoding. It is a
// generator, not a test: run
//
//	CGFUZZ_GEN=1 go test ./internal/wal/ -run TestGenerateFuzzCorpus
//
// after changing corpusSeeds and commit the result.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("CGFUZZ_GEN") == "" {
		t.Skip("set CGFUZZ_GEN=1 to regenerate the checked-in corpus")
	}
	writeCorpus(t, filepath.Join("testdata", "fuzz", "FuzzReplaySegment"), corpusSeeds())
}

// writeCorpus emits one go-fuzz "v1" corpus file per seed.
func writeCorpus(t *testing.T, dir string, seeds map[string][]byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
