// Log shipping: reading an open WAL while it is being written.
//
// A Reader streams whole CRC-validated frame chunks from a Position up
// to the durable tail — the leader side of replication ships those raw
// bytes to followers, which decode them with AppendChunkOps and apply
// the ops through the sharded engine. A Pin is the retention contract
// that makes this safe against checkpoints: RemoveSegmentsBefore never
// deletes a segment at or above the lowest pinned index, so a reader
// whose position is pinned can never have its segment unlinked out
// from under it.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"cuckoograph/internal/core"
	"cuckoograph/internal/vfs"
)

// Position addresses one byte of the log: a segment index and a byte
// offset within that segment's file. The zero Position means "nothing
// held" — segment indexes start at 1.
type Position struct {
	Seg uint64
	Off int64
}

// IsZero reports whether p is the zero position.
func (p Position) IsZero() bool { return p.Seg == 0 }

// Less orders positions by (segment, offset).
func (p Position) Less(q Position) bool {
	return p.Seg < q.Seg || (p.Seg == q.Seg && p.Off < q.Off)
}

// SegmentDataStart is the offset of the first record in any segment
// file — the byte after the fixed header. A position at a fresh
// checkpoint cut is {cut, SegmentDataStart}.
const SegmentDataStart = segHeaderSize

// ErrNoData reports a reader caught up with the durable tail: nothing
// to return now, more may arrive later.
var ErrNoData = errors.New("wal: no data")

// ErrCompacted reports a position below the retained log prefix (its
// segment has been checkpointed away) or otherwise unservable; a
// shipper receiving it must fall back to a full snapshot.
var ErrCompacted = errors.New("wal: position compacted")

// Pin holds a log-retention floor. While held, RemoveSegmentsBefore
// will not delete any segment with index >= the pin's segment, no
// matter what cut a checkpoint requests. Replication pins each
// connected follower at its acknowledged segment and advances the pin
// as acks arrive.
type Pin struct {
	w   *WAL
	seg uint64 // guarded by w.mu
}

// Pin registers a retention floor at seg and returns the handle.
// Pinning segment 0 retains the entire log.
func (w *WAL) Pin(seg uint64) *Pin {
	p := &Pin{w: w, seg: seg}
	w.mu.Lock()
	if w.pins == nil {
		w.pins = make(map[*Pin]struct{})
	}
	w.pins[p] = struct{}{}
	w.mu.Unlock()
	return p
}

// Move advances the pin's floor to seg. A floor never moves backwards:
// a stale ack cannot re-extend retention.
func (p *Pin) Move(seg uint64) {
	p.w.mu.Lock()
	if seg > p.seg {
		p.seg = seg
	}
	p.w.mu.Unlock()
}

// Seg returns the pin's current floor segment.
func (p *Pin) Seg() uint64 {
	p.w.mu.Lock()
	defer p.w.mu.Unlock()
	return p.seg
}

// Release removes the pin; retention reverts to the checkpoint cut.
// Releasing twice is harmless.
func (p *Pin) Release() {
	p.w.mu.Lock()
	delete(p.w.pins, p)
	p.w.mu.Unlock()
}

// RetentionFloor reports the lowest pinned segment and whether any pin
// is held.
func (w *WAL) RetentionFloor() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	floor, held := uint64(0), false
	for p := range w.pins {
		if !held || p.seg < floor {
			floor, held = p.seg, true
		}
	}
	return floor, held
}

// TailPosition returns the durable tail: the position one past the
// last byte a group commit has written. Like Segment it waits out an
// in-flight commit, so the bytes below the returned position are fully
// on the file (no frame ever straddles the tail — a group commit
// advances the size only after its whole write lands).
func (w *WAL) TailPosition() Position {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.flushing {
		w.cond.Wait()
	}
	return Position{Seg: w.seg, Off: w.size}
}

// readerChunkBytes bounds one Reader.Next chunk; a single frame larger
// than this is still returned whole.
const readerChunkBytes = 256 << 10

// Reader streams raw framed records from the WAL's directory, starting
// at a Position and advancing across sealed segments up to the durable
// tail. It validates every frame's CRC before returning it, so a chunk
// handed to the network is exactly the bytes an fsync acknowledged.
//
// A Reader does not pin its own position — callers that must survive
// concurrent checkpoints (replication does) hold a Pin at or below the
// reader's segment. A Reader is not safe for concurrent use.
type Reader struct {
	w    *WAL
	pos  Position
	f    vfs.File
	fSeg uint64
	buf  []byte
}

// OpenReader positions a reader at pos. It returns ErrCompacted when
// the position's segment has been deleted by compaction, when the
// position is the zero position (a bootstrap request), or when the
// position does not address real log bytes — in every such case the
// caller should ship a snapshot instead.
func (w *WAL) OpenReader(pos Position) (*Reader, error) {
	if pos.IsZero() {
		return nil, ErrCompacted
	}
	if pos.Off < SegmentDataStart {
		pos.Off = SegmentDataStart
	}
	tail := w.TailPosition()
	if tail.Less(pos) {
		// Claims bytes this log never wrote (a follower of some other
		// leader, or a log reset): not servable incrementally.
		return nil, ErrCompacted
	}
	r := &Reader{w: w, pos: pos}
	if err := r.open(); err != nil {
		return nil, err
	}
	return r, nil
}

// Pos returns the reader's current position: the first byte Next would
// return.
func (r *Reader) Pos() Position { return r.pos }

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// open ensures r.f is the file for r.pos.Seg, validating its header.
func (r *Reader) open() error {
	if r.f != nil && r.fSeg == r.pos.Seg {
		return nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	f, err := r.w.fs.OpenFile(segmentPath(r.w.dir, r.pos.Seg), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrCompacted
		}
		return err
	}
	var hdr [segHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: read header of segment %d: %w", r.pos.Seg, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic || hdr[4] != segVersion ||
		binary.LittleEndian.Uint64(hdr[5:]) != r.pos.Seg {
		f.Close()
		return fmt.Errorf("wal: segment %d: bad header", r.pos.Seg)
	}
	r.f, r.fSeg = f, r.pos.Seg
	return nil
}

// Next returns the next chunk of whole, CRC-valid frames along with
// the position of its first byte, advancing the reader past it. The
// chunk aliases the reader's internal buffer and is valid until the
// next call. It returns ErrNoData when caught up with the durable
// tail and ErrCompacted when the log prefix under the reader has been
// deleted (possible only for unpinned readers).
func (r *Reader) Next() ([]byte, Position, error) {
	for {
		tail := r.w.TailPosition()
		if tail.Seg < r.pos.Seg {
			return nil, Position{}, fmt.Errorf("wal: reader at segment %d past tail segment %d", r.pos.Seg, tail.Seg)
		}
		if err := r.open(); err != nil {
			return nil, Position{}, err
		}
		sealed := r.pos.Seg < tail.Seg
		var limit int64
		if sealed {
			fi, err := r.f.Stat()
			if err != nil {
				return nil, Position{}, err
			}
			limit = fi.Size()
		} else {
			limit = tail.Off
		}
		if r.pos.Off >= limit {
			if !sealed {
				return nil, Position{}, ErrNoData
			}
			if err := r.nextSegment(); err != nil {
				return nil, Position{}, err
			}
			continue
		}
		return r.read(limit - r.pos.Off)
	}
}

// read returns up to readerChunkBytes of whole frames from the current
// segment, where avail bytes of durable data remain past r.pos.Off.
func (r *Reader) read(avail int64) ([]byte, Position, error) {
	n := int(min(avail, readerChunkBytes))
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	b := r.buf[:n]
	if _, err := r.f.ReadAt(b, r.pos.Off); err != nil {
		return nil, Position{}, fmt.Errorf("wal: read segment %d: %w", r.pos.Seg, err)
	}
	valid, nextFrame, err := frameSpan(b)
	if err != nil {
		return nil, Position{}, fmt.Errorf("wal: segment %d offset %d: %w", r.pos.Seg, r.pos.Off, err)
	}
	if valid == 0 {
		// The first frame is larger than the chunk. Its size is known
		// from the length prefix; a frame reaching past the durable
		// limit cannot happen (commits advance the tail only after the
		// whole write), so that reads as damage.
		if nextFrame == 0 || int64(nextFrame) > avail {
			return nil, Position{}, fmt.Errorf("wal: segment %d offset %d: frame straddles durable tail", r.pos.Seg, r.pos.Off)
		}
		if cap(r.buf) < nextFrame {
			r.buf = make([]byte, nextFrame)
		}
		b = r.buf[:nextFrame]
		if _, err := r.f.ReadAt(b, r.pos.Off); err != nil {
			return nil, Position{}, fmt.Errorf("wal: read segment %d: %w", r.pos.Seg, err)
		}
		if valid, _, err = frameSpan(b); err != nil || valid != nextFrame {
			return nil, Position{}, fmt.Errorf("wal: segment %d offset %d: oversized frame failed validation: %v", r.pos.Seg, r.pos.Off, err)
		}
	}
	start := r.pos
	r.pos.Off += int64(valid)
	return b[:valid], start, nil
}

// nextSegment advances past an exhausted sealed segment. Segment
// indexes are contiguous, so a missing successor means compaction
// removed it — an unpinned reader fell below the retention floor.
func (r *Reader) nextSegment() error {
	next := r.pos.Seg + 1
	if _, err := r.w.fs.Stat(segmentPath(r.w.dir, next)); err != nil {
		if os.IsNotExist(err) {
			return ErrCompacted
		}
		return err
	}
	r.pos = Position{Seg: next, Off: SegmentDataStart}
	return nil
}

// frameSpan walks data and returns the byte length of its longest
// prefix of whole, CRC-valid frames. A complete frame that fails
// validation is an error. A trailing partial frame is not an error:
// its total encoded size is returned (0 when even the length prefix is
// incomplete) so the caller can fetch enough bytes for it.
func frameSpan(data []byte) (valid, nextFrame int, err error) {
	off := 0
	for off < len(data) {
		length, n := core.Uvarint(data[off:])
		if n <= 0 {
			if len(data)-off >= core.MaxVarintLen64 {
				return 0, 0, errors.New("bad record length varint")
			}
			return off, 0, nil
		}
		if length == 0 || length > maxBatchPayload {
			return 0, 0, fmt.Errorf("implausible record length %d", length)
		}
		total := n + int(length) + crcSize
		if off+total > len(data) {
			return off, total, nil
		}
		p := data[off+n : off+n+int(length)]
		if binary.LittleEndian.Uint32(data[off+n+int(length):]) != crc32.Checksum(p, castagnoli) {
			return 0, 0, errors.New("checksum mismatch")
		}
		off += total
	}
	return off, 0, nil
}

// AppendChunkOps decodes every record in a chunk of whole frames — the
// payload of one replication push — appending the ops to out in log
// order. Each record is validated completely (length plausibility,
// CRC, full body decode) before its ops are appended; on error the
// returned slice may hold a partial decode and must be discarded.
func AppendChunkOps(data []byte, out []core.Op) ([]core.Op, error) {
	off := 0
	for off < len(data) {
		length, n := core.Uvarint(data[off:])
		if n <= 0 || length == 0 || length > maxBatchPayload {
			return out, fmt.Errorf("wal: chunk offset %d: bad record length", off)
		}
		total := n + int(length) + crcSize
		if off+total > len(data) {
			return out, fmt.Errorf("wal: chunk offset %d: truncated frame", off)
		}
		p := data[off+n : off+n+int(length)]
		if binary.LittleEndian.Uint32(data[off+n+int(length):off+total]) != crc32.Checksum(p, castagnoli) {
			return out, fmt.Errorf("wal: chunk offset %d: checksum mismatch", off)
		}
		switch op := Op(p[0]); op {
		case OpInsert, OpDelete:
			u, un := core.Uvarint(p[1:])
			if un <= 0 {
				return out, fmt.Errorf("wal: chunk offset %d: bad u varint", off)
			}
			v, vn := core.Uvarint(p[1+un:])
			if vn <= 0 || 1+un+vn != int(length) {
				return out, fmt.Errorf("wal: chunk offset %d: bad v varint", off)
			}
			out = append(out, core.Op{Kind: core.OpKind(op), U: u, V: v})
		case OpBatch:
			ops, ok := decodeBatchPayload(p[1:], out)
			if !ok {
				return out, fmt.Errorf("wal: chunk offset %d: malformed batch record", off)
			}
			out = ops
		default:
			return out, fmt.Errorf("wal: chunk offset %d: unknown op %d", off, p[0])
		}
		off += total
	}
	return out, nil
}
