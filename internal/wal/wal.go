// Package wal is the durability engine under the sharded CuckooGraph:
// a segmented, CRC-checksummed, append-only log of edge mutations plus
// snapshot-anchored recovery.
//
// Each segment file starts with a 13-byte header (magic, version,
// segment index) followed by self-delimiting records:
//
//	uvarint payloadLen | payload | crc32c(payload)
//	payload = op byte | uvarint u | uvarint v
//
// Writers call Append, which group-commits: the first waiter becomes
// the leader, writes every pending record with one write(2) and (under
// SyncAlways) one fsync, then wakes the followers. Concurrent writers —
// e.g. the sharded engine's per-shard mutators — therefore amortize
// fsync latency across the whole batch while still getting synchronous
// durability: Append does not return until the record is on disk.
//
// Recovery tolerates a torn tail (a crash mid-write leaves a partial or
// CRC-failing final record, which is dropped) but treats damage
// anywhere else as core.ErrCorrupt. Checkpoint writes a consistent
// snapshot cut against a segment rotation and deletes the log prefix
// the snapshot supersedes, bounding replay work.
//
// The log is also readable while open: Reader streams CRC-validated
// frame chunks from any Position up to the durable tail (the
// replication shipping path), and Pin holds a retention floor so
// RemoveSegmentsBefore — which now scans and deletes entirely under
// the WAL lock; see its contract note — can never unlink a segment a
// reader still needs.
//
// All file access goes through the internal/vfs seam (Options.FS), so
// tests inject deterministic storage faults and record write traces
// for power-cut simulation; a write or fsync failure poisons the log
// with a sticky error — it must be reopened, not written around. The
// crash-consistency harness and the server's degraded-mode contract
// are documented in README.md § Failure modes & degraded operation.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cuckoograph/internal/core"
	"cuckoograph/internal/vfs"
)

// Op tags one log record.
type Op byte

// The record kinds. Values are stable on-disk format; OpInsert and
// OpDelete deliberately match core.OpInsert/core.OpDelete so batch
// payloads embed core ops byte-for-byte.
const (
	OpInsert Op = 1
	OpDelete Op = 2
	// OpBatch frames a whole mutation batch as one record: a uvarint op
	// count followed by count (op, u, v) tuples, all under a single
	// CRC. Replay expands it back into the ordered ops.
	OpBatch Op = 3
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpBatch:
		return "batch"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// opOf maps a core op kind onto its on-disk tag.
func opOf(k core.OpKind) (Op, error) {
	switch k {
	case core.OpInsert:
		return OpInsert, nil
	case core.OpDelete:
		return OpDelete, nil
	}
	return 0, fmt.Errorf("wal: unloggable op kind %d", k)
}

// ParseSyncPolicy maps the user-facing policy names — the wal_enable
// command argument and the cgserver -wal-sync flag share it. The empty
// string means the default, SyncAlways.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return SyncAlways, nil
	case "nosync":
		return SyncNone, nil
	case "async":
		return SyncAsync, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|nosync|async)", s)
}

// SyncPolicy says when Append fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs once per group commit: every acknowledged
	// record survives both process and machine crash.
	SyncAlways SyncPolicy = iota
	// SyncNone writes without fsync: acknowledged records survive a
	// process crash (they are in the page cache) but a machine crash can
	// lose the un-synced suffix. Rotation and Close still fsync.
	SyncNone
	// SyncAsync acknowledges appends as soon as they are queued and
	// lets a background flusher write them — the Redis "everysec"
	// trade: near-in-memory append throughput, but a crash can lose the
	// not-yet-written suffix. Replay treats that suffix exactly like a
	// torn tail. Sync, Rotate and Close still drain and fsync, so
	// checkpoints and sealed segments keep their guarantees.
	SyncAsync
)

// String renders the policy in the same names ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "nosync"
	case SyncAsync:
		return "async"
	default:
		return "always"
	}
}

// Options tunes a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment that reaches it
	// is closed and a new one started. Zero means DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the fsync policy for group commits.
	Sync SyncPolicy
	// FS is the filesystem the log lives on; nil means vfs.OS. Tests
	// substitute a vfs.FaultFS to inject storage failures and record
	// write traces for crash simulation.
	FS vfs.FS
}

// DefaultSegmentBytes is the default segment rotation threshold.
const DefaultSegmentBytes = 64 << 20

const (
	segMagic   = 0x4C574743 // "CGWL" little-endian
	segVersion = 1
	// segHeaderSize is magic (4) + version (1) + segment index (8).
	segHeaderSize = 13
	// maxPayload bounds a single-op record payload: op byte + two max
	// uvarints.
	maxPayload = 1 + 2*core.MaxVarintLen64
	// frameOverhead is the non-payload bytes per single-op record: a
	// worst-case length prefix is 1 byte (maxPayload < 128) and the CRC
	// is 4.
	frameOverhead = 1 + crcSize
	crcSize       = 4

	// maxBatchOps caps the ops framed into one OpBatch record; larger
	// batches are chunked into several records (still queued as one
	// group-commit slot). The cap bounds maxBatchPayload, the
	// plausibility limit for any record's length prefix — anything
	// larger is damage, not a record.
	maxBatchOps     = 32768
	maxBatchPayload = 1 + core.MaxVarintLen64 + maxBatchOps*(1+2*core.MaxVarintLen64)

	segSuffix        = ".seg"
	segPrefix        = "wal-"
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// WAL is an open, appendable log rooted at one directory.
type WAL struct {
	dir  string
	opts Options
	fs   vfs.FS   // opts.FS, defaulted; every disk touch goes through it
	lock vfs.File // flock-held LOCK file: one writing process per dir

	mu   sync.Mutex
	cond *sync.Cond
	f    vfs.File // current segment, positioned at its end
	seg  uint64   // current segment index
	size int64    // bytes written to the current segment

	pending  []byte // encoded frames awaiting the next group commit
	nextSeq  uint64 // sequence number of the most recently queued record
	flushed  uint64 // highest sequence durably written
	flushing bool   // a leader is writing outside mu
	err      error  // sticky: first write/sync failure poisons the WAL
	closed   bool

	// pins holds the live retention pins (see Pin): compaction via
	// RemoveSegmentsBefore never deletes a segment at or above the
	// lowest pinned index, so log shippers can read sealed segments
	// without racing checkpoint-driven deletion.
	pins map[*Pin]struct{}

	// flusherDone is closed when the SyncAsync background flusher
	// exits; nil under other policies. Close waits on it before closing
	// the segment file so no write can land after the close.
	flusherDone chan struct{}

	// Observability counters. Atomics, not mu-guarded fields: the group
	// commit leader bumps bytes/commits/syncs with mu released, and the
	// /metrics scraper must be able to read without queueing behind an
	// fsync.
	cAppends atomic.Uint64 // acknowledged Append/AppendBatch calls
	cRecords atomic.Uint64 // framed records (a chunked batch counts per chunk)
	cOps     atomic.Uint64 // edge mutations logged
	cBytes   atomic.Uint64 // frame bytes handed to write(2)
	cCommits atomic.Uint64 // group commits (write(2) batches)
	cSyncs   atomic.Uint64 // fsyncs of segment data
	cRotates atomic.Uint64 // segment rotations
}

// Stats is a point-in-time snapshot of the WAL's observability
// counters — the export hook behind the server's /metrics endpoint.
type Stats struct {
	Appends      uint64 // acknowledged Append/AppendBatch calls
	Records      uint64 // framed records written or queued
	Ops          uint64 // edge mutations logged
	Bytes        uint64 // frame bytes handed to write(2)
	GroupCommits uint64 // write(2) batches (group commits)
	Syncs        uint64 // fsyncs of segment data
	Rotations    uint64 // segment rotations
	Segment      uint64 // segment currently appended to
	PendingBytes uint64 // queued frame bytes not yet written
	Failed       bool   // the sticky error has poisoned the WAL
	Closed       bool   // Close has run; the counters are final
}

// Stats returns the current counters. Like Segment it waits out an
// in-flight group commit before reading the mu-guarded segment state;
// the counters themselves are atomic.
func (w *WAL) Stats() Stats {
	st := Stats{
		Appends:      w.cAppends.Load(),
		Records:      w.cRecords.Load(),
		Ops:          w.cOps.Load(),
		Bytes:        w.cBytes.Load(),
		GroupCommits: w.cCommits.Load(),
		Syncs:        w.cSyncs.Load(),
		Rotations:    w.cRotates.Load(),
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.flushing {
		w.cond.Wait()
	}
	st.Segment = w.seg
	st.PendingBytes = uint64(len(w.pending))
	st.Failed = w.err != nil
	st.Closed = w.closed
	return st
}

// Open opens (creating if needed) the WAL in dir and prepares it for
// appending. If the newest segment ends in a torn record — the
// signature of a crash mid-write — the tail is truncated to the last
// intact record so new appends extend a clean log.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, fs: opts.FS, lock: lock}
	w.cond = sync.NewCond(&w.mu)
	if err := w.openForAppend(); err != nil {
		if w.f != nil {
			w.f.Close()
		}
		w.unlockDir()
		return nil, err
	}
	w.startFlusher()
	return w, nil
}

// openForAppend positions w at the end of the newest intact record,
// creating the first segment if the directory is fresh.
func (w *WAL) openForAppend() error {
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return w.openSegment(1)
	}
	last := segs[len(segs)-1]
	valid, _, _, err := scanSegment(w.fs, last.path, last.index, true, nil)
	if err != nil {
		return err
	}
	if valid < segHeaderSize {
		// The crash tore the segment's own header; recreate it whole
		// rather than appending records to a headerless file.
		if err := w.fs.Remove(last.path); err != nil {
			return err
		}
		return w.openSegment(last.index)
	}
	f, err := w.fs.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	if fi, err := f.Stat(); err != nil {
		return err
	} else if fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			return err
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		return err
	}
	w.seg, w.size = last.index, valid
	if w.size >= w.opts.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// lockDir takes an exclusive flock on dir/LOCK so only one process
// appends to a WAL directory at a time. The kernel drops the lock when
// the process dies, so a SIGKILL never wedges the next boot.
func lockDir(fsys vfs.FS, dir string) (vfs.File, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fsys.Flock(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func (w *WAL) unlockDir() {
	if w.lock != nil {
		// Closing the descriptor releases the flock.
		w.lock.Close()
		w.lock = nil
	}
}

// startFlusher spawns the background writer behind SyncAsync appends.
// It drains pending whenever woken and exits once the WAL closes or
// poisons itself.
func (w *WAL) startFlusher() {
	if w.opts.Sync != SyncAsync {
		return
	}
	w.flusherDone = make(chan struct{})
	go func() {
		defer close(w.flusherDone)
		w.mu.Lock()
		defer w.mu.Unlock()
		for {
			for len(w.pending) == 0 && !w.closed && w.err == nil {
				w.cond.Wait()
			}
			if w.closed || w.err != nil {
				return
			}
			batch := w.pending
			w.pending = nil
			hi := w.nextSeq
			w.flushing = true
			w.mu.Unlock()
			err := w.writeBatch(batch)
			w.mu.Lock()
			w.flushing = false
			if err != nil {
				if w.err == nil {
					w.err = err
				}
			} else {
				w.flushed = hi
			}
			w.cond.Broadcast()
		}
	}()
}

// Dir returns the WAL's directory.
func (w *WAL) Dir() string { return w.dir }

// Options returns the WAL's normalised options (defaults resolved, FS
// set) — what a caller re-opening the same log after a failure should
// pass to Open.
func (w *WAL) Options() Options { return w.opts }

// FS returns the filesystem the WAL operates on.
func (w *WAL) FS() vfs.FS { return w.fs }

// Segment returns the index of the segment currently appended to. It
// waits out any in-flight group commit: the leader mutates the segment
// state with mu released (only the flushing flag held), so reading
// before the flush settles would race.
func (w *WAL) Segment() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.flushing {
		w.cond.Wait()
	}
	return w.seg
}

// Err returns the sticky error, if the WAL has failed.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// LogBatch implements sharded.Logger: the applied sub-batch of one
// shard partition becomes one batch record (chunked past maxBatchOps)
// in one group-commit slot.
func (w *WAL) LogBatch(b core.Batch) error { return w.AppendBatch(b) }

// LogInsert logs a single insert — a size-1 batch in record terms.
func (w *WAL) LogInsert(u, v uint64) error { return w.Append(OpInsert, u, v) }

// LogDelete logs a single delete.
func (w *WAL) LogDelete(u, v uint64) error { return w.Append(OpDelete, u, v) }

// Append durably logs one record and returns once it (and, for free,
// every record queued alongside it) is written — the group commit.
func (w *WAL) Append(op Op, u, v uint64) error {
	var frame [maxPayload + frameOverhead]byte
	return w.enqueue(encodeFrame(frame[:0], op, u, v), 1, 1)
}

// AppendBatch durably logs a whole mutation batch as one record —
// one length prefix, one CRC32C, one group-commit slot — so the
// per-record framing and fsync cost is amortized across the batch. A
// size-1 batch is encoded in the plain single-op format (the formats
// coexist in one log); batches beyond maxBatchOps are chunked into
// several records but still commit as one slot. Replay delivers the ops
// back in order. An empty batch is a no-op.
func (w *WAL) AppendBatch(b core.Batch) error {
	switch len(b) {
	case 0:
		return nil
	case 1:
		op, err := opOf(b[0].Kind)
		if err != nil {
			return err
		}
		return w.Append(op, b[0].U, b[0].V)
	}
	var buf []byte
	ops := uint64(len(b))
	records := uint64(0)
	for len(b) > 0 {
		chunk := b
		if len(chunk) > maxBatchOps {
			chunk = chunk[:maxBatchOps]
		}
		b = b[len(chunk):]
		var err error
		buf, err = encodeBatchFrame(buf, chunk)
		if err != nil {
			return err
		}
		records++
	}
	return w.enqueue(buf, records, ops)
}

// enqueue queues already-framed records for the next group commit and
// blocks until they are durable per the sync policy. records and ops
// feed the observability counters once the frames are accepted.
func (w *WAL) enqueue(rec []byte, records, ops uint64) error {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return w.err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	wasEmpty := len(w.pending) == 0
	w.pending = append(w.pending, rec...)
	w.nextSeq++
	seq := w.nextSeq
	w.cAppends.Add(1)
	w.cRecords.Add(records)
	w.cOps.Add(ops)
	if w.opts.Sync == SyncAsync {
		// Acknowledge immediately; the background flusher owns the
		// write. The flusher only ever parks on an empty queue, so just
		// the empty→non-empty transition needs to wake it — appends that
		// land while it is writing are picked up when it loops.
		if wasEmpty {
			w.cond.Broadcast()
		}
		w.mu.Unlock()
		return nil
	}
	for {
		if w.flushed >= seq {
			w.mu.Unlock()
			return nil
		}
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if !w.flushing {
			break
		}
		w.cond.Wait()
	}
	// This writer is the leader: it owns the file until flushing clears.
	w.flushing = true
	batch := w.pending
	w.pending = nil
	hi := w.nextSeq
	w.mu.Unlock()

	err := w.writeBatch(batch)

	w.mu.Lock()
	w.flushing = false
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else {
		w.flushed = hi
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// writeBatch writes one group-commit batch to the current segment,
// fsyncs per policy, and rotates if the segment is full. Only the
// leader (flushing set) or a holder of mu with flushing clear may call
// it — either way access to the file is exclusive.
func (w *WAL) writeBatch(batch []byte) error {
	if _, err := w.f.Write(batch); err != nil {
		return fmt.Errorf("wal: append segment %d: %w", w.seg, err)
	}
	w.size += int64(len(batch))
	w.cBytes.Add(uint64(len(batch)))
	w.cCommits.Add(1)
	if w.opts.Sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync segment %d: %w", w.seg, err)
		}
		w.cSyncs.Add(1)
	}
	if w.size >= w.opts.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// rotate closes the current segment (fsyncing it regardless of policy,
// so a sealed segment is always durable) and opens the next.
func (w *WAL) rotate() error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: seal segment %d: %w", w.seg, err)
		}
		w.cSyncs.Add(1)
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("wal: seal segment %d: %w", w.seg, err)
		}
		w.f = nil
	}
	w.cRotates.Add(1)
	return w.openSegment(w.seg + 1)
}

// openSegment creates segment index and makes it current.
func (w *WAL) openSegment(index uint64) error {
	path := segmentPath(w.dir, index)
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", index, err)
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[5:], index)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: create segment %d: %w", index, err)
	}
	if w.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: create segment %d: %w", index, err)
		}
		if err := syncDir(w.fs, w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f, w.seg, w.size = f, index, segHeaderSize
	return nil
}

// exclusive acquires mu with no leader in flight, giving the caller
// sole ownership of the file. Callers must release mu when done.
func (w *WAL) exclusive() error {
	w.mu.Lock()
	for w.flushing {
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	return nil
}

// flushPendingLocked writes any queued-but-unwritten records. Requires
// mu held with flushing clear.
func (w *WAL) flushPendingLocked() error {
	if len(w.pending) == 0 {
		return nil
	}
	batch := w.pending
	w.pending = nil
	if err := w.writeBatch(batch); err != nil {
		w.err = err
		w.cond.Broadcast()
		return err
	}
	w.flushed = w.nextSeq
	w.cond.Broadcast()
	return nil
}

// Sync forces everything appended so far onto disk, regardless of the
// sync policy.
func (w *WAL) Sync() error {
	if err := w.exclusive(); err != nil {
		return err
	}
	defer w.mu.Unlock()
	if err := w.flushPendingLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync segment %d: %w", w.seg, err)
		return w.err
	}
	w.cSyncs.Add(1)
	return nil
}

// Rotate seals the current segment and starts a new one, returning the
// new segment's index. It is the checkpoint cut: records appended
// before Rotate land in segments < the returned index, records after
// in segments >= it.
func (w *WAL) Rotate() (uint64, error) {
	if err := w.exclusive(); err != nil {
		return 0, err
	}
	defer w.mu.Unlock()
	if err := w.flushPendingLocked(); err != nil {
		return 0, err
	}
	if err := w.rotate(); err != nil {
		w.err = err
		return 0, err
	}
	return w.seg, nil
}

// RemoveSegmentsBefore deletes sealed segments with index < seg — the
// log-compaction step after a checkpoint at cut seg. The current
// segment is never removed, and the requested cut is clamped to the
// retention floor: no segment at or above the lowest held Pin is
// deleted, so a log shipper's read position stays servable.
//
// Contract note: the scan and the deletes run with the WAL lock held.
// An earlier version captured the current segment index, released the
// lock, and then deleted — so a concurrent Rotate could advance the
// segment between capture and unlink, and a tail reader could have its
// segment removed out from under it. Holding the lock across the whole
// operation (deletions are rare and cheap next to an fsync) closes
// both races.
func (w *WAL) RemoveSegmentsBefore(seg uint64) error {
	if err := w.exclusive(); err != nil {
		return err
	}
	defer w.mu.Unlock()
	floor := seg
	for p := range w.pins {
		if p.seg < floor {
			floor = p.seg
		}
	}
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, s := range segs {
		if s.index < floor && s.index != w.seg {
			if err := w.fs.Remove(s.path); err != nil {
				return fmt.Errorf("wal: remove %s: %w", s.path, err)
			}
			removed = true
		}
	}
	if !removed {
		return nil
	}
	return syncDir(w.fs, w.dir)
}

// Close flushes, fsyncs and closes the WAL. Further appends fail with
// ErrClosed. The final segment fsync is followed by a directory fsync
// so the sealed tail length survives a machine crash, and under
// SyncAsync Close does not return until the background flusher has
// exited — no goroutine outlives the WAL and no write can land on the
// segment file after it is closed.
func (w *WAL) Close() error {
	w.mu.Lock()
	for w.flushing {
		w.cond.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil && w.f != nil {
		err = w.flushPendingLocked()
		if err == nil {
			if serr := w.f.Sync(); serr != nil {
				err = fmt.Errorf("wal: fsync segment %d: %w", w.seg, serr)
			} else {
				w.cSyncs.Add(1)
			}
		}
	}
	// Wake the flusher (it parks on cond) and anything waiting in
	// enqueue, then wait for the flusher to exit before touching the
	// file descriptor it might still write to.
	w.cond.Broadcast()
	w.mu.Unlock()
	if w.flusherDone != nil {
		<-w.flusherDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	if err == nil {
		if derr := syncDir(w.fs, w.dir); derr != nil {
			err = derr
		}
	}
	w.unlockDir()
	return err
}

// encodeFrame appends one framed record to buf and returns it.
func encodeFrame(buf []byte, op Op, u, v uint64) []byte {
	var payload [maxPayload]byte
	p := payload[:0]
	p = append(p, byte(op))
	p = core.AppendUvarint(p, u)
	p = core.AppendUvarint(p, v)
	buf = core.AppendUvarint(buf, uint64(len(p)))
	buf = append(buf, p...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(p, castagnoli))
}

// encodeBatchFrame appends one framed OpBatch record holding ops (at
// most maxBatchOps of them) to buf and returns it.
func encodeBatchFrame(buf []byte, ops core.Batch) ([]byte, error) {
	payload := make([]byte, 0, 1+core.MaxVarintLen64+len(ops)*3)
	payload = append(payload, byte(OpBatch))
	payload = core.AppendUvarint(payload, uint64(len(ops)))
	for _, o := range ops {
		op, err := opOf(o.Kind)
		if err != nil {
			return nil, err
		}
		payload = append(payload, byte(op))
		payload = core.AppendUvarint(payload, o.U)
		payload = core.AppendUvarint(payload, o.V)
	}
	buf = core.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli)), nil
}

func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, index, segSuffix))
}

type segmentRef struct {
	path  string
	index uint64
}

// listSegments returns the directory's segment files sorted by index.
func listSegments(fsys vfs.FS, dir string) ([]segmentRef, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentRef
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segmentRef{path: filepath.Join(dir, name), index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable.
func syncDir(fsys vfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}
