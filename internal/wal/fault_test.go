package wal

// Storage-failure behaviour of the live WAL: injected ENOSPC/EIO must
// fail the triggering append (and every group-commit follower riding
// the same fsync), poison the log against silent later acks, and leave
// the on-disk state recoverable. Checkpoint failures must never
// destroy the previous recovery source.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/vfs"
)

// TestAppendENOSPCPoisons: a full disk fails the append with the real
// errno, flips Stats().Failed, and fail-fasts every later append.
func TestAppendENOSPCPoisons(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	w, err := Open(t.TempDir(), Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(OpInsert, 1, 2); err != nil {
		t.Fatalf("append before fault: %v", err)
	}
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpWrite.Mask(), Err: syscall.ENOSPC})
	if err := w.Append(OpInsert, 3, 4); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: want ENOSPC, got %v", err)
	}
	if !w.Stats().Failed {
		t.Fatal("Stats().Failed clear after poisoning write failure")
	}
	// Sticky: the WAL refuses further appends even after the disk
	// recovers — the log may have lost bytes and must be reopened.
	ffs.ClearFault()
	if err := w.Append(OpInsert, 5, 6); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append after poisoning: want sticky ENOSPC, got %v", err)
	}
	if err := w.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Err(): want ENOSPC, got %v", err)
	}
}

// TestFsyncFailureFailsGroupCommitFollowers: when the leader's fsync
// fails, every concurrent appender in that group commit must see the
// error — none of their records were made durable, so none may ack.
func TestFsyncFailureFailsGroupCommitFollowers(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(OpInsert, 0, 0); err != nil {
		t.Fatal(err)
	}
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpSync.Mask(), Err: syscall.EIO})

	const writers = 8
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Append(OpInsert, uint64(i), uint64(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("writer %d: want EIO, got %v (a follower acked without a durable frame)", i, err)
		}
	}
}

// TestShortWriteTornTailRecovers: a write cut short by the disk leaves
// a torn record; reopening truncates it and recovery yields exactly
// the acked prefix.
func TestShortWriteTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	w, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := w.Append(OpInsert, i, i+100); err != nil {
			t.Fatal(err)
		}
	}
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpWrite.Mask(), Err: syscall.ENOSPC, Short: 3})
	if err := w.Append(OpInsert, 6, 106); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write: want ENOSPC, got %v", err)
	}
	w.Close() // poisoned close; flock released regardless

	g, stats, err := Recover(dir, sharded.Config{})
	if err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	if stats.Replay.TornBytes == 0 {
		t.Fatal("expected a torn tail from the short write")
	}
	if g.NumEdges() != 5 || g.HasEdge(6, 106) {
		t.Fatalf("recovered %d edges (want the 5 acked; torn record admitted=%v)",
			g.NumEdges(), g.HasEdge(6, 106))
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer w2.Close()
	if err := w2.Append(OpInsert, 7, 107); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestCheckpointENOSPCLeavesPreviousCheckpoint (satellite): a full
// disk while cutting a snapshot must leave no partial checkpoint file
// behind and keep the previous checkpoint as the recovery source.
func TestCheckpointENOSPCLeavesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	w, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	g := sharded.New(sharded.Config{})
	apply := func(u, v uint64) {
		g.ApplyBatch(core.Batch{{Kind: core.OpInsert, U: u, V: v}})
		if err := w.Append(OpInsert, u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		apply(i, i+1)
	}
	first, err := Checkpoint(g, w)
	if err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	for i := uint64(10); i < 20; i++ {
		apply(i, i+1)
	}

	// Every write to the snapshot temp file hits ENOSPC.
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpWrite.Mask(), PathContains: ".tmp", Err: syscall.ENOSPC})
	if _, err := Checkpoint(g, w); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint on full disk: want ENOSPC, got %v", err)
	}
	ffs.ClearFault()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("partial checkpoint file %s left behind", e.Name())
		}
		if strings.HasSuffix(e.Name(), checkpointSuffix) {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) != 1 || filepath.Join(dir, snaps[0]) != first {
		t.Fatalf("previous checkpoint not preserved: have %v, want [%s]", snaps, filepath.Base(first))
	}

	// The WAL itself is unpoisoned (only the snapshot write failed):
	// appends still work, and recovery sees everything.
	apply(20, 21)
	if err := w.Sync(); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
	rg, _, err := Recover(dir, sharded.Config{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rg.NumEdges() != g.NumEdges() {
		t.Fatalf("recovered %d edges, want %d", rg.NumEdges(), g.NumEdges())
	}

	// A retry once space frees must succeed and supersede the old one.
	second, err := Checkpoint(g, w)
	if err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if second == first {
		t.Fatalf("retry produced the same checkpoint path %s", second)
	}
	if _, err := os.Stat(first); !os.IsNotExist(err) {
		t.Fatalf("superseded checkpoint %s not removed: %v", filepath.Base(first), err)
	}
}

// TestCheckpointRenameFailureKeepsRecoverySource: a failure at the
// atomic-rename step must also leave the previous checkpoint intact.
func TestCheckpointRenameFailureKeepsRecoverySource(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	w, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	g := sharded.New(sharded.Config{})
	g.ApplyBatch(core.Batch{{Kind: core.OpInsert, U: 1, V: 2}})
	if err := w.Append(OpInsert, 1, 2); err != nil {
		t.Fatal(err)
	}
	first, err := Checkpoint(g, w)
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetFault(vfs.Fault{Kinds: vfs.OpRename.Mask(), Err: syscall.EIO, Once: true})
	if _, err := Checkpoint(g, w); !errors.Is(err, syscall.EIO) {
		t.Fatalf("checkpoint with failing rename: want EIO, got %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("orphaned temp file %s after rename failure", e.Name())
		}
	}
	if _, err := os.Stat(first); err != nil {
		t.Fatalf("previous checkpoint gone after rename failure: %v", err)
	}
	if _, _, err := Recover(dir, sharded.Config{}); err != nil {
		t.Fatalf("recover after failed rename: %v", err)
	}
}
