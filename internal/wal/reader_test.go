package wal

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cuckoograph/internal/core"
	"cuckoograph/internal/vfs"
)

// drainReader reads every available chunk from r and decodes the ops.
func drainReader(t *testing.T, r *Reader) []core.Op {
	t.Helper()
	var ops []core.Op
	for {
		chunk, _, err := r.Next()
		if errors.Is(err, ErrNoData) {
			return ops
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		ops, err = AppendChunkOps(chunk, ops)
		if err != nil {
			t.Fatalf("AppendChunkOps: %v", err)
		}
	}
}

// TestReaderStreamsLiveTail streams a mixed single/batch op sequence
// through a Reader — including across a segment rotation — and checks
// the decoded ops match what was appended, in order.
func TestReaderStreamsLiveTail(t *testing.T) {
	w, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var want []core.Op
	append1 := func(op Op, u, v uint64) {
		if err := w.Append(op, u, v); err != nil {
			t.Fatal(err)
		}
		want = append(want, core.Op{Kind: core.OpKind(op), U: u, V: v})
	}
	for i := uint64(0); i < 100; i++ {
		append1(OpInsert, i, i+1)
	}
	batch := make(core.Batch, 50)
	for i := range batch {
		batch[i] = core.Op{Kind: core.OpInsert, U: uint64(i) + 1000, V: uint64(i) + 2000}
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	want = append(want, batch...)

	r, err := w.OpenReader(Position{Seg: 1, Off: SegmentDataStart})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainReader(t, r)
	if len(got) != len(want) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(want))
	}

	// More appends after catch-up, spanning a rotation.
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	append1(OpDelete, 3, 4)
	append1(OpInsert, 7, 8)
	got = append(got, drainReader(t, r)...)
	if len(got) != len(want) {
		t.Fatalf("after rotation decoded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Pos() != w.TailPosition() {
		t.Fatalf("reader at %+v, tail %+v", r.Pos(), w.TailPosition())
	}
}

// TestOpenReaderUnservable pins the snapshot-fallback signals: the zero
// position, a compacted segment, and a position past the tail all
// report ErrCompacted.
func TestOpenReaderUnservable(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.OpenReader(Position{}); !errors.Is(err, ErrCompacted) {
		t.Fatalf("zero position: %v, want ErrCompacted", err)
	}
	if err := w.Append(OpInsert, 1, 2); err != nil {
		t.Fatal(err)
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveSegmentsBefore(cut); err != nil {
		t.Fatal(err)
	}
	if _, err := w.OpenReader(Position{Seg: 1, Off: SegmentDataStart}); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted segment: %v, want ErrCompacted", err)
	}
	if _, err := w.OpenReader(Position{Seg: cut, Off: 1 << 30}); !errors.Is(err, ErrCompacted) {
		t.Fatalf("past tail: %v, want ErrCompacted", err)
	}
}

// TestPinBlocksCompaction pins the retention-floor contract:
// RemoveSegmentsBefore clamps its cut to the lowest held pin and
// reverts to the requested cut once pins move or release.
func TestPinBlocksCompaction(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 4; i++ {
		if err := w.Append(OpInsert, uint64(i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	segCount := func() int {
		segs, err := listSegments(vfs.OS, w.dir)
		if err != nil {
			t.Fatal(err)
		}
		return len(segs)
	}
	if got := segCount(); got != 5 {
		t.Fatalf("segments = %d, want 5", got)
	}

	pin := w.Pin(1)
	if floor, held := w.RetentionFloor(); !held || floor != 1 {
		t.Fatalf("floor = %d,%v, want 1,true", floor, held)
	}
	cur := w.Segment()
	if err := w.RemoveSegmentsBefore(cur); err != nil {
		t.Fatal(err)
	}
	if got := segCount(); got != 5 {
		t.Fatalf("pinned compaction removed segments: %d left, want 5", got)
	}

	pin.Move(3)
	pin.Move(1) // floors never move backwards
	if got := pin.Seg(); got != 3 {
		t.Fatalf("pin at %d, want 3", got)
	}
	if err := w.RemoveSegmentsBefore(cur); err != nil {
		t.Fatal(err)
	}
	if got := segCount(); got != 3 {
		t.Fatalf("segments = %d, want 3 (>=3 retained)", got)
	}

	pin.Release()
	if _, held := w.RetentionFloor(); held {
		t.Fatal("floor still held after release")
	}
	if err := w.RemoveSegmentsBefore(cur); err != nil {
		t.Fatal(err)
	}
	if got := segCount(); got != 1 {
		t.Fatalf("segments = %d, want 1", got)
	}
}

// TestRemoveSegmentsBeforeRace is the regression test for the
// unlock-before-scan bug: Rotate, RemoveSegmentsBefore and a pinned
// tail reader race freely; the reader must never see its segment
// unlinked (no ErrCompacted, no ENOENT) and every decoded frame must
// validate. Run under -race this also proves the locking discipline.
func TestRemoveSegmentsBeforeRace(t *testing.T) {
	w, err := Open(t.TempDir(), Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	pin := w.Pin(1)
	defer pin.Release()
	r, err := w.OpenReader(Position{Seg: 1, Off: SegmentDataStart})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var appendErr, compactErr atomic.Value
	wg.Add(2)
	go func() { // writer: appends force frequent size-based rotations
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.Append(OpInsert, i, i+1); err != nil {
				appendErr.Store(err)
				return
			}
		}
	}()
	go func() { // compactor: tries to delete everything below the current segment
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.RemoveSegmentsBefore(w.Segment()); err != nil {
				compactErr.Store(err)
				return
			}
		}
	}()

	// Reader: continuously consumes and validates from the pinned
	// position; the pin must keep every byte it needs on disk.
	deadline := time.Now().Add(300 * time.Millisecond)
	var ops []core.Op
	for time.Now().Before(deadline) {
		chunk, _, err := r.Next()
		if errors.Is(err, ErrNoData) {
			continue
		}
		if err != nil {
			t.Errorf("pinned reader failed: %v", err)
			break
		}
		if ops, err = AppendChunkOps(chunk, ops[:0]); err != nil {
			t.Errorf("chunk validation failed: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err, _ := appendErr.Load().(error); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err, _ := compactErr.Load().(error); err != nil {
		t.Fatalf("compactor: %v", err)
	}
}

// TestCloseStopsFlusher pins the SyncAsync lifecycle: Close must not
// return until the background flusher has exited, so WALs do not leak
// goroutines and no write can land after the segment file closes.
func TestCloseStopsFlusher(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		w, err := Open(t.TempDir(), Options{Sync: SyncAsync})
		if err != nil {
			t.Fatal(err)
		}
		for j := uint64(0); j < 64; j++ {
			if err := w.Append(OpInsert, j, j+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); !st.Closed {
			t.Fatal("Stats().Closed = false after Close")
		}
	}
	// The flushers must be gone synchronously; poll a little anyway to
	// absorb unrelated runtime goroutines settling.
	for wait := time.Now().Add(2 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(wait) {
			t.Fatalf("goroutines: %d before, %d after closing all WALs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseIdempotent — double Close stays nil and appends after Close
// fail typed.
func TestCloseIdempotent(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncAsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpInsert, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append(OpInsert, 3, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := w.RemoveSegmentsBefore(99); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v, want ErrClosed", err)
	}
}

// TestReaderChunkOversizedFrame checks a frame larger than the chunk
// budget is still returned whole.
func TestReaderChunkOversizedFrame(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := make(core.Batch, maxBatchOps)
	for i := range big {
		big[i] = core.Op{Kind: core.OpInsert, U: uint64(i), V: uint64(i) * 3}
	}
	if err := w.AppendBatch(big); err != nil {
		t.Fatal(err)
	}
	r, err := w.OpenReader(Position{Seg: 1, Off: SegmentDataStart})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainReader(t, r)
	if len(got) != len(big) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(big))
	}
	for i := range big {
		if got[i] != big[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], big[i])
		}
	}
}

// TestAppendChunkOpsRejectsDamage — a shipped chunk with a flipped bit
// or truncated tail must be rejected, not partially applied silently.
func TestAppendChunkOpsRejectsDamage(t *testing.T) {
	frame := encodeFrame(nil, OpInsert, 100, 200)
	if _, err := AppendChunkOps(frame, nil); err != nil {
		t.Fatalf("intact frame rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload bit", func(b []byte) []byte { b[2] ^= 0x40; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-2] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0x7F) }},
	} {
		b := tc.mut(append([]byte(nil), frame...))
		if _, err := AppendChunkOps(b, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
