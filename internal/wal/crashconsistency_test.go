package wal

// The ALICE-style crash-consistency harness. A workload of batches is
// appended through a tracing vfs.FaultFS, so every byte that reached
// the (simulated, ordered) disk is on record. The trace is then
// materialized into a fresh directory truncated at every sampled cut
// point — including cuts inside individual writes, in both power-cut
// shapes (plain truncation and zero-torn extension) — and recovery is
// run against each reconstructed disk. The invariant, per fsync
// policy: recovery yields exactly some prefix of the workload, at
// least the durable floor (acked batches for SyncAlways/SyncNone,
// synced batches for SyncAsync), or fails with a typed core.ErrCorrupt.
// Never a hole, never a partially applied batch, never a panic.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/vfs"
)

// ccBarrier marks a durability point: after trace event index ev, the
// first `batches` workload batches must survive any later crash.
type ccBarrier struct {
	ev      int
	batches int
}

// ccSig returns a canonical signature of a graph's edge set.
func ccSig(g *sharded.Graph) string {
	var edges []string
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v uint64) bool {
			edges = append(edges, fmt.Sprintf("%d>%d", u, v))
			return true
		})
		return true
	})
	sort.Strings(edges)
	return strings.Join(edges, ",")
}

// ccMapSig returns the same canonical signature for a map mirror.
func ccMapSig(edges map[[2]uint64]bool) string {
	var out []string
	for e := range edges {
		out = append(out, fmt.Sprintf("%d>%d", e[0], e[1]))
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func TestCrashConsistencySyncAlways(t *testing.T) { runCrashHarness(t, SyncAlways) }
func TestCrashConsistencySyncNone(t *testing.T)   { runCrashHarness(t, SyncNone) }
func TestCrashConsistencySyncAsync(t *testing.T)  { runCrashHarness(t, SyncAsync) }

func runCrashHarness(t *testing.T, policy SyncPolicy) {
	const batches = 96
	rng := rand.New(rand.NewSource(0xC0FFEE + int64(policy)))

	srcDir := filepath.Join(t.TempDir(), "wal")
	ffs := vfs.NewFaultFS(nil)
	ffs.StartTrace()
	w, err := Open(srcDir, Options{Sync: policy, SegmentBytes: 4 << 10, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// The workload: random insert/delete batches applied to a mirror
	// graph (for checkpointing and prefix signatures) and appended to
	// the log. sigs[k] is the state after the first k batches.
	mirror := sharded.New(sharded.Config{})
	edges := make(map[[2]uint64]bool)
	sigs := make([]string, 0, batches+1)
	sigs = append(sigs, "")
	ackEvents := make([]int, 0, batches) // trace length when batch i was acked
	barriers := []ccBarrier{{0, 0}}

	for i := 0; i < batches; i++ {
		n := 1 + rng.Intn(8)
		b := make(core.Batch, 0, n)
		for j := 0; j < n; j++ {
			u, v := uint64(rng.Intn(24)), uint64(rng.Intn(24))
			kind := core.OpInsert
			if rng.Intn(10) < 3 {
				kind = core.OpDelete
			}
			b = append(b, core.Op{Kind: kind, U: u, V: v})
			if kind == core.OpInsert {
				edges[[2]uint64{u, v}] = true
			} else {
				delete(edges, [2]uint64{u, v})
			}
		}
		mirror.ApplyBatch(b)
		sigs = append(sigs, ccMapSig(edges))
		if err := w.AppendBatch(b); err != nil {
			t.Fatalf("AppendBatch %d: %v", i, err)
		}
		ackEvents = append(ackEvents, ffs.TraceLen())

		switch {
		case i == batches/2:
			// A checkpoint mid-workload traces the snapshot rename and
			// compaction dance; once it returns, everything so far is
			// recoverable from the snapshot alone.
			if _, err := Checkpoint(mirror, w); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			barriers = append(barriers, ccBarrier{ffs.TraceLen(), i + 1})
		case i%9 == 8:
			if err := w.Sync(); err != nil {
				t.Fatalf("Sync after batch %d: %v", i, err)
			}
			barriers = append(barriers, ccBarrier{ffs.TraceLen(), i + 1})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	barriers = append(barriers, ccBarrier{ffs.TraceLen(), batches})

	if got := ccSig(mirror); got != sigs[batches] {
		t.Fatalf("mirror signature diverged from map mirror")
	}

	events := ffs.Trace()

	// floor(cutEvents) is how many leading batches any crash at that
	// cut must preserve. Sync barriers bound it for every policy; acks
	// additionally bound it where the ack implies the bytes were
	// written before it (SyncAlways synced them; SyncNone wrote them —
	// the ordered-disk model makes written bytes durable). SyncAsync
	// acks promise nothing: only barriers count.
	floor := func(cutEvents int) int {
		fl := 0
		for _, b := range barriers {
			if b.ev <= cutEvents && b.batches > fl {
				fl = b.batches
			}
		}
		if policy != SyncAsync {
			for i, ev := range ackEvents {
				if ev <= cutEvents && i+1 > fl {
					fl = i + 1
				}
			}
		}
		return fl
	}

	// Cut plan: every event boundary, plus intra-write cuts (three
	// offsets, two tear shapes) on every traced write. Short mode
	// samples the boundaries down and keeps one intra-write shape.
	type cut struct {
		name   string
		events []vfs.Event
		floor  int
	}
	var cuts []cut
	boundaryStep := 1
	if testing.Short() {
		boundaryStep = 5
	}
	for i := 0; i <= len(events); i += boundaryStep {
		cuts = append(cuts, cut{
			name:   fmt.Sprintf("boundary-%d", i),
			events: events[:i],
			floor:  floor(i),
		})
	}
	for i, ev := range events {
		if ev.Op != vfs.OpWrite || len(ev.Data) < 2 {
			continue
		}
		// Cut at both edges and at eighths of the write: group commits
		// under SyncAsync coalesce many batches into one large write, so
		// interior offsets are where the interesting tears live.
		var offs []int
		if testing.Short() {
			offs = []int{len(ev.Data) / 2}
		} else {
			offs = []int{1, len(ev.Data) - 1}
			for k := len(ev.Data) / 8; k < len(ev.Data); k += max(1, len(ev.Data)/8) {
				offs = append(offs, k)
			}
		}
		seen := make(map[int]bool)
		for _, k := range offs {
			if k <= 0 || k >= len(ev.Data) || seen[k] {
				continue
			}
			seen[k] = true
			partial := vfs.Event{Op: vfs.OpWrite, Path: ev.Path, Off: ev.Off, Data: ev.Data[:k]}
			base := append(append([]vfs.Event{}, events[:i]...), partial)
			fl := floor(i) // the torn write itself was never acked whole
			cuts = append(cuts, cut{
				name:   fmt.Sprintf("torn-trunc-%d-%d", i, k),
				events: base,
				floor:  fl,
			})
			if !testing.Short() {
				zero := append(append([]vfs.Event{}, base...),
					vfs.Event{Op: vfs.OpTruncate, Path: ev.Path, Size: ev.Off + int64(len(ev.Data))})
				cuts = append(cuts, cut{
					name:   fmt.Sprintf("torn-zero-%d-%d", i, k),
					events: zero,
					floor:  fl,
				})
			}
		}
	}
	if !testing.Short() && len(cuts) < 200 {
		t.Fatalf("only %d cut points; the acceptance bar is 200+", len(cuts))
	}
	t.Logf("policy %v: %d trace events, %d cut points", policy, len(events), len(cuts))

	scratch := t.TempDir()
	for ci, c := range cuts {
		cutDir := filepath.Join(scratch, "cut")
		if err := vfs.MaterializeTrace(c.events, srcDir, cutDir); err != nil {
			t.Fatalf("%s: materialize: %v", c.name, err)
		}
		g, _, err := Recover(cutDir, sharded.Config{})
		if err != nil {
			// The one tolerated failure mode: typed corruption, and only
			// when nothing durable is at stake. Anything untyped — and
			// any loss of the durable floor — is a bug.
			if !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("%s: recovery failed with untyped error: %v", c.name, err)
			}
			if c.floor > 0 {
				t.Fatalf("%s: ErrCorrupt with durable floor %d — acked data stranded: %v", c.name, c.floor, err)
			}
		} else {
			sig := ccSig(g)
			k := -1
			for i, s := range sigs {
				if s == sig {
					k = i
					break
				}
			}
			// Duplicate prefix states are possible (delete undoing an
			// insert); accept any matching index at or past the floor.
			if k < 0 {
				t.Fatalf("%s: recovered state matches no workload prefix (hole or torn batch admitted); %d edges", c.name, g.NumEdges())
			}
			if !sigMatchesAtOrPast(sigs, sig, c.floor) {
				t.Fatalf("%s: recovered prefix %d below durable floor %d (lost acked batches)", c.name, k, c.floor)
			}
			// Periodically prove the post-crash log accepts appends: a
			// server must be able to reopen and write after recovery.
			if ci%8 == 0 {
				w2, err := Open(cutDir, Options{Sync: policy, SegmentBytes: 4 << 10})
				if err != nil {
					t.Fatalf("%s: reopen for append: %v", c.name, err)
				}
				if err := w2.Append(OpInsert, 999, 999); err != nil {
					t.Fatalf("%s: append after reopen: %v", c.name, err)
				}
				if err := w2.Close(); err != nil {
					t.Fatalf("%s: close after reopen: %v", c.name, err)
				}
			}
		}
		if err := os.RemoveAll(cutDir); err != nil {
			t.Fatalf("cleanup: %v", err)
		}
		_ = ci
	}
}

// sigMatchesAtOrPast reports whether sig equals some prefix signature
// at index >= floor — the "no acked batch lost" check, tolerant of
// coincidentally identical earlier prefixes.
func sigMatchesAtOrPast(sigs []string, sig string, floor int) bool {
	for i := floor; i < len(sigs); i++ {
		if sigs[i] == sig {
			return true
		}
	}
	return false
}
