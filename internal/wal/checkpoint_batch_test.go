package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"sync"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
)

// TestCheckpointInterleavedWithBatches pins the checkpoint/ApplyBatch
// contract end to end: checkpoints are taken concurrently with large
// multi-shard batches, and both the checkpoint snapshots and the final
// snapshot-plus-log-tail recovery must be batch-atomic — a half-applied
// batch in a checkpoint, or a cut that splits a batch's partitions
// across the rotation inconsistently with the snapshot, would make the
// recovered graph diverge from the logged one.
func TestCheckpointInterleavedWithBatches(t *testing.T) {
	const (
		columns = 20
		nodes   = 2048
	)
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	g := sharded.New(sharded.Config{Shards: 8, WAL: w})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tag := uint64(0); tag < columns; tag++ {
			b := make(core.Batch, 0, nodes)
			for u := uint64(0); u < nodes; u++ {
				b = b.Insert(u, tag)
			}
			g.ApplyBatch(b)
		}
	}()

	// Checkpoints race the batch stream; each rotates the log and
	// serializes a frozen view.
	for i := 0; i < 12; i++ {
		if _, err := Checkpoint(g, w); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	wg.Wait()
	if err := g.LogErr(); err != nil {
		t.Fatalf("wal log error: %v", err)
	}
	// One final checkpoint after the stream so recovery exercises
	// snapshot + a (possibly empty) tail.
	if _, err := Checkpoint(g, w); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}

	rec, _, err := Recover(dir, sharded.Config{Shards: 4})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.NumEdges() != columns*nodes {
		t.Fatalf("recovered %d edges, want %d", rec.NumEdges(), columns*nodes)
	}
	for tag := uint64(0); tag < columns; tag++ {
		for u := uint64(0); u < nodes; u++ {
			if !rec.HasEdge(u, tag) {
				t.Fatalf("recovered graph missing ⟨%d,%d⟩", u, tag)
			}
		}
	}
}

// TestZeroFilledTailAfterBatchIsTorn pins the tear rule for large
// writes: batch records (and group commits) are far bigger than the
// legacy single-op tear window, and a crash on a filesystem that
// extends the file before the data lands leaves a zero-filled tail.
// That tail cannot hold acknowledged records — every record starts
// with a nonzero length byte — so replay must drop it as a tear and
// Open must truncate it, not refuse recovery.
func TestZeroFilledTailAfterBatchIsTorn(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	var b core.Batch
	for i := uint64(0); i < 1000; i++ {
		b = b.Insert(i, i+1)
	}
	if err := w.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const zeros = 10 << 10
	if _, err := f.Write(make([]byte, zeros)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := Replay(dir, 0, nil)
	if err != nil {
		t.Fatalf("Replay over zero tail: %v", err)
	}
	if stats.Records != 1000 || stats.TornBytes != zeros {
		t.Fatalf("Replay = %+v, want 1000 records and %d torn bytes", stats, zeros)
	}

	// Reopen truncates the zeros and the log appends cleanly.
	w2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open over zero tail: %v", err)
	}
	if err := w2.Append(OpInsert, 7, 8); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err = Replay(dir, 0, nil)
	if err != nil || stats.Records != 1001 || stats.TornBytes != 0 {
		t.Fatalf("Replay after reopen = %+v, %v; want 1001 clean records", stats, err)
	}

	// Zeros followed by intact data are NOT a tear: that shape means
	// damage with acknowledged records after it.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(nil, OpInsert, 9, 10)
	data = append(data, bytes.Repeat([]byte{0}, 64)...)
	data = append(data, frame...)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("zeros followed by intact data replayed as %v, want ErrCorrupt", err)
	}
}

// TestCRCValidMalformedFrameBeforeZeroTailIsCorrupt pins the limit of
// the zero-tail rule: a frame whose CRC verifies but whose body is
// malformed (here: an unknown op tag) was durably written exactly as
// some writer produced it — possibly acknowledged — so a zero tail
// after it must NOT allow replay to silently skip the frame as a tear.
func TestCRCValidMalformedFrameBeforeZeroTailIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpInsert, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A correctly framed record with a valid CRC over an unknown op.
	payload := []byte{0xEE, 0x01, 0x02}
	frame := core.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, make([]byte, 4<<10)...) // zero tail past the single-op window
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("CRC-valid malformed frame + zero tail replayed as %v, want ErrCorrupt", err)
	}
}

// TestCheckpointDoesNotBlockWriters verifies the new lock discipline:
// the checkpoint freeze is brief and the serialization holds no shard
// locks, so single-edge writers keep landing while a checkpoint's
// snapshot is being written out.
func TestCheckpointDoesNotBlockWriters(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	g := sharded.New(sharded.Config{Shards: 4, WAL: w})
	for u := uint64(0); u < 20000; u++ {
		g.InsertEdge(u%500, u)
	}

	stop := make(chan struct{})
	started := make(chan struct{})
	var writes int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for u := uint64(0); ; u++ {
			select {
			case <-stop:
				return
			default:
				g.InsertEdge(1_000_000+u, 1)
				if writes++; writes == 1 {
					close(started)
				}
			}
		}
	}()
	// Wait for the writer to be mid-stream before checkpointing, so on a
	// 1-CPU box the checkpoints provably overlap live writes.
	<-started
	n0 := g.NumEdges()
	for i := 0; i < 3; i++ {
		if _, err := Checkpoint(g, w); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if writes == 0 {
		t.Fatalf("no writes landed while checkpoints ran")
	}
	if g.NumEdges() < n0 {
		t.Fatalf("edge count went backwards under checkpoints")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}
}
