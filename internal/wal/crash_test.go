package wal

// The crash-recovery suite: every test damages a real on-disk log the
// way a crash would — a truncated tail segment (kill mid-batch), a torn
// final record, garbage in the tail — and asserts replay degrades to
// exactly the acknowledged prefix, never an error and never wrong data.

import (
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/vfs"
)

// lastSegment returns the newest segment's path.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(vfs.OS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < n {
		t.Fatalf("segment %s only %d bytes, cannot cut %d", path, fi.Size(), n)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestTornFinalRecordIsDropped cuts the last record at every byte
// boundary a crash could leave and checks replay returns exactly the
// records before it.
func TestTornFinalRecordIsDropped(t *testing.T) {
	for _, cut := range []int64{1, 2, 3, 4, 5} {
		dir := t.TempDir()
		w := mustOpen(t, dir, Options{Sync: SyncNone})
		const n = 100
		for i := uint64(0); i < n; i++ {
			if err := w.Append(OpInsert, i, i+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		truncateBy(t, lastSegment(t, dir), cut)

		var count uint64
		stats, err := Replay(dir, 0, func(op Op, u, v uint64) error { count++; return nil })
		if err != nil {
			t.Fatalf("cut %d: Replay: %v", cut, err)
		}
		if count != n-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, count, n-1)
		}
		if stats.TornBytes == 0 {
			t.Fatalf("cut %d: torn tail not reported: %+v", cut, stats)
		}
	}
}

// TestGarbageTailIsDropped overwrites the final record's checksum —
// the torn-write case where the bytes exist but lie.
func TestGarbageTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	const n = 50
	for i := uint64(0); i < n; i++ {
		if err := w.Append(OpInsert, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var count uint64
	_, err = Replay(dir, 0, func(Op, uint64, uint64) error { count++; return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if count != n-1 {
		t.Fatalf("replayed %d records, want %d", count, n-1)
	}
}

// TestReopenAfterTornTailTruncates simulates crash → restart: Open must
// cut the torn tail so new appends produce a log whose replay is the
// surviving prefix plus the new records.
func TestReopenAfterTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	for i := uint64(0); i < 10; i++ {
		if err := w.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	truncateBy(t, lastSegment(t, dir), 2)

	w = mustOpen(t, dir, Options{Sync: SyncNone})
	if err := w.Append(OpInsert, 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	stats, err := Replay(dir, 0, func(_ Op, u, _ uint64) error { got = append(got, u); return nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 100}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	if stats.TornBytes != 0 {
		t.Fatalf("reopen left a torn tail: %+v", stats)
	}
}

// TestCrashSimulation100k is the headline acceptance scenario: a graph
// of ≥100k edges built through the WAL by concurrent writers "crashes"
// — the WAL is abandoned un-Closed (every acknowledged record is in the
// file, like a SIGKILL after the last ack) and the tail segment is then
// truncated mid-record — and recovery must rebuild the acknowledged
// prefix exactly, byte-for-byte equal Stats and edge set.
func TestCrashSimulation100k(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 1 << 20})
	cfg := testCfg()
	cfg.WAL = w
	g := sharded.New(cfg)

	const total = 120_000
	edges := randomEdges(total, 40_000, 99)
	var wg sync.WaitGroup
	const writers = 4
	chunk := total / writers
	for p := 0; p < writers; p++ {
		part := edges[p*chunk : (p+1)*chunk]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, e := range part {
				g.InsertEdge(e.u, e.v)
				if i%11 == 0 {
					g.DeleteEdge(e.u, e.v)
				}
			}
		}()
	}
	wg.Wait()
	if err := g.LogErr(); err != nil {
		t.Fatalf("LogErr: %v", err)
	}
	// SIGKILL: no Close, no final fsync. Everything acknowledged is in
	// the page cache and therefore visible to a fresh reader.
	recovered, stats, err := Recover(dir, testCfg())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if recovered.NumEdges() < 100_000 {
		t.Fatalf("recovered only %d edges, want >= 100k", recovered.NumEdges())
	}
	if stats.Replay.Records == 0 {
		t.Fatalf("no records replayed: %+v", stats)
	}
	requireSameGraph(t, g, recovered)

	// Second crash flavour: tear the tail record. The recovered graph
	// must equal an undamaged graph built from the surviving records.
	_ = w.Close()
	truncateBy(t, lastSegment(t, dir), 3)
	want := sharded.New(testCfg())
	if _, err := Replay(dir, 0, func(op Op, u, v uint64) error {
		if op == OpInsert {
			want.InsertEdge(u, v)
		} else {
			want.DeleteEdge(u, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	torn, _, err := Recover(dir, testCfg())
	if err != nil {
		t.Fatalf("Recover after torn tail: %v", err)
	}
	requireSameGraph(t, want, torn)
}

// TestRecovery1M checks a million-edge log replays comfortably within
// CI limits. Skipped under -short (the -race lane) where the insert
// instrumentation, not replay, dominates.
func TestRecovery1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-edge recovery is covered in the non-race lane")
	}
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 16 << 20})
	cfg := testCfg()
	cfg.WAL = w
	g := sharded.New(cfg)
	const total = 1_000_000
	r := rng(5)
	for i := 0; i < total; i++ {
		g.InsertEdge(r.next()%300_000, r.next()%300_000)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, stats, err := Recover(dir, testCfg())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if recovered.NumEdges() != g.NumEdges() {
		t.Fatalf("recovered %d edges, want %d", recovered.NumEdges(), g.NumEdges())
	}
	t.Logf("replayed %d records (%d segments) in %v", stats.Replay.Records, stats.Replay.Segments, stats.Elapsed)
}

// TestReopenAfterTornSegmentHeader covers a crash during segment
// creation itself: the new segment's 13-byte header was only partially
// written. Open must rebuild the segment rather than appending records
// to a headerless file replay would reject.
func TestReopenAfterTornSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	for i := uint64(0); i < 5; i++ {
		if err := w.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-tear a fresh next segment's header.
	next := segmentPath(dir, 2)
	if err := os.WriteFile(next, []byte{0x43, 0x47, 0x57}, 0o644); err != nil {
		t.Fatal(err)
	}
	w = mustOpen(t, dir, Options{Sync: SyncNone})
	if err := w.Append(OpInsert, 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var count uint64
	stats, err := Replay(dir, 0, func(Op, uint64, uint64) error { count++; return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if count != 6 || stats.Segments != 2 {
		t.Fatalf("replayed %d records over %d segments, want 6 over 2", count, stats.Segments)
	}
}

// TestCorruptionDeepInLastSegmentFails pins the torn-vs-corrupt rule:
// only damage within one frame of end-of-file is a tear. A flipped bit
// deep in the newest segment, with plenty of intact data after it,
// must fail recovery rather than silently dropping acknowledged
// records.
func TestCorruptionDeepInLastSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := w.Append(OpInsert, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Replay err = %v, want ErrCorrupt", err)
	}
	// Open must refuse too — appending after silent truncation would
	// bury the damage.
	if _, err := Open(dir, Options{Sync: SyncNone}); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Open err = %v, want ErrCorrupt", err)
	}
}

// TestDirectoryLockExcludesSecondWriter: two processes (or two WALs in
// one process) must not interleave appends into the same directory.
func TestDirectoryLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	if _, err := Open(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("second Open of a locked WAL dir succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
