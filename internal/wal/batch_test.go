package wal

import (
	"errors"
	"os"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
)

// TestAppendBatchRoundTrip: a mixed batch logged as one record must
// replay as the same ops in the same order, interleaved correctly with
// surrounding single-op records.
func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	if err := w.Append(OpInsert, 100, 200); err != nil {
		t.Fatal(err)
	}
	batch := core.Batch{}.Insert(1, 2).Delete(3, 4).Insert(5, 6).Delete(1, 2)
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpDelete, 100, 200); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got core.Batch
	stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
		got = append(got, core.Op{Kind: core.OpKind(op), U: u, V: v})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := append(core.Batch{core.InsertOp(100, 200)}, batch...)
	want = append(want, core.DeleteOp(100, 200))
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Records != uint64(len(want)) {
		t.Fatalf("Records = %d, want %d", stats.Records, len(want))
	}
	if stats.BatchRecords != 1 {
		t.Fatalf("BatchRecords = %d, want 1", stats.BatchRecords)
	}
}

// TestAppendBatchEdgeSizes: empty batches are no-ops and size-1 batches
// fall back to the compact single-op framing.
func TestAppendBatchEdgeSizes(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	if err := w.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(core.Batch{}.Insert(7, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var n uint64
	stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
		n++
		if op != OpInsert || u != 7 || v != 8 {
			t.Fatalf("replayed (%v,%d,%d)", op, u, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || stats.BatchRecords != 0 {
		t.Fatalf("replayed %d ops, %d batch records; want 1 single-op record", n, stats.BatchRecords)
	}
}

// TestAppendBatchChunksHugeBatches: a batch past maxBatchOps splits
// into several records but survives replay intact and ordered.
func TestAppendBatchChunksHugeBatches(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	n := maxBatchOps + 17
	b := make(core.Batch, 0, n)
	for i := 0; i < n; i++ {
		b = b.Insert(uint64(i), uint64(i)+1)
	}
	if err := w.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var i uint64
	stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
		if op != OpInsert || u != i || v != i+1 {
			t.Fatalf("op %d replayed as (%v,%d,%d)", i, op, u, v)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != uint64(n) {
		t.Fatalf("replayed %d ops, want %d", i, n)
	}
	if stats.BatchRecords != 2 {
		t.Fatalf("BatchRecords = %d, want 2 (chunked)", stats.BatchRecords)
	}
}

// TestAppendBatchRejectsUnknownKind: unloggable ops must fail up front,
// before anything reaches the file.
func TestAppendBatchRejectsUnknownKind(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	defer w.Close()
	bad := core.Batch{core.InsertOp(1, 2), {Kind: 77, U: 3, V: 4}}
	if err := w.AppendBatch(bad); err == nil {
		t.Fatal("AppendBatch accepted an unknown op kind")
	}
	var n int
	if _, err := Replay(dir, 0, func(Op, uint64, uint64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("rejected batch leaked %d ops into the log", n)
	}
}

// TestTornBatchTailDroppedWhole cuts a trailing batch record at many
// byte boundaries: replay must drop the whole batch — never a partial
// one — and keep every record before it.
func TestTornBatchTailDroppedWhole(t *testing.T) {
	build := func(t *testing.T, dir string, withBatch bool) int64 {
		w := mustOpen(t, dir, Options{Sync: SyncNone})
		for i := uint64(0); i < 10; i++ {
			if err := w.Append(OpInsert, i, i+1); err != nil {
				t.Fatal(err)
			}
		}
		if withBatch {
			batch := core.Batch{}.Insert(1000, 1001).Insert(1002, 1003).Delete(1000, 1001).Insert(1004, 1005)
			if err := w.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(lastSegment(t, dir))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	// The batch record is everything after the 10 single-op frames;
	// cut it at every boundary from "missing 1 byte" to "missing all".
	full := build(t, t.TempDir(), true)
	batchBytes := full - build(t, t.TempDir(), false)
	if batchBytes <= 0 {
		t.Fatalf("bad frame arithmetic: full=%d batch=%d", full, batchBytes)
	}
	for cut := int64(1); cut <= batchBytes; cut += 3 {
		dir := t.TempDir()
		build(t, dir, true)
		truncateBy(t, lastSegment(t, dir), cut)
		var ops, batchOps uint64
		stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
			ops++
			if u >= 1000 {
				batchOps++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: Replay: %v", cut, err)
		}
		if batchOps != 0 {
			t.Fatalf("cut %d: %d ops of the torn batch applied — batches must be atomic", cut, batchOps)
		}
		if ops != 10 {
			t.Fatalf("cut %d: replayed %d ops, want the 10 intact singles", cut, ops)
		}
		if stats.TornBytes == 0 {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
	}
}

// TestCorruptBatchBeforeIntactDataFails: a damaged batch record with
// intact records after it is corruption, not a tear, even in the
// newest segment.
func TestCorruptBatchBeforeIntactDataFails(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	big := make(core.Batch, 0, 200)
	for i := uint64(0); i < 200; i++ {
		big = big.Insert(i, i+1)
	}
	if err := w.AppendBatch(big); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		if err := w.Append(OpInsert, 5000+i, 5000+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the batch payload (well past the header).
	data[segHeaderSize+20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("Replay err = %v, want ErrCorrupt", err)
	}
}

// TestRecoverThroughBatchRecords: sharded mutations logged via the
// batch path must recover to the identical graph.
func TestRecoverThroughBatchRecords(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	g := sharded.New(sharded.Config{Shards: 4, WAL: w})
	var b core.Batch
	for i := uint64(0); i < 5000; i++ {
		b = b.Insert(i%512, i)
		if i%7 == 0 {
			b = b.Delete(i%512, i-1)
		}
		if len(b) >= 256 {
			g.ApplyBatch(b)
			b = b[:0]
		}
	}
	g.ApplyBatch(b)
	if err := g.LogErr(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, stats, err := Recover(dir, sharded.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replay.BatchRecords == 0 {
		t.Fatal("recovery saw no batch records — the batch path was not exercised")
	}
	if rec.NumEdges() != g.NumEdges() || rec.NumNodes() != g.NumNodes() {
		t.Fatalf("recovered %d edges / %d nodes, want %d / %d",
			rec.NumEdges(), rec.NumNodes(), g.NumEdges(), g.NumNodes())
	}
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v uint64) bool {
			if !rec.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) lost in recovery", u, v)
			}
			return true
		})
		return true
	})
}
