package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/vfs"
)

// testCfg pins the shard count so replayed graphs are structurally
// identical to the originals regardless of GOMAXPROCS.
func testCfg() sharded.Config { return sharded.Config{Shards: 8} }

// rng is a tiny splitmix64 so tests are deterministic without seeding
// math/rand.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

type edge struct{ u, v uint64 }

func randomEdges(n int, nodes uint64, seed uint64) []edge {
	r := rng(seed)
	out := make([]edge, n)
	for i := range out {
		out[i] = edge{r.next() % nodes, r.next() % nodes}
	}
	return out
}

func edgeSet(g *sharded.Graph) map[edge]bool {
	set := map[edge]bool{}
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v uint64) bool {
			set[edge{u, v}] = true
			return true
		})
		return true
	})
	return set
}

// requireSameGraph asserts got replays to the same edge set and the
// same structural Stats as want — the "identical Stats()/edge set"
// acceptance bar.
func requireSameGraph(t *testing.T, want, got *sharded.Graph) {
	t.Helper()
	if w, g := want.Stats(), got.Stats(); !reflect.DeepEqual(w, g) {
		t.Fatalf("stats diverge:\nwant %+v\ngot  %+v", w, g)
	}
	if w, g := edgeSet(want), edgeSet(got); !reflect.DeepEqual(w, g) {
		t.Fatalf("edge sets diverge: want %d edges, got %d", len(w), len(g))
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	type rec struct {
		op   Op
		u, v uint64
	}
	want := []rec{
		{OpInsert, 1, 2}, {OpInsert, 1, 3}, {OpDelete, 1, 2},
		{OpInsert, 0, 0}, {OpInsert, ^uint64(0), 1 << 40},
	}
	for _, r := range want {
		if err := w.Append(r.op, r.u, r.v); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var got []rec
	stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
		got = append(got, rec{op, u, v})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("records diverge:\nwant %v\ngot  %v", want, got)
	}
	if stats.Records != uint64(len(want)) || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v, want %d records and no torn bytes", stats, len(want))
	}
}

func TestReopenContinuesLog(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone})
	if err := w.Append(OpInsert, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w = mustOpen(t, dir, Options{Sync: SyncNone})
	if err := w.Append(OpInsert, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var n uint64
	stats, err := Replay(dir, 0, func(Op, uint64, uint64) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || stats.Records != 2 {
		t.Fatalf("replayed %d records (stats %+v), want 2", n, stats)
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := w.Append(OpInsert, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 10 {
		t.Fatalf("expected many segments at 256B threshold, got %d", len(segs))
	}
	var i uint64
	stats, err := Replay(dir, 0, func(op Op, u, v uint64) error {
		if op != OpInsert || u != i || v != i+1 {
			t.Fatalf("record %d = %v(%d,%d)", i, op, u, v)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n || stats.Segments != len(segs) {
		t.Fatalf("stats = %+v, want %d records over %d segments", stats, n, len(segs))
	}
}

func TestConcurrentGroupCommitReplaysDeterministically(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 64 << 10})
	cfg := testCfg()
	cfg.WAL = w
	g := sharded.New(cfg)

	edges := randomEdges(20_000, 2_000, 7)
	var wg sync.WaitGroup
	const writers = 8
	chunk := len(edges) / writers
	for p := 0; p < writers; p++ {
		part := edges[p*chunk : (p+1)*chunk]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, e := range part {
				g.InsertEdge(e.u, e.v)
				if i%7 == 0 {
					g.DeleteEdge(e.u, e.v)
				}
			}
		}()
	}
	wg.Wait()
	if err := g.LogErr(); err != nil {
		t.Fatalf("LogErr: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats, err := Recover(dir, testCfg())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Replay.Records == 0 || stats.Replay.TornBytes != 0 {
		t.Fatalf("unexpected replay stats %+v", stats.Replay)
	}
	requireSameGraph(t, g, got)
}

func TestCheckpointThenReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 32 << 10})
	cfg := testCfg()
	cfg.WAL = w
	g := sharded.New(cfg)

	edges := randomEdges(30_000, 3_000, 11)
	for _, e := range edges[:len(edges)/2] {
		g.InsertEdge(e.u, e.v)
	}
	path, err := Checkpoint(g, w)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	for i, e := range edges[len(edges)/2:] {
		g.InsertEdge(e.u, e.v)
		if i%5 == 0 {
			g.DeleteEdge(e.u, e.v)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats, err := Recover(dir, testCfg())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Snapshot != path {
		t.Fatalf("recovered from %q, want checkpoint %q", stats.Snapshot, path)
	}
	// The snapshot re-orders edges, so kick/transformation counters may
	// legitimately differ from the continuously-built graph; the edge
	// set and logical sizes must not.
	if w, gs := edgeSet(g), edgeSet(got); !reflect.DeepEqual(w, gs) {
		t.Fatalf("edge sets diverge: want %d, got %d", len(w), len(gs))
	}
	if g.NumEdges() != got.NumEdges() || g.NumNodes() != got.NumNodes() {
		t.Fatalf("counts diverge: want %d/%d, got %d/%d",
			g.NumEdges(), g.NumNodes(), got.NumEdges(), got.NumNodes())
	}
}

func TestCheckpointTruncatesSegmentsAndOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 1 << 10})
	cfg := testCfg()
	cfg.WAL = w
	g := sharded.New(cfg)
	for _, e := range randomEdges(2_000, 500, 3) {
		g.InsertEdge(e.u, e.v)
	}
	first, err := Checkpoint(g, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range randomEdges(2_000, 500, 4) {
		g.InsertEdge(e.u, e.v)
	}
	second, err := Checkpoint(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(first); !os.IsNotExist(err) {
		t.Fatalf("first checkpoint %s should be compacted away, stat err=%v", first, err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := segIndexOf(second)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.index < cut {
			t.Fatalf("segment %d survived checkpoint cut %d", s.index, cut)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Recover(dir, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edgeSet(g), edgeSet(got)) {
		t.Fatal("edge sets diverge after compaction")
	}
}

// segIndexOf recovers the cut segment from a checkpoint file name.
func segIndexOf(path string) (uint64, error) {
	name := filepath.Base(path)
	name = strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
	return strconv.ParseUint(name, 10, 64)
}

func TestCorruptionMidLogIsTyped(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncNone, SegmentBytes: 512})
	for i := uint64(0); i < 500; i++ {
		if err := w.Append(OpInsert, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	// Flip a payload byte in a middle segment: unlike a torn tail this
	// must be reported, not skipped.
	victim := segs[1].path
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+5] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, func(Op, uint64, uint64) error { return nil })
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *core.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *core.CorruptError", err)
	}
	if ce.Offset < segHeaderSize {
		t.Fatalf("corruption offset %d points into the header", ce.Offset)
	}
	if ce.Source != filepath.Base(victim) {
		t.Fatalf("corruption source %q, want %q", ce.Source, filepath.Base(victim))
	}
}

func TestSyncAsyncDrainsOnClose(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncAsync})
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		if err := w.Append(OpInsert, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n {
		t.Fatalf("replayed %d records, want %d", stats.Records, n)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpInsert, 1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func BenchmarkAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		sync SyncPolicy
	}{{"nosync", SyncNone}, {"async", SyncAsync}} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.RunParallel(func(pb *testing.PB) {
				r := rng(1)
				for pb.Next() {
					if err := w.Append(OpInsert, r.next()%1000, r.next()%1000); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
