package pma

import (
	"sort"
	"testing"
	"testing/quick"

	"cuckoograph/internal/hashutil"
)

func TestPMAInsertOrdered(t *testing.T) {
	p := New()
	for i := uint64(1); i <= 1000; i++ {
		if !p.Insert(i * 7 % 1009) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if p.Len() != 1000 {
		t.Fatalf("len %d, want 1000", p.Len())
	}
	var got []uint64
	p.ForEach(func(k uint64) bool {
		got = append(got, k)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("PMA iteration not sorted")
	}
	if len(got) != 1000 {
		t.Fatalf("iterated %d keys, want 1000", len(got))
	}
}

func TestPMADuplicates(t *testing.T) {
	p := New()
	if !p.Insert(5) || p.Insert(5) {
		t.Fatal("duplicate handling wrong")
	}
	if p.Len() != 1 {
		t.Fatalf("len %d, want 1", p.Len())
	}
}

func TestPMADeleteAndShrink(t *testing.T) {
	p := New()
	for i := uint64(0); i < 2000; i++ {
		p.Insert(i)
	}
	capAtPeak := p.Capacity()
	for i := uint64(0); i < 1990; i++ {
		if !p.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if p.Len() != 10 {
		t.Fatalf("len %d, want 10", p.Len())
	}
	if p.Capacity() >= capAtPeak {
		t.Fatalf("capacity did not shrink: %d → %d", capAtPeak, p.Capacity())
	}
	for i := uint64(1990); i < 2000; i++ {
		if !p.Contains(i) {
			t.Fatalf("survivor %d missing", i)
		}
	}
	if p.Delete(12345) {
		t.Fatal("delete of absent key reported true")
	}
}

func TestPMARange(t *testing.T) {
	p := New()
	for i := uint64(0); i < 100; i++ {
		p.Insert(i * 10)
	}
	var got []uint64
	p.Range(250, 500, func(k uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 25 || got[0] != 250 || got[len(got)-1] != 490 {
		t.Fatalf("range [250,500) = %v", got)
	}
}

func TestPMAQuickModel(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		p := New()
		model := map[uint64]bool{}
		rng := hashutil.NewRNG(seed | 1)
		for _, op := range ops {
			k := uint64(op % 509)
			switch rng.Intn(3) {
			case 0:
				if p.Insert(k) == model[k] {
					return false
				}
				model[k] = true
			case 1:
				if p.Delete(k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if p.Contains(k) != model[k] {
					return false
				}
			}
		}
		return p.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
