// Package pma implements a Packed Memory Array [44 in the paper]: a
// sorted array with interspersed gaps that supports O(log² n) amortized
// inserts and deletes while keeping elements physically ordered. It is
// the substrate PCSR [26] builds on to make CSR dynamic.
package pma

import "math"

const (
	segBits = 5 // segment size 32
	segSize = 1 << segBits
)

// PMA is a packed memory array of uint64 keys. The zero value is not
// usable; call New.
type PMA struct {
	data []uint64
	used []bool
	n    int
}

// New returns an empty PMA.
func New() *PMA {
	return &PMA{data: make([]uint64, segSize), used: make([]bool, segSize)}
}

// Len returns the number of stored keys.
func (p *PMA) Len() int { return p.n }

// Capacity returns the slot count of the backing array.
func (p *PMA) Capacity() int { return len(p.data) }

// height returns the number of levels of the implicit tree.
func (p *PMA) height() int {
	return int(math.Log2(float64(len(p.data)/segSize))) + 1
}

// thresholds returns the max density for a window at the given level
// (level 0 = leaf segment). Classic PMA: leaf max 1.0 down to root 0.5.
func (p *PMA) maxDensity(level int) float64 {
	h := p.height()
	if h <= 1 {
		return 1.0
	}
	return 1.0 - 0.5*float64(level)/float64(h-1)
}

func (p *PMA) minDensity(level int) float64 {
	h := p.height()
	if h <= 1 {
		return 0.0
	}
	return 0.25 - 0.125*float64(level)/float64(h-1)
}

// findSlot returns the index of the first used slot with key ≥ key, or
// len(data) if none. It binary-searches over segments then scans.
func (p *PMA) findSlot(key uint64) int {
	lo, hi := 0, len(p.data)/segSize // segment range [lo,hi)
	for lo < hi {
		mid := (lo + hi) / 2
		// Last used key in segment mid, if any.
		last, ok := p.lastInSeg(mid)
		if ok && last < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo * segSize; i < len(p.data); i++ {
		if p.used[i] && p.data[i] >= key {
			return i
		}
	}
	return len(p.data)
}

func (p *PMA) lastInSeg(seg int) (uint64, bool) {
	for i := (seg+1)*segSize - 1; i >= seg*segSize; i-- {
		if p.used[i] {
			return p.data[i], true
		}
	}
	return 0, false
}

// Contains reports whether key is stored.
func (p *PMA) Contains(key uint64) bool {
	i := p.findSlot(key)
	return i < len(p.data) && p.data[i] == key
}

// Insert stores key, reporting whether it was newly added.
func (p *PMA) Insert(key uint64) bool {
	i := p.findSlot(key)
	if i < len(p.data) && p.used[i] && p.data[i] == key {
		return false
	}
	p.insertAt(i, key)
	p.n++
	return true
}

// insertAt places key before index i (i may be len(data) to append),
// shifting toward the nearest free slot and rebalancing up the implicit
// tree as densities overflow.
func (p *PMA) insertAt(i int, key uint64) {
	// Find a free slot at or after i by shifting the run right.
	j := i
	for j < len(p.data) && p.used[j] {
		j++
	}
	if j < len(p.data) {
		// Move i..j-1 one slot right, place key at i.
		copy(p.data[i+1:j+1], p.data[i:j])
		p.data[i] = key
		p.used[j] = true
		p.rebalanceAround(i)
		return
	}
	// No room to the right: find a free slot before i and shift left,
	// placing key at i-1 (still before the old occupant of i).
	j = i - 1
	for j >= 0 && p.used[j] {
		j--
	}
	if j < 0 {
		p.grow()
		p.insertAt(p.findSlot(key), key)
		return
	}
	copy(p.data[j:i-1], p.data[j+1:i])
	p.data[i-1] = key
	p.used[j] = true
	p.rebalanceAround(i - 1)
}

// Delete removes key, reporting whether it existed.
func (p *PMA) Delete(key uint64) bool {
	i := p.findSlot(key)
	if i >= len(p.data) || !p.used[i] || p.data[i] != key {
		return false
	}
	// Compact the segment locally: shift left within the tail of used
	// slots that directly follow i in this run.
	j := i
	for j+1 < len(p.data) && p.used[j+1] && (j+1)%segSize != 0 {
		j++
	}
	copy(p.data[i:j], p.data[i+1:j+1])
	p.used[j] = false
	p.n--
	if p.n > 0 && p.n < len(p.data)/4 && len(p.data) > segSize {
		p.shrink()
	}
	return true
}

// rebalanceAround redistributes the smallest enclosing window whose
// density is within bounds, growing the array if the root overflows.
func (p *PMA) rebalanceAround(i int) {
	size := segSize
	start := i / segSize * segSize
	level := 0
	for {
		cnt := 0
		for j := start; j < start+size && j < len(p.data); j++ {
			if p.used[j] {
				cnt++
			}
		}
		if float64(cnt)/float64(size) <= p.maxDensity(level) {
			p.redistribute(start, size)
			return
		}
		if size >= len(p.data) {
			p.grow()
			return
		}
		size *= 2
		start = start / size * size
		level++
	}
}

// redistribute spreads the window's keys evenly over its slots.
func (p *PMA) redistribute(start, size int) {
	end := start + size
	if end > len(p.data) {
		end = len(p.data)
	}
	keys := make([]uint64, 0, size)
	for j := start; j < end; j++ {
		if p.used[j] {
			keys = append(keys, p.data[j])
			p.used[j] = false
		}
	}
	if len(keys) == 0 {
		return
	}
	step := float64(end-start) / float64(len(keys))
	for k, key := range keys {
		pos := start + int(float64(k)*step)
		p.data[pos] = key
		p.used[pos] = true
	}
}

// grow doubles the array and redistributes everything.
func (p *PMA) grow() { p.resize(len(p.data) * 2) }

// shrink halves the array.
func (p *PMA) shrink() { p.resize(len(p.data) / 2) }

func (p *PMA) resize(newCap int) {
	if newCap < segSize {
		newCap = segSize
	}
	keys := make([]uint64, 0, p.n)
	for j, u := range p.used {
		if u {
			keys = append(keys, p.data[j])
		}
	}
	p.data = make([]uint64, newCap)
	p.used = make([]bool, newCap)
	if len(keys) == 0 {
		return
	}
	step := float64(newCap) / float64(len(keys))
	if step < 1 {
		step = 1
	}
	for k, key := range keys {
		pos := int(float64(k) * step)
		if pos >= newCap {
			pos = newCap - 1
		}
		// Collisions can only happen when step snaps; probe forward.
		for p.used[pos] {
			pos++
		}
		p.data[pos] = key
		p.used[pos] = true
	}
	p.n = len(keys)
}

// Range calls fn for every key in [from, to) in ascending order until fn
// returns false.
func (p *PMA) Range(from, to uint64, fn func(key uint64) bool) {
	for i := p.findSlot(from); i < len(p.data); i++ {
		if !p.used[i] {
			continue
		}
		if p.data[i] >= to {
			return
		}
		if !fn(p.data[i]) {
			return
		}
	}
}

// ForEach calls fn for every key in ascending order.
func (p *PMA) ForEach(fn func(key uint64) bool) {
	for i := range p.data {
		if p.used[i] && !fn(p.data[i]) {
			return
		}
	}
}

// MemoryBytes returns the structural bytes of the array (8 B key + 1 B
// occupancy per slot).
func (p *PMA) MemoryBytes() uint64 { return uint64(len(p.data))*9 + 48 }
