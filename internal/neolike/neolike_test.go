package neolike

import "testing"

func TestPropertyGraphBasics(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		db := New()
		if indexed {
			db = WithIndex()
		}
		db.CreateNode(1, "Person")
		db.CreateNode(2, "Person")
		r1 := db.CreateRelationship(1, 2, "KNOWS")
		r2 := db.CreateRelationship(1, 2, "LIKES")
		db.CreateRelationship(2, 1, "KNOWS")

		if db.NumNodes() != 2 || db.NumRelationships() != 3 {
			t.Fatalf("indexed=%v: nodes %d rels %d", indexed, db.NumNodes(), db.NumRelationships())
		}
		if l, ok := db.Label(1); !ok || l != "Person" {
			t.Fatalf("label = %q,%v", l, ok)
		}
		rels := db.Relationships(1, 2)
		if len(rels) != 2 {
			t.Fatalf("indexed=%v: rels(1,2) = %d, want 2", indexed, len(rels))
		}
		if !db.HasRelationship(2, 1) || db.HasRelationship(2, 9) {
			t.Fatalf("indexed=%v: HasRelationship wrong", indexed)
		}
		if err := db.SetProperty(r1, "since", "2020"); err != nil {
			t.Fatal(err)
		}
		if db.rels[r1].Props["since"] != "2020" {
			t.Fatal("property not stored")
		}
		if err := db.SetProperty(999, "k", "v"); err == nil {
			t.Fatal("property on missing rel accepted")
		}
		if !db.DeleteRelationship(r2) || db.DeleteRelationship(r2) {
			t.Fatalf("indexed=%v: delete semantics wrong", indexed)
		}
		if got := len(db.Relationships(1, 2)); got != 1 {
			t.Fatalf("indexed=%v: rels after delete = %d, want 1", indexed, got)
		}
		if db.OutDegree(1) != 1 {
			t.Fatalf("out degree = %d, want 1", db.OutDegree(1))
		}
	}
}

// TestIndexedMatchesPure checks both engines answer identically over a
// random multi-edge workload — the index is a pure accelerator.
func TestIndexedMatchesPure(t *testing.T) {
	pure, idx := New(), WithIndex()
	x := uint64(2463534242)
	next := func() uint64 { x ^= x << 13; x ^= x >> 17; x ^= x << 5; return x }
	type key struct{ u, v uint64 }
	ids := map[key][]uint64{}
	for i := 0; i < 3000; i++ {
		u, v := next()%50, next()%50
		a := pure.CreateRelationship(u, v, "E")
		b := idx.CreateRelationship(u, v, "E")
		if a != b {
			t.Fatalf("id divergence %d vs %d", a, b)
		}
		ids[key{u, v}] = append(ids[key{u, v}], a)
	}
	for k, want := range ids {
		p := pure.Relationships(k.u, k.v)
		q := idx.Relationships(k.u, k.v)
		if len(p) != len(want) || len(q) != len(want) {
			t.Fatalf("pair %v: pure %d idx %d want %d", k, len(p), len(q), len(want))
		}
	}
	// Delete everything through both engines; they must agree edge by edge.
	for k, list := range ids {
		for _, id := range list {
			if pure.DeleteRelationship(id) != idx.DeleteRelationship(id) {
				t.Fatalf("delete divergence at %d", id)
			}
		}
		if pure.HasRelationship(k.u, k.v) || idx.HasRelationship(k.u, k.v) {
			t.Fatalf("pair %v survives full deletion", k)
		}
	}
}
