// Package neolike is a miniature Neo4j-style property-graph engine: it
// stores nodes with labels, and relationships (multi-edges with ids and
// properties) in per-node adjacency lists. Pure-engine edge queries
// traverse the source node's adjacency list and compare edges one by
// one — exactly the inefficiency §V-G describes. WithIndex attaches a
// CuckooGraph Multi as an edge index so queries obtain an O(1) iterator
// over the parallel edges of ⟨u,v⟩ instead of scanning the list.
package neolike

import (
	"fmt"

	"cuckoograph/internal/core"
)

// Relationship is one edge with identity and an optional property map.
type Relationship struct {
	ID    uint64
	From  uint64
	To    uint64
	Type  string
	Props map[string]string
}

// node is the per-node record with its adjacency list (Neo4j keeps the
// edge in the lists of both endpoints).
type node struct {
	label string
	out   []*Relationship
	in    []*Relationship
}

// DB is the property-graph engine.
type DB struct {
	nodes  map[uint64]*node
	rels   map[uint64]*Relationship
	nextID uint64

	index *core.Multi // nil without the CuckooGraph edge index
}

// New returns an empty DB without the CuckooGraph index (pure engine).
func New() *DB {
	return &DB{nodes: make(map[uint64]*node), rels: make(map[uint64]*Relationship)}
}

// WithIndex returns a DB accelerated by a CuckooGraph Multi edge index.
func WithIndex() *DB {
	db := New()
	db.index = core.NewMulti(core.Config{})
	return db
}

// Indexed reports whether the CuckooGraph index is attached.
func (db *DB) Indexed() bool { return db.index != nil }

// CreateNode upserts a node with the given label.
func (db *DB) CreateNode(id uint64, label string) {
	if n := db.nodes[id]; n != nil {
		n.label = label
		return
	}
	db.nodes[id] = &node{label: label}
}

// Label returns a node's label.
func (db *DB) Label(id uint64) (string, bool) {
	n := db.nodes[id]
	if n == nil {
		return "", false
	}
	return n.label, true
}

// CreateRelationship adds an edge from → to and returns its id. Nodes
// are created implicitly, as in Cypher's MERGE.
func (db *DB) CreateRelationship(from, to uint64, relType string) uint64 {
	if db.nodes[from] == nil {
		db.CreateNode(from, "")
	}
	if db.nodes[to] == nil {
		db.CreateNode(to, "")
	}
	db.nextID++
	rel := &Relationship{ID: db.nextID, From: from, To: to, Type: relType}
	db.rels[rel.ID] = rel
	db.nodes[from].out = append(db.nodes[from].out, rel)
	db.nodes[to].in = append(db.nodes[to].in, rel)
	if db.index != nil {
		db.index.InsertEdge(from, to, rel.ID)
	}
	return rel.ID
}

// SetProperty attaches a property to a relationship.
func (db *DB) SetProperty(relID uint64, key, value string) error {
	rel := db.rels[relID]
	if rel == nil {
		return fmt.Errorf("neolike: no relationship %d", relID)
	}
	if rel.Props == nil {
		rel.Props = make(map[string]string)
	}
	rel.Props[key] = value
	return nil
}

// Relationships returns every edge from → to. Without the index this
// traverses from's adjacency list comparing one by one (§V-G: "we have
// to find the adjacency list of u, and then traverse the list and
// compare the edges one by one"); with the index it resolves the
// ⟨u,v⟩ slot in O(1) and follows the per-pair edge list.
func (db *DB) Relationships(from, to uint64) []*Relationship {
	if db.index != nil {
		it := db.index.Edges(from, to)
		out := make([]*Relationship, 0, it.Len())
		for id, ok := it.Next(); ok; id, ok = it.Next() {
			if rel := db.rels[id]; rel != nil {
				out = append(out, rel)
			}
		}
		return out
	}
	n := db.nodes[from]
	if n == nil {
		return nil
	}
	var out []*Relationship
	for _, rel := range n.out {
		if rel.To == to {
			out = append(out, rel)
		}
	}
	return out
}

// HasRelationship reports whether any edge connects from → to.
func (db *DB) HasRelationship(from, to uint64) bool {
	if db.index != nil {
		return db.index.HasEdge(from, to)
	}
	n := db.nodes[from]
	if n == nil {
		return false
	}
	for _, rel := range n.out {
		if rel.To == to {
			return true
		}
	}
	return false
}

// DeleteRelationship removes the edge with the given id.
func (db *DB) DeleteRelationship(relID uint64) bool {
	rel := db.rels[relID]
	if rel == nil {
		return false
	}
	delete(db.rels, relID)
	if n := db.nodes[rel.From]; n != nil {
		n.out = removeRel(n.out, relID)
	}
	if n := db.nodes[rel.To]; n != nil {
		n.in = removeRel(n.in, relID)
	}
	if db.index != nil {
		db.index.DeleteEdge(rel.From, rel.To, relID)
	}
	return true
}

func removeRel(list []*Relationship, id uint64) []*Relationship {
	for i, rel := range list {
		if rel.ID == id {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// OutDegree returns the number of outgoing relationships of a node.
func (db *DB) OutDegree(id uint64) int {
	if n := db.nodes[id]; n != nil {
		return len(n.out)
	}
	return 0
}

// NumRelationships returns the total edge count.
func (db *DB) NumRelationships() int { return len(db.rels) }

// NumNodes returns the node count.
func (db *DB) NumNodes() int { return len(db.nodes) }
