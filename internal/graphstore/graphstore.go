// Package graphstore defines the interfaces every graph storage scheme in
// this repository implements. CuckooGraph and all baseline competitors
// (LiveGraph, Sortledton, WBI, Spruce, adjacency list, PCSR) satisfy
// Store, so the analytics and benchmark harnesses treat them uniformly.
package graphstore

import (
	"cuckoograph/internal/core"
	"cuckoograph/internal/csr"
)

// NodeID identifies a graph node. The paper uses 8-byte identifiers.
type NodeID = uint64

// Store is a directed dynamic graph holding distinct edges ⟨u,v⟩.
type Store interface {
	// InsertEdge adds the edge ⟨u,v⟩. It reports whether the edge was
	// newly inserted (false if it already existed).
	InsertEdge(u, v NodeID) bool

	// HasEdge reports whether the edge ⟨u,v⟩ is stored.
	HasEdge(u, v NodeID) bool

	// DeleteEdge removes the edge ⟨u,v⟩, reporting whether it existed.
	DeleteEdge(u, v NodeID) bool

	// ForEachSuccessor calls fn for every successor v of u until fn
	// returns false. Order is unspecified.
	ForEachSuccessor(u NodeID, fn func(v NodeID) bool)

	// NumEdges returns the number of distinct edges stored.
	NumEdges() uint64

	// MemoryUsage returns the structural bytes held by the store:
	// arrays, buckets, block headers and one machine word per pointer.
	// It deliberately excludes Go runtime overhead so that the space
	// comparison across schemes matches the paper's physical-memory
	// metric without GC skew.
	MemoryUsage() uint64
}

// WeightedStore is a Store for streaming scenarios with duplicate edges:
// each distinct ⟨u,v⟩ carries a weight w counting its multiplicity
// (paper §III-B).
type WeightedStore interface {
	Store

	// Weight returns the weight of ⟨u,v⟩ and whether it exists.
	Weight(u, v NodeID) (uint64, bool)
}

// BatchStore is satisfied by stores with a native batched mutation
// path (the CuckooGraph engines). Harnesses that bulk-load a stream
// should type-assert for it and fall back to per-edge InsertEdge.
type BatchStore interface {
	ApplyBatch(b core.Batch) core.BatchResult
}

// View is a read-only, point-in-time Store: a consistent frozen cut of
// a live graph stamped with the epoch at which it was taken. Reads
// never block writers on the underlying graph. The mutating Store
// methods of a View panic. Release frees the copy-on-write state the
// view pinned; using a view after Release is a programming error.
type View interface {
	Store

	// Epoch is the monotonic snapshot counter value stamped when the
	// view was taken. Later snapshots always carry greater epochs.
	Epoch() uint64

	// Release drops the caller's reference to the view. Once the last
	// holder releases, the underlying graph stops preserving pre-images
	// for it and everything it pinned becomes collectable. Extra
	// Releases are ignored.
	Release()
}

// Snapshotter is implemented by stores that can produce consistent
// frozen views without blocking subsequent writers (the sharded
// CuckooGraph engine, whose concrete Snapshot method this wraps).
// Analytics harnesses should type-assert for it and run on a snapshot
// so long passes never stall ingestion.
type Snapshotter interface {
	SnapshotView() View
}

// Indexed is the analytics-acceleration capability: a store (in
// practice a frozen View) that can hand out a compiled compressed-
// sparse-row index of itself. The analytics kernels type-assert for it
// and, when present, run over the index's flat dense-id arrays instead
// of per-edge store probes and per-node map allocations; every other
// store runs the identical algorithms through the Store interface (the
// fallback path, which doubles as the differential oracle for the CSR
// one). Implementations memoize the index — the sharded engine builds
// it lazily per snapshot epoch and frees it with the view's last
// Release — so CSR() is cheap to call on every kernel entry.
type Indexed interface {
	// CSR returns the compiled index of the store's current (frozen)
	// contents. The index is immutable and safe for concurrent use.
	CSR() *csr.Index
}

// Degreer is the O(1)-ish degree capability: stores that track
// per-node population counters (the CuckooGraph engines, whose Degree
// reads R counters instead of scanning the adjacency) implement it,
// and the Degree helper below prefers it over a full successor scan.
type Degreer interface {
	Degree(u NodeID) int
}

// Successors collects u's successors into a fresh slice.
func Successors(s Store, u NodeID) []NodeID {
	var out []NodeID
	s.ForEachSuccessor(u, func(v NodeID) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Degree returns u's out-degree: the store's counter-backed Degree
// when it has one (see Degreer), a successor scan otherwise.
func Degree(s Store, u NodeID) int {
	if d, ok := s.(Degreer); ok {
		return d.Degree(u)
	}
	n := 0
	s.ForEachSuccessor(u, func(NodeID) bool {
		n++
		return true
	})
	return n
}

// Factory constructs an empty store; the benchmark harness uses one per
// scheme so each trial starts cold.
type Factory struct {
	Name string
	New  func() Store
}
