package graphstore

import "testing"

// fake is a minimal in-memory Store for testing the package helpers.
type fake struct {
	adj map[NodeID][]NodeID
}

func (f *fake) InsertEdge(u, v NodeID) bool {
	f.adj[u] = append(f.adj[u], v)
	return true
}
func (f *fake) HasEdge(u, v NodeID) bool {
	for _, got := range f.adj[u] {
		if got == v {
			return true
		}
	}
	return false
}
func (f *fake) DeleteEdge(u, v NodeID) bool { return false }
func (f *fake) ForEachSuccessor(u NodeID, fn func(v NodeID) bool) {
	for _, v := range f.adj[u] {
		if !fn(v) {
			return
		}
	}
}
func (f *fake) NumEdges() uint64    { return 0 }
func (f *fake) MemoryUsage() uint64 { return 0 }

func TestSuccessorsHelper(t *testing.T) {
	s := &fake{adj: map[NodeID][]NodeID{1: {2, 3, 4}}}
	got := Successors(s, 1)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("Successors = %v", got)
	}
	if out := Successors(s, 9); out != nil {
		t.Fatalf("Successors of absent node = %v, want nil", out)
	}
}

func TestDegreeHelper(t *testing.T) {
	s := &fake{adj: map[NodeID][]NodeID{1: {2, 3}}}
	if Degree(s, 1) != 2 || Degree(s, 2) != 0 {
		t.Fatal("Degree helper wrong")
	}
}
