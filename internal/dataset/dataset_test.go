package dataset

import (
	"math"
	"testing"
)

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("%d specs, want 7 (Table IV)", len(specs))
	}
	want := []string{"CAIDA", "NotreDame", "StackOverflow", "WikiTalk", "Weibo", "DenseGraph", "SparseGraph"}
	for i, name := range want {
		if specs[i].Name != name {
			t.Fatalf("spec %d = %s, want %s", i, specs[i].Name, name)
		}
	}
	if _, ok := ByName("CAIDA"); !ok {
		t.Fatal("ByName(CAIDA) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) found")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("CAIDA")
	a := Generate(spec, 512, 7)
	b := Generate(spec, 512, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := Generate(spec, 512, 8)
	same := 0
	for i := range a {
		if i < len(c) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestShapesMatchTableIV checks each scaled stream preserves its
// dataset's qualitative shape: duplication ratio, degree skew, density.
func TestShapesMatchTableIV(t *testing.T) {
	const scale = 256
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			stream := Generate(spec, scale, 42)
			st := Measure(spec.Name, spec.Weighted, stream)
			if st.Edges == 0 || st.Nodes == 0 {
				t.Fatal("empty stream")
			}
			wantDupRatio := float64(spec.Stream) / float64(spec.Distinct)
			gotDupRatio := float64(st.Edges) / float64(st.Dedup)
			if wantDupRatio > 1.5 && gotDupRatio < wantDupRatio/2 {
				t.Fatalf("duplication ratio %.2f, paper %.2f", gotDupRatio, wantDupRatio)
			}
			if !spec.Weighted && st.Edges != st.Dedup {
				t.Fatalf("unweighted dataset has duplicates: %d vs %d", st.Edges, st.Dedup)
			}
			switch {
			case spec.Dense:
				if st.Density < 0.5 {
					t.Fatalf("DenseGraph density %.3f, want ≈0.9", st.Density)
				}
			case spec.RegularDeg > 0:
				if st.MaxDeg != uint64(spec.RegularDeg) {
					t.Fatalf("SparseGraph max degree %d, want %d", st.MaxDeg, spec.RegularDeg)
				}
			default:
				// Power-law shape: max degree far above average.
				if float64(st.MaxDeg) < st.AvgDeg*5 {
					t.Fatalf("%s: max degree %d not skewed above avg %.2f",
						spec.Name, st.MaxDeg, st.AvgDeg)
				}
			}
		})
	}
}

func TestDedup(t *testing.T) {
	stream := []Edge{{1, 2}, {1, 2}, {3, 4}, {1, 2}, {3, 4}}
	d := Dedup(stream)
	if len(d) != 2 || d[0] != (Edge{1, 2}) || d[1] != (Edge{3, 4}) {
		t.Fatalf("dedup = %v", d)
	}
}

func TestPowApprox(t *testing.T) {
	cases := []struct{ x, k float64 }{
		{0.5, 2}, {0.9, 3}, {0.3, 4}, {0.7, 3.5}, {0.2, 5}, {0.8, 1},
	}
	for _, c := range cases {
		got := pow(c.x, c.k)
		want := math.Pow(c.x, c.k)
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("pow(%f,%f) = %f, want %f", c.x, c.k, got, want)
		}
	}
}

func TestSqrtApprox(t *testing.T) {
	for _, x := range []float64{0.25, 1, 2, 100, 1e6} {
		if got, want := sqrt(x), math.Sqrt(x); math.Abs(got-want) > 1e-6*want+1e-12 {
			t.Fatalf("sqrt(%f) = %f, want %f", x, got, want)
		}
	}
	if sqrt(0) != 0 || sqrt(-1) != 0 {
		t.Fatal("sqrt edge cases")
	}
}

func TestGenerateScalesDown(t *testing.T) {
	spec, _ := ByName("NotreDame")
	big := Generate(spec, 64, 1)
	small := Generate(spec, 512, 1)
	if len(small) >= len(big) {
		t.Fatalf("scale 512 stream (%d) not smaller than scale 64 (%d)", len(small), len(big))
	}
}
