// Package dataset synthesises the seven graph workloads of the paper's
// Table IV. The original traces (CAIDA, NotreDame, StackOverflow,
// WikiTalk, Weibo) are not redistributable, so each generator
// reproduces the published *shape* of its dataset — node count, stream
// length, duplication ratio, average degree and degree skew — at a
// configurable scale factor. DESIGN.md §3 documents the substitution.
package dataset

import (
	"cuckoograph/internal/core"
	"cuckoograph/internal/hashutil"
)

// Edge is one stream item ⟨u,v⟩.
type Edge struct{ U, V uint64 }

// Spec describes one synthetic dataset in Table IV terms.
type Spec struct {
	Name     string
	Weighted bool // stream contains duplicate edges

	Nodes    uint64 // approximate node universe (# Nodes column)
	Stream   uint64 // # Edges column (with duplicates)
	Distinct uint64 // # Edges (dedup) column

	// SrcSkew/DstSkew shape the power-law degree distribution: node =
	// N·x^skew for uniform x, so larger values concentrate edges on few
	// nodes (higher max degree).
	SrcSkew float64
	DstSkew float64

	// Dense marks the DenseGraph near-clique; RegularDeg the SparseGraph
	// constant out-degree.
	Dense      bool
	RegularDeg int
}

// Specs returns the seven datasets of Table IV in paper order.
func Specs() []Spec {
	return []Spec{
		{Name: "CAIDA", Weighted: true, Nodes: 510_000, Stream: 27_120_000, Distinct: 850_000, SrcSkew: 4.0, DstSkew: 4.0},
		{Name: "NotreDame", Nodes: 330_000, Stream: 1_500_000, Distinct: 1_500_000, SrcSkew: 3.0, DstSkew: 3.0},
		{Name: "StackOverflow", Weighted: true, Nodes: 2_600_000, Stream: 63_500_000, Distinct: 36_230_000, SrcSkew: 3.5, DstSkew: 3.5},
		{Name: "WikiTalk", Weighted: true, Nodes: 2_990_000, Stream: 24_980_000, Distinct: 9_380_000, SrcSkew: 5.0, DstSkew: 5.0},
		{Name: "Weibo", Nodes: 58_660_000, Stream: 261_320_000, Distinct: 261_320_000, SrcSkew: 4.0, DstSkew: 4.0},
		{Name: "DenseGraph", Nodes: 8_000, Stream: 57_590_000, Distinct: 57_590_000, Dense: true},
		{Name: "SparseGraph", Nodes: 5_000_000, Stream: 30_000_000, Distinct: 30_000_000, RegularDeg: 6},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// skewed maps a uniform draw to a power-law node id in [0, n).
func skewed(rng *hashutil.RNG, n uint64, skew float64) uint64 {
	if skew <= 1 {
		return rng.Uint64n(n)
	}
	x := rng.Float64()
	// x^skew concentrates mass near 0.
	id := uint64(float64(n) * pow(x, skew))
	if id >= n {
		id = n - 1
	}
	return id
}

// pow is x^k for small positive k without importing math (k ≤ ~8 here,
// fractional part handled by square-root steps).
func pow(x, k float64) float64 {
	// Integer part by repeated multiplication, fractional by sqrt chain.
	r := 1.0
	for k >= 1 {
		r *= x
		k--
	}
	if k > 0 {
		// Approximate x^k for k in (0,1) with three sqrt refinements:
		// x^k ≈ x^(m/8) with m = round(8k).
		m := int(k*8 + 0.5)
		s := x
		frac := 1.0
		for bit := 4; bit >= 1; bit /= 2 {
			s = sqrt(s)
			if m&bit != 0 {
				frac *= s
			}
		}
		r *= frac
	}
	return r
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Generate produces the scaled edge stream of spec: node and edge counts
// divide by scale (minimum sizes keep tiny scales meaningful); the
// stream is deterministic in seed.
func Generate(spec Spec, scale uint64, seed uint64) []Edge {
	if scale == 0 {
		scale = 1
	}
	nodes := spec.Nodes / scale
	if nodes < 64 {
		nodes = 64
	}
	distinct := spec.Distinct / scale
	if distinct < 256 {
		distinct = 256
	}
	stream := spec.Stream / scale
	if stream < distinct {
		stream = distinct
	}
	rng := hashutil.NewRNG(seed | 1)

	switch {
	case spec.Dense:
		return generateDense(rng, nodes, distinct)
	case spec.RegularDeg > 0:
		return generateRegular(rng, nodes, distinct, spec.RegularDeg)
	default:
		return generateSkewed(rng, spec, nodes, distinct, stream)
	}
}

// generateDense emits a near-clique: edges sampled from the n² pair
// space until the target count, giving DenseGraph's 0.90 edge density.
func generateDense(rng *hashutil.RNG, nodes, distinct uint64) []Edge {
	if distinct > nodes*nodes*9/10 {
		nodes = isqrt(distinct*10/9) + 1
	}
	out := make([]Edge, 0, distinct)
	seen := make(map[uint64]bool, distinct)
	for uint64(len(out)) < distinct {
		u, v := rng.Uint64n(nodes), rng.Uint64n(nodes)
		key := u*nodes + v
		if !seen[key] {
			seen[key] = true
			out = append(out, Edge{U: u, V: v})
		}
	}
	return out
}

func isqrt(x uint64) uint64 {
	r := uint64(sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// generateRegular gives every node exactly deg distinct out-edges —
// SparseGraph's constant degree 6.
func generateRegular(rng *hashutil.RNG, nodes, distinct uint64, deg int) []Edge {
	perNode := distinct / uint64(deg)
	if perNode > nodes {
		perNode = nodes
	}
	out := make([]Edge, 0, perNode*uint64(deg))
	for u := uint64(0); u < perNode; u++ {
		used := make(map[uint64]bool, deg)
		for len(used) < deg {
			v := rng.Uint64n(nodes)
			if v != u && !used[v] {
				used[v] = true
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	return out
}

// generateSkewed draws a power-law distinct edge set, then extends the
// stream with duplicate re-draws until the published stream length.
func generateSkewed(rng *hashutil.RNG, spec Spec, nodes, distinct, stream uint64) []Edge {
	set := make(map[Edge]bool, distinct)
	out := make([]Edge, 0, stream)
	attempts := uint64(0)
	for uint64(len(set)) < distinct && attempts < distinct*40 {
		attempts++
		e := Edge{
			U: skewed(rng, nodes, spec.SrcSkew),
			V: skewed(rng, nodes, spec.DstSkew),
		}
		if !set[e] {
			set[e] = true
			out = append(out, e)
		}
	}
	// Duplicate phase: re-sample stored edges, skew-weighted by recency
	// to mimic heavy-hitter flows (CAIDA-style repetition).
	for uint64(len(out)) < stream {
		idx := uint64(float64(len(out)) * pow(rng.Float64(), 2.0))
		if idx >= uint64(len(out)) {
			idx = uint64(len(out)) - 1
		}
		out = append(out, out[idx])
	}
	return out
}

// Stats summarises a stream the way Table IV reports datasets.
type Stats struct {
	Name     string
	Weighted bool
	Nodes    uint64
	Edges    uint64 // stream length
	Dedup    uint64 // distinct edges
	AvgDeg   float64
	MaxDeg   uint64
	Density  float64
}

// Measure computes the Table IV row of a stream. It dogfoods the
// structure under test: the stream goes through the batched mutation
// path into a weighted CuckooGraph (whose deduplication and per-node
// cells yield distinct-edge and degree counts directly) plus a basic
// graph of ⟨x,x⟩ self-loop markers acting as the node-universe set, so
// measurement exercises the same ApplyBatch pipeline the benchmarks
// price.
func Measure(name string, weighted bool, stream []Edge) Stats {
	g := core.NewWeighted(core.Config{})
	universe := core.NewGraph(core.Config{})
	const chunk = 4096
	edges := core.NewChunker(chunk, func(b core.Batch) { g.ApplyBatch(b) })
	marks := core.NewChunker(2*chunk, func(b core.Batch) { universe.ApplyBatch(b) })
	for _, e := range stream {
		edges.Insert(e.U, e.V)
		marks.Insert(e.U, e.U)
		marks.Insert(e.V, e.V)
	}
	edges.Flush()
	marks.Flush()

	st := Stats{
		Name:     name,
		Weighted: weighted,
		Nodes:    universe.NumNodes(),
		Edges:    uint64(len(stream)),
		Dedup:    g.NumEdges(),
	}
	g.ForEachNode(func(u uint64) bool {
		var d uint64
		g.ForEachSuccessor(u, func(uint64, uint64) bool {
			d++
			return true
		})
		if d > st.MaxDeg {
			st.MaxDeg = d
		}
		return true
	})
	if st.Nodes > 0 {
		st.AvgDeg = float64(st.Dedup) / float64(st.Nodes)
		st.Density = float64(st.Dedup) / (float64(st.Nodes) * float64(st.Nodes))
	}
	return st
}

// Dedup returns the distinct edges of a stream in first-seen order (the
// paper de-duplicates before the memory experiments of §V-D).
func Dedup(stream []Edge) []Edge {
	seen := make(map[Edge]bool, len(stream))
	out := make([]Edge, 0, len(stream))
	for _, e := range stream {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}
