package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// fuzzSeeds are the checked-in parser seeds: every value shape the
// protocol defines, nesting, and the malformed prefixes the parser must
// reject without allocating for them.
func fuzzSeeds() map[string][]byte {
	return map[string][]byte{
		"simple":        []byte("+OK\r\n"),
		"error":         []byte("-ERR boom\r\n"),
		"integer":       []byte(":12345\r\n"),
		"negative-int":  []byte(":-7\r\n"),
		"bulk":          []byte("$4\r\nPING\r\n"),
		"empty-bulk":    []byte("$0\r\n\r\n"),
		"null-bulk":     []byte("$-1\r\n"),
		"empty-array":   []byte("*0\r\n"),
		"command":       []byte("*3\r\n$8\r\ng.insert\r\n$1\r\n1\r\n$1\r\n2\r\n"),
		"nested-array":  []byte("*2\r\n*1\r\n:1\r\n$1\r\nx\r\n"),
		"huge-bulk":     []byte("$2147483647\r\n"),
		"huge-array":    []byte("*2147483647\r\n"),
		"short-bulk":    []byte("$5\r\nab\r\n"),
		"short-array":   []byte("*1\r\n"),
		"unknown-type":  []byte("?what\r\n"),
		"missing-crlf":  []byte("$3\r\nabcXY"),
		"empty-integer": []byte(":\r\n"),
		"deep-nesting":  bytes.Repeat([]byte("*1\r\n"), 200),
		"endless-line":  append([]byte("$"), bytes.Repeat([]byte("9"), 4096)...),
		"empty":         {},
	}
}

// FuzzRead throws arbitrary wire bytes at the RESP request parser — the
// first thing the server does with untrusted network input. Properties:
// Read never panics and never allocates unboundedly (the length-prefix
// caps), and any value it does accept survives an encode/decode
// round trip unchanged, so the server's reply path can always re-emit
// what the parser admitted.
func FuzzRead(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Read(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := Write(w, v); err != nil {
			t.Fatalf("accepted value failed to encode: %v (value %#v)", err, v)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		v2, err := Read(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-read of encoded value failed: %v\nwire: %q", err, buf.String())
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("round trip changed value:\n got %#v\nwant %#v\nwire %q", v2, v, buf.String())
		}
	})
}

func TestReadRejectsEndlessLine(t *testing.T) {
	data := append([]byte(":"), bytes.Repeat([]byte("9"), MaxLineBytes+16)...)
	_, err := Read(bufio.NewReader(bytes.NewReader(data)))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("unterminated %dKB line = %v, want ErrProtocol", MaxLineBytes>>10, err)
	}
}

func TestReadRejectsDeepNesting(t *testing.T) {
	atLimit := append(bytes.Repeat([]byte("*1\r\n"), MaxDepth), []byte(":1\r\n")...)
	if _, err := Read(bufio.NewReader(bytes.NewReader(atLimit))); err != nil {
		t.Fatalf("nesting at MaxDepth rejected: %v", err)
	}
	tooDeep := append(bytes.Repeat([]byte("*1\r\n"), MaxDepth+1), []byte(":1\r\n")...)
	_, err := Read(bufio.NewReader(bytes.NewReader(tooDeep)))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("nesting past MaxDepth = %v, want ErrProtocol", err)
	}
}

// TestGenerateFuzzCorpus (re)writes the checked-in seed corpus under
// testdata/fuzz. Run with CGFUZZ_GEN=1 after changing fuzzSeeds and
// commit the result.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("CGFUZZ_GEN") == "" {
		t.Skip("set CGFUZZ_GEN=1 to regenerate the checked-in corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fuzzSeeds() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
