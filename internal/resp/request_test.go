package resp

import (
	"bytes"
	"errors"
	"testing"
)

func TestParseRequestWholeCommand(t *testing.T) {
	data := []byte("*3\r\n$8\r\ng.insert\r\n$1\r\n1\r\n$2\r\n42\r\n")
	args, n, err := parseRequest(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("consumed %d, want %d", n, len(data))
	}
	want := []string{"g.insert", "1", "42"}
	if len(args) != len(want) {
		t.Fatalf("args = %d, want %d", len(args), len(want))
	}
	for i := range want {
		if string(args[i]) != want[i] {
			t.Fatalf("arg %d = %q, want %q", i, args[i], want[i])
		}
	}
}

// TestParseRequestEveryPrefixIncomplete: truncating a valid command at
// any byte must report errIncomplete, never a protocol error or a
// short parse — the invariant the read loop's fill/retry depends on.
func TestParseRequestEveryPrefixIncomplete(t *testing.T) {
	data := []byte("*2\r\n$4\r\nPING\r\n$0\r\n\r\n")
	for i := 0; i < len(data); i++ {
		_, _, err := parseRequest(data[:i], nil)
		if !errors.Is(err, errIncomplete) {
			t.Fatalf("prefix of %d bytes: err = %v, want errIncomplete", i, err)
		}
	}
	if _, n, err := parseRequest(data, nil); err != nil || n != len(data) {
		t.Fatalf("full parse: n=%d err=%v", n, err)
	}
}

// TestParseRequestPipelined: consecutive commands in one buffer parse
// one at a time, each consuming exactly its own bytes.
func TestParseRequestPipelined(t *testing.T) {
	data := []byte("*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nget\r\n$1\r\nk\r\n")
	args, n, err := parseRequest(data, nil)
	if err != nil || len(args) != 1 || string(args[0]) != "PING" {
		t.Fatalf("first: args=%q n=%d err=%v", args, n, err)
	}
	args2, n2, err := parseRequest(data[n:], args[:0])
	if err != nil || len(args2) != 2 || string(args2[0]) != "get" || string(args2[1]) != "k" {
		t.Fatalf("second: args=%q err=%v", args2, err)
	}
	if n+n2 != len(data) {
		t.Fatalf("consumed %d+%d, want %d", n, n2, len(data))
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := map[string][]byte{
		"inline-command":  []byte("PING\r\n"),
		"wrong-type":      []byte("!x\r\n"),
		"negative-count":  []byte("*-1\r\n"),
		"huge-count":      []byte("*2147483647\r\n"),
		"non-bulk-elem":   []byte("*1\r\n:5\r\n"),
		"null-bulk-arg":   []byte("*1\r\n$-1\r\n"),
		"huge-bulk":       []byte("*1\r\n$2147483647\r\n"),
		"bulk-bad-crlf":   []byte("*1\r\n$4\r\nPINGXY"),
		"bad-count-bytes": []byte("*1x\r\n"),
		"bare-lf":         []byte("*1\n$4\r\nPING\r\n"),
	}
	for name, data := range cases {
		_, _, err := parseRequest(data, nil)
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("%s: err = %v, want ErrProtocol", name, err)
		}
	}
}

// TestParseRequestEmptyArray: "*0" is syntactically valid and consumed;
// the dispatch layer answers it, the parser does not reject it.
func TestParseRequestEmptyArray(t *testing.T) {
	args, n, err := parseRequest([]byte("*0\r\n"), nil)
	if err != nil || n != 4 || len(args) != 0 {
		t.Fatalf("args=%q n=%d err=%v", args, n, err)
	}
}

// TestParseRequestEndlessLine: a length line streaming digits without a
// terminator is rejected once past MaxLineBytes, not buffered forever.
func TestParseRequestEndlessLine(t *testing.T) {
	data := append([]byte("*"), bytes.Repeat([]byte("1"), MaxLineBytes+16)...)
	_, _, err := parseRequest(data, nil)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("endless line err = %v, want ErrProtocol", err)
	}
}

// FuzzParseRequest throws arbitrary bytes at the zero-copy request
// parser — the server's first contact with untrusted input. Properties:
// no panics, consumed never exceeds the input, errIncomplete only ever
// grows into a parse or a protocol error (never flips back), and an
// accepted parse agrees with the reference Value parser.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("*3\r\n$8\r\ng.insert\r\n$1\r\n1\r\n$1\r\n2\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("*2147483647\r\n"))
	f.Add([]byte("$4\r\nPING\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		args, n, err := parseRequest(data, nil)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		for _, a := range args {
			if len(a) > MaxBulkBytes {
				t.Fatalf("arg of %d bytes accepted", len(a))
			}
		}
	})
}
