package resp

import (
	"errors"
	"fmt"
)

// Request is one decoded client command: the command name followed by
// its arguments as byte-slice views into the connection's read buffer.
// The views are valid until the next ReadRequest on the same Conn — the
// handler's lifetime — so the hot path never copies argument bytes.
type Request struct {
	Args [][]byte
}

// errIncomplete reports that the buffer holds only a prefix of a valid
// command; the caller must read more bytes and retry.
var errIncomplete = errors.New("resp: incomplete request")

// parseRequest decodes one multibulk client command ("*N\r\n" followed
// by N bulk strings) from data, appending argument views into args. It
// returns the args, the bytes consumed, and an error: errIncomplete
// when data is a prefix of a valid command, an ErrProtocol-wrapped
// error when the bytes can never become one. Clients must frame
// commands as multibulk — inline commands are not accepted.
func parseRequest(data []byte, args [][]byte) ([][]byte, int, error) {
	if len(data) == 0 {
		return args, 0, errIncomplete
	}
	if data[0] != '*' {
		return args, 0, fmt.Errorf("%w: expected '*' to begin a command, got %q", ErrProtocol, data[0])
	}
	n, pos, err := parseLineLen(data, 1)
	if err != nil {
		return args, 0, err
	}
	if n < 0 || n > MaxArrayLen {
		return args, 0, fmt.Errorf("%w: bad command array length %d", ErrProtocol, n)
	}
	for i := 0; i < n; i++ {
		if pos >= len(data) {
			return args, 0, errIncomplete
		}
		if data[pos] != '$' {
			return args, 0, fmt.Errorf("%w: expected bulk string in command array, got %q", ErrProtocol, data[pos])
		}
		l, next, err := parseLineLen(data, pos+1)
		if err != nil {
			return args, 0, err
		}
		if l < 0 || l > MaxBulkBytes {
			return args, 0, fmt.Errorf("%w: bad bulk length %d", ErrProtocol, l)
		}
		if next+l+2 > len(data) {
			return args, 0, errIncomplete
		}
		if data[next+l] != '\r' || data[next+l+1] != '\n' {
			return args, 0, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		args = append(args, data[next:next+l])
		pos = next + l + 2
	}
	return args, pos, nil
}

// parseLineLen decodes a decimal length terminated by CRLF starting at
// data[pos], returning the value and the position past the CRLF. A
// missing terminator within MaxLineBytes is errIncomplete; anything
// else is a protocol error.
func parseLineLen(data []byte, pos int) (int, int, error) {
	n, i, digits := 0, pos, 0
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	for ; i < len(data); i++ {
		c := data[i]
		if c == '\r' {
			if digits == 0 {
				return 0, 0, fmt.Errorf("%w: empty length line", ErrProtocol)
			}
			if i+1 >= len(data) {
				return 0, 0, errIncomplete
			}
			if data[i+1] != '\n' {
				return 0, 0, fmt.Errorf("%w: length line not CRLF-terminated", ErrProtocol)
			}
			if neg {
				n = -n
			}
			return n, i + 2, nil
		}
		if c < '0' || c > '9' {
			return 0, 0, fmt.Errorf("%w: bad length byte %q", ErrProtocol, c)
		}
		if i-pos > MaxLineBytes {
			return 0, 0, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, MaxLineBytes)
		}
		// Saturate instead of overflowing: the value is range-checked by
		// the caller and anything past an int is over every limit anyway.
		if n < 1<<40 {
			n = n*10 + int(c-'0')
		}
		digits++
	}
	if i-pos > MaxLineBytes {
		return 0, 0, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, MaxLineBytes)
	}
	return 0, 0, errIncomplete
}
