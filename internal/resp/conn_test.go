package resp

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected client/server TCP pair — real sockets, so
// deadline semantics match production exactly.
func tcpPair(t *testing.T) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

func sendCommand(t *testing.T, c net.Conn, args ...string) {
	t.Helper()
	w := bufio.NewWriter(c)
	if err := Write(w, Command(args...)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func argStrings(req *Request) []string {
	out := make([]string, len(req.Args))
	for i, a := range req.Args {
		out[i] = string(a)
	}
	return out
}

// TestAbortWakesIdleReader: Abort must interrupt a reader parked in the
// unbounded idle wait — this is what lets Shutdown drain connections
// that are not mid-command.
func TestAbortWakesIdleReader(t *testing.T) {
	_, server := tcpPair(t)
	c := NewConn(server)
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadRequest()
		done <- err
	}()
	// Give the reader time to park in its idle wait.
	time.Sleep(50 * time.Millisecond)
	c.Abort()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("aborted read error = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not wake the idle reader")
	}
	// Later reads fail fast without touching the socket.
	if _, err := c.ReadRequest(); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort read error = %v, want ErrAborted", err)
	}
}

// TestReadTimeoutMidCommand: the idle wait is unbounded, but once a
// command's first byte arrives the rest must land within ReadTimeout —
// a peer stalling mid-frame cannot pin the connection.
func TestReadTimeoutMidCommand(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	c.ReadTimeout = 100 * time.Millisecond

	if _, err := client.Write([]byte("*1\r\n$4\r\nPI")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.ReadRequest()
	if err == nil {
		t.Fatal("stalled mid-command read returned a request")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled read error = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestIdleWaitOutlivesReadTimeout: ReadTimeout must NOT bound the idle
// wait — a quiet client is not an error. The command sent after a pause
// longer than ReadTimeout still gets served.
func TestIdleWaitOutlivesReadTimeout(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	c.ReadTimeout = 50 * time.Millisecond

	got := make(chan []string, 1)
	fail := make(chan error, 1)
	go func() {
		req, err := c.ReadRequest()
		if err != nil {
			fail <- err
			return
		}
		got <- argStrings(req)
	}()
	// Stay idle for multiples of ReadTimeout before sending.
	time.Sleep(250 * time.Millisecond)
	sendCommand(t, client, "PING")
	select {
	case args := <-got:
		if len(args) != 1 || args[0] != "PING" {
			t.Fatalf("command = %q", args)
		}
	case err := <-fail:
		t.Fatalf("idle wait hit a deadline: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("read never completed")
	}
}

// TestPipelinedRequestsOneRead: a burst of commands written as one
// segment parses into consecutive requests without further socket
// reads, and Buffered tracks the backlog — the server's flush signal.
func TestPipelinedRequestsOneRead(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)

	var burst bytes.Buffer
	w := bufio.NewWriter(&burst)
	for _, args := range [][]string{{"PING"}, {"g.insert", "1", "2"}, {"g.query", "1", "2"}} {
		if err := Write(w, Command(args...)); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if _, err := client.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}

	want := [][]string{{"PING"}, {"g.insert", "1", "2"}, {"g.query", "1", "2"}}
	for i, wargs := range want {
		req, err := c.ReadRequest()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		got := argStrings(req)
		if len(got) != len(wargs) {
			t.Fatalf("request %d = %q, want %q", i, got, wargs)
		}
		for j := range wargs {
			if got[j] != wargs[j] {
				t.Fatalf("request %d = %q, want %q", i, got, wargs)
			}
		}
		if i < len(want)-1 && c.Buffered() == 0 {
			t.Fatalf("request %d: backlog not visible in Buffered", i)
		}
	}
	if c.Buffered() != 0 {
		t.Fatalf("Buffered = %d after burst drained", c.Buffered())
	}
}

// TestReadBufferShrinksAfterLargeCommand is the grow-then-shrink pin: a
// one-off huge command grows the read buffer to hold it, but once the
// input drains the retained capacity drops back — a single 1MB G.MINSERT
// must not pin megabytes for the connection's lifetime.
func TestReadBufferShrinksAfterLargeCommand(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)

	big := string(bytes.Repeat([]byte("x"), 1<<20))
	done := make(chan error, 1)
	go func() {
		req, err := c.ReadRequest()
		if err == nil && (len(req.Args) != 2 || len(req.Args[1]) != 1<<20) {
			err = errors.New("big command parsed wrong")
		}
		done <- err
	}()
	sendCommand(t, client, "set", big)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if cap(c.rbuf) < 1<<20 {
		t.Fatalf("read buffer did not grow for the large command (cap=%d)", cap(c.rbuf))
	}

	// The next command recycles the drained buffer and sheds the
	// inflated capacity.
	go func() {
		_, err := c.ReadRequest()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	sendCommand(t, client, "PING")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if cap(c.rbuf) > retainedReadBytes {
		t.Fatalf("read buffer retained cap=%d after drain, want <= %d", cap(c.rbuf), retainedReadBytes)
	}
}

// TestProtocolErrorSurfaces: bytes that can never become a valid
// command surface as ErrProtocol so the server can answer before
// dropping the connection.
func TestProtocolErrorSurfaces(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	if _, err := client.Write([]byte("!garbage\r\n")); err != nil {
		t.Fatal(err)
	}
	_, err := c.ReadRequest()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("garbage read error = %v, want ErrProtocol", err)
	}
}

// TestFlushRoundTrip: replies streamed through the Writer reach the
// peer intact under WriteTimeout, including a vectored flush with a
// zero-copy bulk payload spliced between buffered replies.
func TestFlushRoundTrip(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	c.WriteTimeout = time.Second

	payload := bytes.Repeat([]byte("p"), zeroCopyBulk+100)
	c.W.AppendSimple("PONG")
	c.W.AppendBulk(payload)
	c.W.AppendInt(7)
	if !c.W.HasRefs() {
		t.Fatal("large bulk was copied, want zero-copy ref")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	client.SetReadDeadline(time.Now().Add(time.Second))
	r := bufio.NewReader(client)
	if v, err := Read(r); err != nil || v.Str != "PONG" {
		t.Fatalf("reply 1 = %+v, %v", v, err)
	}
	if v, err := Read(r); err != nil || v.Str != string(payload) {
		t.Fatalf("reply 2: err=%v, len=%d", err, len(v.Str))
	}
	if v, err := Read(r); err != nil || v.Int != 7 {
		t.Fatalf("reply 3 = %+v, %v", v, err)
	}
}

// TestWriteTimeoutOnStalledPeer: a peer that stops reading makes the
// flush error out instead of wedging the serve goroutine forever.
func TestWriteTimeoutOnStalledPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("fills kernel socket buffers")
	}
	client, server := tcpPair(t)
	// Shrink the server's send buffer so the stall surfaces quickly.
	if tc, ok := server.(*net.TCPConn); ok {
		tc.SetWriteBuffer(4 << 10)
	}
	if tc, ok := client.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	c := NewConn(server)
	c.WriteTimeout = 200 * time.Millisecond

	// The client never reads; keep writing until the buffers fill and
	// the deadline fires.
	payload := make([]byte, 32<<10)
	deadline := time.Now().Add(10 * time.Second)
	var stallErr error
	for stallErr == nil {
		if time.Now().After(deadline) {
			t.Skip("kernel buffered >10s of writes; environment too generous for this test")
		}
		c.W.AppendBulk(payload)
		stallErr = c.Flush()
	}
	var nerr net.Error
	if !errors.As(stallErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled-peer write error = %v, want timeout", stallErr)
	}
}
