package resp

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected client/server TCP pair — real sockets, so
// deadline semantics match production exactly.
func tcpPair(t *testing.T) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

// TestAbortWakesIdleReader: Abort must interrupt a reader parked in the
// unbounded idle wait — this is what lets Shutdown drain connections
// that are not mid-command.
func TestAbortWakesIdleReader(t *testing.T) {
	_, server := tcpPair(t)
	c := NewConn(server)
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadCommand()
		done <- err
	}()
	// Give the reader time to park in its idle Peek.
	time.Sleep(50 * time.Millisecond)
	c.Abort()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("aborted read error = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not wake the idle reader")
	}
	// Later reads fail fast without touching the socket.
	if _, err := c.ReadCommand(); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort read error = %v, want ErrAborted", err)
	}
}

// TestReadTimeoutMidCommand: the idle wait is unbounded, but once a
// command's first byte arrives the rest must land within ReadTimeout —
// a peer stalling mid-frame cannot pin the connection.
func TestReadTimeoutMidCommand(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	c.ReadTimeout = 100 * time.Millisecond

	if _, err := client.Write([]byte("*1\r\n$4\r\nPI")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.ReadCommand()
	if err == nil {
		t.Fatal("stalled mid-command read returned a value")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled read error = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestIdleWaitOutlivesReadTimeout: ReadTimeout must NOT bound the idle
// wait — a quiet client is not an error. The command sent after a pause
// longer than ReadTimeout still gets served.
func TestIdleWaitOutlivesReadTimeout(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	c.ReadTimeout = 50 * time.Millisecond

	got := make(chan Value, 1)
	fail := make(chan error, 1)
	go func() {
		v, err := c.ReadCommand()
		if err != nil {
			fail <- err
			return
		}
		got <- v
	}()
	// Stay idle for multiples of ReadTimeout before sending.
	time.Sleep(250 * time.Millisecond)
	w := bufio.NewWriter(client)
	if err := Write(w, Command("PING")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	select {
	case v := <-got:
		if len(v.Array) != 1 || v.Array[0].Str != "PING" {
			t.Fatalf("command = %+v", v)
		}
	case err := <-fail:
		t.Fatalf("idle wait hit a deadline: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("read never completed")
	}
}

// TestWriteValueAndFlushRoundTrip: replies written under WriteTimeout
// reach the peer intact.
func TestWriteValueAndFlushRoundTrip(t *testing.T) {
	client, server := tcpPair(t)
	c := NewConn(server)
	c.WriteTimeout = time.Second

	if err := c.WriteValue(Simple("PONG")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(time.Second))
	v, err := Read(bufio.NewReader(client))
	if err != nil {
		t.Fatal(err)
	}
	if v.Str != "PONG" {
		t.Fatalf("round trip = %+v", v)
	}
}

// TestWriteTimeoutOnStalledPeer: a peer that stops reading makes the
// flush error out instead of wedging the serve goroutine forever.
func TestWriteTimeoutOnStalledPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("fills kernel socket buffers")
	}
	client, server := tcpPair(t)
	// Shrink the server's send buffer so the stall surfaces quickly.
	if tc, ok := server.(*net.TCPConn); ok {
		tc.SetWriteBuffer(4 << 10)
	}
	if tc, ok := client.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	c := NewConn(server)
	c.WriteTimeout = 200 * time.Millisecond

	// The client never reads; keep writing until the buffers fill and
	// the deadline fires.
	payload := Bulk(string(make([]byte, 32<<10)))
	deadline := time.Now().Add(10 * time.Second)
	var stallErr error
	for stallErr == nil {
		if time.Now().After(deadline) {
			t.Skip("kernel buffered >10s of writes; environment too generous for this test")
		}
		if err := c.WriteValue(payload); err != nil {
			stallErr = err
			break
		}
		stallErr = c.Flush()
	}
	var nerr net.Error
	if !errors.As(stallErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled-peer write error = %v, want timeout", stallErr)
	}
}
