// Package resp implements the Redis Serialization Protocol (RESP2) wire
// format: the encoding spoken by the redislike server and client used
// for the paper's Redis integration experiment (§V-F).
//
// The package has two encoding surfaces. The boxed Value tree with
// Read/Write is the general-purpose side: the client, fuzz corpus and
// cold introspection replies (COMMAND, G.INFO) build and decode whole
// values. The serving plane instead uses the streaming side — Writer
// appends replies directly into a reusable per-connection buffer
// (AppendInt, AppendBulk, ...), Conn parses pipelined requests into
// byte-slice views of its read buffer, and Flush writes the
// accumulated replies with one write(2) (or a vectored writev when
// large bulk payloads are referenced zero-copy) — so a warm command
// cycle allocates nothing.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"slices"
	"strconv"
)

// Value is one RESP value. Exactly one interpretation applies per Type.
type Value struct {
	Type  byte // '+', '-', ':', '$', '*'
	Str   string
	Int   int64
	Array []Value
	Null  bool
}

// Convenience constructors.
func Simple(s string) Value   { return Value{Type: '+', Str: s} }
func Error(s string) Value    { return Value{Type: '-', Str: s} }
func Integer(n int64) Value   { return Value{Type: ':', Int: n} }
func Bulk(s string) Value     { return Value{Type: '$', Str: s} }
func NullBulk() Value         { return Value{Type: '$', Null: true} }
func Array(vs ...Value) Value { return Value{Type: '*', Array: vs} }

// ErrProtocol reports malformed wire data.
var ErrProtocol = errors.New("resp: protocol error")

// Wire-format sanity bounds. A length prefix is attacker-controlled
// bytes, so Read refuses implausible claims instead of allocating for
// them: without these caps a 13-byte line like "$2147483647\r\n" would
// allocate gigabytes before reading a single payload byte. The limits
// mirror Redis's own proto-max-bulk-len defaults, scaled to this
// repository's workloads.
const (
	// MaxBulkBytes is the largest accepted bulk-string payload.
	MaxBulkBytes = 64 << 20
	// MaxArrayLen is the largest accepted array element count.
	MaxArrayLen = 1 << 20
	// MaxDepth is the deepest accepted array nesting. Read recurses per
	// level, so without a bound a stream of "*1\r\n" repeated a few
	// million times would grow the goroutine stack to its fatal limit
	// and abort the process; no legitimate command nests anywhere near
	// this deep.
	MaxDepth = 32
	// MaxLineBytes bounds one protocol line (type byte to CRLF): length
	// prefixes are tiny and simple/error strings modest, so an endless
	// unterminated line is an attack, not a value — without this cap an
	// attacker streaming digits with no CRLF would grow the line buffer
	// without limit before the length checks ever ran.
	MaxLineBytes = 64 << 10
)

// Write encodes v to w.
func Write(w *bufio.Writer, v Value) error {
	switch v.Type {
	case '+', '-':
		if _, err := fmt.Fprintf(w, "%c%s\r\n", v.Type, v.Str); err != nil {
			return err
		}
	case ':':
		if _, err := fmt.Fprintf(w, ":%d\r\n", v.Int); err != nil {
			return err
		}
	case '$':
		if v.Null {
			if _, err := w.WriteString("$-1\r\n"); err != nil {
				return err
			}
			return nil
		}
		if _, err := fmt.Fprintf(w, "$%d\r\n%s\r\n", len(v.Str), v.Str); err != nil {
			return err
		}
	case '*':
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.Array)); err != nil {
			return err
		}
		for _, item := range v.Array {
			if err := Write(w, item); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown type %q", ErrProtocol, v.Type)
	}
	return nil
}

// Read decodes one value from r.
func Read(r *bufio.Reader) (Value, error) { return readDepth(r, 0) }

func readDepth(r *bufio.Reader, depth int) (Value, error) {
	if depth > MaxDepth {
		return Value{}, fmt.Errorf("%w: nesting deeper than %d", ErrProtocol, MaxDepth)
	}
	t, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	line, err := readLine(r)
	if err != nil {
		return Value{}, err
	}
	switch t {
	case '+':
		return Simple(line), nil
	case '-':
		return Error(line), nil
	case ':':
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return Integer(n), nil
	case '$':
		n, err := strconv.Atoi(line)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if n < 0 {
			return NullBulk(), nil
		}
		if n > MaxBulkBytes {
			return Value{}, fmt.Errorf("%w: bulk length %d exceeds limit %d", ErrProtocol, n, MaxBulkBytes)
		}
		// Grow as the payload actually arrives, in bounded chunks: the
		// claimed length is unverified, and reserving it up front would
		// let idle connections each pin MaxBulkBytes with a 13-byte lie.
		const chunk = 64 << 10
		want := n + 2
		buf := make([]byte, 0, min(want, chunk))
		for len(buf) < want {
			start := len(buf)
			buf = slices.Grow(buf, min(want-start, chunk))[:start+min(want-start, chunk)]
			if _, err := io.ReadFull(r, buf[start:]); err != nil {
				return Value{}, err
			}
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		return Bulk(string(buf[:n])), nil
	case '*':
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 {
			return Value{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		if n > MaxArrayLen {
			return Value{}, fmt.Errorf("%w: array length %d exceeds limit %d", ErrProtocol, n, MaxArrayLen)
		}
		// Grow incrementally: the claimed count is unverified until the
		// elements actually arrive, so a lying prefix must not be able to
		// reserve MaxArrayLen values up front.
		arr := make([]Value, 0, min(n, 64))
		for i := 0; i < n; i++ {
			v, err := readDepth(r, depth+1)
			if err != nil {
				return Value{}, err
			}
			arr = append(arr, v)
		}
		return Value{Type: '*', Array: arr}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown type byte %q", ErrProtocol, t)
	}
}

func readLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > MaxLineBytes {
			return "", fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, MaxLineBytes)
		}
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	return string(line[:len(line)-2]), nil
}

// Command encodes a client command as an array of bulk strings.
func Command(args ...string) Value {
	vs := make([]Value, len(args))
	for i, a := range args {
		vs[i] = Bulk(a)
	}
	return Array(vs...)
}
