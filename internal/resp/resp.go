// Package resp implements the Redis Serialization Protocol (RESP2) wire
// format: the encoding spoken by the redislike server and client used
// for the paper's Redis integration experiment (§V-F).
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Value is one RESP value. Exactly one interpretation applies per Type.
type Value struct {
	Type  byte // '+', '-', ':', '$', '*'
	Str   string
	Int   int64
	Array []Value
	Null  bool
}

// Convenience constructors.
func Simple(s string) Value   { return Value{Type: '+', Str: s} }
func Error(s string) Value    { return Value{Type: '-', Str: s} }
func Integer(n int64) Value   { return Value{Type: ':', Int: n} }
func Bulk(s string) Value     { return Value{Type: '$', Str: s} }
func NullBulk() Value         { return Value{Type: '$', Null: true} }
func Array(vs ...Value) Value { return Value{Type: '*', Array: vs} }

// ErrProtocol reports malformed wire data.
var ErrProtocol = errors.New("resp: protocol error")

// Write encodes v to w.
func Write(w *bufio.Writer, v Value) error {
	switch v.Type {
	case '+', '-':
		if _, err := fmt.Fprintf(w, "%c%s\r\n", v.Type, v.Str); err != nil {
			return err
		}
	case ':':
		if _, err := fmt.Fprintf(w, ":%d\r\n", v.Int); err != nil {
			return err
		}
	case '$':
		if v.Null {
			if _, err := w.WriteString("$-1\r\n"); err != nil {
				return err
			}
			return nil
		}
		if _, err := fmt.Fprintf(w, "$%d\r\n%s\r\n", len(v.Str), v.Str); err != nil {
			return err
		}
	case '*':
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.Array)); err != nil {
			return err
		}
		for _, item := range v.Array {
			if err := Write(w, item); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown type %q", ErrProtocol, v.Type)
	}
	return nil
}

// Read decodes one value from r.
func Read(r *bufio.Reader) (Value, error) {
	t, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	line, err := readLine(r)
	if err != nil {
		return Value{}, err
	}
	switch t {
	case '+':
		return Simple(line), nil
	case '-':
		return Error(line), nil
	case ':':
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return Integer(n), nil
	case '$':
		n, err := strconv.Atoi(line)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if n < 0 {
			return NullBulk(), nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		return Bulk(string(buf[:n])), nil
	case '*':
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 {
			return Value{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		arr := make([]Value, n)
		for i := range arr {
			arr[i], err = Read(r)
			if err != nil {
				return Value{}, err
			}
		}
		return Value{Type: '*', Array: arr}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown type byte %q", ErrProtocol, t)
	}
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

// Command encodes a client command as an array of bulk strings.
func Command(args ...string) Value {
	vs := make([]Value, len(args))
	for i, a := range args {
		vs[i] = Bulk(a)
	}
	return Array(vs...)
}
