package resp

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// ErrAborted is returned by ReadCommand on a connection whose Abort has
// been called — the server is draining and no further commands are
// accepted on it.
var ErrAborted = errors.New("resp: connection aborted")

// Conn wraps a network connection with buffered RESP framing and
// per-command deadlines. A server connection spends most of its life
// idle, waiting for the next command, and that wait must be unbounded —
// but once a command starts arriving, a peer that stalls mid-frame
// would otherwise pin the connection (and whatever the handler holds)
// forever. ReadCommand therefore waits for the first byte with no
// deadline and arms ReadTimeout only for the remainder of the frame;
// WriteValue and Flush arm WriteTimeout so a reply to a non-reading
// client errors out instead of hanging the serve loop.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer

	// ReadTimeout bounds how long the rest of a command may take to
	// arrive after its first byte. Zero disables the bound.
	ReadTimeout time.Duration
	// WriteTimeout bounds each buffered write and flush of replies.
	// Zero disables the bound.
	WriteTimeout time.Duration

	aborted atomic.Bool
}

// NewConn wraps nc. Deadlines are disabled until the timeout fields are
// set.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Abort marks the connection as draining and interrupts a reader parked
// in ReadCommand's idle wait by expiring its read deadline. The store
// happens before the deadline poke, and ReadCommand re-checks the flag
// after clearing the deadline, so the two cannot interleave into a
// reader blocked forever past an Abort.
func (c *Conn) Abort() {
	c.aborted.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// Aborted reports whether Abort has been called.
func (c *Conn) Aborted() bool { return c.aborted.Load() }

// ReadCommand decodes the next RESP value from the connection. The wait
// for the first byte of a command is unbounded (an idle client is not
// an error); once a command has started, the rest of it must arrive
// within ReadTimeout.
func (c *Conn) ReadCommand() (Value, error) {
	if c.aborted.Load() {
		return Value{}, ErrAborted
	}
	if c.r.Buffered() == 0 {
		// Idle: wait for the first byte with no deadline.
		c.nc.SetReadDeadline(time.Time{})
		if c.aborted.Load() {
			// Abort raced the deadline clear; re-expire so the Peek below
			// cannot park forever.
			c.nc.SetReadDeadline(time.Now())
		}
		if _, err := c.r.Peek(1); err != nil {
			if c.aborted.Load() {
				return Value{}, ErrAborted
			}
			return Value{}, err
		}
	}
	if c.ReadTimeout > 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.ReadTimeout))
	}
	v, err := Read(c.r)
	if err != nil && c.aborted.Load() {
		return Value{}, ErrAborted
	}
	return v, err
}

// WriteValue encodes v into the write buffer. Large replies spill to
// the socket as the buffer fills, so the write deadline is armed here
// as well as in Flush.
func (c *Conn) WriteValue(v Value) error {
	if c.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.WriteTimeout))
	}
	return Write(c.w, v)
}

// Buffered reports how many request bytes are already in the read
// buffer — the pipelining signal: flush replies only when it reaches
// zero and the next read would block.
func (c *Conn) Buffered() int { return c.r.Buffered() }

// Flush pushes buffered replies to the socket under WriteTimeout.
func (c *Conn) Flush() error {
	if c.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.WriteTimeout))
	}
	return c.w.Flush()
}
