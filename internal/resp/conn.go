package resp

import (
	"errors"
	"net"
	"slices"
	"sync/atomic"
	"time"
)

// ErrAborted is returned by ReadRequest on a connection whose Abort has
// been called — the server is draining and no further commands are
// accepted on it.
var ErrAborted = errors.New("resp: connection aborted")

const (
	// readBufInit is the initial (and post-shrink) read buffer capacity.
	readBufInit = 4 << 10
	// retainedReadBytes caps the read buffer capacity kept once the
	// buffered input drains: a one-off huge command (a 10MB G.MINSERT)
	// grows the buffer for its own parse but must not pin that memory
	// for the connection's lifetime (grow-then-shrink).
	retainedReadBytes = 64 << 10
	// readChunk bounds each read-buffer growth step, so a length prefix
	// claiming MaxBulkBytes reserves memory only as payload arrives.
	readChunk = 64 << 10
)

// Conn is one server-side connection: a zero-allocation RESP request
// reader and a streaming reply Writer over the same socket. Requests
// are parsed in place — Args are views into the read buffer, valid
// until the next ReadRequest — and replies accumulate in W until Flush
// pushes them with one write (vectored when large bulk replies are
// spliced in).
//
// A connection spends most of its life idle waiting for the next
// command, and that wait must be unbounded — but once a command starts
// arriving, a peer stalling mid-frame would pin the connection forever.
// ReadRequest therefore waits for the first byte with no deadline and
// arms ReadTimeout only while the rest of the frame trickles in; Flush
// arms WriteTimeout so replying to a non-reading client errors out
// instead of hanging the serve loop.
type Conn struct {
	nc net.Conn

	// W buffers encoded replies until Flush.
	W Writer

	rbuf []byte
	rpos int
	req  Request
	vecs net.Buffers

	// ReadTimeout bounds how long the rest of a command may take to
	// arrive after its first byte. Zero disables the bound.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply flush. Zero disables the bound.
	WriteTimeout time.Duration

	aborted atomic.Bool
}

// NewConn wraps nc. Deadlines are disabled until the timeout fields are
// set.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, rbuf: make([]byte, 0, readBufInit)}
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// NetConn exposes the underlying connection for handlers that take the
// stream over entirely (the replication shipper). A takeover is only
// sound when the Conn's read buffer is empty (Buffered() == 0) and its
// Writer has been flushed; after it, the taker owns all reads and
// writes and must not touch W or ReadRequest again.
func (c *Conn) NetConn() net.Conn { return c.nc }

// Abort marks the connection as draining and interrupts a reader parked
// in ReadRequest's idle wait by expiring its read deadline. The store
// happens before the deadline poke, and ReadRequest re-checks the flag
// after clearing the deadline, so the two cannot interleave into a
// reader blocked forever past an Abort.
func (c *Conn) Abort() {
	c.aborted.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// Aborted reports whether Abort has been called.
func (c *Conn) Aborted() bool { return c.aborted.Load() }

// Buffered reports how many request bytes are already in the read
// buffer — the pipelining signal: flush replies only when it reaches
// zero and the next read would block.
func (c *Conn) Buffered() int { return len(c.rbuf) - c.rpos }

// ReadRequest decodes the next client command. The returned Request
// (and its argument views) is owned by the Conn and valid until the
// next ReadRequest. The wait for the first byte of a command is
// unbounded (an idle client is not an error); once a command has
// started, each further chunk must arrive within ReadTimeout.
func (c *Conn) ReadRequest() (*Request, error) {
	if c.aborted.Load() {
		return nil, ErrAborted
	}
	for {
		if c.rpos < len(c.rbuf) {
			args, n, err := parseRequest(c.rbuf[c.rpos:], c.req.Args[:0])
			if err == nil {
				c.req.Args = args
				c.rpos += n
				return &c.req, nil
			}
			if err != errIncomplete {
				return nil, err
			}
		} else if c.rpos > 0 {
			// Input fully drained: recycle the buffer, shrinking capacity a
			// large command inflated. Pending zero-copy reply refs may point
			// into it, in which case a fresh buffer preserves them.
			c.rpos = 0
			switch {
			case cap(c.rbuf) > retainedReadBytes:
				c.rbuf = make([]byte, 0, readBufInit)
			case c.W.HasRefs():
				c.rbuf = make([]byte, 0, cap(c.rbuf))
			default:
				c.rbuf = c.rbuf[:0]
			}
		}
		if err := c.fill(); err != nil {
			return nil, err
		}
	}
}

// fill reads more bytes from the socket into the buffer, growing (in
// bounded chunks) or compacting when full. The idle wait — no bytes of
// a next command buffered yet — is deadline-free; mid-command reads arm
// ReadTimeout.
func (c *Conn) fill() error {
	if len(c.rbuf) == cap(c.rbuf) {
		if c.rpos > 0 {
			// Compact consumed bytes away. If pending zero-copy reply refs
			// point into the buffer, shift into a fresh one instead of
			// scribbling over their payloads.
			if c.W.HasRefs() {
				nb := make([]byte, len(c.rbuf)-c.rpos, cap(c.rbuf))
				copy(nb, c.rbuf[c.rpos:])
				c.rbuf = nb
			} else {
				n := copy(c.rbuf, c.rbuf[c.rpos:])
				c.rbuf = c.rbuf[:n]
			}
			c.rpos = 0
		} else {
			c.rbuf = slices.Grow(c.rbuf, min(cap(c.rbuf)+1, readChunk))
		}
	}
	if c.rpos == len(c.rbuf) {
		// Idle: wait for the first byte of the next command unbounded.
		c.nc.SetReadDeadline(time.Time{})
		if c.aborted.Load() {
			// Abort raced the deadline clear; re-expire so the Read below
			// cannot park forever.
			c.nc.SetReadDeadline(time.Now())
		}
	} else if c.ReadTimeout > 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.ReadTimeout))
	}
	n, err := c.nc.Read(c.rbuf[len(c.rbuf):cap(c.rbuf)])
	c.rbuf = c.rbuf[:len(c.rbuf)+n]
	if err != nil {
		if c.aborted.Load() {
			return ErrAborted
		}
		if n > 0 {
			// Bytes arrived with the error; parse them first. The next fill
			// re-hits the error once the buffer is exhausted.
			return nil
		}
		return err
	}
	return nil
}

// Flush pushes buffered replies to the socket under WriteTimeout, using
// one vectored write when zero-copy bulk payloads are spliced in.
func (c *Conn) Flush() error {
	if c.W.Len() == 0 {
		return nil
	}
	if c.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.WriteTimeout))
	}
	var err error
	if c.W.HasRefs() {
		c.vecs = c.W.Vectors(c.vecs[:0])
		v := c.vecs
		_, err = v.WriteTo(c.nc)
		for i := range c.vecs {
			c.vecs[i] = nil // do not retain flushed payloads
		}
	} else {
		_, err = c.nc.Write(c.W.buf)
	}
	c.W.Reset()
	return err
}
