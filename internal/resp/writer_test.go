package resp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// decodeAll reads every value out of the writer's assembled output.
func decodeAll(t *testing.T, w *Writer) []Value {
	t.Helper()
	r := bufio.NewReader(bytes.NewReader(w.Bytes()))
	var out []Value
	for {
		v, err := Read(r)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, v)
	}
}

// TestWriterEncodesEveryType: each Append* method emits wire bytes that
// the reference parser decodes back to the equivalent boxed value.
func TestWriterEncodesEveryType(t *testing.T) {
	var w Writer
	w.AppendSimple("OK")
	w.AppendError("ERR boom")
	w.AppendInt(-42)
	w.AppendBulkString("hello")
	w.AppendBulk([]byte("bytes"))
	w.AppendBulkUint(18446744073709551615)
	w.AppendNullBulk()
	w.AppendArrayHeader(2)
	w.AppendInt(1)
	w.AppendBulkUint(7)

	got := decodeAll(t, &w)
	want := []Value{
		Simple("OK"),
		Error("ERR boom"),
		Integer(-42),
		Bulk("hello"),
		Bulk("bytes"),
		Bulk("18446744073709551615"),
		NullBulk(),
		Array(Integer(1), Bulk("7")),
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if !valueEqual(got[i], want[i]) {
			t.Fatalf("value %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func valueEqual(a, b Value) bool {
	if a.Type != b.Type || a.Str != b.Str || a.Int != b.Int || a.Null != b.Null {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !valueEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

// TestWriterAppendValueBridge: boxed Value trees (the cold introspection
// path) encode identically through the Writer and through Write.
func TestWriterAppendValueBridge(t *testing.T) {
	v := Array(
		Bulk("g.insert"),
		Integer(3),
		Array(Simple("write")),
		NullBulk(),
		Error("ERR nope"),
	)
	var w Writer
	w.AppendValue(v)

	var ref bytes.Buffer
	bw := bufio.NewWriter(&ref)
	if err := Write(bw, v); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	if !bytes.Equal(w.Bytes(), ref.Bytes()) {
		t.Fatalf("writer bytes %q != Write bytes %q", w.Bytes(), ref.Bytes())
	}
}

// TestWriterInvalidValueStaysFramed: the zero Value (a handler bug)
// must encode as a well-formed error reply, not desync the stream.
func TestWriterInvalidValueStaysFramed(t *testing.T) {
	var w Writer
	w.AppendValue(Value{})
	w.AppendSimple("OK")
	got := decodeAll(t, &w)
	if len(got) != 2 || got[0].Type != '-' || got[1].Str != "OK" {
		t.Fatalf("decoded %+v", got)
	}
}

// TestWriterMarkRewind: output appended after a Mark — buffered bytes
// and zero-copy refs alike — is discarded by Rewind, so a handler error
// after partial output can be replaced by one clean error reply.
func TestWriterMarkRewind(t *testing.T) {
	var w Writer
	w.AppendInt(1)
	m := w.Mark()
	w.AppendArrayHeader(3)
	w.AppendBulkString("partial")
	w.AppendBulk(bytes.Repeat([]byte("z"), zeroCopyBulk)) // forces a ref
	if !w.HasRefs() {
		t.Fatal("expected a zero-copy ref before rewind")
	}
	w.Rewind(m)
	if w.HasRefs() {
		t.Fatal("refs survived rewind")
	}
	w.AppendError("ERR replaced")

	got := decodeAll(t, &w)
	if len(got) != 2 || got[0].Int != 1 || got[1].Str != "ERR replaced" {
		t.Fatalf("decoded %+v", got)
	}
}

// TestWriterVectorsInterleave: zero-copy payloads splice between buffer
// runs in stream order, and Bytes assembles the same stream.
func TestWriterVectorsInterleave(t *testing.T) {
	var w Writer
	big1 := bytes.Repeat([]byte("a"), zeroCopyBulk)
	big2 := bytes.Repeat([]byte("b"), zeroCopyBulk)
	w.AppendSimple("x")
	w.AppendBulk(big1)
	w.AppendBulk(big2)
	w.AppendInt(9)

	var joined []byte
	for _, seg := range w.Vectors(nil) {
		joined = append(joined, seg...)
	}
	if !bytes.Equal(joined, w.Bytes()) {
		t.Fatal("Vectors and Bytes disagree")
	}
	wantLen := w.Len()
	if len(joined) != wantLen {
		t.Fatalf("assembled %d bytes, Len says %d", len(joined), wantLen)
	}
	want := "+x\r\n$4096\r\n" + strings.Repeat("a", 4096) + "\r\n$4096\r\n" + strings.Repeat("b", 4096) + "\r\n:9\r\n"
	if string(joined) != want {
		t.Fatal("assembled stream mismatch")
	}
}

// TestWriterResetShrinks: Reset keeps a modest buffer but sheds one
// inflated past the retention cap, mirroring the read-side
// grow-then-shrink.
func TestWriterResetShrinks(t *testing.T) {
	var w Writer
	w.AppendBulkString("small")
	w.Reset()
	if cap(w.buf) == 0 {
		t.Fatal("small buffer not retained across Reset")
	}
	w.AppendBulkString(strings.Repeat("x", retainedWriterBytes+1024))
	w.Reset()
	if cap(w.buf) > retainedWriterBytes {
		t.Fatalf("Reset retained cap=%d, want <= %d", cap(w.buf), retainedWriterBytes)
	}
}

// TestWriterAppendAllocs: steady-state appends into a warmed buffer are
// allocation-free — the property the serving plane is built on.
func TestWriterAppendAllocs(t *testing.T) {
	var w Writer
	payload := []byte("1234567890")
	allocs := testing.AllocsPerRun(200, func() {
		w.AppendSimple("OK")
		w.AppendInt(123456)
		w.AppendBulk(payload)
		w.AppendBulkUint(987654321)
		w.AppendArrayHeader(2)
		w.AppendNullBulk()
		w.Reset()
	})
	if allocs != 0 {
		t.Fatalf("Append cycle allocates %.1f/run, want 0", allocs)
	}
}
