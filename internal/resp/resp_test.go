package resp

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := Write(w, v); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Flush()
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("read back %q: %v", buf.String(), err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	cases := []Value{
		Simple("OK"),
		Error("ERR boom"),
		Integer(-42),
		Integer(1 << 40),
		Bulk(""),
		Bulk("hello\r\nworld"),
		NullBulk(),
		Array(Bulk("g.insert"), Bulk("1"), Bulk("2")),
		Array(Integer(1), Array(Bulk("nested")), Simple("deep")),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip changed %+v → %+v", v, got)
		}
	}
}

func TestEmptyArrayRoundTrip(t *testing.T) {
	got := roundTrip(t, Array())
	if got.Type != '*' || len(got.Array) != 0 {
		t.Fatalf("empty array round trip = %+v", got)
	}
}

func TestCommandEncoding(t *testing.T) {
	v := Command("SET", "k", "v")
	if v.Type != '*' || len(v.Array) != 3 || v.Array[0].Str != "SET" {
		t.Fatalf("Command = %+v", v)
	}
}

func TestWireFormat(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	Write(w, Bulk("hi"))
	w.Flush()
	if got := buf.String(); got != "$2\r\nhi\r\n" {
		t.Fatalf("bulk wire = %q", got)
	}
	buf.Reset()
	Write(w, NullBulk())
	w.Flush()
	if got := buf.String(); got != "$-1\r\n" {
		t.Fatalf("null bulk wire = %q", got)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"?wat\r\n",
		":abc\r\n",
		"$5\r\nhi\r\n",
		"*2\r\n:1\r\n", // truncated array
		"+no-crlf\n",
	}
	for _, s := range bad {
		if _, err := Read(bufio.NewReader(bytes.NewBufferString(s))); err == nil {
			t.Fatalf("Read(%q) succeeded, want error", s)
		}
	}
}
