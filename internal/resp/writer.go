package resp

import "strconv"

// Writer is a streaming RESP reply encoder: replies are appended
// directly into a reusable buffer instead of being built as boxed Value
// trees and encoded afterwards. It is the serving plane's hot-path
// encoder — one Writer lives per connection, every Append* method is
// allocation-free once the buffer has warmed up, and Value survives
// only for cold introspection replies (COMMAND, G.INFO) via
// AppendValue.
//
// Large bulk payloads are not copied: AppendBulk records a reference
// and Vectors interleaves them with the buffer segments for a vectored
// (writev) flush. Callers handing AppendBulk a payload at or above
// zeroCopyBulk must keep it unmodified until the Writer is Reset.
//
// Mark/Rewind give dispatch transactional replies: a handler that
// errors after partial output is rewound to its mark and replaced by a
// single well-formed error reply, keeping pipelined connections in
// sync.
type Writer struct {
	buf      []byte
	refs     []bulkRef
	refBytes int
}

// bulkRef is one zero-copy payload spliced into the output stream after
// the first end bytes of buf.
type bulkRef struct {
	end     int // bytes of buf preceding the payload
	payload []byte
}

const (
	// zeroCopyBulk is the bulk payload size from which AppendBulk
	// references the caller's bytes instead of copying them.
	zeroCopyBulk = 4 << 10
	// retainedWriterBytes caps the buffer capacity a Reset keeps: one
	// huge introspection reply must not pin its buffer for the
	// connection's lifetime.
	retainedWriterBytes = 64 << 10
)

// Len reports the pending encoded bytes, zero-copy payloads included.
func (w *Writer) Len() int { return len(w.buf) + w.refBytes }

// HasRefs reports whether pending output references caller-owned
// payload bytes (see AppendBulk); those bytes must stay untouched until
// the next Reset.
func (w *Writer) HasRefs() bool { return len(w.refs) > 0 }

func (w *Writer) crlf() { w.buf = append(w.buf, '\r', '\n') }

// AppendSimple appends a simple-string reply ("+s\r\n").
func (w *Writer) AppendSimple(s string) {
	w.buf = append(w.buf, '+')
	w.buf = append(w.buf, s...)
	w.crlf()
}

// AppendError appends an error reply ("-msg\r\n").
func (w *Writer) AppendError(msg string) {
	w.buf = append(w.buf, '-')
	w.buf = append(w.buf, msg...)
	w.crlf()
}

// AppendInt appends an integer reply (":n\r\n").
func (w *Writer) AppendInt(n int64) {
	w.buf = append(w.buf, ':')
	w.buf = strconv.AppendInt(w.buf, n, 10)
	w.crlf()
}

// AppendArrayHeader appends an array header ("*n\r\n"); the caller
// appends the n elements.
func (w *Writer) AppendArrayHeader(n int) {
	w.buf = append(w.buf, '*')
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
	w.crlf()
}

// AppendNullBulk appends the RESP2 null bulk ("$-1\r\n").
func (w *Writer) AppendNullBulk() {
	w.buf = append(w.buf, '$', '-', '1')
	w.crlf()
}

func (w *Writer) bulkHeader(n int) {
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
	w.crlf()
}

// AppendBulk appends a bulk-string reply. Payloads of zeroCopyBulk
// bytes or more are referenced, not copied — the caller must keep them
// unmodified until the Writer is Reset (for a server reply: until the
// flush).
func (w *Writer) AppendBulk(b []byte) {
	w.bulkHeader(len(b))
	if len(b) >= zeroCopyBulk {
		w.refs = append(w.refs, bulkRef{end: len(w.buf), payload: b})
		w.refBytes += len(b)
	} else {
		w.buf = append(w.buf, b...)
	}
	w.crlf()
}

// AppendBulkString appends a bulk-string reply, always copying.
func (w *Writer) AppendBulkString(s string) {
	w.bulkHeader(len(s))
	w.buf = append(w.buf, s...)
	w.crlf()
}

// AppendBulkUint appends a decimal uint64 as a bulk string without
// going through an intermediate string.
func (w *Writer) AppendBulkUint(n uint64) {
	var tmp [20]byte
	d := strconv.AppendUint(tmp[:0], n, 10)
	w.bulkHeader(len(d))
	w.buf = append(w.buf, d...)
	w.crlf()
}

// AppendValue encodes a boxed Value — the bridge for cold introspection
// handlers that still build reply trees. An invalid Value (unknown
// Type, the zero Value included) encodes as an error reply rather than
// desyncing the stream.
func (w *Writer) AppendValue(v Value) {
	switch v.Type {
	case '+':
		w.AppendSimple(v.Str)
	case '-':
		w.AppendError(v.Str)
	case ':':
		w.AppendInt(v.Int)
	case '$':
		if v.Null {
			w.AppendNullBulk()
		} else {
			w.AppendBulkString(v.Str)
		}
	case '*':
		w.AppendArrayHeader(len(v.Array))
		for _, item := range v.Array {
			w.AppendValue(item)
		}
	default:
		w.AppendError("ERR protocol: invalid reply value")
	}
}

// Mark records the current output position for Rewind.
type Mark struct {
	buf, refs, refBytes int
}

// Mark returns the position of the next appended byte.
func (w *Writer) Mark() Mark {
	return Mark{buf: len(w.buf), refs: len(w.refs), refBytes: w.refBytes}
}

// Rewind truncates pending output back to m, discarding everything
// appended since the matching Mark.
func (w *Writer) Rewind(m Mark) {
	w.buf = w.buf[:m.buf]
	for i := m.refs; i < len(w.refs); i++ {
		w.refs[i].payload = nil
	}
	w.refs = w.refs[:m.refs]
	w.refBytes = m.refBytes
}

// Reset discards pending output, keeping the buffer for reuse unless it
// grew past retainedWriterBytes (grow-then-shrink: a one-off giant
// reply must not pin its buffer forever).
func (w *Writer) Reset() {
	if cap(w.buf) > retainedWriterBytes {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	for i := range w.refs {
		w.refs[i].payload = nil
	}
	w.refs = w.refs[:0]
	w.refBytes = 0
}

// Vectors appends the pending output regions, in stream order, to dst —
// the writev segment list: buffer runs interleaved with zero-copy
// payloads. With no refs it appends the buffer as one segment.
func (w *Writer) Vectors(dst [][]byte) [][]byte {
	prev := 0
	for _, r := range w.refs {
		if r.end > prev {
			dst = append(dst, w.buf[prev:r.end])
		}
		dst = append(dst, r.payload)
		prev = r.end
	}
	if len(w.buf) > prev {
		dst = append(dst, w.buf[prev:])
	}
	return dst
}

// Bytes assembles the pending output into one contiguous slice. With no
// zero-copy refs it aliases the internal buffer (valid until the next
// append or Reset); otherwise it allocates — in-process callers only.
func (w *Writer) Bytes() []byte {
	if len(w.refs) == 0 {
		return w.buf
	}
	out := make([]byte, 0, w.Len())
	for _, seg := range w.Vectors(nil) {
		out = append(out, seg...)
	}
	return out
}
