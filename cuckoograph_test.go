package cuckoograph_test

import (
	"fmt"
	"testing"

	"cuckoograph"
)

func TestPublicGraphAPI(t *testing.T) {
	g := cuckoograph.New()
	if !g.InsertEdge(1, 2) || g.InsertEdge(1, 2) {
		t.Fatal("InsertEdge newness wrong")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong")
	}
	if got := g.Successors(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Successors = %v", got)
	}
	if g.Degree(1) != 1 || g.Degree(9) != 0 {
		t.Fatal("Degree wrong")
	}
	if g.NumNodes() != 1 || g.NumEdges() != 1 {
		t.Fatal("counts wrong")
	}
	if g.MemoryUsage() == 0 {
		t.Fatal("MemoryUsage zero")
	}
	if st := g.Stats(); st.Edges != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	nodes := 0
	g.ForEachNode(func(uint64) bool { nodes++; return true })
	if nodes != 1 {
		t.Fatal("ForEachNode wrong")
	}
	if !g.DeleteEdge(1, 2) || g.DeleteEdge(1, 2) {
		t.Fatal("DeleteEdge wrong")
	}
}

func TestPublicOptions(t *testing.T) {
	g := cuckoograph.NewWithOptions(cuckoograph.Options{
		CellsPerBucket: 4,
		LargeSlots:     2,
		MaxKicks:       50,
		ExpandAt:       0.8,
		ContractAt:     0.4,
		InitialLength:  4,
		SCHTLength:     4,
		Seed:           7,
	})
	for i := uint64(0); i < 5000; i++ {
		g.InsertEdge(i%100, i)
	}
	for i := uint64(0); i < 5000; i++ {
		if !g.HasEdge(i%100, i) {
			t.Fatalf("edge %d lost under custom options", i)
		}
	}
}

func TestPublicWeightedAPI(t *testing.T) {
	w := cuckoograph.NewWeighted()
	w.InsertEdge(1, 2)
	w.Add(1, 2, 4)
	if got, ok := w.Weight(1, 2); !ok || got != 5 {
		t.Fatalf("Weight = %d,%v", got, ok)
	}
	total := uint64(0)
	w.ForEachSuccessor(1, func(_, weight uint64) bool { total += weight; return true })
	if total != 5 {
		t.Fatalf("weight sum = %d", total)
	}
	if !w.DeleteEdge(1, 2) {
		t.Fatal("DeleteEdge failed")
	}
	if got, _ := w.Weight(1, 2); got != 4 {
		t.Fatalf("weight after delete = %d", got)
	}
	if !w.DeleteAll(1, 2) || w.HasEdge(1, 2) {
		t.Fatal("DeleteAll wrong")
	}
	if w.NumEdges() != 0 || w.NumNodes() != 0 {
		t.Fatal("counts wrong after removal")
	}
	_ = w.MemoryUsage()
	_ = w.Stats()
	w.ForEachNode(func(uint64) bool { return true })
}

func TestPublicMultiAPI(t *testing.T) {
	m := cuckoograph.NewMulti()
	m.InsertEdge(1, 2, 10)
	m.InsertEdge(1, 2, 11)
	if !m.HasEdge(1, 2) {
		t.Fatal("HasEdge false")
	}
	it := m.Edges(1, 2)
	if it.Len() != 2 {
		t.Fatalf("iterator len %d", it.Len())
	}
	if m.NumEdges() != 2 || m.NumPairs() != 1 {
		t.Fatal("counts wrong")
	}
	found := 0
	m.ForEachSuccessor(1, func(v uint64, parallel int) bool {
		if v == 2 && parallel == 2 {
			found++
		}
		return true
	})
	if found != 1 {
		t.Fatal("ForEachSuccessor wrong")
	}
	if !m.DeleteEdge(1, 2, 10) || m.DeleteEdge(1, 2, 10) {
		t.Fatal("DeleteEdge wrong")
	}
	_ = m.MemoryUsage()
}

func ExampleGraph() {
	g := cuckoograph.New()
	g.InsertEdge(1, 2)
	g.InsertEdge(1, 3)
	fmt.Println(g.HasEdge(1, 2), g.Degree(1))
	// Output: true 2
}

func ExampleWeighted() {
	w := cuckoograph.NewWeighted()
	w.InsertEdge(7, 8)
	w.InsertEdge(7, 8)
	weight, _ := w.Weight(7, 8)
	fmt.Println(weight)
	// Output: 2
}
