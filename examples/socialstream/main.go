// Socialstream: the weighted (extended) CuckooGraph on a StackOverflow-
// like interaction stream with duplicate edges (§III-B). Each repeated
// interaction bumps the edge weight instead of storing a duplicate.
package main

import (
	"fmt"

	"cuckoograph"
	"cuckoograph/internal/dataset"
)

func main() {
	g := cuckoograph.NewWeighted()

	// A scaled StackOverflow-shaped stream: 13.9 average degree,
	// power-law hubs, ~43% duplicate interactions.
	spec, _ := dataset.ByName("StackOverflow")
	stream := dataset.Generate(spec, 1024, 7)
	for _, e := range stream {
		g.InsertEdge(e.U, e.V)
	}
	fmt.Printf("stream=%d distinct=%d users=%d memory=%.1fKB\n",
		len(stream), g.NumEdges(), g.NumNodes(), float64(g.MemoryUsage())/1024)

	// Find the strongest interaction pair.
	var bu, bv, bw uint64
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v, w uint64) bool {
			if w > bw {
				bu, bv, bw = u, v, w
			}
			return true
		})
		return true
	})
	fmt.Printf("hottest pair: %d→%d repeated %d times\n", bu, bv, bw)

	// Weights decay as interactions are retracted; the edge disappears
	// when its weight reaches zero, and the structure gives memory back.
	before := g.MemoryUsage()
	g.ForEachNode(func(u uint64) bool { return true }) // keep iteration honest
	removed := 0
	for _, e := range stream {
		if g.DeleteEdge(e.U, e.V) {
			removed++
		}
	}
	fmt.Printf("retracted %d interactions; distinct left=%d memory %.1fKB → %.1fKB\n",
		removed, g.NumEdges(), float64(before)/1024, float64(g.MemoryUsage())/1024)
}
