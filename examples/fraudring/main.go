// Fraudring: graph analytics over a transaction graph stored in
// CuckooGraph — the financial fraud-detection motivation of the paper's
// introduction. Rings of accounts that cycle money show up as triangles
// and strongly connected components.
package main

import (
	"fmt"
	"sort"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/hashutil"
	"cuckoograph/internal/stores"
)

func main() {
	s := stores.NewCuckooGraph()
	rng := hashutil.NewRNG(2024)

	// Background traffic: 5000 random transfers between 800 accounts.
	for i := 0; i < 5000; i++ {
		s.InsertEdge(rng.Uint64n(800), rng.Uint64n(800))
	}
	// Planted fraud rings: tight cycles with internal chatter.
	rings := [][]uint64{
		{900, 901, 902},
		{910, 911, 912, 913},
		{920, 921, 922, 923, 924},
	}
	for _, ring := range rings {
		for i := range ring {
			s.InsertEdge(ring[i], ring[(i+1)%len(ring)])
			s.InsertEdge(ring[(i+1)%len(ring)], ring[i])
		}
	}

	// 1. Strongly connected components isolate candidate rings.
	comp, n := analytics.ConnectedComponents(s)
	sizes := map[int]int{}
	for _, c := range comp {
		sizes[c]++
	}
	fmt.Printf("%d SCCs over %d accounts\n", n, len(comp))

	// 2. Triangle counting flags accounts inside dense cycles.
	type hit struct {
		acct uint64
		tri  int
	}
	var hits []hit
	for _, ring := range rings {
		for _, acct := range ring {
			hits = append(hits, hit{acct, analytics.TriangleCount(s, acct)})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].tri > hits[j].tri })
	fmt.Println("top ring members by triangle count:")
	for _, h := range hits[:5] {
		fmt.Printf("  account %d: %d triangles (component %d)\n", h.acct, h.tri, comp[h.acct])
	}

	// 3. BFS from a flagged account bounds the blast radius.
	reach := analytics.BFS(s, rings[2][0])
	fmt.Printf("accounts reachable from %d: %d\n", rings[2][0], len(reach))
}
