// Netflow: CAIDA-style network monitoring (the paper's flow-trace
// workload). IP pairs arrive with heavy repetition, expire, and the
// structure shrinks back — exercising the weighted version plus reverse
// transformation under churn.
package main

import (
	"fmt"

	"cuckoograph"
	"cuckoograph/internal/dataset"
)

func main() {
	g := cuckoograph.NewWeighted()
	spec, _ := dataset.ByName("CAIDA")
	stream := dataset.Generate(spec, 1024, 99)

	// Ingest window by window; after each window expire flows seen once
	// (the classic elephant/mice separation).
	const window = 4096
	for start := 0; start < len(stream); start += window {
		end := start + window
		if end > len(stream) {
			end = len(stream)
		}
		for _, e := range stream[start:end] {
			g.InsertEdge(e.U, e.V)
		}
		expired := 0
		var mice [][2]uint64
		g.ForEachNode(func(u uint64) bool {
			g.ForEachSuccessor(u, func(v, w uint64) bool {
				if w == 1 {
					mice = append(mice, [2]uint64{u, v})
				}
				return true
			})
			return true
		})
		for _, m := range mice {
			if g.DeleteAll(m[0], m[1]) {
				expired++
			}
		}
		fmt.Printf("window %3d: live flows=%5d expired mice=%5d memory=%6.1fKB\n",
			start/window, g.NumEdges(), expired, float64(g.MemoryUsage())/1024)
	}

	// Report surviving elephants.
	var top uint64
	var hu, hv uint64
	g.ForEachNode(func(u uint64) bool {
		g.ForEachSuccessor(u, func(v, w uint64) bool {
			if w > top {
				top, hu, hv = w, u, v
			}
			return true
		})
		return true
	})
	fmt.Printf("heaviest surviving flow: %d→%d with %d packets\n", hu, hv, top)
}
