// Quickstart: the basic CuckooGraph API — insert, query, traverse,
// delete, and watch the structure transform and shrink as it works.
package main

import (
	"fmt"

	"cuckoograph"
)

func main() {
	g := cuckoograph.New()

	// Insert a small follower graph.
	edges := [][2]uint64{
		{1, 2}, {1, 3}, {2, 3}, {3, 1}, {4, 1}, {4, 2},
	}
	for _, e := range edges {
		g.InsertEdge(e[0], e[1])
	}
	fmt.Printf("nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges())

	// Point queries are O(1): at most two L-CHT buckets, an S-CHT chain
	// and the denylists are probed.
	fmt.Println("1→2?", g.HasEdge(1, 2)) // true
	fmt.Println("2→1?", g.HasEdge(2, 1)) // false

	// Successor traversal.
	fmt.Println("successors of 1:", g.Successors(1))
	fmt.Println("out-degree of 4:", g.Degree(4))

	// A hub node: its Part 2 transforms from 2R inline slots into an
	// S-CHT chain automatically as the degree grows.
	for v := uint64(100); v < 1100; v++ {
		g.InsertEdge(7, v)
	}
	st := g.Stats()
	fmt.Printf("after hub: degree(7)=%d chains=%d chainCells=%d memory=%dB\n",
		g.Degree(7), st.Chains, st.ChainCells, g.MemoryUsage())

	// Deletions trigger reverse transformation: the chain contracts and
	// finally collapses back into inline slots.
	for v := uint64(100); v < 1098; v++ {
		g.DeleteEdge(7, v)
	}
	st = g.Stats()
	fmt.Printf("after deletes: degree(7)=%d chains=%d memory=%dB\n",
		g.Degree(7), st.Chains, g.MemoryUsage())
}
