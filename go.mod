module cuckoograph

go 1.24
