module cuckoograph

go 1.23
