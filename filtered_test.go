package cuckoograph_test

import (
	"testing"

	"cuckoograph"
	"cuckoograph/internal/hashutil"
)

// TestFilteredGraphAgreesWithPlain runs identical operation streams
// through a plain and a VEND-filtered graph; answers must never differ.
func TestFilteredGraphAgreesWithPlain(t *testing.T) {
	plain := cuckoograph.New()
	filtered := cuckoograph.NewFiltered()
	rng := hashutil.NewRNG(77)
	for i := 0; i < 30000; i++ {
		u, v := rng.Uint64n(300), rng.Uint64n(3000)
		switch rng.Intn(5) {
		case 0:
			if plain.DeleteEdge(u, v) != filtered.DeleteEdge(u, v) {
				t.Fatalf("delete divergence at ⟨%d,%d⟩", u, v)
			}
		case 1, 2:
			if plain.InsertEdge(u, v) != filtered.InsertEdge(u, v) {
				t.Fatalf("insert divergence at ⟨%d,%d⟩", u, v)
			}
		default:
			if plain.HasEdge(u, v) != filtered.HasEdge(u, v) {
				t.Fatalf("query divergence at ⟨%d,%d⟩", u, v)
			}
		}
	}
	if plain.NumEdges() != filtered.NumEdges() {
		t.Fatalf("edge counts diverge: %d vs %d", plain.NumEdges(), filtered.NumEdges())
	}
}

func TestFilteredGraphRebuild(t *testing.T) {
	fg := cuckoograph.NewFiltered()
	for v := uint64(0); v < 1000; v++ {
		fg.InsertEdge(1, v)
	}
	// Mass deletion crosses the rebuild threshold.
	for v := uint64(0); v < 900; v++ {
		if !fg.DeleteEdge(1, v) {
			t.Fatalf("delete %d failed", v)
		}
	}
	for v := uint64(900); v < 1000; v++ {
		if !fg.HasEdge(1, v) {
			t.Fatalf("survivor %d lost after rebuild", v)
		}
	}
	for v := uint64(0); v < 900; v++ {
		if fg.HasEdge(1, v) {
			t.Fatalf("deleted edge %d still answers true", v)
		}
	}
	fg.RebuildFilter()
	if fg.NumEdges() != 100 || len(fg.Successors(1)) != 100 {
		t.Fatal("counts wrong after explicit rebuild")
	}
	if fg.MemoryUsage() == 0 || fg.NumNodes() != 1 {
		t.Fatal("accessors wrong")
	}
}

// BenchmarkVENDNegativeQueries shows the future-work payoff: negative
// edge queries on a filtered graph vs the plain structure.
func BenchmarkVENDNegativeQueries(b *testing.B) {
	plain := cuckoograph.New()
	filtered := cuckoograph.NewFiltered()
	rng := hashutil.NewRNG(5)
	for i := 0; i < 1<<16; i++ {
		u, v := rng.Uint64n(1024), rng.Uint64n(1<<20)
		plain.InsertEdge(u, v)
		filtered.InsertEdge(u, v)
	}
	// Probe pairs that are almost surely absent.
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.HasEdge(uint64(i)%1024, 1<<40+uint64(i))
		}
	})
	b.Run("vend-filtered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			filtered.HasEdge(uint64(i)%1024, 1<<40+uint64(i))
		}
	})
}
