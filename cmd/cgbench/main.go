// Command cgbench regenerates every table and figure of the paper's
// evaluation (§V). Each subcommand prints the rows or series of one
// experiment; "all" runs the whole suite. Datasets are synthesised at a
// configurable scale (see DESIGN.md §3 for the substitution rationale).
//
// Usage:
//
//	cgbench [-scale N] [-seed N] <experiment>
//
// Experiments: table3 table4 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 kicks
// concurrent parallel durability batchops snapshot server all
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/bench"
	"cuckoograph/internal/core"
	"cuckoograph/internal/cuckoo"
	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/neolike"
	"cuckoograph/internal/redislike"
	"cuckoograph/internal/resp"
	"cuckoograph/internal/sharded"
	"cuckoograph/internal/stores"
	"cuckoograph/internal/wal"
)

var (
	scale     = flag.Uint64("scale", 64, "dataset scale divisor (1 = paper size)")
	seed      = flag.Uint64("seed", 42, "workload seed")
	jsonOut   = flag.Bool("json", false, "also write BENCH_<workload>.json with machine-readable results")
	compare   = flag.String("compare", "", "baseline BENCH_<workload>.json to diff the run against; exits 1 on regression")
	tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ns/op slowdown before -compare flags a regression")
	repeat    = flag.Int("repeat", 1, "run the workload N times and keep per-series medians (defaults to 3 with -compare)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cgbench [-scale N] [-seed N] [-json] [-compare BENCH_x.json [-tolerance F] [-repeat N]] <table2|table3|table4|fig2..fig18|kicks|analytics|readpath|concurrent|parallel|durability|batchops|snapshot|server|all>")
		os.Exit(2)
	}
	reps := *repeat
	if reps < 1 {
		reps = 1
	}
	if *compare != "" && *repeat == 1 {
		reps = 3 // interleaved best-of-N: rerun and take medians
	}
	for i := 0; i < reps; i++ {
		run(flag.Arg(0))
	}
	os.Exit(finish())
}

// collected accumulates each repeat's machine-readable rows per
// workload; finish reduces them to per-series medians.
var collected = map[string][][]bench.JSONRow{}

// emitJSON records one run's machine-readable rows for the workload.
// The file (and any -compare verdict) is produced by finish once every
// repeat has run, from per-series medians.
func emitJSON(workload string, rows []bench.JSONRow) {
	collected[workload] = append(collected[workload], rows)
}

// finish writes BENCH_<workload>.json files when -json is set and,
// when -compare names a baseline, diffs the medianed fresh rows
// against it. The returned code is the process exit status: 1 when any
// series regressed past the tolerance, 0 otherwise.
func finish() int {
	medians := map[string][]bench.JSONRow{}
	for workload, runs := range collected {
		medians[workload] = bench.MedianRows(runs)
	}
	if *jsonOut {
		for workload, rows := range medians {
			path, err := bench.WriteJSONReport(".", bench.JSONReport{
				Workload: workload,
				Scale:    *scale,
				Rows:     rows,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "cgbench: writing %s results: %v\n", workload, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *compare == "" {
		return 0
	}
	baseline, err := bench.LoadJSONReport(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgbench: loading baseline: %v\n", err)
		return 1
	}
	if baseline.Scale != 0 && baseline.Scale != *scale {
		fmt.Fprintf(os.Stderr, "cgbench: baseline was measured at scale %d, this run at %d; rerun with -scale %d\n",
			baseline.Scale, *scale, baseline.Scale)
		return 1
	}
	fresh, ok := medians[baseline.Workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "cgbench: baseline is for workload %q, which this run did not execute\n", baseline.Workload)
		return 1
	}
	deltas, regressed := bench.CompareReports(baseline, bench.JSONReport{
		Workload: baseline.Workload,
		Scale:    *scale,
		Rows:     fresh,
	}, *tolerance)
	fmt.Printf("\n== Regression check vs %s (baseline rev %s, tolerance %.0f%%) ==\n",
		*compare, baseline.GitRev, *tolerance*100)
	header, rows := bench.FormatDeltas(deltas)
	bench.PrintTable(os.Stdout, header, rows)
	if regressed {
		fmt.Println("RESULT: regression detected")
		return 1
	}
	fmt.Println("RESULT: no regression")
	return 0
}

func run(name string) {
	switch name {
	case "table2":
		table2()
	case "table3":
		table3()
	case "table4":
		table4()
	case "fig2":
		sweep("d", []string{"4", "8", "16", "32"}, func(v string) core.Config {
			d, _ := strconv.Atoi(v)
			return core.Config{D: d}
		})
	case "fig3":
		sweep("G", []string{"0.8", "0.85", "0.9", "0.95"}, func(v string) core.Config {
			g, _ := strconv.ParseFloat(v, 64)
			return core.Config{G: g}
		})
	case "fig4":
		sweep("T", []string{"50", "150", "250", "350"}, func(v string) core.Config {
			t, _ := strconv.Atoi(v)
			return core.Config{MaxKicks: t}
		})
	case "fig5":
		fig5()
	case "fig6", "fig7", "fig8":
		basicOps(name)
	case "fig9":
		fig9()
	case "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16":
		analyticsFig(name)
	case "fig17":
		fig17()
	case "fig18":
		fig18()
	case "kicks":
		kicks()
	case "analytics":
		analyticsCSR()
	case "readpath":
		readPath()
	case "concurrent":
		concurrent()
	case "parallel":
		parallelAnalytics()
	case "durability":
		durability()
	case "batchops":
		batchOps()
	case "snapshot":
		snapshot()
	case "server":
		serverOps()
	case "all":
		for _, n := range []string{"table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
			"fig14", "fig15", "fig16", "fig17", "fig18", "kicks", "analytics", "readpath", "concurrent", "parallel",
			"durability", "batchops", "snapshot", "server"} {
			run(n)
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "cgbench: unknown experiment %q\n", name)
		os.Exit(2)
	}
}

func stream(name string) []dataset.Edge {
	spec, ok := dataset.ByName(name)
	if !ok {
		panic("no dataset " + name)
	}
	return dataset.Generate(spec, *scale, *seed)
}

// table2 prints the transformation rule walk of Table II by driving a
// chain through nine Grow steps.
func table2() {
	fmt.Println("== Table II: transformation rule (R=3, n=8) ==")
	c := cuckoo.NewChain[struct{}](8, cuckoo.Config{R: 3})
	rows := [][]string{}
	for state := 0; state <= 9; state++ {
		lens := c.Lengths()
		cells := []string{fmt.Sprintf("%d", state)}
		for i := 0; i < 3; i++ {
			switch {
			case i >= len(lens):
				cells = append(cells, "null")
			case lens[i] == 4: // n/2 for n=8
				cells = append(cells, "n/2")
			case lens[i] == 8:
				cells = append(cells, "n")
			default:
				cells = append(cells, fmt.Sprintf("%dn", lens[i]/8))
			}
		}
		rows = append(rows, cells)
		c.Grow()
	}
	bench.PrintTable(os.Stdout,
		[]string{"# LR>G", "1st S-CHT", "2nd S-CHT", "3rd S-CHT"}, rows)
}

// table3 empirically grounds Table III's CuckooGraph row: amortized O(1)
// insert cost (Theorem 2's ≤ 2.25N expectation) and O(1) query probes.
func table3() {
	fmt.Printf("== Table III: amortized complexity check (scale 1/%d) ==\n", *scale)
	g := core.NewGraph(core.Config{LCHTBase: 4, SCHTBase: 4})
	bench.LoadStream(g, stream("NotreDame"))
	s := g.Stats()
	n := float64(s.Edges)
	lcht := float64(s.LCHTPlacements + s.LCHTKicks)
	scht := float64(s.SCHTPlacements + s.SCHTKicks)
	bench.PrintTable(os.Stdout,
		[]string{"metric", "measured", "theorem bound"},
		[][]string{
			{"edges inserted N", fmt.Sprintf("%.0f", n), "-"},
			{"L-CHT cost (placements+kicks)", fmt.Sprintf("%.0f (%.3fN)", lcht, lcht/float64(s.Nodes)), "≤ 2.25N exp., 3N worst"},
			{"S-CHT cost (placements+kicks)", fmt.Sprintf("%.0f (%.3fN)", scht, scht/n), "≤ 2.25N exp., 3N worst"},
			{"space cells / edges", fmt.Sprintf("%.3f", float64(s.LCHTCells+s.ChainCells)/n), "O(|E|), ≤ 1/Λ at stable state"},
		})
}

func table4() {
	fmt.Printf("== Table IV: dataset shapes (scale 1/%d) ==\n", *scale)
	rows := [][]string{}
	for _, spec := range dataset.Specs() {
		st := dataset.Measure(spec.Name, spec.Weighted, dataset.Generate(spec, *scale, *seed))
		w := "no"
		if st.Weighted {
			w = "yes"
		}
		rows = append(rows, []string{
			st.Name, w,
			fmt.Sprintf("%d", st.Nodes), fmt.Sprintf("%d", st.Edges),
			fmt.Sprintf("%d", st.Dedup), fmt.Sprintf("%.2f", st.AvgDeg),
			fmt.Sprintf("%d", st.MaxDeg), fmt.Sprintf("%.2e", st.Density),
		})
	}
	bench.PrintTable(os.Stdout,
		[]string{"Dataset", "Wtd", "Nodes", "Edges", "Edges(dedup)", "AvgDeg", "MaxDeg", "Density"},
		rows)
}

// sweep runs the Figures 2-4 parameter studies on the CAIDA stream.
func sweep(param string, values []string, configure func(string) core.Config) {
	fmt.Printf("== Figure for parameter %s (CAIDA, scale 1/%d) ==\n", param, *scale)
	st := stream("CAIDA")
	points := bench.SweepParam(values, configure, st)
	rows := [][]string{}
	for _, p := range points {
		rows = append(rows, []string{
			param + "=" + p.Param,
			fmt.Sprintf("%.2f", p.InsertMops),
			fmt.Sprintf("%.2f", p.QueryMops),
			fmt.Sprintf("%.2f", p.MemoryMB),
		})
	}
	bench.PrintTable(os.Stdout, []string{"param", "insert Mops", "query Mops", "memory MB"}, rows)
}

// fig5 is the DENYLIST ablation (§V-C).
func fig5() {
	fmt.Printf("== Figure 5: DenyList ablation (CAIDA, scale 1/%d) ==\n", *scale)
	st := stream("CAIDA")
	rows := [][]string{}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"Ours (DL)", false}, {"Ours (DL-free)", true}} {
		cfg := core.Config{DisableDenylist: mode.disable}
		ins, qry, mem := bench.InsertQueryThroughput(func() graphstore.Store {
			return stores.NewCuckooGraphWith(cfg)
		}, st)
		rows = append(rows, []string{mode.name,
			fmt.Sprintf("%.2f", ins), fmt.Sprintf("%.2f", qry), fmt.Sprintf("%.3f", mem)})
	}
	bench.PrintTable(os.Stdout, []string{"variant", "insert Mops", "query Mops", "memory MB"}, rows)
}

// basicOps is Figures 6-8: per-dataset insert/query/delete throughput.
func basicOps(fig string) {
	metric := map[string]string{"fig6": "insert", "fig7": "query", "fig8": "delete"}[fig]
	fmt.Printf("== Figure %s: %s throughput, Mops (scale 1/%d) ==\n", fig[3:], metric, *scale)
	header := []string{"Dataset"}
	for _, f := range stores.Evaluated() {
		header = append(header, f.Name)
	}
	rows := [][]string{}
	for _, spec := range dataset.Specs() {
		st := dataset.Generate(spec, *scale, *seed)
		row := []string{spec.Name}
		for _, f := range stores.Evaluated() {
			res, _ := bench.BasicOps(f, st, 0)
			var v float64
			switch metric {
			case "insert":
				v = res.InsertMops
			case "query":
				v = res.QueryMops
			default:
				v = res.DeleteMops
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	bench.PrintTable(os.Stdout, header, rows)
}

// fig9 prints the memory curves per dataset.
func fig9() {
	fmt.Printf("== Figure 9: memory usage in MB after deduped inserts (scale 1/%d) ==\n", *scale)
	for _, spec := range dataset.Specs() {
		st := dataset.Generate(spec, *scale, *seed)
		fmt.Printf("-- %s --\n", spec.Name)
		header := []string{"inserted"}
		curves := map[string][]bench.MemPoint{}
		for _, f := range stores.Evaluated() {
			header = append(header, f.Name)
			_, curve := bench.BasicOps(f, st, 10)
			curves[f.Name] = curve
		}
		n := len(curves[stores.Evaluated()[0].Name])
		rows := [][]string{}
		for i := 0; i < n; i++ {
			row := []string{fmt.Sprintf("%d", curves[stores.Evaluated()[0].Name][i].Inserted)}
			for _, f := range stores.Evaluated() {
				c := curves[f.Name]
				if i < len(c) {
					row = append(row, fmt.Sprintf("%.3f", float64(c[i].Bytes)/(1<<20)))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		bench.PrintTable(os.Stdout, header, rows)
	}
}

// analyticsFig is Figures 10-16.
func analyticsFig(fig string) {
	taskByFig := map[string]bench.AnalyticsTask{
		"fig10": bench.TaskBFS, "fig11": bench.TaskSSSP, "fig12": bench.TaskTC,
		"fig13": bench.TaskCC, "fig14": bench.TaskPR, "fig15": bench.TaskBC,
		"fig16": bench.TaskLCC,
	}
	task := taskByFig[fig]
	fmt.Printf("== Figure %s: %s running time, seconds (scale 1/%d) ==\n", fig[3:], task, *scale)
	header := []string{"Dataset"}
	for _, f := range stores.Evaluated() {
		header = append(header, f.Name)
	}
	// Subgraph size per the §V-E methodology, kept modest at bench scale.
	sub := 256
	rows := [][]string{}
	for _, spec := range dataset.Specs() {
		st := dataset.Generate(spec, *scale, *seed)
		row := []string{spec.Name}
		for _, f := range stores.Evaluated() {
			d := bench.RunAnalytics(f, st, task, sub)
			row = append(row, fmt.Sprintf("%.4g", d.Seconds()))
		}
		rows = append(rows, row)
	}
	bench.PrintTable(os.Stdout, header, rows)
}

// fig17 measures CuckooGraph-on-redislike throughput over real TCP.
func fig17() {
	fmt.Printf("== Figure 17: CuckooGraph on Redis-like server, Mops (scale 1/%d) ==\n", *scale)
	rows := [][]string{}
	for _, name := range []string{"CAIDA", "StackOverflow"} {
		st := stream(name)
		if len(st) > 200_000 {
			st = st[:200_000] // socket round-trips dominate; cap the stream
		}
		srv := redislike.NewServer()
		_, mod := redislike.NewGraphModule()
		if err := srv.LoadModule(mod); err != nil {
			panic(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			panic(err)
		}
		r, w := bufio.NewReader(conn), bufio.NewWriter(conn)
		do := func(args ...string) {
			if err := resp.Write(w, resp.Command(args...)); err != nil {
				panic(err)
			}
			w.Flush()
			if _, err := resp.Read(r); err != nil {
				panic(err)
			}
		}
		measure := func(cmd string) float64 {
			start := time.Now()
			for _, e := range st {
				do(cmd, strconv.FormatUint(e.U, 10), strconv.FormatUint(e.V, 10))
			}
			return bench.Mops(len(st), time.Since(start))
		}
		ins := measure("g.insert")
		qry := measure("g.query")
		del := measure("g.del")
		rows = append(rows, []string{name,
			fmt.Sprintf("%.4f", ins), fmt.Sprintf("%.4f", qry), fmt.Sprintf("%.4f", del)})
		conn.Close()
		srv.Close()
	}
	bench.PrintTable(os.Stdout, []string{"Dataset", "insert", "query", "delete"}, rows)
}

// fig18 compares the Neo4j-like engine with and without the CuckooGraph
// edge index on the first 1M (scaled) CAIDA edges.
func fig18() {
	fmt.Printf("== Figure 18: Neo4j-like engine ± CuckooGraph index (scale 1/%d) ==\n", *scale)
	st := stream("CAIDA")
	limit := 1_000_000 / int(*scale)
	if limit < 1000 {
		limit = 1000
	}
	if len(st) > limit {
		st = st[:limit]
	}
	dedup := dataset.Dedup(st)
	rows := [][]string{}
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"Ours+Neo4j", true}, {"Neo4j", false}} {
		db := neolike.New()
		if mode.indexed {
			db = neolike.WithIndex()
		}
		start := time.Now()
		for _, e := range st {
			db.CreateRelationship(e.U, e.V, "FLOW")
		}
		insert := time.Since(start)
		start = time.Now()
		for _, e := range dedup {
			db.Relationships(e.U, e.V)
		}
		query := time.Since(start)
		rows = append(rows, []string{mode.name,
			fmt.Sprintf("%.4f", insert.Seconds()), fmt.Sprintf("%.4f", query.Seconds())})
	}
	bench.PrintTable(os.Stdout, []string{"variant", "insert s", "query s"}, rows)
}

// concurrent measures write/read scaling of the sharded engine against
// the single-global-lock baseline (the pre-sharding SafeGraph shape):
// W writer goroutines insert disjoint slices of the CAIDA stream while
// W/2 reader goroutines issue point queries.
func concurrent() {
	fmt.Printf("== Concurrent workload: sharded vs global lock, aggregate Mops (CAIDA, scale 1/%d) ==\n", *scale)
	st := stream("CAIDA")
	baseline := bench.LockedFactory(graphstore.Factory{Name: "CuckooGraph", New: stores.NewCuckooGraph})
	// Pin the shard count above the writer count so shard-level locking
	// is exercised even when GOMAXPROCS is small.
	shardedF := graphstore.Factory{
		Name: "CuckooGraph-Sharded",
		New:  func() graphstore.Store { return sharded.New(sharded.Config{Shards: 16}) },
	}
	rows := [][]string{}
	var jrows []bench.JSONRow
	for _, w := range []int{1, 2, 4, 8} {
		r := w / 2
		lock := bench.ConcurrentOps(baseline, st, w, r)
		shrd := bench.ConcurrentOps(shardedF, st, w, r)
		rows = append(rows, []string{
			fmt.Sprintf("%d", w), fmt.Sprintf("%d", r),
			fmt.Sprintf("%.3f", lock.WriteMops), fmt.Sprintf("%.3f", shrd.WriteMops),
			bench.Ratio(shrd.WriteMops, lock.WriteMops),
			fmt.Sprintf("%.3f", lock.ReadMops), fmt.Sprintf("%.3f", shrd.ReadMops),
		})
		jrows = append(jrows,
			bench.MopsRow(fmt.Sprintf("sharded/w%d/write", w), shrd.WriteMops, 0),
			bench.MopsRow(fmt.Sprintf("sharded/w%d/read", w), shrd.ReadMops, 0),
		)
	}
	bench.PrintTable(os.Stdout,
		[]string{"writers", "readers", "lock ins", "sharded ins", "speedup", "lock read", "sharded read"},
		rows)
	emitJSON("concurrent", jrows)
}

// parallelAnalytics measures the worker-pool BFS and PageRank against
// their sequential counterparts on a sharded graph of the CAIDA stream.
func parallelAnalytics() {
	fmt.Printf("== Parallel analytics: worker-pool vs sequential, seconds (CAIDA, scale 1/%d) ==\n", *scale)
	g := sharded.New(sharded.Config{})
	bench.LoadStream(g, stream("CAIDA"))
	root := analytics.TopDegreeNodes(g, 1)
	if len(root) == 0 {
		fmt.Println("empty graph, nothing to analyse")
		return
	}
	rows := [][]string{}
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		analytics.ParallelBFS(g, root[0], workers)
		bfs := time.Since(start)
		start = time.Now()
		analytics.ParallelPageRank(g, 10, workers)
		pr := time.Since(start)
		rows = append(rows, []string{fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.4f", bfs.Seconds()), fmt.Sprintf("%.4f", pr.Seconds())})
	}
	bench.PrintTable(os.Stdout, []string{"workers", "BFS s", "PageRank(10) s"}, rows)
}

// durability prices the write-ahead log: CAIDA inserts with the WAL
// detached vs attached under each fsync policy, plus the cost of
// replaying the log back into a fresh graph. SyncAlways pays a real
// fsync per group commit, so its stream is capped to keep the run short.
func durability() {
	fmt.Printf("== Durability: WAL write cost and recovery speed (CAIDA, scale 1/%d) ==\n", *scale)
	st := stream("CAIDA")
	rows := [][]string{}
	for _, mode := range []struct {
		sync wal.SyncPolicy
		st   []dataset.Edge
	}{
		{wal.SyncAsync, st},
		{wal.SyncNone, st},
		{wal.SyncAlways, st[:min(len(st), 5000)]},
	} {
		for _, writers := range []int{1, 4} {
			dir, err := os.MkdirTemp("", "cgbench-wal-")
			if err != nil {
				panic(err)
			}
			res, err := bench.Durability(mode.st, writers, dir, wal.Options{Sync: mode.sync})
			os.RemoveAll(dir)
			if err != nil {
				panic(err)
			}
			rows = append(rows, []string{
				bench.SyncName(res.Sync), fmt.Sprintf("%d", res.Writers), fmt.Sprintf("%d", res.Edges),
				fmt.Sprintf("%.3f", res.WALOffMops), fmt.Sprintf("%.3f", res.WALOnMops),
				bench.Ratio(res.WALOffMops, res.WALOnMops),
				res.RecoverPerM.Round(time.Millisecond).String(),
			})
		}
	}
	bench.PrintTable(os.Stdout,
		[]string{"sync", "writers", "edges", "wal-off Mops", "wal-on Mops", "slowdown", "recovery/1M"},
		rows)
}

// batchOps prices the batched mutation pipeline end-to-end: the CAIDA
// stream ingested through ApplyBatch at several batch sizes versus the
// single-op path, all logging to an async WAL, reporting Mops and the
// log bytes each applied edge cost.
func batchOps() {
	fmt.Printf("== Batched ingestion: ApplyBatch vs single-op, WAL async (CAIDA, scale 1/%d) ==\n", *scale)
	st := stream("CAIDA")
	dir, err := os.MkdirTemp("", "cgbench-batch-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	results, err := bench.BatchOps(st, []int{1, 64, 1024}, dir, wal.Options{Sync: wal.SyncAsync})
	if err != nil {
		panic(err)
	}
	single := results[0].Mops
	rows := [][]string{}
	var jrows []bench.JSONRow
	for _, r := range results {
		rows = append(rows, []string{
			r.Label(),
			fmt.Sprintf("%.3f", r.Mops),
			bench.Ratio(r.Mops, single),
			fmt.Sprintf("%.3f", float64(r.WALBytes)/(1<<20)),
			fmt.Sprintf("%.2f", r.BytesPerEdge),
		})
		jrows = append(jrows, bench.MopsRow(r.Label(), r.Mops, 0))
	}
	bench.PrintTable(os.Stdout,
		[]string{"path", "insert Mops", "speedup", "WAL MB", "WAL B/edge"}, rows)
	emitJSON("batchops", jrows)
}

// snapshot prices the epoch-based frozen views: the second half of the
// CAIDA stream is ingested by 4 writers while 0, 1 or 4 views of the
// half-loaded graph stay live, reporting writer throughput, the
// snapshot-open freeze latency, and the copy-on-write bytes per million
// applied mutations.
func snapshot() {
	fmt.Printf("== Snapshot views: writer cost of live frozen views (CAIDA, scale 1/%d) ==\n", *scale)
	results := bench.SnapshotWorkload(stream("CAIDA"), 4, []int{0, 1, 4})
	base := results[0].WriterMops
	rows := [][]string{}
	for _, r := range results {
		open := "-"
		if r.Views > 0 {
			open = r.OpenLatency.Round(time.Microsecond).String()
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Views),
			fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.3f", r.WriterMops),
			bench.Ratio(r.WriterMops, base),
			open,
			fmt.Sprintf("%.3f", r.CoWPerMOps/(1<<20)),
		})
	}
	bench.PrintTable(os.Stdout,
		[]string{"live views", "ops", "writer Mops", "vs 0 views", "open latency", "CoW MB/1M ops"},
		rows)
}

// analyticsCSR prices the CSR-compiled frozen views: PageRank, BFS and
// triangle counting on one snapshot, each timed on the flat CSR path
// and on the Store fallback (interleaved, medians), plus the index
// compile cost so the amortization claim is visible in the output.
func analyticsCSR() {
	fmt.Printf("== Analytics: CSR flat kernels vs Store fallback (power-law, scale 1/%d) ==\n", *scale)
	st := dataset.Generate(bench.AnalyticsCSRSpec, *scale, *seed)
	rep := bench.AnalyticsCSR(st, 20, 3)
	fmt.Printf("graph: %d edges, %d nodes; CSR build %.1f ms (PageRank here runs %d iterations)\n",
		rep.Edges, rep.Nodes, rep.BuildNs/1e6, rep.PRIters)
	rows := [][]string{}
	for _, r := range rep.Results {
		rows = append(rows, []string{
			r.Kernel,
			fmt.Sprintf("%.3f", r.FlatNs/1e6),
			fmt.Sprintf("%.3f", r.FallbackNs/1e6),
			fmt.Sprintf("%.2fx", r.Speedup()),
		})
	}
	bench.PrintTable(os.Stdout, []string{"kernel", "CSR ms", "fallback ms", "speedup"}, rows)
	emitJSON("analytics", rep.JSONRows())
}

// readPath measures the pure query machinery — Lookup (HasEdge hit and
// miss), Degree and ForEachSuccessor — on the three adjacency shapes of
// §III-A1 (one inline slot, full inline slots, an S-CHT chain), plus
// the allocation cost per read op, which must be zero.
func readPath() {
	fmt.Printf("== Read path: probe throughput per adjacency shape (scale 1/%d) ==\n", *scale)
	nodes := int(1_048_576 / *scale)
	results := bench.ReadPath(nodes, *seed)
	rows := [][]string{}
	var jrows []bench.JSONRow
	for _, r := range results {
		rows = append(rows, []string{
			r.Shape, fmt.Sprintf("%d", r.Degree),
			fmt.Sprintf("%.2f", r.LookupMops), fmt.Sprintf("%.2f", r.MissMops),
			fmt.Sprintf("%.2f", r.DegreeMops), fmt.Sprintf("%.2f", r.ScanMeps),
			fmt.Sprintf("%.3f/%.3f/%.3f/%.3f", r.LookupAllocs, r.MissAllocs, r.DegreeAllocs, r.ScanAllocs),
		})
		jrows = append(jrows,
			bench.MopsRow(r.Shape+"/lookup", r.LookupMops, r.LookupAllocs),
			bench.MopsRow(r.Shape+"/contains-miss", r.MissMops, r.MissAllocs),
			bench.MopsRow(r.Shape+"/degree", r.DegreeMops, r.DegreeAllocs),
			bench.MopsRow(r.Shape+"/scan", r.ScanMeps, r.ScanAllocs),
		)
	}
	bench.PrintTable(os.Stdout,
		[]string{"shape", "deg", "lookup Mops", "miss Mops", "degree Mops", "scan Meps", "allocs/op (lookup/miss/degree/scan)"},
		rows)
	emitJSON("readpath", jrows)
}

// serverOps measures the serving plane end to end: a real TCP server
// on loopback, one pipelined client per cell, throughput and process
// allocations per command at pipeline depths 1/16/256.
func serverOps() {
	fmt.Printf("== Serving plane: pipelined TCP command throughput (scale 1/%d) ==\n", *scale)
	ops := int(2_097_152 / *scale)
	results := bench.ServerOps(ops, *seed)
	rows := [][]string{}
	var jrows []bench.JSONRow
	for _, r := range results {
		rows = append(rows, []string{
			r.Workload, fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%.3f", r.Mops), fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.3f", r.AllocsPerOp),
		})
		jrows = append(jrows, bench.MopsRow(fmt.Sprintf("%s/d%d", r.Workload, r.Depth), r.Mops, r.AllocsPerOp))
	}
	bench.PrintTable(os.Stdout, []string{"workload", "depth", "Mops", "ns/op", "allocs/op"}, rows)
	emitJSON("server", jrows)
}

// kicks reproduces the §IV-A measurement: average insertions per item.
func kicks() {
	fmt.Printf("== §IV-A: average insertions per item (NotreDame, scale 1/%d) ==\n", *scale)
	g := core.NewGraph(core.Config{LCHTBase: 4, SCHTBase: 4}) // grow from minimum length
	bench.LoadStream(g, stream("NotreDame"))
	s := g.Stats()
	lcht := 1 + float64(s.LCHTKicks)/float64(s.Nodes)
	scht := 1.0
	if s.SCHTPlacements > 0 {
		scht = 1 + float64(s.SCHTKicks)/float64(s.SCHTPlacements)
	}
	bench.PrintTable(os.Stdout, []string{"table", "avg insertions/item", "paper"},
		[][]string{
			{"L-CHT", fmt.Sprintf("%.4f", lcht), "≈1.017"},
			{"S-CHT", fmt.Sprintf("%.4f", scht), "≈1.006"},
		})
}
