// Command cgcli sends one RESP command to a cgserver instance and
// prints the reply — a minimal redis-cli equivalent for the §V-F
// deployment.
//
//	cgcli -addr 127.0.0.1:6380 g.insert 1 2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"cuckoograph/internal/resp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "server address")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cgcli [-addr host:port] <command> [args...]")
		os.Exit(2)
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgcli:", err)
		os.Exit(1)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	if err := resp.Write(w, resp.Command(flag.Args()...)); err != nil {
		fmt.Fprintln(os.Stderr, "cgcli:", err)
		os.Exit(1)
	}
	w.Flush()
	reply, err := resp.Read(bufio.NewReader(conn))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgcli:", err)
		os.Exit(1)
	}
	fmt.Println(render(reply))
}

func render(v resp.Value) string {
	switch v.Type {
	case '+':
		return v.Str
	case '-':
		return "(error) " + v.Str
	case ':':
		return fmt.Sprintf("(integer) %d", v.Int)
	case '$':
		if v.Null {
			return "(nil)"
		}
		return fmt.Sprintf("%q", v.Str)
	case '*':
		parts := make([]string, len(v.Array))
		for i, item := range v.Array {
			parts[i] = fmt.Sprintf("%d) %s", i+1, render(item))
		}
		if len(parts) == 0 {
			return "(empty array)"
		}
		return strings.Join(parts, "\n")
	}
	return "(unknown)"
}
