// Command cgcli sends RESP commands to a cgserver instance and prints
// the reply — a minimal redis-cli equivalent for the §V-F deployment.
//
//	cgcli -addr 127.0.0.1:6380 g.insert 1 2
//
// The bulkload subcommand streams a whitespace-separated edge-list file
// ("u v" per line, "-" for stdin) through the batched mutation path:
// edges are grouped into G.MINSERT commands of -batch pairs and
// pipelined -window commands deep, so ingest pays one RESP round-trip
// per thousands of edges instead of one per edge:
//
//	cgcli -addr 127.0.0.1:6380 -batch 512 -window 32 bulkload edges.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"cuckoograph/internal/resp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "server address")
	batch := flag.Int("batch", 512, "bulkload: edges per G.MINSERT command")
	window := flag.Int("window", 32, "bulkload: pipelined commands in flight")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cgcli [-addr host:port] <command> [args...]")
		fmt.Fprintln(os.Stderr, "       cgcli [-addr host:port] [-batch N] [-window N] bulkload <file|->")
		os.Exit(2)
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgcli:", err)
		os.Exit(1)
	}
	defer conn.Close()

	if flag.Arg(0) == "bulkload" {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "cgcli: bulkload expects one file argument")
			os.Exit(2)
		}
		if err := bulkload(conn, flag.Arg(1), *batch, *window); err != nil {
			fmt.Fprintln(os.Stderr, "cgcli: bulkload:", err)
			os.Exit(1)
		}
		return
	}

	w := bufio.NewWriter(conn)
	if err := resp.Write(w, resp.Command(flag.Args()...)); err != nil {
		fmt.Fprintln(os.Stderr, "cgcli:", err)
		os.Exit(1)
	}
	w.Flush()
	reply, err := resp.Read(bufio.NewReader(conn))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgcli:", err)
		os.Exit(1)
	}
	fmt.Println(render(reply))
}

// bulkload streams the edge-list file through pipelined G.MINSERT
// batches and prints an ingest summary.
func bulkload(conn net.Conn, path string, batch, window int) error {
	if batch < 1 {
		batch = 1
	}
	if window < 1 {
		window = 1
	}
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var sent, added, inFlight int64
	start := time.Now()

	// drain reads one pending reply, accumulating the server's count of
	// newly inserted edges.
	drain := func() error {
		reply, err := resp.Read(r)
		if err != nil {
			return err
		}
		if reply.Type == '-' {
			return fmt.Errorf("server: %s", reply.Str)
		}
		added += reply.Int
		inFlight--
		return nil
	}
	args := make([]string, 0, 1+2*batch)
	args = append(args, "g.minsert")
	flush := func() error {
		if len(args) == 1 {
			return nil
		}
		if err := resp.Write(w, resp.Command(args...)); err != nil {
			return err
		}
		sent += int64(len(args)-1) / 2
		args = args[:1]
		inFlight++
		if inFlight < int64(window) {
			return nil
		}
		// The window is full: push the backlog to the server and take
		// one reply back before pipelining further.
		if err := w.Flush(); err != nil {
			return err
		}
		return drain()
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return fmt.Errorf("%s:%d: want \"u v\", got %q", path, line, text)
		}
		for _, f := range fields[:2] {
			if _, err := strconv.ParseUint(f, 10, 64); err != nil {
				return fmt.Errorf("%s:%d: bad node id %q", path, line, f)
			}
		}
		args = append(args, fields[0], fields[1])
		if len(args) == cap(args) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for inFlight > 0 {
		if err := drain(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds() / 1e6
	fmt.Printf("bulkload: %d edges sent, %d new, in %v (%.3f Mops)\n",
		sent, added, elapsed.Round(time.Millisecond), rate)
	return nil
}

func render(v resp.Value) string {
	switch v.Type {
	case '+':
		return v.Str
	case '-':
		return "(error) " + v.Str
	case ':':
		return fmt.Sprintf("(integer) %d", v.Int)
	case '$':
		if v.Null {
			return "(nil)"
		}
		return fmt.Sprintf("%q", v.Str)
	case '*':
		parts := make([]string, len(v.Array))
		for i, item := range v.Array {
			parts[i] = fmt.Sprintf("%d) %s", i+1, render(item))
		}
		if len(parts) == 0 {
			return "(empty array)"
		}
		return strings.Join(parts, "\n")
	}
	return "(unknown)"
}
