// Command cgserver starts the Redis-like RESP server with the
// CuckooGraph module loaded (the paper's §V-F deployment). It speaks
// RESP2 on the given address; use cgcli or any Redis client:
//
//	cgserver -addr 127.0.0.1:6380
//	cgcli -addr 127.0.0.1:6380 g.insert 1 2
//	cgcli -addr 127.0.0.1:6380 g.getneighbors 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cuckoograph/internal/redislike"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	flag.Parse()

	srv := redislike.NewServer()
	_, mod := redislike.NewGraphModule()
	if err := srv.LoadModule(mod); err != nil {
		fmt.Fprintln(os.Stderr, "cgserver:", err)
		os.Exit(1)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgserver:", err)
		os.Exit(1)
	}
	fmt.Printf("cgserver listening on %s (commands: PING SET GET DEL g.insert g.del g.query g.getneighbors)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
