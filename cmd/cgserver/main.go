// Command cgserver starts the Redis-like RESP server with the
// CuckooGraph module loaded (the paper's §V-F deployment). It speaks
// RESP2 on the given address; use cgcli or any Redis client:
//
//	cgserver -addr 127.0.0.1:6380
//	cgcli -addr 127.0.0.1:6380 g.insert 1 2
//	cgcli -addr 127.0.0.1:6380 g.getneighbors 1
//
// With -wal-dir the graph is durable: on startup the newest checkpoint
// snapshot is loaded and the write-ahead-log tail replayed, and every
// acknowledged mutation is group-committed to the log. -checkpoint-every
// takes periodic snapshots that truncate the replayed log prefix:
//
//	cgserver -addr 127.0.0.1:6380 -wal-dir /var/lib/cgserver \
//	         -wal-sync always -checkpoint-every 5m
//
// g.snapshot freezes a consistent epoch-stamped view without blocking
// writers; graph.bfs and graph.pagerank run on frozen views and accept
// an epoch tag for time-travel reads. -snapshot-ring bounds how many
// epochs the server retains:
//
//	cgcli g.snapshot            → 7
//	cgcli graph.bfs 1 7         # BFS over the graph as of epoch 7
//	cgcli g.release 7
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cuckoograph/internal/redislike"
	"cuckoograph/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	walDir := flag.String("wal-dir", "", "durability directory (write-ahead log + checkpoints); empty disables")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always (group commit), nosync (page cache), async (background writes)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval, e.g. 5m (0 disables; requires -wal-dir)")
	snapshotRing := flag.Int("snapshot-ring", redislike.DefaultSnapshotRing,
		"how many g.snapshot epochs are retained for time-travel reads; the oldest is released past the bound")
	flag.Parse()

	srv := redislike.NewServer()
	gm, mod := redislike.NewGraphModule()
	if err := srv.LoadModule(mod); err != nil {
		fmt.Fprintln(os.Stderr, "cgserver:", err)
		os.Exit(1)
	}
	gm.SetSnapshotRing(*snapshotRing)

	if *walDir != "" {
		sync, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgserver: -wal-sync:", err)
			os.Exit(2)
		}
		stats, err := gm.RecoverWAL(*walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgserver: recover:", err)
			os.Exit(1)
		}
		fmt.Printf("cgserver recovered %d edges from %s (snapshot=%q, %d log records in %d segments, %d torn bytes dropped) in %v\n",
			gm.Graph().NumEdges(), *walDir, stats.Snapshot,
			stats.Replay.Records, stats.Replay.Segments, stats.Replay.TornBytes,
			stats.Elapsed.Round(time.Millisecond))
		if err := gm.EnableWAL(*walDir, wal.Options{Sync: sync}); err != nil {
			fmt.Fprintln(os.Stderr, "cgserver: wal:", err)
			os.Exit(1)
		}
	} else if *checkpointEvery > 0 {
		fmt.Fprintln(os.Stderr, "cgserver: -checkpoint-every requires -wal-dir")
		os.Exit(2)
	}

	stopCheckpoints := make(chan struct{})
	if *walDir != "" && *checkpointEvery > 0 {
		go func() {
			t := time.NewTicker(*checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-stopCheckpoints:
					return
				case <-t.C:
					if path, err := gm.Checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "cgserver: checkpoint:", err)
					} else {
						fmt.Println("cgserver checkpoint:", path)
					}
				}
			}
		}()
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgserver:", err)
		os.Exit(1)
	}
	fmt.Printf("cgserver listening on %s (commands: PING SET GET DEL g.insert g.del g.minsert g.mdel g.query g.getneighbors g.degree g.nodes g.snapshot g.snapshots g.release graph.bfs graph.pagerank wal_enable wal_replay checkpoint)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopCheckpoints)
	srv.Close()
	if err := gm.CloseWAL(); err != nil {
		fmt.Fprintln(os.Stderr, "cgserver: wal close:", err)
		os.Exit(1)
	}
}
