// Command cgserver starts the Redis-like RESP server with the
// CuckooGraph module loaded (the paper's §V-F deployment). It speaks
// RESP2 on the given address; use cgcli or any Redis client:
//
//	cgserver -addr 127.0.0.1:6380
//	cgcli -addr 127.0.0.1:6380 g.insert 1 2
//	cgcli -addr 127.0.0.1:6380 g.getneighbors 1
//
// With -wal-dir the graph is durable: on startup the newest checkpoint
// snapshot is loaded and the write-ahead-log tail replayed, and every
// acknowledged mutation is group-committed to the log. -checkpoint-every
// takes periodic snapshots that truncate the replayed log prefix:
//
//	cgserver -addr 127.0.0.1:6380 -wal-dir /var/lib/cgserver \
//	         -wal-sync always -checkpoint-every 5m
//
// If the log fails under a write (disk full, I/O error), the failing
// write is errored and -wal-on-error selects what happens next: the
// default readonly keeps the process serving reads while writes answer
// -MISCONF until the operator frees space and runs wal_resume; panic
// crashes so a supervisor can restart against healthy storage. See
// README.md § Failure modes & degraded operation for the runbook.
//
// For production serving, -metrics-addr exposes GET /metrics
// (Prometheus text format: per-command counters and latency histograms
// plus engine, snapshot and WAL state), GET /healthz (liveness) and
// GET /readyz (readiness: 503 while loading, degraded, or a replica is
// still bootstrapping), and -pprof additionally mounts /debug/pprof/
// on the same listener; -max-conns, -read-timeout and -write-timeout
// bound misbehaving clients; and SIGTERM/SIGINT trigger a graceful
// shutdown that drains in-flight commands (bounded by
// -shutdown-timeout), releases retained snapshot views and closes the
// WAL cleanly:
//
//	cgserver -addr 127.0.0.1:6380 -metrics-addr 127.0.0.1:9180 \
//	         -max-conns 1024 -read-timeout 30s -write-timeout 30s \
//	         -log-level info -log-format json
//
// g.snapshot freezes a consistent epoch-stamped view without blocking
// writers; graph.bfs and graph.pagerank run on frozen views and accept
// an epoch tag for time-travel reads. -snapshot-ring bounds how many
// epochs the server retains:
//
//	cgcli g.snapshot            → 7
//	cgcli graph.bfs 1 7         # BFS over the graph as of epoch 7
//	cgcli g.release 7
//
// With -replica-of the server is a read replica: it bootstraps from the
// leader's checkpoint snapshot, follows its write-ahead log over the
// g.replicate stream, serves reads, and answers writes with -READONLY.
// The replica keeps no log of its own, so -wal-dir does not combine
// with -replica-of; on a lost link it reconnects and resumes from its
// last applied position. See internal/redislike/repl.go for the wire
// protocol and README.md § Replication for the consistency contract:
//
//	cgserver -addr 127.0.0.1:6381 -replica-of 127.0.0.1:6380
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cuckoograph/internal/redislike"
	"cuckoograph/internal/wal"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	walDir := flag.String("wal-dir", "", "durability directory (write-ahead log + checkpoints); empty disables")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always (group commit), nosync (page cache), async (background writes)")
	walOnError := flag.String("wal-on-error", "readonly", "what a WAL storage failure does: readonly (degrade to -MISCONF writes until wal_resume) or panic (crash for a supervisor restart)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval, e.g. 5m (0 disables; requires -wal-dir)")
	replicaOf := flag.String("replica-of", "", "leader host:port to replicate from; the server becomes a read-only follower (conflicts with -wal-dir)")
	snapshotRing := flag.Int("snapshot-ring", redislike.DefaultSnapshotRing,
		"how many g.snapshot epochs are retained for time-travel reads; the oldest is released past the bound")
	metricsAddr := flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics and /healthz; empty disables")
	pprofOn := flag.Bool("pprof", false, "also mount /debug/pprof/ profiling endpoints on the metrics listener (requires -metrics-addr)")
	maxConns := flag.Int("max-conns", 0, "max concurrently served connections; further dials are answered with -MAXCLIENTS (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 0, "per-command read deadline once a command has started arriving (0 disables; idle connections are never timed out)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-reply write deadline; a client that stops reading is disconnected (0 disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight commands before force-closing connections")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgserver:", err)
		return 2
	}

	srv := redislike.NewServerWith(redislike.Config{
		MaxConns:     *maxConns,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		Logger:       logger,
	})
	gm, mod := redislike.NewGraphModule()
	if err := srv.LoadModule(mod); err != nil {
		logger.Error("module load failed", "err", err)
		return 1
	}
	gm.SetSnapshotRing(*snapshotRing)

	if *replicaOf != "" {
		// A replica's durability is the leader's log; local logging or
		// checkpointing would fork the history the stream replays onto.
		if *walDir != "" {
			logger.Error("-replica-of conflicts with -wal-dir (replicas follow the leader's log; they keep none of their own)")
			return 2
		}
		if *checkpointEvery > 0 {
			logger.Error("-replica-of conflicts with -checkpoint-every (checkpoints belong to the leader)")
			return 2
		}
		repl := redislike.StartReplica(gm, srv, *replicaOf)
		logger.Info("replica mode", "leader", repl.Leader())
	}

	if *walDir != "" {
		sync, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			logger.Error("bad -wal-sync", "err", err)
			return 2
		}
		policy, err := redislike.ParseWALErrorPolicy(*walOnError)
		if err != nil {
			logger.Error("bad -wal-on-error", "err", err)
			return 2
		}
		gm.SetWALErrorPolicy(policy)
		stats, err := gm.RecoverWAL(*walDir)
		if err != nil {
			logger.Error("wal recovery failed", "dir", *walDir, "err", err)
			return 1
		}
		logger.Info("recovered", "dir", *walDir,
			"edges", gm.Graph().NumEdges(), "snapshot", stats.Snapshot,
			"records", stats.Replay.Records, "segments", stats.Replay.Segments,
			"torn_bytes", stats.Replay.TornBytes,
			"elapsed", stats.Elapsed.Round(time.Millisecond).String())
		if err := gm.EnableWAL(*walDir, wal.Options{Sync: sync}); err != nil {
			logger.Error("wal enable failed", "dir", *walDir, "err", err)
			return 1
		}
	} else if *checkpointEvery > 0 {
		logger.Error("-checkpoint-every requires -wal-dir")
		return 2
	}

	// Shutdown begins on the first SIGINT/SIGTERM; a second signal
	// force-exits through the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *walDir != "" && *checkpointEvery > 0 {
		go func() {
			t := time.NewTicker(*checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, err := gm.Checkpoint(); err != nil {
						logger.Error("periodic checkpoint failed", "err", err)
					}
				}
			}
		}()
	}

	if *pprofOn && *metricsAddr == "" {
		logger.Error("-pprof requires -metrics-addr (profiles are served on the metrics listener)")
		return 1
	}
	if *metricsAddr != "" {
		if *pprofOn {
			srv.EnablePprof()
		}
		bound, err := srv.ListenMetrics(*metricsAddr)
		if err != nil {
			logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err)
			return 1
		}
		logger.Info("metrics listening", "addr", bound, "pprof", *pprofOn)
	}

	if _, err := srv.Listen(*addr); err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}

	<-ctx.Done()
	stop()
	logger.Info("signal received; shutting down", "timeout", shutdownTimeout.String())
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("shutdown failed", "err", err)
		return 1
	}
	return 0
}

// buildLogger maps the -log-level/-log-format flags onto a slog logger
// writing to stderr.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level: unknown level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format: unknown format %q (want text|json)", format)
}
