package cuckoograph

import "cuckoograph/internal/vend"

// FilteredGraph pairs a CuckooGraph with a VEND-style vertex-encoding
// filter (reference [46] of the paper; §II-B marks this integration as
// future work). Most node pairs in a real graph are not connected, so
// the filter answers the bulk of negative HasEdge queries from a
// compact per-vertex summary without probing the graph at all; positive
// and "maybe" queries fall through to CuckooGraph.
type FilteredGraph struct {
	g *Graph
	f *vend.Filter

	deletions uint64 // since the last filter rebuild
}

// NewFiltered returns an empty VEND-filtered CuckooGraph.
func NewFiltered() *FilteredGraph { return NewFilteredWithOptions(Options{}) }

// NewFilteredWithOptions returns a filtered graph with explicit tuning.
func NewFilteredWithOptions(o Options) *FilteredGraph {
	return &FilteredGraph{g: NewWithOptions(o), f: vend.New()}
}

// InsertEdge adds ⟨u,v⟩, reporting whether it is new.
func (fg *FilteredGraph) InsertEdge(u, v NodeID) bool {
	if !fg.g.InsertEdge(u, v) {
		return false
	}
	fg.f.AddEdge(u, v)
	return true
}

// HasEdge reports whether ⟨u,v⟩ is stored; certain-negative answers
// come straight from the filter.
func (fg *FilteredGraph) HasEdge(u, v NodeID) bool {
	if !fg.f.MaybeHasEdge(u, v) {
		return false
	}
	return fg.g.HasEdge(u, v)
}

// DeleteEdge removes ⟨u,v⟩. The filter degrades conservatively on
// deletions and is rebuilt once they exceed half the live edges.
func (fg *FilteredGraph) DeleteEdge(u, v NodeID) bool {
	if !fg.g.DeleteEdge(u, v) {
		return false
	}
	fg.f.RemoveEdge(u, v)
	fg.deletions++
	if fg.deletions > fg.g.NumEdges()/2+16 {
		fg.RebuildFilter()
	}
	return true
}

// RebuildFilter reconstructs the filter exactly from the graph,
// clearing deletion slack.
func (fg *FilteredGraph) RebuildFilter() {
	fg.deletions = 0
	fg.f.Rebuild(func(fn func(u, v uint64)) {
		fg.g.ForEachNode(func(u uint64) bool {
			fg.g.ForEachSuccessor(u, func(v uint64) bool {
				fn(u, v)
				return true
			})
			return true
		})
	})
}

// ForEachSuccessor calls fn for each successor of u.
func (fg *FilteredGraph) ForEachSuccessor(u NodeID, fn func(v NodeID) bool) {
	fg.g.ForEachSuccessor(u, fn)
}

// Successors returns u's successors as a fresh slice.
func (fg *FilteredGraph) Successors(u NodeID) []NodeID { return fg.g.Successors(u) }

// NumEdges returns the number of distinct stored edges.
func (fg *FilteredGraph) NumEdges() uint64 { return fg.g.NumEdges() }

// NumNodes returns the number of distinct source nodes.
func (fg *FilteredGraph) NumNodes() uint64 { return fg.g.NumNodes() }

// MemoryUsage returns graph plus filter structural bytes.
func (fg *FilteredGraph) MemoryUsage() uint64 {
	return fg.g.MemoryUsage() + fg.f.MemoryBytes()
}
