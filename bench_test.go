// Benchmarks mirroring every table and figure of the paper's evaluation
// (§V). Each BenchmarkFigN corresponds to one figure; sub-benchmarks
// name the parameter value, scheme or dataset exactly as the paper's
// plots do. Run with:
//
//	go test -bench=. -benchmem
//
// The scale is kept small so the full suite runs in minutes; use
// cmd/cgbench for larger, publication-style runs.
package cuckoograph_test

import (
	"fmt"
	"testing"

	"cuckoograph/internal/bench"
	"cuckoograph/internal/core"
	"cuckoograph/internal/dataset"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/neolike"
	"cuckoograph/internal/redislike"
	"cuckoograph/internal/resp"
	"cuckoograph/internal/stores"
)

const benchScale = 512 // dataset scale divisor for in-test benches

func benchStream(name string) []dataset.Edge {
	spec, ok := dataset.ByName(name)
	if !ok {
		panic("unknown dataset " + name)
	}
	return dataset.Generate(spec, benchScale, 42)
}

// insertAll loads a stream; the helper every figure bench shares.
func insertAll(s graphstore.Store, st []dataset.Edge) {
	for _, e := range st {
		s.InsertEdge(e.U, e.V)
	}
}

// BenchmarkFig2ParamD sweeps cells-per-bucket d (Figure 2).
func BenchmarkFig2ParamD(b *testing.B) {
	st := benchStream("CAIDA")
	for _, d := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("d=%d/insert", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insertAll(stores.NewCuckooGraphWith(core.Config{D: d}), st)
			}
			b.ReportMetric(float64(len(st)), "edges/op")
		})
	}
}

// BenchmarkFig3ParamG sweeps the expansion threshold G (Figure 3).
func BenchmarkFig3ParamG(b *testing.B) {
	st := benchStream("CAIDA")
	for _, g := range []float64{0.8, 0.85, 0.9, 0.95} {
		b.Run(fmt.Sprintf("G=%.2f/insert", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insertAll(stores.NewCuckooGraphWith(core.Config{G: g}), st)
			}
			b.ReportMetric(float64(len(st)), "edges/op")
		})
	}
}

// BenchmarkFig4ParamT sweeps the kick budget T (Figure 4).
func BenchmarkFig4ParamT(b *testing.B) {
	st := benchStream("CAIDA")
	for _, t := range []int{50, 150, 250, 350} {
		b.Run(fmt.Sprintf("T=%d/insert", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insertAll(stores.NewCuckooGraphWith(core.Config{MaxKicks: t}), st)
			}
			b.ReportMetric(float64(len(st)), "edges/op")
		})
	}
}

// BenchmarkFig5Ablation compares DL on/off (Figure 5).
func BenchmarkFig5Ablation(b *testing.B) {
	st := benchStream("CAIDA")
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"DL", false}, {"DL-free", true}} {
		b.Run(mode.name+"/insert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insertAll(stores.NewCuckooGraphWith(core.Config{DisableDenylist: mode.disable}), st)
			}
		})
		b.Run(mode.name+"/query", func(b *testing.B) {
			s := stores.NewCuckooGraphWith(core.Config{DisableDenylist: mode.disable})
			insertAll(s, st)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := st[i%len(st)]
				s.HasEdge(e.U, e.V)
			}
		})
	}
}

// perSchemeDatasets is the dataset subset used by the per-figure scheme
// benches (the full seven run via cmd/cgbench; CAIDA and NotreDame keep
// `go test -bench` fast while covering weighted and unweighted shapes).
var perSchemeDatasets = []string{"CAIDA", "NotreDame"}

// BenchmarkFig6Insert is Figure 6: insertion throughput per scheme.
func BenchmarkFig6Insert(b *testing.B) {
	for _, ds := range perSchemeDatasets {
		st := benchStream(ds)
		for _, f := range stores.Evaluated() {
			b.Run(ds+"/"+f.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					insertAll(f.New(), st)
				}
				b.ReportMetric(float64(len(st)), "edges/op")
			})
		}
	}
}

// BenchmarkFig7Query is Figure 7: edge-query throughput per scheme.
func BenchmarkFig7Query(b *testing.B) {
	for _, ds := range perSchemeDatasets {
		st := benchStream(ds)
		for _, f := range stores.Evaluated() {
			s := f.New()
			insertAll(s, st)
			b.Run(ds+"/"+f.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := st[i%len(st)]
					s.HasEdge(e.U, e.V)
				}
			})
		}
	}
}

// BenchmarkFig8Delete is Figure 8: deletion throughput per scheme.
func BenchmarkFig8Delete(b *testing.B) {
	for _, ds := range perSchemeDatasets {
		st := benchStream(ds)
		dedup := dataset.Dedup(st)
		for _, f := range stores.Evaluated() {
			b.Run(ds+"/"+f.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := f.New()
					insertAll(s, st)
					b.StartTimer()
					for _, e := range dedup {
						s.DeleteEdge(e.U, e.V)
					}
				}
				b.ReportMetric(float64(len(dedup)), "edges/op")
			})
		}
	}
}

// BenchmarkFig9Memory is Figure 9: it reports final structural bytes per
// scheme as a benchmark metric (bytes/op) over deduped inserts.
func BenchmarkFig9Memory(b *testing.B) {
	for _, ds := range perSchemeDatasets {
		dedup := dataset.Dedup(benchStream(ds))
		for _, f := range stores.Evaluated() {
			b.Run(ds+"/"+f.Name, func(b *testing.B) {
				var mem uint64
				for i := 0; i < b.N; i++ {
					s := f.New()
					for _, e := range dedup {
						s.InsertEdge(e.U, e.V)
					}
					mem = s.MemoryUsage()
				}
				b.ReportMetric(float64(mem), "structBytes")
			})
		}
	}
}

// benchAnalytics runs one §V-E task per scheme on NotreDame.
func benchAnalytics(b *testing.B, task bench.AnalyticsTask) {
	st := benchStream("NotreDame")
	for _, f := range stores.Evaluated() {
		b.Run("NotreDame/"+f.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.RunAnalytics(f, st, task, 128)
			}
		})
	}
}

// BenchmarkFig10BFS .. BenchmarkFig16LCC are Figures 10-16.
func BenchmarkFig10BFS(b *testing.B)  { benchAnalytics(b, bench.TaskBFS) }
func BenchmarkFig11SSSP(b *testing.B) { benchAnalytics(b, bench.TaskSSSP) }
func BenchmarkFig12TC(b *testing.B)   { benchAnalytics(b, bench.TaskTC) }
func BenchmarkFig13CC(b *testing.B)   { benchAnalytics(b, bench.TaskCC) }
func BenchmarkFig14PR(b *testing.B)   { benchAnalytics(b, bench.TaskPR) }
func BenchmarkFig15BC(b *testing.B)   { benchAnalytics(b, bench.TaskBC) }
func BenchmarkFig16LCC(b *testing.B)  { benchAnalytics(b, bench.TaskLCC) }

// BenchmarkFig17Redis measures CuckooGraph-module command dispatch on
// the redislike server (Figure 17; in-process dispatch, so the socket
// cost the paper attributes to Redis is excluded here — cmd/cgbench
// fig17 measures over real TCP).
func BenchmarkFig17Redis(b *testing.B) {
	srv := redislike.NewServer()
	_, mod := redislike.NewGraphModule()
	if err := srv.LoadModule(mod); err != nil {
		b.Fatal(err)
	}
	st := benchStream("CAIDA")
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := st[i%len(st)]
			srv.Dispatch(resp.Command("g.insert",
				fmt.Sprintf("%d", e.U), fmt.Sprintf("%d", e.V)))
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := st[i%len(st)]
			srv.Dispatch(resp.Command("g.query",
				fmt.Sprintf("%d", e.U), fmt.Sprintf("%d", e.V)))
		}
	})
	b.Run("delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := st[i%len(st)]
			srv.Dispatch(resp.Command("g.del",
				fmt.Sprintf("%d", e.U), fmt.Sprintf("%d", e.V)))
		}
	})
}

// BenchmarkFig18Neo is Figure 18: the Neo4j-like engine with and without
// the CuckooGraph edge index.
func BenchmarkFig18Neo(b *testing.B) {
	st := benchStream("CAIDA")
	dedup := dataset.Dedup(st)
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"Ours+Neo4j", true}, {"Neo4j", false}} {
		b.Run(mode.name+"/insert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := neolike.New()
				if mode.indexed {
					db = neolike.WithIndex()
				}
				for _, e := range st {
					db.CreateRelationship(e.U, e.V, "E")
				}
			}
		})
		b.Run(mode.name+"/query", func(b *testing.B) {
			db := neolike.New()
			if mode.indexed {
				db = neolike.WithIndex()
			}
			for _, e := range st {
				db.CreateRelationship(e.U, e.V, "E")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := dedup[i%len(dedup)]
				db.Relationships(e.U, e.V)
			}
		})
	}
}

// BenchmarkTable3Amortized measures raw CuckooGraph single-edge insert
// cost (Table III's O(1) claim) against the map-based adjacency list.
func BenchmarkTable3Amortized(b *testing.B) {
	b.Run("CuckooGraph/insert", func(b *testing.B) {
		g := core.NewGraph(core.Config{})
		for i := 0; i < b.N; i++ {
			g.InsertEdge(uint64(i)%65536, uint64(i))
		}
	})
	b.Run("CuckooGraph/query", func(b *testing.B) {
		g := core.NewGraph(core.Config{})
		for i := 0; i < 1<<16; i++ {
			g.InsertEdge(uint64(i)%256, uint64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.HasEdge(uint64(i)%256, uint64(i)%(1<<16))
		}
	})
}
