package cuckoograph

import (
	"runtime"

	"cuckoograph/internal/core"
	"cuckoograph/internal/graphstore"
	"cuckoograph/internal/sharded"
)

// NodeID identifies a graph node (an 8-byte identifier, as in the paper).
type NodeID = graphstore.NodeID

// Options tunes a CuckooGraph instance. The zero value is the paper's
// recommended configuration (d=8, R=3, G=0.9, Λ=0.5, T=250).
type Options struct {
	// CellsPerBucket is d, the number of cells per bucket (§V-B tunes
	// d ∈ {4,8,16,32}; the paper settles on 8).
	CellsPerBucket int
	// LargeSlots is R, the number of large slots per cell. Part 2 of a
	// cell holds 2R inline neighbours before transforming into an S-CHT
	// chain of at most R tables.
	LargeSlots int
	// MaxKicks is T, the kick-loop budget before an insertion fails into
	// a denylist (§V-B tunes T ∈ {50,150,250,350}).
	MaxKicks int
	// ExpandAt is G, the loading-rate threshold for expansion (§V-B
	// tunes G ∈ {0.8,0.85,0.9,0.95}).
	ExpandAt float64
	// ContractAt is Λ, the overall loading-rate threshold for
	// contraction; the analysis of §IV-B assumes Λ ≤ ⅔·G.
	ContractAt float64
	// InitialLength and SCHTLength set the starting lengths of the
	// L-CHT and of each 1st S-CHT (n). CuckooGraph needs no prior
	// knowledge of the graph: both default to tiny tables that grow on
	// demand.
	InitialLength int
	SCHTLength    int
	// DenylistDisabled turns off the DENYLIST optimisation, forcing an
	// expansion on every insertion failure (the §V-C ablation baseline).
	DenylistDisabled bool
	// Seed fixes the hash seeds and eviction choices for reproducibility.
	Seed uint64
	// ShardCount is P, the number of source-node partitions used by the
	// concurrency-safe SafeGraph. It is rounded up to a power of two;
	// zero defaults to runtime.GOMAXPROCS(0). Single-writer Graph,
	// Weighted and Multi ignore it.
	ShardCount int
	// Parallelism is the worker count for the parallel analytics built
	// on a SafeGraph (BFS, PageRank). Zero defaults to
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

func (o Options) coreConfig() core.Config {
	return core.Config{
		D:               o.CellsPerBucket,
		R:               o.LargeSlots,
		MaxKicks:        o.MaxKicks,
		G:               o.ExpandAt,
		Lambda:          o.ContractAt,
		LCHTBase:        o.InitialLength,
		SCHTBase:        o.SCHTLength,
		DisableDenylist: o.DenylistDisabled,
		Seed:            o.Seed,
	}
}

func (o Options) shardedConfig() sharded.Config {
	return sharded.Config{Core: o.coreConfig(), Shards: o.ShardCount}
}

// Workers resolves Options.Parallelism: zero or negative means
// runtime.GOMAXPROCS(0).
func (o Options) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Graph is the basic version of CuckooGraph: a directed dynamic graph of
// distinct edges. It is not safe for concurrent mutation; wrap with a
// lock for shared use.
type Graph struct {
	g *core.Graph
}

// New returns an empty Graph with the paper's default parameters.
func New() *Graph { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty Graph with the given tuning.
func NewWithOptions(o Options) *Graph {
	return &Graph{g: core.NewGraph(o.coreConfig())}
}

// InsertEdge adds the directed edge ⟨u,v⟩, reporting whether it is new.
func (g *Graph) InsertEdge(u, v NodeID) bool { return g.g.InsertEdge(u, v) }

// HasEdge reports whether ⟨u,v⟩ is stored.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.g.HasEdge(u, v) }

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (g *Graph) DeleteEdge(u, v NodeID) bool { return g.g.DeleteEdge(u, v) }

// ForEachSuccessor calls fn for each successor of u until fn returns false.
func (g *Graph) ForEachSuccessor(u NodeID, fn func(v NodeID) bool) {
	g.g.ForEachSuccessor(u, fn)
}

// Successors returns u's successors as a fresh slice.
func (g *Graph) Successors(u NodeID) []NodeID { return graphstore.Successors(g.g, u) }

// Degree returns u's out-degree.
func (g *Graph) Degree(u NodeID) int { return graphstore.Degree(g.g, u) }

// ForEachNode calls fn for every node with at least one out-edge.
func (g *Graph) ForEachNode(fn func(u NodeID) bool) { g.g.ForEachNode(fn) }

// NumEdges returns the number of distinct stored edges.
func (g *Graph) NumEdges() uint64 { return g.g.NumEdges() }

// NumNodes returns the number of distinct source nodes.
func (g *Graph) NumNodes() uint64 { return g.g.NumNodes() }

// MemoryUsage returns the structural bytes held by the graph.
func (g *Graph) MemoryUsage() uint64 { return g.g.MemoryUsage() }

// Stats exposes structural counters (tables, cells, loading rates,
// denylist lengths, kick counts) for instrumentation.
func (g *Graph) Stats() core.Stats { return g.g.Stats() }

// Weighted is the extended version of CuckooGraph for streaming
// scenarios with duplicate edges (§III-B): every distinct ⟨u,v⟩ carries
// a weight counting its multiplicity.
type Weighted struct {
	w *core.Weighted
}

// NewWeighted returns an empty weighted graph with default parameters.
func NewWeighted() *Weighted { return NewWeightedWithOptions(Options{}) }

// NewWeightedWithOptions returns an empty weighted graph with the given
// tuning.
func NewWeightedWithOptions(o Options) *Weighted {
	return &Weighted{w: core.NewWeighted(o.coreConfig())}
}

// InsertEdge adds one occurrence of ⟨u,v⟩ (weight +1), reporting whether
// the edge is new.
func (w *Weighted) InsertEdge(u, v NodeID) bool { return w.w.InsertEdge(u, v) }

// Add adds delta occurrences of ⟨u,v⟩, reporting whether the edge is new.
func (w *Weighted) Add(u, v NodeID, delta uint64) bool { return w.w.Add(u, v, delta) }

// HasEdge reports whether ⟨u,v⟩ has weight ≥ 1.
func (w *Weighted) HasEdge(u, v NodeID) bool { return w.w.HasEdge(u, v) }

// Weight returns the weight of ⟨u,v⟩ and whether the edge exists.
func (w *Weighted) Weight(u, v NodeID) (uint64, bool) { return w.w.Weight(u, v) }

// DeleteEdge removes one occurrence; the edge disappears at weight zero.
func (w *Weighted) DeleteEdge(u, v NodeID) bool { return w.w.DeleteEdge(u, v) }

// DeleteAll removes ⟨u,v⟩ regardless of weight.
func (w *Weighted) DeleteAll(u, v NodeID) bool { return w.w.DeleteAll(u, v) }

// ForEachSuccessor calls fn with each successor of u and its weight.
func (w *Weighted) ForEachSuccessor(u NodeID, fn func(v NodeID, weight uint64) bool) {
	w.w.ForEachSuccessor(u, fn)
}

// ForEachNode calls fn for every node with at least one out-edge.
func (w *Weighted) ForEachNode(fn func(u NodeID) bool) { w.w.ForEachNode(fn) }

// NumEdges returns the number of distinct edges.
func (w *Weighted) NumEdges() uint64 { return w.w.NumEdges() }

// NumNodes returns the number of distinct source nodes.
func (w *Weighted) NumNodes() uint64 { return w.w.NumNodes() }

// MemoryUsage returns the structural bytes held by the graph.
func (w *Weighted) MemoryUsage() uint64 { return w.w.MemoryUsage() }

// Stats exposes structural counters for instrumentation.
func (w *Weighted) Stats() core.Stats { return w.w.Stats() }

// Multi is the multi-edge variant used by the Neo4j integration (§V-G):
// several distinct edges, each with its own id, may connect the same
// node pair; Edges returns an O(1) iterator over them.
type Multi struct {
	m *core.Multi
}

// NewMulti returns an empty multi-edge graph with default parameters.
func NewMulti() *Multi { return NewMultiWithOptions(Options{}) }

// NewMultiWithOptions returns an empty multi-edge graph with the given
// tuning.
func NewMultiWithOptions(o Options) *Multi {
	return &Multi{m: core.NewMulti(o.coreConfig())}
}

// InsertEdge records edge id from u to v.
func (m *Multi) InsertEdge(u, v NodeID, id uint64) { m.m.InsertEdge(u, v, id) }

// HasEdge reports whether any edge connects u to v.
func (m *Multi) HasEdge(u, v NodeID) bool { return m.m.HasEdge(u, v) }

// Edges returns an iterator over the ids of edges from u to v.
func (m *Multi) Edges(u, v NodeID) *core.EdgeIterator { return m.m.Edges(u, v) }

// DeleteEdge removes the specific edge id between u and v.
func (m *Multi) DeleteEdge(u, v NodeID, id uint64) bool { return m.m.DeleteEdge(u, v, id) }

// ForEachSuccessor calls fn for each distinct successor with its
// parallel-edge count.
func (m *Multi) ForEachSuccessor(u NodeID, fn func(v NodeID, parallel int) bool) {
	m.m.ForEachSuccessor(u, fn)
}

// NumEdges returns the total edge count including parallel edges.
func (m *Multi) NumEdges() uint64 { return m.m.NumEdges() }

// NumPairs returns the number of distinct connected node pairs.
func (m *Multi) NumPairs() uint64 { return m.m.NumPairs() }

// MemoryUsage returns the structural bytes held by the graph.
func (m *Multi) MemoryUsage() uint64 { return m.m.MemoryUsage() }
