// Ablation benchmarks for the design choices DESIGN.md calls out beyond
// the paper's own parameter study: the number of large slots R (inline
// capacity vs chain pressure), the initial S-CHT length n (space vs
// transformation frequency), the weighted variant's overhead, and the
// snapshot codec.
package cuckoograph_test

import (
	"bytes"
	"fmt"
	"testing"

	"cuckoograph"
	"cuckoograph/internal/core"
	"cuckoograph/internal/stores"
)

// BenchmarkAblationR sweeps R: small R sends nodes to S-CHT chains
// earlier (more pointers), large R wastes inline slots on low-degree
// nodes (more memory).
func BenchmarkAblationR(b *testing.B) {
	st := benchStream("NotreDame")
	for _, r := range []int{2, 3, 4, 6} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			var mem uint64
			for i := 0; i < b.N; i++ {
				s := stores.NewCuckooGraphWith(core.Config{R: r})
				insertAll(s, st)
				mem = s.MemoryUsage()
			}
			b.ReportMetric(float64(mem), "structBytes")
		})
	}
}

// BenchmarkAblationSCHTBase sweeps n, the 1st S-CHT length.
func BenchmarkAblationSCHTBase(b *testing.B) {
	st := benchStream("StackOverflow")
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var mem uint64
			for i := 0; i < b.N; i++ {
				s := stores.NewCuckooGraphWith(core.Config{SCHTBase: n})
				insertAll(s, st)
				mem = s.MemoryUsage()
			}
			b.ReportMetric(float64(mem), "structBytes")
		})
	}
}

// BenchmarkAblationWeighted compares the basic version deduplicating a
// stream against the weighted version counting it (§III-B's trade).
func BenchmarkAblationWeighted(b *testing.B) {
	st := benchStream("CAIDA") // heavy duplication
	b.Run("basic-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := cuckoograph.New()
			for _, e := range st {
				g.InsertEdge(e.U, e.V)
			}
		}
	})
	b.Run("weighted-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := cuckoograph.NewWeighted()
			for _, e := range st {
				g.InsertEdge(e.U, e.V)
			}
		}
	})
}

// BenchmarkSnapshotCodec measures Save/Load throughput.
func BenchmarkSnapshotCodec(b *testing.B) {
	g := cuckoograph.New()
	st := benchStream("NotreDame")
	for _, e := range st {
		g.InsertEdge(e.U, e.V)
	}
	var buf bytes.Buffer
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := g.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
	g.Save(&buf)
	data := buf.Bytes()
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cuckoograph.Load(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
}

// BenchmarkSafeGraph measures the RWMutex wrapper's overhead on the
// read path.
func BenchmarkSafeGraph(b *testing.B) {
	plain := cuckoograph.New()
	safe := cuckoograph.NewSafe()
	for i := uint64(0); i < 1<<15; i++ {
		plain.InsertEdge(i%256, i)
		safe.InsertEdge(i%256, i)
	}
	b.Run("plain/query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.HasEdge(uint64(i)%256, uint64(i)%(1<<15))
		}
	})
	b.Run("safe/query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			safe.HasEdge(uint64(i)%256, uint64(i)%(1<<15))
		}
	})
}
