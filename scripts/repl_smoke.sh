#!/usr/bin/env bash
# End-to-end smoke test of WAL-shipping replication: build cgserver and
# cgcli, boot a leader with WAL durability and a follower with
# -replica-of, bulk-load the leader, wait for the follower to converge,
# assert the follower rejects writes with -READONLY, checkpoint the
# leader (log compaction) and converge again, then SIGTERM both and
# assert clean drains.
#
# Usage: scripts/repl_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
waldir="$work/wal"
llog="$work/leader.log"
flog="$work/replica.log"
laddr="127.0.0.1:16390"
faddr="127.0.0.1:16391"
maddr="127.0.0.1:19190"

leader_pid=""
replica_pid=""
cleanup() {
  [ -n "$replica_pid" ] && kill "$replica_pid" 2>/dev/null || true
  [ -n "$leader_pid" ] && kill "$leader_pid" 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "repl_smoke: FAIL: $*" >&2
  [ -f "$llog" ] && sed 's/^/  leader:  /' "$llog" >&2
  [ -f "$flog" ] && sed 's/^/  replica: /' "$flog" >&2
  exit 1
}

echo "== build"
go build -o "$work/cgserver" ./cmd/cgserver
go build -o "$work/cgcli" ./cmd/cgcli

lcli() { "$work/cgcli" -addr "$laddr" "$@"; }
fcli() { "$work/cgcli" -addr "$faddr" "$@"; }

wait_ping() { # addr pid name
  for _ in $(seq 1 100); do
    if out=$("$work/cgcli" -addr "$1" ping 2>/dev/null) && [ "$out" = "PONG" ]; then return 0; fi
    kill -0 "$2" 2>/dev/null || fail "$3 exited during startup"
    sleep 0.1
  done
  fail "$3 never answered PING"
}

echo "== boot leader + replica"
"$work/cgserver" -addr "$laddr" -wal-dir "$waldir" -wal-sync always \
  -metrics-addr "$maddr" -shutdown-timeout 10s -log-level debug >>"$llog" 2>&1 &
leader_pid=$!
wait_ping "$laddr" "$leader_pid" leader

"$work/cgserver" -addr "$faddr" -replica-of "$laddr" \
  -shutdown-timeout 10s -log-level debug >>"$flog" 2>&1 &
replica_pid=$!
wait_ping "$faddr" "$replica_pid" replica

echo "== flag conflicts rejected"
if "$work/cgserver" -addr 127.0.0.1:16399 -replica-of "$laddr" -wal-dir "$work/bad" >/dev/null 2>&1; then
  fail "-replica-of with -wal-dir was accepted"
fi

echo "== bulk load the leader"
# 20k edges in batched g.minsert calls: 100 calls x 200 edges.
n=0
for _ in $(seq 1 100); do
  args=()
  for _ in $(seq 1 200); do
    args+=("$((n % 211))" "$n")
    n=$((n + 1))
  done
  lcli g.minsert "${args[@]}" >/dev/null || fail "g.minsert batch"
done
edges=$(lcli g.info graph | grep -o 'edges:[0-9]*' | head -1)
[ "$edges" = "edges:20000" ] || fail "leader edge count $edges, want edges:20000"

echo "== follower converges"
converge() {
  want=$(lcli g.info graph | grep -o 'edges:[0-9]*' | head -1)
  for _ in $(seq 1 200); do
    got=$(fcli g.info graph | grep -o 'edges:[0-9]*' | head -1)
    [ "$got" = "$want" ] && return 0
    sleep 0.1
  done
  fail "follower stuck at $got, leader at $want"
}
converge
[ "$(fcli g.query $((19999 % 211)) 19999)" = "(integer) 1" ] || fail "spot-check edge missing on follower"

echo "== command surface"
lcli command list | grep -qi "g.replicate" || fail "COMMAND LIST missing g.replicate"
lcli command list | grep -qi "g.replack" || fail "COMMAND LIST missing g.replack"

echo "== roles and link state"
lcli g.info replication | grep -q "role:leader" || fail "leader role line"
lcli g.info replication | grep -q "connected_replicas:1" || fail "leader link count"
fcli g.info replication | grep -q "role:replica" || fail "replica role line"
fcli g.info replication | grep -q "state:streaming" || fail "replica not streaming"
curl -fsS "http://$maddr/metrics" | grep -q "cg_repl_connected_replicas 1" || fail "leader repl metric"

echo "== follower rejects writes"
fcli g.insert 9999 9999 2>&1 | grep -q "READONLY" || fail "replica accepted a write (or wrong error class)"
[ "$(fcli g.query 9999 9999)" = "(integer) 0" ] || fail "rejected write mutated the replica"

echo "== compaction + more writes still converge"
lcli checkpoint >/dev/null || fail "leader checkpoint"
args=()
m=0
for _ in $(seq 1 200); do
  args+=("$((500000 + m))" "$((600000 + m))")
  m=$((m + 1))
done
lcli g.minsert "${args[@]}" >/dev/null || fail "post-checkpoint g.minsert"
converge
grep -q "bootstrap snapshot installed" "$flog" || fail "no bootstrap-snapshot log line on replica"

echo "== graceful shutdown"
kill -TERM "$replica_pid"
wait "$replica_pid" || fail "replica exited non-zero on SIGTERM"
replica_pid=""
grep -q "shutdown complete" "$flog" || fail "no replica shutdown-complete line"

kill -TERM "$leader_pid"
wait "$leader_pid" || fail "leader exited non-zero on SIGTERM"
leader_pid=""
grep -q "shutdown complete" "$llog" || fail "no leader shutdown-complete line"
grep -q "replica disconnected" "$llog" || fail "leader never logged the link teardown"

echo "repl_smoke: OK"
