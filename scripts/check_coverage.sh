#!/usr/bin/env bash
# check_coverage.sh <coverage-profile> [ratchet-file]
#
# Compares the total statement coverage of a Go cover profile against
# the checked-in ratchet and fails if coverage regressed below it. When
# coverage grows, raise the ratchet (leave ~2 points of headroom for
# concurrency-dependent paths) so it can never silently slide back.
set -euo pipefail

profile="${1:?usage: check_coverage.sh <coverage-profile> [ratchet-file]}"
ratchet_file="${2:-ci/coverage_ratchet.txt}"

total=$(go tool cover -func="$profile" | awk '/^total:/ { gsub(/%/, "", $3); print $3 }')
min=$(tr -d '[:space:]' < "$ratchet_file")

awk -v total="$total" -v min="$min" 'BEGIN {
    if (total + 0 < min + 0) {
        printf "FAIL: total coverage %.1f%% is below the ratchet %.1f%% (%s)\n", total, min, "'"$ratchet_file"'"
        exit 1
    }
    printf "OK: total coverage %.1f%% >= ratchet %.1f%%\n", total, min
}'
