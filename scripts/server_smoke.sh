#!/usr/bin/env bash
# End-to-end smoke test of the production serving path: build cgserver
# and cgcli, boot the server with WAL durability and the metrics
# listener, drive it over RESP, scrape /metrics, then SIGTERM it and
# assert a clean drain — and that a restart recovers every acknowledged
# write from the WAL.
#
# Usage: scripts/server_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
mkdir -p "$work"
waldir="$work/wal"
log="$work/cgserver.log"
addr="127.0.0.1:16380"
maddr="127.0.0.1:19180"

fail() { echo "server_smoke: FAIL: $*" >&2; [ -f "$log" ] && sed 's/^/  server: /' "$log" >&2; exit 1; }

echo "== build"
go build -o "$work/cgserver" ./cmd/cgserver
go build -o "$work/cgcli" ./cmd/cgcli

cli() { "$work/cgcli" -addr "$addr" "$@"; }

start_server() {
  "$work/cgserver" -addr "$addr" -wal-dir "$waldir" -wal-sync always \
    -metrics-addr "$maddr" -pprof -max-conns 64 \
    -read-timeout 10s -write-timeout 10s -shutdown-timeout 10s \
    -log-level debug >>"$log" 2>&1 &
  srv_pid=$!
  for _ in $(seq 1 100); do
    if out=$(cli ping 2>/dev/null) && [ "$out" = "PONG" ]; then return 0; fi
    kill -0 "$srv_pid" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
  done
  fail "server never answered PING"
}

echo "== boot with wal + metrics"
start_server

echo "== drive commands"
[ "$(cli g.insert 1 2)" = "(integer) 1" ] || fail "g.insert 1 2"
[ "$(cli g.insert 1 3)" = "(integer) 1" ] || fail "g.insert 1 3"
[ "$(cli g.insert 2 4)" = "(integer) 1" ] || fail "g.insert 2 4"
[ "$(cli g.query 1 2)" = "(integer) 1" ] || fail "g.query 1 2"
[ "$(cli g.degree 1)" = "(integer) 2" ] || fail "g.degree 1"
cli graph.bfs 1 | grep -q "4" || fail "graph.bfs 1 did not reach node 4"
cli g.info graph | grep -q "edges:3" || fail "g.info graph edges:3"
cli command count >/dev/null || fail "command count"
# Error taxonomy over the wire: arity and unknown-command classes.
cli g.insert 1 2>&1 | grep -q "ERR wrong number of arguments" || fail "arity error class"
cli nosuchcmd 2>&1 | grep -q "ERR unknown command" || fail "unknown command class"

echo "== scrape /metrics"
metrics=$(curl -fsS "http://$maddr/metrics") || fail "metrics scrape"
echo "$metrics" | grep -q 'cg_commands_total{cmd="g.insert"}' || fail "missing command counter"
echo "$metrics" | grep -q 'cg_command_seconds_bucket' || fail "missing latency histogram"
echo "$metrics" | grep -q 'cg_graph_edges 3' || fail "missing engine gauge (cg_graph_edges 3)"
echo "$metrics" | grep -q 'cg_wal_enabled 1' || fail "missing wal gauge"
echo "$metrics" | grep -q 'cg_wal_ops_total 3' || fail "wal ops counter != 3"
curl -fsS "http://$maddr/healthz" | grep -q ok || fail "healthz"

echo "== pprof on the metrics listener"
curl -fsS "http://$maddr/debug/pprof/cmdline" | tr '\0' ' ' | grep -q "cgserver" || fail "pprof cmdline"

echo "== graceful shutdown on SIGTERM"
kill -TERM "$srv_pid"
for _ in $(seq 1 100); do
  kill -0 "$srv_pid" 2>/dev/null || break
  sleep 0.1
done
if wait "$srv_pid"; then :; else fail "server exited non-zero on SIGTERM"; fi
grep -q "shutdown complete" "$log" || fail "no shutdown-complete log line"
grep -q "wal closed" "$log" || fail "no wal-closed log line"

echo "== restart recovers acknowledged writes"
: >"$log"
start_server
[ "$(cli g.query 1 2)" = "(integer) 1" ] || fail "edge 1->2 lost across restart"
[ "$(cli g.query 2 4)" = "(integer) 1" ] || fail "edge 2->4 lost across restart"
cli g.info graph | grep -q "edges:3" || fail "recovered edge count != 3"
grep -q "recovered" "$log" || fail "no recovery log line"
kill -TERM "$srv_pid"
wait "$srv_pid" || fail "second shutdown exited non-zero"

echo "server_smoke: OK"
