package cuckoograph_test

import (
	"bytes"
	"sync"
	"testing"

	"cuckoograph"
)

func TestSafeGraphConcurrentReadersAndWriters(t *testing.T) {
	g := cuckoograph.NewSafe()
	const writers, readers, perWriter = 4, 4, 2000

	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(base uint64) {
			defer writerWG.Done()
			for i := uint64(0); i < perWriter; i++ {
				g.InsertEdge(base*perWriter+i, i)
			}
		}(uint64(w))
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(seed uint64) {
			defer readerWG.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.HasEdge(seed*perWriter+i%perWriter, i%perWriter)
				g.Degree(seed * perWriter)
				_ = g.NumEdges()
			}
		}(uint64(r))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if g.NumEdges() != writers*perWriter {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := uint64(0); i < perWriter; i += 97 {
			if !g.HasEdge(uint64(w)*perWriter+i, i) {
				t.Fatalf("edge from writer %d missing", w)
			}
		}
	}
}

func TestSafeGraphTraversalAndStats(t *testing.T) {
	g := cuckoograph.NewSafeWithOptions(cuckoograph.Options{ShardCount: 4})
	if g.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", g.Shards())
	}
	for i := uint64(0); i < 500; i++ {
		g.InsertEdge(i%25, i)
	}
	nodes := 0
	g.ForEachNode(func(u cuckoograph.NodeID) bool {
		nodes++
		return true
	})
	if nodes != 25 {
		t.Fatalf("ForEachNode visited %d, want 25", nodes)
	}
	succ := 0
	g.ForEachSuccessor(3, func(v cuckoograph.NodeID) bool {
		succ++
		return true
	})
	if succ != g.Degree(3) || succ == 0 {
		t.Fatalf("ForEachSuccessor saw %d, Degree = %d", succ, g.Degree(3))
	}
	// Callbacks may re-enter the graph, including mutating it.
	g.ForEachSuccessor(3, func(v cuckoograph.NodeID) bool {
		g.InsertEdge(v, 3)
		return true
	})
	if !g.HasEdge(28, 3) {
		t.Fatal("mutation inside traversal callback lost")
	}
	st := g.Stats()
	if st.Edges != g.NumEdges() || st.Nodes != g.NumNodes() {
		t.Fatalf("stats %d/%d disagree with counters %d/%d",
			st.Edges, st.Nodes, g.NumEdges(), g.NumNodes())
	}
}

func TestSafeGraphParallelAnalytics(t *testing.T) {
	g := cuckoograph.NewSafeWithOptions(cuckoograph.Options{ShardCount: 4, Parallelism: 4})
	for i := uint64(0); i < 300; i++ {
		g.InsertEdge(i, (i+1)%300)
		g.InsertEdge(i, (i*7+3)%300)
	}
	order := g.BFS(0)
	if len(order) != 300 {
		t.Fatalf("BFS visited %d nodes, want 300", len(order))
	}
	rank := g.PageRank(20)
	if len(rank) != 300 {
		t.Fatalf("PageRank ranked %d nodes, want 300", len(rank))
	}
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("PageRank mass = %g, want ≈ 1", sum)
	}
}

func TestLoadSafeAcrossShardCounts(t *testing.T) {
	// Snapshots round-trip between 1-shard and P-shard graphs, and
	// between single-writer Graph and SafeGraph.
	src := cuckoograph.NewSafeWithOptions(cuckoograph.Options{ShardCount: 1})
	for i := uint64(0); i < 2000; i++ {
		src.InsertEdge(i%100, i)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wide, err := cuckoograph.LoadSafe(bytes.NewReader(buf.Bytes()), cuckoograph.Options{ShardCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	if wide.NumEdges() != src.NumEdges() || wide.NumNodes() != src.NumNodes() {
		t.Fatalf("1→8 shards: %d/%d, want %d/%d",
			wide.NumEdges(), wide.NumNodes(), src.NumEdges(), src.NumNodes())
	}
	buf.Reset()
	if err := wide.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A sharded snapshot loads into the single-writer Graph too.
	plain, err := cuckoograph.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumEdges() != src.NumEdges() {
		t.Fatalf("sharded snapshot into Graph: %d edges, want %d", plain.NumEdges(), src.NumEdges())
	}
	for i := uint64(0); i < 2000; i += 53 {
		if !plain.HasEdge(i%100, i) {
			t.Fatalf("edge (%d,%d) lost in round trip", i%100, i)
		}
	}
}

func TestSafeGraphDeleteAndSave(t *testing.T) {
	g := cuckoograph.NewSafe()
	g.InsertEdge(1, 2)
	g.InsertEdge(3, 4)
	if !g.DeleteEdge(1, 2) || g.DeleteEdge(1, 2) {
		t.Fatal("delete semantics wrong")
	}
	if g.NumNodes() != 1 || len(g.Successors(3)) != 1 {
		t.Fatal("counts wrong")
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cuckoograph.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasEdge(3, 4) || loaded.HasEdge(1, 2) {
		t.Fatal("snapshot content wrong")
	}
	_ = g.MemoryUsage()
}

func TestPublicSaveLoad(t *testing.T) {
	g := cuckoograph.New()
	for i := uint64(0); i < 1000; i++ {
		g.InsertEdge(i%50, i)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := cuckoograph.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d, want %d", g2.NumEdges(), g.NumEdges())
	}

	w := cuckoograph.NewWeighted()
	w.Add(1, 2, 9)
	buf.Reset()
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := cuckoograph.LoadWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := w2.Weight(1, 2); got != 9 {
		t.Fatalf("weight = %d, want 9", got)
	}
}
