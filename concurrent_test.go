package cuckoograph_test

import (
	"bytes"
	"sync"
	"testing"

	"cuckoograph"
)

func TestSafeGraphConcurrentReadersAndWriters(t *testing.T) {
	g := cuckoograph.NewSafe()
	const writers, readers, perWriter = 4, 4, 2000

	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(base uint64) {
			defer writerWG.Done()
			for i := uint64(0); i < perWriter; i++ {
				g.InsertEdge(base*perWriter+i, i)
			}
		}(uint64(w))
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(seed uint64) {
			defer readerWG.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.HasEdge(seed*perWriter+i%perWriter, i%perWriter)
				g.Degree(seed * perWriter)
				_ = g.NumEdges()
			}
		}(uint64(r))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if g.NumEdges() != writers*perWriter {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := uint64(0); i < perWriter; i += 97 {
			if !g.HasEdge(uint64(w)*perWriter+i, i) {
				t.Fatalf("edge from writer %d missing", w)
			}
		}
	}
}

func TestSafeGraphDeleteAndSave(t *testing.T) {
	g := cuckoograph.NewSafe()
	g.InsertEdge(1, 2)
	g.InsertEdge(3, 4)
	if !g.DeleteEdge(1, 2) || g.DeleteEdge(1, 2) {
		t.Fatal("delete semantics wrong")
	}
	if g.NumNodes() != 1 || len(g.Successors(3)) != 1 {
		t.Fatal("counts wrong")
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cuckoograph.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasEdge(3, 4) || loaded.HasEdge(1, 2) {
		t.Fatal("snapshot content wrong")
	}
	_ = g.MemoryUsage()
}

func TestPublicSaveLoad(t *testing.T) {
	g := cuckoograph.New()
	for i := uint64(0); i < 1000; i++ {
		g.InsertEdge(i%50, i)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := cuckoograph.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d, want %d", g2.NumEdges(), g.NumEdges())
	}

	w := cuckoograph.NewWeighted()
	w.Add(1, 2, 9)
	buf.Reset()
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := cuckoograph.LoadWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := w2.Weight(1, 2); got != 9 {
		t.Fatalf("weight = %d, want 9", got)
	}
}
