package cuckoograph

import "testing"

func TestSafeGraphSnapshotTimeTravel(t *testing.T) {
	g := NewSafe()
	// Ring 0→1→…→99→0 at the first epoch.
	const n = 100
	for i := uint64(0); i < n; i++ {
		g.InsertEdge(i, (i+1)%n)
	}
	v1 := g.Snapshot()
	defer v1.Release()

	// Cut the ring and splice in a detour; take a second view.
	g.DeleteEdge(0, 1)
	g.InsertEdge(0, 500)
	g.InsertEdge(500, 1)
	v2 := g.Snapshot()
	defer v2.Release()
	if v2.Epoch() <= v1.Epoch() {
		t.Fatalf("epochs not monotonic: %d then %d", v1.Epoch(), v2.Epoch())
	}

	// Shred the live graph entirely; both views must hold their epochs.
	for i := uint64(0); i < n; i++ {
		g.DeleteEdge(i, (i+1)%n)
	}
	if got := len(v1.BFS(0)); got != n {
		t.Fatalf("epoch-%d BFS reached %d nodes, want the full %d-ring", v1.Epoch(), got, n)
	}
	if got := len(v2.BFS(0)); got != n+1 {
		t.Fatalf("epoch-%d BFS reached %d nodes, want %d (ring + detour)", v2.Epoch(), got, n+1)
	}
	if !v1.HasEdge(0, 1) || v2.HasEdge(0, 1) {
		t.Fatalf("views disagree with their epochs on edge ⟨0,1⟩")
	}
	if v1.NumEdges() != n || v2.NumEdges() != n+1 {
		t.Fatalf("view edge counts %d/%d, want %d/%d", v1.NumEdges(), v2.NumEdges(), n, n+1)
	}
	if deg := len(v2.Successors(0)); deg != 1 {
		t.Fatalf("epoch-%d degree(0) = %d, want 1", v2.Epoch(), deg)
	}
	rank := v1.PageRank(10)
	if len(rank) != n {
		t.Fatalf("PageRank on frozen ring ranked %d nodes, want %d", len(rank), n)
	}
	// Only the detour survives on the live graph; the views archive the
	// ring epochs.
	if g.NumEdges() != 2 {
		t.Fatalf("live graph has %d edges, want just the detour pair", g.NumEdges())
	}
}
